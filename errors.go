package iuad

import (
	"errors"

	"iuad/internal/ingestq"
)

// OverloadedError is the backpressure rejection from the bounded
// ingest queue (see WithIngestQueue): the batch was not admitted and
// nothing was ingested. Carries the queue depth, the admission limit,
// and the Retry-After hint that cmd/iuadserver surfaces as HTTP 429
// with a Retry-After header. Match with errors.As.
type OverloadedError = ingestq.OverloadedError

// CanceledError reports that AddPapers' context was cancelled while
// the batch was still queued: it was withdrawn, nothing was ingested,
// and no epoch carries any part of it. Unwrap yields the ctx error.
// Match with errors.As.
type CanceledError = ingestq.CanceledError

// IngestStats is the ingest queue's accounting, served by
// Service.Ingest and the HTTP /metrics endpoint.
type IngestStats = ingestq.Stats

// IngestConfig parameterizes the ingest queue (WithIngestConfig).
type IngestConfig = ingestq.Config

// Typed errors of the serving API. They are sentinel values so callers
// can branch with errors.Is; functions that wrap them add call-site
// context.
var (
	// ErrNotFrozen is returned by Open when the corpus has not been
	// frozen (call Corpus.Freeze after the last Add).
	ErrNotFrozen = errors.New("iuad: corpus is not frozen")

	// ErrNoCorpus is returned by Open when it has neither a corpus nor
	// an existing snapshot to start from.
	ErrNoCorpus = errors.New("iuad: no corpus and no snapshot to open")

	// ErrUnknownAuthor is returned by the query API for an author ID
	// outside the published network.
	ErrUnknownAuthor = errors.New("iuad: unknown author id")

	// ErrUnknownSlot is returned by ResolveSlot for a (paper, index)
	// pair outside the published network.
	ErrUnknownSlot = errors.New("iuad: unknown author slot")

	// ErrUnknownPaper is returned by Service.Paper for an ID outside
	// the published network.
	ErrUnknownPaper = errors.New("iuad: unknown paper id")

	// ErrClosed is returned by the write API after Close.
	ErrClosed = errors.New("iuad: service is closed")
)
