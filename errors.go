package iuad

import "errors"

// Typed errors of the serving API. They are sentinel values so callers
// can branch with errors.Is; functions that wrap them add call-site
// context.
var (
	// ErrNotFrozen is returned by Open when the corpus has not been
	// frozen (call Corpus.Freeze after the last Add).
	ErrNotFrozen = errors.New("iuad: corpus is not frozen")

	// ErrNoCorpus is returned by Open when it has neither a corpus nor
	// an existing snapshot to start from.
	ErrNoCorpus = errors.New("iuad: no corpus and no snapshot to open")

	// ErrUnknownAuthor is returned by the query API for an author ID
	// outside the published network.
	ErrUnknownAuthor = errors.New("iuad: unknown author id")

	// ErrUnknownSlot is returned by ResolveSlot for a (paper, index)
	// pair outside the published network.
	ErrUnknownSlot = errors.New("iuad: unknown author slot")

	// ErrClosed is returned by the write API after Close.
	ErrClosed = errors.New("iuad: service is closed")
)
