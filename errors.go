package iuad

import (
	"errors"

	"iuad/internal/ingestq"
	"iuad/internal/wal"
)

// OverloadedError is the backpressure rejection from the bounded
// ingest queue (see WithIngestQueue): the batch was not admitted and
// nothing was ingested. Carries the queue depth, the admission limit,
// and the Retry-After hint that cmd/iuadserver surfaces as HTTP 429
// with a Retry-After header. Match with errors.As.
type OverloadedError = ingestq.OverloadedError

// CanceledError reports that AddPapers' context was cancelled while
// the batch was still queued: it was withdrawn, nothing was ingested,
// and no epoch carries any part of it. Unwrap yields the ctx error.
// Match with errors.As.
type CanceledError = ingestq.CanceledError

// IngestStats is the ingest queue's accounting, served by
// Service.Ingest and the HTTP /metrics endpoint.
type IngestStats = ingestq.Stats

// IngestConfig parameterizes the ingest queue (WithIngestConfig).
type IngestConfig = ingestq.Config

// JournalConfig parameterizes the write-ahead batch journal
// (WithJournalConfig): fsync policy, grouped-fsync cadence, segment
// roll size, and the service's compaction threshold.
type JournalConfig = wal.Config

// FsyncPolicy selects when journal appends become durable. See the
// constants below and DESIGN.md §14.
type FsyncPolicy = wal.Policy

// The journal fsync policies (JournalConfig.Fsync).
const (
	// FsyncPerCommit fsyncs inside every Append, before the ack:
	// full power-loss durability per batch.
	FsyncPerCommit = wal.SyncPerCommit
	// FsyncGrouped acks from the page cache and fsyncs on a short
	// timer: bounded power-loss window, amortized fsync cost.
	FsyncGrouped = wal.SyncGrouped
	// FsyncOff never fsyncs explicitly: survives SIGKILL (the page
	// cache outlives the process) but not power loss.
	FsyncOff = wal.SyncOff
)

// ParseFsyncPolicy maps the wire/flag spellings "percommit",
// "grouped", "off" onto their FsyncPolicy (cmd/iuadserver's -fsync).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// JournalBasePath returns the base-snapshot path a journaled service
// maintains inside dir — useful to check, before Open, whether a
// restart can run without a corpus.
func JournalBasePath(dir string) string { return wal.BaseSnapshotPath(dir) }

// JournalStats is the journal's accounting, served by
// Service.JournalStats and the HTTP /metrics endpoint.
type JournalStats = wal.Stats

// ReplayReport summarizes a journal recovery (what was replayed, what
// a crash tore off); served by Service.JournalRecovery and /healthz.
type ReplayReport = wal.ReplayReport

// JournalLockError is the typed double-Open failure on a journal
// directory; errors.Is(err, ErrJournalLocked) matches it.
type JournalLockError = wal.LockError

// JournalCorruptError reports a journal record that failed
// verification somewhere the torn-tail rule cannot excuse; Open
// refuses to serve rather than silently dropping an acked batch.
type JournalCorruptError = wal.CorruptError

// ErrJournalLocked reports that another process holds the journal
// directory (see WithJournal).
var ErrJournalLocked = wal.ErrLocked

// JournalError wraps a journal append/fsync failure inside the commit
// path: the batch was NOT committed and NOT acked — write-ahead means
// a batch whose record cannot be made durable never lands in memory.
// HTTP servers map it to 500. Match with errors.As.
type JournalError struct{ Err error }

func (e *JournalError) Error() string {
	return "iuad: journal write failed; batch not committed: " + e.Err.Error()
}
func (e *JournalError) Unwrap() error { return e.Err }

// Typed errors of the serving API. They are sentinel values so callers
// can branch with errors.Is; functions that wrap them add call-site
// context.
var (
	// ErrNotFrozen is returned by Open when the corpus has not been
	// frozen (call Corpus.Freeze after the last Add).
	ErrNotFrozen = errors.New("iuad: corpus is not frozen")

	// ErrNoCorpus is returned by Open when it has neither a corpus nor
	// an existing snapshot to start from.
	ErrNoCorpus = errors.New("iuad: no corpus and no snapshot to open")

	// ErrUnknownAuthor is returned by the query API for an author ID
	// outside the published network.
	ErrUnknownAuthor = errors.New("iuad: unknown author id")

	// ErrUnknownSlot is returned by ResolveSlot for a (paper, index)
	// pair outside the published network.
	ErrUnknownSlot = errors.New("iuad: unknown author slot")

	// ErrUnknownPaper is returned by Service.Paper for an ID outside
	// the published network.
	ErrUnknownPaper = errors.New("iuad: unknown paper id")

	// ErrClosed is returned by the write API after Close.
	ErrClosed = errors.New("iuad: service is closed")
)
