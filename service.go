package iuad

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/ingestq"
	"iuad/internal/netstats"
	"iuad/internal/wal"
)

// Service is the serving-first face of IUAD: a concurrency-safe façade
// over a fitted Pipeline with a lock-free query API and a serialized,
// batched write API.
//
// # Read/write contract
//
// Writers (AddPaper / AddPapers) are serialized by an internal mutex;
// after each write batch the service publishes a new immutable view —
// an epoch — and swaps it in with a single atomic pointer store.
// Readers (ResolveSlot, Author, Coauthors, AuthorsByName, Stats) load
// that pointer once and answer entirely from the immutable epoch they
// got: no lock, no blocking, and never a partially-applied write. A
// reader may observe the epoch from just before a concurrent write —
// never a torn one. See DESIGN.md §8.
//
// # Sharding
//
// The serving state is partitioned by name block across N shards
// (WithShards; see DESIGN.md §11). Core assignment stays serialized —
// that is what makes results bit-identical for every shard count — but
// the publish work of a write batch fans out to only the shards its
// author names hash to, so unrelated name blocks never contend on one
// writer's publish, and queries fan out lock-free over the shards'
// immutable segments and merge deterministically.
//
// Construct a Service with Open (corpus in, fitted service out) or
// NewService (wrap an already-fitted Pipeline).
type Service struct {
	mu           sync.Mutex // serializes writers and snapshotting
	pl           *core.Pipeline
	pub          *core.ViewPublisher
	q            *ingestq.Queue  // admission control + group commit (DESIGN.md §12)
	net          *netstats.Cache // epoch-keyed analytics (DESIGN.md §13)
	snapshotPath string
	recovery     *core.RecoveryReport
	closed       bool

	// Crash-safe continuous durability (WithJournal; DESIGN.md §14).
	journal      *wal.Journal
	journalBase  string            // base-snapshot path inside the journal dir
	jrec         *wal.ReplayReport // what recovery replayed, nil when not journaled
	compactEvery int               // journaled batches between base compactions (0 = never)
	sinceBase    int               // guarded by mu
	compacting   atomic.Bool       // one background compaction at a time
	closedA      atomic.Bool       // lock-free mirror of closed for /healthz
}

// Stats is the point-in-time summary served by Service.Stats.
type Stats = core.ServiceStats

// Author is the query API's author record: one conjectured real-world
// author (a GCN vertex) with its attributed papers and the career
// aggregates the collaboration-network literature queries — active
// years and publishing venues.
type Author struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Papers is sorted ascending; IDs resolve via Service.Paper.
	Papers []PaperID `json:"papers"`
	// FirstYear/LastYear span the author's dated papers (0 = no dated
	// papers).
	FirstYear int `json:"first_year"`
	LastYear  int `json:"last_year"`
	// Venues lists the author's distinct publishing venues, most
	// frequent first (ties lexicographic).
	Venues []string `json:"venues"`
	// Coauthors is the author's degree in the collaboration network.
	Coauthors int `json:"coauthors"`
}

// options collects the functional Open/NewService configuration.
type options struct {
	cfg          Config
	cfgSet       bool
	workers      int
	workersSet   bool
	snapshotPath string
	shards       int
	allowPartial bool
	ingest       ingestq.Config
	journalDir   string
	journal      wal.Config
}

// Option configures Open and NewService.
type Option func(*options)

// WithConfig replaces the pipeline configuration used when Open fits a
// corpus (default: DefaultConfig). WithWorkers applies on top.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg; o.cfgSet = true }
}

// WithWorkers bounds the pipeline's worker pool. Results are
// bit-identical for every value; the knob only changes wall time.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n; o.workersSet = true }
}

// WithSnapshot binds the service to a snapshot file: Open loads it
// instead of refitting when it exists (the corpus argument may then be
// nil), and Close writes the current state back to it atomically
// (write to a temp file, then rename).
func WithSnapshot(path string) Option {
	return func(o *options) { o.snapshotPath = path }
}

// WithJournal turns on crash-safe continuous durability (DESIGN.md
// §14): dir holds a base snapshot plus a write-ahead batch journal.
// Every committed ingest batch is journaled — checksummed and fsynced
// per the configured policy — BEFORE it lands in memory or is acked,
// so an acked AddPapers survives kill -9, not just a clean Close.
// Open loads the newest base snapshot from dir (fitting the corpus
// only when none exists yet), replays the journal on top of it, and
// produces assignments bit-identical to a process that never crashed.
// After CompactEvery journaled batches a background compaction writes
// a fresh base and garbage-collects the replayed segments, bounding
// recovery time. Close compacts, so a clean shutdown restarts with an
// empty journal.
//
// The directory admits ONE live service at a time: a second Open
// fails fast with ErrJournalLocked. Mutually exclusive with
// WithSnapshot (the journal owns its own base snapshot).
func WithJournal(dir string) Option {
	return func(o *options) { o.journalDir = dir }
}

// WithJournalConfig is WithJournal with explicit tuning: fsync policy
// (default FsyncPerCommit), grouped-fsync cadence, segment roll size,
// and the compaction threshold (default 64 batches; negative disables
// automatic compaction).
func WithJournalConfig(dir string, cfg JournalConfig) Option {
	return func(o *options) { o.journalDir = dir; o.journal = cfg }
}

// WithShards partitions the serving state across n shards keyed by the
// hash of the author-name block (clamped to [1, 256]; default 1).
// Assignments and every query answer are bit-identical for every
// value; the knob only changes write-path contention and snapshot
// layout: with n > 1 snapshots are saved as a composite manifest plus
// one segment file per shard, written and loaded in parallel.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithIngestQueue bounds the ingest admission queue at maxQueued
// papers (admitted but not yet committed; default 1024). Past the
// bound AddPapers rejects immediately with *OverloadedError — the
// backpressure signal HTTP servers map to 429 — so heap use under
// overload stays bounded instead of queueing without limit. See
// DESIGN.md §12.
func WithIngestQueue(maxQueued int) Option {
	return func(o *options) { o.ingest.MaxQueued = maxQueued }
}

// WithIngestConfig replaces the whole ingest-queue configuration
// (admission bound, group-commit cap, Retry-After hint). Zero fields
// take the defaults. WithIngestQueue is the common shorthand.
func WithIngestConfig(cfg ingestq.Config) Option {
	return func(o *options) { o.ingest = cfg }
}

// WithPartialRecovery lets Open serve a composite snapshot even when
// some segment files are missing or corrupt: the lost shards' authors
// come back as unknown (their names simply start from scratch on the
// next ingest) while every surviving shard answers exactly as before.
// Recovery reports what was lost. Without this option a damaged
// composite refuses to load.
func WithPartialRecovery() Option {
	return func(o *options) { o.allowPartial = true }
}

// Open builds a serving Service. With a snapshot option whose file
// exists, the service is restored from it — no EM re-run, and the
// restored service answers every query and ingest bit-identically to
// the one that saved it. Otherwise the frozen corpus is disambiguated
// with the configured pipeline (this is the expensive fit path).
//
//	svc, err := iuad.Open(corpus, iuad.WithWorkers(8), iuad.WithSnapshot("iuad.snap"))
//	defer svc.Close()
func Open(corpus *Corpus, opts ...Option) (*Service, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.journalDir != "" {
		if o.snapshotPath != "" {
			return nil, errors.New("iuad: WithJournal and WithSnapshot are mutually exclusive (the journal owns its base snapshot)")
		}
		return openJournaled(corpus, &o)
	}
	if o.snapshotPath != "" {
		pl, epoch, seeds, rep, err := core.OpenServiceSnapshot(o.snapshotPath, o.allowPartial)
		switch {
		case err == nil:
			return newService(pl, epoch, &o, seeds, rep), nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, fmt.Errorf("iuad: load snapshot %s: %w", o.snapshotPath, err)
		}
	}
	pl, err := fitCorpus(corpus, &o)
	if err != nil {
		return nil, err
	}
	return newService(pl, 0, &o, nil, nil), nil
}

// fitCorpus runs the expensive fit path on a frozen corpus.
func fitCorpus(corpus *Corpus, o *options) (*core.Pipeline, error) {
	if corpus == nil {
		return nil, ErrNoCorpus
	}
	if !corpus.Frozen() {
		return nil, ErrNotFrozen
	}
	cfg := DefaultConfig()
	if o.cfgSet {
		cfg = o.cfg
	}
	if o.workersSet {
		cfg.Workers = o.workers
	}
	return core.Run(corpus, cfg)
}

// openJournaled is the WithJournal recovery path: lock the journal
// directory, load the newest base snapshot (or fit the corpus when
// the directory is fresh), then replay the journaled batches on top —
// exactly the commits a crashed process acked after its last base.
// The replay re-runs the same deterministic ingest code, so the
// recovered assignments are bit-identical to never having crashed.
func openJournaled(corpus *Corpus, o *options) (*Service, error) {
	j, err := wal.Open(o.journalDir, o.journal)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			j.Close()
		}
	}()
	base := j.BasePath()
	pl, epoch, seeds, rep, err := core.OpenServiceSnapshot(base, o.allowPartial)
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist):
		// Fresh directory (or crash before the first compaction): fit
		// the corpus. The fit is deterministic, so journaled batches
		// replay onto an identical starting state.
		epoch, seeds, rep = 0, nil, nil
		pl, err = fitCorpus(corpus, o)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("iuad: load base snapshot %s: %w", base, err)
	}
	s := newService(pl, epoch, o, seeds, rep)
	s.journal = j
	s.journalBase = base
	s.compactEvery = o.journal.CompactEvery
	if s.compactEvery == 0 {
		s.compactEvery = wal.DefaultCompactEvery
	} else if s.compactEvery < 0 {
		s.compactEvery = 0
	}
	jrep, err := j.Recover(epoch, s.replayBatch)
	if err != nil {
		s.q.Close()
		return nil, fmt.Errorf("iuad: journal recovery: %w", err)
	}
	s.jrec = jrep
	s.sinceBase = jrep.Batches
	ok = true
	return s, nil
}

// replayBatch applies one journaled batch during recovery through the
// same serialized ingest + capture/apply path a live commit takes.
// No lock needed: recovery runs before the service is returned.
func (s *Service) replayBatch(epoch uint64, batch []bib.Paper) error {
	res, err := s.pl.AddPapers(context.Background(), batch)
	if err != nil {
		return err
	}
	if want := s.pub.CapturedEpoch() + 1; epoch != want {
		return fmt.Errorf("iuad: journal batch publishes epoch %d, service expects %d", epoch, want)
	}
	if len(res) > 0 {
		s.pub.Apply(s.pub.Capture(res))
	}
	return nil
}

// NewService wraps an already-fitted pipeline (e.g. one built with
// Disambiguate, or restored with LoadPipeline) in the serving façade.
// The pipeline must not be used directly while the service is serving:
// the service owns all writes from here on.
func NewService(pl *Pipeline, opts ...Option) (*Service, error) {
	if pl == nil || pl.GCN == nil {
		return nil, fmt.Errorf("iuad: NewService needs a fitted pipeline")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return newService(pl, 0, &o, nil, nil), nil
}

func newService(pl *core.Pipeline, epoch uint64, o *options, seeds []core.ShardSeed, rep *core.RecoveryReport) *Service {
	if o.workersSet {
		pl.Cfg.Workers = o.workers
	}
	s := &Service{
		pl:           pl,
		pub:          core.NewShardedViewPublisher(pl, epoch, core.NormShards(o.shards), seeds),
		net:          netstats.NewCache(pl.Cfg.Workers),
		snapshotPath: o.snapshotPath,
		recovery:     rep,
	}
	s.q = ingestq.New(s.commitBatch, o.ingest)
	return s
}

// AddPaper disambiguates and registers one newly published paper
// (§V-E), publishing a new epoch. It is AddPapers with a batch of one.
func (s *Service) AddPaper(ctx context.Context, p Paper) ([]Assignment, error) {
	res, err := s.AddPapers(ctx, []Paper{p})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// AddPapers ingests a batch of newly published papers in order and
// publishes one new epoch covering the whole batch. Assignments are
// bit-identical to ingesting the papers one at a time — batching only
// shares work (one invalidation pass per paper's neighborhood, one
// profile warm-up per paper, one epoch publish per batch) — so batch
// boundaries are a throughput choice, not a semantic one.
//
// The batch is atomic: it is validated up front and either publishes
// whole — inside exactly one epoch, possibly shared with concurrent
// batches via group commit (DESIGN.md §12) — or fails having ingested
// nothing. Failure modes are typed:
//
//   - *OverloadedError: the bounded ingest queue (WithIngestQueue) is
//     past its high-water mark; retry after the hint. HTTP servers map
//     this to 429 with a Retry-After header.
//   - *CanceledError (unwrapping ctx.Err()): ctx was cancelled while
//     the batch was still queued; it was withdrawn without ingesting
//     anything and no epoch carries any part of it. Once the batch is
//     taken by a commit it runs to completion even if ctx dies.
//   - ErrClosed: Close has shut the write API down.
func (s *Service) AddPapers(ctx context.Context, batch []Paper) ([][]Assignment, error) {
	// Validate before admission so a malformed paper cannot fail a
	// group commit mid-batch: admitted batches always commit whole.
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return nil, fmt.Errorf("iuad: batch paper %d: %w", i, err)
		}
	}
	res, err := s.q.Submit(ctx, batch)
	if errors.Is(err, ingestq.ErrClosed) {
		return res, ErrClosed
	}
	return res, err
}

// commitBatch is the ingest queue's CommitFunc: it applies one
// (possibly group-concatenated) admitted batch under the write lock
// and publishes it as one epoch. The queue calls it from exactly one
// goroutine at a time — the current commit leader — which preserves
// the serialized-ingest bit-identity contract. The batch is already
// validated and past cancellation, so it runs with a background
// context: an admitted batch publishes whole or not at all.
func (s *Service) commitBatch(batch []bib.Paper) ([][]core.Assignment, error) {
	// Route first: raise the pending counters of the shards this
	// batch's author names hash to, so /shards shows publish depth
	// while the batch waits for the serialized core-ingest lock.
	done := s.pub.RouteBegin(batch)
	defer done()
	t0 := time.Now()
	s.mu.Lock()
	s.pub.AddIngestWait(time.Since(t0).Nanoseconds())
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Write-ahead: journal the batch BEFORE it touches memory. A
	// failed append fails the whole group here — before the ack, with
	// no in-memory mutation to unwind — so a batch is acked only if
	// its journal record is durable per the configured policy.
	var tok wal.AppendToken
	if s.journal != nil {
		var jerr error
		tok, jerr = s.journal.Append(s.pub.CapturedEpoch()+1, batch)
		if jerr != nil {
			s.mu.Unlock()
			return nil, &JournalError{Err: jerr}
		}
	}
	res, err := s.pl.AddPapers(context.Background(), batch)
	if err != nil && len(res) == 0 && s.journal != nil {
		// Nothing landed in memory: withdraw the record so recovery
		// cannot replay a batch this process never applied. (With a
		// committed prefix the record must stay — the prefix's waiters
		// are acked; up-front validation makes that path unreachable
		// for admitted batches.)
		s.journal.Rollback(tok)
	}
	var pc *core.PublishCapture
	if len(res) > 0 {
		// Capture is the only publish work that must run under the
		// write lock (it snapshots what the batch touched, O(touch)).
		pc = s.pub.Capture(res)
	}
	compact := false
	if err == nil && s.journal != nil && s.compactEvery > 0 {
		s.sinceBase++
		compact = s.sinceBase >= s.compactEvery
	}
	s.mu.Unlock()
	if pc != nil {
		// Apply outside the lock: batches touching disjoint name
		// blocks update their shards concurrently; only same-shard
		// batches serialize, on that shard's apply lock.
		s.pub.Apply(pc)
	}
	if compact && s.compacting.CompareAndSwap(false, true) {
		// Base compaction runs off the commit path: ingest keeps
		// acking against the journal while the fresh base is written.
		// On failure sinceBase stays high, so the next commit retries.
		go func() {
			defer s.compacting.Store(false)
			_ = s.Compact()
		}()
	}
	return res, err
}

// Compact writes a fresh base snapshot at the current epoch into the
// journal directory (via the crash-safe WriteFileAtomic / composite
// manifest-rename path), then rotates the journal: replayed segments
// are garbage-collected and appends continue in a new generation.
// Crash-safety of the handoff: the base commit point is an atomic
// rename, and until Rotate removes them the old segments are merely
// stale (recovery GCs segments keyed to an older base epoch), so a
// crash between the two steps recovers correctly from either base.
// No-op errors: ErrClosed after Close; journaled services only.
func (s *Service) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Service) compactLocked() error {
	if s.journal == nil {
		return errors.New("iuad: Compact needs a journaled service (WithJournal)")
	}
	if s.closed {
		return ErrClosed
	}
	if err := s.saveFileLocked(s.journalBase); err != nil {
		return err
	}
	if err := s.journal.Rotate(s.pub.CapturedEpoch()); err != nil {
		return err
	}
	s.sinceBase = 0
	return nil
}

// Ingest returns the ingest queue's accounting: current depth against
// the admission bound, admitted/rejected/canceled counters, group
// commit sizes, and queue-wait / publish-lag latency summaries.
func (s *Service) Ingest() ingestq.Stats { return s.q.Stats() }

// Stats returns the sizes of the currently published epoch.
func (s *Service) Stats() Stats { return s.pub.Current().Stats() }

// Epoch returns the current publish epoch (one publish per write
// batch; readers can use it to detect progress).
func (s *Service) Epoch() uint64 { return s.pub.Current().Epoch() }

// ResolveSlot answers "who wrote the Index-th name of this paper": the
// author the slot is assigned to in the published network.
func (s *Service) ResolveSlot(slot Slot) (Author, error) {
	v := s.pub.Current()
	id, ok := v.ResolveSlot(slot)
	if !ok {
		return Author{}, fmt.Errorf("%w: paper %d index %d", ErrUnknownSlot, slot.Paper, slot.Index)
	}
	a, _ := authorAt(v, id)
	return a, nil
}

// Author returns the author record for a vertex ID (as returned by
// assignments, ResolveSlot, Coauthors or AuthorsByName).
func (s *Service) Author(id int) (Author, error) {
	v := s.pub.Current()
	a, ok := authorAt(v, id)
	if !ok {
		return Author{}, fmt.Errorf("%w: %d", ErrUnknownAuthor, id)
	}
	return a, nil
}

// Coauthors returns the authors adjacent to id in the published
// collaboration network, ascending by ID. Records are fully
// materialized (papers, years, venues), so the cost is proportional to
// the neighbors' total paper count — on hub authors of a scale-free
// network that is the expensive read; callers that only need IDs or
// degrees should take Author(id).Coauthors instead.
func (s *Service) Coauthors(id int) ([]Author, error) {
	v := s.pub.Current()
	nbrs, ok := v.Coauthors(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAuthor, id)
	}
	out := make([]Author, 0, len(nbrs))
	for _, u := range nbrs {
		if a, ok := authorAt(v, int(u)); ok {
			out = append(out, a)
		}
	}
	return out, nil
}

// AuthorsByName returns every published author carrying the exact
// name, ascending by ID — the homonym set the disambiguator split the
// name into. An unknown name yields an empty slice, not an error.
func (s *Service) AuthorsByName(name string) []Author {
	v := s.pub.Current()
	ids := v.VerticesOfName(name)
	out := make([]Author, 0, len(ids))
	for _, id := range ids {
		if a, ok := authorAt(v, int(id)); ok {
			out = append(out, a)
		}
	}
	return out
}

// Paper resolves a published paper record — corpus and streamed papers
// alike. The returned record is shared and must not be mutated.
func (s *Service) Paper(id PaperID) (*Paper, error) {
	p, ok := s.pub.Current().PaperMeta(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPaper, id)
	}
	return p, nil
}

// Save writes a legacy single-file service snapshot (serving header +
// full pipeline state) to w. A service restored from it with Open
// answers every query and ingest bit-identically. Save refuses a
// partially-recovered service (its dead vertices have no legacy
// representation); use SaveFile, whose composite format carries them.
func (s *Service) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.pub.CapturedEpoch()
	s.pub.Sync(epoch)
	return core.SaveService(w, s.pl, epoch)
}

// SaveFile writes a service snapshot to path crash-safely: every file
// is written to a temp name in the target directory, fsynced, then
// renamed into place (and the directory fsynced), so a crash at any
// point leaves either the old snapshot or the new one — never a torn
// file. Sharded services (and partially-recovered ones) save the
// composite manifest-plus-segments format, with segments written in
// parallel; single-shard services keep the legacy single-file format.
func (s *Service) SaveFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveFileLocked(path)
}

func (s *Service) saveFileLocked(path string) error {
	// Holding s.mu keeps new captures out; Sync waits for in-flight
	// Apply/assemble work so the saved per-shard counters match the
	// saved pipeline state exactly.
	epoch := s.pub.CapturedEpoch()
	s.pub.Sync(epoch)
	if s.pub.Shards() > 1 || s.recovery != nil {
		return core.SaveShardedService(path, s.pl, epoch, s.pub.ShardSeeds())
	}
	return core.WriteFileAtomic(path, func(w io.Writer) error {
		return core.SaveService(w, s.pl, epoch)
	})
}

// Close shuts the write API down in drain order: stop admitting (new
// AddPapers fail, in-flight queued batches are flushed through their
// commits), then — when the service was opened with WithSnapshot —
// persist the fully-drained state to that path, so a process driving
// Close on shutdown restarts exactly where it stopped. Safe to call
// concurrently with AddPapers and idempotent: losers of the admission
// race get ErrClosed, a second Close returns nil without re-saving.
// Reads keep working against the last published epoch.
func (s *Service) Close() error {
	// Drain outside the write lock: the queued batches' commits take
	// s.mu themselves, so holding it here would deadlock the flush.
	s.q.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	// Persist BEFORE marking closed: a failed save (disk full, ...)
	// leaves the service open so a later Close can retry the snapshot
	// instead of reporting success for state that was never written.
	switch {
	case s.journal != nil:
		// Compact on shutdown: the successor restarts from a fresh
		// base with an empty journal (zero replay), and closing the
		// journal releases the directory lock for it.
		if err := s.compactLocked(); err != nil {
			return err
		}
		if err := s.journal.Close(); err != nil {
			return err
		}
	case s.snapshotPath != "":
		if err := s.saveFileLocked(s.snapshotPath); err != nil {
			return err
		}
	}
	s.closed = true
	s.closedA.Store(true)
	return nil
}

// Closed reports whether Close has completed, without touching the
// write lock — /healthz reads it even while a long commit holds mu.
func (s *Service) Closed() bool { return s.closedA.Load() }

// JournalStats returns the write-ahead journal's accounting (append
// counters, segment sizes, fsync latency histogram), or nil when the
// service was opened without WithJournal.
func (s *Service) JournalStats() *JournalStats {
	if s.journal == nil {
		return nil
	}
	st := s.journal.Stats()
	return &st
}

// JournalRecovery reports what journal recovery replayed when the
// service was opened with WithJournal (nil otherwise): batches and
// papers re-applied on top of the base snapshot, whether a torn tail
// record was truncated, and the recovery wall time.
func (s *Service) JournalRecovery() *ReplayReport { return s.jrec }

// Shards returns the point-in-time per-shard summaries (last-touch
// epoch, publish count, owned authors and slots, pending ingest
// depth), ascending by shard index. Lock-free.
func (s *Service) Shards() []core.ShardInfo { return s.pub.ShardInfos() }

// Contention returns the cumulative write-path contention and copy
// accounting (mutex wait, delta entries copied, flattens) — the
// numbers cmd/benchjson -shard compares across shard counts.
func (s *Service) Contention() core.ContentionStats { return s.pub.Contention() }

// Recovery reports what a partial snapshot load lost, or nil when the
// service loaded completely (the common case).
func (s *Service) Recovery() *core.RecoveryReport { return s.recovery }

// Pipeline exposes the underlying fitted pipeline for offline analysis
// (threshold sweeps, evaluation). It must not be mutated — and not
// read concurrently with service writes; the serving query surface is
// the Service API.
func (s *Service) Pipeline() *Pipeline { return s.pl }

// authorAt materializes the Author record of vertex id from one
// immutable view (lock-free; touches nothing owned by the writer).
func authorAt(v *core.View, id int) (Author, bool) {
	name, ok := v.AuthorName(id)
	if !ok {
		return Author{}, false
	}
	papers, _ := v.AuthorPapers(id)
	nbrs, _ := v.Coauthors(id)
	a := Author{
		ID:        id,
		Name:      name,
		Papers:    append([]bib.PaperID(nil), papers...),
		Coauthors: len(nbrs),
	}
	venueCount := make(map[string]int)
	for _, pid := range papers {
		p, ok := v.PaperMeta(pid)
		if !ok {
			continue
		}
		if p.Year != 0 {
			if a.FirstYear == 0 || p.Year < a.FirstYear {
				a.FirstYear = p.Year
			}
			if p.Year > a.LastYear {
				a.LastYear = p.Year
			}
		}
		if p.Venue != "" {
			venueCount[p.Venue]++
		}
	}
	if len(venueCount) > 0 {
		a.Venues = make([]string, 0, len(venueCount))
		for venue := range venueCount {
			a.Venues = append(a.Venues, venue)
		}
		sort.Slice(a.Venues, func(i, j int) bool {
			ci, cj := venueCount[a.Venues[i]], venueCount[a.Venues[j]]
			if ci != cj {
				return ci > cj
			}
			return a.Venues[i] < a.Venues[j]
		})
	}
	return a, true
}
