package iuad

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"iuad/internal/bib"
	"iuad/internal/core"
)

// Service is the serving-first face of IUAD: a concurrency-safe façade
// over a fitted Pipeline with a lock-free query API and a serialized,
// batched write API.
//
// # Read/write contract
//
// Writers (AddPaper / AddPapers) are serialized by an internal mutex;
// after each write batch the service publishes a new immutable view —
// an epoch — and swaps it in with a single atomic pointer store.
// Readers (ResolveSlot, Author, Coauthors, AuthorsByName, Stats) load
// that pointer once and answer entirely from the immutable epoch they
// got: no lock, no blocking, and never a partially-applied write. A
// reader may observe the epoch from just before a concurrent write —
// never a torn one. See DESIGN.md §8.
//
// Construct a Service with Open (corpus in, fitted service out) or
// NewService (wrap an already-fitted Pipeline).
type Service struct {
	mu           sync.Mutex // serializes writers and snapshotting
	pl           *core.Pipeline
	pub          *core.ViewPublisher
	view         atomic.Pointer[core.View]
	snapshotPath string
	closed       bool
}

// Stats is the point-in-time summary served by Service.Stats.
type Stats = core.ServiceStats

// Author is the query API's author record: one conjectured real-world
// author (a GCN vertex) with its attributed papers and the career
// aggregates the collaboration-network literature queries — active
// years and publishing venues.
type Author struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Papers is sorted ascending; IDs resolve via Service.Paper.
	Papers []PaperID `json:"papers"`
	// FirstYear/LastYear span the author's dated papers (0 = no dated
	// papers).
	FirstYear int `json:"first_year"`
	LastYear  int `json:"last_year"`
	// Venues lists the author's distinct publishing venues, most
	// frequent first (ties lexicographic).
	Venues []string `json:"venues"`
	// Coauthors is the author's degree in the collaboration network.
	Coauthors int `json:"coauthors"`
}

// options collects the functional Open/NewService configuration.
type options struct {
	cfg          Config
	cfgSet       bool
	workers      int
	workersSet   bool
	snapshotPath string
}

// Option configures Open and NewService.
type Option func(*options)

// WithConfig replaces the pipeline configuration used when Open fits a
// corpus (default: DefaultConfig). WithWorkers applies on top.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg; o.cfgSet = true }
}

// WithWorkers bounds the pipeline's worker pool. Results are
// bit-identical for every value; the knob only changes wall time.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n; o.workersSet = true }
}

// WithSnapshot binds the service to a snapshot file: Open loads it
// instead of refitting when it exists (the corpus argument may then be
// nil), and Close writes the current state back to it atomically
// (write to a temp file, then rename).
func WithSnapshot(path string) Option {
	return func(o *options) { o.snapshotPath = path }
}

// Open builds a serving Service. With a snapshot option whose file
// exists, the service is restored from it — no EM re-run, and the
// restored service answers every query and ingest bit-identically to
// the one that saved it. Otherwise the frozen corpus is disambiguated
// with the configured pipeline (this is the expensive fit path).
//
//	svc, err := iuad.Open(corpus, iuad.WithWorkers(8), iuad.WithSnapshot("iuad.snap"))
//	defer svc.Close()
func Open(corpus *Corpus, opts ...Option) (*Service, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.snapshotPath != "" {
		f, err := os.Open(o.snapshotPath)
		switch {
		case err == nil:
			defer f.Close()
			pl, epoch, err := core.LoadService(f)
			if err != nil {
				return nil, fmt.Errorf("iuad: load snapshot %s: %w", o.snapshotPath, err)
			}
			return newService(pl, epoch, &o), nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, fmt.Errorf("iuad: open snapshot %s: %w", o.snapshotPath, err)
		}
	}
	if corpus == nil {
		return nil, ErrNoCorpus
	}
	if !corpus.Frozen() {
		return nil, ErrNotFrozen
	}
	cfg := DefaultConfig()
	if o.cfgSet {
		cfg = o.cfg
	}
	if o.workersSet {
		cfg.Workers = o.workers
	}
	pl, err := core.Run(corpus, cfg)
	if err != nil {
		return nil, err
	}
	return newService(pl, 0, &o), nil
}

// NewService wraps an already-fitted pipeline (e.g. one built with
// Disambiguate, or restored with LoadPipeline) in the serving façade.
// The pipeline must not be used directly while the service is serving:
// the service owns all writes from here on.
func NewService(pl *Pipeline, opts ...Option) (*Service, error) {
	if pl == nil || pl.GCN == nil {
		return nil, fmt.Errorf("iuad: NewService needs a fitted pipeline")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return newService(pl, 0, &o), nil
}

func newService(pl *core.Pipeline, epoch uint64, o *options) *Service {
	if o.workersSet {
		pl.Cfg.Workers = o.workers
	}
	s := &Service{
		pl:           pl,
		pub:          core.NewViewPublisher(pl, epoch),
		snapshotPath: o.snapshotPath,
	}
	s.view.Store(s.pub.Current())
	return s
}

// AddPaper disambiguates and registers one newly published paper
// (§V-E), publishing a new epoch. It is AddPapers with a batch of one.
func (s *Service) AddPaper(ctx context.Context, p Paper) ([]Assignment, error) {
	res, err := s.AddPapers(ctx, []Paper{p})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// AddPapers ingests a batch of newly published papers in order and
// publishes one new epoch covering the whole batch. Assignments are
// bit-identical to ingesting the papers one at a time — batching only
// shares work (one invalidation pass per paper's neighborhood, one
// profile warm-up per paper, one epoch publish per batch) — so batch
// boundaries are a throughput choice, not a semantic one.
//
// ctx is checked between papers. On cancellation (or a validation
// error) the already-ingested prefix is still published and returned
// alongside the error; nothing of the failed paper is registered.
func (s *Service) AddPapers(ctx context.Context, batch []Paper) ([][]Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	res, err := s.pl.AddPapers(ctx, batch)
	if len(res) > 0 {
		s.view.Store(s.pub.Publish(res))
	}
	return res, err
}

// Stats returns the sizes of the currently published epoch.
func (s *Service) Stats() Stats { return s.view.Load().Stats() }

// Epoch returns the current publish epoch (one publish per write
// batch; readers can use it to detect progress).
func (s *Service) Epoch() uint64 { return s.view.Load().Epoch() }

// ResolveSlot answers "who wrote the Index-th name of this paper": the
// author the slot is assigned to in the published network.
func (s *Service) ResolveSlot(slot Slot) (Author, error) {
	v := s.view.Load()
	id, ok := v.ResolveSlot(slot)
	if !ok {
		return Author{}, fmt.Errorf("%w: paper %d index %d", ErrUnknownSlot, slot.Paper, slot.Index)
	}
	a, _ := authorAt(v, id)
	return a, nil
}

// Author returns the author record for a vertex ID (as returned by
// assignments, ResolveSlot, Coauthors or AuthorsByName).
func (s *Service) Author(id int) (Author, error) {
	v := s.view.Load()
	a, ok := authorAt(v, id)
	if !ok {
		return Author{}, fmt.Errorf("%w: %d", ErrUnknownAuthor, id)
	}
	return a, nil
}

// Coauthors returns the authors adjacent to id in the published
// collaboration network, ascending by ID. Records are fully
// materialized (papers, years, venues), so the cost is proportional to
// the neighbors' total paper count — on hub authors of a scale-free
// network that is the expensive read; callers that only need IDs or
// degrees should take Author(id).Coauthors instead.
func (s *Service) Coauthors(id int) ([]Author, error) {
	v := s.view.Load()
	nbrs, ok := v.Coauthors(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAuthor, id)
	}
	out := make([]Author, 0, len(nbrs))
	for _, u := range nbrs {
		if a, ok := authorAt(v, int(u)); ok {
			out = append(out, a)
		}
	}
	return out, nil
}

// AuthorsByName returns every published author carrying the exact
// name, ascending by ID — the homonym set the disambiguator split the
// name into. An unknown name yields an empty slice, not an error.
func (s *Service) AuthorsByName(name string) []Author {
	v := s.view.Load()
	ids := v.VerticesOfName(name)
	out := make([]Author, 0, len(ids))
	for _, id := range ids {
		if a, ok := authorAt(v, int(id)); ok {
			out = append(out, a)
		}
	}
	return out
}

// Paper resolves a published paper record — corpus and streamed papers
// alike. The returned record is shared and must not be mutated.
func (s *Service) Paper(id PaperID) (*Paper, error) {
	p, ok := s.view.Load().PaperMeta(id)
	if !ok {
		return nil, fmt.Errorf("iuad: unknown paper id %d", id)
	}
	return p, nil
}

// Save writes a service snapshot (serving header + full pipeline
// state) to w. A service restored from it with Open answers every
// query and ingest bit-identically.
func (s *Service) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.SaveService(w, s.pl, s.view.Load().Epoch())
}

// SaveFile writes a service snapshot to path atomically (temp file +
// rename).
func (s *Service) SaveFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveFileLocked(path)
}

func (s *Service) saveFileLocked(path string) error {
	// The temp file lands next to the target (same filesystem), so the
	// rename is atomic.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".iuad-snap-*")
	if err != nil {
		return err
	}
	if err := core.SaveService(tmp, s.pl, s.view.Load().Epoch()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Close shuts the write API down. When the service was opened with
// WithSnapshot, Close first persists the current state to that path,
// so a process driving Close on shutdown restarts exactly where it
// stopped. Reads keep working against the last published epoch.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	// Persist BEFORE marking closed: a failed save (disk full, ...)
	// leaves the service open so a later Close can retry the snapshot
	// instead of reporting success for state that was never written.
	if s.snapshotPath != "" {
		if err := s.saveFileLocked(s.snapshotPath); err != nil {
			return err
		}
	}
	s.closed = true
	return nil
}

// Pipeline exposes the underlying fitted pipeline for offline analysis
// (threshold sweeps, evaluation). It must not be mutated — and not
// read concurrently with service writes; the serving query surface is
// the Service API.
func (s *Service) Pipeline() *Pipeline { return s.pl }

// authorAt materializes the Author record of vertex id from one
// immutable view (lock-free; touches nothing owned by the writer).
func authorAt(v *core.View, id int) (Author, bool) {
	name, ok := v.AuthorName(id)
	if !ok {
		return Author{}, false
	}
	papers, _ := v.AuthorPapers(id)
	nbrs, _ := v.Coauthors(id)
	a := Author{
		ID:        id,
		Name:      name,
		Papers:    append([]bib.PaperID(nil), papers...),
		Coauthors: len(nbrs),
	}
	venueCount := make(map[string]int)
	for _, pid := range papers {
		p, ok := v.PaperMeta(pid)
		if !ok {
			continue
		}
		if p.Year != 0 {
			if a.FirstYear == 0 || p.Year < a.FirstYear {
				a.FirstYear = p.Year
			}
			if p.Year > a.LastYear {
				a.LastYear = p.Year
			}
		}
		if p.Venue != "" {
			venueCount[p.Venue]++
		}
	}
	if len(venueCount) > 0 {
		a.Venues = make([]string, 0, len(venueCount))
		for venue := range venueCount {
			a.Venues = append(a.Venues, venue)
		}
		sort.Slice(a.Venues, func(i, j int) bool {
			ci, cj := venueCount[a.Venues[i]], venueCount[a.Venues[j]]
			if ci != cj {
				return ci > cj
			}
			return a.Venues[i] < a.Venues[j]
		})
	}
	return a, true
}
