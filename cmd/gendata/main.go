// Command gendata generates a synthetic DBLP-like corpus with ground
// truth and writes it as JSONL (see DESIGN.md, substitution 1).
//
// Usage:
//
//	gendata -out corpus.jsonl [-authors 3000] [-communities 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"iuad"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gendata: ")
	var (
		out         = flag.String("out", "corpus.jsonl", "output JSONL path")
		authors     = flag.Int("authors", 0, "number of distinct authors (0 = default)")
		communities = flag.Int("communities", 0, "number of research communities (0 = default)")
		seed        = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := iuad.DefaultSyntheticConfig()
	cfg.Seed = *seed
	if *authors > 0 {
		cfg.Authors = *authors
	}
	if *communities > 0 {
		cfg.Communities = *communities
	}
	d := iuad.GenerateSynthetic(cfg)
	if err := iuad.SaveCorpusFile(*out, d.Corpus); err != nil {
		log.Fatal(err)
	}
	amb := d.AmbiguousNames(2)
	fmt.Fprintf(os.Stdout,
		"wrote %s: %d papers, %d authors, %d distinct names, %d ambiguous names\n",
		*out, d.Corpus.Len(), len(d.Authors), len(d.Corpus.Names()), len(amb))
	if len(amb) > 0 {
		fmt.Fprintf(os.Stdout, "most ambiguous name: %q (%d authors)\n",
			amb[0], len(d.AuthorsByName(amb[0])))
	}
}
