// Command iuadserver exposes the iuad.Service query and write API as
// JSON over HTTP — the serving shape of the paper's incremental claim
// (§V-E): fit once, then answer author queries and ingest newly
// published papers with no retraining, restart from a snapshot with no
// EM re-run.
//
// Endpoints:
//
//	GET  /healthz                      liveness (also reports the epoch)
//	GET  /v1/stats                     published network sizes (incl. shard count)
//	GET  /shards                       per-shard debug: epoch, slots, pending queue depth
//	GET  /v1/authors?name=Wei+Wang     the homonym set of an exact name
//	GET  /v1/authors/{id}              one author: name, papers, years, venues
//	GET  /v1/authors/{id}/coauthors    the author's collaboration neighbors
//	GET  /v1/resolve?paper=P&index=I   who wrote the I-th name of paper P
//	GET  /v1/papers/{id}               one published paper record
//	POST /v1/papers                    ingest; body = one paper object or an array
//
// POST bodies are bibliographic records:
//
//	{"title": "...", "venue": "VLDB", "year": 2024, "authors": ["Wei Wang", ...]}
//
// A JSON array of records is ingested as ONE batch (one shared
// invalidation pass per neighborhood, one published epoch) and answers
// with one assignment list per paper. The "epoch" field of write
// responses is the current epoch at response time — at least the epoch
// that published these assignments; epochs are cumulative, so that
// view and every later one contains the write. On a partial batch
// failure the response carries the assignments of the ingested prefix
// ("ingested" = its length): ingest is not transactional, so clients
// must retry only the remainder.
//
// Lifecycle: the service loads -snapshot when the file exists
// (skipping the fit entirely); on SIGINT/SIGTERM the server drains
// in-flight requests and persists the current state back to -snapshot,
// so the next start resumes exactly where this one stopped.
//
// Run a self-contained demo instance (synthetic corpus, no data files):
//
//	iuadserver -synthetic -addr :8080 -snapshot /tmp/iuad.snap
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"iuad"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iuadserver: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		corpusPth = flag.String("corpus", "", "JSONL corpus to fit when no snapshot exists")
		snapPath  = flag.String("snapshot", "", "service snapshot: loaded if present, written on shutdown")
		workers   = flag.Int("workers", 0, "worker pool bound (0 = one per logical CPU)")
		shards    = flag.Int("shards", 1, "serving-state shards keyed by name block (1-256)")
		partial   = flag.Bool("allow-partial", false, "serve a composite snapshot even when segment files are missing (lost shards restart empty)")
		synthetic = flag.Bool("synthetic", false, "fit a small synthetic corpus when no snapshot/corpus is given (demo/smoke)")
	)
	flag.Parse()

	svc, err := openService(*corpusPth, *snapPath, *workers, *shards, *partial, *synthetic)
	if err != nil {
		log.Fatal(err)
	}
	st := svc.Stats()
	log.Printf("serving epoch %d: %d papers, %d authors, %d edges, %d shards",
		st.Epoch, st.Papers, st.Authors, st.Edges, st.Shards)
	if rep := svc.Recovery(); rep != nil {
		log.Printf("PARTIAL RECOVERY: segments %v lost (%d authors, %d slots); %d edges and %d retained pairs dropped",
			rep.MissingSegments, rep.LostAuthors, rep.LostSlots, rep.DroppedEdges, rep.DroppedPairs)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	// Close persists to -snapshot (when configured) before the process
	// exits; a restart resumes from this exact state.
	if err := svc.Close(); err != nil {
		log.Fatalf("snapshot on shutdown: %v", err)
	}
	if *snapPath != "" {
		log.Printf("state persisted to %s", *snapPath)
	}
}

// openService builds the Service from (in priority order) an existing
// snapshot, a JSONL corpus, or the synthetic demo corpus.
func openService(corpusPath, snapPath string, workers, shards int, partial, synthetic bool) (*iuad.Service, error) {
	opts := []iuad.Option{iuad.WithWorkers(workers), iuad.WithShards(shards)}
	if partial {
		opts = append(opts, iuad.WithPartialRecovery())
	}
	if snapPath != "" {
		opts = append(opts, iuad.WithSnapshot(snapPath))
		if _, err := os.Stat(snapPath); err == nil {
			log.Printf("restoring from snapshot %s (no refit)", snapPath)
			return iuad.Open(nil, opts...)
		}
	}
	var corpus *iuad.Corpus
	switch {
	case corpusPath != "":
		c, err := iuad.LoadCorpusFile(corpusPath)
		if err != nil {
			return nil, err
		}
		c.Freeze()
		corpus = c
		log.Printf("fitting %d papers from %s", corpus.Len(), corpusPath)
	case synthetic:
		scfg := iuad.DefaultSyntheticConfig()
		scfg.Seed = 7
		scfg.Authors = 300
		scfg.Communities = 8
		corpus = iuad.GenerateSynthetic(scfg).Corpus
		log.Printf("fitting synthetic demo corpus (%d papers)", corpus.Len())
	default:
		return nil, errors.New("nothing to serve: pass -corpus, -synthetic, or -snapshot pointing at an existing file")
	}
	cfg := iuad.DefaultConfig()
	if corpus.Len() < 2000 {
		// Small corpora: train on more pairs and skip the (noisy at this
		// scale) embedding-heavy defaults; the demo stays fast.
		cfg.SampleRate = 0.5
		cfg.Embedding.Dim = 16
		cfg.Embedding.Epochs = 2
	}
	opts = append(opts, iuad.WithConfig(cfg))
	return iuad.Open(corpus, opts...)
}

// paperIn is the wire form of a bibliographic record.
type paperIn struct {
	Title   string   `json:"title"`
	Venue   string   `json:"venue"`
	Year    int      `json:"year"`
	Authors []string `json:"authors"`
}

func (p paperIn) paper() iuad.Paper {
	return iuad.Paper{Title: p.Title, Venue: p.Venue, Year: p.Year, Authors: p.Authors}
}

// assignmentOut is the wire form of one slot decision. Score is absent
// when there was no candidate to score against (the engine reports
// −Inf there, which JSON cannot carry).
type assignmentOut struct {
	Paper   int      `json:"paper"`
	Index   int      `json:"index"`
	Author  int      `json:"author"`
	Created bool     `json:"created"`
	Score   *float64 `json:"score,omitempty"`
}

func assignmentsOut(as []iuad.Assignment) []assignmentOut {
	out := make([]assignmentOut, len(as))
	for i, a := range as {
		out[i] = assignmentOut{
			Paper: int(a.Slot.Paper), Index: a.Slot.Index,
			Author: a.Vertex, Created: a.Created,
		}
		if !math.IsInf(a.Score, 0) && !math.IsNaN(a.Score) {
			score := a.Score
			out[i].Score = &score
		}
	}
	return out
}

func newHandler(svc *iuad.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": svc.Epoch()})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      svc.Epoch(),
			"shards":     svc.Shards(),
			"contention": svc.Contention(),
		})
	})
	mux.HandleFunc("/v1/resolve", func(w http.ResponseWriter, r *http.Request) {
		paper, err1 := strconv.Atoi(r.URL.Query().Get("paper"))
		index, err2 := strconv.Atoi(r.URL.Query().Get("index"))
		if err1 != nil || err2 != nil {
			writeError(w, http.StatusBadRequest, errors.New("resolve needs integer ?paper= and ?index="))
			return
		}
		a, err := svc.ResolveSlot(iuad.Slot{Paper: iuad.PaperID(paper), Index: index})
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})
	mux.HandleFunc("/v1/authors", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, errors.New("listing needs ?name= (exact author name)"))
			return
		}
		writeJSON(w, http.StatusOK, svc.AuthorsByName(name))
	})
	mux.HandleFunc("/v1/authors/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/authors/")
		idStr, sub, _ := strings.Cut(rest, "/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad author id %q", idStr))
			return
		}
		switch sub {
		case "":
			a, err := svc.Author(id)
			if err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			writeJSON(w, http.StatusOK, a)
		case "coauthors":
			peers, err := svc.Coauthors(id)
			if err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			writeJSON(w, http.StatusOK, peers)
		default:
			http.NotFound(w, r)
		}
	})
	mux.HandleFunc("/v1/papers/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/v1/papers/")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad paper id %q", idStr))
			return
		}
		p, err := svc.Paper(iuad.PaperID(id))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("/v1/papers", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST a paper object or array"))
			return
		}
		// Bound the body before decoding: one oversized request must not
		// take the whole serving process down. 8 MiB fits thousands of
		// bibliographic records per batch.
		r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
		dec := json.NewDecoder(r.Body)
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		trimmed := strings.TrimLeft(string(raw), " \t\r\n")
		if strings.HasPrefix(trimmed, "[") {
			var batch []paperIn
			if err := json.Unmarshal(raw, &batch); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			papers := make([]iuad.Paper, len(batch))
			for i := range batch {
				papers[i] = batch[i].paper()
			}
			res, err := svc.AddPapers(r.Context(), papers)
			out := make([][]assignmentOut, len(res))
			for i := range res {
				out[i] = assignmentsOut(res[i])
			}
			if err != nil {
				// Ingest is not transactional: the prefix before the
				// failing paper IS registered and published. Return its
				// assignments with the error so the client retries only
				// the remainder instead of double-ingesting the prefix.
				writeJSON(w, statusOf(err), map[string]any{
					"error":       err.Error(),
					"ingested":    len(res),
					"epoch":       svc.Epoch(),
					"assignments": out,
				})
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"epoch": svc.Epoch(), "assignments": out})
			return
		}
		var one paperIn
		if err := json.Unmarshal(raw, &one); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		as, err := svc.AddPaper(r.Context(), one.paper())
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": svc.Epoch(), "assignments": assignmentsOut(as)})
	})
	return mux
}

// statusOf maps the service's typed errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, iuad.ErrUnknownAuthor), errors.Is(err, iuad.ErrUnknownSlot):
		return http.StatusNotFound
	case errors.Is(err, iuad.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
