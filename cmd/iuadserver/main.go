// Command iuadserver exposes the iuad.Service query and write API as
// JSON over HTTP — the serving shape of the paper's incremental claim
// (§V-E): fit once, then answer author queries and ingest newly
// published papers with no retraining, restart from a snapshot with no
// EM re-run. The handler itself lives in internal/httpapi so the
// loadgen harness and cmd/benchjson can run it in-process.
//
// Endpoints:
//
//	GET  /healthz                      liveness (also reports the epoch)
//	GET  /v1/stats                     published network sizes (incl. shard count)
//	GET  /shards                       per-shard debug: epoch, slots, pending queue depth
//	GET  /metrics                      ingest queue, contention, per-endpoint latency
//	GET  /v1/authors?name=Wei+Wang     the homonym set of an exact name
//	GET  /v1/authors/{id}              one author: name, papers, years, venues
//	GET  /v1/authors/{id}/coauthors    the author's collaboration neighbors
//	GET  /v1/authors/{id}/ego?hops=H   bounded-BFS ego subgraph with edge weights
//	GET  /v1/authors/{id}/collaborators?k=K  strongest coauthors + overlap features
//	GET  /v1/authors/{id}/clustering   local clustering coefficient and triangles
//	GET  /v1/network                   whole-graph topology: density, components, degrees
//	GET  /v1/communities               deterministic label-propagation partition
//	GET  /v1/resolve?paper=P&index=I   who wrote the I-th name of paper P
//	GET  /v1/papers/{id}               one published paper record
//	POST /v1/papers                    ingest; body = one paper object or an array
//
// The analytics endpoints (/v1/network, /v1/communities, and the
// ego/collaborators/clustering subresources) are answered from an
// epoch-keyed cache compiled lazily per published epoch (DESIGN.md
// §13): repeat queries on one epoch are a single atomic load, e.g.
//
//	curl localhost:8080/v1/communities
//
// POST bodies are bibliographic records:
//
//	{"title": "...", "venue": "VLDB", "year": 2024, "authors": ["Wei Wang", ...]}
//
// A JSON array of records is ingested as ONE atomic batch: it is
// admitted whole by the bounded ingest queue, group-committed with any
// concurrently arriving batches into a single epoch publish, and
// either every paper lands or none does. Overload is a first-class
// answer, not a hang: past the queue's high-water mark (-ingest-queue)
// the server responds 429 with a Retry-After header and the stable
// error envelope {"error":{"code":"overloaded",...}} — clients back
// off and retry the whole batch.
//
// Lifecycle: the service loads -snapshot when the file exists
// (skipping the fit entirely); on SIGINT/SIGTERM the server stops
// admitting, drains in-flight requests and queued ingest batches, and
// persists the fully-drained state back to -snapshot, so the next
// start resumes exactly where this one stopped.
//
// Crash safety: -journal DIR (mutually exclusive with -snapshot)
// turns on the write-ahead batch journal (DESIGN.md §14). Every acked
// ingest batch is journaled before it is applied, so a SIGKILL — or,
// with -fsync percommit, a power cut — loses nothing that was acked:
// the restart replays the journal on top of the base snapshot and
// reproduces the killed process bit for bit. The listener comes up
// BEFORE recovery (requests answer 503 {"code":"starting"} until
// replay finishes), so health probes see the process immediately;
// /healthz flips to 200 with the recovery report once serving.
//
// Run a self-contained demo instance (synthetic corpus, no data files):
//
//	iuadserver -synthetic -addr :8080 -journal /tmp/iuad-wal
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iuad"
	"iuad/internal/faultinject"
	"iuad/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iuadserver: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		corpusPth  = flag.String("corpus", "", "JSONL corpus to fit when no snapshot exists")
		snapPath   = flag.String("snapshot", "", "service snapshot: loaded if present, written on shutdown")
		workers    = flag.Int("workers", 0, "worker pool bound (0 = one per logical CPU)")
		shards     = flag.Int("shards", 1, "serving-state shards keyed by name block (1-256)")
		partial    = flag.Bool("allow-partial", false, "serve a composite snapshot even when segment files are missing (lost shards restart empty)")
		synthetic  = flag.Bool("synthetic", false, "fit a small synthetic corpus when no snapshot/corpus is given (demo/smoke)")
		journalDir = flag.String("journal", "", "write-ahead journal directory: crash-safe continuous durability (mutually exclusive with -snapshot)")
		fsyncMode  = flag.String("fsync", "percommit", "journal fsync policy: percommit (power-loss safe), grouped, or off (SIGKILL-safe only)")
		compactN   = flag.Int("compact-every", 0, "journaled batches between base-snapshot compactions (0 = default 64, negative = never)")
		ingestQ    = flag.Int("ingest-queue", 0, "ingest admission bound in papers; past it POST /v1/papers answers 429 (0 = default 1024)")
		readTO     = flag.Duration("read-timeout", 30*time.Second, "per-request read deadline (http.Server.ReadTimeout; 0 = unlimited)")
		writeTO    = flag.Duration("write-timeout", 60*time.Second, "per-request write deadline (http.Server.WriteTimeout; covers slow ingests; 0 = unlimited)")
		drainTO    = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown bound for in-flight HTTP requests")
		retryAfter = flag.Duration("retry-after", time.Second, "backoff hint carried by 429 overload responses")
		chaosPub   = flag.Duration("chaos-publish-delay", 0, "FAULT INJECTION: stall every epoch publish this long (forces queue backpressure; load testing only)")
	)
	flag.Parse()

	if *chaosPub > 0 {
		d := *chaosPub
		faultinject.Arm(faultinject.PublishDelay, func() error {
			time.Sleep(d)
			return nil
		})
		log.Printf("CHAOS: every epoch publish delayed %v", d)
	}

	if *journalDir != "" && *snapPath != "" {
		log.Fatal("-journal and -snapshot are mutually exclusive: the journal owns its base snapshot")
	}
	fsync, err := iuad.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}

	// Listen BEFORE opening the service: journal replay can take a
	// while, and probes should see a live (if 503 "starting") process
	// the moment it exists. Attach atomically flips the full API on.
	api := httpapi.NewPending()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (recovering)", *addr)

	svc, err := openService(*corpusPth, *snapPath, *journalDir, *workers, *shards, *compactN,
		fsync, *partial, *synthetic, *ingestQ, *retryAfter)
	if err != nil {
		log.Fatal(err)
	}
	api.Attach(svc)
	st := svc.Stats()
	log.Printf("serving epoch %d: %d papers, %d authors, %d edges, %d shards",
		st.Epoch, st.Papers, st.Authors, st.Edges, st.Shards)
	if rep := svc.JournalRecovery(); rep != nil {
		log.Printf("journal recovery: %d batches (%d papers) replayed from %d segments on base epoch %d in %.1fms",
			rep.Batches, rep.Papers, rep.Segments, rep.BaseEpoch, float64(rep.WallNs)/1e6)
		if rep.TruncatedTail {
			log.Printf("journal recovery: torn tail truncated at %s offset %d (unacked crash remnant)",
				rep.TruncatedPath, rep.TruncatedOffset)
		}
	}
	if rep := svc.Recovery(); rep != nil {
		log.Printf("PARTIAL RECOVERY: segments %v lost (%d authors, %d slots); %d edges and %d retained pairs dropped",
			rep.MissingSegments, rep.LostAuthors, rep.LostSlots, rep.DroppedEdges, rep.DroppedPairs)
	}

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Drain order (DESIGN.md §12): stop accepting HTTP work, then let
	// Close stop ingest admission, flush the queued batches, and
	// persist the fully-drained state. A request cancelled by the
	// drain deadline withdraws its queued batch — nothing half-lands.
	log.Print("shutting down: draining requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Fatalf("snapshot on shutdown: %v", err)
	}
	switch {
	case *journalDir != "":
		log.Printf("journal compacted; state persisted to %s", *journalDir)
	case *snapPath != "":
		log.Printf("state persisted to %s", *snapPath)
	}
}

// openService builds the Service from (in priority order) a journal
// directory, an existing snapshot, a JSONL corpus, or the synthetic
// demo corpus.
func openService(corpusPath, snapPath, journalDir string, workers, shards, compactN int,
	fsync iuad.FsyncPolicy, partial, synthetic bool, ingestQ int, retryAfter time.Duration) (*iuad.Service, error) {
	opts := []iuad.Option{
		iuad.WithWorkers(workers),
		iuad.WithShards(shards),
		iuad.WithIngestConfig(iuad.IngestConfig{MaxQueued: ingestQ, RetryAfter: retryAfter}),
	}
	if partial {
		opts = append(opts, iuad.WithPartialRecovery())
	}
	if journalDir != "" {
		opts = append(opts, iuad.WithJournalConfig(journalDir,
			iuad.JournalConfig{Fsync: fsync, CompactEvery: compactN}))
		if _, err := os.Stat(iuad.JournalBasePath(journalDir)); err == nil {
			log.Printf("recovering from journal %s (no refit)", journalDir)
			return iuad.Open(nil, opts...)
		}
	}
	if snapPath != "" {
		opts = append(opts, iuad.WithSnapshot(snapPath))
		if _, err := os.Stat(snapPath); err == nil {
			log.Printf("restoring from snapshot %s (no refit)", snapPath)
			return iuad.Open(nil, opts...)
		}
	}
	var corpus *iuad.Corpus
	switch {
	case corpusPath != "":
		c, err := iuad.LoadCorpusFile(corpusPath)
		if err != nil {
			return nil, err
		}
		c.Freeze()
		corpus = c
		log.Printf("fitting %d papers from %s", corpus.Len(), corpusPath)
	case synthetic:
		scfg := iuad.DefaultSyntheticConfig()
		scfg.Seed = 7
		scfg.Authors = 300
		scfg.Communities = 8
		corpus = iuad.GenerateSynthetic(scfg).Corpus
		log.Printf("fitting synthetic demo corpus (%d papers)", corpus.Len())
	default:
		return nil, errors.New("nothing to serve: pass -corpus, -synthetic, or -snapshot pointing at an existing file")
	}
	cfg := iuad.DefaultConfig()
	if corpus.Len() < 2000 {
		// Small corpora: train on more pairs and skip the (noisy at this
		// scale) embedding-heavy defaults; the demo stays fast.
		cfg.SampleRate = 0.5
		cfg.Embedding.Dim = 16
		cfg.Embedding.Epochs = 2
	}
	opts = append(opts, iuad.WithConfig(cfg))
	return iuad.Open(corpus, opts...)
}
