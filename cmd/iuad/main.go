// Command iuad runs the full IUAD pipeline on a JSONL corpus and prints
// the reconstructed author clusters for the requested (or the most
// ambiguous) names.
//
// Usage:
//
//	iuad -in corpus.jsonl [-eta 2] [-workers 0] [-name "Wei Wang"] [-top 5]
//	     [-save pipeline.snap]
//	iuad -load pipeline.snap [-name "Wei Wang"] [-top 5]
//
// -save writes a binary snapshot of the fitted pipeline after
// disambiguation; -load restores one instead of re-running EM over the
// corpus, so a warm pipeline serves incremental queries immediately
// after restart.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"iuad"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iuad: ")
	var (
		in      = flag.String("in", "", "input corpus (JSONL; see cmd/gendata)")
		eta     = flag.Int("eta", 2, "η-SCR support threshold")
		workers = flag.Int("workers", 0, "worker pool size (0 = one per logical CPU; output is identical for any value)")
		name    = flag.String("name", "", "print clusters of this name only")
		top     = flag.Int("top", 5, "without -name: print the top-N most fragmented names")
		save    = flag.String("save", "", "write a binary pipeline snapshot here after disambiguation")
		load    = flag.String("load", "", "restore a pipeline snapshot instead of fitting (-in is ignored)")
	)
	flag.Parse()
	if *in == "" && *load == "" {
		flag.Usage()
		os.Exit(2)
	}
	var pl *iuad.Pipeline
	if *load != "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "eta" || f.Name == "in" {
				log.Printf("warning: -%s is ignored with -load (the snapshot carries the fitted pipeline)", f.Name)
			}
		})
		start := time.Now()
		var err error
		pl, err = iuad.LoadPipelineFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		// Workers is serving-host tuning, not fitted state: output is
		// bit-identical for any value, so the flag applies after load.
		pl.Cfg.Workers = *workers
		fmt.Printf("pipeline restored from %s in %v (no retraining)\n",
			*load, time.Since(start).Round(time.Millisecond))
	} else {
		corpus, err := iuad.LoadCorpusFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		cfg := iuad.DefaultConfig()
		cfg.Eta = *eta
		cfg.Workers = *workers
		pl, err = iuad.Disambiguate(corpus, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *save != "" {
		if err := iuad.SavePipelineFile(*save, pl); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pipeline snapshot written to %s\n", *save)
	}
	corpus := pl.Corpus
	names := corpus.Names()
	fmt.Printf("corpus: %d papers, %d names\n", corpus.Len(), len(names))
	fmt.Printf("SCN: %d vertices, %d edges\n", pl.SCN.VertexCount(), pl.SCN.EdgeCount())
	fmt.Printf("GCN: %d vertices, %d edges (threshold %.2f)\n\n",
		pl.GCN.VertexCount(), pl.GCN.EdgeCount(), pl.CalibratedDelta+pl.Cfg.Delta)

	if *name != "" {
		names = []string{*name}
	} else {
		sort.Slice(names, func(i, j int) bool {
			return len(pl.GCN.VerticesOf(names[i])) > len(pl.GCN.VerticesOf(names[j]))
		})
		if len(names) > *top {
			names = names[:*top]
		}
	}
	for _, n := range names {
		printName(pl, n)
	}
}

func printName(pl *iuad.Pipeline, name string) {
	ids := pl.GCN.VerticesOf(name)
	fmt.Printf("%q resolves to %d author(s):\n", name, len(ids))
	for k, id := range ids {
		v := pl.GCN.Verts[id]
		fmt.Printf("  author #%d: %d papers\n", k+1, len(v.Papers))
		for _, pid := range v.Papers {
			p := pl.Corpus.Paper(pid)
			fmt.Printf("    [%d] %s (%s)\n", p.Year, p.Title, p.Venue)
		}
	}
	fmt.Println()
}
