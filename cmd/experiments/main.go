// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §2 for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments -run all                 # everything, default scale
//	experiments -run table3,table4      # selected artifacts
//	experiments -scale quick            # small smoke-test corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"iuad/internal/experiments"
)

var runners = []string{"eq2", "fig3", "table3", "table4", "table5", "fig5", "table6", "fig6"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids ("+strings.Join(runners, ",")+") or 'all'")
		scale   = flag.String("scale", "default", "corpus scale: default | quick")
		seed    = flag.Int64("seed", 0, "override corpus seed (0 = config default)")
		workers = flag.Int("workers", 0, "IUAD worker pool size (0 = one per logical CPU; results are identical for any value)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *run == "all" {
		for _, r := range runners {
			want[r] = true
		}
	} else {
		for _, r := range strings.Split(*run, ",") {
			want[strings.TrimSpace(r)] = true
		}
	}

	var opts experiments.Options
	switch *scale {
	case "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if *seed != 0 {
		opts.Synth.Seed = *seed
	}
	if *workers != 0 {
		opts.Core.Workers = *workers
	}

	if want["eq2"] {
		tab := experiments.RunEq2()
		tab.Fprint(os.Stdout)
		fmt.Println()
	}

	start := time.Now()
	s, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d papers, %d names, %d test names (built in %v)\n\n",
		s.Corpus.Len(), len(s.Corpus.Names()), len(s.TestNames),
		time.Since(start).Round(time.Millisecond))

	show := func(tab experiments.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		tab.Fprint(os.Stdout)
		fmt.Println()
	}
	if want["fig3"] {
		r, err := experiments.RunFig3(s.Dataset)
		if err != nil {
			log.Fatal(err)
		}
		for _, tab := range r.Tables() {
			tab.Fprint(os.Stdout)
			fmt.Println()
		}
	}
	if want["table3"] {
		tab, results, err := experiments.RunTable3(s)
		show(tab, err)
		for _, r := range results {
			fmt.Printf("  %-9s avg %v per name\n", r.Method, r.PerName.Round(time.Microsecond))
		}
		fmt.Println()
	}
	if want["table4"] {
		tab, _, err := experiments.RunTable4(s)
		show(tab, err)
	}
	if want["table5"] {
		tab, _, err := experiments.RunTable5(s, nil)
		show(tab, err)
	}
	if want["fig5"] {
		tab, err := experiments.RunFig5(s, nil)
		show(tab, err)
	}
	if want["table6"] {
		tab, _, err := experiments.RunTable6(s, nil)
		show(tab, err)
	}
	if want["fig6"] {
		tabs, err := experiments.RunFig6(s)
		if err != nil {
			log.Fatal(err)
		}
		for _, tab := range tabs {
			tab.Fprint(os.Stdout)
			fmt.Println()
		}
	}
}
