// Command loadgen drives an open-loop mixed read/ingest workload
// against a running iuadserver and reports client-side latency
// percentiles, status breakdowns, and the server's own /metrics
// document (ingest queue depth, epoch-publish lag, 429 counts).
//
// The default run is one steady phase: -duration at -rate with
// -read-ratio reads (Zipf-skewed name/author lookups) and the rest
// ingest batches. -overload-rate adds a second deliberate-overload
// phase; with -ci the run exits nonzero unless that phase tripped
// backpressure (at least one 429) while the whole run produced zero
// 5xx and zero transport errors — the committed SLO smoke.
//
//	loadgen -url http://127.0.0.1:8080 -duration 10s -rate 200 -ci \
//	        -overload-rate 600 -overload-duration 3s -out BENCH_load.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"iuad/internal/loadgen"
)

// parseMix turns -mix into a read mix: the presets "default" and
// "analytics", or explicit "endpoint=weight,..." pairs. Validation of
// the endpoint names happens in loadgen.Run, which rejects unknown
// names up front.
func parseMix(s string) (map[string]float64, error) {
	switch s {
	case "", "default":
		return nil, nil // loadgen substitutes DefaultReadMix
	case "analytics":
		return loadgen.AnalyticsReadMix(), nil
	}
	mix := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q is not endpoint=weight", pair)
		}
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil {
			return nil, fmt.Errorf("-mix entry %q: %v", pair, err)
		}
		mix[name] = weight
	}
	return mix, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8080", "base URL of the serving process")
		duration  = flag.Duration("duration", 10*time.Second, "steady-phase length")
		rate      = flag.Float64("rate", 100, "steady-phase offered arrivals per second")
		readRatio = flag.Float64("read-ratio", 0.95, "fraction of arrivals that are reads")
		batch     = flag.Int("batch", 4, "papers per ingest batch")
		ovRate    = flag.Float64("overload-rate", 0, "offered rate of an extra pure-ingest overload phase (0 = skip)")
		ovFor     = flag.Duration("overload-duration", 3*time.Second, "overload-phase length")
		seed      = flag.Int64("seed", 1, "workload seed (same seed + same server state = same offered load)")
		zipfS     = flag.Float64("zipf", 1.3, "Zipf skew exponent of the read name distribution (> 1)")
		names     = flag.Int("names", 96, "author-name universe size bootstrapped from the service")
		ci        = flag.Bool("ci", false, "assert SLOs (zero 5xx / transport errors; overload phase must see 429s) and exit nonzero on violation")
		mixFlag   = flag.String("mix", "default", "steady-phase read mix: 'default', 'analytics' (folds in ego/collaborators/network/communities), or 'endpoint=weight,...' pairs (valid endpoints: "+strings.Join(loadgen.ReadEndpoints(), ", ")+")")
		out       = flag.String("out", "", "write the JSON report here ('' = stdout)")
	)
	flag.Parse()
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	r, err := loadgen.New(loadgen.Config{
		BaseURL:    *baseURL,
		Seed:       *seed,
		ZipfS:      *zipfS,
		NameSample: *names,
	})
	if err != nil {
		log.Fatal(err)
	}
	phases := []loadgen.Phase{{
		Name:      "steady",
		Duration:  *duration,
		Rate:      *rate,
		ReadRatio: *readRatio,
		BatchSize: *batch,
		ReadMix:   mix,
	}}
	if *ovRate > 0 {
		phases = append(phases, loadgen.Phase{
			Name:      "overload",
			Duration:  *ovFor,
			Rate:      *ovRate,
			ReadRatio: 0, // pure ingest: the phase exists to hit the queue bound
			BatchSize: *batch,
			Expect429: *ci,
		})
	}
	rep, err := r.Run(context.Background(), phases)
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range rep.Phases {
		log.Printf("phase %-8s %5.1fs: reads %d (p99 %s, 429 %d, 5xx %d)  ingest %d (p99 %s, 429 %d, 5xx %d)  epoch %d→%d",
			ph.Name, ph.Seconds,
			ph.Reads.Ops, time.Duration(ph.Reads.Latency.P99Ns), ph.Reads.Status429, ph.Reads.Status5xx,
			ph.Ingest.Ops, time.Duration(ph.Ingest.Latency.P99Ns), ph.Ingest.Status429, ph.Ingest.Status5xx,
			ph.EpochStart, ph.EpochEnd)
	}
	log.Printf("server: %d commits, %d grouped batches, publish-lag p99 %s, queue depth %d",
		rep.Final.Ingest.Commits, rep.Final.Ingest.GroupedBatches,
		time.Duration(rep.Final.Ingest.PublishLag.P99Ns), rep.Final.Ingest.Depth)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("wrote %s", *out)
	}

	if *ci {
		if violations := loadgen.AssertSLOs(rep); len(violations) > 0 {
			for _, v := range violations {
				log.Printf("SLO VIOLATION: %v", v)
			}
			os.Exit(1)
		}
		log.Print("SLOs hold: zero 5xx, zero transport errors, backpressure engaged where expected")
	}
}
