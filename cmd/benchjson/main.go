// Command benchjson is the benchmark regression harness for the
// disambiguation engine: it times the Table V scalability workload
// (stage 1 + stage 2 on a synthetic corpus, embeddings trained once and
// shared) at several worker counts, records memory behavior (bytes/op,
// allocs/op, heap in use), and emits machine-readable JSON so future
// changes can track the perf trajectory.
//
// Usage:
//
//	benchjson [-scale quick] [-workers 1,2,4,8] [-reps 3] [-out BENCH_intern.json]
//	          [-baseline-ns N -baseline-bytes N -baseline-allocs N]
//
// The emitted file records ns/op per worker count plus the speedup over
// Workers=1, together with gomaxprocs/num_cpu — speedup is a property
// of the hardware the harness ran on (a single-core container reports
// ≈1.0 by construction; the engine's output is identical either way).
// The optional -baseline-* flags embed a reference measurement (e.g.
// the pre-refactor implementation at Workers=1) so the report carries
// its own before/after comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"iuad/internal/core"
	"iuad/internal/experiments"
)

// Result is one (workers, time, memory) measurement. Time is the
// minimum over reps; memory counters are from the same best rep.
type Result struct {
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	BytesPerOp      uint64  `json:"bytes_per_op"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	HeapInUseAfter  uint64  `json:"heap_in_use_after"`
}

// Baseline is an optional reference measurement embedded via flags.
type Baseline struct {
	Label       string `json:"label"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// Report is the emitted document.
type Report struct {
	Benchmark    string    `json:"benchmark"`
	Scale        string    `json:"scale"`
	CorpusPapers int       `json:"corpus_papers"`
	TestNames    int       `json:"test_names"`
	GoMaxProcs   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	Reps         int       `json:"reps"`
	Results      []Result  `json:"results"`
	Baseline     *Baseline `json:"baseline,omitempty"`
	GeneratedAt  time.Time `json:"generated_at"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		scale    = flag.String("scale", "quick", "corpus scale: default | quick")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts to time")
		reps     = flag.Int("reps", 3, "repetitions per worker count (minimum time wins)")
		out      = flag.String("out", "BENCH_intern.json", "output JSON path")
		baseNs   = flag.Int64("baseline-ns", 0, "reference ns/op to embed (0 = none)")
		baseB    = flag.Uint64("baseline-bytes", 0, "reference bytes/op to embed")
		baseA    = flag.Uint64("baseline-allocs", 0, "reference allocs/op to embed")
		baseNote = flag.String("baseline-label", "pre-refactor string-keyed core, workers=1", "label for the embedded baseline")
	)
	flag.Parse()

	var counts []int
	for _, tok := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", tok)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 || counts[0] != 1 {
		counts = append([]int{1}, counts...) // serial baseline always measured
	}

	var opts experiments.Options
	switch *scale {
	case "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	start := time.Now()
	s, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d papers (built in %v, embeddings shared across runs)\n",
		s.Corpus.Len(), time.Since(start).Round(time.Millisecond))

	// run executes one full engine pass and reports wall time plus the
	// allocation deltas around it (GC'd before and after, so bytes/op is
	// total allocation, not residency; HeapInuse after the final GC
	// approximates the pipeline's resident working set).
	run := func(w int) (time.Duration, uint64, uint64, uint64) {
		cfg := opts.Core
		cfg.Workers = w
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		scn, err := core.BuildSCN(s.Corpus, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		bytesOp := after.TotalAlloc - before.TotalAlloc
		allocsOp := after.Mallocs - before.Mallocs
		runtime.GC()
		runtime.ReadMemStats(&after)
		// pl must stay live through the final ReadMemStats so HeapInuse
		// includes the fitted pipeline it claims to measure.
		runtime.KeepAlive(pl)
		return elapsed, bytesOp, allocsOp, after.HeapInuse
	}

	rep := Report{
		Benchmark:    "Table5ScalabilityWorkers",
		Scale:        *scale,
		CorpusPapers: s.Corpus.Len(),
		TestNames:    len(s.TestNames),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Reps:         *reps,
		GeneratedAt:  time.Now().UTC(),
	}
	if *baseNs > 0 {
		rep.Baseline = &Baseline{
			Label:       *baseNote,
			NsPerOp:     *baseNs,
			BytesPerOp:  *baseB,
			AllocsPerOp: *baseA,
		}
	}
	var serial time.Duration
	for _, w := range counts {
		best := time.Duration(0)
		var bestBytes, bestAllocs, bestHeap uint64
		for r := 0; r < *reps; r++ {
			d, bytesOp, allocsOp, heap := run(w)
			if best == 0 || d < best {
				best, bestBytes, bestAllocs, bestHeap = d, bytesOp, allocsOp, heap
			}
		}
		if w == 1 {
			serial = best
		}
		speedup := 0.0
		if best > 0 && serial > 0 {
			speedup = float64(serial) / float64(best)
		}
		rep.Results = append(rep.Results, Result{
			Workers:         w,
			NsPerOp:         best.Nanoseconds(),
			SpeedupVsSerial: speedup,
			BytesPerOp:      bestBytes,
			AllocsPerOp:     bestAllocs,
			HeapInUseAfter:  bestHeap,
		})
		fmt.Printf("workers=%d: %v (%.2fx vs serial), %.1f MB/op, %d allocs/op, heap %0.1f MB\n",
			w, best.Round(time.Millisecond), speedup,
			float64(bestBytes)/(1<<20), bestAllocs, float64(bestHeap)/(1<<20))
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
