// Command benchjson is the benchmark regression harness for the
// disambiguation engine: it times the Table V scalability workload
// (stage 1 + stage 2 on a synthetic corpus, embeddings trained once and
// shared) at several worker counts, records memory behavior (bytes/op,
// allocs/op, heap in use), breaks stage 2 down into its phases
// (candidate scoring, EM fit, decision, per-refine-round) via
// core.Config.StageHook, and emits machine-readable JSON so future
// changes can track the perf trajectory.
//
// Usage:
//
//	benchjson [-scale quick] [-workers 1,2,4,8] [-reps 3] [-out BENCH_refine.json]
//	          [-baseline-ns N -baseline-bytes N -baseline-allocs N]
//	          [-stage2-baseline-ns N -stage2-baseline-allocs N]
//	benchjson -accuracy 10000,40000,120000 [-accuracy-out BENCH_accuracy.json] [-accuracy-seed 1]
//	benchjson -shard [-shard-counts 1,8] [-shard-papers 400] [-shard-writers 4] [-shard-out BENCH_shard.json]
//	benchjson -load [-load-duration 5s] [-load-rate 150] [-load-overload-rate 400] [-load-out BENCH_load.json]
//	benchjson -network [-network-out BENCH_network.json]
//
// -network switches the harness to the collaboration-network analytics
// workload: it fits a synthetic service, compiles the epoch-keyed
// analytics graph once (the first Network() call), then measures repeat
// whole-graph queries, ego/collaborator lookups, the recompile cost of
// an epoch advance, and the determinism of the whole surface across
// worker counts. The run aborts (writing nothing) unless repeat
// Network() calls are at least 10x cheaper than the first-call
// compilation — the epoch-cache contract — and the analytics are
// byte-identical across worker counts.
//
// -load switches the harness to the serving SLO workload: it fits a
// synthetic service, serves it through the production HTTP handler
// (internal/httpapi) on an in-process listener, and drives the
// open-loop loadgen harness over it — a steady mixed read/ingest phase
// followed by a deliberate pure-ingest overload phase against a small
// admission bound. The run aborts (writing nothing) unless the SLOs
// hold: zero 5xx and zero transport errors everywhere, and the
// overload phase answered with 429 backpressure.
//
// -shard switches the harness to the serving-shard contention workload:
// at each shard count it restores an identical fitted service from one
// in-memory snapshot and streams the same papers through it, once with
// a single deterministic writer (per-publish copy volume, allocs/paper,
// and a free equivalence check — final network sizes must match across
// shard counts) and once with concurrent writers (mutex wait on the
// ingest, per-shard apply, and assembly locks). The emitted reduction
// ratios compare the highest shard count against the single-shard
// single-writer baseline.
//
// -accuracy switches the harness from perf to the labeled accuracy
// scenario (internal/accuracy): at each target corpus size it generates
// a scale-free labeled corpus, runs the batch pipeline and the
// split-corpus incremental replay, and records pairwise P/R/F1, B³ and
// purity for both paths, the batch-vs-incremental F1 gap, per-round
// accuracy curves, and memory/epoch-churn numbers.
//
// The emitted file records ns/op per worker count plus the speedup over
// Workers=1, together with gomaxprocs/num_cpu — speedup is a property
// of the hardware the harness ran on (a single-core container reports
// ≈1.0 by construction; the engine's output is identical either way).
// The optional -baseline-* flags embed a reference measurement (e.g.
// the previous PR's implementation at Workers=1) so the report carries
// its own before/after comparison; the -stage2-baseline-* flags do the
// same for the stage-2 (BuildGCN) slice of the pipeline.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"math/rand"

	"net/http/httptest"

	"iuad"
	"iuad/internal/accuracy"
	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/emfit"
	"iuad/internal/experiments"
	"iuad/internal/faultinject"
	"iuad/internal/httpapi"
	"iuad/internal/loadgen"
)

// Result is one (workers, time, memory) measurement. Time is the
// minimum over reps; memory counters and the stage breakdown are from
// the same best rep.
type Result struct {
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Stage1NsPerOp/Stage2NsPerOp split the op into BuildSCN and
	// BuildGCN; StageNs breaks stage 2 down further (score-initial,
	// fit-prep, em-fit, decision, refine-round-N).
	Stage1NsPerOp int64            `json:"stage1_ns_per_op"`
	Stage2NsPerOp int64            `json:"stage2_ns_per_op"`
	StageNs       map[string]int64 `json:"stage_ns"`
	// EMIterations is how many EM rounds the model fit of the best rep
	// ran — the stage breakdown's em-fit time divided by this gives
	// ns/iteration.
	EMIterations   int    `json:"em_iterations"`
	BytesPerOp     uint64 `json:"bytes_per_op"`
	AllocsPerOp    uint64 `json:"allocs_per_op"`
	HeapInUseAfter uint64 `json:"heap_in_use_after"`
}

// Baseline is an optional reference measurement embedded via flags.
type Baseline struct {
	Label       string `json:"label"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
}

// IngestResult is one ingest-mode measurement: the same paper stream
// fed one-at-a-time (batch=1, via AddPaper) or in AddPapers batches.
// Assignments are bit-identical across modes by the batched-ingest
// contract; only the shared work per paper changes.
type IngestResult struct {
	Batch           int     `json:"batch"`
	NsPerPaper      int64   `json:"ns_per_paper"`
	AllocsPerPaper  uint64  `json:"allocs_per_paper"`
	BytesPerPaper   uint64  `json:"bytes_per_paper"`
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// IngestReport is the batched-vs-single ingest section (BENCH_serve).
type IngestReport struct {
	Papers  int            `json:"papers"`
	Workers int            `json:"workers"`
	Results []IngestResult `json:"results"`
}

// EMFitBaseline is a reference measurement of the model-fit path,
// embedded so BENCH_emfit.json carries its own before/after comparison.
type EMFitBaseline struct {
	Label          string `json:"label"`
	ScoreInitialNs int64  `json:"score_initial_ns"`
	FitPrepNs      int64  `json:"fit_prep_ns"`
	EMFitNs        int64  `json:"em_fit_ns"`
}

// EMFitReport is the -emfit measurement: the model-fit path of the
// engine (fit-prep = splitting/anchor sampling/training-matrix
// assembly, em-fit = columnar EM + calibration, score-initial =
// candidate similarity vectors) plus the EM iteration count and the
// steady-state allocation cost of one EM iteration.
type EMFitReport struct {
	Workers        int   `json:"workers"`
	ScoreInitialNs int64 `json:"score_initial_ns"`
	FitPrepNs      int64 `json:"fit_prep_ns"`
	EMFitNs        int64 `json:"em_fit_ns"`
	CombinedNs     int64 `json:"fit_prep_plus_em_fit_ns"`
	EMIterations   int   `json:"em_iterations"`
	TrainingPairs  int   `json:"training_pairs"`
	// AllocsPerEMIteration is measured on an engine-shaped synthetic
	// fit (difference of two iteration budgets over identical data);
	// the columnar engine pins this at 0 (TestAllocsEMIteration).
	AllocsPerEMIteration float64        `json:"allocs_per_em_iteration"`
	Baseline             *EMFitBaseline `json:"baseline,omitempty"`
	// CombinedSpeedupVsBaseline is baseline (fit-prep + em-fit) over
	// measured (fit-prep + em-fit).
	CombinedSpeedupVsBaseline float64 `json:"fit_prep_plus_em_fit_speedup_vs_baseline,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmark    string    `json:"benchmark"`
	Scale        string    `json:"scale"`
	CorpusPapers int       `json:"corpus_papers"`
	TestNames    int       `json:"test_names"`
	GoMaxProcs   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	Reps         int       `json:"reps"`
	Results      []Result  `json:"results"`
	Baseline     *Baseline `json:"baseline,omitempty"`
	// Stage2Baseline is the reference measurement of the BuildGCN slice
	// alone, for stage-2-targeted changes.
	Stage2Baseline *Baseline `json:"stage2_baseline,omitempty"`
	// Ingest is the serving-path measurement (-ingest): batched
	// AddPapers against the one-at-a-time AddPaper stream.
	Ingest      *IngestReport `json:"ingest,omitempty"`
	GeneratedAt time.Time     `json:"generated_at"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		scale    = flag.String("scale", "quick", "corpus scale: default | quick")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts to time")
		reps     = flag.Int("reps", 3, "repetitions per worker count (minimum time wins)")
		out      = flag.String("out", "BENCH_refine.json", "output JSON path")
		baseNs   = flag.Int64("baseline-ns", 0, "reference ns/op to embed (0 = none)")
		baseB    = flag.Uint64("baseline-bytes", 0, "reference bytes/op to embed")
		baseA    = flag.Uint64("baseline-allocs", 0, "reference allocs/op to embed")
		baseNote = flag.String("baseline-label", "previous full-engine measurement, workers=1", "label for the embedded baseline")
		s2Ns     = flag.Int64("stage2-baseline-ns", 0, "reference stage-2 ns/op to embed (0 = none)")
		s2A      = flag.Uint64("stage2-baseline-allocs", 0, "reference stage-2 allocs/op to embed")
		s2Note   = flag.String("stage2-baseline-label", "previous stage-2 (BuildGCN) measurement, workers=1", "label for the embedded stage-2 baseline")
		ingest   = flag.Int("ingest", 0, "measure serving-path ingest over this many streamed papers (0 = skip)")
		ingestBS = flag.String("ingest-batches", "1,16,128", "comma-separated AddPapers batch sizes (1 = AddPaper one-at-a-time)")
		emfitOn  = flag.Bool("emfit", false, "emit the model-fit path report (fit-prep/em-fit/score ns, EM iterations, allocs per iteration)")
		emfitOut = flag.String("emfit-out", "BENCH_emfit.json", "output path of the -emfit report")
		// PR-4 model-fit measurements (row-major EM engine, map-built
		// venue index, workers=1, quick scale) embedded as the default
		// baseline of the -emfit report.
		emfitBaseScore = flag.Int64("emfit-baseline-score-ns", 27644979, "baseline score-initial ns (0 = no baseline)")
		emfitBasePrep  = flag.Int64("emfit-baseline-fitprep-ns", 40222406, "baseline fit-prep ns")
		emfitBaseFit   = flag.Int64("emfit-baseline-emfit-ns", 41764607, "baseline em-fit ns")
		emfitBaseNote  = flag.String("emfit-baseline-label", "PR-4 row-major EM engine, workers=1, quick scale", "label for the embedded em-fit baseline")
		accScales      = flag.String("accuracy", "", "comma-separated target corpus sizes (papers) for the labeled accuracy scenario, e.g. 10000,40000,120000; runs the scenario instead of the perf workload and writes -accuracy-out")
		accOut         = flag.String("accuracy-out", "BENCH_accuracy.json", "output path of the -accuracy report")
		accSeed        = flag.Int64("accuracy-seed", 1, "generator seed of the -accuracy corpora")
		shardOn        = flag.Bool("shard", false, "run the serving-shard contention workload instead of the perf workload and write -shard-out")
		shardCounts    = flag.String("shard-counts", "1,8", "comma-separated shard counts to measure (first is the baseline)")
		shardPapers    = flag.Int("shard-papers", 400, "papers streamed per -shard measurement")
		shardWriters   = flag.Int("shard-writers", 4, "concurrent writer goroutines in the -shard contention pass")
		shardOut       = flag.String("shard-out", "BENCH_shard.json", "output path of the -shard report")
		loadOn         = flag.Bool("load", false, "run the serving load workload (in-process HTTP server + open-loop loadgen) and write -load-out")
		loadOut        = flag.String("load-out", "BENCH_load.json", "output path of the -load report")
		loadDur        = flag.Duration("load-duration", 5*time.Second, "steady-phase length of the -load workload")
		loadRate       = flag.Float64("load-rate", 150, "steady-phase offered arrivals per second")
		loadRead       = flag.Float64("load-read-ratio", 0.95, "steady-phase read fraction")
		loadBatch      = flag.Int("load-batch", 4, "papers per ingest batch")
		loadOvRate     = flag.Float64("load-overload-rate", 400, "offered rate of the pure-ingest overload phase (0 = skip)")
		loadOvDur      = flag.Duration("load-overload-duration", 2*time.Second, "overload-phase length")
		loadQueue      = flag.Int("load-queue", 64, "ingest admission bound (papers) of the measured service")
		loadSeed       = flag.Int64("load-seed", 1, "workload seed")
		netOn          = flag.Bool("network", false, "run the collaboration-network analytics workload and write -network-out")
		netOut         = flag.String("network-out", "BENCH_network.json", "output path of the -network report")
		durOn          = flag.Bool("durability", false, "run the write-ahead journal workload (append cost per fsync policy, recovery wall time vs journal length) and write -durability-out")
		durOut         = flag.String("durability-out", "BENCH_durability.json", "output path of the -durability report")
		durAppends     = flag.Int("durability-appends", 256, "journal appends measured per fsync policy")
		durBatch       = flag.Int("durability-batch", 16, "papers per journaled batch")
		durReplay      = flag.String("durability-replay", "8,32,128", "comma-separated journal lengths (batches) for the recovery-time measurement")
	)
	flag.Parse()

	if *accScales != "" {
		runAccuracy(*accScales, *accOut, *accSeed)
		return
	}
	if *shardOn {
		runShard(*scale, *shardCounts, *shardPapers, *shardWriters, *shardOut)
		return
	}
	if *netOn {
		runNetwork(*netOut)
		return
	}
	if *durOn {
		runDurability(*durOut, *durAppends, *durBatch, *durReplay)
		return
	}
	if *loadOn {
		runLoad(loadParams{
			out: *loadOut, duration: *loadDur, rate: *loadRate, readRatio: *loadRead,
			batch: *loadBatch, overloadRate: *loadOvRate, overloadDur: *loadOvDur,
			queue: *loadQueue, seed: *loadSeed,
		})
		return
	}

	var counts []int
	for _, tok := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", tok)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 || counts[0] != 1 {
		counts = append([]int{1}, counts...) // serial baseline always measured
	}

	var opts experiments.Options
	switch *scale {
	case "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	start := time.Now()
	s, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d papers (built in %v, embeddings shared across runs)\n",
		s.Corpus.Len(), time.Since(start).Round(time.Millisecond))

	// oneRun is a single full engine pass: wall times (total and per
	// stage) plus the allocation deltas around it (GC'd before and
	// after, so bytes/op is total allocation, not residency; HeapInuse
	// after the final GC approximates the pipeline's resident set).
	type oneRun struct {
		total, stage1, stage2     time.Duration
		stages                    map[string]int64
		emIters, trainingPairs    int
		bytesOp, allocsOp, heapOp uint64
	}
	run := func(w int) oneRun {
		cfg := opts.Core
		cfg.Workers = w
		stages := map[string]int64{}
		cfg.StageHook = func(stage string, d time.Duration) { stages[stage] += d.Nanoseconds() }
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		scn, err := core.BuildSCN(s.Corpus, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		pl, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t2 := time.Now()
		runtime.ReadMemStats(&after)
		r := oneRun{
			total:    t2.Sub(t0),
			stage1:   t1.Sub(t0),
			stage2:   t2.Sub(t1),
			stages:   stages,
			bytesOp:  after.TotalAlloc - before.TotalAlloc,
			allocsOp: after.Mallocs - before.Mallocs,
		}
		if pl.Model != nil {
			r.emIters = pl.Model.Iterations
			r.trainingPairs = pl.TrainingPairs
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		// pl must stay live through the final ReadMemStats so HeapInuse
		// includes the fitted pipeline it claims to measure.
		runtime.KeepAlive(pl)
		r.heapOp = after.HeapInuse
		return r
	}

	rep := Report{
		Benchmark:    "Table5ScalabilityWorkers",
		Scale:        *scale,
		CorpusPapers: s.Corpus.Len(),
		TestNames:    len(s.TestNames),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Reps:         *reps,
		GeneratedAt:  time.Now().UTC(),
	}
	if *baseNs > 0 {
		rep.Baseline = &Baseline{
			Label:       *baseNote,
			NsPerOp:     *baseNs,
			BytesPerOp:  *baseB,
			AllocsPerOp: *baseA,
		}
	}
	if *s2Ns > 0 {
		rep.Stage2Baseline = &Baseline{
			Label:       *s2Note,
			NsPerOp:     *s2Ns,
			AllocsPerOp: *s2A,
		}
	}
	var serial time.Duration
	for _, w := range counts {
		var best oneRun
		for r := 0; r < *reps; r++ {
			one := run(w)
			if best.total == 0 || one.total < best.total {
				best = one
			}
		}
		if w == 1 {
			serial = best.total
		}
		speedup := 0.0
		if best.total > 0 && serial > 0 {
			speedup = float64(serial) / float64(best.total)
		}
		rep.Results = append(rep.Results, Result{
			Workers:         w,
			NsPerOp:         best.total.Nanoseconds(),
			SpeedupVsSerial: speedup,
			Stage1NsPerOp:   best.stage1.Nanoseconds(),
			Stage2NsPerOp:   best.stage2.Nanoseconds(),
			StageNs:         best.stages,
			EMIterations:    best.emIters,
			BytesPerOp:      best.bytesOp,
			AllocsPerOp:     best.allocsOp,
			HeapInUseAfter:  best.heapOp,
		})
		if *emfitOn && w == 1 {
			em := &EMFitReport{
				Workers:              1,
				ScoreInitialNs:       best.stages["score-initial"],
				FitPrepNs:            best.stages["fit-prep"],
				EMFitNs:              best.stages["em-fit"],
				EMIterations:         best.emIters,
				TrainingPairs:        best.trainingPairs,
				AllocsPerEMIteration: measureEMIterationAllocs(),
			}
			em.CombinedNs = em.FitPrepNs + em.EMFitNs
			if *emfitBasePrep > 0 || *emfitBaseFit > 0 {
				em.Baseline = &EMFitBaseline{
					Label:          *emfitBaseNote,
					ScoreInitialNs: *emfitBaseScore,
					FitPrepNs:      *emfitBasePrep,
					EMFitNs:        *emfitBaseFit,
				}
				if em.CombinedNs > 0 {
					em.CombinedSpeedupVsBaseline =
						float64(*emfitBasePrep+*emfitBaseFit) / float64(em.CombinedNs)
				}
			}
			writeEMFitReport(*emfitOut, &rep, em)
		}
		fmt.Printf("workers=%d: %v (%.2fx vs serial), stage1 %v, stage2 %v, %.1f MB/op, %d allocs/op, heap %0.1f MB\n",
			w, best.total.Round(time.Millisecond), speedup,
			best.stage1.Round(time.Millisecond), best.stage2.Round(time.Millisecond),
			float64(best.bytesOp)/(1<<20), best.allocsOp, float64(best.heapOp)/(1<<20))
		names := make([]string, 0, len(best.stages))
		for name := range best.stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-16s %v\n", name, time.Duration(best.stages[name]).Round(time.Millisecond))
		}
	}

	if *ingest > 0 {
		var sizes []int
		for _, tok := range strings.Split(*ingestBS, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				log.Fatalf("bad -ingest-batches entry %q", tok)
			}
			sizes = append(sizes, n)
		}
		// The one-at-a-time baseline is always measured, exactly once,
		// and first — every SpeedupVsSingle divides by the same number.
		ordered := []int{1}
		for _, n := range sizes {
			if n != 1 {
				ordered = append(ordered, n)
			}
		}
		sizes = ordered
		rep.Ingest = measureIngest(s, opts, *ingest, sizes, *reps)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measureEMIterationAllocs measures the steady-state allocation cost of
// one EM iteration on an engine-shaped synthetic fit (the pipeline's
// default family layout: one Gaussian, five zero-inflated
// exponentials): two fits over identical data with different iteration
// budgets, allocation delta divided by the extra iterations. The
// columnar engine's contract is 0 (TestAllocsEMIteration pins it); this
// keeps the number on the emitted record so a regression is visible in
// the committed JSON, not just in CI.
func measureEMIterationAllocs() float64 {
	rng := rand.New(rand.NewSource(7))
	specs := []emfit.FeatureSpec{{Name: "interests", Family: emfit.Gaussian}}
	for _, name := range []string{"wl-kernel", "cliques", "time-consistency", "rep-community", "community"} {
		specs = append(specs, emfit.FeatureSpec{Name: name, Family: emfit.ZeroInflatedExponential})
	}
	const n = 20000
	mx := emfit.NewMatrix(len(specs), n)
	row := make([]float64, len(specs))
	for j := 0; j < n; j++ {
		row[0] = rng.NormFloat64()*0.3 + 0.4
		for i := 1; i < len(specs); i++ {
			if rng.Float64() < 0.6 {
				row[i] = 0
			} else {
				row[i] = rng.ExpFloat64() / 4
			}
		}
		mx.AppendRow(row)
	}
	fitWith := func(iters int) uint64 {
		opts := emfit.DefaultOptions()
		opts.MaxIter = iters
		opts.Tol = 1e-300 // force the full budget; convergence is measured elsewhere
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, _, err := emfit.FitMatrix(mx, specs, opts); err != nil {
			log.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	const short, long = 2, 12
	a := fitWith(short)
	b := fitWith(long)
	if b <= a {
		return 0
	}
	return float64(b-a) / float64(long-short)
}

// writeEMFitReport emits the standalone BENCH_emfit.json document.
func writeEMFitReport(path string, rep *Report, em *EMFitReport) {
	doc := struct {
		Benchmark    string       `json:"benchmark"`
		Scale        string       `json:"scale"`
		CorpusPapers int          `json:"corpus_papers"`
		GoMaxProcs   int          `json:"gomaxprocs"`
		NumCPU       int          `json:"num_cpu"`
		Reps         int          `json:"reps"`
		EMFit        *EMFitReport `json:"emfit"`
		GeneratedAt  time.Time    `json:"generated_at"`
	}{
		Benchmark:    "ModelFitPath",
		Scale:        rep.Scale,
		CorpusPapers: rep.CorpusPapers,
		GoMaxProcs:   rep.GoMaxProcs,
		NumCPU:       rep.NumCPU,
		Reps:         rep.Reps,
		EMFit:        em,
		GeneratedAt:  time.Now().UTC(),
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	speed := ""
	if em.CombinedSpeedupVsBaseline > 0 {
		speed = fmt.Sprintf(" (%.2fx vs %s)", em.CombinedSpeedupVsBaseline, em.Baseline.Label)
	}
	fmt.Printf("emfit: fit-prep %v + em-fit %v = %v%s, %d EM iters, %.2f allocs/iter; wrote %s\n",
		time.Duration(em.FitPrepNs).Round(time.Millisecond),
		time.Duration(em.EMFitNs).Round(time.Millisecond),
		time.Duration(em.CombinedNs).Round(time.Millisecond),
		speed, em.EMIterations, em.AllocsPerEMIteration, path)
}

// AccuracyScale is one scenario run of the -accuracy report: the
// requested target plus the full scenario result (realized corpus,
// degree slope, both paths' metrics and resource numbers, F1 gap).
type AccuracyScale struct {
	TargetPapers int `json:"target_papers"`
	*accuracy.Result
}

// runAccuracy executes the labeled accuracy scenario at each target
// corpus size and writes the standalone BENCH_accuracy.json document.
func runAccuracy(scalesCSV, path string, seed int64) {
	var targets []int
	for _, tok := range strings.Split(scalesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1000 {
			log.Fatalf("bad -accuracy entry %q (want target paper counts ≥ 1000)", tok)
		}
		targets = append(targets, n)
	}
	sort.Ints(targets)
	doc := struct {
		Benchmark   string          `json:"benchmark"`
		Seed        int64           `json:"seed"`
		GoMaxProcs  int             `json:"gomaxprocs"`
		NumCPU      int             `json:"num_cpu"`
		Scales      []AccuracyScale `json:"scales"`
		GeneratedAt time.Time       `json:"generated_at"`
	}{
		Benchmark:  "LabeledAccuracyScenario",
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, target := range targets {
		t0 := time.Now()
		res, err := accuracy.Run(accuracy.Scale(target, seed))
		if err != nil {
			log.Fatalf("accuracy target=%d: %v", target, err)
		}
		doc.Scales = append(doc.Scales, AccuracyScale{TargetPapers: target, Result: res})
		b, inc := res.Batch.Metrics, res.Incremental.Metrics
		fmt.Printf("accuracy target=%d: %d papers, %d ambiguous names, slope %.2f (%v)\n",
			target, res.Papers, res.AmbiguousNames, res.DegreeSlope, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  batch:       P=%.4f R=%.4f F1=%.4f b3F=%.4f purity=%.4f (%v, heap %.1f MB)\n",
			b.Pairwise.MicroP, b.Pairwise.MicroR, b.Pairwise.MicroF, b.B3F, b.Purity,
			time.Duration(res.Batch.WallNs).Round(time.Millisecond),
			float64(res.Batch.HeapInUseAfter)/(1<<20))
		fmt.Printf("  incremental: P=%.4f R=%.4f F1=%.4f b3F=%.4f purity=%.4f (gap %.4f, %d epochs, replay %v)\n",
			inc.Pairwise.MicroP, inc.Pairwise.MicroR, inc.Pairwise.MicroF, inc.B3F, inc.Purity,
			res.PairwiseF1Gap, res.Incremental.EpochPublishes,
			time.Duration(res.Incremental.ReplayNs).Round(time.Millisecond))
	}
	doc.GeneratedAt = time.Now().UTC()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// ingestStream builds the deterministic serving-path paper stream:
// multi-author papers over the ambiguous test names, so every ingest
// scores large candidate sets AND registers collaboration edges, and
// the h-hop invalidation pass (the part batching shares) is on the
// measured path.
func ingestStream(s *experiments.Suite, papers int) []bib.Paper {
	stream := make([]bib.Paper, papers)
	for i := range stream {
		a := s.TestNames[i%len(s.TestNames)]
		b := s.TestNames[(i+1)%len(s.TestNames)]
		authors := []string{a, b}
		if a == b {
			authors = []string{a}
		}
		if i%3 == 0 {
			authors = append(authors, fmt.Sprintf("Ingest Collaborator %d", i%11))
		}
		stream[i] = bib.Paper{
			Title:   fmt.Sprintf("serve ingest probe %d on streaming graph mining", i),
			Venue:   "KDD",
			Year:    2021 + i%3,
			Authors: authors,
		}
	}
	return stream
}

// measureIngest times the serving write path: the same deterministic
// stream of papers (ambiguous test names, so candidate scoring
// dominates) fed one-at-a-time versus in AddPapers batches, each run
// against a fresh pipeline restored from one in-memory snapshot so
// every mode ingests into identical state. Minimum over reps wins.
func measureIngest(s *experiments.Suite, opts experiments.Options, papers int, sizes []int, reps int) *IngestReport {
	cfg := opts.Core
	cfg.Workers = 1 // serving-shaped measurement, hardware-independent
	pl, err := core.Run(s.Corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var snap bytes.Buffer
	if err := core.SavePipeline(&snap, pl); err != nil {
		log.Fatal(err)
	}
	stream := ingestStream(s, papers)
	rep := &IngestReport{Papers: papers, Workers: 1}
	var singleNs int64
	for _, batch := range sizes {
		var bestNs int64
		var bestAllocs, bestBytes uint64
		for r := 0; r < reps; r++ {
			fresh, err := core.LoadPipeline(bytes.NewReader(snap.Bytes()))
			if err != nil {
				log.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			if batch == 1 {
				for _, p := range stream {
					if _, err := fresh.AddPaper(p); err != nil {
						log.Fatal(err)
					}
				}
			} else {
				for off := 0; off < len(stream); off += batch {
					end := off + batch
					if end > len(stream) {
						end = len(stream)
					}
					if _, err := fresh.AddPapers(context.Background(), stream[off:end]); err != nil {
						log.Fatal(err)
					}
				}
			}
			elapsed := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&after)
			if bestNs == 0 || elapsed < bestNs {
				bestNs = elapsed
				bestAllocs = after.Mallocs - before.Mallocs
				bestBytes = after.TotalAlloc - before.TotalAlloc
			}
		}
		res := IngestResult{
			Batch:          batch,
			NsPerPaper:     bestNs / int64(papers),
			AllocsPerPaper: bestAllocs / uint64(papers),
			BytesPerPaper:  bestBytes / uint64(papers),
		}
		if batch == 1 {
			singleNs = res.NsPerPaper
		}
		if singleNs > 0 {
			res.SpeedupVsSingle = float64(singleNs) / float64(res.NsPerPaper)
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("ingest batch=%-4d %8d ns/paper (%.2fx vs one-at-a-time), %d allocs/paper\n",
			batch, res.NsPerPaper, res.SpeedupVsSingle, res.AllocsPerPaper)
	}
	return rep
}

// loadParams collects the -load workload knobs.
type loadParams struct {
	out          string
	duration     time.Duration
	rate         float64
	readRatio    float64
	batch        int
	overloadRate float64
	overloadDur  time.Duration
	queue        int
	seed         int64
}

// runLoad measures the serving SLO workload: the production HTTP
// handler (internal/httpapi) over a synthetic-fitted service, driven
// in-process by the open-loop loadgen harness — one steady mixed
// phase, then a deliberate pure-ingest overload phase against a small
// admission bound. The committed document pins the serving SLOs:
// zero 5xx everywhere, backpressure (429s) engaged under overload,
// client p50/p99/p999 latencies, and the server's epoch-publish lag
// and group-commit accounting.
func runLoad(p loadParams) {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 7
	scfg.Authors = 300
	scfg.Communities = 8
	corpus := iuad.GenerateSynthetic(scfg).Corpus
	cfg := iuad.DefaultConfig()
	cfg.SampleRate = 0.5
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	t0 := time.Now()
	svc, err := iuad.Open(corpus, iuad.WithConfig(cfg),
		iuad.WithIngestConfig(iuad.IngestConfig{MaxQueued: p.queue}))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("load workload: fitted %d synthetic papers in %v, ingest queue bound %d papers\n",
		corpus.Len(), time.Since(t0).Round(time.Millisecond), p.queue)

	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	runner, err := loadgen.New(loadgen.Config{BaseURL: srv.URL, Seed: p.seed})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := runner.Run(context.Background(), []loadgen.Phase{{
		Name: "steady", Duration: p.duration, Rate: p.rate,
		ReadRatio: p.readRatio, BatchSize: p.batch,
	}})
	if err != nil {
		log.Fatal(err)
	}
	if p.overloadRate > 0 {
		// In-process commits finish in microseconds, so an offered-rate
		// burst alone cannot fill the admission queue. Slow every epoch
		// publish for the overload phase only: at 60ms per publish the
		// burst admits more papers per stall window than the bound
		// allows, so backpressure must engage — the contract this
		// baseline pins.
		disarm := faultinject.Arm(faultinject.PublishDelay, func() error {
			time.Sleep(60 * time.Millisecond)
			return nil
		})
		ovRep, err := runner.Run(context.Background(), []loadgen.Phase{{
			Name: "overload", Duration: p.overloadDur, Rate: p.overloadRate,
			ReadRatio: 0, BatchSize: p.batch, Expect429: true,
		}})
		disarm()
		if err != nil {
			log.Fatal(err)
		}
		rep.Phases = append(rep.Phases, ovRep.Phases...)
		rep.Final = ovRep.Final
	}
	for _, ph := range rep.Phases {
		fmt.Printf("phase %-8s %5.1fs: reads %d (p99 %v, 5xx %d)  ingest %d (p99 %v, 429 %d, 5xx %d)  epoch %d→%d\n",
			ph.Name, ph.Seconds,
			ph.Reads.Ops, time.Duration(ph.Reads.Latency.P99Ns).Round(time.Microsecond), ph.Reads.Status5xx,
			ph.Ingest.Ops, time.Duration(ph.Ingest.Latency.P99Ns).Round(time.Microsecond),
			ph.Ingest.Status429, ph.Ingest.Status5xx, ph.EpochStart, ph.EpochEnd)
	}
	if violations := loadgen.AssertSLOs(rep); len(violations) > 0 {
		for _, v := range violations {
			log.Printf("SLO VIOLATION: %v", v)
		}
		log.Fatal("load workload violated its SLOs; not writing a broken baseline")
	}

	doc := struct {
		Benchmark    string          `json:"benchmark"`
		CorpusPapers int             `json:"corpus_papers"`
		QueueBound   int             `json:"queue_bound"`
		GoMaxProcs   int             `json:"gomaxprocs"`
		NumCPU       int             `json:"num_cpu"`
		Load         *loadgen.Report `json:"load"`
		GeneratedAt  time.Time       `json:"generated_at"`
	}{
		Benchmark:    "ServingLoadSLO",
		CorpusPapers: corpus.Len(),
		QueueBound:   p.queue,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Load:         rep,
		GeneratedAt:  time.Now().UTC(),
	}
	// The in-process base URL is an ephemeral port — meaningless in a
	// committed baseline and a source of spurious diffs.
	rep.BaseURL = "in-process"
	f, err := os.Create(p.out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLOs hold (zero 5xx, backpressure engaged under overload); wrote %s\n", p.out)
}

// runNetwork measures the collaboration-network analytics surface: the
// lazy first-epoch compile against repeat cached queries (the ≥10×
// epoch-cache contract this baseline pins — the run aborts rather than
// commit a broken one), the recompile an epoch advance costs, per-query
// ego/collaborator/clustering latency, and end-to-end determinism: a
// second service fitted from the same corpus with a different worker
// count must answer every analytics query identically.
func runNetwork(path string) {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 7
	scfg.Authors = 300
	scfg.Communities = 8
	corpus := iuad.GenerateSynthetic(scfg).Corpus
	cfg := iuad.DefaultConfig()
	cfg.SampleRate = 0.5
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	open := func(workers int) *iuad.Service {
		c := cfg
		c.Workers = workers
		svc, err := iuad.Open(corpus, iuad.WithConfig(c))
		if err != nil {
			log.Fatal(err)
		}
		return svc
	}
	t0 := time.Now()
	svc := open(1)
	defer svc.Close()
	fmt.Printf("network workload: fitted %d synthetic papers in %v\n",
		corpus.Len(), time.Since(t0).Round(time.Millisecond))

	// First call: compiles the epoch's analytics graph (CSR + components
	// + clustering sweep). Repeats: one atomic load plus a struct copy.
	t0 = time.Now()
	net := svc.Network()
	firstNs := time.Since(t0).Nanoseconds()
	const repeats = 5000
	t0 = time.Now()
	for i := 0; i < repeats; i++ {
		svc.Network()
	}
	repeatNs := time.Since(t0).Nanoseconds() / repeats
	speedup := 0.0
	if repeatNs > 0 {
		speedup = float64(firstNs) / float64(repeatNs)
	}
	fmt.Printf("first Network() %v (compile), repeat %v (%.0fx)\n",
		time.Duration(firstNs).Round(time.Microsecond), time.Duration(repeatNs), speedup)

	t0 = time.Now()
	comm := svc.Communities()
	communitiesNs := time.Since(t0).Nanoseconds()

	// Per-query latency of the bounded subgraph surface, cycled over the
	// author universe so hubs and leaves both land in the sample.
	const queries = 500
	t0 = time.Now()
	for i := 0; i < queries; i++ {
		if _, err := svc.Ego(i%net.Authors, 2); err != nil {
			log.Fatal(err)
		}
	}
	egoNs := time.Since(t0).Nanoseconds() / queries
	t0 = time.Now()
	for i := 0; i < queries; i++ {
		if _, err := svc.TopCollaborators(i%net.Authors, 8); err != nil {
			log.Fatal(err)
		}
	}
	colNs := time.Since(t0).Nanoseconds() / queries

	// An epoch advance invalidates the cache: the next Network() call
	// recompiles for the new epoch.
	preRebuilds := svc.Analytics().Rebuilds
	if _, err := svc.AddPaper(context.Background(),
		iuad.Paper{Title: "network probe", Venue: "KDD", Year: 2024,
			Authors: []string{"Network Probe Author"}}); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	svc.Network()
	recompileNs := time.Since(t0).Nanoseconds()
	cache := svc.Analytics()
	if cache.Rebuilds != preRebuilds+1 {
		log.Fatalf("epoch advance triggered %d rebuilds, want 1", cache.Rebuilds-preRebuilds)
	}

	// Determinism across worker counts: a second fit of the same corpus
	// at workers=2 must answer byte-identically (pre-ingest epoch).
	svc2 := open(2)
	defer svc2.Close()
	net2, comm2 := svc2.Network(), svc2.Communities()
	deterministic := fmt.Sprintf("%+v", net) == fmt.Sprintf("%+v", net2) &&
		fmt.Sprintf("%+v", *comm) == fmt.Sprintf("%+v", *comm2)
	if !deterministic {
		log.Fatalf("analytics diverge across worker counts:\n  w1: %+v / %+v\n  w2: %+v / %+v",
			net, comm, net2, comm2)
	}
	if speedup < 10 {
		log.Fatalf("repeat Network() only %.1fx cheaper than compile (contract: ≥10x); not writing a broken baseline", speedup)
	}

	doc := struct {
		Benchmark    string `json:"benchmark"`
		CorpusPapers int    `json:"corpus_papers"`
		GoMaxProcs   int    `json:"gomaxprocs"`
		NumCPU       int    `json:"num_cpu"`
		// Network is the measured epoch's topology summary (itself a
		// determinism pin: identical inputs must reproduce it).
		Network                    iuad.NetworkStats   `json:"network"`
		Communities                int                 `json:"communities"`
		CompileNs                  int64               `json:"compile_ns"`
		RepeatNsPerOp              int64               `json:"repeat_ns_per_op"`
		RepeatSpeedup              float64             `json:"repeat_speedup"`
		RecompileNs                int64               `json:"recompile_after_epoch_ns"`
		CommunitiesFirstNs         int64               `json:"communities_first_ns"`
		EgoNsPerOp                 int64               `json:"ego_ns_per_op"`
		CollaboratorsNsOp          int64               `json:"collaborators_ns_per_op"`
		Cache                      iuad.AnalyticsStats `json:"cache"`
		DeterministicAcrossWorkers bool                `json:"deterministic_across_workers"`
		GeneratedAt                time.Time           `json:"generated_at"`
	}{
		Benchmark:                  "CollaborationNetworkAnalytics",
		CorpusPapers:               corpus.Len(),
		GoMaxProcs:                 runtime.GOMAXPROCS(0),
		NumCPU:                     runtime.NumCPU(),
		Network:                    net,
		Communities:                comm.Count,
		CompileNs:                  firstNs,
		RepeatNsPerOp:              repeatNs,
		RepeatSpeedup:              speedup,
		RecompileNs:                recompileNs,
		CommunitiesFirstNs:         communitiesNs,
		EgoNsPerOp:                 egoNs,
		CollaboratorsNsOp:          colNs,
		Cache:                      cache,
		DeterministicAcrossWorkers: deterministic,
		GeneratedAt:                time.Now().UTC(),
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytics: %d authors, %d edges, %d communities; ego %v/op, collaborators %v/op; wrote %s\n",
		net.Authors, net.Edges, comm.Count,
		time.Duration(egoNs), time.Duration(colNs), path)
}

// ShardMeasure is one ingest pass of the -shard workload: per-paper
// time and allocation costs plus the publisher's cumulative contention
// accounting at the end of the pass.
type ShardMeasure struct {
	Writers        int                  `json:"writers"`
	Batch          int                  `json:"batch"`
	NsPerPaper     int64                `json:"ns_per_paper"`
	AllocsPerPaper uint64               `json:"allocs_per_paper"`
	BytesPerPaper  uint64               `json:"bytes_per_paper"`
	Contention     core.ContentionStats `json:"contention"`
}

// ShardRun is the pair of passes at one shard count.
type ShardRun struct {
	Shards int `json:"shards"`
	// Serial is the deterministic single-writer pass (batch=1): its
	// copy volume and allocs are exactly reproducible, and its final
	// network sizes are asserted identical across shard counts.
	Serial ShardMeasure `json:"serial"`
	// Concurrent is the contended pass: -shard-writers goroutines
	// streaming small batches; its mutex-wait numbers are the
	// contention the sharding removes.
	Concurrent ShardMeasure `json:"concurrent"`
}

// runShard measures the serving-shard workload and writes the
// standalone BENCH_shard.json document.
func runShard(scale, countsCSV string, papers, writers int, path string) {
	var counts []int
	for _, tok := range strings.Split(countsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			log.Fatalf("bad -shard-counts entry %q", tok)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		log.Fatal("-shard-counts is empty")
	}
	if writers < 1 {
		log.Fatal("-shard-writers must be >= 1")
	}
	var opts experiments.Options
	switch scale {
	case "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		log.Fatalf("unknown scale %q", scale)
	}
	start := time.Now()
	s, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	// One fit, one in-memory snapshot: every measured service restores
	// from identical state, so shard counts compare like for like.
	cfg := opts.Core
	cfg.Workers = 1
	pl, err := core.Run(s.Corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var snap bytes.Buffer
	if err := core.SavePipeline(&snap, pl); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard workload: %d corpus papers fitted in %v, streaming %d papers per pass\n",
		s.Corpus.Len(), time.Since(start).Round(time.Millisecond), papers)
	stream := ingestStream(s, papers)

	freshService := func(shards int) *iuad.Service {
		fresh, err := core.LoadPipeline(bytes.NewReader(snap.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		svc, err := iuad.NewService(fresh, iuad.WithShards(shards))
		if err != nil {
			log.Fatal(err)
		}
		return svc
	}
	measure := func(svc *iuad.Service, w, batch int) ShardMeasure {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		if w == 1 {
			for _, p := range stream {
				if _, err := svc.AddPaper(context.Background(), p); err != nil {
					log.Fatal(err)
				}
			}
		} else {
			var wg sync.WaitGroup
			errs := make([]error, w)
			for wi := 0; wi < w; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					// Writer wi streams every w-th batch; together the
					// writers cover the stream exactly once.
					for off := wi * batch; off < len(stream); off += w * batch {
						end := off + batch
						if end > len(stream) {
							end = len(stream)
						}
						if _, err := svc.AddPapers(context.Background(), stream[off:end]); err != nil {
							errs[wi] = err
							return
						}
					}
				}(wi)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		elapsed := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&after)
		return ShardMeasure{
			Writers:        w,
			Batch:          batch,
			NsPerPaper:     elapsed / int64(len(stream)),
			AllocsPerPaper: (after.Mallocs - before.Mallocs) / uint64(len(stream)),
			BytesPerPaper:  (after.TotalAlloc - before.TotalAlloc) / uint64(len(stream)),
			Contention:     svc.Contention(),
		}
	}

	doc := struct {
		Benchmark  string     `json:"benchmark"`
		Scale      string     `json:"scale"`
		Papers     int        `json:"papers"`
		Writers    int        `json:"writers"`
		GoMaxProcs int        `json:"gomaxprocs"`
		NumCPU     int        `json:"num_cpu"`
		Runs       []ShardRun `json:"runs"`
		// DeltaCopiedReduction is baseline (first shard count, serial)
		// delta-entries-copied over the last shard count's — the
		// deterministic per-publish copy-volume win.
		DeltaCopiedReduction float64 `json:"delta_copied_reduction"`
		// ApplyWaitReduction compares the concurrent passes' per-shard
		// apply-lock wait the same way (single-core containers still
		// show it: every batch serializes behind the same lock at one
		// shard, only same-block batches do at N).
		ApplyWaitReduction float64   `json:"apply_wait_reduction"`
		GeneratedAt        time.Time `json:"generated_at"`
	}{
		Benchmark:  "ServingShardContention",
		Scale:      scale,
		Papers:     papers,
		Writers:    writers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	var refStats *iuad.Stats
	for _, n := range counts {
		svc := freshService(n)
		serial := measure(svc, 1, 1)
		st := svc.Stats()
		if refStats == nil {
			refStats = &st
		} else if st.Authors != refStats.Authors || st.Edges != refStats.Edges ||
			st.Slots != refStats.Slots || st.Papers != refStats.Papers {
			log.Fatalf("shards=%d diverged: %+v vs baseline %+v", n, st, *refStats)
		}
		conc := measure(freshService(n), writers, 2)
		doc.Runs = append(doc.Runs, ShardRun{Shards: n, Serial: serial, Concurrent: conc})
		fmt.Printf("shards=%-3d serial: %d ns/paper, %d allocs/paper, delta-copied %d, flattens %d\n",
			n, serial.NsPerPaper, serial.AllocsPerPaper,
			serial.Contention.DeltaEntriesCopied, serial.Contention.Flattens)
		fmt.Printf("           concurrent (%d writers): %d ns/paper, ingest-wait %v, apply-wait %v, assemble-wait %v\n",
			writers, conc.NsPerPaper,
			time.Duration(conc.Contention.IngestWaitNs).Round(time.Microsecond),
			time.Duration(conc.Contention.ApplyWaitNs).Round(time.Microsecond),
			time.Duration(conc.Contention.AssembleWaitNs).Round(time.Microsecond))
	}
	first, last := doc.Runs[0], doc.Runs[len(doc.Runs)-1]
	if last.Serial.Contention.DeltaEntriesCopied > 0 {
		doc.DeltaCopiedReduction = float64(first.Serial.Contention.DeltaEntriesCopied) /
			float64(last.Serial.Contention.DeltaEntriesCopied)
	}
	if last.Concurrent.Contention.ApplyWaitNs > 0 {
		doc.ApplyWaitReduction = float64(first.Concurrent.Contention.ApplyWaitNs) /
			float64(last.Concurrent.Contention.ApplyWaitNs)
	}
	doc.GeneratedAt = time.Now().UTC()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta-copied reduction %.2fx, apply-wait reduction %.2fx; wrote %s\n",
		doc.DeltaCopiedReduction, doc.ApplyWaitReduction, path)
}
