// Command benchjson is the benchmark regression harness for the
// parallel disambiguation engine: it times the Table V scalability
// workload (stage 1 + stage 2 on a synthetic corpus, embeddings trained
// once and shared) at several worker counts and emits machine-readable
// JSON so future changes can track the perf trajectory.
//
// Usage:
//
//	benchjson [-scale quick] [-workers 1,2,4,8] [-reps 3] [-out BENCH_parallel.json]
//
// The emitted file records ns/op per worker count plus the speedup over
// Workers=1, together with gomaxprocs/num_cpu — speedup is a property
// of the hardware the harness ran on (a single-core container reports
// ≈1.0 by construction; the engine's output is identical either way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"iuad/internal/core"
	"iuad/internal/experiments"
)

// Result is one (workers, time) measurement.
type Result struct {
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// Report is the emitted document.
type Report struct {
	Benchmark    string    `json:"benchmark"`
	Scale        string    `json:"scale"`
	CorpusPapers int       `json:"corpus_papers"`
	TestNames    int       `json:"test_names"`
	GoMaxProcs   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	Reps         int       `json:"reps"`
	Results      []Result  `json:"results"`
	GeneratedAt  time.Time `json:"generated_at"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		scale   = flag.String("scale", "quick", "corpus scale: default | quick")
		workers = flag.String("workers", "1,2,4,8", "comma-separated worker counts to time")
		reps    = flag.Int("reps", 3, "repetitions per worker count (minimum time wins)")
		out     = flag.String("out", "BENCH_parallel.json", "output JSON path")
	)
	flag.Parse()

	var counts []int
	for _, tok := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers entry %q", tok)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 || counts[0] != 1 {
		counts = append([]int{1}, counts...) // serial baseline always measured
	}

	var opts experiments.Options
	switch *scale {
	case "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	start := time.Now()
	s, err := experiments.NewSuite(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d papers (built in %v, embeddings shared across runs)\n",
		s.Corpus.Len(), time.Since(start).Round(time.Millisecond))

	run := func(w int) time.Duration {
		cfg := opts.Core
		cfg.Workers = w
		t0 := time.Now()
		scn, err := core.BuildSCN(s.Corpus, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg); err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}

	rep := Report{
		Benchmark:    "Table5ScalabilityWorkers",
		Scale:        *scale,
		CorpusPapers: s.Corpus.Len(),
		TestNames:    len(s.TestNames),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Reps:         *reps,
		GeneratedAt:  time.Now().UTC(),
	}
	var serial time.Duration
	for _, w := range counts {
		best := time.Duration(0)
		for r := 0; r < *reps; r++ {
			d := run(w)
			if best == 0 || d < best {
				best = d
			}
		}
		if w == 1 {
			serial = best
		}
		speedup := 0.0
		if best > 0 && serial > 0 {
			speedup = float64(serial) / float64(best)
		}
		rep.Results = append(rep.Results, Result{
			Workers:         w,
			NsPerOp:         best.Nanoseconds(),
			SpeedupVsSerial: speedup,
		})
		fmt.Printf("workers=%d: %v (%.2fx vs serial)\n", w, best.Round(time.Millisecond), speedup)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
