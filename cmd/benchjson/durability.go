package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"iuad"
	"iuad/internal/hdrhist"
	"iuad/internal/wal"
)

// AppendMeasure is the raw journal cost of one fsync policy: how many
// nanoseconds and bytes one committed batch record costs before the
// ack can go out.
type AppendMeasure struct {
	Policy     string          `json:"policy"`
	Batches    int             `json:"batches"`
	BatchSize  int             `json:"batch_size"`
	NsPerOp    int64           `json:"ns_per_op"`
	BytesPerOp int64           `json:"bytes_per_op"`
	Fsyncs     int64           `json:"fsyncs"`
	FsyncLat   hdrhist.Summary `json:"fsync_latency"`
}

// ReplayMeasure is one recovery over a journal of a given length: the
// crash-to-serving cost as the journal grows between compactions.
type ReplayMeasure struct {
	Batches int `json:"batches"`
	Papers  int `json:"papers"`
	// ReplayNs is the journal replay alone (ReplayReport.WallNs);
	// OpenNs is the whole restart including the base-snapshot load.
	ReplayNs      int64   `json:"replay_ns"`
	OpenNs        int64   `json:"open_ns"`
	PapersPerSec  float64 `json:"papers_per_sec"`
	JournalBytes  int64   `json:"journal_bytes"`
	EpochRestored uint64  `json:"epoch_restored"`
}

// durabilityStream fabricates an ingest stream that reuses the fitted
// corpus's author names, so replayed batches exercise real candidate
// scoring rather than all-new vertices.
func durabilityStream(corpus *iuad.Corpus, phase string, n int) []iuad.Paper {
	out := make([]iuad.Paper, n)
	for i := range out {
		p := corpus.Paper(iuad.PaperID(i % corpus.Len()))
		authors := append([]string(nil), p.Authors...)
		out[i] = iuad.Paper{
			Title:   fmt.Sprintf("durability %s probe %d", phase, i),
			Venue:   p.Venue,
			Year:    p.Year + 1,
			Authors: authors,
		}
	}
	return out
}

// copyDir clones a quiesced journal directory — the benchmark's
// stand-in for the file state a SIGKILL leaves behind (the flock dies
// with the process).
func copyDir(src string) (string, error) {
	dst, err := os.MkdirTemp("", "iuad-durability-*")
	if err != nil {
		return "", err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q", tok)
		}
		out = append(out, n)
	}
	return out, nil
}

func dirBytes(dir string) int64 {
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if info, err := e.Info(); err == nil && e.Type().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// runDurability measures the write-ahead journal: append cost per
// fsync policy at the wal layer, then service-level crash recovery
// (base load + replay) as a function of journal length. Writes the
// committed BENCH_durability.json baseline.
func runDurability(path string, appendBatches, batchSize int, replayCSV string) {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 7
	scfg.Authors = 300
	scfg.Communities = 8
	corpus := iuad.GenerateSynthetic(scfg).Corpus
	batch := durabilityStream(corpus, "append", batchSize)

	// Part 1: raw journal appends, no service in the way. Fresh journal
	// per policy; epochs are synthetic.
	var appends []AppendMeasure
	for _, pol := range []iuad.FsyncPolicy{iuad.FsyncPerCommit, iuad.FsyncGrouped, iuad.FsyncOff} {
		dir, err := os.MkdirTemp("", "iuad-walbench-*")
		if err != nil {
			log.Fatal(err)
		}
		j, err := wal.Open(dir, wal.Config{Fsync: pol})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := j.Recover(0, nil); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < appendBatches; i++ {
			if _, err := j.Append(uint64(i+1), batch); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(t0)
		st := j.Stats()
		if err := j.Close(); err != nil {
			log.Fatal(err)
		}
		os.RemoveAll(dir)
		m := AppendMeasure{
			Policy:     st.Fsync,
			Batches:    appendBatches,
			BatchSize:  batchSize,
			NsPerOp:    elapsed.Nanoseconds() / int64(appendBatches),
			BytesPerOp: st.AppendedBytes / int64(appendBatches),
			Fsyncs:     st.Fsyncs,
			FsyncLat:   st.FsyncLatency,
		}
		appends = append(appends, m)
		fmt.Printf("append %-9s %8d ns/op  %6d B/op  (%d fsyncs, p99 %v)\n",
			m.Policy, m.NsPerOp, m.BytesPerOp, m.Fsyncs,
			time.Duration(m.FsyncLat.P99Ns).Round(time.Microsecond))
	}

	// Part 2: recovery wall time vs journal length. One journaled
	// service per length M: compact right after the fit (so the base
	// holds the fitted corpus and replay measures ONLY the M batches),
	// ingest M batches, clone the dir out from under the live process,
	// and time the restart over the clone.
	cfg := iuad.DefaultConfig()
	cfg.SampleRate = 0.5
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	lengths, err := parseInts(replayCSV)
	if err != nil {
		log.Fatalf("bad -durability-replay list %q: %v", replayCSV, err)
	}
	jcfg := iuad.JournalConfig{Fsync: iuad.FsyncOff, CompactEvery: -1}
	var replays []ReplayMeasure
	for _, m := range lengths {
		jdir, err := os.MkdirTemp("", "iuad-jbench-*")
		if err != nil {
			log.Fatal(err)
		}
		svc, err := iuad.Open(corpus, iuad.WithConfig(cfg), iuad.WithJournalConfig(jdir, jcfg))
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.Compact(); err != nil {
			log.Fatal(err)
		}
		stream := durabilityStream(corpus, "replay", m*batchSize)
		for i := 0; i < m; i++ {
			if _, err := svc.AddPapers(context.Background(), stream[i*batchSize:(i+1)*batchSize]); err != nil {
				log.Fatal(err)
			}
		}
		wantEpoch := svc.Epoch()
		crash, err := copyDir(jdir)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		rec, err := iuad.Open(nil, iuad.WithJournalConfig(crash, jcfg))
		if err != nil {
			log.Fatal(err)
		}
		openNs := time.Since(t0).Nanoseconds()
		rep := rec.JournalRecovery()
		if rep.Batches != m || rec.Epoch() != wantEpoch {
			log.Fatalf("recovery replayed %d batches to epoch %d, want %d batches to epoch %d",
				rep.Batches, rec.Epoch(), m, wantEpoch)
		}
		r := ReplayMeasure{
			Batches:       m,
			Papers:        rep.Papers,
			ReplayNs:      rep.WallNs,
			OpenNs:        openNs,
			JournalBytes:  dirBytes(jdir),
			EpochRestored: rec.Epoch(),
		}
		if rep.WallNs > 0 {
			r.PapersPerSec = float64(rep.Papers) / (float64(rep.WallNs) / 1e9)
		}
		replays = append(replays, r)
		fmt.Printf("replay %4d batches (%5d papers): replay %8v, full open %8v, %9.0f papers/s\n",
			m, rep.Papers, time.Duration(rep.WallNs).Round(time.Microsecond),
			time.Duration(openNs).Round(time.Microsecond), r.PapersPerSec)
		rec.Close()
		svc.Close()
		os.RemoveAll(crash)
		os.RemoveAll(jdir)
	}

	doc := struct {
		Benchmark    string          `json:"benchmark"`
		CorpusPapers int             `json:"corpus_papers"`
		GoMaxProcs   int             `json:"gomaxprocs"`
		NumCPU       int             `json:"num_cpu"`
		Appends      []AppendMeasure `json:"appends"`
		Replays      []ReplayMeasure `json:"replays"`
		GeneratedAt  time.Time       `json:"generated_at"`
	}{
		Benchmark:    "CrashSafeDurability",
		CorpusPapers: corpus.Len(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Appends:      appends,
		Replays:      replays,
		GeneratedAt:  time.Now().UTC(),
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
