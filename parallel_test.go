package iuad_test

import (
	"fmt"
	"testing"

	"iuad"
)

// equivSynthConfigs enumerates the synthetic corpora the equivalence
// property is checked on: different sizes, community structures and
// seeds, so the parallel engine is exercised across name-block shapes.
func equivSynthConfigs() []iuad.SyntheticConfig {
	var out []iuad.SyntheticConfig
	for _, shape := range []struct {
		authors, communities int
		seeds                []int64
	}{
		{300, 8, []int64{11, 12}},
		{500, 12, []int64{7}},
	} {
		for _, seed := range shape.seeds {
			cfg := iuad.DefaultSyntheticConfig()
			cfg.Seed = seed
			cfg.Authors = shape.authors
			cfg.Communities = shape.communities
			out = append(out, cfg)
		}
	}
	return out
}

func equivCoreConfig(workers int) iuad.Config {
	cfg := iuad.DefaultConfig()
	cfg.Workers = workers
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	cfg.SampleRate = 0.5
	return cfg
}

// TestParallelSerialEquivalence is the determinism contract of the
// parallel engine: Disambiguate with Workers=1 and Workers=8 must
// produce bit-identical results — the same cluster assignment for every
// author slot, the same candidate-pair scores, and the same calibrated
// threshold — on every synthetic corpus and seed.
func TestParallelSerialEquivalence(t *testing.T) {
	for ci, scfg := range equivSynthConfigs() {
		scfg := scfg
		t.Run(fmt.Sprintf("corpus%d_seed%d", ci, scfg.Seed), func(t *testing.T) {
			t.Parallel()
			d := iuad.GenerateSynthetic(scfg)
			serial, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(8))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := parallel.CalibratedDelta, serial.CalibratedDelta; got != want {
				t.Errorf("CalibratedDelta: workers=8 %v, workers=1 %v", got, want)
			}
			if got, want := parallel.TrainingPairs, serial.TrainingPairs; got != want {
				t.Errorf("TrainingPairs: workers=8 %d, workers=1 %d", got, want)
			}
			ss, ps := serial.ScoredPairs(), parallel.ScoredPairs()
			if len(ss) != len(ps) {
				t.Fatalf("scored pairs: workers=8 %d, workers=1 %d", len(ps), len(ss))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("scored pair %d: workers=8 %+v, workers=1 %+v", i, ps[i], ss[i])
				}
			}

			for _, net := range []struct {
				name             string
				serial, parallel *iuad.Network
			}{
				{"SCN", serial.SCN, parallel.SCN},
				{"GCN", serial.GCN, parallel.GCN},
			} {
				if got, want := net.parallel.VertexCount(), net.serial.VertexCount(); got != want {
					t.Fatalf("%s vertices: workers=8 %d, workers=1 %d", net.name, got, want)
				}
				if got, want := net.parallel.EdgeCount(), net.serial.EdgeCount(); got != want {
					t.Fatalf("%s edges: workers=8 %d, workers=1 %d", net.name, got, want)
				}
			}
			// The core contract: identical cluster assignment per slot.
			for i := 0; i < d.Corpus.Len(); i++ {
				p := d.Corpus.Paper(iuad.PaperID(i))
				for idx := range p.Authors {
					slot := iuad.Slot{Paper: p.ID, Index: idx}
					vs, vp := serial.GCN.ClusterOfSlot(slot), parallel.GCN.ClusterOfSlot(slot)
					if vs != vp {
						t.Fatalf("slot %+v: workers=1 → vertex %d, workers=8 → vertex %d",
							slot, vs, vp)
					}
				}
			}

			// Incremental assignment must agree too: stream the same new
			// papers through both pipelines.
			for k := 0; k < 3; k++ {
				paper := iuad.Paper{
					Title: fmt.Sprintf("parallel equivalence probe %d", k),
					Venue: d.Corpus.Paper(iuad.PaperID(k)).Venue,
					Year:  2021,
					Authors: []string{
						d.Corpus.Paper(iuad.PaperID(k)).Authors[0],
					},
				}
				as, err := serial.AddPaper(paper)
				if err != nil {
					t.Fatal(err)
				}
				ap, err := parallel.AddPaper(paper)
				if err != nil {
					t.Fatal(err)
				}
				if len(as) != len(ap) {
					t.Fatalf("AddPaper %d: %d vs %d assignments", k, len(as), len(ap))
				}
				for i := range as {
					if as[i] != ap[i] {
						t.Fatalf("AddPaper %d slot %d: workers=1 %+v, workers=8 %+v",
							k, i, as[i], ap[i])
					}
				}
			}
		})
	}
}
