// Package iuad is the public API of this repository: an implementation of
// IUAD — the Incremental and Unsupervised Author Disambiguation algorithm
// of "On Disambiguating Authors: Collaboration Network Reconstruction in
// a Bottom-up Manner" (ICDE 2021).
//
// IUAD resolves which papers belong to which real-world author when many
// authors share a name. It works bottom-up: it first assumes every name
// occurrence is a different person, then (stage 1) recovers only the
// stable collaborative relations — co-author name pairs occurring at
// least η times — into a high-precision Stable Collaboration Network, and
// (stage 2) merges same-name vertices with a probabilistic generative
// model over six similarity functions (network structure, research
// interests, research communities) fitted by EM, yielding the Global
// Collaboration Network. Newly published papers are assigned
// incrementally with no retraining.
//
// # Quick start
//
// The primary surface is the Service: a concurrency-safe disambiguator
// you Open once and then query and feed for the life of the process.
//
//	corpus := iuad.NewCorpus(0)
//	corpus.MustAdd(iuad.Paper{
//		Title:   "Mining Frequent Patterns Without Candidate Generation",
//		Venue:   "SIGMOD",
//		Year:    2000,
//		Authors: []string{"Jia Xu", "Lin Huang"},
//	})
//	// ... add the rest of the paper database ...
//	corpus.Freeze()
//
//	svc, err := iuad.Open(corpus,
//		iuad.WithWorkers(8),            // worker pool (results identical for any value)
//		iuad.WithSnapshot("iuad.snap")) // restore if present; persist on Close
//	if err != nil { ... }
//	defer svc.Close()
//
//	// Query surface — lock-free, served from an immutable published view:
//	author, err := svc.ResolveSlot(iuad.Slot{Paper: 0, Index: 0}) // who wrote slot 0 of paper 0?
//	homonyms := svc.AuthorsByName("Jia Xu")                       // the split homonym set
//	peers, err := svc.Coauthors(author.ID)
//	stats := svc.Stats()
//
//	// Write surface — stream newly published papers (§V-E), no retraining.
//	// Batches share per-neighborhood work and publish one epoch:
//	assignments, err := svc.AddPapers(ctx, []iuad.Paper{ ... })
//
// Readers never block ingest and never observe a partially-applied
// write: each write batch publishes a new immutable epoch, swapped in
// with one atomic store. Open with WithSnapshot restores a saved
// service with no EM re-run and bit-identical behavior.
//
// Ingest is admission-controlled: a bounded queue (WithIngestQueue)
// group-commits concurrent batches into single epoch publishes —
// bit-identical to serial ingest — and sheds load past its bound with
// a typed, retryable error instead of queueing unboundedly. Batches
// are atomic: they either commit whole or (on overload, cancellation,
// or shutdown) leave no trace.
//
//	svc, err := iuad.Open(corpus, iuad.WithIngestQueue(256))
//	...
//	if _, err := svc.AddPapers(ctx, batch); err != nil {
//		var over *iuad.OverloadedError
//		if errors.As(err, &over) {
//			time.Sleep(over.RetryAfter) // backpressure: retry later
//		}
//	}
//
// For crash safety beyond the planned shutdown, open with a
// write-ahead journal instead of a plain snapshot (DESIGN.md §14):
// every acked batch is journaled before the ack, so a kill -9 — or,
// with the per-commit fsync policy, a power cut — loses nothing:
//
//	svc, err := iuad.Open(corpus, iuad.WithJournal("wal/")) // journal owns wal/base.snap
//	...
//	_, err = svc.AddPapers(ctx, batch) // journaled, fsync'd, THEN acked
//	// ... process is SIGKILLed here ...
//
//	// The restart replays the journal on top of the base snapshot and
//	// serves bit-identically to a process that never crashed:
//	svc, err = iuad.Open(nil, iuad.WithJournal("wal/"))
//	rep := svc.JournalRecovery() // batches replayed, torn tail truncated?
//
// cmd/iuadserver exposes the same contract over HTTP (429 +
// Retry-After, stable JSON error codes, SIGTERM drain-then-snapshot),
// and cmd/loadgen drives an open-loop Zipf read/ingest workload
// against it with SLO assertions — see DESIGN.md §12:
//
//	iuadserver -synthetic -addr :8080 -journal /var/lib/iuad-wal -ingest-queue 256 &
//	loadgen -url http://127.0.0.1:8080 -duration 10s -rate 200 \
//	        -overload-rate 600 -ci -out load_report.json
//
// The lower-level batch API (Disambiguate returning a bare Pipeline)
// remains for offline analysis — threshold sweeps, experiments,
// evaluation — and is what Service wraps.
//
// # Parallelism
//
// The pipeline is parallel over same-name blocks (the natural unit of
// stage-2 work) plus the per-paper scans of stage 1, the EM batch
// E-steps, and incremental candidate scoring. Config.Workers bounds the
// worker pool; DefaultConfig uses one worker per logical CPU and
// Workers=1 runs fully single-threaded.
//
// Determinism guarantee: blocks are processed in any order but results
// are reduced in stable block-key order, so every worker count produces
// bit-identical output — the same networks, the same fitted model, the
// same cluster assignments:
//
//	cfg := iuad.DefaultConfig()
//	cfg.Workers = 8 // identical results to cfg.Workers = 1, just faster
//
// # Snapshots
//
// A service persists itself via Service.Save / Service.Close (with
// WithSnapshot) and restores via Open — no EM re-run, bit-identical
// serving. The pipeline-level helpers remain underneath:
//
//	var buf bytes.Buffer
//	if err := iuad.SavePipeline(&buf, pipeline); err != nil { ... }
//	restored, err := iuad.LoadPipeline(&buf)
//	// restored.AddPaper(...) is bit-identical to pipeline.AddPaper(...)
//
// Internally all hot paths run on interned integer IDs (author names,
// venues and title tokens are hashed exactly once, at Corpus.Freeze);
// the string-based Paper type is the API boundary only. See DESIGN.md
// §4-§6 for the columnar core, the parallel engine and the snapshot
// format.
//
// See the examples/ directory for runnable programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured
// reproduction results.
package iuad

import (
	"io"
	"os"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/synth"
)

// Paper is a bibliographic record: title, venue, year and the ordered
// co-author name list. Truth labels are optional and only used for
// evaluation.
type Paper = bib.Paper

// Corpus is an immutable paper database with derived indexes.
type Corpus = bib.Corpus

// PaperID identifies a paper within a corpus.
type PaperID = bib.PaperID

// AuthorID is a ground-truth author identity (evaluation corpora only).
type AuthorID = bib.AuthorID

// Slot identifies one author occurrence: the Index-th name of a paper.
type Slot = core.Slot

// Vertex is a conjectured author: a name plus its attributed papers.
type Vertex = core.Vertex

// Network is a collaboration network (SCN or GCN).
type Network = core.Network

// Config parameterizes the IUAD pipeline (η, δ, WL depth, sampling...).
type Config = core.Config

// Pipeline is a fitted disambiguator: the SCN, the GCN, the generative
// model, and the incremental AddPaper entry point.
type Pipeline = core.Pipeline

// Assignment is the incremental decision for one author slot.
type Assignment = core.Assignment

// LabeledPair is curator ground truth for the semi-supervised extension
// (Config.Labels): whether the occurrences of Name in papers A and B are
// the same person. Same-author labels merge unconditionally; both kinds
// anchor the generative model.
type LabeledPair = core.LabeledPair

// ShardInfo is the per-shard serving summary returned by
// Service.Shards (see WithShards and DESIGN.md §11).
type ShardInfo = core.ShardInfo

// ContentionStats is the write-path contention accounting returned by
// Service.Contention.
type ContentionStats = core.ContentionStats

// RecoveryReport describes what a partial snapshot load lost; returned
// by Service.Recovery (see WithPartialRecovery).
type RecoveryReport = core.RecoveryReport

// SyntheticConfig parameterizes the bundled DBLP-like corpus generator
// (used when no real bibliography is at hand; see DESIGN.md).
type SyntheticConfig = synth.Config

// SyntheticDataset is a generated corpus plus its ground truth.
type SyntheticDataset = synth.Dataset

// Similarity-function indexes for Config.FeatureMask and Config.Families
// (γ¹..γ⁶ of the paper's §V-B).
const (
	SimWLKernel     = core.SimWLKernel
	SimCliques      = core.SimCliques
	SimInterests    = core.SimInterests
	SimTimeConsist  = core.SimTimeConsist
	SimRepCommunity = core.SimRepCommunity
	SimCommunity    = core.SimCommunity

	// NumSimilarities is the length FeatureMask/Families must have.
	NumSimilarities = core.NumSimilarities
)

// NewCorpus returns an empty corpus with a capacity hint.
func NewCorpus(paperHint int) *Corpus { return bib.NewCorpus(paperHint) }

// ReadCorpus loads a JSONL corpus (one paper object per line).
func ReadCorpus(r io.Reader) (*Corpus, error) { return bib.ReadJSON(r) }

// WriteCorpus streams a corpus as JSONL.
func WriteCorpus(w io.Writer, c *Corpus) error { return bib.WriteJSON(w, c) }

// LoadCorpusFile reads a JSONL corpus from disk.
func LoadCorpusFile(path string) (*Corpus, error) { return bib.LoadFile(path) }

// SaveCorpusFile writes a JSONL corpus to disk.
func SaveCorpusFile(path string, c *Corpus) error { return bib.SaveFile(path, c) }

// DBLPStats reports what a DBLP parse saw and skipped, including the
// dump's ground-truth label table (see ParseDBLPLabeled).
type DBLPStats = bib.DBLPStats

// DBLPLabels is the ground-truth identity table of a DBLP parse:
// AuthorID ↔ the pre-normalization author key ("Wei Wang 0001").
type DBLPLabels = bib.DBLPLabels

// ParseDBLP streams a dblp.xml-format document into a corpus (maxPapers
// 0 = unlimited). It tolerates the real dump's ISO-8859-1 encoding and
// normalizes DBLP's numeric homonym suffixes away from the names the
// disambiguator sees — but no longer discards what the suffixes encode:
// each author slot's Paper.Truth carries the ground-truth identity the
// dump's curators assigned, so parsed corpora are evaluation-ready.
// Use ParseDBLPLabeled to also receive the parse stats and the label
// table itself.
func ParseDBLP(r io.Reader, maxPapers int) (*Corpus, error) {
	c, _, err := bib.ParseDBLP(r, maxPapers)
	return c, err
}

// ParseDBLPLabeled is ParseDBLP returning the parse stats alongside
// the corpus: record/skip counters plus the ground-truth label table
// (DBLPStats.Labels) mined from DBLP's numeric homonym suffixes — the
// human-curated disambiguation decisions, exactly what evaluation
// needs as ground truth.
func ParseDBLPLabeled(r io.Reader, maxPapers int) (*Corpus, DBLPStats, error) {
	return bib.ParseDBLP(r, maxPapers)
}

// DefaultConfig returns the paper-faithful parameterization (η=2, δ=0,
// h=2, 10% training-pair sampling, vertex splitting on).
func DefaultConfig() Config { return core.DefaultConfig() }

// Disambiguate runs the full two-stage IUAD algorithm (Alg. 1) on a
// frozen corpus, returning the bare fitted pipeline.
//
// Deprecated: servers should use Open, which wraps this fit in the
// concurrency-safe Service (lock-free queries, batched ingest,
// snapshot-on-close). Disambiguate remains fully supported for
// offline/batch analysis that needs the Pipeline directly (threshold
// sweeps, experiments, evaluation).
func Disambiguate(corpus *Corpus, cfg Config) (*Pipeline, error) {
	return core.Run(corpus, cfg)
}

// SavePipeline serializes a fitted pipeline as a versioned binary
// snapshot: the corpus, interned symbol tables, keyword embeddings, the
// SCN and GCN, the fitted generative model, the calibrated threshold,
// and any incrementally streamed papers. A restarted server loads the
// snapshot and answers AddPaper immediately — no EM re-run — with
// assignments bit-identical to the pipeline that never stopped.
//
// Deprecated: servers should persist through Service.Save (or Close
// with WithSnapshot), which additionally records the serving epoch.
// SavePipeline remains supported for pipeline-level tooling.
func SavePipeline(w io.Writer, pl *Pipeline) error { return core.SavePipeline(w, pl) }

// LoadPipeline reconstructs a pipeline saved by SavePipeline.
//
// Deprecated: servers should restore through Open with WithSnapshot.
// LoadPipeline remains supported for pipeline-level tooling.
func LoadPipeline(r io.Reader) (*Pipeline, error) { return core.LoadPipeline(r) }

// SavePipelineFile writes a pipeline snapshot to path.
func SavePipelineFile(path string, pl *Pipeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.SavePipeline(f, pl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPipelineFile reads a pipeline snapshot from path.
func LoadPipelineFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadPipeline(f)
}

// BuildSCN runs only stage 1 (useful to inspect the high-precision
// stable collaboration network on its own).
func BuildSCN(corpus *Corpus, cfg Config) (*Network, error) {
	return core.BuildSCN(corpus, cfg)
}

// DefaultSyntheticConfig parameterizes the bundled corpus generator.
func DefaultSyntheticConfig() SyntheticConfig { return synth.DefaultConfig() }

// GenerateSynthetic builds a labeled DBLP-like corpus for experiments.
func GenerateSynthetic(cfg SyntheticConfig) *SyntheticDataset { return synth.Generate(cfg) }
