// Digital-library deduplication: the motivating scenario of the paper's
// introduction. A bibliography system ingests a corpus where popular
// names ("Wei Wang" in DBLP — 224 entries) are shared by many distinct
// researchers; the library wants one author page per real person.
//
// This example runs IUAD over a synthetic library with ground truth and
// reports, for the most ambiguous names, how many distinct authors IUAD
// reconstructs versus the truth — plus the pairwise micro metrics used
// throughout the paper's evaluation.
//
// Run with:
//
//	go run ./examples/digitallibrary
package main

import (
	"fmt"
	"log"

	"iuad"
)

func main() {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Authors = 1200
	scfg.Communities = 20
	scfg.Seed = 42
	dataset := iuad.GenerateSynthetic(scfg)
	corpus := dataset.Corpus
	fmt.Printf("library: %d papers, %d distinct name strings, %d real authors\n\n",
		corpus.Len(), len(corpus.Names()), len(dataset.Authors))

	pipeline, err := iuad.Disambiguate(corpus, iuad.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// "Author pages" are clusters with ≥2 papers; single-paper leftovers
	// are listed as unattributed fragments (the method prefers leaving a
	// one-off paper unattached over guessing — precision first).
	fmt.Println("name                     true-authors  author-pages  fragments  papers")
	fmt.Println("------------------------ ------------  ------------  ---------  ------")
	var exact, over, under int
	names := dataset.AmbiguousNames(2)
	for _, name := range names {
		truth := len(dataset.AuthorsByName(name))
		pages, fragments := 0, 0
		for _, id := range pipeline.GCN.VerticesOf(name) {
			if len(pipeline.GCN.Verts[id].Papers) >= 2 {
				pages++
			} else {
				fragments++
			}
		}
		papers := len(corpus.PapersWithName(name))
		switch {
		case pages == truth:
			exact++
		case pages > truth:
			over++
		default:
			under++
		}
		if papers >= 12 { // print only the names a librarian would review
			fmt.Printf("%-24s %12d  %12d  %9d  %6d\n", name, truth, pages, fragments, papers)
		}
	}
	fmt.Printf("\nambiguous names with the exact author-page count: %d / %d (split %d, merged %d)\n",
		exact, len(names), over, under)

	// The paper's pairwise micro metrics over the ambiguous names.
	var tp, fp, fn, tn int
	for _, name := range names {
		papers := corpus.PapersWithName(name)
		for i := 0; i < len(papers); i++ {
			pi := corpus.Paper(papers[i])
			ii := pi.AuthorIndex(name)
			ci := pipeline.GCN.ClusterOfSlot(iuad.Slot{Paper: papers[i], Index: ii})
			for j := i + 1; j < len(papers); j++ {
				pj := corpus.Paper(papers[j])
				jj := pj.AuthorIndex(name)
				cj := pipeline.GCN.ClusterOfSlot(iuad.Slot{Paper: papers[j], Index: jj})
				samePred := ci == cj
				sameTruth := pi.TruthAt(ii) == pj.TruthAt(jj)
				switch {
				case samePred && sameTruth:
					tp++
				case samePred:
					fp++
				case sameTruth:
					fn++
				default:
					tn++
				}
			}
		}
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	fmt.Printf("pairwise micro metrics: precision=%.3f recall=%.3f f1=%.3f accuracy=%.3f\n",
		p, r, 2*p*r/(p+r), float64(tp+tn)/float64(tp+fp+fn+tn))
}
