// Incremental disambiguation (§V-E of the paper): build a GCN on an
// existing corpus once, then stream newly published papers through
// Pipeline.AddPaper — each author slot is attributed to an existing
// author (or recognized as a newcomer) in milliseconds, with no
// retraining.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	"iuad"
)

func main() {
	// A synthetic digital library stands in for the production corpus.
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Authors = 800
	scfg.Communities = 16
	scfg.RepeatCollabBias = 0.75 // small world: denser collaboration
	scfg.Seed = 7
	dataset := iuad.GenerateSynthetic(scfg)

	// Hold out the newest 50 papers as "tomorrow's submissions" (the
	// generator emits papers in year order).
	total := dataset.Corpus.Len()
	base := dataset.Corpus.Subset(total - 50)

	cfg := iuad.DefaultConfig()
	start := time.Now()
	pipeline, err := iuad.Disambiguate(base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch pipeline over %d papers in %v\n", base.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("GCN: %d vertices\n\n", pipeline.GCN.VertexCount())

	attached, created := 0, 0
	var elapsed time.Duration
	for i := base.Len(); i < total; i++ {
		orig := dataset.Corpus.Paper(iuad.PaperID(i))
		paper := iuad.Paper{
			Title: orig.Title, Venue: orig.Venue, Year: orig.Year,
			Authors: append([]string(nil), orig.Authors...),
		}
		t0 := time.Now()
		assignments, err := pipeline.AddPaper(paper)
		if err != nil {
			log.Fatal(err)
		}
		elapsed += time.Since(t0)
		for _, a := range assignments {
			if a.Created {
				created++
			} else {
				attached++
			}
		}
	}
	fmt.Printf("streamed 50 papers: %d slots attached to known authors, %d new authors\n",
		attached, created)
	fmt.Printf("average cost per paper: %v (paper reports <50ms)\n",
		(elapsed / 50).Round(time.Microsecond))

	// Show one concrete decision in detail.
	orig := dataset.Corpus.Paper(iuad.PaperID(total - 1))
	fmt.Printf("\nlast streamed paper: %q\n", orig.Title)
	for idx, name := range orig.Authors {
		slot := iuad.Slot{Paper: iuad.PaperID(base.Len() + 49), Index: idx}
		v := pipeline.GCN.ClusterOfSlot(slot)
		fmt.Printf("  slot %d (%s) -> vertex %d with %d papers\n",
			idx, name, v, len(pipeline.GCN.Verts[v].Papers))
	}
}
