// Quickstart: build a small paper database, run IUAD, and inspect which
// papers it attributes to which author.
//
// The corpus contains two different people named "Wei Wang" — a
// graph-mining researcher (KDD, partners Ann Lee / Bo Chen) and a
// database researcher (VLDB, partners Cara Diaz / Deng Hu) — the exact
// homonym situation from the paper's introduction. It also contains one
// "fragment": a Wei Wang paper with a one-off collaborator, which stage 1
// cannot attach (no stable relation) but stage 2 should, via venue and
// research-interest evidence.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"iuad"
)

func main() {
	corpus := iuad.NewCorpus(0)
	add := func(title, venue string, year int, authors ...string) {
		corpus.MustAdd(iuad.Paper{Title: title, Venue: venue, Year: year, Authors: authors})
	}
	// Wei Wang #1: graph mining at KDD.
	add("Scalable Graph Kernels", "KDD", 2014, "Wei Wang", "Ann Lee")
	add("Graph Kernels for Molecules", "KDD", 2015, "Wei Wang", "Ann Lee", "Bo Chen")
	add("Subgraph Pattern Discovery", "KDD", 2016, "Wei Wang", "Bo Chen")
	add("Frequent Subgraph Sampling", "KDD", 2017, "Wei Wang", "Ann Lee", "Bo Chen")
	// The fragment: a one-off collaboration, same field and venue.
	add("Graph Kernel Sampling Tricks", "KDD", 2017, "Wei Wang", "Ivy Tan")
	// Wei Wang #2: database systems at VLDB.
	add("Adaptive Query Scheduling", "VLDB", 2014, "Wei Wang", "Cara Diaz")
	add("Streaming Join Processing", "VLDB", 2015, "Wei Wang", "Cara Diaz", "Deng Hu")
	add("Elastic Index Maintenance", "VLDB", 2016, "Wei Wang", "Deng Hu")
	add("Log-Structured Buffer Trees", "SIGMOD", 2017, "Wei Wang", "Cara Diaz", "Deng Hu")

	// Background library: three small research groups publishing
	// formulaic papers, so venue frequencies, keyword statistics and the
	// generative model have material to learn from.
	groups := []struct {
		venue   string
		words   []string
		members []string
	}{
		{"KDD", []string{"graph", "kernel", "mining", "pattern", "sampling"},
			[]string{"Ann Lee", "Bo Chen", "Uma Dorr", "Raj Beck"}},
		{"VLDB", []string{"query", "index", "join", "storage", "transaction"},
			[]string{"Cara Diaz", "Deng Hu", "Nils Falk", "Mona Petit"}},
		{"ACL", []string{"parsing", "semantic", "corpus", "translation", "syntax"},
			[]string{"Eva Moss", "Finn Ode", "Lia Quon", "Theo Marsh"}},
	}
	for g, grp := range groups {
		for i := 0; i < 12; i++ {
			a := grp.members[i%len(grp.members)]
			b := grp.members[(i+1)%len(grp.members)]
			title := fmt.Sprintf("%s %s via %s analysis",
				grp.words[i%len(grp.words)], grp.words[(i+2)%len(grp.words)],
				grp.words[(i+3)%len(grp.words)])
			add(title, grp.venue, 2013+i%6, a, b)
		}
		_ = g
	}
	corpus.Freeze()

	cfg := iuad.DefaultConfig()
	cfg.SampleRate = 1     // small corpus: train on every candidate pair
	cfg.SplitMinPapers = 4 // small corpus: 4-paper vertices can anchor the model
	// Workers bounds the pipeline's worker pool (the default is one per
	// logical CPU). The result is guaranteed to be bit-identical for
	// every value — same-name blocks are processed in parallel but
	// reduced in a stable order — so this knob only changes wall time.
	cfg.Workers = 4
	// Word embeddings need thousands of titles to be meaningful; on a
	// 45-paper library the research-interest cosine (γ³) is noise, so
	// disable it and let venues, time and structure carry the decision.
	cfg.FeatureMask = make([]bool, iuad.NumSimilarities)
	for i := range cfg.FeatureMask {
		cfg.FeatureMask[i] = i != iuad.SimInterests
	}
	// Open fits the corpus once and returns the serving Service: query
	// methods are lock-free against an immutable published view, writes
	// (AddPaper/AddPapers) are serialized and publish new epochs.
	svc, err := iuad.Open(corpus, iuad.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	st := svc.Stats()
	fmt.Printf("serving %d papers: %d conjectured authors over %d names, %d collaboration edges\n\n",
		st.Papers, st.Authors, st.Names, st.Edges)

	authors := svc.AuthorsByName("Wei Wang")
	fmt.Printf("%q resolves to %d distinct author(s)\n", "Wei Wang", len(authors))
	for k, a := range authors {
		fmt.Printf("\nauthor #%d (id %d, %d papers, %d co-authors, venues %v, active %d-%d):\n",
			k+1, a.ID, len(a.Papers), a.Coauthors, a.Venues, a.FirstYear, a.LastYear)
		for _, pid := range a.Papers {
			p, err := svc.Paper(pid)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [%d] %-34s %s\n", p.Year, p.Title, p.Venue)
		}
	}

	// Stream a newly published paper (§V-E): no retraining, the
	// assignment is queryable the moment AddPaper returns.
	as, err := svc.AddPaper(context.Background(), iuad.Paper{
		Title: "Graph Kernels for Streaming Joins", Venue: "KDD", Year: 2018,
		Authors: []string{"Wei Wang", "Ann Lee"},
	})
	if err != nil {
		log.Fatal(err)
	}
	streamed, err := svc.Author(as[0].Vertex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed paper attributed to author id %d (%d papers now, epoch %d)\n",
		streamed.ID, len(streamed.Papers), svc.Epoch())

	// The disambiguated collaboration network is itself queryable: whole-
	// graph topology, deterministic communities, and per-author subgraphs,
	// all answered from an epoch-keyed cache (repeat queries are one
	// atomic load). Over HTTP the same answers live at /v1/network,
	// /v1/communities, and /v1/authors/{id}/ego.
	net := svc.Network()
	comm := svc.Communities()
	fmt.Printf("\ncollaboration network: %d components (largest %.0f%%), avg clustering %.3f, %d communities\n",
		net.Components, 100*net.LargestComponentFraction, net.AvgClustering, comm.Count)
	cols, err := svc.TopCollaborators(streamed.ID, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cols {
		fmt.Printf("  strongest collaborator of id %d: %s (%d shared papers, overlap %.2f)\n",
			streamed.ID, c.Name, c.SharedPapers, c.Overlap)
	}

	fmt.Println(`
The two real "Wei Wang"s separate cleanly. The one-off collaboration
("Graph Kernel Sampling Tricks" with Ivy Tan) stays a singleton: at 45
papers the generative model has too little evidence to attribute a paper
with no stable relations, and declining to guess is the high-precision
choice. Recall comes with corpus scale — run examples/digitallibrary to
see fragments being attached on a realistic library, and Fig. 5 of
EXPERIMENTS.md for the recall-vs-scale curve. For the same service over
HTTP (with snapshot persistence across restarts), run cmd/iuadserver —
e.g. 'curl localhost:8080/v1/communities' for the community partition.`)
}
