// DBLP ingestion: parse a dblp.xml-format dump into the corpus format
// used by the rest of this repository, then (optionally) disambiguate.
// Pass a real dump with -xml (the public file at
// https://dblp.uni-trier.de/xml/ works, ISO-8859-1 encoding and homonym
// number suffixes are handled); without -xml a small embedded sample is
// parsed so the example is runnable offline.
//
// Run with:
//
//	go run ./examples/dblpimport [-xml dblp.xml] [-max 50000] [-out corpus.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"iuad"
)

const sampleXML = `<?xml version="1.0" encoding="ISO-8859-1"?>
<dblp>
  <article key="journals/x/WangL18">
    <author>Wei Wang 0001</author><author>Yurong Liu</author>
    <title>Stability of Stochastic Neural Networks.</title>
    <journal>Neurocomputing</journal><year>2018</year>
  </article>
  <inproceedings key="conf/icde/WangZ19">
    <author>Wei Wang 0002</author><author>Lei Zou</author>
    <title>Distributed Graph Pattern Matching.</title>
    <booktitle>ICDE</booktitle><year>2019</year>
  </inproceedings>
  <article key="journals/x/WangA20">
    <author>Wei Wang 0001</author><author>Fuad E. Alsaadi</author>
    <title>Recurrent Networks with Mixed Delays.</title>
    <journal>Neurocomputing</journal><year>2020</year>
  </article>
</dblp>`

func main() {
	log.SetFlags(0)
	log.SetPrefix("dblpimport: ")
	var (
		xmlPath = flag.String("xml", "", "path to a dblp.xml dump (empty = embedded sample)")
		max     = flag.Int("max", 50000, "maximum papers to ingest (0 = no limit)")
		out     = flag.String("out", "", "optionally write the corpus as JSONL")
	)
	flag.Parse()

	var corpus *iuad.Corpus
	var stats iuad.DBLPStats
	var err error
	if *xmlPath == "" {
		fmt.Println("no -xml given; parsing the embedded 3-record sample")
		corpus, stats, err = iuad.ParseDBLPLabeled(strings.NewReader(sampleXML), *max)
	} else {
		f, ferr := os.Open(*xmlPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		corpus, stats, err = iuad.ParseDBLPLabeled(f, *max)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d papers (%d records seen, %d skipped without authors), %d distinct author names\n",
		corpus.Len(), stats.Records, stats.SkippedNoAuth, len(corpus.Names()))
	// The DBLP "Wei Wang 0001"/"0002" homonym suffixes are stripped from
	// the names IUAD sees — they encode the very decision it makes — but
	// they are NOT discarded: each slot's ground-truth identity rides
	// along in Paper.Truth, keyed by stats.Labels, so the parsed corpus
	// is directly usable for evaluation.
	fmt.Printf("ground truth: %d identities over %d labeled slots (%d slots carried an explicit homonym suffix)\n",
		stats.Labels.Len(), stats.LabeledSlots, stats.SuffixedSlots)
	if corpus.Labeled() {
		fmt.Println("corpus is fully labeled: evaluation-ready (internal/eval pairwise metrics)")
	}
	fmt.Printf("papers under %q: %d\n", "Wei Wang", len(corpus.PapersWithName("Wei Wang")))

	if *out != "" {
		if err := iuad.SaveCorpusFile(*out, corpus); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
