package iuad_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"iuad"
)

// TestServiceConcurrentReadersDuringIngest is the serving concurrency
// contract, meant to run under -race: a stream of AddPapers batches
// runs against continuously querying readers, and
//
//   - readers only ever observe fully-published epochs: every view is
//     internally consistent (authors reference only published papers,
//     coauthor and homonym edges stay inside the published vertex
//     range, every published slot resolves to an author owning the
//     paper), and epochs/paper counts advance monotonically per
//     reader;
//   - the final assignments are bit-identical to a serial AddPaper
//     stream on a pipeline that was never served concurrently.
func TestServiceConcurrentReadersDuringIngest(t *testing.T) {
	d := serviceDataset(53)
	cfg := equivCoreConfig(2)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const (
		readers   = 4
		batches   = 12
		batchSize = 4
	)
	papers := streamProbes(d, "race", batches*batchSize)
	maxPapers := d.Corpus.Len() + len(papers)

	var done atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastEpoch uint64
			var lastPapers int
			for !done.Load() {
				st := svc.Stats()
				if st.Epoch < lastEpoch || st.Papers < lastPapers {
					t.Errorf("time went backwards: epoch %d→%d papers %d→%d",
						lastEpoch, st.Epoch, lastPapers, st.Papers)
					return
				}
				lastEpoch, lastPapers = st.Epoch, st.Papers

				// A random published author is fully consistent with the
				// stats of the same view... or a NEWER one: Author() loads
				// the pointer again, so its view can only be >= the one
				// Stats() came from — bounds only ever grow.
				id := rng.Intn(st.Authors)
				a, err := svc.Author(id)
				if err != nil {
					fail(err)
					return
				}
				for _, pid := range a.Papers {
					if int(pid) >= maxPapers {
						fail(errOutOfRange("paper", int(pid), maxPapers))
						return
					}
				}
				// Coauthors() loads its own (possibly newer) view, and
				// degrees only ever grow across epochs.
				peers, err := svc.Coauthors(id)
				if err != nil {
					fail(err)
					return
				}
				if len(peers) < a.Coauthors {
					fail(errOutOfRange("coauthors shrank", len(peers), a.Coauthors))
					return
				}
				for _, h := range svc.AuthorsByName(a.Name) {
					if h.Name != a.Name {
						fail(errOutOfRange("homonym name", 0, 1))
						return
					}
				}
				// Every slot of a random published paper resolves, and the
				// resolved author owns the paper — the partial-publish
				// detector: a half-applied write would break one of the two.
				pid := iuad.PaperID(rng.Intn(st.Papers))
				p, err := svc.Paper(pid)
				if err != nil {
					fail(err)
					return
				}
				for idx := range p.Authors {
					ra, err := svc.ResolveSlot(iuad.Slot{Paper: pid, Index: idx})
					if err != nil {
						fail(err)
						return
					}
					owns := false
					for _, apid := range ra.Papers {
						if apid == pid {
							owns = true
							break
						}
					}
					if !owns {
						fail(errOutOfRange("slot owner papers", int(pid), len(ra.Papers)))
						return
					}
				}
			}
		}(int64(100 + r))
	}

	var served [][]iuad.Assignment
	for b := 0; b < batches; b++ {
		res, err := svc.AddPapers(context.Background(), papers[b*batchSize:(b+1)*batchSize])
		if err != nil {
			t.Fatal(err)
		}
		served = append(served, res...)
	}
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := svc.Stats(); got.Epoch != batches || got.StreamedPapers != len(papers) {
		t.Fatalf("final stats %+v, want epoch %d and %d streamed papers", got, batches, len(papers))
	}

	// Serial reference: same corpus, same config, one AddPaper per
	// paper, no concurrency. Assignments must match bit for bit.
	ref, err := iuad.Disambiguate(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := addAll(t, ref, papers)
	if len(want) != len(served) {
		t.Fatalf("served %d papers, reference %d", len(served), len(want))
	}
	for i := range want {
		for j := range want[i] {
			a, b := want[i][j], served[i][j]
			if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
				math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("paper %d slot %d: serial %+v, served %+v", i, j, a, b)
			}
		}
	}
}

// errOutOfRange builds a descriptive invariant-violation error without
// pulling fmt into the hot reader loop signature.
type invariantErr struct {
	what      string
	got, want int
}

func (e *invariantErr) Error() string {
	return "service invariant violated: " + e.what
}

func errOutOfRange(what string, got, want int) error {
	return &invariantErr{what: what, got: got, want: want}
}
