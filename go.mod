module iuad

go 1.21
