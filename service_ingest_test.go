package iuad_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iuad"
	"iuad/internal/faultinject"
)

// waitUntil polls cond with a deadline — the test-side primitive for
// observing another goroutine's progress without sleeps.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// blockPublish arms the PublishDelay fault point with a gated hook:
// the returned entered channel reports a publish reaching the point,
// and the release function unblocks it (idempotent via sync.Once).
func blockPublish(p faultinject.Point) (entered chan struct{}, release func(), disarm func()) {
	entered = make(chan struct{}, 64)
	gate := make(chan struct{})
	var once sync.Once
	disarm = faultinject.Arm(p, func() error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	return entered, func() { once.Do(func() { close(gate) }) }, disarm
}

// TestServiceGroupCommitBitIdentical is the tentpole equivalence pin:
// batches that arrive while a publish is in flight are group-committed
// — one core-ingest pass, one epoch — and the assignments are
// bit-identical to replaying the same batches serially in the observed
// arrival order on a service that never saw concurrency.
func TestServiceGroupCommitBitIdentical(t *testing.T) {
	d := serviceDataset(61)
	cfg := equivCoreConfig(2)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const nBatches, batchSize = 8, 3
	papers := streamProbes(d, "group", nBatches*batchSize)
	batches := make([][]iuad.Paper, nBatches)
	for b := range batches {
		batches[b] = papers[b*batchSize : (b+1)*batchSize]
	}

	// Stall the first publish so every other batch parks behind it and
	// gets scooped into one group commit.
	entered, release, disarm := blockPublish(faultinject.PublishDelay)
	defer disarm()
	defer release()

	results := make([][][]iuad.Assignment, nBatches)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := svc.AddPapers(context.Background(), batches[0])
		if err != nil {
			t.Errorf("leader batch: %v", err)
		}
		results[0] = res
	}()
	<-entered // the leader is committed and stalled inside its publish
	for b := 1; b < nBatches; b++ {
		wg.Add(1)
		before := svc.Ingest().Depth
		go func(b int) {
			defer wg.Done()
			res, err := svc.AddPapers(context.Background(), batches[b])
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
			results[b] = res
		}(b)
		waitUntil(t, "follower parked", func() bool { return svc.Ingest().Depth > before })
	}
	disarm() // later publishes run free; only the stalled one holds
	release()
	wg.Wait()

	ist := svc.Ingest()
	if ist.GroupedBatches < 2 {
		t.Fatalf("no group commit happened: %+v", ist)
	}
	if ist.Commits >= nBatches {
		t.Fatalf("%d commits for %d batches — grouping saved nothing", ist.Commits, nBatches)
	}
	if got := svc.Stats(); uint64(ist.Commits) != got.Epoch {
		t.Fatalf("%d commits but epoch %d: group commit must publish once per commit", ist.Commits, got.Epoch)
	}

	// Recover the observed global order from the assigned paper IDs and
	// replay it serially on a fresh service.
	order := make([]int, nBatches)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return results[order[i]][0][0].Slot.Paper < results[order[j]][0][0].Slot.Paper
	})
	ref, err := iuad.Open(d.Corpus, iuad.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, b := range order {
		want, err := ref.AddPapers(context.Background(), batches[b])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				a, g := want[i][j], results[b][i][j]
				if a.Slot != g.Slot || a.Vertex != g.Vertex || a.Created != g.Created ||
					math.Float64bits(a.Score) != math.Float64bits(g.Score) {
					t.Fatalf("batch %d paper %d slot %d: serial %+v, grouped %+v", b, i, j, a, g)
				}
			}
		}
	}
}

// TestServiceOverloadSheds pins the backpressure contract end to end:
// with a slow publish holding the queue at its bound, further
// AddPapers reject with *OverloadedError (nothing ingested), while
// readers keep answering from the last published epoch.
func TestServiceOverloadSheds(t *testing.T) {
	d := serviceDataset(67)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)),
		iuad.WithIngestConfig(iuad.IngestConfig{MaxQueued: 4, RetryAfter: 250 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	probes := streamProbes(d, "shed", 5)

	entered, release, disarm := blockPublish(faultinject.PublishDelay)
	defer disarm()
	defer release()

	var wg sync.WaitGroup
	submit := func(ps []iuad.Paper) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.AddPapers(context.Background(), ps); err != nil {
				t.Errorf("admitted batch failed: %v", err)
			}
		}()
	}
	submit(probes[0:2]) // leader: commits, stalls in publish (depth 2)
	<-entered
	submit(probes[2:4]) // parks (depth 4 == bound)
	waitUntil(t, "follower parked", func() bool { return svc.Ingest().Depth == 4 })

	_, err = svc.AddPapers(context.Background(), probes[4:5])
	var ov *iuad.OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("overflow AddPapers = %v, want *OverloadedError", err)
	}
	if ov.Depth != 4 || ov.Limit != 4 || ov.RetryAfter != 250*time.Millisecond {
		t.Fatalf("overload detail %+v", ov)
	}

	// Readers never block on the stalled publish: the epoch published
	// before the stall answers everything.
	st := svc.Stats()
	if st.Epoch != 0 || st.StreamedPapers != 0 {
		t.Fatalf("stalled publish leaked state to readers: %+v", st)
	}
	if _, err := svc.Author(0); err != nil {
		t.Fatalf("reader blocked or failed during stalled publish: %v", err)
	}
	if got := svc.AuthorsByName(d.Corpus.Paper(0).Authors[0]); len(got) == 0 {
		t.Fatal("name query empty during stalled publish")
	}

	disarm()
	release()
	wg.Wait()
	ist := svc.Ingest()
	if ist.Depth != 0 || ist.RejectedBatches != 1 || ist.AdmittedPapers != 4 {
		t.Fatalf("post-drain ingest stats %+v", ist)
	}
	if st := svc.Stats(); st.StreamedPapers != 4 {
		t.Fatalf("drained %d streamed papers, want 4 (shed batch must not land)", st.StreamedPapers)
	}
}

// TestServiceAddPapersCancel pins the cancellation contract: a context
// cancelled before its batch reaches a commit withdraws the batch —
// ctx.Err() comes back wrapped in *CanceledError and NO partial epoch
// is ever published.
func TestServiceAddPapersCancel(t *testing.T) {
	d := serviceDataset(71)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	probes := streamProbes(d, "cancel", 4)

	// Already-cancelled context: rejected before admission.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = svc.AddPapers(dead, probes[0:2])
	var ce *iuad.CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx AddPapers = %v, want *CanceledError wrapping context.Canceled", err)
	}
	if st := svc.Stats(); st.Epoch != 0 || st.StreamedPapers != 0 {
		t.Fatalf("dead-ctx batch left state: %+v", st)
	}

	// Mid-flight: cancel while the batch is parked behind a stalled
	// publish — withdrawn, never ingested.
	entered, release, disarm := blockPublish(faultinject.PublishDelay)
	defer disarm()
	defer release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.AddPapers(context.Background(), probes[0:2]); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-entered
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	parked := make(chan error, 1)
	go func() {
		_, err := svc.AddPapers(ctx, probes[2:4])
		parked <- err
	}()
	waitUntil(t, "batch parked", func() bool { return svc.Ingest().Depth == 4 })
	cancel2()
	// The withdrawal must complete while the publish is still stalled —
	// proof the cancelled batch did not wait for (or join) any epoch.
	err = <-parked
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("parked AddPapers = %v, want *CanceledError wrapping context.Canceled", err)
	}
	disarm()
	release()
	wg.Wait()
	if st := svc.Stats(); st.Epoch != 1 || st.StreamedPapers != 2 {
		t.Fatalf("after withdraw: %+v, want epoch 1 with the leader's 2 papers only", st)
	}
	// Two cancellations so far: the dead-ctx batch and the withdrawal.
	if ist := svc.Ingest(); ist.CanceledBatches != 2 {
		t.Fatalf("ingest stats %+v", ist)
	}
}

// TestServiceCloseDrainsConcurrentIngest is the shutdown race pin,
// meant for -race: Close racing a storm of AddPapers stops admission,
// flushes every admitted batch, and snapshots the fully-drained state.
// Every batch either lands completely (and survives the snapshot) or
// reports ErrClosed having ingested nothing. Double Close is a no-op.
func TestServiceCloseDrainsConcurrentIngest(t *testing.T) {
	d := serviceDataset(73)
	snap := filepath.Join(t.TempDir(), "drain.snap")
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}

	const writers, batchesPer, perBatch = 4, 3, 2
	var landed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		probes := streamProbes(d, fmt.Sprintf("drain%d", g), batchesPer*perBatch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				_, err := svc.AddPapers(context.Background(), probes[b*perBatch:(b+1)*perBatch])
				switch {
				case err == nil:
					landed.Add(perBatch)
				case errors.Is(err, iuad.ErrClosed):
					// lost the admission race to Close; nothing ingested
				default:
					t.Errorf("unexpected AddPapers error: %v", err)
				}
			}
		}()
	}
	waitUntil(t, "first admission", func() bool { return svc.Ingest().AdmittedBatches > 0 })
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := svc.AddPapers(context.Background(), streamProbes(d, "late", 1)); !errors.Is(err, iuad.ErrClosed) {
		t.Fatalf("post-Close AddPapers = %v, want ErrClosed", err)
	}
	if ist := svc.Ingest(); ist.Depth != 0 {
		t.Fatalf("Close returned with depth %d", ist.Depth)
	}

	restored, err := iuad.Open(nil, iuad.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if st := restored.Stats(); int64(st.StreamedPapers) != landed.Load() {
		t.Fatalf("snapshot has %d streamed papers, %d batches reported success", st.StreamedPapers, landed.Load())
	}
}

// TestServiceSlowShardReadersLockFree is the chaos pin for the sharded
// publish path: a shard stalled mid-Apply (holding that shard's apply
// lock) never blocks readers — they serve the last published composite
// — and queued writers group behind the stall instead of piling up.
func TestServiceSlowShardReadersLockFree(t *testing.T) {
	d := serviceDataset(79)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	probes := streamProbes(d, "stall", 4)

	entered, release, disarm := blockPublish(faultinject.ShardApplyStall)
	defer disarm()
	defer release()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.AddPapers(context.Background(), probes[0:2]); err != nil {
			t.Errorf("stalled batch: %v", err)
		}
	}()
	<-entered // a shard Apply is stalled holding its apply lock

	// Readers answer while the shard lock is held.
	st := svc.Stats()
	if st.Epoch != 0 {
		t.Fatalf("torn epoch visible during stalled shard apply: %+v", st)
	}
	if _, err := svc.Author(0); err != nil {
		t.Fatalf("reader blocked on stalled shard: %v", err)
	}
	for _, sh := range svc.Shards() {
		_ = sh // per-shard introspection stays lock-free too
	}

	// A second writer parks in the queue rather than blocking a reader
	// thread; it completes after the stall clears.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.AddPapers(context.Background(), probes[2:4]); err != nil {
			t.Errorf("queued batch: %v", err)
		}
	}()
	waitUntil(t, "writer queued behind stall", func() bool { return svc.Ingest().Depth == 4 })

	disarm()
	release()
	wg.Wait()
	if st := svc.Stats(); st.StreamedPapers != 4 {
		t.Fatalf("post-stall stats %+v", st)
	}
}

// TestServiceSnapshotWriteFaultCloseRetryable: an injected snapshot
// write error fails Close without marking the service closed, so a
// later Close retries the save and succeeds — no silent data loss.
func TestServiceSnapshotWriteFaultCloseRetryable(t *testing.T) {
	d := serviceDataset(83)
	snap := filepath.Join(t.TempDir(), "fault.snap")
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddPapers(context.Background(), streamProbes(d, "fault", 2)); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected disk failure")
	disarm := faultinject.Arm(faultinject.SnapshotWrite, func() error { return boom })
	if err := svc.Close(); !errors.Is(err, boom) {
		disarm()
		t.Fatalf("Close under snapshot fault = %v, want injected error", err)
	}
	disarm()
	if err := svc.Close(); err != nil {
		t.Fatalf("retried Close = %v", err)
	}
	restored, err := iuad.Open(nil, iuad.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if st := restored.Stats(); st.StreamedPapers != 2 {
		t.Fatalf("retried snapshot lost data: %+v", st)
	}
}

// TestServiceInvalidBatchAtomic: validation happens before admission,
// so a malformed paper anywhere in the batch means NOTHING from the
// batch is ingested — no partial epoch, no valid-prefix leak.
func TestServiceInvalidBatchAtomic(t *testing.T) {
	d := serviceDataset(89)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	batch := streamProbes(d, "valid", 2)
	batch = append(batch, iuad.Paper{Title: "no authors at all"})
	if _, err := svc.AddPapers(context.Background(), batch); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if st := svc.Stats(); st.Epoch != 0 || st.StreamedPapers != 0 {
		t.Fatalf("invalid batch leaked a prefix: %+v", st)
	}
	if ist := svc.Ingest(); ist.AdmittedBatches != 0 {
		t.Fatalf("invalid batch was admitted: %+v", ist)
	}
}
