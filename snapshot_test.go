package iuad_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"iuad"
)

// streamProbes builds a deterministic mix of incremental papers: known
// authors, brand-new co-authors, known and never-seen venues, titles
// with out-of-corpus keywords — every symbol path of the interned
// tables.
func streamProbes(d *iuad.SyntheticDataset, phase string, n int) []iuad.Paper {
	var out []iuad.Paper
	for k := 0; k < n; k++ {
		p0 := d.Corpus.Paper(iuad.PaperID(k % d.Corpus.Len()))
		paper := iuad.Paper{
			Title: fmt.Sprintf("snapshot %s probe %d on quantum flux taxonomy", phase, k),
			Venue: p0.Venue,
			Year:  2021 + k%3,
			Authors: []string{
				p0.Authors[0],
				fmt.Sprintf("Brand New %s Author %d", phase, k),
			},
		}
		if k%3 == 1 {
			paper.Venue = fmt.Sprintf("NEWVENUE-%s-%d", phase, k)
		}
		if k%3 == 2 && len(p0.Authors) > 1 {
			paper.Authors = []string{p0.Authors[1]}
		}
		out = append(out, paper)
	}
	return out
}

func addAll(t *testing.T, pl *iuad.Pipeline, papers []iuad.Paper) [][]iuad.Assignment {
	t.Helper()
	var out [][]iuad.Assignment
	for _, p := range papers {
		as, err := pl.AddPaper(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, as)
	}
	return out
}

func assertSameAssignments(t *testing.T, label string, live, loaded [][]iuad.Assignment) {
	t.Helper()
	if len(live) != len(loaded) {
		t.Fatalf("%s: %d vs %d papers", label, len(live), len(loaded))
	}
	for i := range live {
		if len(live[i]) != len(loaded[i]) {
			t.Fatalf("%s paper %d: %d vs %d assignments", label, i, len(live[i]), len(loaded[i]))
		}
		for j := range live[i] {
			a, b := live[i][j], loaded[i][j]
			if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
				math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("%s paper %d slot %d: live %+v, loaded %+v", label, i, j, a, b)
			}
		}
	}
}

// TestSnapshotRoundTrip is the serving contract of the snapshot layer:
// a pipeline saved mid-stream and reloaded must answer AddPaper exactly
// like the pipeline that never stopped — same vertices, same scores to
// the last bit — for serial and parallel configurations alike.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			scfg := iuad.DefaultSyntheticConfig()
			scfg.Seed = 11
			scfg.Authors = 300
			scfg.Communities = 8
			d := iuad.GenerateSynthetic(scfg)
			live, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			// Stream papers BEFORE saving, so the snapshot carries extra
			// papers and late-interned symbols (names, venues, keywords).
			preAssignments := addAll(t, live, streamProbes(d, "pre", 6))

			var buf bytes.Buffer
			if err := iuad.SavePipeline(&buf, live); err != nil {
				t.Fatal(err)
			}
			snapshotBytes := buf.Len()
			loaded, err := iuad.LoadPipeline(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("snapshot: %d bytes", snapshotBytes)

			// Static state must match bit for bit.
			if got, want := loaded.CalibratedDelta, live.CalibratedDelta; got != want {
				t.Errorf("CalibratedDelta %v vs %v", got, want)
			}
			if got, want := loaded.TrainingPairs, live.TrainingPairs; got != want {
				t.Errorf("TrainingPairs %d vs %d", got, want)
			}
			for _, net := range []struct {
				name         string
				live, loaded *iuad.Network
			}{{"SCN", live.SCN, loaded.SCN}, {"GCN", live.GCN, loaded.GCN}} {
				if got, want := net.loaded.VertexCount(), net.live.VertexCount(); got != want {
					t.Fatalf("%s verts %d vs %d", net.name, got, want)
				}
				if got, want := net.loaded.EdgeCount(), net.live.EdgeCount(); got != want {
					t.Fatalf("%s edges %d vs %d", net.name, got, want)
				}
				if err := net.loaded.Validate(); err != nil {
					t.Fatalf("%s: %v", net.name, err)
				}
			}
			ss, ls := live.ScoredPairs(), loaded.ScoredPairs()
			if len(ss) != len(ls) {
				t.Fatalf("scored pairs %d vs %d", len(ls), len(ss))
			}
			for i := range ss {
				if ss[i] != ls[i] {
					t.Fatalf("scored pair %d: %+v vs %+v", i, ls[i], ss[i])
				}
			}
			for i := range live.Model.Specs {
				if live.Model.MatchedMean(i) != loaded.Model.MatchedMean(i) ||
					live.Model.UnmatchedMean(i) != loaded.Model.UnmatchedMean(i) {
					t.Fatalf("model means diverge at feature %d", i)
				}
			}
			// Pre-save slot assignments are part of the snapshot.
			for _, as := range preAssignments {
				for _, a := range as {
					if got := loaded.GCN.ClusterOfSlot(a.Slot); got != a.Vertex {
						t.Fatalf("pre-save slot %+v: loaded %d, live %d", a.Slot, got, a.Vertex)
					}
				}
			}

			// The contract: both pipelines stream the same future papers
			// to bit-identical assignments.
			post := streamProbes(d, "post", 9)
			assertSameAssignments(t, "post-save",
				addAll(t, live, post), addAll(t, loaded, post))
		})
	}
}

// TestSnapshotDeterministicBytes pins the encode side: saving the same
// pipeline twice, or saving a loaded pipeline, must produce identical
// bytes (maps are serialized in sorted order).
func TestSnapshotDeterministicBytes(t *testing.T) {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 7
	scfg.Authors = 200
	d := iuad.GenerateSynthetic(scfg)
	pl, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, pl, streamProbes(d, "det", 3))

	var a, b bytes.Buffer
	if err := iuad.SavePipeline(&a, pl); err != nil {
		t.Fatal(err)
	}
	if err := iuad.SavePipeline(&b, pl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of one pipeline differ")
	}
	loaded, err := iuad.LoadPipeline(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := iuad.SavePipeline(&c, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("save→load→save is not byte-stable")
	}
}

// TestSnapshotEmptyCorpus round-trips the degenerate model-less pipeline
// (empty frozen corpus): AddPaper must keep working after load.
func TestSnapshotEmptyCorpus(t *testing.T) {
	c := iuad.NewCorpus(0)
	c.Freeze()
	pl, err := iuad.Disambiguate(c, iuad.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := iuad.SavePipeline(&buf, pl); err != nil {
		t.Fatal(err)
	}
	loaded, err := iuad.LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	paper := iuad.Paper{Title: "first ever", Venue: "V", Year: 2021, Authors: []string{"Solo Author"}}
	al, err := pl.AddPaper(paper)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := loaded.AddPaper(paper)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssignments(t, "empty-corpus", [][]iuad.Assignment{al}, [][]iuad.Assignment{bl})
}

// TestSnapshotRejectsGarbage pins the failure modes: wrong magic and
// truncated streams return errors, not panics.
func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := iuad.LoadPipeline(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	c := iuad.NewCorpus(0)
	c.Freeze()
	pl, err := iuad.Disambiguate(c, iuad.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := iuad.SavePipeline(&buf, pl); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 2, len(full) - 1} {
		if _, err := iuad.LoadPipeline(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
