package iuad_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"iuad"
)

func serviceDataset(seed int64) *iuad.SyntheticDataset {
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = seed
	scfg.Authors = 300
	scfg.Communities = 8
	return iuad.GenerateSynthetic(scfg)
}

func TestOpenTypedErrors(t *testing.T) {
	if _, err := iuad.Open(nil); !errors.Is(err, iuad.ErrNoCorpus) {
		t.Fatalf("Open(nil) = %v, want ErrNoCorpus", err)
	}
	unfrozen := iuad.NewCorpus(0)
	unfrozen.MustAdd(iuad.Paper{Title: "t", Authors: []string{"A B"}})
	if _, err := iuad.Open(unfrozen); !errors.Is(err, iuad.ErrNotFrozen) {
		t.Fatalf("Open(unfrozen) = %v, want ErrNotFrozen", err)
	}
}

// TestServiceQuerySurface exercises the serving API end to end: open,
// query authors through every read path, ingest through the write
// path, and observe the published epoch advance.
func TestServiceQuerySurface(t *testing.T) {
	d := serviceDataset(41)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := svc.Stats()
	if st.Epoch != 0 || st.CorpusPapers != d.Corpus.Len() || st.StreamedPapers != 0 {
		t.Fatalf("initial stats %+v", st)
	}
	if st.Authors == 0 || st.Slots == 0 {
		t.Fatalf("empty published network: %+v", st)
	}

	// Every corpus slot resolves, and the resolved author owns the paper.
	slot := iuad.Slot{Paper: 0, Index: 0}
	author, err := svc.ResolveSlot(slot)
	if err != nil {
		t.Fatal(err)
	}
	if author.Name != d.Corpus.Paper(0).Authors[0] {
		t.Fatalf("slot 0/0 resolved to %q, want %q", author.Name, d.Corpus.Paper(0).Authors[0])
	}
	owns := false
	for _, pid := range author.Papers {
		if pid == 0 {
			owns = true
		}
	}
	if !owns {
		t.Fatalf("author %d does not own paper 0: %v", author.ID, author.Papers)
	}
	if author.FirstYear == 0 || author.LastYear < author.FirstYear {
		t.Fatalf("year span [%d,%d]", author.FirstYear, author.LastYear)
	}
	if len(author.Venues) == 0 {
		t.Fatal("author has no venues despite owning papers")
	}

	// AuthorsByName covers the homonym set; Author round-trips by ID.
	byName := svc.AuthorsByName(author.Name)
	if len(byName) == 0 {
		t.Fatalf("AuthorsByName(%q) empty", author.Name)
	}
	found := false
	for _, a := range byName {
		if a.ID == author.ID {
			found = true
		}
		if a.Name != author.Name {
			t.Fatalf("homonym set leaked name %q", a.Name)
		}
	}
	if !found {
		t.Fatal("resolved author missing from its homonym set")
	}
	again, err := svc.Author(author.ID)
	if err != nil || again.Name != author.Name {
		t.Fatalf("Author(%d) = %+v, %v", author.ID, again, err)
	}

	// Coauthors are consistent with the degree the author reports.
	peers, err := svc.Coauthors(author.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != author.Coauthors {
		t.Fatalf("Coauthors len %d, author.Coauthors %d", len(peers), author.Coauthors)
	}

	// Typed errors on the unknown paths.
	if _, err := svc.Author(st.Authors + 100); !errors.Is(err, iuad.ErrUnknownAuthor) {
		t.Fatalf("unknown author: %v", err)
	}
	if _, err := svc.Coauthors(-1); !errors.Is(err, iuad.ErrUnknownAuthor) {
		t.Fatalf("unknown coauthors: %v", err)
	}
	if _, err := svc.ResolveSlot(iuad.Slot{Paper: iuad.PaperID(st.Papers), Index: 0}); !errors.Is(err, iuad.ErrUnknownSlot) {
		t.Fatalf("unknown slot: %v", err)
	}
	if got := svc.AuthorsByName("No Such Name Anywhere"); len(got) != 0 {
		t.Fatalf("unknown name returned %d authors", len(got))
	}

	// Write path: a batch publishes exactly one new epoch and its
	// assignments are immediately queryable.
	batch := []iuad.Paper{
		{Title: "Serving Probe One", Venue: "VLDB", Year: 2022, Authors: []string{author.Name}},
		{Title: "Serving Probe Two", Venue: "KDD", Year: 2022, Authors: []string{"Brand New Service Author"}},
	}
	res, err := svc.AddPapers(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("batch results %d", len(res))
	}
	st2 := svc.Stats()
	if st2.Epoch != 1 || st2.StreamedPapers != 2 || st2.Papers != st.Papers+2 {
		t.Fatalf("post-batch stats %+v", st2)
	}
	if !res[1][0].Created {
		t.Fatal("brand-new name did not create a vertex")
	}
	created, err := svc.Author(res[1][0].Vertex)
	if err != nil || created.Name != "Brand New Service Author" {
		t.Fatalf("created author %+v, %v", created, err)
	}
	got, err := svc.ResolveSlot(res[0][0].Slot)
	if err != nil || got.ID != res[0][0].Vertex {
		t.Fatalf("streamed slot resolved to %+v, %v", got, err)
	}
	if _, err := svc.Paper(res[0][0].Slot.Paper); err != nil {
		t.Fatal(err)
	}

	// Close shuts the write API, reads keep serving the last epoch.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddPaper(context.Background(), batch[0]); !errors.Is(err, iuad.ErrClosed) {
		t.Fatalf("write after Close: %v", err)
	}
	if svc.Stats().Epoch != 1 {
		t.Fatal("reads stopped after Close")
	}
}

// TestServiceSnapshotRoundTrip is the serving restart contract: a
// service closed with WithSnapshot and reopened from the file restores
// the epoch and answers queries and ingest bit-identically to the
// service that never stopped.
func TestServiceSnapshotRoundTrip(t *testing.T) {
	d := serviceDataset(43)
	path := filepath.Join(t.TempDir(), "svc.snap")

	live, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	pre := streamProbes(d, "svc", 5)
	if _, err := live.AddPapers(context.Background(), pre); err != nil {
		t.Fatal(err)
	}
	liveStats := live.Stats()
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := iuad.Open(nil, iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	rs := restored.Stats()
	if rs != liveStats {
		t.Fatalf("restored stats %+v, want %+v", rs, liveStats)
	}

	// Post-restore ingest matches a reference pipeline that never
	// stopped, bit for bit.
	ref, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, ref, pre)
	post := streamProbes(d, "post", 5)
	want := addAll(t, ref, post)
	got, err := restored.AddPapers(context.Background(), post)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
				math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("paper %d slot %d: ref %+v, restored %+v", i, j, a, b)
			}
		}
	}
	if got := restored.Stats(); got.Epoch != liveStats.Epoch+1 {
		t.Fatalf("restored epoch %d, want %d", got.Epoch, liveStats.Epoch+1)
	}

	// A second restart picks the post-close state up again.
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := iuad.Open(nil, iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if st := third.Stats(); st.StreamedPapers != 10 {
		t.Fatalf("second restore streamed papers %d, want 10", st.StreamedPapers)
	}
}

// TestNewServiceWrapsPipeline checks the shim path: an already-fitted
// pipeline serves through the façade.
func TestNewServiceWrapsPipeline(t *testing.T) {
	d := serviceDataset(47)
	pl, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := iuad.NewService(pl)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got, want := svc.Stats().Authors, pl.GCN.VertexCount(); got != want {
		t.Fatalf("served authors %d, pipeline vertices %d", got, want)
	}
	name := d.Corpus.Paper(0).Authors[0]
	if len(svc.AuthorsByName(name)) == 0 {
		t.Fatalf("AuthorsByName(%q) empty through the wrap", name)
	}
	if _, err := iuad.NewService(nil); err == nil {
		t.Fatal("NewService(nil) succeeded")
	}
}
