package iuad_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"iuad"
)

// analyticsFingerprint hashes everything the analytics surface can
// answer — network stats, the full community partition, and sampled
// ego/collaborator/clustering queries — with float64 fields folded in
// as raw bits, so equality means byte-identity, not approximation.
// Safe to call from any goroutine (dead vertices are skipped, which is
// itself deterministic per epoch).
func analyticsFingerprint(svc *iuad.Service) string {
	h := sha256.New()
	n := svc.Network()
	fmt.Fprintf(h, "net %+v|%x|%x|%x|%x\n", n,
		math.Float64bits(n.Density), math.Float64bits(n.LargestComponentFraction),
		math.Float64bits(n.AvgClustering), math.Float64bits(n.DegreeSlope))
	c := svc.Communities()
	fmt.Fprintf(h, "comm %d %d %d %v %v\n", c.Epoch, c.Count, c.Rounds, c.Converged, c.Sizes)
	_ = binary.Write(h, binary.LittleEndian, c.Labels)
	for id := 0; id < len(c.Labels); id += 7 {
		eg, err := svc.Ego(id, 2)
		if err != nil {
			continue // dead vertex
		}
		fmt.Fprintf(h, "ego %d %+v\n", id, *eg)
		cols, _ := svc.TopCollaborators(id, 5)
		for _, col := range cols {
			fmt.Fprintf(h, "col %d %d %d %x %s\n",
				col.ID, col.SharedPapers, col.CommonNeighbors, math.Float64bits(col.Overlap), col.Name)
		}
		cl, _ := svc.Clustering(id)
		fmt.Fprintf(h, "clu %+v %x\n", cl, math.Float64bits(cl.Coefficient))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestNetstatsEpochConsistency is the analytics consistency contract:
// analytics answered mid-ingest — while writers race the readers — are
// bit-identical to re-running the same queries on that epoch's
// published snapshot, and the whole surface (Communities included) is
// byte-identical across worker counts and shard counts. Readers must
// never observe a half-built cache: any fingerprint captured within
// one epoch must equal the reference fingerprint of that epoch.
func TestNetstatsEpochConsistency(t *testing.T) {
	d := serviceDataset(31)
	probes := streamProbes(d, "net", 10)

	// Reference: serial single-shard service, analytics re-run at every
	// epoch boundary.
	ref, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := map[uint64]string{0: analyticsFingerprint(ref)}
	for _, p := range probes {
		if _, err := ref.AddPaper(context.Background(), p); err != nil {
			t.Fatal(err)
		}
		want[ref.Epoch()] = analyticsFingerprint(ref)
	}

	// Live: different worker count AND shard count, with reader
	// goroutines querying analytics while the ingester publishes.
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var mu sync.Mutex
	observed := map[uint64]string{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Epoch unchanged across the whole sweep ⇒ every query
				// inside it was answered from that epoch (publishes are
				// monotonic), so the sweep is attributable to one epoch.
				e0 := svc.Epoch()
				fp := analyticsFingerprint(svc)
				if svc.Epoch() == e0 {
					mu.Lock()
					observed[e0] = fp
					mu.Unlock()
				}
			}
		}()
	}
	// The ingester fingerprints every epoch it publishes, with the
	// reader goroutines racing their own sweeps against the publishes —
	// every epoch is deterministically checked, and whatever the readers
	// additionally catch mid-ingest is checked too.
	record := func() {
		e := svc.Epoch()
		fp := analyticsFingerprint(svc)
		mu.Lock()
		observed[e] = fp
		mu.Unlock()
	}
	record() // epoch 0, before any publish
	for _, p := range probes {
		if _, err := svc.AddPaper(context.Background(), p); err != nil {
			t.Fatal(err)
		}
		record()
	}
	close(stop)
	wg.Wait()

	if len(observed) < 2 {
		t.Fatalf("captured only %d epochs", len(observed))
	}
	for epoch, fp := range observed {
		wantFP, ok := want[epoch]
		if !ok {
			t.Fatalf("observed epoch %d the reference never published", epoch)
		}
		if fp != wantFP {
			t.Errorf("epoch %d: mid-ingest analytics diverge from the epoch's snapshot", epoch)
		}
	}

	// Cache accounting: the reader storm must have been mostly
	// lock-free hits. Rebuilds exceed the epoch count only when a
	// reader's already-loaded view goes stale across a publish (the
	// compile runs but the store is skipped), and each such rebuild
	// needs one concurrently racing query — so the bound is epochs ×
	// concurrent queriers (3 readers + the ingester).
	as := svc.Analytics()
	if as.Hits == 0 {
		t.Fatal("no analytics-cache hits under repeat queries")
	}
	epochs := int64(len(probes)) + 1
	if as.Rebuilds > epochs*4 {
		t.Fatalf("%d rebuilds for %d epochs", as.Rebuilds, epochs)
	}
	if as.Rebuilds > as.Misses {
		t.Fatalf("%d rebuilds exceed %d misses", as.Rebuilds, as.Misses)
	}
}

// TestEgoEdgeCases covers the BFS boundary contract: hops 0 (and
// negative hops, clamped to 0) return just the author; unknown and
// out-of-range authors return ErrUnknownAuthor.
func TestEgoEdgeCases(t *testing.T) {
	d := serviceDataset(33)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for _, hops := range []int{0, -3} {
		eg, err := svc.Ego(0, hops)
		if err != nil {
			t.Fatalf("Ego(0, %d): %v", hops, err)
		}
		if len(eg.Vertices) != 1 || eg.Vertices[0].ID != 0 || len(eg.Edges) != 0 || eg.Hops != 0 {
			t.Fatalf("Ego(0, %d) = %+v, want just the center", hops, eg)
		}
		if len(eg.Names) != 1 || eg.Names[0] == "" {
			t.Fatalf("Ego(0, %d) names = %v", hops, eg.Names)
		}
	}

	st := svc.Stats()
	for _, id := range []int{-1, st.Authors, st.Authors + 99} {
		if _, err := svc.Ego(id, 1); !errors.Is(err, iuad.ErrUnknownAuthor) {
			t.Fatalf("Ego(%d, 1) = %v, want ErrUnknownAuthor", id, err)
		}
		if _, err := svc.TopCollaborators(id, 3); !errors.Is(err, iuad.ErrUnknownAuthor) {
			t.Fatalf("TopCollaborators(%d) = %v, want ErrUnknownAuthor", id, err)
		}
		if _, err := svc.Clustering(id); !errors.Is(err, iuad.ErrUnknownAuthor) {
			t.Fatalf("Clustering(%d) = %v, want ErrUnknownAuthor", id, err)
		}
	}

	// Ego names and degrees agree with the serving surface at the same
	// epoch (no ingest running here).
	eg, err := svc.Ego(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range eg.Vertices {
		a, err := svc.Author(int(ev.ID))
		if err != nil {
			t.Fatalf("ego vertex %d unknown to the serving surface: %v", ev.ID, err)
		}
		if eg.Names[i] != a.Name || ev.Degree != a.Coauthors {
			t.Fatalf("ego vertex %d: name %q degree %d, serving surface %q %d",
				ev.ID, eg.Names[i], ev.Degree, a.Name, a.Coauthors)
		}
	}
}

// TestEgoPartialRecoveryDeadVertex pins analytics over a partially
// recovered service: vertices lost with a snapshot segment are
// ErrUnknownAuthor to Ego, invisible to live egos and communities, and
// counted as DeadVertices in Network().
func TestEgoPartialRecoveryDeadVertex(t *testing.T) {
	d := serviceDataset(61)
	path := filepath.Join(t.TempDir(), "svc.snap")
	const shards = 4

	live, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithShards(shards), iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	liveNet := live.Network()
	liveInfos := live.Shards()
	liveEpoch := live.Stats().Epoch
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if liveNet.DeadVertices != 0 {
		t.Fatalf("full service reports %d dead vertices", liveNet.DeadVertices)
	}

	lostShard := -1
	for _, info := range liveInfos {
		if info.Authors > 0 {
			lostShard = info.Shard
			break
		}
	}
	if lostShard < 0 {
		t.Fatal("no shard owns authors")
	}
	if err := os.Remove(fmt.Sprintf("%s.e%d.s%03d", path, liveEpoch, lostShard)); err != nil {
		t.Fatal(err)
	}

	partial, err := iuad.Open(nil,
		iuad.WithSnapshot(path), iuad.WithShards(shards), iuad.WithPartialRecovery())
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()
	rep := partial.Recovery()
	if rep == nil || rep.LostAuthors == 0 {
		t.Fatalf("recovery report %+v, want lost authors", rep)
	}

	// Find one dead vertex: any ID the serving surface no longer knows.
	st := partial.Stats()
	deadID := -1
	for id := 0; id < st.Authors; id++ {
		if _, err := partial.Author(id); errors.Is(err, iuad.ErrUnknownAuthor) {
			deadID = id
			break
		}
	}
	if deadID < 0 {
		t.Fatal("no dead vertex found after losing a segment")
	}

	if _, err := partial.Ego(deadID, 2); !errors.Is(err, iuad.ErrUnknownAuthor) {
		t.Fatalf("Ego(dead %d) = %v, want ErrUnknownAuthor", deadID, err)
	}
	if _, err := partial.TopCollaborators(deadID, 3); !errors.Is(err, iuad.ErrUnknownAuthor) {
		t.Fatalf("TopCollaborators(dead %d) = %v, want ErrUnknownAuthor", deadID, err)
	}

	net := partial.Network()
	if net.DeadVertices != rep.LostAuthors {
		t.Fatalf("Network reports %d dead vertices, recovery lost %d", net.DeadVertices, rep.LostAuthors)
	}
	if net.Authors != liveNet.Authors-rep.LostAuthors {
		t.Fatalf("live authors %d, want %d − %d", net.Authors, liveNet.Authors, rep.LostAuthors)
	}

	// Live egos never surface dead vertices.
	checked := 0
	for id := 0; id < st.Authors && checked < 20; id++ {
		eg, err := partial.Ego(id, 2)
		if err != nil {
			continue
		}
		checked++
		for i, ev := range eg.Vertices {
			if _, err := partial.Author(int(ev.ID)); err != nil {
				t.Fatalf("ego of %d contains dead vertex %d", id, ev.ID)
			}
			if eg.Names[i] == "" {
				t.Fatalf("ego of %d has unnamed vertex %d", id, ev.ID)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no live egos found")
	}

	// Communities label the dead with −1 and nothing else.
	comm := partial.Communities()
	deadLabels := 0
	for id, l := range comm.Labels {
		dead := errors.Is(func() error { _, err := partial.Author(id); return err }(), iuad.ErrUnknownAuthor)
		if dead != (l < 0) {
			t.Fatalf("vertex %d: dead=%v but label %d", id, dead, l)
		}
		if l < 0 {
			deadLabels++
		}
	}
	if deadLabels != rep.LostAuthors {
		t.Fatalf("%d dead labels, want %d", deadLabels, rep.LostAuthors)
	}
}

// TestEgoDuringConcurrentIngest races analytics readers against a
// concurrent ingest (run under -race in CI): every answer must be
// well-formed and attributable to a published epoch, and the only
// acceptable error is ErrUnknownAuthor for not-yet-published vertices.
func TestEgoDuringConcurrentIngest(t *testing.T) {
	d := serviceDataset(47)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(2)), iuad.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	baseAuthors := svc.Stats().Authors

	// Each reader runs a fixed number of sweeps (not a stop-channel
	// race) so the amount of read work is deterministic: with far more
	// analytics calls than published epochs, repeat same-epoch queries —
	// and therefore cache hits — are guaranteed however the scheduler
	// interleaves readers and ingester.
	const sweeps = 120
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				id := (i*13 + r*7) % baseAuthors
				eg, err := svc.Ego(id, 1+i%2)
				if err != nil {
					if !errors.Is(err, iuad.ErrUnknownAuthor) {
						errCh <- fmt.Errorf("Ego(%d): %w", id, err)
						return
					}
					continue
				}
				if len(eg.Vertices) == 0 || eg.Vertices[0].ID != int32(id) || len(eg.Names) != len(eg.Vertices) {
					errCh <- fmt.Errorf("malformed ego of %d: %+v", id, eg)
					return
				}
				cols, err := svc.TopCollaborators(id, 4)
				if err != nil && !errors.Is(err, iuad.ErrUnknownAuthor) {
					errCh <- fmt.Errorf("TopCollaborators(%d): %w", id, err)
					return
				}
				if len(cols) > 0 && cols[0].Name == "" {
					errCh <- fmt.Errorf("collaborator of %d has no name", id)
					return
				}
				if n := svc.Network(); n.Authors <= 0 {
					errCh <- fmt.Errorf("network stats report %d authors", n.Authors)
					return
				}
			}
		}(r)
	}
	ingestErr := make(chan error, 1)
	go func() {
		for _, p := range streamProbes(d, "race", 8) {
			if _, err := svc.AddPaper(context.Background(), p); err != nil {
				ingestErr <- err
				return
			}
		}
		ingestErr <- nil
	}()
	wg.Wait()
	if err := <-ingestErr; err != nil {
		t.Fatal(err)
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if svc.Analytics().Hits == 0 {
		t.Fatal("analytics cache never hit during the read storm")
	}
}
