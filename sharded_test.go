package iuad_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"iuad"
	"iuad/internal/core"
)

// surfaceFingerprint materializes the ENTIRE query surface of a
// service — stats (minus the shard count), every author record, every
// name listing, every slot resolution — into one comparable string.
// Two services with equal fingerprints answer every query identically.
func surfaceFingerprint(t *testing.T, svc *iuad.Service) string {
	t.Helper()
	var b strings.Builder
	st := svc.Stats()
	fmt.Fprintf(&b, "stats papers=%d corpus=%d streamed=%d authors=%d names=%d edges=%d slots=%d\n",
		st.Papers, st.CorpusPapers, st.StreamedPapers, st.Authors, st.Names, st.Edges, st.Slots)
	names := map[string]bool{}
	for id := 0; id < st.Authors; id++ {
		a, err := svc.Author(id)
		if err != nil {
			fmt.Fprintf(&b, "author %d: dead\n", id)
			continue
		}
		names[a.Name] = true
		fmt.Fprintf(&b, "author %d: %q papers=%v years=[%d,%d] venues=%v deg=%d\n",
			a.ID, a.Name, a.Papers, a.FirstYear, a.LastYear, a.Venues, a.Coauthors)
		peers, err := svc.Coauthors(id)
		if err != nil {
			t.Fatalf("Coauthors(%d): %v", id, err)
		}
		fmt.Fprintf(&b, "coauthors %d:", id)
		for _, p := range peers {
			fmt.Fprintf(&b, " %d", p.ID)
		}
		b.WriteByte('\n')
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		fmt.Fprintf(&b, "byname %q:", name)
		for _, a := range svc.AuthorsByName(name) {
			fmt.Fprintf(&b, " %d", a.ID)
		}
		b.WriteByte('\n')
	}
	for pid := 0; pid < st.Papers; pid++ {
		p, err := svc.Paper(iuad.PaperID(pid))
		if err != nil {
			t.Fatalf("Paper(%d): %v", pid, err)
		}
		for idx := range p.Authors {
			a, err := svc.ResolveSlot(iuad.Slot{Paper: iuad.PaperID(pid), Index: idx})
			if err != nil {
				fmt.Fprintf(&b, "slot %d/%d: %v\n", pid, idx, err)
				continue
			}
			fmt.Fprintf(&b, "slot %d/%d: %d\n", pid, idx, a.ID)
		}
	}
	return b.String()
}

func flatten(res [][]iuad.Assignment) [][]iuad.Assignment { return res }

// TestShardedSerialEquivalence is the tentpole contract: for every
// shard count, the sharded service's assignments AND entire query
// surface are bit-identical to the unsharded Workers=1 reference fed
// the same batches.
func TestShardedSerialEquivalence(t *testing.T) {
	d := serviceDataset(53)
	stream := streamProbes(d, "shard", 12)
	const batchSize = 3

	feed := func(svc *iuad.Service) [][]iuad.Assignment {
		t.Helper()
		var out [][]iuad.Assignment
		for off := 0; off < len(stream); off += batchSize {
			end := off + batchSize
			if end > len(stream) {
				end = len(stream)
			}
			res, err := svc.AddPapers(context.Background(), stream[off:end])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res...)
		}
		return out
	}

	ref, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	wantRes := feed(ref)
	wantFP := surfaceFingerprint(t, ref)
	wantEpoch := ref.Epoch()

	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2} {
			t.Run(fmt.Sprintf("shards=%d workers=%d", shards, workers), func(t *testing.T) {
				svc, err := iuad.Open(d.Corpus,
					iuad.WithConfig(equivCoreConfig(workers)), iuad.WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				gotRes := feed(svc)
				assertSameAssignments(t, "sharded vs reference", flatten(wantRes), flatten(gotRes))
				if got := svc.Epoch(); got != wantEpoch {
					t.Fatalf("epoch %d, want %d", got, wantEpoch)
				}
				if got := surfaceFingerprint(t, svc); got != wantFP {
					t.Fatalf("query surface diverged from unsharded reference (shards=%d workers=%d)", shards, workers)
				}
				if got := svc.Stats().Shards; got != shards {
					t.Fatalf("stats shards %d, want %d", got, shards)
				}
				infos := svc.Shards()
				if len(infos) != shards {
					t.Fatalf("%d shard infos, want %d", len(infos), shards)
				}
				authors, slots := 0, 0
				for i, info := range infos {
					if info.Shard != i {
						t.Fatalf("shard info %d reports index %d", i, info.Shard)
					}
					if info.Pending != 0 {
						t.Fatalf("shard %d pending %d after quiesce", i, info.Pending)
					}
					authors += info.Authors
					slots += info.Slots
				}
				st := svc.Stats()
				if authors != st.Authors {
					t.Fatalf("shard authors sum %d, stats %d", authors, st.Authors)
				}
				if slots == 0 || st.Slots == 0 {
					t.Fatal("no slots accounted")
				}
			})
		}
	}
}

// TestShardedConcurrentWriters drives concurrent AddPapers through a
// sharded service (run under -race in CI): every batch publishes
// exactly one epoch regardless of interleaving, and the pending
// counters return to zero.
func TestShardedConcurrentWriters(t *testing.T) {
	d := serviceDataset(59)
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)), iuad.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	const writers, batchesPer = 4, 5
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				batch := []iuad.Paper{
					{Title: fmt.Sprintf("race probe %d-%d on streamed graphs", w, b),
						Venue: "KDD", Year: 2021,
						Authors: []string{fmt.Sprintf("Writer %d Author %d", w, b%3)}},
					{Title: fmt.Sprintf("race probe %d-%d second", w, b),
						Venue: "VLDB", Year: 2022,
						Authors: []string{fmt.Sprintf("Writer %d Author %d", w, (b+1)%3)}},
				}
				if _, err := svc.AddPapers(context.Background(), batch); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Epoch(); got != writers*batchesPer {
		t.Fatalf("epoch %d, want %d (one per batch)", got, writers*batchesPer)
	}
	for _, info := range svc.Shards() {
		if info.Pending != 0 {
			t.Fatalf("shard %d pending %d after all writers returned", info.Shard, info.Pending)
		}
	}
	cs := svc.Contention()
	if cs.Shards != 8 || cs.Publishes != writers*batchesPer {
		t.Fatalf("contention %+v", cs)
	}
}

// TestShardedSnapshotRoundTrip exercises the composite snapshot end to
// end: parallel save, full reload under the same and a different shard
// count, strict failure on a lost segment, partial recovery with the
// option, and a consistent re-save after recovery.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	d := serviceDataset(61)
	dir := t.TempDir()
	path := filepath.Join(dir, "svc.snap")
	const shards = 4

	live, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithShards(shards), iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	pre := streamProbes(d, "pre", 6)
	if _, err := live.AddPapers(context.Background(), pre); err != nil {
		t.Fatal(err)
	}
	liveStats := live.Stats()
	liveFP := surfaceFingerprint(t, live)
	liveInfos := live.Shards()
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// The composite layout: the manifest plus one segment per shard.
	segs, err := filepath.Glob(path + ".e*")
	if err != nil || len(segs) != shards {
		t.Fatalf("segment files %v (err %v), want %d", segs, err, shards)
	}

	restored, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Recovery() != nil {
		t.Fatalf("full reload reported recovery %+v", restored.Recovery())
	}
	if got := restored.Stats(); got != liveStats {
		t.Fatalf("restored stats %+v, want %+v", got, liveStats)
	}
	if got := surfaceFingerprint(t, restored); got != liveFP {
		t.Fatal("restored query surface differs from live")
	}
	// Per-shard serving counters survive the round trip.
	for i, info := range restored.Shards() {
		if info.Epoch != liveInfos[i].Epoch || info.Publishes != liveInfos[i].Publishes ||
			info.Authors != liveInfos[i].Authors || info.Slots != liveInfos[i].Slots {
			t.Fatalf("shard %d info %+v, want %+v", i, info, liveInfos[i])
		}
	}

	// A different runtime shard count re-partitions the same state:
	// placement is re-derived from the name hash, answers unchanged.
	rest2, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := surfaceFingerprint(t, rest2); got != liveFP {
		t.Fatal("2-shard reload of a 4-shard snapshot diverged")
	}

	// Post-restore ingest matches a never-stopped reference pipeline.
	ref, err := iuad.Disambiguate(d.Corpus, equivCoreConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, ref, pre)
	post := streamProbes(d, "post", 5)
	want := addAll(t, ref, post)
	got, err := restored.AddPapers(context.Background(), post)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
				math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("post-restore paper %d slot %d: ref %+v, got %+v", i, j, a, b)
			}
		}
	}

	// Lose one segment. Pick a shard that owns authors, and a name it
	// owns plus a name it does not, to probe both sides of recovery.
	lostShard := -1
	for _, info := range liveInfos {
		if info.Authors > 0 {
			lostShard = info.Shard
			break
		}
	}
	if lostShard < 0 {
		t.Fatal("no shard owns authors")
	}
	var lostName, safeName string
	for pid := 0; pid < d.Corpus.Len() && (lostName == "" || safeName == ""); pid++ {
		for _, name := range d.Corpus.Paper(iuad.PaperID(pid)).Authors {
			if core.ShardOfName(name, shards) == lostShard {
				lostName = name
			} else {
				safeName = name
			}
		}
	}
	if lostName == "" || safeName == "" {
		t.Fatalf("could not find probe names (lost %q, safe %q)", lostName, safeName)
	}
	lostIDs := restored.AuthorsByName(lostName)
	if len(lostIDs) == 0 {
		t.Fatalf("name %q has no authors before the loss", lostName)
	}
	safeBefore := restored.AuthorsByName(safeName)

	lostSeg := fmt.Sprintf("%s.e%d.s%03d", path, liveStats.Epoch, lostShard)
	if err := os.Remove(lostSeg); err != nil {
		t.Fatal(err)
	}

	// Strict open refuses the damaged composite — even with a corpus
	// at hand it must error loudly, not misread the lost segment's
	// fs.ErrNotExist as "no snapshot" and silently refit from scratch.
	if _, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(shards)); err == nil {
		t.Fatal("open of a damaged composite succeeded without WithPartialRecovery")
	} else if errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("damaged-composite error wraps fs.ErrNotExist (would refit silently): %v", err)
	}
	if svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithSnapshot(path), iuad.WithShards(shards)); err == nil {
		svc.Close()
		t.Fatal("open with corpus + damaged composite refit instead of failing")
	}

	partial, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(shards), iuad.WithPartialRecovery())
	if err != nil {
		t.Fatal(err)
	}
	rep := partial.Recovery()
	if rep == nil {
		t.Fatal("partial reload reported no recovery")
	}
	if len(rep.MissingSegments) != 1 || rep.MissingSegments[0] != lostShard {
		t.Fatalf("missing segments %v, want [%d]", rep.MissingSegments, lostShard)
	}
	if rep.LostAuthors != liveInfos[lostShard].Authors || rep.LostSlots != liveInfos[lostShard].Slots {
		t.Fatalf("recovery %+v, want authors=%d slots=%d",
			rep, liveInfos[lostShard].Authors, liveInfos[lostShard].Slots)
	}
	// Lost names answer empty; lost IDs are unknown; surviving shards
	// answer exactly as before.
	if got := partial.AuthorsByName(lostName); len(got) != 0 {
		t.Fatalf("lost name %q still lists %d authors", lostName, len(got))
	}
	if _, err := partial.Author(lostIDs[0].ID); !errors.Is(err, iuad.ErrUnknownAuthor) {
		t.Fatalf("Author(lost %d) = %v, want ErrUnknownAuthor", lostIDs[0].ID, err)
	}
	safeAfter := partial.AuthorsByName(safeName)
	if len(safeAfter) != len(safeBefore) {
		t.Fatalf("surviving name %q: %d authors, want %d", safeName, len(safeAfter), len(safeBefore))
	}
	for i := range safeAfter {
		if safeAfter[i].ID != safeBefore[i].ID || safeAfter[i].Name != safeBefore[i].Name {
			t.Fatalf("surviving author %d changed: %+v vs %+v", i, safeAfter[i], safeBefore[i])
		}
	}

	// The legacy stream format cannot carry the holes.
	if err := partial.Save(io.Discard); err == nil {
		t.Fatal("legacy Save of a partially-recovered service succeeded")
	}

	// Re-ingesting a lost name starts its block from scratch.
	as, err := partial.AddPaper(context.Background(), iuad.Paper{
		Title: "fresh start after recovery", Venue: "KDD", Year: 2024,
		Authors: []string{lostName},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || !as[0].Created {
		t.Fatalf("re-ingest of lost name: %+v, want a fresh vertex", as)
	}
	relisted := partial.AuthorsByName(lostName)
	if len(relisted) != 1 || relisted[0].ID != as[0].Vertex {
		t.Fatalf("re-ingested name lists %+v, want vertex %d", relisted, as[0].Vertex)
	}

	// A re-save after recovery is a complete snapshot again.
	path2 := filepath.Join(dir, "svc2.snap")
	if err := partial.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	reopened, err := iuad.Open(nil, iuad.WithSnapshot(path2), iuad.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Recovery() != nil {
		t.Fatalf("re-saved snapshot still partial: %+v", reopened.Recovery())
	}
	if got := reopened.AuthorsByName(lostName); len(got) != 1 || got[0].ID != as[0].Vertex {
		t.Fatalf("re-saved lost name lists %+v", got)
	}
	if got, want := surfaceFingerprint(t, reopened), surfaceFingerprint(t, partial); got != want {
		t.Fatal("re-saved snapshot diverged from the recovered service")
	}
}

// TestCorruptSegmentTypedError pins the two failure shapes of a
// composite-snapshot open. A segment whose BYTES are wrong (bit rot,
// torn write) must surface as the typed *core.ErrCorruptSegment with
// the segment path and offset; a segment that is simply GONE must not
// masquerade as corruption — and neither shape may wrap fs.ErrNotExist
// (which the corpus-at-hand open path would misread as "no snapshot,
// refit silently").
func TestCorruptSegmentTypedError(t *testing.T) {
	d := serviceDataset(67)
	dir := t.TempDir()
	path := filepath.Join(dir, "svc.snap")
	const shards = 3

	live, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithShards(shards), iuad.WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.AddPapers(context.Background(), streamProbes(d, "corr", 4)); err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(path + ".e*")
	if err != nil || len(segs) != shards {
		t.Fatalf("segment files %v (err %v), want %d", segs, err, shards)
	}
	sort.Strings(segs)
	victim := segs[1]
	pristine, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(victim, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	strictOpen := func() error {
		t.Helper()
		svc, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(shards))
		if err == nil {
			svc.Close()
			t.Fatal("strict open of a damaged composite succeeded")
		}
		if errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("damaged-composite error wraps fs.ErrNotExist: %v", err)
		}
		return err
	}

	// Flipped byte in the payload: checksum catches it, typed error
	// names the file.
	mangled := append([]byte(nil), pristine...)
	mangled[len(mangled)/2] ^= 0xff
	if err := os.WriteFile(victim, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	err = strictOpen()
	var ce *core.ErrCorruptSegment
	if !errors.As(err, &ce) {
		t.Fatalf("flipped-byte open error %v, want *core.ErrCorruptSegment", err)
	}
	if ce.Path != victim {
		t.Fatalf("corrupt path %q, want %q", ce.Path, victim)
	}

	// Truncated segment: size disagrees with the manifest; the typed
	// error reports where the bytes stop.
	restore()
	if err := os.Truncate(victim, int64(len(pristine)/3)); err != nil {
		t.Fatal(err)
	}
	ce = nil
	if err = strictOpen(); !errors.As(err, &ce) {
		t.Fatalf("truncated open error %v, want *core.ErrCorruptSegment", err)
	}
	if ce.Path != victim || ce.Offset != int64(len(pristine)/3) {
		t.Fatalf("truncated segment error %+v, want path %q offset %d", ce, victim, len(pristine)/3)
	}

	// Corruption still admits partial recovery: the damaged shard is
	// reported lost, the rest serve.
	partial, err := iuad.Open(nil, iuad.WithSnapshot(path), iuad.WithShards(shards), iuad.WithPartialRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if rep := partial.Recovery(); rep == nil || len(rep.MissingSegments) != 1 {
		t.Fatalf("partial recovery of corrupt segment: %+v", partial.Recovery())
	}
	partial.Close()

	// A MISSING segment is a different failure shape: still a loud
	// strict-open error, but not a corruption claim about bytes that
	// do not exist.
	restore()
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	ce = nil
	if err = strictOpen(); errors.As(err, &ce) {
		t.Fatalf("missing segment misreported as corrupt: %+v", ce)
	}
}
