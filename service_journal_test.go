package iuad_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iuad"
	"iuad/internal/faultinject"
)

// copyJournalDir clones a journal directory byte-for-byte into a fresh
// temp dir. This is the in-process stand-in for SIGKILL: the clone has
// the files a crashed process would leave behind (the flock dies with
// the process and is not part of the bytes), and opening the clone is
// exactly the restart path. The source service must be quiescent (no
// in-flight AddPapers) when called.
func copyJournalDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// journalSegments lists the wal.* segment files in dir, sorted.
func journalSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal.e*"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// noCompact keeps every batch in the journal so tests control exactly
// what recovery must replay.
var noCompact = iuad.JournalConfig{Fsync: iuad.FsyncOff, CompactEvery: -1}

// TestJournalCrashRecoveryEquivalence is the tentpole pin: a journaled
// service killed after N acked batches and reopened over the same
// directory answers every query — and scores every future slot, to the
// bit (math.Float64bits) — exactly like a process that never crashed.
// Runs unsharded and sharded, without and with a mid-stream compaction
// (so recovery exercises both "refit + full replay" and "base snapshot
// + suffix replay").
func TestJournalCrashRecoveryEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		shards  int
		compact bool
	}{
		{"unsharded", 1, false},
		{"unsharded-compacted", 1, true},
		{"sharded", 2, false},
		{"sharded-compacted", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := serviceDataset(71)
			stream := streamProbes(d, "jrn", 12)
			const batchSize = 3
			open := func(jdir string) *iuad.Service {
				t.Helper()
				opts := []iuad.Option{
					iuad.WithConfig(equivCoreConfig(1)),
					iuad.WithJournalConfig(jdir, noCompact),
				}
				if tc.shards > 1 {
					opts = append(opts, iuad.WithShards(tc.shards))
				}
				svc, err := iuad.Open(d.Corpus, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return svc
			}

			jdir := t.TempDir()
			live := open(jdir)
			defer live.Close()
			ref, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			var liveRes, refRes [][]iuad.Assignment
			batches := 0
			for off := 0; off < len(stream); off += batchSize {
				end := off + batchSize
				if end > len(stream) {
					end = len(stream)
				}
				lr, err := live.AddPapers(context.Background(), stream[off:end])
				if err != nil {
					t.Fatal(err)
				}
				rr, err := ref.AddPapers(context.Background(), stream[off:end])
				if err != nil {
					t.Fatal(err)
				}
				liveRes = append(liveRes, lr...)
				refRes = append(refRes, rr...)
				batches++
				if tc.compact && batches == 2 {
					if err := live.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := range refRes {
				for j := range refRes[i] {
					a, b := refRes[i][j], liveRes[i][j]
					if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
						math.Float64bits(a.Score) != math.Float64bits(b.Score) {
						t.Fatalf("journaled paper %d slot %d: ref %+v, got %+v", i, j, a, b)
					}
				}
			}
			liveFP := surfaceFingerprint(t, live)
			liveEpoch := live.Epoch()

			// Crash: clone the directory out from under the still-open
			// service and restart over the clone.
			crash := copyJournalDir(t, jdir)
			rec := open(crash)
			defer rec.Close()

			rep := rec.JournalRecovery()
			if rep == nil {
				t.Fatal("recovered service has no replay report")
			}
			wantBatches := batches
			if tc.compact {
				wantBatches = batches - 2 // first two are in the base
			}
			if rep.Batches != wantBatches || rep.TruncatedTail {
				t.Fatalf("replay report %+v, want %d batches and no torn tail", rep, wantBatches)
			}
			if rec.Epoch() != liveEpoch {
				t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), liveEpoch)
			}
			if got := surfaceFingerprint(t, rec); got != liveFP {
				t.Fatal("recovered query surface diverged from the never-crashed process")
			}

			// The future must match too: the next batch scores
			// bit-identically on both processes.
			post := streamProbes(d, "post", 3)
			wantPost, err := live.AddPapers(context.Background(), post)
			if err != nil {
				t.Fatal(err)
			}
			gotPost, err := rec.AddPapers(context.Background(), post)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantPost {
				for j := range wantPost[i] {
					a, b := wantPost[i][j], gotPost[i][j]
					if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
						math.Float64bits(a.Score) != math.Float64bits(b.Score) {
						t.Fatalf("post-recovery paper %d slot %d: want %+v, got %+v", i, j, a, b)
					}
				}
			}
		})
	}
}

// TestJournalTornTailTruncatedOnOpen pins the torn-tail rule at the
// service level: a crash mid-append leaves a half-written final record;
// Open truncates it, reports it, and serves the state as of the last
// complete batch.
func TestJournalTornTailTruncatedOnOpen(t *testing.T) {
	d := serviceDataset(73)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stream := streamProbes(d, "torn", 6)
	for i := 0; i < 3; i++ {
		if _, err := svc.AddPapers(context.Background(), stream[i*2:i*2+2]); err != nil {
			t.Fatal(err)
		}
	}
	epoch := svc.Epoch()

	crash := copyJournalDir(t, jdir)
	segs := journalSegments(t, crash)
	if len(segs) != 1 {
		t.Fatalf("segments %v, want exactly 1", segs)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear 5 bytes off the end: inside the last record's checksummed
	// payload.
	if err := os.Truncate(segs[0], fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	rec, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(crash, noCompact))
	if err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	defer rec.Close()
	rep := rec.JournalRecovery()
	if rep == nil || !rep.TruncatedTail || rep.Batches != 2 {
		t.Fatalf("replay report %+v, want truncated tail with 2 replayed batches", rep)
	}
	if rec.Epoch() != epoch-1 {
		t.Fatalf("recovered epoch %d, want %d (last batch torn away)", rec.Epoch(), epoch-1)
	}
}

// TestJournalCorruptInteriorFailsOpen pins the other side of the
// torn-tail rule: damage to a record with complete records AFTER it is
// not a crash artifact — it means an acked batch would be silently
// dropped, so Open must refuse with the typed corruption error.
func TestJournalCorruptInteriorFailsOpen(t *testing.T) {
	d := serviceDataset(79)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stream := streamProbes(d, "corrupt", 6)
	for i := 0; i < 3; i++ {
		if _, err := svc.AddPapers(context.Background(), stream[i*2:i*2+2]); err != nil {
			t.Fatal(err)
		}
	}

	crash := copyJournalDir(t, jdir)
	segs := journalSegments(t, crash)
	if len(segs) != 1 {
		t.Fatalf("segments %v, want exactly 1", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record (after the 32-byte
	// segment header and 12-byte record header).
	b[32+12+4] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(crash, noCompact))
	if err == nil {
		t.Fatal("open over a corrupt journal interior succeeded")
	}
	var ce *iuad.JournalCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt-interior error %v, want *iuad.JournalCorruptError", err)
	}
	if ce.Path != segs[0] || ce.Offset != 32 {
		t.Fatalf("corrupt record at %s offset %d, want %s offset 32", ce.Path, ce.Offset, segs[0])
	}
}

// TestJournalDoubleOpenLocked pins the single-writer lock: a second
// Open on a live journal directory fails fast with the typed lock
// error, and the directory is usable again after Close.
func TestJournalDoubleOpenLocked(t *testing.T) {
	d := serviceDataset(83)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}

	_, err = iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if !errors.Is(err, iuad.ErrJournalLocked) {
		t.Fatalf("double open = %v, want ErrJournalLocked", err)
	}
	var le *iuad.JournalLockError
	if !errors.As(err, &le) || le.Dir != jdir {
		t.Fatalf("double open error %v, want *JournalLockError for %s", err, jdir)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := iuad.Open(nil, iuad.WithJournal(jdir))
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	again.Close()
}

// TestJournalAppendFaultFailsBeforeAck is the chaos contract: when the
// write-ahead record cannot be written, AddPapers fails with the typed
// JournalError BEFORE anything is acked or published — the epoch does
// not move, the paper count does not move, the failure is counted, and
// a post-crash recovery sees only the batches that were acked.
func TestJournalAppendFaultFailsBeforeAck(t *testing.T) {
	d := serviceDataset(89)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stream := streamProbes(d, "chaos", 4)

	if _, err := svc.AddPapers(context.Background(), stream[:2]); err != nil {
		t.Fatal(err)
	}
	epoch, papers := svc.Epoch(), svc.Stats().StreamedPapers

	boom := fmt.Errorf("injected journal fault")
	disarm := faultinject.Arm(faultinject.JournalAppend, func() error { return boom })
	_, err = svc.AddPapers(context.Background(), stream[2:])
	disarm()
	var je *iuad.JournalError
	if !errors.As(err, &je) || !errors.Is(err, boom) {
		t.Fatalf("faulted ingest = %v, want *iuad.JournalError wrapping the fault", err)
	}
	if svc.Epoch() != epoch || svc.Stats().StreamedPapers != papers {
		t.Fatalf("failed journal write half-landed: epoch %d->%d papers %d->%d",
			epoch, svc.Epoch(), papers, svc.Stats().StreamedPapers)
	}
	if fc := svc.Ingest().FailedCommits; fc != 1 {
		t.Fatalf("failed_commits %d, want 1", fc)
	}

	// The journal holds exactly the acked batch: recovery over a clone
	// replays one batch and lands on the pre-fault epoch.
	rec, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(copyJournalDir(t, jdir), noCompact))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep := rec.JournalRecovery(); rep.Batches != 1 {
		t.Fatalf("replay report %+v, want exactly the acked batch", rep)
	}
	if rec.Epoch() != epoch {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), epoch)
	}

	// The live service keeps working after the fault clears.
	if _, err := svc.AddPapers(context.Background(), stream[2:]); err != nil {
		t.Fatalf("post-fault ingest: %v", err)
	}
	if svc.Epoch() != epoch+1 {
		t.Fatalf("post-fault epoch %d, want %d", svc.Epoch(), epoch+1)
	}
}

// TestJournalFsyncFaultLatches pins per-commit durability: a failed
// fsync fails the batch before the ack (durability unknown = not
// acked), and the journal refuses everything after it — no batch may
// be acked past a write the disk would not confirm. Close still
// snapshots cleanly, and the successor serves the pre-fault state.
func TestJournalFsyncFaultLatches(t *testing.T) {
	d := serviceDataset(97)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)),
		iuad.WithJournalConfig(jdir, iuad.JournalConfig{Fsync: iuad.FsyncPerCommit, CompactEvery: -1}))
	if err != nil {
		t.Fatal(err)
	}
	stream := streamProbes(d, "fsync", 4)
	if _, err := svc.AddPapers(context.Background(), stream[:2]); err != nil {
		t.Fatal(err)
	}
	epoch := svc.Epoch()
	fp := surfaceFingerprint(t, svc)

	boom := fmt.Errorf("injected fsync fault")
	disarm := faultinject.Arm(faultinject.JournalFsync, func() error { return boom })
	_, err = svc.AddPapers(context.Background(), stream[2:])
	disarm()
	var je *iuad.JournalError
	if !errors.As(err, &je) {
		t.Fatalf("fsync-faulted ingest = %v, want *iuad.JournalError", err)
	}
	if svc.Epoch() != epoch {
		t.Fatalf("epoch moved past an unconfirmed write: %d -> %d", epoch, svc.Epoch())
	}
	// The latch: even with the fault gone, appends stay refused.
	if _, err = svc.AddPapers(context.Background(), stream[2:]); !errors.As(err, &je) {
		t.Fatalf("post-fault ingest = %v, want latched *iuad.JournalError", err)
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("close after fsync fault: %v", err)
	}
	rec, err := iuad.Open(nil, iuad.WithJournal(jdir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Epoch() != epoch {
		t.Fatalf("successor epoch %d, want %d", rec.Epoch(), epoch)
	}
	if got := surfaceFingerprint(t, rec); got != fp {
		t.Fatal("successor diverged from the pre-fault state")
	}
}

// TestJournalReplayFaultFailsOpen: recovery that cannot read the
// journal must fail the Open loudly, never serve a prefix.
func TestJournalReplayFaultFailsOpen(t *testing.T) {
	d := serviceDataset(101)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.AddPapers(context.Background(), streamProbes(d, "replay", 2)); err != nil {
		t.Fatal(err)
	}
	crash := copyJournalDir(t, jdir)

	boom := fmt.Errorf("injected replay fault")
	disarm := faultinject.Arm(faultinject.JournalReplay, func() error { return boom })
	defer disarm()
	_, err = iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(crash, noCompact))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("open under replay fault = %v, want the injected fault", err)
	}
	if !strings.Contains(err.Error(), "journal recovery") {
		t.Fatalf("replay failure lacks recovery context: %v", err)
	}
}

// TestJournalCloseCompactsCleanReopen: Close compacts, so a clean
// shutdown leaves a base snapshot and an empty journal — the successor
// opens with zero replay and the identical query surface.
func TestJournalCloseCompactsCleanReopen(t *testing.T) {
	d := serviceDataset(103)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus,
		iuad.WithConfig(equivCoreConfig(1)), iuad.WithJournalConfig(jdir, noCompact))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddPapers(context.Background(), streamProbes(d, "clean", 4)); err != nil {
		t.Fatal(err)
	}
	fp := surfaceFingerprint(t, svc)
	epoch := svc.Epoch()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := journalSegments(t, jdir); len(segs) != 0 {
		t.Fatalf("clean shutdown left journal segments %v", segs)
	}
	if _, err := os.Stat(filepath.Join(jdir, "base.snap")); err != nil {
		t.Fatalf("clean shutdown left no base snapshot: %v", err)
	}

	// No corpus needed: the base snapshot carries everything.
	rec, err := iuad.Open(nil, iuad.WithJournal(jdir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep := rec.JournalRecovery(); rep == nil || rep.Batches != 0 || rep.Segments != 0 {
		t.Fatalf("clean reopen replayed %+v, want nothing", rep)
	}
	if rec.Epoch() != epoch {
		t.Fatalf("clean reopen epoch %d, want %d", rec.Epoch(), epoch)
	}
	if got := surfaceFingerprint(t, rec); got != fp {
		t.Fatal("clean reopen diverged")
	}
}

// TestJournalBackgroundCompaction: crossing the CompactEvery threshold
// rewrites the base in the background and empties the journal; a crash
// right after still recovers the full surface.
func TestJournalBackgroundCompaction(t *testing.T) {
	d := serviceDataset(107)
	jdir := t.TempDir()
	svc, err := iuad.Open(d.Corpus, iuad.WithConfig(equivCoreConfig(1)),
		iuad.WithJournalConfig(jdir, iuad.JournalConfig{Fsync: iuad.FsyncOff, CompactEvery: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stream := streamProbes(d, "bgc", 6)
	for i := 0; i < 3; i++ {
		if _, err := svc.AddPapers(context.Background(), stream[i*2:i*2+2]); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger is async; wait for the rotation to land.
	deadline := 200
	for ; deadline > 0; deadline-- {
		if svc.JournalStats().Rotations > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatalf("background compaction never ran: %+v", svc.JournalStats())
	}

	fp := surfaceFingerprint(t, svc)
	epoch := svc.Epoch()
	rec, err := iuad.Open(nil, iuad.WithJournalConfig(copyJournalDir(t, jdir),
		iuad.JournalConfig{Fsync: iuad.FsyncOff, CompactEvery: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Epoch() != epoch {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), epoch)
	}
	if got := surfaceFingerprint(t, rec); got != fp {
		t.Fatal("post-compaction recovery diverged")
	}
}
