// Package snapshot provides the versioned binary encoding primitives
// behind pipeline snapshots (iuad.SavePipeline / iuad.LoadPipeline): a
// sticky-error Writer/Reader pair over a magic-tagged, varint-encoded
// stream. Each layer of the system (bib, textvec, emfit, core) encodes
// its own state with these primitives, so unexported fields never leak
// across package boundaries and the wire format lives in one place.
//
// Format: the stream opens with an 8-byte magic ("IUADSNAP") and a
// uvarint format version. Everything after is a flat sequence of
// primitives; there is no self-description, so any layout change MUST
// bump the writer's version, and readers reject versions they don't
// know. Integers are varints, float64/float32 are IEEE-754 bit patterns
// (little-endian), strings and byte blobs are length-prefixed.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic identifies a pipeline snapshot stream.
const Magic = "IUADSNAP"

// maxLen bounds any single length prefix (strings, slices) so a corrupt
// stream cannot claim absurd sizes outright; combined with chunked
// slice growth (allocChunk) a bad prefix costs at most one chunk of
// memory before the truncated body latches an error.
const maxLen = 1 << 31

// allocChunk caps the up-front capacity of any decoded slice; longer
// slices grow as their elements actually arrive, so allocation tracks
// real stream content, not the untrusted length prefix.
const allocChunk = 1 << 16

// Writer encodes primitives onto an io.Writer. Errors are sticky: the
// first failure latches and every later call is a no-op, so encode code
// can run straight-line and check Close once.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter starts a snapshot stream: magic plus format version.
func NewWriter(w io.Writer, version uint64) *Writer {
	sw := &Writer{w: bufio.NewWriter(w)}
	if _, err := sw.w.WriteString(Magic); err != nil {
		sw.err = err
	}
	sw.Uvarint(version)
	return sw
}

// Err returns the latched error, if any.
func (w *Writer) Err() error { return w.err }

// Close flushes the stream and returns the latched error.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Varint writes a signed varint (zigzag).
func (w *Writer) Varint(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool writes a boolean byte.
func (w *Writer) Bool(v bool) {
	b := uint64(0)
	if v {
		b = 1
	}
	w.Uvarint(b)
}

// F64 writes a float64 as its IEEE-754 bit pattern — an exact
// round-trip, no decimal formatting involved.
func (w *Writer) F64(v float64) { w.fixed64(math.Float64bits(v)) }

func (w *Writer) fixed64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, w.err = w.w.Write(buf[:])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// Bytes writes a length-prefixed byte blob.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Strings writes a length-prefixed string slice.
func (w *Writer) Strings(s []string) {
	w.Uvarint(uint64(len(s)))
	for _, x := range s {
		w.String(x)
	}
}

// Ints writes a length-prefixed []int as signed varints.
func (w *Writer) Ints(s []int) {
	w.Uvarint(uint64(len(s)))
	for _, x := range s {
		w.Varint(int64(x))
	}
}

// Int32s writes a length-prefixed []int32 as signed varints.
func (w *Writer) Int32s(s []int32) {
	w.Uvarint(uint64(len(s)))
	for _, x := range s {
		w.Varint(int64(x))
	}
}

// F64s writes a length-prefixed []float64 (bit patterns).
func (w *Writer) F64s(s []float64) {
	w.Uvarint(uint64(len(s)))
	for _, x := range s {
		w.F64(x)
	}
}

// F32s writes a length-prefixed []float32 (bit patterns).
func (w *Writer) F32s(s []float32) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	var buf [4]byte
	for _, x := range s {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
		if _, err := w.w.Write(buf[:]); err != nil {
			w.err = err
			return
		}
	}
}

// Reader decodes a stream produced by Writer. Errors are sticky; decode
// code runs straight-line and checks Err at the end. After any error,
// value-returning methods yield zero values.
type Reader struct {
	r   *bufio.Reader
	err error
}

// ErrFormat reports a stream that is not a snapshot or has an
// unsupported version.
type ErrFormat struct{ msg string }

func (e *ErrFormat) Error() string { return "snapshot: " + e.msg }

// NewReader validates the magic and version and returns a reader.
// wantVersion is the only version the caller understands.
func NewReader(r io.Reader, wantVersion uint64) (*Reader, error) {
	sr, _, err := NewReaderVersions(r, wantVersion)
	return sr, err
}

// NewReaderVersions validates the magic and accepts any of the listed
// versions, returning the reader and the version actually found. It is
// the entry point for callers that dispatch on format (e.g. legacy
// single-file service snapshots vs the sharded composite manifest).
func NewReaderVersions(r io.Reader, want ...uint64) (*Reader, uint64, error) {
	sr := &Reader{r: bufio.NewReader(r)}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		return nil, 0, &ErrFormat{msg: "not a pipeline snapshot (short magic): " + err.Error()}
	}
	if string(magic) != Magic {
		return nil, 0, &ErrFormat{msg: fmt.Sprintf("bad magic %q", magic)}
	}
	v := sr.Uvarint()
	if sr.err != nil {
		return nil, 0, sr.err
	}
	for _, w := range want {
		if v == w {
			return sr, v, nil
		}
	}
	return nil, 0, &ErrFormat{msg: fmt.Sprintf("snapshot version %d, this build reads %v", v, want)}
}

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("snapshot: uvarint: %w", err))
		return 0
	}
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("snapshot: varint: %w", err))
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Uvarint() != 0 }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.fixed64()) }

func (r *Reader) fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.fail(fmt.Errorf("snapshot: fixed64: %w", err))
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// length reads and bounds a length prefix.
func (r *Reader) length() int {
	n := r.Uvarint()
	if n > maxLen {
		r.fail(&ErrFormat{msg: fmt.Sprintf("length %d exceeds limit", n)})
		return 0
	}
	return int(n)
}

// startCap bounds an initial slice capacity by allocChunk.
func startCap(n int) int {
	if n > allocChunk {
		return allocChunk
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	if r.err != nil || n == 0 {
		return ""
	}
	return string(r.body(n, "string"))
}

// Bytes reads a length-prefixed byte blob.
func (r *Reader) Bytes() []byte {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	return r.body(n, "bytes")
}

// body reads n raw bytes. Small bodies (the overwhelmingly common
// case: titles, names, venues) read directly into their final buffer;
// larger ones grow chunk by chunk, so a corrupt length prefix costs at
// most one chunk of memory before the truncated body errors out.
func (r *Reader) body(n int, what string) []byte {
	if n <= allocChunk {
		out := make([]byte, n)
		if _, err := io.ReadFull(r.r, out); err != nil {
			r.fail(fmt.Errorf("snapshot: %s body: %w", what, err))
			return nil
		}
		return out
	}
	out := make([]byte, 0, allocChunk)
	chunk := make([]byte, allocChunk)
	for n > 0 {
		c := n
		if c > len(chunk) {
			c = len(chunk)
		}
		if _, err := io.ReadFull(r.r, chunk[:c]); err != nil {
			r.fail(fmt.Errorf("snapshot: %s body: %w", what, err))
			return nil
		}
		out = append(out, chunk[:c]...)
		n -= c
	}
	return out
}

// Strings reads a length-prefixed string slice.
func (r *Reader) Strings() []string {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, startCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.String())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, startCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int(r.Varint()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Int32s reads a length-prefixed []int32.
func (r *Reader) Int32s() []int32 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, 0, startCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int32(r.Varint()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, 0, startCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.F64())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// F32s reads a length-prefixed []float32.
func (r *Reader) F32s() []float32 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, 0, startCap(n))
	var buf [4]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r.r, buf[:]); err != nil {
			r.fail(fmt.Errorf("snapshot: f32 body: %w", err))
			return nil
		}
		out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(buf[:])))
	}
	return out
}
