package snapshot

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 3)
	w.Uvarint(42)
	w.Varint(-7)
	w.Int(123456)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("héllo")
	w.String("")
	w.Bytes([]byte{1, 2, 3})
	w.Strings([]string{"a", "", "c"})
	w.Ints([]int{-1, 0, 1 << 40})
	w.Int32s([]int32{-5, 5})
	w.F64s([]float64{1.5, -0.25})
	w.F32s([]float32{float32(math.E), -0})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 42 {
		t.Fatalf("uvarint=%d", got)
	}
	if got := r.Varint(); got != -7 {
		t.Fatalf("varint=%d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Fatalf("int=%d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools")
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("f64=%v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("f64 inf=%v", got)
	}
	if got := r.String(); got != "héllo" {
		t.Fatalf("string=%q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty string=%q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes=%v", got)
	}
	if got := r.Strings(); !reflect.DeepEqual(got, []string{"a", "", "c"}) {
		t.Fatalf("strings=%v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{-1, 0, 1 << 40}) {
		t.Fatalf("ints=%v", got)
	}
	if got := r.Int32s(); !reflect.DeepEqual(got, []int32{-5, 5}) {
		t.Fatalf("int32s=%v", got)
	}
	if got := r.F64s(); !reflect.DeepEqual(got, []float64{1.5, -0.25}) {
		t.Fatalf("f64s=%v", got)
	}
	got := r.F32s()
	if len(got) != 2 || got[0] != float32(math.E) {
		t.Fatalf("f32s=%v", got)
	}
	if math.Float32bits(got[1]) != math.Float32bits(-0) {
		t.Fatalf("f32 -0 bits=%x", math.Float32bits(got[1]))
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTASNAP\x01"), 1); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf, 1); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestTruncatedStreamSticksError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.String("abcdef")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("truncated body not detected")
	}
	// Subsequent reads stay failed and return zero values.
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("post-error read=%d", got)
	}
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
}
