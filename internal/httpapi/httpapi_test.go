package httpapi_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iuad"
	"iuad/internal/faultinject"
	"iuad/internal/httpapi"
)

func testService(t *testing.T, opts ...iuad.Option) *iuad.Service {
	t.Helper()
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 11
	scfg.Authors = 120
	scfg.Communities = 4
	cfg := iuad.DefaultConfig()
	cfg.Workers = 2
	cfg.SampleRate = 0.5
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	svc, err := iuad.Open(iuad.GenerateSynthetic(scfg).Corpus, append(opts, iuad.WithConfig(cfg))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// errorEnvelope decodes the stable error body every failure path must
// produce.
func errorEnvelope(t *testing.T, resp *http.Response) (code, message string) {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not the stable envelope: %v", err)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("error envelope missing fields: %+v", body)
	}
	return body.Error.Code, body.Error.Message
}

// TestErrorEnvelopeCodes drives every error path and pins its HTTP
// status and stable wire code.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := httptest.NewServer(httpapi.New(testService(t)))
	defer srv.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/v1/papers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name   string
		resp   *http.Response
		status int
		code   string
	}{
		{"missing name param", get("/v1/authors"), 400, "bad_request"},
		{"bad author id", get("/v1/authors/xyz"), 400, "bad_request"},
		{"unknown author", get("/v1/authors/999999"), 404, "not_found"},
		{"unknown coauthors", get("/v1/authors/999999/coauthors"), 404, "not_found"},
		{"unknown subresource", get("/v1/authors/0/nonsense"), 404, "not_found"},
		{"bad paper id", get("/v1/papers/xyz"), 400, "bad_request"},
		{"unknown paper", get("/v1/papers/999999"), 404, "not_found"},
		{"bad resolve params", get("/v1/resolve?paper=a&index=b"), 400, "bad_request"},
		{"unknown slot", get("/v1/resolve?paper=999999&index=0"), 404, "not_found"},
		{"GET on ingest", get("/v1/papers"), 405, "method_not_allowed"},
		{"malformed JSON", post("{nope"), 400, "bad_request"},
		{"invalid paper", post(`{"title":"x","authors":[]}`), 400, "bad_request"},
		{"unknown ego author", get("/v1/authors/999999/ego"), 404, "not_found"},
		{"bad ego hops", get("/v1/authors/0/ego?hops=two"), 400, "bad_request"},
		{"unknown collaborators author", get("/v1/authors/999999/collaborators"), 404, "not_found"},
		{"bad collaborators k", get("/v1/authors/0/collaborators?k=x"), 400, "bad_request"},
		{"unknown clustering author", get("/v1/authors/999999/clustering"), 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer tc.resp.Body.Close()
			if tc.resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", tc.resp.StatusCode, tc.status)
			}
			if code, _ := errorEnvelope(t, tc.resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}
}

// TestIngestRoundTrip posts a single paper and a batch, reads the
// created author back, and checks /metrics accounted for all of it.
func TestIngestRoundTrip(t *testing.T) {
	api := httpapi.New(testService(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/papers", "application/json",
		strings.NewReader(`{"title":"HTTP Probe","venue":"KDD","year":2024,"authors":["Http Probe Author"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("single ingest status %d", resp.StatusCode)
	}
	var single struct {
		Epoch       uint64 `json:"epoch"`
		Assignments []struct {
			Author  int  `json:"author"`
			Created bool `json:"created"`
		} `json:"assignments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if single.Epoch == 0 || len(single.Assignments) != 1 || !single.Assignments[0].Created {
		t.Fatalf("single ingest response %+v", single)
	}

	author, err := http.Get(fmt.Sprintf("%s/v1/authors/%d", srv.URL, single.Assignments[0].Author))
	if err != nil {
		t.Fatal(err)
	}
	defer author.Body.Close()
	var a struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(author.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Name != "Http Probe Author" {
		t.Fatalf("created author reads back as %q", a.Name)
	}

	batch, err := http.Post(srv.URL+"/v1/papers", "application/json",
		strings.NewReader(`[{"title":"B1","venue":"V","year":2024,"authors":["Http Probe Author"]},
		                    {"title":"B2","venue":"V","year":2024,"authors":["Another Http Author"]}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Body.Close()
	var br struct {
		Assignments [][]json.RawMessage `json:"assignments"`
	}
	if err := json.NewDecoder(batch.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Assignments) != 2 {
		t.Fatalf("batch ingest returned %d papers", len(br.Assignments))
	}

	m := api.Metrics()
	if m.Ingest.AdmittedPapers != 3 || m.HTTP.Requests < 3 || m.HTTP.Status2xx < 3 {
		t.Fatalf("metrics %+v", m)
	}
	if _, ok := m.HTTP.Endpoints["ingest"]; !ok {
		t.Fatalf("no ingest latency recorded: %+v", m.HTTP.Endpoints)
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var wire httpapi.Metrics
	if err := json.NewDecoder(mr.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Ingest.AdmittedPapers != 3 || wire.Epoch == 0 {
		t.Fatalf("/metrics document %+v", wire)
	}
}

// TestAnalyticsEndpoints drives the collaboration-network surface over
// the wire: whole-graph stats, communities, and the per-author
// ego/collaborators/clustering subresources, plus the analytics-cache
// counters in /metrics.
func TestAnalyticsEndpoints(t *testing.T) {
	api := httpapi.New(testService(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	var net struct {
		Authors    int     `json:"authors"`
		Edges      int     `json:"edges"`
		Density    float64 `json:"density"`
		Components int     `json:"components"`
	}
	getJSON("/v1/network", &net)
	if net.Authors <= 0 || net.Edges <= 0 || net.Density <= 0 || net.Components <= 0 {
		t.Fatalf("/v1/network = %+v", net)
	}

	var comm struct {
		Count int   `json:"count"`
		Sizes []int `json:"sizes"`
	}
	getJSON("/v1/communities", &comm)
	if comm.Count <= 0 || len(comm.Sizes) == 0 {
		t.Fatalf("/v1/communities = %+v", comm)
	}

	var eg struct {
		Center   int               `json:"center"`
		Hops     int               `json:"hops"`
		Vertices []json.RawMessage `json:"vertices"`
		Names    []string          `json:"names"`
	}
	getJSON("/v1/authors/0/ego?hops=2", &eg)
	if eg.Center != 0 || eg.Hops != 2 || len(eg.Vertices) == 0 || len(eg.Names) != len(eg.Vertices) {
		t.Fatalf("/v1/authors/0/ego = %+v", eg)
	}

	var cols []struct {
		ID           int    `json:"id"`
		SharedPapers int    `json:"shared_papers"`
		Name         string `json:"name"`
	}
	getJSON("/v1/authors/0/collaborators?k=3", &cols)
	if len(cols) == 0 || len(cols) > 3 {
		t.Fatalf("/v1/authors/0/collaborators = %+v", cols)
	}
	for _, c := range cols {
		if c.SharedPapers <= 0 || c.Name == "" {
			t.Fatalf("collaborator %+v", c)
		}
	}

	var cl struct {
		ID          int     `json:"id"`
		Degree      int     `json:"degree"`
		Coefficient float64 `json:"coefficient"`
	}
	getJSON("/v1/authors/0/clustering", &cl)
	if cl.Degree <= 0 {
		t.Fatalf("/v1/authors/0/clustering = %+v", cl)
	}

	// The whole sweep ran on one epoch: one rebuild, the rest cache
	// hits, all visible in the metrics document.
	var m httpapi.Metrics
	getJSON("/metrics", &m)
	if m.Analytics.Rebuilds != 1 || m.Analytics.Hits == 0 || !m.Analytics.Cached {
		t.Fatalf("analytics counters %+v", m.Analytics)
	}
	for _, name := range []string{"network", "communities", "ego", "collaborators", "clustering"} {
		if _, ok := m.HTTP.Endpoints[name]; !ok {
			t.Fatalf("no %s latency recorded: %+v", name, m.HTTP.Endpoints)
		}
	}
}

// TestOverloadAnswers429 pins the backpressure wire contract: with the
// queue at its bound behind a stalled publish, ingest answers 429 with
// the "overloaded" code and a Retry-After header — and never a 5xx.
func TestOverloadAnswers429(t *testing.T) {
	svc := testService(t, iuad.WithIngestConfig(iuad.IngestConfig{
		MaxQueued:  2,
		RetryAfter: 3 * time.Second,
	}))
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()

	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	disarm := faultinject.Arm(faultinject.PublishDelay, func() error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	defer disarm()
	defer release()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/v1/papers", "application/json",
			strings.NewReader(`[{"title":"L1","authors":["Overload A"]},{"title":"L2","authors":["Overload B"]}]`))
		if err != nil {
			t.Errorf("leader: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("leader status %d", resp.StatusCode)
		}
	}()
	<-entered // leader committed, stalled in publish; depth == bound

	resp, err := http.Post(srv.URL+"/v1/papers", "application/json",
		strings.NewReader(`{"title":"S","authors":["Shed Author"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	if code, _ := errorEnvelope(t, resp); code != "overloaded" {
		t.Fatalf("overload code %q", code)
	}

	disarm()
	release()
	wg.Wait()
}

// TestPendingLifecycle pins the listen-first/recover-second contract:
// a pending server answers 503 "starting" everywhere (healthz
// included), Attach flips the full API on atomically, and after Close
// healthz reports {"status":"closed"} with 503.
func TestPendingLifecycle(t *testing.T) {
	api := httpapi.NewPending()
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pending /v1/stats status %d, want 503", resp.StatusCode)
	}
	if code, _ := errorEnvelope(t, resp); code != "starting" {
		t.Fatalf("pending code %q, want starting", code)
	}
	resp.Body.Close()

	var health struct {
		Status string  `json:"status"`
		Epoch  *uint64 `json:"epoch"`
	}
	getHealth := func() (int, string, *uint64) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		health = struct {
			Status string  `json:"status"`
			Epoch  *uint64 `json:"epoch"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, health.Status, health.Epoch
	}

	if st, status, _ := getHealth(); st != 503 || status != "starting" {
		t.Fatalf("pending healthz = %d %q, want 503 starting", st, status)
	}

	svc := testService(t)
	api.Attach(svc)
	if st, status, epoch := getHealth(); st != 200 || status != "ok" || epoch == nil {
		t.Fatalf("attached healthz = %d %q epoch=%v, want 200 ok with epoch", st, status, epoch)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if st, status, _ := getHealth(); st != 503 || status != "closed" {
		t.Fatalf("closed healthz = %d %q, want 503 closed", st, status)
	}
}

// TestHealthzExemptFromAccounting pins the SLO-mix exemption: health
// probes must leave every request counter and latency histogram
// untouched.
func TestHealthzExemptFromAccounting(t *testing.T) {
	api := httpapi.New(testService(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	for i := 0; i < 25; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	}
	m := api.Metrics()
	if m.HTTP.Requests != 0 || m.HTTP.Status2xx != 0 {
		t.Fatalf("healthz leaked into accounting: %+v", m.HTTP)
	}
	if _, ok := m.HTTP.Endpoints["healthz"]; ok {
		t.Fatalf("healthz has a latency histogram: %+v", m.HTTP.Endpoints)
	}
}

// TestJournaledHealthAndMetrics opens a journaled service and checks
// /healthz carries the recovery report shape and /metrics the journal
// section, and that a journal append fault surfaces as a 500 with the
// "internal" code (server fault, not client error) with nothing
// committed.
func TestJournaledHealthAndMetrics(t *testing.T) {
	dir := t.TempDir()
	svc := testService(t, iuad.WithJournal(dir))
	api := httpapi.New(svc)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Recovery *struct {
			Batches int `json:"batches"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Recovery == nil {
		t.Fatalf("journaled healthz %+v, want ok with recovery report", health)
	}

	var m httpapi.Metrics
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Journal == nil || m.Journal.Dir != dir {
		t.Fatalf("metrics journal section %+v, want stats for %s", m.Journal, dir)
	}

	epochBefore := svc.Epoch()
	disarm := faultinject.Arm(faultinject.JournalAppend, func() error {
		return fmt.Errorf("injected append fault")
	})
	defer disarm()
	resp, err = http.Post(srv.URL+"/v1/papers", "application/json",
		strings.NewReader(`{"title":"J","authors":["Journal Fault"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("journal-fault status %d, want 500", resp.StatusCode)
	}
	if code, _ := errorEnvelope(t, resp); code != "internal" {
		t.Fatalf("journal-fault code %q, want internal", code)
	}
	if svc.Epoch() != epochBefore {
		t.Fatalf("failed journal write advanced the epoch: %d -> %d", epochBefore, svc.Epoch())
	}
}
