// Package httpapi is the HTTP face of an iuad.Service: the JSON
// query/ingest endpoints cmd/iuadserver serves, plus the /metrics
// introspection endpoint. It exists as a package (rather than code
// inside the command) so cmd/benchjson and the loadgen harness can run
// the exact production handler in-process.
//
// Error contract: every error response is the stable envelope
//
//	{"error": {"code": "<stable-code>", "message": "<human text>"}}
//
// where code is one of: bad_request, not_found, method_not_allowed,
// payload_too_large, canceled, deadline_exceeded, overloaded,
// shutting_down, starting, internal. Overload responses (HTTP 429)
// additionally carry a Retry-After header with the ingest queue's
// backoff hint. Clients branch on the code, never on the message.
//
// Liveness: /healthz reports {"status":"ok","epoch":N} with the
// journal recovery report when there is one, answers 503 while the
// service is still opening (journal replay in progress — see
// NewPending/Attach) or after Close, and is deliberately EXEMPT from
// the per-endpoint latency accounting: health probes must not skew
// the SLO mix, and a 503 during a planned drain is not a server
// error.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"iuad"
	"iuad/internal/core"
	"iuad/internal/hdrhist"
)

// endpointNames fixes the latency-histogram universe: one histogram
// per logical endpoint, allocated at construction so the hot path
// only ever reads the map. /healthz is deliberately absent — probes
// are exempt from the latency SLO mix.
var endpointNames = []string{
	"stats", "shards", "metrics",
	"resolve", "authors_by_name", "author", "coauthors", "paper",
	"network", "communities", "ego", "collaborators", "clustering",
	"ingest",
}

// Server is the HTTP handler plus its request accounting. Construct
// with New (service ready) or NewPending + Attach (listen first,
// recover second — /healthz answers 503 until Attach); it is an
// http.Handler either way.
type Server struct {
	svc atomic.Pointer[iuad.Service]
	mux atomic.Pointer[http.ServeMux]

	requests  atomic.Int64
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	status429 atomic.Int64
	latency   map[string]*hdrhist.Histogram
}

// HTTPStats is the request-side accounting served by /metrics.
type HTTPStats struct {
	Requests  int64 `json:"requests"`
	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status5xx int64 `json:"status_5xx"`
	// Status429 counts backpressure rejections; also included in 4xx.
	Status429 int64 `json:"status_429"`
	// Endpoints maps logical endpoint → request latency summary.
	Endpoints map[string]hdrhist.Summary `json:"endpoints"`
}

// Metrics is the /metrics document: everything the loadgen harness
// and dashboards need in one lock-free read.
type Metrics struct {
	Epoch      uint64               `json:"epoch"`
	Ingest     iuad.IngestStats     `json:"ingest"`
	Contention core.ContentionStats `json:"contention"`
	Analytics  iuad.AnalyticsStats  `json:"analytics"`
	// Journal is present only when the service runs with a write-ahead
	// journal (WithJournal); includes the fsync-latency histogram.
	Journal *iuad.JournalStats `json:"journal,omitempty"`
	HTTP    HTTPStats          `json:"http"`
}

// New builds the production handler over a ready svc.
func New(svc *iuad.Service) *Server {
	s := NewPending()
	s.Attach(svc)
	return s
}

// NewPending builds a handler with no service attached yet, so the
// listener can be up (and health probes answered) while journal
// recovery runs. Every request — /healthz included — answers 503 with
// stable code "starting" until Attach installs the service. Attach
// must be called exactly once.
func NewPending() *Server {
	s := &Server{latency: make(map[string]*hdrhist.Histogram, len(endpointNames))}
	for _, name := range endpointNames {
		s.latency[name] = hdrhist.New()
	}
	pending := http.NewServeMux()
	pending.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErrorCode(w, http.StatusServiceUnavailable, "starting",
			"service is recovering; not serving yet")
	})
	pending.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
	})
	s.mux.Store(pending)
	return s
}

// Attach installs the recovered service and atomically swaps the real
// route table in; in-flight requests finish against the pending mux,
// every later request sees the full API.
func (s *Server) Attach(svc *iuad.Service) {
	s.svc.Store(svc)
	s.mux.Store(s.routes(svc))
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.Load().ServeHTTP(w, r)
}

// Metrics assembles the point-in-time metrics document (the same one
// /metrics serves). Lock-free: counters are atomics, histograms are
// concurrent, service accessors read published state. Before Attach
// only the HTTP section is populated.
func (s *Server) Metrics() Metrics {
	eps := make(map[string]hdrhist.Summary, len(s.latency))
	for name, h := range s.latency {
		if h.Count() > 0 {
			eps[name] = h.Snapshot()
		}
	}
	m := Metrics{
		HTTP: HTTPStats{
			Requests:  s.requests.Load(),
			Status2xx: s.status2xx.Load(),
			Status4xx: s.status4xx.Load(),
			Status5xx: s.status5xx.Load(),
			Status429: s.status429.Load(),
			Endpoints: eps,
		},
	}
	if svc := s.svc.Load(); svc != nil {
		m.Epoch = svc.Epoch()
		m.Ingest = svc.Ingest()
		m.Contention = svc.Contention()
		m.Analytics = svc.Analytics()
		m.Journal = svc.JournalStats()
	}
	return m
}

// statusRecorder captures the response status for the accounting
// middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// routes builds the attached-state route table over svc. /healthz is
// registered directly on the mux — not through handle — so probes
// never enter the latency/status accounting.
func (s *Server) routes(svc *iuad.Service) *http.ServeMux {
	mux := http.NewServeMux()
	// handle registers fn under pattern with latency + status
	// accounting attributed to the logical endpoint name.
	handle := func(pattern, name string, fn http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.measured(name, w, r, fn)
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if svc.Closed() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "closed", "epoch": svc.Epoch(),
			})
			return
		}
		resp := map[string]any{"status": "ok", "epoch": svc.Epoch()}
		if rec := svc.JournalRecovery(); rec != nil {
			resp["recovery"] = rec
		}
		writeJSON(w, http.StatusOK, resp)
	})
	handle("/v1/stats", "stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	handle("/shards", "shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      svc.Epoch(),
			"shards":     svc.Shards(),
			"contention": svc.Contention(),
		})
	})
	handle("/metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	handle("/v1/network", "network", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Network())
	})
	handle("/v1/communities", "communities", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Communities())
	})
	handle("/v1/resolve", "resolve", func(w http.ResponseWriter, r *http.Request) {
		paper, err1 := strconv.Atoi(r.URL.Query().Get("paper"))
		index, err2 := strconv.Atoi(r.URL.Query().Get("index"))
		if err1 != nil || err2 != nil {
			writeErrorCode(w, http.StatusBadRequest, "bad_request", "resolve needs integer ?paper= and ?index=")
			return
		}
		a, err := svc.ResolveSlot(iuad.Slot{Paper: iuad.PaperID(paper), Index: index})
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})
	handle("/v1/authors", "authors_by_name", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeErrorCode(w, http.StatusBadRequest, "bad_request", "listing needs ?name= (exact author name)")
			return
		}
		writeJSON(w, http.StatusOK, svc.AuthorsByName(name))
	})
	mux.HandleFunc("/v1/authors/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/authors/")
		idStr, sub, _ := strings.Cut(rest, "/")
		name := "author"
		switch sub {
		case "coauthors", "ego", "collaborators", "clustering":
			name = sub
		}
		s.measured(name, w, r, func(w http.ResponseWriter, r *http.Request) {
			id, err := strconv.Atoi(idStr)
			if err != nil {
				writeErrorCode(w, http.StatusBadRequest, "bad_request", "bad author id "+strconv.Quote(idStr))
				return
			}
			switch sub {
			case "":
				a, err := svc.Author(id)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, a)
			case "coauthors":
				peers, err := svc.Coauthors(id)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, peers)
			case "ego":
				hops := 1
				if hs := r.URL.Query().Get("hops"); hs != "" {
					hops, err = strconv.Atoi(hs)
					if err != nil {
						writeErrorCode(w, http.StatusBadRequest, "bad_request", "bad ?hops= "+strconv.Quote(hs))
						return
					}
				}
				eg, err := svc.Ego(id, hops)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, eg)
			case "collaborators":
				k := 10
				if ks := r.URL.Query().Get("k"); ks != "" {
					k, err = strconv.Atoi(ks)
					if err != nil {
						writeErrorCode(w, http.StatusBadRequest, "bad_request", "bad ?k= "+strconv.Quote(ks))
						return
					}
				}
				cols, err := svc.TopCollaborators(id, k)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, cols)
			case "clustering":
				c, err := svc.Clustering(id)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, c)
			default:
				writeErrorCode(w, http.StatusNotFound, "not_found", "unknown author subresource "+strconv.Quote(sub))
			}
		})
	})
	mux.HandleFunc("/v1/papers/", func(w http.ResponseWriter, r *http.Request) {
		s.measured("paper", w, r, func(w http.ResponseWriter, r *http.Request) {
			idStr := strings.TrimPrefix(r.URL.Path, "/v1/papers/")
			id, err := strconv.Atoi(idStr)
			if err != nil {
				writeErrorCode(w, http.StatusBadRequest, "bad_request", "bad paper id "+strconv.Quote(idStr))
				return
			}
			p, err := svc.Paper(iuad.PaperID(id))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, p)
		})
	})
	handle("/v1/papers", "ingest", s.handleIngest)
	return mux
}

// measured wraps one dynamic-path request with the same accounting
// handle applies to fixed patterns.
func (s *Server) measured(name string, w http.ResponseWriter, r *http.Request, fn http.HandlerFunc) {
	t0 := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	fn(rec, r)
	s.latency[name].RecordSince(t0)
	s.requests.Add(1)
	switch {
	case rec.status == http.StatusTooManyRequests:
		s.status429.Add(1)
		s.status4xx.Add(1)
	case rec.status >= 500:
		s.status5xx.Add(1)
	case rec.status >= 400:
		s.status4xx.Add(1)
	default:
		s.status2xx.Add(1)
	}
}

// paperIn is the wire form of a bibliographic record.
type paperIn struct {
	Title   string   `json:"title"`
	Venue   string   `json:"venue"`
	Year    int      `json:"year"`
	Authors []string `json:"authors"`
}

func (p paperIn) paper() iuad.Paper {
	return iuad.Paper{Title: p.Title, Venue: p.Venue, Year: p.Year, Authors: p.Authors}
}

// assignmentOut is the wire form of one slot decision. Score is absent
// when there was no candidate to score against (the engine reports
// −Inf there, which JSON cannot carry).
type assignmentOut struct {
	Paper   int      `json:"paper"`
	Index   int      `json:"index"`
	Author  int      `json:"author"`
	Created bool     `json:"created"`
	Score   *float64 `json:"score,omitempty"`
}

func assignmentsOut(as []iuad.Assignment) []assignmentOut {
	out := make([]assignmentOut, len(as))
	for i, a := range as {
		out[i] = assignmentOut{
			Paper: int(a.Slot.Paper), Index: a.Slot.Index,
			Author: a.Vertex, Created: a.Created,
		}
		if !math.IsInf(a.Score, 0) && !math.IsNaN(a.Score) {
			score := a.Score
			out[i].Score = &score
		}
	}
	return out
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST a paper object or array")
		return
	}
	// Bound the body before decoding: one oversized request must not
	// take the whole serving process down. 8 MiB fits thousands of
	// bibliographic records per batch.
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	dec := json.NewDecoder(r.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		writeError(w, err)
		return
	}
	svc := s.svc.Load()
	trimmed := strings.TrimLeft(string(raw), " \t\r\n")
	if strings.HasPrefix(trimmed, "[") {
		var batch []paperIn
		if err := json.Unmarshal(raw, &batch); err != nil {
			writeError(w, err)
			return
		}
		papers := make([]iuad.Paper, len(batch))
		for i := range batch {
			papers[i] = batch[i].paper()
		}
		res, err := svc.AddPapers(r.Context(), papers)
		if err != nil {
			writeError(w, err)
			return
		}
		out := make([][]assignmentOut, len(res))
		for i := range res {
			out[i] = assignmentsOut(res[i])
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": svc.Epoch(), "assignments": out})
		return
	}
	var one paperIn
	if err := json.Unmarshal(raw, &one); err != nil {
		writeError(w, err)
		return
	}
	as, err := svc.AddPaper(r.Context(), one.paper())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": svc.Epoch(), "assignments": assignmentsOut(as)})
}

// statusCodeOf maps an error onto its HTTP status and stable wire
// code. The order matters: the most specific typed errors first, the
// context sentinels (which typed wrappers may carry) after them.
func statusCodeOf(err error) (int, string) {
	var ov *iuad.OverloadedError
	var je *iuad.JournalError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, "overloaded"
	case errors.As(err, &je):
		// The write-ahead record could not be made durable, so the
		// batch was refused. This is a server fault, not a bad request.
		return http.StatusInternalServerError, "internal"
	case errors.Is(err, iuad.ErrClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, iuad.ErrUnknownAuthor),
		errors.Is(err, iuad.ErrUnknownSlot),
		errors.Is(err, iuad.ErrUnknownPaper):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "canceled"
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge, "payload_too_large"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

// writeError maps err onto the stable error envelope. 429s carry the
// ingest queue's backoff hint as a Retry-After header (whole seconds,
// rounded up — the header has no finer granularity).
func writeError(w http.ResponseWriter, err error) {
	status, code := statusCodeOf(err)
	if code == "overloaded" {
		var ov *iuad.OverloadedError
		if errors.As(err, &ov) {
			secs := int64((ov.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	writeErrorCode(w, status, code, err.Error())
}

func writeErrorCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write means the client went away
}
