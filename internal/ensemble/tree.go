// Package ensemble implements the supervised learners of the paper's
// baseline comparison (§VI-A3) from scratch: CART-style decision trees,
// Random Forests, AdaBoost, and gradient-boosted trees in two flavors —
// first-order with Newton leaves (GBDT, Friedman 2001) and second-order
// regularized (the XGBoost objective, Chen & Guestrin 2016).
//
// All learners consume dense float feature vectors with binary labels
// and expose probability predictions through the Classifier interface.
package ensemble

import (
	"math"
	"math/rand"
	"sort"
)

// Classifier predicts P(y=1 | x).
type Classifier interface {
	PredictProb(x []float64) float64
}

// Predict returns the hard label at the 0.5 threshold.
func Predict(c Classifier, x []float64) bool { return c.PredictProb(x) >= 0.5 }

// TreeConfig tunes a single decision tree.
type TreeConfig struct {
	MaxDepth        int // levels below the root; 0 means a stump decision is still allowed at depth 1
	MinsamplesSplit int // don't split nodes smaller than this
	// FeatureSubset > 0 samples that many candidate features at every
	// node (the Random Forest rule); 0 considers all features.
	FeatureSubset int
	Seed          int64
}

// DefaultTreeConfig returns a moderately regularized tree.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 6, MinsamplesSplit: 4}
}

// node is one tree node; leaves carry the positive-class probability.
type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	leafProb float64
	isLeaf   bool
}

// Tree is a weighted binary classification tree. For binary targets,
// weighted-variance splitting is equivalent to weighted Gini splitting
// (both reduce p(1−p)), so one builder serves CART classification,
// AdaBoost stumps, and Random Forest members.
type Tree struct {
	root *node
}

// grower carries the immutable training state through recursion.
type grower struct {
	x        [][]float64
	y        []bool
	w        []float64
	minSplit int
	subset   int // features sampled per node; 0 = all
	rng      *rand.Rand
	allFeats []int
}

// TrainTree fits a tree on samples X with binary labels y and optional
// sample weights w (nil = uniform).
func TrainTree(x [][]float64, y []bool, w []float64, cfg TreeConfig) *Tree {
	if len(x) == 0 {
		return &Tree{root: &node{isLeaf: true, leafProb: 0.5}}
	}
	if w == nil {
		w = make([]float64, len(x))
		for i := range w {
			w[i] = 1
		}
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinsamplesSplit < 2 {
		cfg.MinsamplesSplit = 2
	}
	dims := len(x[0])
	allFeats := make([]int, dims)
	for i := range allFeats {
		allFeats[i] = i
	}
	g := &grower{
		x: x, y: y, w: w,
		minSplit: cfg.MinsamplesSplit,
		allFeats: allFeats,
	}
	if cfg.FeatureSubset > 0 && cfg.FeatureSubset < dims {
		g.subset = cfg.FeatureSubset
		g.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: g.grow(idx, cfg.MaxDepth)}
}

// nodeFeatures returns the candidate features for one node.
func (g *grower) nodeFeatures() []int {
	if g.subset == 0 {
		return g.allFeats
	}
	perm := g.rng.Perm(len(g.allFeats))[:g.subset]
	sort.Ints(perm)
	return perm
}

func (g *grower) grow(idx []int, depth int) *node {
	var sw, swPos float64
	for _, i := range idx {
		sw += g.w[i]
		if g.y[i] {
			swPos += g.w[i]
		}
	}
	prob := 0.5
	if sw > 0 {
		prob = swPos / sw
	}
	leaf := &node{isLeaf: true, leafProb: prob}
	if depth <= 0 || len(idx) < g.minSplit || prob == 0 || prob == 1 {
		return leaf
	}
	feature, thresh, gain := bestSplit(g.x, g.y, g.w, idx, g.nodeFeatures())
	if gain <= 1e-12 {
		return leaf
	}
	var li, ri []int
	for _, i := range idx {
		if g.x[i][feature] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leaf
	}
	return &node{
		feature: feature,
		thresh:  thresh,
		left:    g.grow(li, depth-1),
		right:   g.grow(ri, depth-1),
	}
}

// bestSplit scans every candidate feature/threshold for the largest
// weighted impurity reduction.
func bestSplit(x [][]float64, y []bool, w []float64, idx, feats []int) (feature int, thresh, gain float64) {
	var totW, totPos float64
	for _, i := range idx {
		totW += w[i]
		if y[i] {
			totPos += w[i]
		}
	}
	parent := gini(totPos, totW)
	best := -1.0
	feature = -1

	type sample struct {
		v   float64
		w   float64
		pos float64
	}
	buf := make([]sample, 0, len(idx))
	for _, f := range feats {
		buf = buf[:0]
		for _, i := range idx {
			s := sample{v: x[i][f], w: w[i]}
			if y[i] {
				s.pos = w[i]
			}
			buf = append(buf, s)
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].v < buf[b].v })
		var lw, lpos float64
		for k := 0; k+1 < len(buf); k++ {
			lw += buf[k].w
			lpos += buf[k].pos
			if buf[k].v == buf[k+1].v {
				continue
			}
			rw := totW - lw
			rpos := totPos - lpos
			if lw <= 0 || rw <= 0 {
				continue
			}
			g := parent - (lw/totW)*gini(lpos, lw) - (rw/totW)*gini(rpos, rw)
			if g > best {
				best = g
				feature = f
				thresh = (buf[k].v + buf[k+1].v) / 2
			}
		}
	}
	return feature, thresh, best
}

// gini returns the weighted Gini impurity 2p(1−p) of a node.
func gini(pos, total float64) float64 {
	if total <= 0 {
		return 0
	}
	p := pos / total
	return 2 * p * (1 - p)
}

// PredictProb implements Classifier.
func (t *Tree) PredictProb(x []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafProb
}

// Depth returns the maximum depth of the tree (leaves at the root = 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func sigmoid(z float64) float64 {
	if z > 36 {
		return 1
	}
	if z < -36 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
