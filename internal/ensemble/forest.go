package ensemble

import "math/rand"

// ForestConfig tunes a Random Forest.
type ForestConfig struct {
	Trees         int
	MaxDepth      int
	FeatureSubset int // features per tree (random subspace); 0 = sqrt(d)
	Seed          int64
}

// DefaultForestConfig returns a standard small forest.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 60, MaxDepth: 8}
}

// Forest is a bagged ensemble of decision trees (Breiman 2001).
type Forest struct {
	trees []*Tree
}

// TrainForest fits a Random Forest with bootstrap resampling and
// per-tree random feature subspaces.
func TrainForest(x [][]float64, y []bool, cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 60
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	dims := 0
	if len(x) > 0 {
		dims = len(x[0])
	}
	sub := cfg.FeatureSubset
	if sub <= 0 && dims > 0 {
		sub = isqrt(dims)
		if sub < 1 {
			sub = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	n := len(x)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample expressed as per-sample weights so ties keep
		// memory flat.
		w := make([]float64, n)
		for k := 0; k < n; k++ {
			w[rng.Intn(n)]++
		}
		var bx [][]float64
		var by []bool
		var bw []float64
		for i, wi := range w {
			if wi > 0 {
				bx = append(bx, x[i])
				by = append(by, y[i])
				bw = append(bw, wi)
			}
		}
		tcfg := TreeConfig{
			MaxDepth:        cfg.MaxDepth,
			MinsamplesSplit: 4,
			FeatureSubset:   sub,
			Seed:            rng.Int63(),
		}
		f.trees = append(f.trees, TrainTree(bx, by, bw, tcfg))
	}
	return f
}

// PredictProb averages the member trees' leaf probabilities.
func (f *Forest) PredictProb(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProb(x)
	}
	return sum / float64(len(f.trees))
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
