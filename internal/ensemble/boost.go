package ensemble

import (
	"math"
	"math/rand"
	"sort"
)

// Gradient-boosted trees with logistic loss. The tree builder works on
// per-sample gradient/hessian pairs, with the regularized leaf weight
// and split gain of the XGBoost objective:
//
//	leaf   w* = −G / (H + λ)
//	gain      = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
//
// GBDT (Friedman 2001 with Newton leaves) is the λ=0, γ=0, no-subsample
// special case, which is how the two baselines differ here.

// BoostConfig tunes gradient boosting.
type BoostConfig struct {
	Rounds    int
	MaxDepth  int
	LearnRate float64
	// Lambda is the L2 leaf regularizer; Gamma the split penalty.
	Lambda, Gamma float64
	// Subsample in (0,1] rows per round (stochastic boosting).
	Subsample float64
	Seed      int64
}

// DefaultGBDTConfig parameterizes plain gradient boosting.
func DefaultGBDTConfig() BoostConfig {
	return BoostConfig{Rounds: 60, MaxDepth: 4, LearnRate: 0.15, Subsample: 1}
}

// DefaultXGBConfig parameterizes the regularized variant.
func DefaultXGBConfig() BoostConfig {
	return BoostConfig{Rounds: 60, MaxDepth: 4, LearnRate: 0.15,
		Lambda: 1, Gamma: 0.1, Subsample: 0.8, Seed: 1}
}

// gbNode is a regression-tree node with a leaf weight.
type gbNode struct {
	feature int
	thresh  float64
	left    *gbNode
	right   *gbNode
	weight  float64
	isLeaf  bool
}

// GradientBoost is a fitted boosted-tree model.
type GradientBoost struct {
	bias  float64 // initial log-odds
	trees []*gbNode
	lr    float64
}

// TrainBoost fits gradient-boosted trees with logistic loss.
func TrainBoost(x [][]float64, y []bool, cfg BoostConfig) *GradientBoost {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 60
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.15
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	n := len(x)
	gb := &GradientBoost{lr: cfg.LearnRate}
	if n == 0 {
		return gb
	}
	pos := 0
	for _, yi := range y {
		if yi {
			pos++
		}
	}
	p0 := clampProb(float64(pos) / float64(n))
	gb.bias = math.Log(p0 / (1 - p0))

	rng := rand.New(rand.NewSource(cfg.Seed))
	f := make([]float64, n) // current margins
	for i := range f {
		f[i] = gb.bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(f[i])
			t := 0.0
			if y[i] {
				t = 1
			}
			grad[i] = p - t // dL/df for logistic loss
			hess[i] = p * (1 - p)
			if hess[i] < 1e-9 {
				hess[i] = 1e-9
			}
		}
		idx := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if cfg.Subsample >= 1 || rng.Float64() < cfg.Subsample {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		tree := growGB(x, grad, hess, idx, cfg.MaxDepth, cfg.Lambda, cfg.Gamma)
		gb.trees = append(gb.trees, tree)
		for i := 0; i < n; i++ {
			f[i] += cfg.LearnRate * applyGB(tree, x[i])
		}
	}
	return gb
}

func clampProb(p float64) float64 {
	const eps = 1e-4
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

func growGB(x [][]float64, grad, hess []float64, idx []int, depth int, lambda, gamma float64) *gbNode {
	var g, h float64
	for _, i := range idx {
		g += grad[i]
		h += hess[i]
	}
	leaf := &gbNode{isLeaf: true, weight: -g / (h + lambda)}
	if depth <= 0 || len(idx) < 4 {
		return leaf
	}
	feature, thresh, gain := bestGBSplit(x, grad, hess, idx, g, h, lambda)
	if gain <= gamma {
		return leaf
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][feature] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leaf
	}
	return &gbNode{
		feature: feature,
		thresh:  thresh,
		left:    growGB(x, grad, hess, li, depth-1, lambda, gamma),
		right:   growGB(x, grad, hess, ri, depth-1, lambda, gamma),
	}
}

func bestGBSplit(x [][]float64, grad, hess []float64, idx []int, g, h, lambda float64) (feature int, thresh, gain float64) {
	dims := len(x[idx[0]])
	parent := g * g / (h + lambda)
	best := 0.0
	feature = -1
	type sample struct{ v, g, h float64 }
	buf := make([]sample, 0, len(idx))
	for f := 0; f < dims; f++ {
		buf = buf[:0]
		for _, i := range idx {
			buf = append(buf, sample{x[i][f], grad[i], hess[i]})
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].v < buf[b].v })
		var lg, lh float64
		for k := 0; k+1 < len(buf); k++ {
			lg += buf[k].g
			lh += buf[k].h
			if buf[k].v == buf[k+1].v {
				continue
			}
			rg, rh := g-lg, h-lh
			gn := 0.5 * (lg*lg/(lh+lambda) + rg*rg/(rh+lambda) - parent)
			if gn > best {
				best = gn
				feature = f
				thresh = (buf[k].v + buf[k+1].v) / 2
			}
		}
	}
	return feature, thresh, best
}

func applyGB(n *gbNode, x []float64) float64 {
	for !n.isLeaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.weight
}

// PredictProb implements Classifier.
func (gb *GradientBoost) PredictProb(x []float64) float64 {
	f := gb.bias
	for _, t := range gb.trees {
		f += gb.lr * applyGB(t, x)
	}
	return sigmoid(f)
}
