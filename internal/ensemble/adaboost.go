package ensemble

import "math"

// AdaConfig tunes AdaBoost.
type AdaConfig struct {
	Rounds int
	// StumpDepth is the depth of each weak learner (1 = decision stump).
	StumpDepth int
}

// DefaultAdaConfig returns classic stump-based AdaBoost.
func DefaultAdaConfig() AdaConfig { return AdaConfig{Rounds: 80, StumpDepth: 1} }

// AdaBoost is the discrete AdaBoost ensemble (Freund & Schapire 1997).
type AdaBoost struct {
	stumps []*Tree
	alphas []float64
}

// TrainAdaBoost fits weighted weak learners, reweighting misclassified
// samples each round.
func TrainAdaBoost(x [][]float64, y []bool, cfg AdaConfig) *AdaBoost {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 80
	}
	if cfg.StumpDepth <= 0 {
		cfg.StumpDepth = 1
	}
	n := len(x)
	ab := &AdaBoost{}
	if n == 0 {
		return ab
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	for round := 0; round < cfg.Rounds; round++ {
		stump := TrainTree(x, y, w, TreeConfig{MaxDepth: cfg.StumpDepth, MinsamplesSplit: 2})
		var err float64
		for i := range x {
			if Predict(stump, x[i]) != y[i] {
				err += w[i]
			}
		}
		if err >= 0.5 {
			break // weak learner no better than chance
		}
		if err < 1e-10 {
			// Perfect learner: take it with a large finite vote and stop.
			ab.stumps = append(ab.stumps, stump)
			ab.alphas = append(ab.alphas, 12)
			break
		}
		alpha := 0.5 * math.Log((1-err)/err)
		ab.stumps = append(ab.stumps, stump)
		ab.alphas = append(ab.alphas, alpha)
		var sum float64
		for i := range x {
			agree := Predict(stump, x[i]) == y[i]
			if agree {
				w[i] *= math.Exp(-alpha)
			} else {
				w[i] *= math.Exp(alpha)
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return ab
}

// PredictProb squashes the weighted-vote margin through a logistic link.
func (ab *AdaBoost) PredictProb(x []float64) float64 {
	if len(ab.stumps) == 0 {
		return 0.5
	}
	margin := 0.0
	for k, s := range ab.stumps {
		if Predict(s, x) {
			margin += ab.alphas[k]
		} else {
			margin -= ab.alphas[k]
		}
	}
	return sigmoid(2 * margin)
}
