package ensemble

import (
	"math"
	"math/rand"
	"testing"
)

// xorData is linearly inseparable; trees must carve it.
func xorData(n int, seed int64) (x [][]float64, y []bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b, rng.Float64()}) // third feature is noise
		y = append(y, (a > 0.5) != (b > 0.5))
	}
	return x, y
}

// diagonalData is separated by x0+x1 > 1 with label noise.
func diagonalData(n int, noise float64, seed int64) (x [][]float64, y []bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		lbl := a+b > 1
		if rng.Float64() < noise {
			lbl = !lbl
		}
		x = append(x, []float64{a, b})
		y = append(y, lbl)
	}
	return x, y
}

func accuracy(c Classifier, x [][]float64, y []bool) float64 {
	correct := 0
	for i := range x {
		if Predict(c, x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestTreeLearnsXOR(t *testing.T) {
	// Greedy Gini needs a reasonable sample to escape sliver splits on
	// uniform XOR; 1200 points suffice deterministically.
	x, y := xorData(1200, 1)
	tree := TrainTree(x, y, nil, TreeConfig{MaxDepth: 6, MinsamplesSplit: 4})
	tx, ty := xorData(300, 2)
	if acc := accuracy(tree, tx, ty); acc < 0.9 {
		t.Fatalf("tree XOR accuracy=%.3f, want ≥0.9", acc)
	}
	if tree.Depth() < 2 {
		t.Fatalf("XOR needs depth ≥2, got %d", tree.Depth())
	}
}

func TestStumpCannotLearnXOR(t *testing.T) {
	x, y := xorData(600, 3)
	stump := TrainTree(x, y, nil, TreeConfig{MaxDepth: 1, MinsamplesSplit: 2})
	if acc := accuracy(stump, x, y); acc > 0.72 {
		t.Fatalf("depth-1 stump accuracy=%.3f on XOR; depth limiting broken", acc)
	}
}

func TestTreeRespectsWeights(t *testing.T) {
	// Same point set; weights flip which class dominates a region.
	x := [][]float64{{0}, {0}, {0}, {1}}
	y := []bool{true, false, false, true}
	heavyTrue := TrainTree(x, y, []float64{10, 1, 1, 1}, DefaultTreeConfig())
	if !Predict(heavyTrue, []float64{0}) {
		t.Fatal("weighted-true sample ignored")
	}
	heavyFalse := TrainTree(x, y, []float64{1, 10, 10, 1}, DefaultTreeConfig())
	if Predict(heavyFalse, []float64{0}) {
		t.Fatal("weighted-false samples ignored")
	}
}

func TestTreeEmptyTraining(t *testing.T) {
	tree := TrainTree(nil, nil, nil, DefaultTreeConfig())
	if p := tree.PredictProb([]float64{1, 2}); p != 0.5 {
		t.Fatalf("empty-tree prob=%v", p)
	}
}

func TestForestBeatsNoise(t *testing.T) {
	x, y := diagonalData(800, 0.1, 5)
	forest := TrainForest(x, y, ForestConfig{Trees: 40, MaxDepth: 6, Seed: 1})
	tx, ty := diagonalData(400, 0, 6)
	if acc := accuracy(forest, tx, ty); acc < 0.9 {
		t.Fatalf("forest accuracy=%.3f, want ≥0.9", acc)
	}
}

func TestForestProbabilitiesBounded(t *testing.T) {
	x, y := diagonalData(200, 0.2, 7)
	forest := TrainForest(x, y, ForestConfig{Trees: 15, MaxDepth: 4, Seed: 2})
	for _, xi := range x {
		p := forest.PredictProb(xi)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob=%v", p)
		}
	}
}

func TestAdaBoostLearnsXOR(t *testing.T) {
	x, y := xorData(1200, 8)
	// Stumps alone cannot express XOR; depth-2 weak learners can.
	ab := TrainAdaBoost(x, y, AdaConfig{Rounds: 60, StumpDepth: 2})
	tx, ty := xorData(300, 9)
	if acc := accuracy(ab, tx, ty); acc < 0.85 {
		t.Fatalf("adaboost accuracy=%.3f, want ≥0.85", acc)
	}
}

func TestAdaBoostDiagonal(t *testing.T) {
	x, y := diagonalData(600, 0.05, 10)
	ab := TrainAdaBoost(x, y, DefaultAdaConfig())
	tx, ty := diagonalData(300, 0, 11)
	if acc := accuracy(ab, tx, ty); acc < 0.88 {
		t.Fatalf("adaboost stumps accuracy=%.3f, want ≥0.88", acc)
	}
}

func TestGBDTAndXGBLearnXOR(t *testing.T) {
	x, y := xorData(1200, 12)
	tx, ty := xorData(300, 13)
	gbdt := TrainBoost(x, y, DefaultGBDTConfig())
	if acc := accuracy(gbdt, tx, ty); acc < 0.9 {
		t.Fatalf("gbdt accuracy=%.3f, want ≥0.9", acc)
	}
	xgb := TrainBoost(x, y, DefaultXGBConfig())
	if acc := accuracy(xgb, tx, ty); acc < 0.9 {
		t.Fatalf("xgb accuracy=%.3f, want ≥0.9", acc)
	}
}

func TestBoostProbabilitiesCalibratedDirection(t *testing.T) {
	x, y := diagonalData(800, 0.05, 14)
	gb := TrainBoost(x, y, DefaultXGBConfig())
	lo := gb.PredictProb([]float64{0.05, 0.05})
	hi := gb.PredictProb([]float64{0.95, 0.95})
	if !(lo < 0.5 && hi > 0.5 && hi > lo) {
		t.Fatalf("probabilities not ordered: lo=%.3f hi=%.3f", lo, hi)
	}
}

func TestBoostEmptyAndDegenerate(t *testing.T) {
	gb := TrainBoost(nil, nil, DefaultGBDTConfig())
	if p := gb.PredictProb([]float64{1}); p != 0.5 {
		t.Fatalf("empty boost prob=%v", p)
	}
	// Single-class training: probability stays at that side.
	x := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	gb = TrainBoost(x, y, DefaultGBDTConfig())
	if p := gb.PredictProb([]float64{2}); p < 0.9 {
		t.Fatalf("all-positive boost prob=%v", p)
	}
}

func TestAdaBoostPerfectLearnerStops(t *testing.T) {
	// Trivially separable data: the first stump is perfect.
	x := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []bool{false, false, true, true}
	ab := TrainAdaBoost(x, y, DefaultAdaConfig())
	if len(ab.stumps) != 1 {
		t.Fatalf("stumps=%d, want 1 (perfect learner early-stop)", len(ab.stumps))
	}
	if acc := accuracy(ab, x, y); acc != 1 {
		t.Fatalf("accuracy=%v", acc)
	}
}
