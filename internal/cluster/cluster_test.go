package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blobs returns points in well-separated 1-D groups and a DistFunc.
// Group g occupies [10g, 10g+1].
func blobs(perGroup, groups int, seed int64) ([]float64, DistFunc) {
	rng := rand.New(rand.NewSource(seed))
	var pts []float64
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			pts = append(pts, float64(10*g)+rng.Float64())
		}
	}
	return pts, func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
}

// sameClusters checks that labels agree with the expected group sizes.
func assertGroups(t *testing.T, labels []int, perGroup, groups int) {
	t.Helper()
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	if len(sizes) != groups {
		t.Fatalf("got %d clusters, want %d (labels=%v)", len(sizes), groups, labels)
	}
	for l, s := range sizes {
		if s != perGroup {
			t.Fatalf("cluster %d size=%d, want %d", l, s, perGroup)
		}
	}
	// Within a group, all labels equal.
	for g := 0; g < groups; g++ {
		first := labels[g*perGroup]
		for i := 0; i < perGroup; i++ {
			if labels[g*perGroup+i] != first {
				t.Fatalf("group %d split: %v", g, labels)
			}
		}
	}
}

func TestHACSeparatesBlobs(t *testing.T) {
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		_, dist := blobs(5, 3, 1)
		labels := HAC(15, dist, linkage, 3.0)
		assertGroups(t, labels, 5, 3)
	}
}

func TestHACThresholdZeroKeepsSingletons(t *testing.T) {
	_, dist := blobs(4, 2, 2)
	labels := HAC(8, dist, AverageLinkage, -1)
	seen := map[int]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("negative threshold still merged: %v", labels)
		}
		seen[l] = true
	}
}

func TestHACMergesAllWithHugeThreshold(t *testing.T) {
	_, dist := blobs(3, 3, 3)
	labels := HAC(9, dist, CompleteLinkage, 1e9)
	for _, l := range labels {
		if l != labels[0] {
			t.Fatalf("huge threshold left multiple clusters: %v", labels)
		}
	}
}

func TestHACEmpty(t *testing.T) {
	if got := HAC(0, nil, AverageLinkage, 1); got != nil {
		t.Fatalf("HAC(0)=%v", got)
	}
}

func TestHACLinkageDifference(t *testing.T) {
	// Chain 0,1,2,...,9 spaced 1 apart: single linkage with threshold 1.5
	// merges the whole chain; complete linkage does not.
	pts := make([]float64, 10)
	for i := range pts {
		pts[i] = float64(i)
	}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	single := HAC(10, dist, SingleLinkage, 1.5)
	complete := HAC(10, dist, CompleteLinkage, 1.5)
	nSingle, nComplete := countLabels(single), countLabels(complete)
	if nSingle != 1 {
		t.Fatalf("single linkage clusters=%d, want 1", nSingle)
	}
	if nComplete <= 1 {
		t.Fatalf("complete linkage merged the chain: %d clusters", nComplete)
	}
}

func countLabels(labels []int) int {
	set := map[int]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}

func TestDBSCANBlobsAndNoise(t *testing.T) {
	pts := []float64{0, 0.1, 0.2, 5, 5.1, 5.2, 100}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	labels := DBSCAN(len(pts), dist, 0.5, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("first blob split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("second blob split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("blobs merged: %v", labels)
	}
	// The outlier is a singleton with its own label.
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Fatalf("outlier absorbed: %v", labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []float64{0, 10, 20}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	labels := DBSCAN(3, dist, 1, 2)
	if countLabels(labels) != 3 {
		t.Fatalf("all-noise labels=%v", labels)
	}
}

func TestDBSCANBorderPoint(t *testing.T) {
	// 0 and 0.4 are core-ish; 0.8 is border (within eps of 0.4 only).
	pts := []float64{0, 0.4, 0.8}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	labels := DBSCAN(3, dist, 0.5, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("border point not attached: %v", labels)
	}
}

func TestHDBSCANSeparatesBlobs(t *testing.T) {
	_, dist := blobs(6, 3, 4)
	labels := HDBSCAN(18, dist, HDBSCANConfig{MinPts: 3, MinClusterSize: 3})
	assertGroups(t, labels, 6, 3)
}

func TestHDBSCANSmallClustersBecomeSingletons(t *testing.T) {
	// Two dense blobs of 5 plus a far pair: MinClusterSize 3 demotes the
	// pair to singletons.
	pts := []float64{0, 0.1, 0.2, 0.3, 0.4, 10, 10.1, 10.2, 10.3, 10.4, 100, 100.1}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	labels := HDBSCAN(len(pts), dist, HDBSCANConfig{MinPts: 2, MinClusterSize: 3})
	if labels[10] == labels[11] {
		t.Fatalf("tiny cluster kept: %v", labels)
	}
	if labels[0] != labels[4] || labels[5] != labels[9] || labels[0] == labels[5] {
		t.Fatalf("blobs wrong: %v", labels)
	}
}

func TestHDBSCANDegenerate(t *testing.T) {
	if got := HDBSCAN(0, nil, HDBSCANConfig{}); got != nil {
		t.Fatalf("HDBSCAN(0)=%v", got)
	}
	one := HDBSCAN(1, func(i, j int) float64 { return 0 }, HDBSCANConfig{})
	if len(one) != 1 {
		t.Fatalf("HDBSCAN(1)=%v", one)
	}
}

func TestAffinityPropagationBlobs(t *testing.T) {
	pts, dist := blobs(5, 3, 5)
	n := len(pts)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			sim[i][j] = -dist(i, j) // similarity = negative distance
		}
	}
	labels := AffinityPropagation(sim, DefaultAPConfig())
	assertGroups(t, labels, 5, 3)
}

func TestAffinityPropagationDegenerate(t *testing.T) {
	if got := AffinityPropagation(nil, DefaultAPConfig()); got != nil {
		t.Fatalf("AP(0)=%v", got)
	}
	if got := AffinityPropagation([][]float64{{0}}, DefaultAPConfig()); len(got) != 1 || got[0] != 0 {
		t.Fatalf("AP(1)=%v", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Fatal("union failed")
	}
	if uf.find(0) == uf.find(3) || uf.find(2) == uf.find(0) {
		t.Fatal("separate sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Fatal("transitive union failed")
	}
	uf.union(0, 4) // already joined; must not corrupt
	if uf.find(2) == uf.find(0) {
		t.Fatal("idempotent union corrupted state")
	}
}

// TestHACParallelMatchesSerial checks that the parallel distance-matrix
// fill leaves HAC labels untouched for every linkage.
func TestHACParallelMatchesSerial(t *testing.T) {
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		_, dist := blobs(6, 4, 3)
		serial := HAC(24, dist, linkage, 3.0)
		parallel := HAC(24, dist, linkage, 3.0, 8)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("linkage %d: labels diverge at %d: %v vs %v",
					linkage, i, serial, parallel)
			}
		}
	}
}

// TestHDBSCANParallelMatchesSerial checks the pooled core-distance
// computation against the serial one.
func TestHDBSCANParallelMatchesSerial(t *testing.T) {
	_, dist := blobs(8, 3, 4)
	serial := HDBSCAN(24, dist, HDBSCANConfig{MinPts: 3, MinClusterSize: 3})
	parallel := HDBSCAN(24, dist, HDBSCANConfig{MinPts: 3, MinClusterSize: 3, Workers: 8})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("labels diverge at %d: %v vs %v", i, serial, parallel)
		}
	}
}
