// Package cluster implements the clustering algorithms the baseline
// disambiguators rely on: hierarchical agglomerative clustering (ANON
// [22], Aminer [33]), DBSCAN and a simplified HDBSCAN (NetE [23]), and
// affinity propagation (NetE, GHOST [27]).
//
// All algorithms operate on an abstract pairwise distance (or similarity)
// function over item indexes 0..n-1 and return flat integer labels.
// Noise points (DBSCAN/HDBSCAN) receive their own singleton labels, since
// author disambiguation must assign every paper to somebody.
//
// HDBSCAN here is the standard "mutual-reachability single-linkage MST"
// core with flat extraction by cutting edges longer than a multiple of
// the median MST edge length and discarding clusters below
// MinClusterSize — a documented simplification of the condensed-tree
// stability extraction (DESIGN.md, substitution 4).
package cluster

import (
	"math"
	"sort"

	"iuad/internal/sched"
)

// DistFunc returns the distance between items i and j; it must be
// symmetric and non-negative.
type DistFunc func(i, j int) float64

// optWorkers resolves an optional trailing workers argument: absent or
// ≤ 1 means serial.
func optWorkers(workers []int) int {
	if len(workers) == 0 || workers[0] <= 1 {
		return 1
	}
	return workers[0]
}

// distanceMatrix fills the full n×n distance matrix, fanning rows out to
// the pool when workers > 1. Each entry is written exactly once at a
// fixed position, so the matrix is identical for every worker count.
func distanceMatrix(n int, dist DistFunc, workers int) [][]float64 {
	d := make([][]float64, n)
	sched.ForEach(workers, n, func(i int) {
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				d[i][j] = dist(i, j)
			}
		}
	})
	return d
}

// Linkage selects the HAC merge criterion.
type Linkage int

const (
	// AverageLinkage merges by mean inter-cluster distance (UPGMA).
	AverageLinkage Linkage = iota
	// SingleLinkage merges by minimum inter-cluster distance.
	SingleLinkage
	// CompleteLinkage merges by maximum inter-cluster distance.
	CompleteLinkage
)

// HAC runs bottom-up agglomerative clustering over n items, merging while
// the linkage distance is ≤ threshold, and returns dense cluster labels.
// With threshold < 0 nothing merges.
//
// The implementation is the O(n³) textbook algorithm over an explicit
// distance matrix — ample for per-name candidate sets (tens to a few
// hundred papers), which is how every caller in this repository uses it.
//
// The optional workers argument parallelizes the O(n²) distance-matrix
// fill (rows are independent; labels are unaffected by the worker
// count). dist must then be safe for concurrent calls — true for the
// precomputed-vector distances the baselines use. Omitted or ≤ 1 keeps
// the fill serial.
func HAC(n int, dist DistFunc, linkage Linkage, threshold float64, workers ...int) []int {
	if n == 0 {
		return nil
	}
	// active cluster members.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	d := distanceMatrix(n, dist, optWorkers(workers))
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	linkDist := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := math.Inf(1)
			for _, x := range a {
				for _, y := range b {
					if d[x][y] < best {
						best = d[x][y]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 0.0
			for _, x := range a {
				for _, y := range b {
					if d[x][y] > worst {
						worst = d[x][y]
					}
				}
			}
			return worst
		default: // AverageLinkage
			sum := 0.0
			for _, x := range a {
				for _, y := range b {
					sum += d[x][y]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}
	for {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if ld := linkDist(members[i], members[j]); ld < best {
					best, bi, bj = ld, i, j
				}
			}
		}
		if bi < 0 || best > threshold {
			break
		}
		members[bi] = append(members[bi], members[bj]...)
		active[bj] = false
	}
	labels := make([]int, n)
	next := 0
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		for _, x := range members[i] {
			labels[x] = next
		}
		next++
	}
	return labels
}

// DBSCAN clusters n items with radius eps and density threshold minPts
// (including the point itself). Noise points get singleton labels after
// the dense clusters are formed.
func DBSCAN(n int, dist DistFunc, eps float64, minPts int) []int {
	const (
		unvisited = -2
		noise     = -1
	)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	neighbors := func(p int) []int {
		var out []int
		for q := 0; q < n; q++ {
			if q != p && dist(p, q) <= eps {
				out = append(out, q)
			}
		}
		return out
	}
	cluster := 0
	for p := 0; p < n; p++ {
		if labels[p] != unvisited {
			continue
		}
		nbs := neighbors(p)
		if len(nbs)+1 < minPts {
			labels[p] = noise
			continue
		}
		labels[p] = cluster
		queue := append([]int(nil), nbs...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == noise {
				labels[q] = cluster // border point
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = cluster
			qn := neighbors(q)
			if len(qn)+1 >= minPts {
				queue = append(queue, qn...)
			}
		}
		cluster++
	}
	// Promote noise to singletons.
	for i := range labels {
		if labels[i] == noise {
			labels[i] = cluster
			cluster++
		}
	}
	return labels
}

// HDBSCANConfig tunes HDBSCAN.
type HDBSCANConfig struct {
	// MinPts is the core-distance neighborhood size (k-th nearest).
	MinPts int
	// MinClusterSize discards smaller clusters as noise.
	MinClusterSize int
	// CutRatio > 1: MST edges longer than CutRatio × median(edge length)
	// are removed before component extraction. Defaults to 3.
	CutRatio float64
	// Workers parallelizes the O(n²) core-distance computation (≤ 1 =
	// serial). dist must then be safe for concurrent calls. Labels are
	// unaffected by the worker count.
	Workers int
}

// HDBSCAN clusters by single linkage over the mutual-reachability
// distance. See the package comment for the simplification relative to
// full condensed-tree HDBSCAN.
func HDBSCAN(n int, dist DistFunc, cfg HDBSCANConfig) []int {
	if n == 0 {
		return nil
	}
	if cfg.MinPts < 1 {
		cfg.MinPts = 4
	}
	if cfg.MinClusterSize < 1 {
		cfg.MinClusterSize = 2
	}
	if cfg.CutRatio <= 1 {
		cfg.CutRatio = 3
	}
	// Core distance: distance to the MinPts-th nearest other point.
	// Rows are independent, so the scan fans out in contiguous chunks
	// (one reused buffer per chunk — the serial path keeps the single
	// buffer of old) when Workers > 1.
	workers := cfg.Workers
	if workers <= 1 {
		workers = 1
	}
	core := make([]float64, n)
	chunks := sched.Chunks(workers, n)
	sched.ForEach(workers, len(chunks), func(c int) {
		buf := make([]float64, 0, n-1)
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			buf = buf[:0]
			for j := 0; j < n; j++ {
				if j != i {
					buf = append(buf, dist(i, j))
				}
			}
			sort.Float64s(buf)
			k := cfg.MinPts - 1
			if k >= len(buf) {
				k = len(buf) - 1
			}
			if k < 0 {
				core[i] = 0
			} else {
				core[i] = buf[k]
			}
		}
	})
	mreach := func(i, j int) float64 {
		return math.Max(dist(i, j), math.Max(core[i], core[j]))
	}
	// Prim's MST over the mutual-reachability graph.
	type mstEdge struct {
		u, v int
		w    float64
	}
	inTree := make([]bool, n)
	bestW := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestW {
		bestW[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = mreach(0, j)
		bestFrom[j] = 0
	}
	edges := make([]mstEdge, 0, n-1)
	for len(edges) < n-1 {
		pick, pw := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && bestW[j] < pw {
				pick, pw = j, bestW[j]
			}
		}
		if pick < 0 {
			break
		}
		inTree[pick] = true
		edges = append(edges, mstEdge{bestFrom[pick], pick, pw})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := mreach(pick, j); w < bestW[j] {
					bestW[j] = w
					bestFrom[j] = pick
				}
			}
		}
	}
	// Cut long edges at the configured quantile.
	if len(edges) == 0 {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return labels
	}
	ws := make([]float64, len(edges))
	for i, e := range edges {
		ws[i] = e.w
	}
	sort.Float64s(ws)
	median := ws[len(ws)/2]
	cut := cfg.CutRatio * median
	if median == 0 {
		// All-identical points: keep every edge.
		cut = math.Inf(1)
	}
	uf := newUnionFind(n)
	for _, e := range edges {
		if e.w <= cut {
			uf.union(e.u, e.v)
		}
	}
	// Components below MinClusterSize become singletons.
	size := map[int]int{}
	for i := 0; i < n; i++ {
		size[uf.find(i)]++
	}
	labels := make([]int, n)
	remap := map[int]int{}
	next := 0
	for i := 0; i < n; i++ {
		root := uf.find(i)
		if size[root] < cfg.MinClusterSize {
			labels[i] = next
			next++
			continue
		}
		id, ok := remap[root]
		if !ok {
			id = next
			remap[root] = id
			next++
		}
		labels[i] = id
	}
	return labels
}

// unionFind is a standard disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
