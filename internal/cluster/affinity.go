package cluster

import (
	"math/rand"
	"sort"
	"strings"
)

// APConfig tunes affinity propagation (Frey & Dueck, Science 2007).
type APConfig struct {
	// Damping in [0.5,1): message damping factor. Defaults to 0.7.
	Damping float64
	// MaxIter bounds iterations. Defaults to 200.
	MaxIter int
	// ConvergenceIter stops early after this many iterations without an
	// exemplar change. Defaults to 15.
	ConvergenceIter int
	// Preference is the self-similarity s(k,k). When NaN-like sentinel
	// PreferenceMedian is set, the median of the input similarities is
	// used (the standard default).
	Preference       float64
	PreferenceMedian bool
}

// DefaultAPConfig returns the standard parameterization (damping 0.5,
// matching the reference implementation's default; higher damping can
// freeze uniform-block similarity matrices into all-singleton states).
func DefaultAPConfig() APConfig {
	return APConfig{Damping: 0.5, MaxIter: 200, ConvergenceIter: 15, PreferenceMedian: true}
}

// AffinityPropagation clusters items given a full similarity matrix
// (higher = more similar) and returns dense labels. Each cluster is
// identified by its exemplar.
func AffinityPropagation(sim [][]float64, cfg APConfig) []int {
	n := len(sim)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	if cfg.Damping < 0.5 || cfg.Damping >= 1 {
		cfg.Damping = 0.7
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.ConvergenceIter <= 0 {
		cfg.ConvergenceIter = 15
	}
	// Working copy with preferences on the diagonal.
	s := make([][]float64, n)
	var all []float64
	for i := 0; i < n; i++ {
		s[i] = append([]float64(nil), sim[i]...)
		for j := 0; j < n; j++ {
			if i != j {
				all = append(all, sim[i][j])
			}
		}
	}
	pref := cfg.Preference
	if cfg.PreferenceMedian {
		sort.Float64s(all)
		if len(all) > 0 {
			pref = all[len(all)/2]
		}
	}
	for i := 0; i < n; i++ {
		s[i][i] = pref
	}
	// Deterministic tie-breaking jitter: exact similarity ties make the
	// message passing oscillate (the classic AP degeneracy); a tiny
	// index-dependent perturbation, scaled to the similarity range,
	// breaks them without affecting real structure.
	lo, hi := s[0][0], s[0][0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s[i][j] < lo {
				lo = s[i][j]
			}
			if s[i][j] > hi {
				hi = s[i][j]
			}
		}
	}
	scale := (hi - lo) * 1e-9
	if scale == 0 {
		scale = 1e-12
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s[i][j] += scale * rng.Float64()
		}
	}

	r := make([][]float64, n) // responsibilities
	a := make([][]float64, n) // availabilities
	for i := range r {
		r[i] = make([]float64, n)
		a[i] = make([]float64, n)
	}
	prevExemplars := ""
	stable := 0
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Update responsibilities.
		for i := 0; i < n; i++ {
			// top two values of a[i][k']+s[i][k'].
			best, second, bestK := negInf, negInf, -1
			for k := 0; k < n; k++ {
				v := a[i][k] + s[i][k]
				if v > best {
					second = best
					best, bestK = v, k
				} else if v > second {
					second = v
				}
			}
			for k := 0; k < n; k++ {
				max := best
				if k == bestK {
					max = second
				}
				newR := s[i][k] - max
				r[i][k] = cfg.Damping*r[i][k] + (1-cfg.Damping)*newR
			}
		}
		// Update availabilities.
		colPos := make([]float64, n)
		for k := 0; k < n; k++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				if i != k && r[i][k] > 0 {
					sum += r[i][k]
				}
			}
			colPos[k] = sum
		}
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				var newA float64
				if i == k {
					newA = colPos[k]
				} else {
					v := r[k][k] + colPos[k]
					if r[i][k] > 0 {
						v -= r[i][k]
					}
					if v > 0 {
						v = 0
					}
					newA = v
				}
				a[i][k] = cfg.Damping*a[i][k] + (1-cfg.Damping)*newA
			}
		}
		// Check exemplar stability. The empty exemplar set is the
		// initial transient, not a converged state — waiting for a
		// non-empty set prevents stopping before messages warm up.
		sig := exemplarSignature(r, a)
		if sig == prevExemplars && strings.ContainsRune(sig, '1') {
			stable++
			if stable >= cfg.ConvergenceIter {
				break
			}
		} else {
			stable = 0
			prevExemplars = sig
		}
	}

	// Final assignment: exemplars are points with r(k,k)+a(k,k) > 0;
	// every point joins its best exemplar.
	var exemplars []int
	for k := 0; k < n; k++ {
		if r[k][k]+a[k][k] > 0 {
			exemplars = append(exemplars, k)
		}
	}
	labels := make([]int, n)
	if len(exemplars) == 0 {
		// Degenerate run: everyone is their own cluster.
		for i := range labels {
			labels[i] = i
		}
		return labels
	}
	id := make(map[int]int, len(exemplars))
	for idx, e := range exemplars {
		id[e] = idx
	}
	for i := 0; i < n; i++ {
		if cid, isEx := id[i]; isEx {
			labels[i] = cid
			continue
		}
		bestK, best := exemplars[0], negInf
		for _, e := range exemplars {
			if s[i][e] > best {
				best, bestK = s[i][e], e
			}
		}
		labels[i] = id[bestK]
	}
	return labels
}

const negInf = -1e308

func exemplarSignature(r, a [][]float64) string {
	sig := make([]byte, len(r))
	for k := range r {
		if r[k][k]+a[k][k] > 0 {
			sig[k] = '1'
		} else {
			sig[k] = '0'
		}
	}
	return string(sig)
}
