package textvec

import (
	"math"
	"math/rand"
	"testing"
)

// topicCorpus builds sentences from two disjoint topics so that
// within-topic words co-occur and cross-topic words never do.
func topicCorpus(n int, seed int64) [][]string {
	topicA := []string{"graph", "kernel", "vertex", "edge", "subgraph"}
	topicB := []string{"query", "index", "join", "scan", "btree"}
	rng := rand.New(rand.NewSource(seed))
	var out [][]string
	for i := 0; i < n; i++ {
		topic := topicA
		if i%2 == 1 {
			topic = topicB
		}
		var s []string
		for j := 0; j < 6; j++ {
			s = append(s, topic[rng.Intn(len(topic))])
		}
		out = append(out, s)
	}
	return out
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 8
	cfg.MinCount = 1
	return cfg
}

func TestTrainSeparatesTopics(t *testing.T) {
	e := Train(topicCorpus(400, 3), fastConfig())
	centA := e.Centroid([]string{"graph", "kernel", "vertex"})
	centB := e.Centroid([]string{"query", "index", "join"})
	centA2 := e.Centroid([]string{"edge", "subgraph"})
	within := Cosine(centA, centA2)
	across := Cosine(centA, centB)
	if within <= across {
		t.Fatalf("within-topic cosine %.3f not above cross-topic %.3f", within, across)
	}
}

func TestTrainDeterministic(t *testing.T) {
	corpus := topicCorpus(100, 5)
	e1 := Train(corpus, fastConfig())
	e2 := Train(corpus, fastConfig())
	v1, _ := e1.Vector("graph")
	v2, _ := e2.Vector("graph")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training is nondeterministic for a fixed seed")
		}
	}
}

func TestVocabularyFiltering(t *testing.T) {
	cfg := fastConfig()
	cfg.MinCount = 2
	e := Train([][]string{
		{"common", "common", "rare"},
		{"common", "other", "other"},
	}, cfg)
	if _, ok := e.Vector("rare"); ok {
		t.Fatal("rare word kept despite MinCount=2")
	}
	if _, ok := e.Vector("common"); !ok {
		t.Fatal("common word missing")
	}
	if e.Len() != 2 {
		t.Fatalf("vocab size=%d, want 2", e.Len())
	}
	// Most frequent first.
	if e.Words()[0] != "common" {
		t.Fatalf("Words()[0]=%q", e.Words()[0])
	}
}

func TestCentroidUnknownWords(t *testing.T) {
	e := Train(topicCorpus(50, 1), fastConfig())
	if got := e.Centroid([]string{"zzzz", "yyyy"}); got != nil {
		t.Fatalf("centroid of OOV words=%v, want nil", got)
	}
	c := e.Centroid([]string{"graph", "zzzz"})
	v, _ := e.Vector("graph")
	for i := range c {
		if math.Abs(c[i]-float64(v[i])) > 1e-9 {
			t.Fatal("centroid with one known word should equal its vector")
		}
	}
}

func TestCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	c := []float64{2, 0}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine=%g", got)
	}
	if got := Cosine(a, c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine=%g", got)
	}
	if got := Cosine(a, []float64{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("antiparallel cosine=%g", got)
	}
	if Cosine(nil, a) != 0 || Cosine(a, []float64{0, 0}) != 0 || Cosine(a, []float64{1}) != 0 {
		t.Fatal("degenerate cosines should be 0")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	e := Train(nil, fastConfig())
	if e.Len() != 0 {
		t.Fatalf("empty corpus vocab=%d", e.Len())
	}
	if got := e.Centroid([]string{"x"}); got != nil {
		t.Fatal("centroid on empty embeddings should be nil")
	}
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dim=0 did not panic")
		}
	}()
	Train(nil, Config{Dim: 0, Epochs: 1})
}
