// Package textvec trains word embeddings from scratch with skip-gram
// negative sampling (SGNS, Mikolov et al. 2013). IUAD's research-interest
// similarity γ³ (§V-B2) measures the cosine of keyword-vector centroids;
// the paper uses pretrained Word2Vec/GloVe/BERT vectors, which are not
// available offline, so this package trains equivalent distributional
// vectors on the corpus titles themselves (see DESIGN.md substitution 3).
//
// The trainer is deterministic for a fixed Config.Seed and uses no
// dependencies beyond the standard library.
package textvec

import (
	"math"
	"math/rand"
	"sort"
)

// Config parameterizes SGNS training.
type Config struct {
	Dim       int     // embedding dimensionality
	Window    int     // max context offset
	Negatives int     // negative samples per positive pair
	Epochs    int     // passes over the corpus
	LR        float64 // initial learning rate (linearly decayed)
	MinCount  int     // discard words rarer than this
	Seed      int64
}

// DefaultConfig returns a laptop-scale parameterization adequate for
// title corpora.
func DefaultConfig() Config {
	return Config{Dim: 48, Window: 4, Negatives: 5, Epochs: 5, LR: 0.025, MinCount: 2, Seed: 1}
}

// Embeddings holds trained word vectors.
type Embeddings struct {
	dim   int
	index map[string]int
	vecs  [][]float32
	words []string
	mean  []float64 // cached by Train; see Mean
}

// Dim returns the vector dimensionality.
func (e *Embeddings) Dim() int { return e.dim }

// Len returns the vocabulary size.
func (e *Embeddings) Len() int { return len(e.words) }

// Words returns the vocabulary, most frequent first.
func (e *Embeddings) Words() []string { return e.words }

// Vector returns the embedding of w and whether w is in vocabulary. The
// returned slice is owned by the Embeddings; do not mutate.
func (e *Embeddings) Vector(w string) ([]float32, bool) {
	i, ok := e.index[w]
	if !ok {
		return nil, false
	}
	return e.vecs[i], true
}

// Centroid returns the mean vector of the in-vocabulary words, or nil if
// none are known. This is W(v) of Eq. 6 — the center of all keyword
// vectors of a vertex.
func (e *Embeddings) Centroid(words []string) []float64 {
	out := make([]float64, e.dim)
	n := 0
	for _, w := range words {
		if v, ok := e.Vector(w); ok {
			for i, x := range v {
				out[i] += float64(x)
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out
}

// Mean returns the average of all vocabulary vectors — the "common
// component" of the embedding space. SGNS vectors share a large common
// direction (negative-sampling geometry), which saturates raw centroid
// cosines near 1; subtracting the mean restores discrimination.
func (e *Embeddings) Mean() []float64 {
	if e.mean == nil && len(e.vecs) > 0 {
		out := make([]float64, e.dim)
		for _, v := range e.vecs {
			for i, x := range v {
				out[i] += float64(x)
			}
		}
		for i := range out {
			out[i] /= float64(len(e.vecs))
		}
		e.mean = out
	}
	return e.mean
}

// CenteredCentroid returns Centroid(words) minus the vocabulary mean —
// the similarity-ready representation of a word set.
func (e *Embeddings) CenteredCentroid(words []string) []float64 {
	c := e.Centroid(words)
	if c == nil {
		return nil
	}
	for i, m := range e.Mean() {
		c[i] -= m
	}
	return c
}

// RowOf returns the vocabulary row index of w, or -1 when w is out of
// vocabulary. Hot paths resolve words to rows once and then use
// CenteredCentroidRows, skipping the per-word map lookups.
func (e *Embeddings) RowOf(w string) int32 {
	if i, ok := e.index[w]; ok {
		return int32(i)
	}
	return -1
}

// CenteredCentroidRows is CenteredCentroid over pre-resolved vocabulary
// rows; entries < 0 (out of vocabulary) are skipped. The summation order
// is the row order, so resolving a word sequence to rows and calling
// this reproduces CenteredCentroid on that sequence bit for bit.
func (e *Embeddings) CenteredCentroidRows(rows []int32) []float64 {
	out := make([]float64, e.dim)
	n := 0
	for _, r := range rows {
		if r < 0 {
			continue
		}
		for i, x := range e.vecs[r] {
			out[i] += float64(x)
		}
		n++
	}
	if n == 0 {
		return nil
	}
	for i := range out {
		out[i] /= float64(n)
	}
	for i, m := range e.Mean() {
		out[i] -= m
	}
	return out
}

// Cosine returns the cosine similarity of two dense vectors; 0 when
// either is nil or zero.
func Cosine(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Train builds SGNS embeddings from token sequences. Sentences shorter
// than two in-vocabulary tokens contribute nothing.
func Train(sentences [][]string, cfg Config) *Embeddings {
	if cfg.Dim <= 0 || cfg.Epochs <= 0 {
		panic("textvec: nonpositive Dim or Epochs")
	}
	if cfg.Window <= 0 {
		cfg.Window = 2
	}
	if cfg.MinCount < 1 {
		cfg.MinCount = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Vocabulary with frequency threshold, ordered by descending count
	// then lexicographically (deterministic).
	freq := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	var kept []wc
	for w, c := range freq {
		if c >= cfg.MinCount {
			kept = append(kept, wc{w, c})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].c != kept[j].c {
			return kept[i].c > kept[j].c
		}
		return kept[i].w < kept[j].w
	})
	e := &Embeddings{
		dim:   cfg.Dim,
		index: make(map[string]int, len(kept)),
	}
	for i, k := range kept {
		e.index[k.w] = i
		e.words = append(e.words, k.w)
	}
	v := len(e.words)
	if v == 0 {
		e.vecs = nil
		return e
	}

	// Input and output vector tables.
	e.vecs = make([][]float32, v)
	out := make([][]float32, v)
	for i := 0; i < v; i++ {
		e.vecs[i] = make([]float32, cfg.Dim)
		out[i] = make([]float32, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			e.vecs[i][d] = (rng.Float32() - 0.5) / float32(cfg.Dim)
		}
	}

	// Unigram^0.75 negative-sampling table (alias-free cumulative scan).
	cum := make([]float64, v)
	total := 0.0
	for i, k := range kept {
		total += math.Pow(float64(k.c), 0.75)
		cum[i] = total
	}
	sampleNeg := func() int {
		r := rng.Float64() * total
		lo, hi := 0, v-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Encode sentences once.
	enc := make([][]int32, 0, len(sentences))
	tokens := 0
	for _, s := range sentences {
		row := make([]int32, 0, len(s))
		for _, w := range s {
			if id, ok := e.index[w]; ok {
				row = append(row, int32(id))
			}
		}
		if len(row) >= 2 {
			enc = append(enc, row)
			tokens += len(row)
		}
	}
	// Warm the lazy mean cache while still single-threaded — on every
	// return path, since concurrent CenteredCentroid callers would
	// otherwise race on the first Mean() computation.
	defer func() { e.Mean() }()
	if tokens == 0 {
		return e
	}
	steps := 0
	totalSteps := cfg.Epochs * tokens
	grad := make([]float32, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, row := range enc {
			for pos, wid := range row {
				steps++
				lr := float32(cfg.LR * (1 - float64(steps)/float64(totalSteps+1)))
				if lr < float32(cfg.LR)*0.01 {
					lr = float32(cfg.LR) * 0.01
				}
				win := 1 + rng.Intn(cfg.Window)
				for off := -win; off <= win; off++ {
					cpos := pos + off
					if off == 0 || cpos < 0 || cpos >= len(row) {
						continue
					}
					ctx := int(row[cpos])
					trainPair(e.vecs[wid], out[ctx], 1, lr, grad)
					for n := 0; n < cfg.Negatives; n++ {
						neg := sampleNeg()
						if neg == ctx {
							continue
						}
						trainPair(e.vecs[wid], out[neg], 0, lr, grad)
					}
					// Apply accumulated input-vector gradient.
					vin := e.vecs[wid]
					for d := range vin {
						vin[d] += grad[d]
						grad[d] = 0
					}
				}
			}
		}
	}
	return e
}

// trainPair performs one SGD step on (input, output) with target label
// (1 = observed context, 0 = negative sample), accumulating the input
// gradient into grad and updating the output vector in place.
func trainPair(vin, vout []float32, label float32, lr float32, grad []float32) {
	var dot float32
	for d := range vin {
		dot += vin[d] * vout[d]
	}
	g := (label - sigmoid(dot)) * lr
	for d := range vin {
		grad[d] += g * vout[d]
		vout[d] += g * vin[d]
	}
}

func sigmoid(x float32) float32 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return float32(1 / (1 + math.Exp(-float64(x))))
}
