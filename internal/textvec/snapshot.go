package textvec

import (
	"fmt"

	"iuad/internal/snapshot"
)

// EncodeSnapshot writes the trained embedding tables: dimensionality,
// vocabulary (row order) and vectors as exact float32 bit patterns. The
// index map and the cached vocabulary mean are rebuilt on decode (the
// mean sums vectors in row order, so it round-trips bit for bit).
func (e *Embeddings) EncodeSnapshot(w *snapshot.Writer) {
	w.Int(e.dim)
	w.Strings(e.words)
	for _, v := range e.vecs {
		w.F32s(v)
	}
}

// DecodeEmbeddingsSnapshot reads embeddings written by EncodeSnapshot.
func DecodeEmbeddingsSnapshot(r *snapshot.Reader) (*Embeddings, error) {
	e := &Embeddings{
		dim:   r.Int(),
		words: r.Strings(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if e.dim < 0 {
		return nil, fmt.Errorf("textvec: snapshot dim %d", e.dim)
	}
	e.index = make(map[string]int, len(e.words))
	for i, w := range e.words {
		e.index[w] = i
	}
	if len(e.words) > 0 {
		e.vecs = make([][]float32, len(e.words))
		for i := range e.vecs {
			v := r.F32s()
			if len(v) != e.dim {
				if err := r.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("textvec: snapshot vector %d has %d dims, want %d", i, len(v), e.dim)
			}
			e.vecs[i] = v
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Warm the lazy mean cache while single-threaded (see Train).
	e.Mean()
	return e, nil
}
