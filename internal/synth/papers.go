package synth

import (
	"math"
	"sort"

	"iuad/internal/bib"
)

// buildAuthors creates the ground-truth authors: community membership,
// heavy-tailed productivity, an active-year span, and an (ambiguous)
// name.
func (g *generator) buildAuthors() {
	cfg := g.cfg
	g.dataset = &Dataset{Config: cfg}
	g.dataset.Authors = make([]Author, cfg.Authors)
	g.members = make([][]int, cfg.Communities)
	g.collabBag = make([][]int32, cfg.Communities)
	g.partnersOf = make([]map[int]int, cfg.Authors)
	g.partnerOrder = make([][]int, cfg.Authors)

	// Discrete Pareto productivity with the requested mean: we draw
	// u^(-1/alpha) with alpha tuned so that the truncated mean is close
	// to MeanPapersPerAuthor. alpha≈1.6 gives a visibly heavy tail.
	const alpha = 1.6
	scale := cfg.MeanPapersPerAuthor * (alpha - 1) / alpha
	if scale < 1 {
		scale = 1
	}
	yearSpan := cfg.YearMax - cfg.YearMin
	if yearSpan < 1 {
		yearSpan = 1
	}
	for i := range g.dataset.Authors {
		u := g.rng.Float64()
		prod := int(math.Ceil(scale * math.Pow(1-u, -1/alpha)))
		if prod > cfg.MaxPapersPerAuthor {
			prod = cfg.MaxPapersPerAuthor
		}
		if prod < 1 {
			prod = 1
		}
		start := cfg.YearMin + g.rng.Intn(yearSpan)
		span := 1 + g.rng.Intn(2*cfg.CareerYears)
		end := start + span
		if end > cfg.YearMax {
			end = cfg.YearMax
		}
		g.dataset.Authors[i] = Author{
			ID:           bib.AuthorID(i),
			Name:         g.sampleName(),
			Community:    g.rng.Intn(cfg.Communities),
			Productivity: prod,
			ActiveFrom:   start,
			ActiveTo:     end,
		}
		g.partnersOf[i] = make(map[int]int, 4)
	}
	g.spreadHomonyms()
	for i := range g.dataset.Authors {
		comm := g.dataset.Authors[i].Community
		g.members[comm] = append(g.members[comm], i)
	}
}

// spreadHomonyms re-rolls communities so that authors sharing a name
// mostly sit in different communities. Two same-name authors inside one
// narrow community exist in DBLP but are rare relative to the name space
// (72k names); in a small synthetic world independent community
// assignment would make them the common case and distort every
// experiment. Unresolvable collisions (more same-name authors than
// communities, or unlucky rerolls) are kept — those are the genuinely
// hard cases.
func (g *generator) spreadHomonyms() {
	byName := map[string][]int{}
	for i := range g.dataset.Authors {
		a := &g.dataset.Authors[i]
		byName[a.Name] = append(byName[a.Name], i)
	}
	names := make([]string, 0, len(byName))
	for n, ids := range byName {
		if len(ids) > 1 {
			names = append(names, n)
		}
	}
	sort.Strings(names) // deterministic iteration
	for _, n := range names {
		used := map[int]struct{}{}
		for _, id := range byName[n] {
			a := &g.dataset.Authors[id]
			for try := 0; try < 8; try++ {
				if _, taken := used[a.Community]; !taken {
					break
				}
				a.Community = g.rng.Intn(g.cfg.Communities)
			}
			used[a.Community] = struct{}{}
		}
	}
}

// writePapers emits every paper. Each author leads Productivity papers;
// co-author slots are filled preferentially from previous partners
// (probability RepeatCollabBias), otherwise from the community (or, with
// CrossCommunityRate, from anywhere), which implements the "rich get
// richer" collaboration dynamics of scale-free networks (§IV-A).
func (g *generator) writePapers() {
	cfg := g.cfg
	corpus := bib.NewCorpus(cfg.Authors * int(cfg.MeanPapersPerAuthor))
	g.dataset.Corpus = corpus

	// Emission order is shuffled by year so Subset() prefixes look like
	// "the database as of year Y", matching the data-scale experiments.
	type lead struct{ author, seq int }
	var leads []lead
	for i := range g.dataset.Authors {
		for s := 0; s < g.dataset.Authors[i].Productivity; s++ {
			leads = append(leads, lead{i, s})
		}
	}
	g.rng.Shuffle(len(leads), func(i, j int) { leads[i], leads[j] = leads[j], leads[i] })

	papers := make([]bib.Paper, 0, len(leads))
	for _, l := range leads {
		papers = append(papers, g.onePaper(l.author))
	}
	sort.SliceStable(papers, func(i, j int) bool { return papers[i].Year < papers[j].Year })
	for i := range papers {
		corpus.MustAdd(papers[i])
	}
}

// onePaper generates a single paper led by author `lead`.
func (g *generator) onePaper(lead int) bib.Paper {
	cfg := g.cfg
	a := &g.dataset.Authors[lead]

	team := []int{lead}
	nameUsed := map[string]struct{}{a.Name: {}}
	if g.rng.Float64() >= cfg.SoloPaperRate {
		// Geometric-ish team size in [2, MaxCoauthors].
		size := 2
		for size < cfg.MaxCoauthors && g.rng.Float64() < 0.35 {
			size++
		}
		for len(team) < size {
			partner := g.pickPartner(lead)
			if partner < 0 {
				break
			}
			p := &g.dataset.Authors[partner]
			if _, dup := nameUsed[p.Name]; dup {
				break // a paper cannot list the same name twice
			}
			already := false
			for _, t := range team {
				if t == partner {
					already = true
					break
				}
			}
			if already {
				break
			}
			nameUsed[p.Name] = struct{}{}
			team = append(team, partner)
		}
	}
	// Reinforce pair weights so future papers repeat these partners. The
	// insertion-ordered partnerOrder slices keep weighted sampling
	// deterministic (map iteration order is randomized by the runtime).
	for i := 0; i < len(team); i++ {
		for j := i + 1; j < len(team); j++ {
			u, v := team[i], team[j]
			if _, known := g.partnersOf[u][v]; !known {
				g.partnerOrder[u] = append(g.partnerOrder[u], v)
			}
			if _, known := g.partnersOf[v][u]; !known {
				g.partnerOrder[v] = append(g.partnerOrder[v], u)
			}
			g.partnersOf[u][v]++
			g.partnersOf[v][u]++
			if g.cfg.PreferentialAttachment > 0 {
				// Every collaboration event drops each endpoint into its
				// community's bag: sampling the bag uniformly is sampling
				// authors proportional to collaboration degree, the
				// constant-time preferential-attachment step.
				g.collabBag[g.dataset.Authors[u].Community] = append(
					g.collabBag[g.dataset.Authors[u].Community], int32(u))
				g.collabBag[g.dataset.Authors[v].Community] = append(
					g.collabBag[g.dataset.Authors[v].Community], int32(v))
			}
		}
	}

	p := bib.Paper{
		Title: g.titleFor(a.Community),
		Venue: g.venueFor(a.Community),
		Year:  g.yearFor(team),
	}
	for _, t := range team {
		p.Authors = append(p.Authors, g.dataset.Authors[t].Name)
		p.Truth = append(p.Truth, bib.AuthorID(t))
	}
	return p
}

// pickPartner chooses a co-author for lead: an existing partner with
// probability RepeatCollabBias (weighted by past co-publications),
// otherwise a fresh member of the lead's community (or any community
// with probability CrossCommunityRate). Returns -1 when no candidate
// exists.
func (g *generator) pickPartner(lead int) int {
	order := g.partnerOrder[lead]
	if len(order) > 0 && g.rng.Float64() < g.cfg.RepeatCollabBias {
		partners := g.partnersOf[lead]
		total := 0
		for _, p := range order {
			total += partners[p]
		}
		r := g.rng.Intn(total)
		for _, p := range order {
			r -= partners[p]
			if r < 0 {
				return p
			}
		}
	}
	comm := g.dataset.Authors[lead].Community
	if g.rng.Float64() < g.cfg.CrossCommunityRate {
		comm = g.rng.Intn(g.cfg.Communities)
	}
	if pa := g.cfg.PreferentialAttachment; pa > 0 {
		if bag := g.collabBag[comm]; len(bag) > 0 && g.rng.Float64() < pa {
			for tries := 0; tries < 8; tries++ {
				cand := int(bag[g.rng.Intn(len(bag))])
				if cand != lead {
					return cand
				}
			}
			// Fall through to the uniform fill (tiny bags dominated by
			// the lead's own entries).
		}
	}
	pool := g.members[comm]
	if len(pool) <= 1 {
		return -1
	}
	for tries := 0; tries < 8; tries++ {
		cand := pool[g.rng.Intn(len(pool))]
		if cand != lead {
			return cand
		}
	}
	return -1
}

// titleFor samples 4-9 topic words (plus occasional global noise words).
func (g *generator) titleFor(comm int) string {
	n := 4 + g.rng.Intn(6)
	words := make([]string, 0, n)
	topic := g.topicWords[comm]
	for i := 0; i < n; i++ {
		if g.rng.Float64() < 0.15 {
			words = append(words, g.words[g.rng.Intn(len(g.words))])
		} else {
			words = append(words, g.words[topic[g.rng.Intn(len(topic))]])
		}
	}
	t := title(words[0])
	for _, w := range words[1:] {
		t += " " + w
	}
	return t
}

// venueFor samples a venue: with probability GlobalVenueRate one of the
// big cross-community venues, otherwise the community's list with a
// Zipf-like head bias — the first community venue is the
// "representative community" venue of §V-B3 and receives roughly half
// the community mass.
func (g *generator) venueFor(comm int) string {
	if len(g.globalVenues) > 0 && g.rng.Float64() < g.cfg.GlobalVenueRate {
		return g.globalVenues[g.rng.Intn(len(g.globalVenues))]
	}
	venues := g.venues[comm]
	r := g.rng.Float64()
	cum := 0.0
	weightTotal := 0.0
	for i := range venues {
		weightTotal += 1 / float64(i+1)
	}
	for i, v := range venues {
		cum += (1 / float64(i+1)) / weightTotal
		if r < cum {
			return v
		}
	}
	return venues[len(venues)-1]
}

// yearFor samples a year in the overlap of the team's active spans
// (falling back to the lead's span when the overlap is empty).
func (g *generator) yearFor(team []int) int {
	lo, hi := g.cfg.YearMin, g.cfg.YearMax
	for _, t := range team {
		a := &g.dataset.Authors[t]
		if a.ActiveFrom > lo {
			lo = a.ActiveFrom
		}
		if a.ActiveTo < hi {
			hi = a.ActiveTo
		}
	}
	if lo > hi {
		a := &g.dataset.Authors[team[0]]
		lo, hi = a.ActiveFrom, a.ActiveTo
	}
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}
