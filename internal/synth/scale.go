// Corpus scaling: preset configurations for the labeled accuracy
// scenario (10⁴–10⁶ papers) and the degree-distribution measurements the
// scale-free property tests and BENCH_accuracy.json report.
package synth

import (
	"math"

	"iuad/internal/bib"
	"iuad/internal/stats"
)

// ScaleConfig derives a generator configuration targeting roughly
// targetPapers papers (papers ≈ Authors × MeanPapersPerAuthor; the
// heavy-tailed productivity draw lands the realized count within ~15%).
// Unlike DefaultConfig it scales the community count, vocabulary and
// name space with the corpus and turns preferential attachment on, so
// corpora of every size keep:
//
//   - a controlled homonym-block ambiguity rate (HomonymRate of authors
//     in blocks of geometric size, like the small corpus),
//   - an accidental name-collision rate that stays realistic instead of
//     exploding quadratically (the name pool grows with ~Authors^0.5),
//   - a scale-free coauthor degree distribution (preferential
//     attachment over community collaboration bags).
//
// Generation is deterministic for (targetPapers, seed).
func ScaleConfig(targetPapers int, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	authors := int(float64(targetPapers) / cfg.MeanPapersPerAuthor)
	if authors < 100 {
		authors = 100
	}
	cfg.Authors = authors
	// ~60 authors per community keeps community-venue/topic structure
	// meaningful at every scale (the quick corpus sits at 62).
	cfg.Communities = authors / 60
	if cfg.Communities < 16 {
		cfg.Communities = 16
	}
	// Vocabulary grows sublinearly (Heaps-law-like) and stays well under
	// the 1-3 syllable word space.
	vocab := int(18 * math.Pow(float64(authors), 0.55))
	if vocab < 1600 {
		vocab = 1600
	}
	if vocab > 50000 {
		vocab = 50000
	}
	cfg.Vocabulary = vocab
	// Name pool ∝ √Authors on each axis: accidental collisions then
	// scale linearly with Authors (E[collisions] ≈ A²/(2·S·G) ∝ A),
	// matching DBLP's regime where a constant fraction of names is
	// incidentally shared.
	sur := int(4 * math.Sqrt(float64(authors)))
	if sur < 120 {
		sur = 120
	}
	cfg.Surnames = sur
	cfg.GivenNames = 3 * sur
	cfg.HomonymBlockP = 0.55
	cfg.PreferentialAttachment = 0.5
	cfg.GlobalVenues = 8 + cfg.Communities/20
	return cfg
}

// CoauthorDegreeHistogram returns the histogram of distinct-coauthor
// counts per ground-truth author (authors with zero collaborations are
// excluded: log-log fits cannot hold zero-degree mass). Degrees are
// counted between true authors, not names, so the measurement is of the
// generated collaboration network itself.
func (d *Dataset) CoauthorDegreeHistogram() *stats.Histogram {
	partners := make([]map[bib.AuthorID]struct{}, len(d.Authors))
	for i := 0; i < d.Corpus.Len(); i++ {
		truth := d.Corpus.Paper(bib.PaperID(i)).Truth
		for x := 0; x < len(truth); x++ {
			for y := x + 1; y < len(truth); y++ {
				u, v := truth[x], truth[y]
				if partners[u] == nil {
					partners[u] = make(map[bib.AuthorID]struct{}, 4)
				}
				if partners[v] == nil {
					partners[v] = make(map[bib.AuthorID]struct{}, 4)
				}
				partners[u][v] = struct{}{}
				partners[v][u] = struct{}{}
			}
		}
	}
	h := stats.NewHistogram(nil)
	for _, set := range partners {
		if len(set) > 0 {
			h.Add(len(set))
		}
	}
	return h
}

// DegreeSlope fits the log-log slope of the coauthor degree
// distribution (the scale-free exponent is its negation). Collaboration
// networks measure γ ≈ 2–3.5; the generator's property test pins the
// slope inside a configured band.
func (d *Dataset) DegreeSlope() (float64, error) {
	slope, _, err := d.CoauthorDegreeHistogram().PowerLawFit()
	return slope, err
}
