package synth

import (
	"testing"

	"iuad/internal/bib"
)

// identicalDatasets compares two generated datasets attribute by
// attribute, including ground truth — byte-level corpus equality.
func identicalDatasets(t *testing.T, a, b *Dataset) bool {
	t.Helper()
	if a.Corpus.Len() != b.Corpus.Len() || len(a.Authors) != len(b.Authors) {
		return false
	}
	for i := range a.Authors {
		if a.Authors[i] != b.Authors[i] {
			return false
		}
	}
	for i := 0; i < a.Corpus.Len(); i++ {
		pa, pb := a.Corpus.Paper(bib.PaperID(i)), b.Corpus.Paper(bib.PaperID(i))
		if pa.Title != pb.Title || pa.Venue != pb.Venue || pa.Year != pb.Year ||
			len(pa.Authors) != len(pb.Authors) {
			return false
		}
		for j := range pa.Authors {
			if pa.Authors[j] != pb.Authors[j] || pa.Truth[j] != pb.Truth[j] {
				return false
			}
		}
	}
	return true
}

// TestScaleConfigDeterministicPerSeed is the reproducibility property of
// the accuracy scenario: the same (targetPapers, seed) regenerates the
// corpus including truth labels exactly; a different seed diverges.
func TestScaleConfigDeterministicPerSeed(t *testing.T) {
	target := 8000
	if testing.Short() {
		target = 2000
	}
	a := Generate(ScaleConfig(target, 3))
	b := Generate(ScaleConfig(target, 3))
	if !identicalDatasets(t, a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := Generate(ScaleConfig(target, 4))
	if identicalDatasets(t, a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestScaleConfigScaleFreeSlope pins the coauthor degree distribution's
// log-log slope inside the scale-free band: collaboration networks
// measure exponents γ ≈ 2–3.5 (slope −γ); the preferential-attachment
// fill must land the generated network there at every scenario scale.
func TestScaleConfigScaleFreeSlope(t *testing.T) {
	targets := []int{8000, 24000}
	if testing.Short() {
		targets = []int{8000}
	}
	for _, target := range targets {
		d := Generate(ScaleConfig(target, 11))
		slope, err := d.DegreeSlope()
		if err != nil {
			t.Fatalf("target=%d: %v", target, err)
		}
		if slope > -1.4 || slope < -3.5 {
			t.Errorf("target=%d: degree slope=%.2f outside scale-free band [-3.5,-1.4]", target, slope)
		}
		// Heavy tail sanity: preferential attachment must produce hubs
		// far beyond the mean degree.
		h := d.CoauthorDegreeHistogram()
		xs, _ := h.Points()
		maxDeg := 0.0
		for _, x := range xs {
			if x > maxDeg {
				maxDeg = x
			}
		}
		if maxDeg < 30 {
			t.Errorf("target=%d: max coauthor degree %.0f; no hubs, tail too thin", target, maxDeg)
		}
	}
}

// TestScaleConfigAmbiguityScales checks the controlled homonym blocks
// survive scaling: ambiguous names exist in proportion to the corpus and
// block sizes respect HomonymMaxAuthors.
func TestScaleConfigAmbiguityScales(t *testing.T) {
	cfg := ScaleConfig(8000, 7)
	d := Generate(cfg)
	amb := d.AmbiguousNames(2)
	if len(amb) < cfg.Authors/50 {
		t.Fatalf("only %d ambiguous names for %d authors", len(amb), cfg.Authors)
	}
	for _, name := range amb {
		if n := len(d.AuthorsByName(name)); n > cfg.HomonymMaxAuthors {
			t.Fatalf("name %q carried by %d authors > HomonymMaxAuthors=%d",
				name, n, cfg.HomonymMaxAuthors)
		}
	}
}

// TestLegacyStreamPreserved pins the zero-value behavior of the new
// scaling knobs: a config without them (DefaultConfig shape) must
// generate the exact corpus it did before they existed — the golden
// pipeline fixtures depend on this stream, so a regression here breaks
// bit-identity everywhere downstream.
func TestLegacyStreamPreserved(t *testing.T) {
	legacy := smallConfig(21)
	// Explicitly-set legacy equivalents must not perturb the rng stream.
	tuned := legacy
	tuned.HomonymBlockP = 0.55
	if !identicalDatasets(t, Generate(legacy), Generate(tuned)) {
		t.Fatal("HomonymBlockP=0.55 diverged from the legacy 0.55 stream")
	}
	// The new sampling knobs must engage: preferential attachment with a
	// bag changes the stream.
	pa := legacy
	pa.PreferentialAttachment = 0.7
	if identicalDatasets(t, Generate(legacy), Generate(pa)) {
		t.Fatal("PreferentialAttachment had no effect on generation")
	}
}
