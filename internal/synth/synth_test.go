package synth

import (
	"testing"

	"iuad/internal/bib"
	"iuad/internal/fpgrowth"
	"iuad/internal/stats"
)

// smallConfig keeps unit tests fast.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Authors = 400
	cfg.Communities = 10
	cfg.Vocabulary = 400
	cfg.TopicWordsPerCommunity = 30
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatalf("nondeterministic paper count: %d vs %d", a.Corpus.Len(), b.Corpus.Len())
	}
	for i := 0; i < a.Corpus.Len(); i++ {
		pa, pb := a.Corpus.Paper(bib.PaperID(i)), b.Corpus.Paper(bib.PaperID(i))
		if pa.Title != pb.Title || pa.Venue != pb.Venue || pa.Year != pb.Year {
			t.Fatalf("paper %d differs between runs", i)
		}
	}
	c := Generate(smallConfig(8))
	if c.Corpus.Len() == a.Corpus.Len() && c.Corpus.Paper(0).Title == a.Corpus.Paper(0).Title {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	d := Generate(smallConfig(3))
	if !d.Corpus.Frozen() {
		t.Fatal("corpus not frozen")
	}
	if !d.Corpus.Labeled() {
		t.Fatal("corpus not fully labeled")
	}
	for i := 0; i < d.Corpus.Len(); i++ {
		p := d.Corpus.Paper(bib.PaperID(i))
		if err := p.Validate(); err != nil {
			t.Fatalf("paper %d invalid: %v", i, err)
		}
		if p.Year < d.Config.YearMin || p.Year > d.Config.YearMax {
			t.Fatalf("paper %d year %d outside [%d,%d]", i, p.Year,
				d.Config.YearMin, d.Config.YearMax)
		}
		if len(p.Authors) > d.Config.MaxCoauthors {
			t.Fatalf("paper %d team size %d > max %d", i, len(p.Authors), d.Config.MaxCoauthors)
		}
		for slot, truth := range p.Truth {
			author := d.Authors[truth]
			if author.Name != p.Authors[slot] {
				t.Fatalf("paper %d slot %d: name %q but truth author named %q",
					i, slot, p.Authors[slot], author.Name)
			}
		}
	}
	// Emission is sorted by year, so Subset prefixes are time prefixes.
	prev := 0
	for i := 0; i < d.Corpus.Len(); i++ {
		y := d.Corpus.Paper(bib.PaperID(i)).Year
		if y < prev {
			t.Fatalf("papers not in year order at %d (%d after %d)", i, y, prev)
		}
		prev = y
	}
}

func TestAmbiguousNamesExist(t *testing.T) {
	d := Generate(smallConfig(5))
	amb := d.AmbiguousNames(2)
	if len(amb) < 10 {
		t.Fatalf("only %d ambiguous names; homonym injection too weak for evaluation", len(amb))
	}
	// The most ambiguous name really is shared.
	ids := d.AuthorsByName(amb[0])
	if len(ids) < 2 {
		t.Fatalf("AuthorsByName(%q)=%v", amb[0], ids)
	}
	// Sorted by descending ambiguity.
	for i := 1; i < len(amb); i++ {
		if len(d.AuthorsByName(amb[i-1])) < len(d.AuthorsByName(amb[i])) {
			t.Fatal("AmbiguousNames not sorted by author count")
		}
	}
}

// TestPowerLawShape verifies the two §IV-A distributions the generator
// must preserve: papers-per-name (Fig. 3a) and co-author pair frequency
// (Fig. 3b) are heavy-tailed with clearly negative log-log slopes.
func TestPowerLawShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.Authors = 1200
	d := Generate(cfg)

	perName := stats.NewHistogram(nil)
	for _, name := range d.Corpus.Names() {
		perName.Add(len(d.Corpus.PapersWithName(name)))
	}
	slope, _, err := perName.PowerLawFit()
	if err != nil {
		t.Fatal(err)
	}
	if slope > -0.8 || slope < -3.5 {
		t.Fatalf("papers-per-name slope=%.2f, want clearly negative (paper: -1.68)", slope)
	}

	var txs [][]string
	for i := 0; i < d.Corpus.Len(); i++ {
		txs = append(txs, d.Corpus.Paper(bib.PaperID(i)).Authors)
	}
	freq := fpgrowth.PairFrequencies(txs)
	pairHist := stats.NewHistogram(nil)
	for _, c := range freq {
		pairHist.Add(c)
	}
	pslope, _, err := pairHist.PowerLawFit()
	if err != nil {
		t.Fatal(err)
	}
	if pslope > -1.0 {
		t.Fatalf("pair-frequency slope=%.2f, want clearly negative (paper: -3.17)", pslope)
	}
	// Heavy tail: some pair must collaborate many times.
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < 5 {
		t.Fatalf("max pair frequency=%d; repeat-collaboration dynamics broken", max)
	}
}

func TestRepeatCollaborationConcentratesInTruePairs(t *testing.T) {
	// §IV-A's key claim: if a name pair co-occurs ≥η times, it is (almost
	// surely) one true author pair, not several homonym pairs. Check
	// that η=2 pairs are nearly always a single true (authorID,authorID)
	// pair per name pair.
	d := Generate(smallConfig(13))
	type namePair = fpgrowth.Pair
	truePairs := map[namePair]map[[2]bib.AuthorID]struct{}{}
	counts := map[namePair]int{}
	for i := 0; i < d.Corpus.Len(); i++ {
		p := d.Corpus.Paper(bib.PaperID(i))
		for x := 0; x < len(p.Authors); x++ {
			for y := x + 1; y < len(p.Authors); y++ {
				np := fpgrowth.MakePair(p.Authors[x], p.Authors[y])
				counts[np]++
				ids := [2]bib.AuthorID{p.Truth[x], p.Truth[y]}
				if p.Authors[x] > p.Authors[y] {
					ids[0], ids[1] = ids[1], ids[0]
				}
				if truePairs[np] == nil {
					truePairs[np] = map[[2]bib.AuthorID]struct{}{}
				}
				truePairs[np][ids] = struct{}{}
			}
		}
	}
	stable, pure := 0, 0
	for np, c := range counts {
		if c >= 2 {
			stable++
			if len(truePairs[np]) == 1 {
				pure++
			}
		}
	}
	if stable == 0 {
		t.Fatal("no stable pairs generated")
	}
	// The paper's own SCN precision is 0.866 (Table IV) — stage 1 is not
	// perfectly pure even on real DBLP. Require the bulk of stable pairs
	// to be pure without demanding the impossible.
	purity := float64(pure) / float64(stable)
	if purity < 0.90 {
		t.Fatalf("η=2 SCR purity=%.3f, want ≥0.90 (key observation broken)", purity)
	}
}

func TestVenueHeadBias(t *testing.T) {
	d := Generate(smallConfig(17))
	// For each community's venue list, the head venue should dominate.
	// Aggregate: the most frequent venue of each author's papers should
	// usually be their community's first venue. Weak check: overall the
	// first venues carry more papers than the last venues.
	g := &generator{cfg: d.Config, rng: nil}
	_ = g
	venueCount := map[string]int{}
	for i := 0; i < d.Corpus.Len(); i++ {
		venueCount[d.Corpus.Paper(bib.PaperID(i)).Venue]++
	}
	if len(venueCount) < d.Config.Communities {
		t.Fatalf("only %d distinct venues", len(venueCount))
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with zero authors did not panic")
		}
	}()
	Generate(Config{Authors: 0, Communities: 1})
}
