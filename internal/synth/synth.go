// Package synth generates DBLP-like bibliographic corpora with ground
// truth. It substitutes for the paper's 641k-paper DBLP snapshot and its
// DAminer-labeled test intersection (§VI-A1), neither of which is
// available offline.
//
// The generator is built so that the statistical properties IUAD's key
// observation (§IV-A) depends on hold by construction:
//
//   - Author productivity is heavy-tailed (discrete Pareto), so the
//     papers-per-name histogram is power-law shaped (Fig. 3a).
//   - Collaboration is "rich get richer": each new paper's co-authors are
//     drawn preferentially from the lead author's previous partners, so
//     co-author pair frequencies are power-law shaped (Fig. 3b) and
//     repeated collaboration concentrates inside true author pairs.
//   - Authors belong to research communities that determine their venue
//     habits and title vocabulary, which is what the similarity functions
//     γ³..γ⁶ exploit.
//   - Name ambiguity is injected deliberately: a HomonymRate fraction of
//     authors share names carried by 2..HomonymMaxAuthors distinct
//     authors (the evaluation test set, like the "Wei Wang" example of
//     the paper's introduction); everyone else draws uniformly from a
//     surname×given-name space where collisions are rare.
//
// Generation is fully deterministic for a given Config (including Seed).
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"iuad/internal/bib"
)

// Config parameterizes corpus generation. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	Seed int64

	// Authors is the number of distinct ground-truth authors.
	Authors int
	// Communities is the number of research communities.
	Communities int
	// VenuesPerCommunity is how many venues each community publishes in.
	VenuesPerCommunity int
	// TopicWordsPerCommunity sizes each community's title vocabulary.
	TopicWordsPerCommunity int
	// Vocabulary is the size of the global word pool.
	Vocabulary int

	// MeanPapersPerAuthor controls the Pareto productivity distribution.
	MeanPapersPerAuthor float64
	// MaxPapersPerAuthor truncates productivity.
	MaxPapersPerAuthor int

	// MaxCoauthors bounds team size (lead + co-authors ≤ this).
	MaxCoauthors int
	// RepeatCollabBias in [0,1): probability mass that a co-author slot
	// is filled by an existing partner rather than a fresh community
	// member. Higher values sharpen the pair-frequency power law.
	RepeatCollabBias float64
	// SoloPaperRate is the probability that a paper has a single author.
	SoloPaperRate float64

	// HomonymRate is the fraction of authors that deliberately share a
	// name with other authors (the corpus's controlled ambiguity — the
	// evaluation test set). Each shared name is assigned to between 2
	// and HomonymMaxAuthors distinct authors, mirroring the 2..17
	// authors-per-name spread of the paper's Table II test set.
	HomonymRate       float64
	HomonymMaxAuthors int
	// HomonymBlockP is the continuation probability of homonym block
	// growth: a shared name keeps acquiring carriers (up to
	// HomonymMaxAuthors) while a HomonymBlockP coin keeps landing, so
	// block sizes are geometric with this parameter. 0 means the legacy
	// 0.55 (mean block ≈ 3.1 authors); smaller values skew blocks toward
	// pairs, larger ones toward the Wei-Wang-sized tail.
	HomonymBlockP float64

	// Surnames/GivenNames size the combinatorial name space the
	// non-homonym population draws from; accidental collisions (the
	// "realistic" ambiguity on top of the controlled homonym blocks)
	// scale as Authors²/(2·Surnames·GivenNames). 0 means the legacy
	// 120×340 pool — large corpora must widen the pool or the accidental
	// collision rate dwarfs the controlled one.
	Surnames   int
	GivenNames int

	// PreferentialAttachment in [0,1) is the probability that a fresh
	// (non-repeat) co-author slot is filled by degree-proportional
	// sampling over the community's past collaborators instead of
	// uniformly — the Barabási–Albert "rich get richer" step that gives
	// the coauthor degree distribution a scale-free tail (Kim's
	// collaboration-network analysis). 0 disables it (legacy uniform
	// fill; the repeat-collaboration bias alone sharpens pair
	// frequencies but leaves the degree tail thin).
	PreferentialAttachment float64

	// YearMin/YearMax bound publication years. CareerYears is the mean
	// active-span length of an author.
	YearMin, YearMax int
	CareerYears      int

	// CrossCommunityRate is the probability that a co-author slot is
	// filled from a different community (noise edges).
	CrossCommunityRate float64

	// GlobalVenues is the number of large venues shared by every
	// community (the "VLDB/CoRR effect" of real DBLP: big venues span
	// fields, so a venue match alone is weak evidence of identity).
	// GlobalVenueRate is the fraction of papers published in them.
	GlobalVenues    int
	GlobalVenueRate float64
}

// DefaultConfig returns the parameterization used by the test suite and
// the experiment drivers (a laptop-scale shrink of the paper's corpus).
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Authors:                3000,
		Communities:            40,
		VenuesPerCommunity:     5,
		TopicWordsPerCommunity: 60,
		Vocabulary:             1600,
		MeanPapersPerAuthor:    4,
		MaxPapersPerAuthor:     160,
		MaxCoauthors:           6,
		RepeatCollabBias:       0.6,
		SoloPaperRate:          0.2,
		HomonymRate:            0.12,
		HomonymMaxAuthors:      12,
		YearMin:                1995,
		YearMax:                2020,
		CareerYears:            12,
		CrossCommunityRate:     0.05,
		GlobalVenues:           8,
		GlobalVenueRate:        0.3,
	}
}

// Author is a ground-truth author.
type Author struct {
	ID        bib.AuthorID
	Name      string
	Community int
	// Productivity is the number of papers this author leads.
	Productivity int
	// ActiveFrom/ActiveTo bound the publication years.
	ActiveFrom, ActiveTo int
}

// Dataset bundles the generated corpus with its ground truth.
type Dataset struct {
	Corpus  *bib.Corpus
	Authors []Author
	Config  Config

	byName map[string][]bib.AuthorID
}

// Generate builds a dataset from cfg. It panics on nonsensical configs
// (≤0 authors or communities), since those are programming errors.
func Generate(cfg Config) *Dataset {
	if cfg.Authors <= 0 || cfg.Communities <= 0 {
		panic(fmt.Sprintf("synth: invalid config: %d authors, %d communities",
			cfg.Authors, cfg.Communities))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}
	g.buildVocabulary()
	g.buildVenues()
	g.buildNames()
	g.buildAuthors()
	g.writePapers()
	g.dataset.Corpus.Freeze()
	g.dataset.indexNames()
	return g.dataset
}

// AuthorsByName returns the ground-truth author IDs sharing name.
func (d *Dataset) AuthorsByName(name string) []bib.AuthorID {
	return d.byName[name]
}

// AmbiguousNames returns names shared by at least minAuthors distinct
// authors, sorted by descending author count then name. These form the
// evaluation test set, mirroring the paper's Table II construction.
func (d *Dataset) AmbiguousNames(minAuthors int) []string {
	var out []string
	for name, ids := range d.byName {
		if len(ids) >= minAuthors {
			out = append(out, name)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := len(d.byName[out[i]]), len(d.byName[out[j]])
		if ni != nj {
			return ni > nj
		}
		return out[i] < out[j]
	})
	return out
}

func (d *Dataset) indexNames() {
	d.byName = make(map[string][]bib.AuthorID)
	for _, a := range d.Authors {
		d.byName[a.Name] = append(d.byName[a.Name], a.ID)
	}
}

// generator holds intermediate state.
type generator struct {
	cfg     Config
	rng     *rand.Rand
	dataset *Dataset

	words        []string
	topicWords   [][]int // community -> word indexes
	venues       [][]string
	globalVenues []string
	homonyms     []string
	sampleName   func() string
	partnersOf   []map[int]int // author -> partner -> co-pub count
	partnerOrder [][]int       // author -> partners in first-seen order
	members      [][]int       // community -> author ids
	// collabBag implements degree-proportional sampling when
	// PreferentialAttachment > 0: each community holds a multiset of its
	// members with one entry per collaboration event, so a uniform draw
	// from the bag is a draw proportional to collaboration degree.
	collabBag [][]int32
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ga", "ge", "gi", "go", "gu", "ka", "ke", "ki", "ko", "ku",
	"la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu",
	"na", "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru",
	"sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
	"va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
}

func (g *generator) syllableWord(n int) string {
	w := ""
	for i := 0; i < n; i++ {
		w += syllables[g.rng.Intn(len(syllables))]
	}
	return w
}

func (g *generator) buildVocabulary() {
	seen := map[string]struct{}{}
	g.words = make([]string, 0, g.cfg.Vocabulary)
	for len(g.words) < g.cfg.Vocabulary {
		w := g.syllableWord(2 + g.rng.Intn(2))
		if _, dup := seen[w]; dup || bib.IsStopWord(w) {
			continue
		}
		seen[w] = struct{}{}
		g.words = append(g.words, w)
	}
	// Each community owns a biased subset of the vocabulary.
	g.topicWords = make([][]int, g.cfg.Communities)
	for c := range g.topicWords {
		perm := g.rng.Perm(len(g.words))
		n := g.cfg.TopicWordsPerCommunity
		if n > len(perm) {
			n = len(perm)
		}
		g.topicWords[c] = append([]int(nil), perm[:n]...)
	}
}

func (g *generator) buildVenues() {
	g.venues = make([][]string, g.cfg.Communities)
	seen := map[string]struct{}{}
	for c := range g.venues {
		for v := 0; v < g.cfg.VenuesPerCommunity; v++ {
			for {
				name := fmt.Sprintf("%s-%02d", acronym(g.rng), c)
				if _, dup := seen[name]; !dup {
					seen[name] = struct{}{}
					g.venues[c] = append(g.venues[c], name)
					break
				}
			}
		}
	}
	for v := 0; v < g.cfg.GlobalVenues; v++ {
		for {
			name := "G-" + acronym(g.rng)
			if _, dup := seen[name]; !dup {
				seen[name] = struct{}{}
				g.globalVenues = append(g.globalVenues, name)
				break
			}
		}
	}
}

func acronym(rng *rand.Rand) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 3 + rng.Intn(2)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// buildNames pre-assigns every author a name. A HomonymRate fraction of
// authors share deliberately ambiguous names, each carried by 2..
// HomonymMaxAuthors distinct authors (the controlled test-set ambiguity);
// the rest draw uniformly from the surname×given-name product, where
// collisions are possible but rare — matching the DBLP regime in which
// most names are unique and a tail of names is heavily shared.
func (g *generator) buildNames() {
	nSur, nGiven := 120, 340
	if g.cfg.Surnames > 0 {
		nSur = g.cfg.Surnames
	}
	if g.cfg.GivenNames > 0 {
		nGiven = g.cfg.GivenNames
	}
	// The 1-2 syllable word space holds ~3.6k distinct title-cased words;
	// scaled name pools would saturate it and spin the dedup loop, so
	// they draw from the 1-3 syllable space (~220k words) instead. The
	// legacy pool keeps the short draw — and its exact rng stream.
	maxSyl := 2
	if nSur+nGiven > 1500 {
		maxSyl = 3
	}
	surnames := make([]string, nSur)
	givens := make([]string, nGiven)
	seen := map[string]struct{}{}
	fill := func(out []string) {
		for i := range out {
			for {
				w := title(g.syllableWord(1 + g.rng.Intn(maxSyl)))
				if _, dup := seen[w]; !dup {
					seen[w] = struct{}{}
					out[i] = w
					break
				}
			}
		}
	}
	fill(surnames)
	fill(givens)
	combinatorial := func() string {
		return givens[g.rng.Intn(nGiven)] + " " + surnames[g.rng.Intn(nSur)]
	}
	maxShare := g.cfg.HomonymMaxAuthors
	if maxShare < 2 {
		maxShare = 2
	}
	total := g.cfg.Authors
	homSlots := int(g.cfg.HomonymRate * float64(total))
	names := make([]string, 0, total)
	used := map[string]struct{}{}
	for len(names) < homSlots {
		var n string
		for {
			n = combinatorial()
			if _, dup := used[n]; !dup {
				break
			}
		}
		used[n] = struct{}{}
		g.homonyms = append(g.homonyms, n)
		blockP := g.cfg.HomonymBlockP
		if blockP <= 0 {
			blockP = 0.55
		}
		m := 2
		for m < maxShare && g.rng.Float64() < blockP {
			m++
		}
		for k := 0; k < m && len(names) < homSlots; k++ {
			names = append(names, n)
		}
	}
	for len(names) < total {
		names = append(names, combinatorial())
	}
	g.rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	next := 0
	g.sampleName = func() string {
		n := names[next]
		next++
		return n
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}
