package experiments

import (
	"fmt"

	"iuad/internal/bib"
	"iuad/internal/fpgrowth"
	"iuad/internal/stats"
	"iuad/internal/synth"
)

// Fig3Result carries the two descriptive power laws of §IV-A.
type Fig3Result struct {
	// PapersPerNameSlope is the log-log slope of Fig. 3(a); the paper
	// measured −1.6772 on DBLP.
	PapersPerNameSlope float64
	// PairFrequencySlope is the log-log slope of Fig. 3(b); the paper
	// measured −3.1722.
	PairFrequencySlope float64
	// Names and Pairs are the underlying histograms (value → count).
	Names *stats.Histogram
	Pairs *stats.Histogram
}

// RunFig3 reproduces the descriptive analysis of Fig. 3 on a dataset.
func RunFig3(d *synth.Dataset) (*Fig3Result, error) {
	r := &Fig3Result{
		Names: stats.NewHistogram(nil),
		Pairs: stats.NewHistogram(nil),
	}
	for _, name := range d.Corpus.Names() {
		r.Names.Add(len(d.Corpus.PapersWithName(name)))
	}
	txs := make([][]string, d.Corpus.Len())
	for i := 0; i < d.Corpus.Len(); i++ {
		txs[i] = d.Corpus.Paper(bib.PaperID(i)).Authors
	}
	for _, c := range fpgrowth.PairFrequencies(txs) {
		r.Pairs.Add(c)
	}
	var err error
	r.PapersPerNameSlope, _, err = r.Names.PowerLawFit()
	if err != nil {
		return nil, fmt.Errorf("fig3a fit: %w", err)
	}
	r.PairFrequencySlope, _, err = r.Pairs.PowerLawFit()
	if err != nil {
		return nil, fmt.Errorf("fig3b fit: %w", err)
	}
	return r, nil
}

// Tables renders the figure as two point series plus slope annotations.
func (r *Fig3Result) Tables() []Table {
	mk := func(id, title string, h *stats.Histogram, slope, paperSlope float64) Table {
		t := Table{
			ID:     id,
			Title:  title,
			Header: []string{"value", "count"},
		}
		xs, ys := h.Points()
		for i := range xs {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", xs[i]), fmt.Sprintf("%.0f", ys[i]),
			})
		}
		t.Rows = append(t.Rows, []string{"slope",
			fmt.Sprintf("%.4f (paper: %.4f)", slope, paperSlope)})
		return t
	}
	return []Table{
		mk("fig3a", "# papers per name (log-log)", r.Names, r.PapersPerNameSlope, -1.6772),
		mk("fig3b", "# frequent 2-itemsets by frequency (log-log)", r.Pairs, r.PairFrequencySlope, -3.1722),
	}
}

// RunEq2 reproduces the §IV-A worked example: the co-occurrence tail
// probability Pr(X ≥ 3) ≈ 2.3389×10⁻³ for na=nb=500, N=5×10⁵. The CLT
// column is the paper's Eq. 1 approximation; the exact column sums the
// binomial tail (the CLT underflows to 0 once the mean is far below x,
// which only strengthens the paper's point that frequent co-occurrence
// of independent names is essentially impossible).
func RunEq2() Table {
	t := Table{
		ID:     "eq2",
		Title:  "independent co-occurrence tail probability (§IV-A)",
		Header: []string{"na", "nb", "N", "x", "Pr(X≥x) CLT", "Pr(X≥x) exact"},
	}
	cases := [][4]int{
		{500, 500, 500000, 3},
		{500, 500, 500000, 2},
		{100, 100, 500000, 2},
		{50, 50, 500000, 2},
	}
	for _, c := range cases {
		clt := stats.CoOccurrenceTail(c[0], c[1], c[2], c[3])
		p := float64(c[0]) / float64(c[2]) * float64(c[1]) / float64(c[2])
		exact := stats.BinomialTailExact(c[2], p, c[3])
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c[0]), fmt.Sprint(c[1]), fmt.Sprint(c[2]), fmt.Sprint(c[3]),
			fmt.Sprintf("%.4e", clt), fmt.Sprintf("%.4e", exact),
		})
	}
	return t
}
