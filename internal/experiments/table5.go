package experiments

import (
	"fmt"
	"time"

	"iuad/internal/core"
	"iuad/internal/eval"
)

// ScalePoint is one (fraction, method → avg time per name) measurement.
type ScalePoint struct {
	Fraction float64
	Times    map[string]time.Duration
}

// RunTable5 reproduces the Table V scalability analysis: average
// disambiguation time per test name for the unsupervised methods at
// 20%..100% of the corpus.
//
// Expected shape (paper): IUAD is fastest at every scale; GHOST is
// slowest and grows superlinearly; NetE grows mildly.
func RunTable5(s *Suite, fractions []float64) (Table, []ScalePoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	methods := []string{"ANON", "NetE", "Aminer", "GHOST", "IUAD"}
	var points []ScalePoint
	for _, frac := range fractions {
		n := int(frac * float64(s.Corpus.Len()))
		sub := s.Corpus.Subset(n)
		point := ScalePoint{Fraction: frac, Times: map[string]time.Duration{}}

		// Test names present in this subset with at least two papers.
		var names []string
		for _, name := range s.TestNames {
			if len(sub.PapersWithName(name)) >= 2 {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			return Table{}, nil, fmt.Errorf("table5: no test names at fraction %.2f", frac)
		}
		for _, d := range s.UnsupervisedBaselines() {
			var sw eval.Stopwatch
			for _, name := range names {
				papers := sub.PapersWithName(name)
				sw.Time(func() { d.Cluster(sub, name, papers) })
			}
			point.Times[d.Name()] = sw.Average()
		}
		// IUAD disambiguates every name in one global run; its per-name
		// cost divides by all names with work to do (see runIUAD).
		start := time.Now()
		if _, err := core.Run(sub, s.Opts.Core); err != nil {
			return Table{}, nil, fmt.Errorf("table5: IUAD at %.2f: %w", frac, err)
		}
		point.Times["IUAD"] = time.Since(start) / time.Duration(disambiguableNames(sub))
		points = append(points, point)
	}

	t := Table{
		ID:     "table5",
		Title:  "average time cost per name disambiguation (Table V)",
		Header: []string{"Algorithm"},
	}
	for _, f := range fractions {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%%", f*100))
	}
	for _, m := range methods {
		row := []string{m}
		for _, p := range points {
			row = append(row, fmt.Sprintf("%.3fs", p.Times[m].Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, points, nil
}

// RunFig5 reproduces the Fig. 5 data-scale analysis: IUAD's four metrics
// at 20%..100% of the corpus.
//
// Expected shape (paper): precision roughly flat and high; recall climbs
// from ≈0.5 toward >0.8 as data grows.
func RunFig5(s *Suite, fractions []float64) (Table, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	t := Table{
		ID:     "fig5",
		Title:  "data scale analysis (Fig. 5)",
		Header: []string{"scale", "MicroA", "MicroP", "MicroR", "MicroF"},
	}
	for _, frac := range fractions {
		n := int(frac * float64(s.Corpus.Len()))
		sub := s.Corpus.Subset(n)
		var names []string
		for _, name := range s.TestNames {
			if len(sub.PapersWithName(name)) >= 2 {
				names = append(names, name)
			}
		}
		pl, err := core.Run(sub, s.Opts.Core)
		if err != nil {
			return Table{}, fmt.Errorf("fig5 at %.2f: %w", frac, err)
		}
		m := NetworkMetrics(sub, pl.GCN, names)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			fm(m.MicroA), fm(m.MicroP), fm(m.MicroR), fm(m.MicroF),
		})
	}
	return t, nil
}
