package experiments

import (
	"fmt"
	"time"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/eval"
)

// IncrementalResult reports one Table VI column: batch metrics on the
// base corpus, metrics after streaming the held-out papers, and the
// average time per streamed paper.
type IncrementalResult struct {
	Held        int
	Base        eval.Metrics // "MicroX" rows — GCN on part 1
	After       eval.Metrics // "MicroX+" rows — entire data after streaming
	PerPaper    time.Duration
	Assigned    int // slots attached to existing vertices
	NewVertices int
}

// RunTable6 reproduces the Table VI incremental analysis: the newest
// `held` papers are withheld, a GCN is built on the rest, and the
// held-out papers are streamed through AddPaper one at a time.
//
// Expected shape (paper): metrics move by under ±0.03 versus batch, and
// the per-paper cost is tens of milliseconds (paper: <50 ms).
func RunTable6(s *Suite, holdouts []int) (Table, []IncrementalResult, error) {
	if len(holdouts) == 0 {
		holdouts = []int{100, 200, 300}
	}
	var results []IncrementalResult
	for _, held := range holdouts {
		if held >= s.Corpus.Len() {
			return Table{}, nil, fmt.Errorf("table6: holdout %d ≥ corpus %d", held, s.Corpus.Len())
		}
		base := s.Corpus.Subset(s.Corpus.Len() - held)
		pl, err := core.Run(base, s.Opts.Core)
		if err != nil {
			return Table{}, nil, fmt.Errorf("table6: batch run: %w", err)
		}
		r := IncrementalResult{Held: held}
		r.Base = NetworkMetrics(base, pl.GCN, s.TestNames)

		var sw eval.Stopwatch
		// Track streamed instances per test name for the "+" metrics.
		extra := map[string][]eval.Instance{}
		testSet := map[string]struct{}{}
		for _, n := range s.TestNames {
			testSet[n] = struct{}{}
		}
		for i := base.Len(); i < s.Corpus.Len(); i++ {
			orig := s.Corpus.Paper(bib.PaperID(i))
			p := bib.Paper{
				Title: orig.Title, Venue: orig.Venue, Year: orig.Year,
				Authors: append([]string(nil), orig.Authors...),
			}
			var as []core.Assignment
			sw.Time(func() {
				var err error
				as, err = pl.AddPaper(p)
				if err != nil {
					panic(err) // structurally impossible: papers are pre-validated
				}
			})
			for idx, a := range as {
				if a.Created {
					r.NewVertices++
				} else {
					r.Assigned++
				}
				name := orig.Authors[idx]
				if _, ok := testSet[name]; ok {
					extra[name] = append(extra[name], eval.Instance{
						Cluster: a.Vertex,
						Truth:   int(orig.TruthAt(idx)),
					})
				}
			}
		}
		r.PerPaper = sw.Average()

		// "+" metrics: base instances plus streamed instances, evaluated
		// against the updated GCN.
		var pc eval.PairCounts
		for _, name := range s.TestNames {
			var ins []eval.Instance
			for _, pid := range base.PapersWithName(name) {
				p := base.Paper(pid)
				idx := p.AuthorIndex(name)
				ins = append(ins, eval.Instance{
					Cluster: pl.GCN.ClusterOfSlot(core.Slot{Paper: pid, Index: idx}),
					Truth:   int(p.TruthAt(idx)),
				})
			}
			ins = append(ins, extra[name]...)
			pc.AddName(ins)
		}
		r.After = pc.Metrics()
		results = append(results, r)
	}

	t := Table{
		ID:     "table6",
		Title:  "performance and efficiency of incremental disambiguation (Table VI)",
		Header: []string{"Metric"},
	}
	for _, r := range results {
		t.Header = append(t.Header, fmt.Sprint(r.Held))
	}
	addRow := func(name string, get func(IncrementalResult) string) {
		row := []string{name}
		for _, r := range results {
			row = append(row, get(r))
		}
		t.Rows = append(t.Rows, row)
	}
	addRow("MicroA", func(r IncrementalResult) string { return fm(r.Base.MicroA) })
	addRow("MicroA+", func(r IncrementalResult) string { return fm(r.After.MicroA) })
	addRow("MicroP", func(r IncrementalResult) string { return fm(r.Base.MicroP) })
	addRow("MicroP+", func(r IncrementalResult) string { return fm(r.After.MicroP) })
	addRow("MicroR", func(r IncrementalResult) string { return fm(r.Base.MicroR) })
	addRow("MicroR+", func(r IncrementalResult) string { return fm(r.After.MicroR) })
	addRow("MicroF", func(r IncrementalResult) string { return fm(r.Base.MicroF) })
	addRow("MicroF+", func(r IncrementalResult) string { return fm(r.After.MicroF) })
	addRow("Avg. time (ms)", func(r IncrementalResult) string {
		return fmt.Sprintf("%.2f", float64(r.PerPaper.Microseconds())/1000)
	})
	return t, results, nil
}
