// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VI): Fig. 3 (descriptive power laws), Table III
// (comparison against eight baselines), Table IV (stage analysis),
// Table V (scalability), Fig. 5 (data-scale curves), Table VI
// (incremental disambiguation), and Fig. 6 (single-similarity threshold
// sweeps). Each driver returns a Table that prints the same rows/series
// the paper reports; EXPERIMENTS.md records measured-vs-paper values.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"iuad/internal/baselines"
	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/eval"
	"iuad/internal/sched"
	"iuad/internal/synth"
	"iuad/internal/textvec"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// Options configures a Suite.
type Options struct {
	// Synth parameterizes the corpus generator.
	Synth synth.Config
	// Core parameterizes IUAD.
	Core core.Config
	// TestNames is how many of the most ambiguous names form the test
	// set (the paper uses 50).
	TestNames int
	// MinAuthorsPerName filters test candidates (2+ like Table II).
	MinAuthorsPerName int
}

// DefaultOptions mirrors the paper's setup at laptop scale.
func DefaultOptions() Options {
	return Options{
		Synth:             synth.DefaultConfig(),
		Core:              core.DefaultConfig(),
		TestNames:         50,
		MinAuthorsPerName: 2,
	}
}

// QuickOptions shrinks everything for tests and smoke runs. Small worlds
// need proportionally denser collaboration to carry any stable structure,
// hence the higher repeat bias than the default corpus.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Synth.Authors = 1000
	o.Synth.Communities = 16
	o.Synth.Vocabulary = 500
	o.Synth.TopicWordsPerCommunity = 40
	o.Synth.RepeatCollabBias = 0.75
	o.Core.Embedding.Dim = 24
	o.Core.Embedding.Epochs = 2
	o.Core.SampleRate = 0.5
	o.TestNames = 15
	return o
}

// Suite holds a generated dataset and the shared caches the experiment
// drivers reuse.
type Suite struct {
	Opts    Options
	Dataset *synth.Dataset
	Corpus  *bib.Corpus
	// TestNames is the evaluation name set (most ambiguous first);
	// TrainNames are the remaining ambiguous names, used to train the
	// supervised baselines (disjoint from TestNames).
	TestNames  []string
	TrainNames []string
	// Emb is the corpus-wide keyword embedding shared by γ³ and the
	// Aminer baseline's global representation.
	Emb *textvec.Embeddings
}

// NewSuite generates the dataset and shared artifacts.
func NewSuite(o Options) (*Suite, error) {
	d := synth.Generate(o.Synth)
	amb := d.AmbiguousNames(o.MinAuthorsPerName)
	if len(amb) < o.TestNames {
		return nil, fmt.Errorf("experiments: only %d ambiguous names, need %d",
			len(amb), o.TestNames)
	}
	s := &Suite{
		Opts:       o,
		Dataset:    d,
		Corpus:     d.Corpus,
		TestNames:  amb[:o.TestNames],
		TrainNames: amb[o.TestNames:],
	}
	s.Emb = core.TrainEmbeddings(d.Corpus, o.Core.Embedding)
	return s, nil
}

// Workers resolves the suite's worker-pool size with core's semantics
// (≤0 = one per logical CPU), so baselines and IUAD share one knob —
// the cluster backends treat ≤1 as serial, which would silently
// diverge on the 0 default otherwise.
func (s *Suite) Workers() int { return sched.Workers(s.Opts.Core.Workers) }

// UnsupervisedBaselines constructs the four unsupervised comparison
// methods with the suite's worker-pool setting threaded through (their
// clustering backends parallelize the distance-matrix fills; labels are
// identical for every worker count).
func (s *Suite) UnsupervisedBaselines() []baselines.Disambiguator {
	w := s.Workers()
	anon := baselines.NewANON(1)
	anon.Workers = w
	nete := baselines.NewNetE(1)
	nete.HDBSCAN.Workers = w
	aminer := baselines.NewAminer(s.Emb, 1)
	aminer.Workers = w
	return []baselines.Disambiguator{anon, nete, aminer, baselines.NewGHOST()}
}

// NetworkMetrics evaluates a network's slot assignment over names.
func NetworkMetrics(corpus *bib.Corpus, net *core.Network, names []string) eval.Metrics {
	var pc eval.PairCounts
	AddNetworkCounts(&pc, corpus, net, names)
	return pc.Metrics()
}

// AddNetworkCounts folds a network's assignments for names into pc.
func AddNetworkCounts(pc *eval.PairCounts, corpus *bib.Corpus, net *core.Network, names []string) {
	for _, name := range names {
		var ins []eval.Instance
		for _, pid := range corpus.PapersWithName(name) {
			p := corpus.Paper(pid)
			idx := p.AuthorIndex(name)
			ins = append(ins, eval.Instance{
				Cluster: net.ClusterOfSlot(core.Slot{Paper: pid, Index: idx}),
				Truth:   int(p.TruthAt(idx)),
			})
		}
		pc.AddName(ins)
	}
}

// AddLabelCounts folds a per-name clustering (labels aligned with
// papers) into pc.
func AddLabelCounts(pc *eval.PairCounts, corpus *bib.Corpus, name string, papers []bib.PaperID, labels []int) {
	ins := make([]eval.Instance, len(papers))
	for i, pid := range papers {
		p := corpus.Paper(pid)
		ins[i] = eval.Instance{
			Cluster: labels[i],
			Truth:   int(p.TruthAt(p.AuthorIndex(name))),
		}
	}
	pc.AddName(ins)
}

func fm(v float64) string { return fmt.Sprintf("%.4f", v) }
