package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickSuite is shared across the tests in this package (building it is
// the expensive part).
func quickSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTablePrint(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: demo ==") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if !strings.Contains(out, "333  4") {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

func TestRunFig3(t *testing.T) {
	s := quickSuite(t)
	r, err := RunFig3(s.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if r.PapersPerNameSlope >= -0.3 {
		t.Fatalf("fig3a slope=%.3f, want clearly negative", r.PapersPerNameSlope)
	}
	if r.PairFrequencySlope >= -0.8 {
		t.Fatalf("fig3b slope=%.3f, want clearly negative", r.PairFrequencySlope)
	}
	tabs := r.Tables()
	if len(tabs) != 2 || len(tabs[0].Rows) < 3 || len(tabs[1].Rows) < 3 {
		t.Fatalf("fig3 tables malformed: %+v", tabs)
	}
}

func TestRunEq2(t *testing.T) {
	tab := RunEq2()
	if len(tab.Rows) != 4 {
		t.Fatalf("eq2 rows=%d", len(tab.Rows))
	}
	if !strings.HasPrefix(tab.Rows[0][4], "2.3") {
		t.Fatalf("eq2 headline value=%s, want ≈2.34e-03", tab.Rows[0][4])
	}
}

func TestRunTable4StageShape(t *testing.T) {
	s := quickSuite(t)
	tab, r, err := RunTable4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("table4 rows=%d", len(tab.Rows))
	}
	// Table IV shape.
	if r.SCN.MicroP < 0.8 {
		t.Fatalf("SCN precision=%.3f", r.SCN.MicroP)
	}
	if r.GCN.MicroR-r.SCN.MicroR < 0.1 {
		t.Fatalf("recall lift=%.3f, want ≥0.1", r.GCN.MicroR-r.SCN.MicroR)
	}
	if r.GCN.MicroF <= r.SCN.MicroF {
		t.Fatal("GCN F1 did not improve")
	}
}

func TestRunTable3Shape(t *testing.T) {
	s := quickSuite(t)
	tab, results, err := RunTable3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("results=%d, want 9 (8 baselines + IUAD)", len(results))
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("table rows=%d", len(tab.Rows))
	}
	byName := map[string]MethodResult{}
	for _, r := range results {
		byName[r.Method] = r
	}
	iuad := byName["IUAD"]
	// Headline claim (unsupervised class): IUAD has the best MicroF of
	// all unsupervised methods, as in Table III. The supervised
	// baselines exceed their paper scores on this substrate (noise-free
	// synthetic features + abundant labels; see EXPERIMENTS.md) and are
	// only logged.
	for _, name := range []string{"ANON", "NetE", "Aminer", "GHOST"} {
		if byName[name].Metrics.MicroF >= iuad.Metrics.MicroF {
			t.Errorf("%s MicroF=%.4f ≥ IUAD=%.4f (unsupervised headline violated)",
				name, byName[name].Metrics.MicroF, iuad.Metrics.MicroF)
		}
	}
	for _, name := range []string{"AdaBoost", "GBDT", "RF", "XGBoost"} {
		t.Logf("%s: %v (paper band: MicroF 0.72-0.76)", name, byName[name].Metrics)
	}
}

func TestRunTable5And6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep in -short mode")
	}
	s := quickSuite(t)
	tab, points, err := RunTable5(s, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(tab.Rows) != 5 {
		t.Fatalf("table5 shape: %d points %d rows", len(points), len(tab.Rows))
	}
	for _, p := range points {
		for m, d := range p.Times {
			if d <= 0 {
				t.Fatalf("%s time=%v at %.1f", m, d, p.Fraction)
			}
		}
	}

	tab6, results, err := RunTable6(s, []int{40})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(tab6.Rows) != 9 {
		t.Fatalf("table6 shape: %d results %d rows", len(results), len(tab6.Rows))
	}
	r := results[0]
	if r.PerPaper <= 0 || r.PerPaper > time.Second {
		t.Fatalf("per-paper time=%v", r.PerPaper)
	}
	if r.Assigned+r.NewVertices == 0 {
		t.Fatal("no incremental slots processed")
	}
	// Incremental must not collapse quality (paper: within a point or so).
	if r.After.MicroF < r.Base.MicroF-0.15 {
		t.Fatalf("incremental F1 collapse: %.3f -> %.3f", r.Base.MicroF, r.After.MicroF)
	}
}

func TestRunFig5Small(t *testing.T) {
	s := quickSuite(t)
	tab, err := RunFig5(s, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("fig5 rows=%d", len(tab.Rows))
	}
}

func TestRunFig6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("six single-feature pipelines in -short mode")
	}
	s := quickSuite(t)
	tabs, err := RunFig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 6 {
		t.Fatalf("fig6 panels=%d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 9 {
			t.Fatalf("%s rows=%d", tab.ID, len(tab.Rows))
		}
	}
}
