package experiments

import (
	"fmt"

	"iuad/internal/core"
)

// fig6Ranges mirrors the per-panel threshold sweeps of Fig. 6. The
// paper's x-axes span different ranges per similarity because the fitted
// log-odds scores live on different scales; these normalized sweeps
// cover the useful region of each fitted model.
var fig6Ranges = [core.NumSimilarities][]float64{
	core.SimWLKernel:     {-10, -5, -2, -1, 0, 1, 2, 5, 10},
	core.SimCliques:      {-10, -5, -2, -1, 0, 1, 2, 5, 10},
	core.SimInterests:    {-10, -5, -2, -1, 0, 1, 2, 5, 10},
	core.SimTimeConsist:  {-20, -10, -5, -2, 0, 2, 5, 10, 20},
	core.SimRepCommunity: {-50, -20, -10, -5, 0, 5, 10, 20, 50},
	core.SimCommunity:    {-50, -20, -10, -5, 0, 5, 10, 20, 50},
}

// RunFig6 reproduces the Fig. 6 rationality analysis: the GCN is rebuilt
// with a single similarity function enabled, sweeping the decision
// threshold δ, one table per similarity.
//
// Expected shape (paper): every similarity improves on the SCN at some
// threshold; the community similarities (γ⁵, γ⁶) have the widest useful
// threshold spread, i.e. they are the most influential.
func RunFig6(s *Suite) ([]Table, error) {
	scn, err := core.BuildSCN(s.Corpus, s.Opts.Core)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	var tables []Table
	for feat := 0; feat < core.NumSimilarities; feat++ {
		cfg := s.Opts.Core
		cfg.FeatureMask = make([]bool, core.NumSimilarities)
		cfg.FeatureMask[feat] = true
		pl, err := core.BuildGCN(s.Corpus, scn, s.Emb, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", core.SimilarityNames[feat], err)
		}
		t := Table{
			ID:     fmt.Sprintf("fig6%c", 'a'+feat),
			Title:  fmt.Sprintf("single-similarity sweep: %s (Fig. 6)", core.SimilarityNames[feat]),
			Header: []string{"threshold", "MicroA", "MicroP", "MicroR", "MicroF"},
		}
		for _, delta := range fig6Ranges[feat] {
			net := pl.RemergeAt(delta)
			m := NetworkMetrics(s.Corpus, net, s.TestNames)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", delta),
				fm(m.MicroA), fm(m.MicroP), fm(m.MicroR), fm(m.MicroF),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
