package experiments

import (
	"fmt"
	"time"

	"iuad/internal/baselines"
	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/eval"
)

// MethodResult is one comparison row: metrics plus wall-clock cost.
type MethodResult struct {
	Method  string
	Metrics eval.Metrics
	// PerName is the average disambiguation time per test name.
	PerName time.Duration
}

// RunTable3 reproduces the Table III comparison: IUAD versus four
// supervised and four unsupervised baselines on the test names.
//
// Expected shape (paper): IUAD leads every metric except that some
// baselines reach higher precision at much lower recall; GHOST has the
// lowest recall.
func RunTable3(s *Suite) (Table, []MethodResult, error) {
	var results []MethodResult

	// Supervised baselines, trained on ambiguous names disjoint from the
	// test set.
	for _, algo := range []baselines.Algo{
		baselines.AdaBoost, baselines.GBDT, baselines.RandomForest, baselines.XGBoost,
	} {
		clf, err := baselines.TrainSupervised(s.Corpus, s.TrainNames, algo,
			baselines.DefaultTrainingConfig())
		if err != nil {
			return Table{}, nil, fmt.Errorf("table3: train %v: %w", algo, err)
		}
		clf.Workers = s.Workers()
		results = append(results, runBaseline(s, clf))
	}
	// Unsupervised baselines.
	for _, d := range s.UnsupervisedBaselines() {
		results = append(results, runBaseline(s, d))
	}
	// IUAD.
	iuadRes, _, err := runIUAD(s)
	if err != nil {
		return Table{}, nil, err
	}
	results = append(results, iuadRes)

	t := Table{
		ID:     "table3",
		Title:  "performance compared with baselines (Table III)",
		Header: []string{"Algorithm", "MicroA", "MicroP", "MicroR", "MicroF"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Method, fm(r.Metrics.MicroA), fm(r.Metrics.MicroP),
			fm(r.Metrics.MicroR), fm(r.Metrics.MicroF),
		})
	}
	return t, results, nil
}

// runBaseline clusters every test name with d and accumulates pairwise
// counts.
func runBaseline(s *Suite, d baselines.Disambiguator) MethodResult {
	var pc eval.PairCounts
	var sw eval.Stopwatch
	for _, name := range s.TestNames {
		papers := s.Corpus.PapersWithName(name)
		var labels []int
		sw.Time(func() { labels = d.Cluster(s.Corpus, name, papers) })
		AddLabelCounts(&pc, s.Corpus, name, papers, labels)
	}
	return MethodResult{Method: d.Name(), Metrics: pc.Metrics(), PerName: sw.Average()}
}

// runIUAD runs the full pipeline and evaluates the GCN on the test
// names. IUAD is a global algorithm: one run disambiguates every name in
// the corpus, so its per-name cost is the pipeline time divided by the
// number of names that needed disambiguation (names with ≥2 papers) —
// the like-for-like counterpart of the baselines' per-name clustering
// cost. The top-down baselines would pay their per-name cost for each of
// those names too (§V-F1: they reconsider each paper once per coauthor).
func runIUAD(s *Suite) (MethodResult, *core.Pipeline, error) {
	start := time.Now()
	pl, err := core.Run(s.Corpus, s.Opts.Core)
	if err != nil {
		return MethodResult{}, nil, fmt.Errorf("table3: IUAD: %w", err)
	}
	elapsed := time.Since(start)
	m := NetworkMetrics(s.Corpus, pl.GCN, s.TestNames)
	return MethodResult{
		Method:  "IUAD",
		Metrics: m,
		PerName: elapsed / time.Duration(disambiguableNames(s.Corpus)),
	}, pl, nil
}

// disambiguableNames counts names with at least two papers — the names a
// disambiguator has any work to do on.
func disambiguableNames(c *bib.Corpus) int {
	n := 0
	for _, name := range c.Names() {
		if len(c.PapersWithName(name)) >= 2 {
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return n
}
