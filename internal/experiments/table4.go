package experiments

import (
	"fmt"

	"iuad/internal/core"
	"iuad/internal/eval"
)

// StageResult reports the Table IV stage analysis.
type StageResult struct {
	SCN, GCN eval.Metrics
}

// RunTable4 reproduces Table IV: metrics after the SCN stage versus
// after the GCN stage, plus the improvement row.
//
// Expected shape (paper): SCN precision very high (0.8662) with low
// recall (0.4374); GCN lifts recall by +0.3739 while precision moves
// only −0.0054.
func RunTable4(s *Suite) (Table, *StageResult, error) {
	pl, err := core.Run(s.Corpus, s.Opts.Core)
	if err != nil {
		return Table{}, nil, fmt.Errorf("table4: %w", err)
	}
	r := &StageResult{
		SCN: NetworkMetrics(s.Corpus, pl.SCN, s.TestNames),
		GCN: NetworkMetrics(s.Corpus, pl.GCN, s.TestNames),
	}
	t := Table{
		ID:     "table4",
		Title:  "effect of the two stages (Table IV)",
		Header: []string{"Metric", "SCN", "GCN", "Improv."},
	}
	add := func(name string, a, b float64) {
		t.Rows = append(t.Rows, []string{name, fm(a), fm(b), fmt.Sprintf("%+.4f", b-a)})
	}
	add("MicroA", r.SCN.MicroA, r.GCN.MicroA)
	add("MicroP", r.SCN.MicroP, r.GCN.MicroP)
	add("MicroR", r.SCN.MicroR, r.GCN.MicroR)
	add("MicroF", r.SCN.MicroF, r.GCN.MicroF)
	return t, r, nil
}
