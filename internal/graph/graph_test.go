package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// k4 returns the complete graph on 4 vertices.
func k4() *Graph {
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("new edge reported as duplicate")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate edge reported as new")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges=%d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("Degree wrong")
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Neighbors=%v", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestAddVertex(t *testing.T) {
	g := New(0)
	if id := g.AddVertex(); id != 0 {
		t.Fatalf("first vertex id=%d", id)
	}
	if id := g.AddVertex(); id != 1 {
		t.Fatalf("second vertex id=%d", id)
	}
	g.AddEdge(0, 1)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("counts wrong after AddVertex")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components=%d, want 3 (triangle chain, pair, isolate)", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("chain split across components")
	}
	if comp[3] != comp[4] {
		t.Fatal("pair split")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("isolate merged")
	}
}

func TestTrianglesOf(t *testing.T) {
	g := k4()
	tris := g.TrianglesOf(0)
	if len(tris) != 3 {
		t.Fatalf("K4 vertex participates in %d triangles, want 3", len(tris))
	}
	for _, tr := range tris {
		if !(tr.A < tr.B && tr.B < tr.C) {
			t.Fatalf("triangle not normalized: %+v", tr)
		}
	}
	// A path graph has no triangles.
	p := New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	if got := p.TrianglesOf(1); len(got) != 0 {
		t.Fatalf("path triangle list=%v", got)
	}
}

func TestCountTriangles(t *testing.T) {
	if got := k4().CountTriangles(); got != 4 {
		t.Fatalf("K4 triangles=%d, want 4", got)
	}
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // one triangle
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if got := g.CountTriangles(); got != 1 {
		t.Fatalf("triangles=%d, want 1", got)
	}
}

// Property: CountTriangles agrees with summing per-vertex triangle lists
// (each triangle counted three times) on random graphs.
func TestTriangleCountConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		perVertex := 0
		for v := 0; v < n; v++ {
			perVertex += len(g.TrianglesOf(v))
		}
		return perVertex == 3*g.CountTriangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEgo(t *testing.T) {
	// Star with an extra rim edge: 0-1,0-2,0-3,1-2; plus far vertex 3-4.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)

	sub, mapping := g.Ego(0, 1)
	if len(mapping) != 4 {
		t.Fatalf("radius-1 ego has %d vertices, want 4", len(mapping))
	}
	if mapping[0] != 0 {
		t.Fatalf("mapping[0]=%d, want center", mapping[0])
	}
	// Induced rim edge 1-2 must be present.
	inv := map[int]int{}
	for i, orig := range mapping {
		inv[orig] = i
	}
	if !sub.HasEdge(inv[1], inv[2]) {
		t.Fatal("induced rim edge missing")
	}
	if sub.NumEdges() != 4 {
		t.Fatalf("ego edges=%d, want 4", sub.NumEdges())
	}

	sub0, map0 := g.Ego(4, 0)
	if sub0.NumVertices() != 1 || len(map0) != 1 || sub0.NumEdges() != 0 {
		t.Fatal("radius-0 ego should be a single vertex")
	}

	sub2, map2 := g.Ego(0, 2)
	if len(map2) != 5 || sub2.NumEdges() != 5 {
		t.Fatalf("radius-2 ego: %d vertices %d edges", len(map2), sub2.NumEdges())
	}
}

func TestRandomWalk(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	rng := rand.New(rand.NewSource(1))
	walk := g.RandomWalk(0, 10, rng)
	if len(walk) != 11 {
		t.Fatalf("walk length=%d, want 11", len(walk))
	}
	if walk[0] != 0 {
		t.Fatal("walk must start at start vertex")
	}
	for i := 1; i < len(walk); i++ {
		if !g.HasEdge(walk[i-1], walk[i]) {
			t.Fatalf("walk step %d: no edge %d-%d", i, walk[i-1], walk[i])
		}
	}
	// Isolated vertex: walk stops immediately.
	iso := New(1)
	if got := iso.RandomWalk(0, 5, rng); len(got) != 1 {
		t.Fatalf("isolated walk=%v", got)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := k4()
	if got := g.CommonNeighbors(0, 1); got != 2 {
		t.Fatalf("K4 common neighbors=%d, want 2", got)
	}
	h := New(3)
	h.AddEdge(0, 1)
	if got := h.CommonNeighbors(0, 2); got != 0 {
		t.Fatalf("common=%d, want 0", got)
	}
}

func TestShortestPathLen(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if d := g.ShortestPathLen(0, 3, 0); d != 3 {
		t.Fatalf("dist=%d, want 3", d)
	}
	if d := g.ShortestPathLen(0, 0, 0); d != 0 {
		t.Fatalf("self dist=%d", d)
	}
	if d := g.ShortestPathLen(0, 4, 0); d != -1 {
		t.Fatalf("disconnected dist=%d, want -1", d)
	}
	if d := g.ShortestPathLen(0, 3, 2); d != -1 {
		t.Fatalf("depth-capped dist=%d, want -1", d)
	}
}

func TestCountPaths(t *testing.T) {
	g := k4()
	// Length-2 simple paths between 0 and 1 in K4 pass through 2 or 3.
	if got := g.CountPaths(0, 1, 2, 0); got != 2 {
		t.Fatalf("paths len2=%d, want 2", got)
	}
	if got := g.CountPaths(0, 1, 1, 0); got != 1 {
		t.Fatalf("paths len1=%d, want 1", got)
	}
	if got := g.CountPaths(0, 1, 0, 0); got != 0 {
		t.Fatalf("paths len0=%d, want 0", got)
	}
	// Cap bounds the count.
	if got := g.CountPaths(0, 1, 2, 1); got != 1 {
		t.Fatalf("capped paths=%d, want 1", got)
	}
}

func TestDegreesAndVisit(t *testing.T) {
	g := k4()
	degs := g.Degrees()
	for v, d := range degs {
		if d != 3 {
			t.Fatalf("vertex %d degree=%d", v, d)
		}
	}
	var seen []int
	g.VisitNeighbors(0, func(u int) { seen = append(seen, u) })
	sort.Ints(seen)
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Fatalf("VisitNeighbors=%v", seen)
	}
}
