// Package graph implements the undirected-graph substrate used across the
// repository: sorted adjacency-slice storage with O(log d) edge tests,
// connected components, per-vertex triangle listing (the clique lists of
// §V-B1), bounded-radius ego subgraphs (for the Weisfeiler–Lehman kernel
// of γ¹), random walks (for DeepWalk-style baseline embeddings), and
// degree statistics (for the scale-free analyses of §IV-A).
//
// Vertices are dense int indexes, so callers keep their own mapping from
// domain objects (authors, papers) to vertex IDs. Adjacency is stored as
// sorted int32 slices (CSR-style neighbor lists) rather than hash sets:
// collaboration networks have small degrees, so binary-search edge tests
// beat map lookups, neighbor iteration is allocation-free and always in
// ascending order, and a million-vertex network costs a few bytes per
// edge instead of a map header per vertex.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a mutable undirected simple graph. Self-loops and parallel
// edges are rejected. The zero value is an empty graph.
type Graph struct {
	adj   [][]int32 // sorted ascending neighbor lists
	edges int
}

// New returns a graph with n initial vertices (0..n-1).
func New(n int) *Graph {
	g := &Graph{adj: make([][]int32, n)}
	return g
}

// AddVertex appends a vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// insertSorted inserts x into the sorted list, reporting whether it was
// absent.
func insertSorted(list []int32, x int32) ([]int32, bool) {
	i := sort.Search(len(list), func(k int) bool { return list[k] >= x })
	if i < len(list) && list[i] == x {
		return list, false
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = x
	return list, true
}

// AddEdge inserts edge {u,v}. It reports whether the edge is new, and
// panics on out-of-range vertices or self-loops (programming errors).
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.check(u)
	g.check(v)
	var fresh bool
	if g.adj[u], fresh = insertSorted(g.adj[u], int32(v)); !fresh {
		return false
	}
	g.adj[v], _ = insertSorted(g.adj[v], int32(u))
	g.edges++
	return true
}

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(k int) bool { return a[k] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbor IDs of v. The slice is freshly
// allocated.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, len(g.adj[v]))
	for i, u := range g.adj[v] {
		out[i] = int(u)
	}
	return out
}

// VisitNeighbors calls fn for each neighbor of v in ascending order.
func (g *Graph) VisitNeighbors(v int, fn func(u int)) {
	g.check(v)
	for _, u := range g.adj[v] {
		fn(int(u))
	}
}

// AppendNeighbors appends the sorted neighbor IDs of v to buf and
// returns the extended buffer. Unlike Neighbors it allocates nothing
// when buf has capacity, so callers materializing adjacency for many
// vertices can carve rows out of one slab.
func (g *Graph) AppendNeighbors(v int, buf []int32) []int32 {
	g.check(v)
	return append(buf, g.adj[v]...)
}

func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// Components returns the connected-component ID of every vertex plus the
// number of components. IDs are dense, assigned in order of discovery.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	for start := range g.adj {
		if comp[start] != -1 {
			continue
		}
		comp[start] = count
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.adj[v] {
				if comp[u] == -1 {
					comp[u] = count
					stack = append(stack, int(u))
				}
			}
		}
		count++
	}
	return comp, count
}

// Triangle is a vertex triple with A < B < C.
type Triangle struct{ A, B, C int }

// TrianglesOf lists all triangles containing v. This is the "co-author
// clique" list L(v) of Eq. 5 — the paper restricts clique listing to
// triangles for tractability, and so do we.
func (g *Graph) TrianglesOf(v int) []Triangle {
	g.check(v)
	nbrs := g.adj[v]
	var out []Triangle
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
				tri := normTriangle(v, int(nbrs[i]), int(nbrs[j]))
				out = append(out, tri)
			}
		}
	}
	return out
}

// VisitTrianglePairs calls fn(u, w) for every triangle (v, u, w), where
// u < w are neighbors of v joined by an edge — the allocation-free
// variant of TrianglesOf used by profile building, which only needs the
// two non-pivot vertices.
func (g *Graph) VisitTrianglePairs(v int, fn func(u, w int)) {
	g.check(v)
	nbrs := g.adj[v]
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
				fn(int(nbrs[i]), int(nbrs[j]))
			}
		}
	}
}

func normTriangle(a, b, c int) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}

// CountTriangles returns the total number of distinct triangles using the
// forward (oriented) algorithm: each triangle is counted once at its
// lowest-degree pivot.
func (g *Graph) CountTriangles() int {
	n := len(g.adj)
	// Order vertices by (degree, id); orient edges from lower to higher.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(g.adj[order[a]]), len(g.adj[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	fwd := make([][]int32, n)
	for v := range g.adj {
		for _, u := range g.adj[v] {
			if rank[int(u)] > rank[v] {
				fwd[v] = append(fwd[v], u)
			}
		}
	}
	mark := make([]bool, n)
	total := 0
	for _, v := range order {
		for _, u := range fwd[v] {
			mark[u] = true
		}
		for _, u := range fwd[v] {
			for _, w := range fwd[int(u)] {
				if mark[w] {
					total++
				}
			}
		}
		for _, u := range fwd[v] {
			mark[u] = false
		}
	}
	return total
}

// Ego returns the induced subgraph of all vertices within the given hop
// radius of center, plus the mapping local→original ID (mapping[0] is
// center). Radius 0 yields just the center. Discovery is breadth-first
// in ascending neighbor order, so the local IDs are deterministic.
func (g *Graph) Ego(center, radius int) (*Graph, []int) {
	g.check(center)
	dist := map[int]int{center: 0}
	frontier := []int{center}
	order := []int{center}
	for d := 0; d < radius; d++ {
		var next []int
		for _, v := range frontier {
			for _, u := range g.adj[v] {
				if _, seen := dist[int(u)]; !seen {
					dist[int(u)] = d + 1
					next = append(next, int(u))
					order = append(order, int(u))
				}
			}
		}
		frontier = next
	}
	local := make(map[int]int, len(order))
	for i, v := range order {
		local[v] = i
	}
	sub := New(len(order))
	for _, v := range order {
		for _, u := range g.adj[v] {
			lu, ok := local[int(u)]
			if !ok {
				continue
			}
			lv := local[v]
			if lv < lu {
				sub.AddEdge(lv, lu)
			}
		}
	}
	return sub, order
}

// RandomWalk performs a simple uniform random walk of the given length
// starting at start, using rng. The walk stops early at an isolated
// vertex. The returned path includes start.
func (g *Graph) RandomWalk(start, length int, rng *rand.Rand) []int {
	g.check(start)
	path := make([]int, 1, length+1)
	path[0] = start
	cur := start
	for step := 0; step < length; step++ {
		nbrs := g.adj[cur]
		if len(nbrs) == 0 {
			break
		}
		// Adjacency is sorted, so walks are deterministic for a fixed rng.
		cur = int(nbrs[rng.Intn(len(nbrs))])
		path = append(path, cur)
	}
	return path
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for v := range g.adj {
		out[v] = len(g.adj[v])
	}
	return out
}

// CommonNeighbors returns the number of shared neighbors of u and v,
// via a linear merge of the two sorted lists.
func (g *Graph) CommonNeighbors(u, v int) int {
	g.check(u)
	g.check(v)
	a, b := g.adj[u], g.adj[v]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// ShortestPathLen returns the hop distance between u and v via BFS, or -1
// when disconnected. maxDepth bounds the search (0 = unbounded).
func (g *Graph) ShortestPathLen(u, v, maxDepth int) int {
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if maxDepth > 0 && d >= maxDepth {
			continue
		}
		for _, nb := range g.adj[cur] {
			n := int(nb)
			if _, seen := dist[n]; seen {
				continue
			}
			if n == v {
				return d + 1
			}
			dist[n] = d + 1
			queue = append(queue, n)
		}
	}
	return -1
}

// CountPaths counts simple paths of length exactly L (edges) between u
// and v, capped at cap to bound work; used by the GHOST baseline's
// path-based similarity. L must be ≥ 1 and small (≤ 4 in practice).
func (g *Graph) CountPaths(u, v, length, cap int) int {
	g.check(u)
	g.check(v)
	if length < 1 {
		return 0
	}
	count := 0
	visited := map[int]bool{u: true}
	var dfs func(cur, remaining int)
	dfs = func(cur, remaining int) {
		if cap > 0 && count >= cap {
			return
		}
		if remaining == 0 {
			if cur == v {
				count++
			}
			return
		}
		for _, nb := range g.adj[cur] {
			n := int(nb)
			if visited[n] {
				continue
			}
			if n == v && remaining != 1 {
				continue // v may only appear as the terminal vertex
			}
			visited[n] = true
			dfs(n, remaining-1)
			visited[n] = false
		}
	}
	dfs(u, length)
	if cap > 0 && count > cap {
		count = cap
	}
	return count
}
