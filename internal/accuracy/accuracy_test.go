package accuracy

import (
	"testing"

	"iuad/internal/bib"
	"iuad/internal/core"
)

// TestIncrementalWithinTolerance is the incremental-vs-batch equivalence
// guard: replaying the corpus suffix through AddPapers after a prefix
// fit must land within a stated tolerance of the all-batch run. The
// quick scenario at PrefixFrac 0.95 measures a pairwise-F1 gap of ~0.11;
// the band below (gap ≤ 0.25, incremental F1 ≥ 0.70) has headroom for
// cross-architecture floating-point drift while still failing on any
// real regression of the §V-E path (a broken incremental scorer turns
// every streamed slot into a singleton and the gap jumps past 0.4).
func TestIncrementalWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick scenario; the pin test covers -short")
	}
	cfg := Quick()
	cfg.ReplayBatch = 64
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil {
		t.Fatal("scenario skipped the incremental path")
	}
	b, inc := res.Batch.Metrics, res.Incremental.Metrics
	t.Logf("batch F1=%.4f incremental F1=%.4f gap=%.4f", b.Pairwise.MicroF, inc.Pairwise.MicroF, res.PairwiseF1Gap)
	if res.PairwiseF1Gap > 0.25 {
		t.Errorf("incremental replay lost %.4f pairwise F1 vs batch (batch %.4f, incremental %.4f); tolerance 0.25",
			res.PairwiseF1Gap, b.Pairwise.MicroF, inc.Pairwise.MicroF)
	}
	if inc.Pairwise.MicroF < 0.70 {
		t.Errorf("incremental pairwise F1=%.4f below 0.70 floor", inc.Pairwise.MicroF)
	}
	if inc.Purity < 0.90 {
		t.Errorf("incremental purity=%.4f below 0.90: streamed slots are being merged into wrong authors", inc.Purity)
	}
	// Both paths score the same instances: the evaluation set is the full
	// corpus's ambiguous blocks regardless of how assignments were made.
	if b.Instances != inc.Instances || b.Blocks != inc.Blocks {
		t.Errorf("paths scored different evaluation sets: batch %d/%d, incremental %d/%d instances/blocks",
			b.Instances, b.Blocks, inc.Instances, inc.Blocks)
	}
	if b.Unlabeled != 0 || inc.Unlabeled != 0 {
		t.Errorf("synth corpora are fully labeled; excluded %d/%d slots", b.Unlabeled, inc.Unlabeled)
	}
	// Epoch churn: one publish per AddPapers batch.
	wantEpochs := (res.Incremental.StreamedPapers + cfg.ReplayBatch - 1) / cfg.ReplayBatch
	if res.Incremental.EpochPublishes != wantEpochs {
		t.Errorf("EpochPublishes=%d, want %d (%d streamed / batch %d)",
			res.Incremental.EpochPublishes, wantEpochs, res.Incremental.StreamedPapers, cfg.ReplayBatch)
	}
	if res.Incremental.PrefixPapers+res.Incremental.StreamedPapers != res.Papers {
		t.Errorf("prefix %d + streamed %d != corpus %d",
			res.Incremental.PrefixPapers, res.Incremental.StreamedPapers, res.Papers)
	}
	// Per-round curves: one entry per merge round, the last one equal to
	// the final batch metrics (the hook observed the final network).
	rounds := cfg.Core.MergeRounds
	if rounds < 1 {
		rounds = 1
	}
	if len(res.Batch.Rounds) != rounds {
		t.Fatalf("got %d round curves, want %d", len(res.Batch.Rounds), rounds)
	}
	last := res.Batch.Rounds[len(res.Batch.Rounds)-1].Metrics
	if last.Pairwise != b.Pairwise {
		t.Errorf("last round curve %+v != final batch metrics %+v", last.Pairwise, b.Pairwise)
	}
	// Refinement must never lose pairwise F1 across rounds on the quick
	// corpus (it exists to raise recall at held precision).
	for i := 1; i < len(res.Batch.Rounds); i++ {
		prev, cur := res.Batch.Rounds[i-1].Metrics, res.Batch.Rounds[i].Metrics
		if cur.Pairwise.MicroF < prev.Pairwise.MicroF-1e-9 {
			t.Errorf("round %d dropped pairwise F1: %.4f -> %.4f",
				i, prev.Pairwise.MicroF, cur.Pairwise.MicroF)
		}
	}
}

// TestEvaluateNetworkExcludesUnlabeled locks the exclusion contract at
// the scenario layer: author slots without ground truth (explicit
// UnknownAuthor or a fully unlabeled paper) are excluded from every
// metric — reassigning an unlabeled slot to a different cluster must not
// move any score, only the UnlabeledExcluded count reports it.
func TestEvaluateNetworkExcludesUnlabeled(t *testing.T) {
	build := func() *bib.Corpus {
		c := bib.NewCorpus(4)
		c.MustAdd(bib.Paper{Title: "alpha", Authors: []string{"x yan", "m wu"}, Truth: []bib.AuthorID{1, 7}})
		c.MustAdd(bib.Paper{Title: "beta", Authors: []string{"x yan"}, Truth: []bib.AuthorID{1}})
		c.MustAdd(bib.Paper{Title: "gamma", Authors: []string{"x yan"}, Truth: []bib.AuthorID{2}})
		// Slot with an explicit unknown label, and a fully unlabeled paper.
		c.MustAdd(bib.Paper{Title: "delta", Authors: []string{"x yan", "k ito"}, Truth: []bib.AuthorID{bib.UnknownAuthor, 9}})
		c.MustAdd(bib.Paper{Title: "epsilon", Authors: []string{"x yan"}})
		c.Freeze()
		return c
	}
	corpus := build()
	slot := func(p, i int) core.Slot { return core.Slot{Paper: bib.PaperID(p), Index: i} }
	assign := map[core.Slot]int{
		slot(0, 0): 10, slot(1, 0): 10, slot(2, 0): 11,
		slot(3, 0): 10, slot(4, 0): 10,
	}
	names := []string{"x yan"}
	got := EvaluateNetwork(corpus, &core.Network{SlotVertex: assign}, names)
	if got.Unlabeled != 2 {
		t.Fatalf("Unlabeled=%d, want 2 (one UnknownAuthor slot, one unlabeled paper)", got.Unlabeled)
	}
	if got.Instances != 3 {
		t.Fatalf("Instances=%d, want 3 labeled", got.Instances)
	}
	// Move both unlabeled slots to a fresh cluster: no metric may move.
	assign[slot(3, 0)] = 99
	assign[slot(4, 0)] = 42
	moved := EvaluateNetwork(corpus, &core.Network{SlotVertex: assign}, names)
	if got != moved {
		t.Errorf("reassigning unlabeled slots changed metrics:\n  was %+v\n  now %+v", got, moved)
	}
	// Perfect labeled clustering here: {p0,p1}=author 1 together, p2=author 2 alone.
	if got.Pairwise.MicroP != 1 || got.Pairwise.MicroR != 1 || got.Purity != 1 {
		t.Errorf("labeled subset should score perfectly, got %+v", got)
	}
}

// TestEvaluateNetworkUnassignedSlots covers the totality fallback: slots
// the network never assigned become distinct singletons, not a shared
// garbage cluster (which would fake recall).
func TestEvaluateNetworkUnassignedSlots(t *testing.T) {
	c := bib.NewCorpus(2)
	c.MustAdd(bib.Paper{Title: "a", Authors: []string{"j kim"}, Truth: []bib.AuthorID{5}})
	c.MustAdd(bib.Paper{Title: "b", Authors: []string{"j kim"}, Truth: []bib.AuthorID{5}})
	c.Freeze()
	got := EvaluateNetwork(c, &core.Network{}, []string{"j kim"})
	if got.Pairwise.MicroR != 0 || got.Pairwise.MicroF != 0 {
		t.Errorf("unassigned same-author slots must count as missed pairs: %+v", got.Pairwise)
	}
	if got.Purity != 1 {
		t.Errorf("singletons are pure, got purity=%v", got.Purity)
	}
}
