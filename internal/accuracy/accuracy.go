// Package accuracy is the end-to-end labeled evaluation scenario: it
// generates a ground-truth corpus, runs the full batch pipeline AND a
// split-corpus incremental replay (fit on a prefix, stream the rest
// through AddPapers), and scores both against truth with the
// streaming metrics layer of internal/eval — pairwise P/R/F1, B³ and
// cluster purity over every ambiguous name.
//
// This is the guard the perf trajectory cannot provide: the engine's
// bit-identity tests catch refactor drift but are blind to algorithmic
// changes that keep determinism while silently regressing
// disambiguation accuracy. The scenario's quick-corpus F1 is pinned by a
// tier-1 regression test; its scale curves are committed in
// BENCH_accuracy.json by cmd/benchjson -accuracy.
package accuracy

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/eval"
	"iuad/internal/experiments"
	"iuad/internal/synth"
)

// Config parameterizes one scenario run.
type Config struct {
	// Synth generates the labeled corpus.
	Synth synth.Config
	// Core parameterizes the pipeline under evaluation.
	Core core.Config
	// MinAuthorsPerName filters the evaluation name set: every name
	// carried by at least this many distinct true authors is scored
	// (2 = every genuinely ambiguous name; the paper's Table II regime).
	MinAuthorsPerName int
	// PrefixFrac is the fraction of the corpus (an insertion-order
	// prefix, "the database as of the fit") the incremental path fits in
	// batch before streaming the remainder through AddPapers. The
	// canonical scenario uses 0.95 — the §V-E regime where newly
	// published papers are a small stream against an established
	// database; single-paper slots carry far less merge evidence than a
	// batch refit, so the gap grows quickly with the streamed fraction
	// (~0.07 at 2% streamed, ~0.28 at 10% on the quick corpus). 0 skips
	// the incremental path.
	PrefixFrac float64
	// ReplayBatch is the AddPapers batch size of the incremental replay.
	// One batch is one epoch publish in the serving layer, so the batch
	// count is the scenario's epoch-churn number.
	ReplayBatch int
}

// Quick returns the scenario at the quick-corpus scale used by the
// tier-1 F1 pin test — the exact generator and pipeline
// parameterization of experiments.QuickOptions (the corpus the rest of
// the test suite calls the quick corpus), with the accuracy scenario's
// split-replay settings.
func Quick() Config {
	o := experiments.QuickOptions()
	return Config{
		Synth:             o.Synth,
		Core:              o.Core,
		MinAuthorsPerName: o.MinAuthorsPerName,
		PrefixFrac:        0.95,
		ReplayBatch:       256,
	}
}

// Scale returns the scenario at a target corpus size (papers), using the
// scale presets of internal/synth. Embedding training is the one knob
// shrunk relative to the paper-faithful defaults: SGNS over 10⁵+ titles
// at full dim/epochs dominates wall clock without moving relative
// accuracy, and the scenario measures disambiguation, not embeddings.
func Scale(targetPapers int, seed int64) Config {
	c := core.DefaultConfig()
	c.Workers = 1
	c.Embedding.Dim = 24
	c.Embedding.Epochs = 2
	c.SampleRate = 0.25
	return Config{
		Synth:             synth.ScaleConfig(targetPapers, seed),
		Core:              c,
		MinAuthorsPerName: 2,
		PrefixFrac:        0.95,
		ReplayBatch:       256,
	}
}

// RoundCurve is the accuracy of the batch path after one merge round
// (round 0 = initial decision, 1.. = refinement rounds).
type RoundCurve struct {
	Round   int                `json:"round"`
	Metrics eval.ClusterMetrics `json:"metrics"`
}

// PathResult scores one pipeline path (batch or incremental) with its
// resource profile.
type PathResult struct {
	Metrics eval.ClusterMetrics `json:"metrics"`
	// Rounds traces per-merge-round accuracy (batch path only).
	Rounds []RoundCurve `json:"rounds,omitempty"`
	// Vertices is the final GCN vertex count (conjectured authors).
	Vertices int `json:"vertices"`
	// WallNs is the path's wall time: full pipeline build for the batch
	// path; prefix build + replay for the incremental path.
	WallNs int64 `json:"wall_ns"`
	// TotalAllocBytes/TotalAllocs are the allocation deltas over the
	// path; HeapInUseAfter is the resident heap after a final GC — the
	// memory-behavior numbers the 10⁵-paper scales exist to watch.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	TotalAllocs     uint64 `json:"total_allocs"`
	HeapInUseAfter  uint64 `json:"heap_in_use_after"`
}

// IncrementalResult is the split-corpus replay path.
type IncrementalResult struct {
	PathResult
	PrefixPapers   int `json:"prefix_papers"`
	StreamedPapers int `json:"streamed_papers"`
	// EpochPublishes is the number of AddPapers batches — each is one
	// epoch publish when the stream rides the serving layer.
	EpochPublishes int `json:"epoch_publishes"`
	// ReplayNs is the streaming slice of WallNs (WallNs − prefix build).
	ReplayNs int64 `json:"replay_ns"`
}

// Result is one complete scenario run.
type Result struct {
	Papers         int `json:"papers"`
	Authors        int `json:"authors"`
	AmbiguousNames int `json:"ambiguous_names"`
	// DegreeSlope is the generated coauthor network's log-log degree
	// slope (scale-free check at the evaluated scale).
	DegreeSlope float64 `json:"degree_slope"`

	Batch       PathResult         `json:"batch"`
	Incremental *IncrementalResult `json:"incremental,omitempty"`
	// PairwiseF1Gap = batch MicroF − incremental MicroF: what streaming
	// the suffix instead of batch-fitting it costs. Positive means the
	// batch path is better.
	PairwiseF1Gap float64 `json:"pairwise_f1_gap,omitempty"`
}

// EvaluateNetwork scores net's slot assignments over the given names
// against corpus ground truth, one streaming block per name. Slots
// without labels are excluded (never zero-scored); slots the network has
// not assigned (ClusterOfSlot = -1) score as their own singletons, which
// cannot happen for either scenario path but keeps the helper total.
func EvaluateNetwork(corpus *bib.Corpus, net *core.Network, names []string) eval.ClusterMetrics {
	var acc eval.Accumulator
	var ins []eval.Instance
	next := -1 // distinct pseudo-cluster per unassigned slot
	for _, name := range names {
		ins = ins[:0]
		for _, pid := range corpus.PapersWithName(name) {
			p := corpus.Paper(pid)
			idx := p.AuthorIndex(name)
			cl := net.ClusterOfSlot(core.Slot{Paper: pid, Index: idx})
			if cl < 0 {
				cl = next
				next--
			}
			ins = append(ins, eval.Instance{Cluster: cl, Truth: int(p.TruthAt(idx))})
		}
		acc.AddBlock(ins)
	}
	return acc.Metrics()
}

// Run executes the scenario: generate, batch-evaluate (with per-round
// curves), then split-replay-evaluate.
func Run(cfg Config) (*Result, error) {
	if cfg.MinAuthorsPerName < 2 {
		cfg.MinAuthorsPerName = 2
	}
	d := synth.Generate(cfg.Synth)
	names := d.AmbiguousNames(cfg.MinAuthorsPerName)
	if len(names) == 0 {
		return nil, fmt.Errorf("accuracy: corpus has no ambiguous names to evaluate")
	}
	slope, err := d.DegreeSlope()
	if err != nil {
		return nil, fmt.Errorf("accuracy: degree slope: %w", err)
	}
	res := &Result{
		Papers:         d.Corpus.Len(),
		Authors:        len(d.Authors),
		AmbiguousNames: len(names),
		DegreeSlope:    slope,
	}

	// Batch path: the full two-stage pipeline, per-round accuracy via
	// RoundHook (evaluating inside the hook is read-only).
	batchCfg := cfg.Core
	batchCfg.RoundHook = func(round int, net *core.Network) {
		res.Batch.Rounds = append(res.Batch.Rounds, RoundCurve{
			Round:   round,
			Metrics: EvaluateNetwork(d.Corpus, net, names),
		})
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	pl, err := core.Run(d.Corpus, batchCfg)
	if err != nil {
		return nil, fmt.Errorf("accuracy: batch pipeline: %w", err)
	}
	res.Batch.WallNs = time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&after)
	res.Batch.TotalAllocBytes = after.TotalAlloc - before.TotalAlloc
	res.Batch.TotalAllocs = after.Mallocs - before.Mallocs
	res.Batch.Metrics = EvaluateNetwork(d.Corpus, pl.GCN, names)
	res.Batch.Vertices = pl.GCN.VertexCount()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(pl)
	res.Batch.HeapInUseAfter = after.HeapInuse

	if cfg.PrefixFrac > 0 && cfg.PrefixFrac < 1 {
		inc, err := runIncremental(cfg, d, names)
		if err != nil {
			return nil, err
		}
		res.Incremental = inc
		res.PairwiseF1Gap = res.Batch.Metrics.Pairwise.MicroF - inc.Metrics.Pairwise.MicroF
	}
	return res, nil
}

// runIncremental fits the pipeline on an insertion-order prefix of the
// corpus and streams the remaining papers through AddPapers in batches,
// then scores the final assignments of ALL papers (prefix + streamed)
// against truth. Streamed paper IDs continue the prefix numbering in
// corpus order, so full-corpus slots address the incremental network
// directly.
func runIncremental(cfg Config, d *synth.Dataset, names []string) (*IncrementalResult, error) {
	total := d.Corpus.Len()
	prefix := int(float64(total) * cfg.PrefixFrac)
	if prefix < 1 || prefix >= total {
		return nil, fmt.Errorf("accuracy: PrefixFrac=%v leaves no stream (corpus %d)", cfg.PrefixFrac, total)
	}
	batch := cfg.ReplayBatch
	if batch < 1 {
		batch = 256
	}
	sub := d.Corpus.Subset(prefix)

	inc := &IncrementalResult{PrefixPapers: prefix, StreamedPapers: total - prefix}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	pl, err := core.Run(sub, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("accuracy: prefix pipeline (%d papers): %w", prefix, err)
	}
	replayStart := time.Now()
	stream := d.Corpus.Papers()[prefix:]
	for off := 0; off < len(stream); off += batch {
		end := off + batch
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := pl.AddPapers(context.Background(), stream[off:end]); err != nil {
			return nil, fmt.Errorf("accuracy: replay batch at %d: %w", off, err)
		}
		inc.EpochPublishes++
	}
	inc.WallNs = time.Since(t0).Nanoseconds()
	inc.ReplayNs = time.Since(replayStart).Nanoseconds()
	runtime.ReadMemStats(&after)
	inc.TotalAllocBytes = after.TotalAlloc - before.TotalAlloc
	inc.TotalAllocs = after.Mallocs - before.Mallocs
	// Evaluate over the FULL corpus's name blocks: prefix slots keep
	// their IDs in the subset, and streamed slots were numbered
	// prefix..total-1 in corpus order by AddPapers, so every full-corpus
	// slot resolves in the incremental network.
	inc.Metrics = EvaluateNetwork(d.Corpus, pl.GCN, names)
	inc.Vertices = pl.GCN.VertexCount()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(pl)
	inc.HeapInUseAfter = after.HeapInuse
	return inc, nil
}
