// Package fpgrowth implements the FP-growth frequent-itemset miner of Han
// et al. (SIGMOD 2000), which the paper uses (§IV-C, Step I) to find all
// η-stable collaborative relations — name pairs co-occurring at least η
// times across co-author lists.
//
// Two entry points are provided:
//
//   - Mine: the general FP-growth algorithm (FP-tree + conditional
//     pattern bases) returning all frequent itemsets of any length.
//   - FrequentPairs: a specialized direct counter for 2-itemsets, the
//     only pattern length stage 1 of IUAD consumes. It is considerably
//     faster and allocates no tree.
//
// Both operate on string items; Mine interns items internally.
package fpgrowth

import (
	"sort"
)

// Itemset is a frequent itemset with its absolute support count. Items
// are sorted lexicographically.
type Itemset struct {
	Items   []string
	Support int
}

// Pair is an unordered item pair with A < B lexicographically.
type Pair struct {
	A, B string
}

// MakePair normalizes the order of a pair.
func MakePair(a, b string) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{a, b}
}

// FrequentPairs counts the co-occurrence frequency of every unordered
// item pair across the transactions and returns those with support ≥
// minSupport. Duplicate items within one transaction are counted once.
func FrequentPairs(transactions [][]string, minSupport int) map[Pair]int {
	if minSupport < 1 {
		minSupport = 1
	}
	counts := make(map[Pair]int)
	for _, tx := range transactions {
		items := dedup(tx)
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				counts[MakePair(items[i], items[j])]++
			}
		}
	}
	for p, c := range counts {
		if c < minSupport {
			delete(counts, p)
		}
	}
	return counts
}

// PairFrequencies returns the full pair-frequency histogram (support ≥ 1),
// used by the Fig. 3(b) descriptive analysis.
func PairFrequencies(transactions [][]string) map[Pair]int {
	return FrequentPairs(transactions, 1)
}

func dedup(tx []string) []string {
	if len(tx) < 2 {
		return tx
	}
	out := append([]string(nil), tx...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// fpNode is a node of the FP-tree.
type fpNode struct {
	item     int32 // interned item ID; -1 at the root
	count    int
	parent   *fpNode
	children map[int32]*fpNode
	next     *fpNode // header-table chain
}

// fpTree bundles the root with its header table.
type fpTree struct {
	root   *fpNode
	heads  map[int32]*fpNode // item -> first node in chain
	counts map[int32]int     // item -> total support in this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:   &fpNode{item: -1, children: make(map[int32]*fpNode)},
		heads:  make(map[int32]*fpNode),
		counts: make(map[int32]int),
	}
}

// insert adds one (ordered) transaction with multiplicity count.
func (t *fpTree) insert(items []int32, count int) {
	cur := t.root
	for _, it := range items {
		child := cur.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: cur, children: make(map[int32]*fpNode)}
			cur.children[it] = child
			child.next = t.heads[it]
			t.heads[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// Mine runs FP-growth and returns every itemset with support ≥ minSupport
// and size ≥ minLen (minLen ≥ 1). Results are in no particular order.
//
// maxLen > 0 truncates pattern growth (e.g. maxLen=2 mines exactly the
// η-SCR candidates); 0 means unbounded.
func Mine(transactions [][]string, minSupport, minLen, maxLen int) []Itemset {
	if minSupport < 1 {
		minSupport = 1
	}
	if minLen < 1 {
		minLen = 1
	}

	// Pass 1: global item supports, with interning.
	intern := make(map[string]int32)
	var names []string
	id := func(s string) int32 {
		if v, ok := intern[s]; ok {
			return v
		}
		v := int32(len(names))
		intern[s] = v
		names = append(names, s)
		return v
	}
	support := make(map[int32]int)
	encoded := make([][]int32, 0, len(transactions))
	for _, tx := range transactions {
		items := dedup(tx)
		enc := make([]int32, 0, len(items))
		for _, s := range items {
			v := id(s)
			support[v]++
			enc = append(enc, v)
		}
		encoded = append(encoded, enc)
	}

	// Pass 2: build the FP-tree with infrequent items dropped and items
	// ordered by descending global support (ties by ID for determinism).
	less := func(a, b int32) bool {
		if support[a] != support[b] {
			return support[a] > support[b]
		}
		return a < b
	}
	tree := newFPTree()
	for _, enc := range encoded {
		kept := enc[:0]
		for _, v := range enc {
			if support[v] >= minSupport {
				kept = append(kept, v)
			}
		}
		sort.Slice(kept, func(i, j int) bool { return less(kept[i], kept[j]) })
		if len(kept) > 0 {
			tree.insert(kept, 1)
		}
	}

	var out []Itemset
	var suffix []int32
	var grow func(t *fpTree)
	grow = func(t *fpTree) {
		// Items of this conditional tree, in ascending support order so
		// the recursion peels the least frequent first (classic order).
		items := make([]int32, 0, len(t.counts))
		for it, c := range t.counts {
			if c >= minSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool { return !less(items[i], items[j]) })

		for _, it := range items {
			suffix = append(suffix, it)
			if len(suffix) >= minLen {
				set := make([]string, len(suffix))
				for i, v := range suffix {
					set[i] = names[v]
				}
				sort.Strings(set)
				out = append(out, Itemset{Items: set, Support: t.counts[it]})
			}
			if maxLen == 0 || len(suffix) < maxLen {
				// Build the conditional tree for this item.
				cond := newFPTree()
				for node := t.heads[it]; node != nil; node = node.next {
					var path []int32
					for p := node.parent; p != nil && p.item != -1; p = p.parent {
						path = append(path, p.item)
					}
					// path is leaf→root; reverse to root→leaf.
					for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
						path[l], path[r] = path[r], path[l]
					}
					if len(path) > 0 {
						cond.insert(path, node.count)
					}
				}
				// Prune infrequent items from the conditional tree counts;
				// insert kept them all, so filter in grow via counts check.
				if len(cond.counts) > 0 {
					grow(cond)
				}
			}
			suffix = suffix[:len(suffix)-1]
		}
	}
	grow(tree)
	return out
}

// SortItemsets orders itemsets by descending support, then by items, for
// deterministic output in reports and tests.
func SortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Support != sets[j].Support {
			return sets[i].Support > sets[j].Support
		}
		a, b := sets[i].Items, sets[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
