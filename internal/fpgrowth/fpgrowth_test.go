package fpgrowth

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample is the transaction set from Fig. 2 of the paper:
// p1..p8 with their co-author lists.
var paperExample = [][]string{
	{"a", "b", "c", "d"}, // p1
	{"a", "c", "d"},      // p2
	{"a", "b", "c"},      // p3
	{"a", "b", "c"},      // p4
	{"b", "e"},           // p5
	{"b", "e"},           // p6
	{"b", "f"},           // p7
	{"b", "g"},           // p8
}

func TestFrequentPairsPaperExample(t *testing.T) {
	pairs := FrequentPairs(paperExample, 2)
	want := map[Pair]int{
		{"a", "b"}: 3,
		{"a", "c"}: 4,
		{"a", "d"}: 2,
		{"b", "c"}: 3,
		{"c", "d"}: 2,
		{"b", "e"}: 2,
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("FrequentPairs=%v,\nwant %v", pairs, want)
	}
}

func TestFrequentPairsDedupWithinTransaction(t *testing.T) {
	pairs := FrequentPairs([][]string{{"x", "y", "x"}}, 1)
	if pairs[MakePair("x", "y")] != 1 {
		t.Fatalf("duplicate items inflated support: %v", pairs)
	}
}

func TestMakePairOrders(t *testing.T) {
	if MakePair("z", "a") != (Pair{"a", "z"}) {
		t.Fatal("MakePair does not normalize")
	}
	if MakePair("a", "z") != (Pair{"a", "z"}) {
		t.Fatal("MakePair broke ordered input")
	}
}

func TestMineSingletons(t *testing.T) {
	sets := Mine(paperExample, 4, 1, 1)
	got := map[string]int{}
	for _, s := range sets {
		got[strings.Join(s.Items, ",")] = s.Support
	}
	want := map[string]int{"a": 4, "b": 7, "c": 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("singletons=%v, want %v", got, want)
	}
}

func TestMinePairsMatchFrequentPairs(t *testing.T) {
	for _, minSup := range []int{1, 2, 3, 4} {
		sets := Mine(paperExample, minSup, 2, 2)
		got := map[Pair]int{}
		for _, s := range sets {
			if len(s.Items) != 2 {
				t.Fatalf("maxLen=2 returned %v", s.Items)
			}
			got[MakePair(s.Items[0], s.Items[1])] = s.Support
		}
		want := FrequentPairs(paperExample, minSup)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minSup=%d: Mine=%v, FrequentPairs=%v", minSup, got, want)
		}
	}
}

func TestMineTriples(t *testing.T) {
	sets := Mine(paperExample, 3, 3, 0)
	// {a,b,c} appears in p1,p3,p4 → support 3.
	found := false
	for _, s := range sets {
		if reflect.DeepEqual(s.Items, []string{"a", "b", "c"}) {
			found = true
			if s.Support != 3 {
				t.Fatalf("{a,b,c} support=%d, want 3", s.Support)
			}
		}
	}
	if !found {
		t.Fatalf("{a,b,c} not mined; got %v", sets)
	}
}

// bruteForce enumerates all itemsets up to maxLen by counting subsets.
func bruteForce(transactions [][]string, minSupport, minLen, maxLen int) map[string]int {
	counts := map[string]int{}
	var rec func(items []string, start int, cur []string)
	universe := map[string]struct{}{}
	for _, tx := range transactions {
		for _, it := range tx {
			universe[it] = struct{}{}
		}
	}
	var all []string
	for it := range universe {
		all = append(all, it)
	}
	sort.Strings(all)
	countOf := func(set []string) int {
		n := 0
		for _, tx := range transactions {
			have := map[string]bool{}
			for _, it := range tx {
				have[it] = true
			}
			ok := true
			for _, s := range set {
				if !have[s] {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		return n
	}
	rec = func(items []string, start int, cur []string) {
		if len(cur) >= minLen {
			if c := countOf(cur); c >= minSupport {
				counts[strings.Join(cur, ",")] = c
			}
		}
		if maxLen > 0 && len(cur) >= maxLen {
			return
		}
		for i := start; i < len(items); i++ {
			rec(items, i+1, append(cur, items[i]))
		}
	}
	rec(all, 0, nil)
	return counts
}

// Property: FP-growth output matches brute-force subset counting on
// random small transaction databases.
func TestMineAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := []string{"a", "b", "c", "d", "e"}
		nTx := 1 + rng.Intn(12)
		txs := make([][]string, nTx)
		for i := range txs {
			k := 1 + rng.Intn(4)
			perm := rng.Perm(len(items))
			for _, p := range perm[:k] {
				txs[i] = append(txs[i], items[p])
			}
		}
		minSup := 1 + rng.Intn(3)
		got := map[string]int{}
		for _, s := range Mine(txs, minSup, 1, 0) {
			key := strings.Join(s.Items, ",")
			if _, dup := got[key]; dup {
				t.Logf("seed %d: duplicate itemset %q", seed, key)
				return false
			}
			got[key] = s.Support
		}
		want := bruteForce(txs, minSup, 1, 0)
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d:\ntxs=%v\ngot= %v\nwant=%v", seed, txs, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	if got := Mine(nil, 2, 1, 0); len(got) != 0 {
		t.Fatalf("Mine(nil)=%v", got)
	}
	if got := Mine([][]string{{}, {}}, 1, 1, 0); len(got) != 0 {
		t.Fatalf("Mine(empty txs)=%v", got)
	}
	if got := FrequentPairs([][]string{{"only"}}, 1); len(got) != 0 {
		t.Fatalf("single-item tx produced pairs: %v", got)
	}
	// minSupport below 1 is clamped.
	if got := Mine([][]string{{"a"}}, 0, 1, 0); len(got) != 1 || got[0].Support != 1 {
		t.Fatalf("clamped minSupport: %v", got)
	}
}

func TestSortItemsets(t *testing.T) {
	sets := []Itemset{
		{Items: []string{"b"}, Support: 1},
		{Items: []string{"a", "b"}, Support: 3},
		{Items: []string{"a"}, Support: 3},
		{Items: []string{"c"}, Support: 2},
	}
	SortItemsets(sets)
	var keys []string
	for _, s := range sets {
		keys = append(keys, fmt.Sprintf("%s:%d", strings.Join(s.Items, ","), s.Support))
	}
	want := []string{"a:3", "a,b:3", "c:2", "b:1"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("sorted=%v, want %v", keys, want)
	}
}

func TestPairFrequenciesHistogramShape(t *testing.T) {
	freq := PairFrequencies(paperExample)
	// Every co-occurring pair appears, including support-1 ones.
	if freq[MakePair("b", "f")] != 1 || freq[MakePair("b", "g")] != 1 {
		t.Fatalf("support-1 pairs missing: %v", freq)
	}
	if len(freq) != 9 {
		t.Fatalf("distinct pairs=%d, want 9", len(freq))
	}
}
