package ingestq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iuad/internal/bib"
	"iuad/internal/core"
)

// mkPapers builds n distinguishable one-author papers.
func mkPapers(tag string, n int) []bib.Paper {
	out := make([]bib.Paper, n)
	for i := range out {
		out[i] = bib.Paper{Title: fmt.Sprintf("%s-%d", tag, i), Authors: []string{"Q Tester"}}
	}
	return out
}

// seqCommitter is a test CommitFunc that assigns each paper a global
// ingest sequence number (as Assignment.Vertex), records every commit
// call, and detects overlapping commits.
type seqCommitter struct {
	mu      sync.Mutex
	seq     int
	calls   [][]string // titles per commit call
	running atomic.Int32
	gate    chan struct{} // when non-nil, each commit waits here first
	fail    func(title string) error
}

func (c *seqCommitter) commit(batch []bib.Paper) ([][]core.Assignment, error) {
	if c.running.Add(1) != 1 {
		panic("overlapping commits")
	}
	defer c.running.Add(-1)
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	titles := make([]string, 0, len(batch))
	out := make([][]core.Assignment, 0, len(batch))
	for _, p := range batch {
		if c.fail != nil {
			if err := c.fail(p.Title); err != nil {
				c.calls = append(c.calls, titles)
				return out, err
			}
		}
		titles = append(titles, p.Title)
		out = append(out, []core.Assignment{{Vertex: c.seq}})
		c.seq++
	}
	c.calls = append(c.calls, titles)
	return out, nil
}

func TestSubmitCommitsSerially(t *testing.T) {
	c := &seqCommitter{}
	q := New(c.commit, Config{})
	res, err := q.Submit(context.Background(), mkPapers("a", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0][0].Vertex != 0 || res[2][0].Vertex != 2 {
		t.Fatalf("results %+v", res)
	}
	if res2, err := q.Submit(context.Background(), mkPapers("b", 2)); err != nil || res2[0][0].Vertex != 3 {
		t.Fatalf("second submit %+v, %v", res2, err)
	}
	st := q.Stats()
	if st.AdmittedBatches != 2 || st.AdmittedPapers != 5 || st.Commits != 2 || st.Depth != 0 {
		t.Fatalf("stats %+v", st)
	}
	if nil2, err := q.Submit(context.Background(), nil); err != nil || nil2 != nil {
		t.Fatalf("empty submit %+v, %v", nil2, err)
	}
}

// TestGroupCommit pins the tentpole behavior: batches parked while a
// commit is in flight are concatenated — in arrival order — into ONE
// commit call, and each submitter gets exactly its own slice of the
// results.
func TestGroupCommit(t *testing.T) {
	c := &seqCommitter{gate: make(chan struct{})}
	q := New(c.commit, Config{})

	type result struct {
		res [][]core.Assignment
		err error
	}
	leader := make(chan result, 1)
	go func() {
		res, err := q.Submit(context.Background(), mkPapers("leader", 2))
		leader <- result{res, err}
	}()
	// Wait until the leader's commit is actually running, then park
	// three followers in deterministic arrival order.
	waitFor(t, func() bool { return c.running.Load() == 1 })
	followers := make([]chan result, 3)
	for i := range followers {
		followers[i] = make(chan result, 1)
		tag := fmt.Sprintf("f%d", i)
		n := i + 1 // 1, 2, 3 papers
		waitDepth := q.Stats().Depth
		go func(ch chan result) {
			res, err := q.Submit(context.Background(), mkPapers(tag, n))
			ch <- result{res, err}
		}(followers[i])
		waitFor(t, func() bool { return q.Stats().Depth > waitDepth })
	}

	c.gate <- struct{}{} // release the leader's commit
	c.gate <- struct{}{} // ... and the grouped follower commit
	lr := <-leader
	if lr.err != nil || len(lr.res) != 2 {
		t.Fatalf("leader %+v", lr)
	}
	next := 2 // leader consumed sequence numbers 0,1
	for i, ch := range followers {
		fr := <-ch
		if fr.err != nil || len(fr.res) != i+1 {
			t.Fatalf("follower %d: %+v", i, fr)
		}
		for _, as := range fr.res {
			if as[0].Vertex != next {
				t.Fatalf("follower %d got sequence %d, want %d (arrival order broken)", i, as[0].Vertex, next)
			}
			next++
		}
	}
	if len(c.calls) != 2 {
		t.Fatalf("%d commit calls, want 2 (1 leader + 1 group): %v", len(c.calls), c.calls)
	}
	if len(c.calls[1]) != 6 {
		t.Fatalf("group commit carried %d papers, want 6: %v", len(c.calls[1]), c.calls[1])
	}
	st := q.Stats()
	if st.Commits != 2 || st.GroupedBatches != 3 || st.MaxGroupBatches != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.PublishLag.Count != 4 || st.QueueWait.Count != 4 {
		t.Fatalf("latency counts %+v", st)
	}
}

// TestOverloadSheds pins admission control: once queued papers exceed
// MaxQueued, Submits are rejected with *OverloadedError carrying the
// Retry-After hint, and the queue depth never exceeds the bound.
func TestOverloadSheds(t *testing.T) {
	c := &seqCommitter{gate: make(chan struct{})}
	q := New(c.commit, Config{MaxQueued: 6, RetryAfter: 250 * time.Millisecond})

	var wg sync.WaitGroup
	start := func(tag string, n int) {
		wg.Add(1)
		before := q.Stats().AdmittedBatches
		go func() {
			defer wg.Done()
			if _, err := q.Submit(context.Background(), mkPapers(tag, n)); err != nil {
				t.Errorf("%s: %v", tag, err)
			}
		}()
		waitFor(t, func() bool { return q.Stats().AdmittedBatches > before })
	}
	start("leader", 2) // in flight (depth 2)
	waitFor(t, func() bool { return c.running.Load() == 1 })
	start("parked", 4) // depth 6 == limit

	_, err := q.Submit(context.Background(), mkPapers("shed", 1))
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("overflow submit = %v, want *OverloadedError", err)
	}
	if ov.Depth != 6 || ov.Limit != 6 || ov.RetryAfter != 250*time.Millisecond {
		t.Fatalf("overload detail %+v", ov)
	}
	st := q.Stats()
	if st.Depth != 6 || st.HighWater != 6 || st.RejectedBatches != 1 {
		t.Fatalf("stats %+v", st)
	}

	close(c.gate) // let everything drain
	wg.Wait()
	if st := q.Stats(); st.Depth != 0 || st.AdmittedPapers != 6 {
		t.Fatalf("post-drain stats %+v", st)
	}
	// The shed batch was never ingested.
	for _, call := range c.calls {
		for _, title := range call {
			if title == "shed-0" {
				t.Fatal("rejected batch reached the committer")
			}
		}
	}
}

// TestOversizedBatchAdmittedWhenIdle: a batch larger than MaxQueued
// still commits when the queue is empty — the bound sheds load, it
// does not deadlock big serial clients.
func TestOversizedBatchAdmittedWhenIdle(t *testing.T) {
	c := &seqCommitter{}
	q := New(c.commit, Config{MaxQueued: 4})
	if _, err := q.Submit(context.Background(), mkPapers("big", 10)); err != nil {
		t.Fatal(err)
	}
}

// TestCancelWithdraws pins the cancellation contract: a context
// cancelled while its batch is parked withdraws the batch — never
// ingested, no partial epoch — and Submit returns the ctx error
// wrapped in *CanceledError.
func TestCancelWithdraws(t *testing.T) {
	c := &seqCommitter{gate: make(chan struct{})}
	q := New(c.commit, Config{})

	done := make(chan error, 1)
	go func() {
		_, err := q.Submit(context.Background(), mkPapers("leader", 1))
		done <- err
	}()
	waitFor(t, func() bool { return c.running.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, err := q.Submit(ctx, mkPapers("doomed", 2))
		parked <- err
	}()
	waitFor(t, func() bool { return q.Stats().Depth == 3 })
	cancel()
	err := <-parked // must return without the leader ever finishing
	var ce *CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v, want *CanceledError wrapping context.Canceled", err)
	}
	if st := q.Stats(); st.Depth != 1 || st.CanceledBatches != 1 {
		t.Fatalf("stats after withdraw %+v", st)
	}

	close(c.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, call := range c.calls {
		for _, title := range call {
			if title == "doomed-0" || title == "doomed-1" {
				t.Fatal("withdrawn batch reached the committer")
			}
		}
	}
}

func TestAlreadyCancelled(t *testing.T) {
	c := &seqCommitter{}
	q := New(c.commit, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := q.Submit(ctx, mkPapers("pre", 1))
	var ce *CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with dead ctx = %v", err)
	}
	if len(c.calls) != 0 {
		t.Fatal("dead-ctx batch reached the committer")
	}
	if st := q.Stats(); st.AdmittedBatches != 0 || st.CanceledBatches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelAfterScoopCommits: once the leader has scooped a batch
// into a commit group, cancellation no longer withdraws it — the
// batch publishes atomically and Submit reports the real result.
func TestCancelAfterScoopCommits(t *testing.T) {
	c := &seqCommitter{gate: make(chan struct{})}
	q := New(c.commit, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res [][]core.Assignment
	var err error
	go func() {
		defer close(done)
		res, err = q.Submit(ctx, mkPapers("inflight", 2))
	}()
	waitFor(t, func() bool { return c.running.Load() == 1 }) // scooped: it IS the leader
	cancel()
	close(c.gate)
	<-done
	if err != nil || len(res) != 2 {
		t.Fatalf("in-flight cancel: res %+v err %v", res, err)
	}
}

// TestCloseDrains pins the shutdown contract: Close stops admission
// (ErrClosed) and blocks until every admitted batch has committed.
func TestCloseDrains(t *testing.T) {
	c := &seqCommitter{gate: make(chan struct{})}
	q := New(c.commit, Config{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		before := q.Stats().AdmittedBatches
		go func(i int) {
			defer wg.Done()
			if _, err := q.Submit(context.Background(), mkPapers(fmt.Sprintf("d%d", i), 2)); err != nil {
				t.Errorf("drain batch %d: %v", i, err)
			}
		}(i)
		waitFor(t, func() bool { return q.Stats().AdmittedBatches > before })
	}
	closed := make(chan struct{})
	go func() { q.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with batches still queued")
	case <-time.After(20 * time.Millisecond):
	}
	close(c.gate)
	<-closed
	wg.Wait()
	if st := q.Stats(); st.Depth != 0 || st.AdmittedPapers != 6 {
		t.Fatalf("post-close stats %+v", st)
	}
	if _, err := q.Submit(context.Background(), mkPapers("late", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

// TestPartialCommitErrorDistribution: when the committer fails
// mid-group, waiters fully inside the committed prefix succeed, the
// waiter cut by the boundary gets its prefix plus the error, and
// waiters beyond it get the error alone.
func TestPartialCommitErrorDistribution(t *testing.T) {
	boom := errors.New("poison paper")
	c := &seqCommitter{gate: make(chan struct{}), fail: func(title string) error {
		if title == "w1-1" {
			return boom
		}
		return nil
	}}
	q := New(c.commit, Config{})
	type result struct {
		res [][]core.Assignment
		err error
	}
	chans := make([]chan result, 4)
	lead := make(chan result, 1)
	go func() {
		res, err := q.Submit(context.Background(), mkPapers("lead", 1))
		lead <- result{res, err}
	}()
	waitFor(t, func() bool { return c.running.Load() == 1 })
	for i, n := range []int{2, 2, 1} { // w0 ok, w1 poisoned at its 2nd paper, w2 starved
		chans[i] = make(chan result, 1)
		tag := fmt.Sprintf("w%d", i)
		before := q.Stats().AdmittedBatches
		go func(ch chan result, n int) {
			res, err := q.Submit(context.Background(), mkPapers(tag, n))
			ch <- result{res, err}
		}(chans[i], n)
		waitFor(t, func() bool { return q.Stats().AdmittedBatches > before })
	}
	close(c.gate)
	if lr := <-lead; lr.err != nil {
		t.Fatal(lr.err)
	}
	r0 := <-chans[0]
	if r0.err != nil || len(r0.res) != 2 {
		t.Fatalf("w0 (before the poison) %+v", r0)
	}
	r1 := <-chans[1]
	if !errors.Is(r1.err, boom) || len(r1.res) != 1 {
		t.Fatalf("w1 (cut by the poison) res=%d err=%v", len(r1.res), r1.err)
	}
	r2 := <-chans[2]
	if !errors.Is(r2.err, boom) || len(r2.res) != 0 {
		t.Fatalf("w2 (beyond the poison) res=%d err=%v", len(r2.res), r2.err)
	}
}

// TestConcurrentSubmitters is the -race exercise: many goroutines
// hammer the queue; every admitted paper is committed exactly once,
// commits never overlap (seqCommitter panics if they do), and each
// batch's sequence numbers are contiguous (arrival order preserved
// inside every group).
func TestConcurrentSubmitters(t *testing.T) {
	c := &seqCommitter{}
	q := New(c.commit, Config{MaxQueued: 1 << 20}) // no shedding: count conservation
	const goroutines, batches, perBatch = 8, 25, 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				res, err := q.Submit(context.Background(), mkPapers(fmt.Sprintf("g%d-b%d", g, b), perBatch))
				if err != nil {
					t.Errorf("g%d b%d: %v", g, b, err)
					return
				}
				for i := 1; i < len(res); i++ {
					if res[i][0].Vertex != res[i-1][0].Vertex+1 {
						t.Errorf("batch split across commits: %d then %d", res[i-1][0].Vertex, res[i][0].Vertex)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := q.Stats()
	want := int64(goroutines * batches * perBatch)
	if st.AdmittedPapers != want || st.Depth != 0 {
		t.Fatalf("stats %+v, want %d papers", st, want)
	}
	total := 0
	for _, call := range c.calls {
		total += len(call)
	}
	if int64(total) != want {
		t.Fatalf("committed %d papers, admitted %d", total, want)
	}
}

// waitFor polls cond with a deadline — the test-side sync primitive
// for crossing goroutine boundaries without sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for condition")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
