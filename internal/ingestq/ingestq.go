// Package ingestq is the admission-control and group-commit layer in
// front of the serialized ingest path (iuad.Service.AddPapers).
//
// The bottom-up pipeline's write path is serialized by construction —
// that is what keeps assignments bit-identical to a serial paper
// stream — so under bursty traffic the only choices are to queue
// unboundedly (OOM), block arbitrarily (latency collapse), or admit a
// bounded amount of work and shed the rest. The queue implements the
// third, plus group commit so the bound is rarely hit:
//
//   - Admission control: the queue tracks the number of papers
//     admitted but not yet committed (the depth). A batch that would
//     push the depth past MaxQueued is rejected immediately with
//     *OverloadedError carrying a Retry-After hint — the caller maps
//     it to HTTP 429. Heap use is therefore bounded by MaxQueued
//     papers regardless of offered load.
//
//   - Group commit: the first admitted batch becomes the leader and
//     runs the commit; batches arriving while a commit is in flight
//     park as followers. When the leader finishes it scoops every
//     parked batch — in arrival order — into ONE concatenated commit:
//     one serialized core-ingest pass, one epoch publish. Because the
//     concatenation preserves arrival order and the commit function
//     ingests serially, grouped results are bit-identical to the same
//     batches committed one by one.
//
//   - Cancellation: a context cancelled while its batch is still
//     parked withdraws the batch — none of its papers are ever
//     ingested, no partial epoch exists — and Submit returns the
//     ctx error wrapped in *CanceledError. Once a batch is scooped
//     into a commit group it is past the point of no return: the
//     commit runs to completion (publishing the batch atomically)
//     even if the client has gone away.
//
//   - Drain: Close stops admission (further Submits fail with
//     ErrClosed) and blocks until every already-admitted batch has
//     committed — the graceful-shutdown contract: stop admitting,
//     flush the queue, then snapshot.
//
// See DESIGN.md §12 for the admit → group-commit → publish → drain
// state machine.
package ingestq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iuad/internal/bib"
	"iuad/internal/core"
	"iuad/internal/hdrhist"
)

// OverloadedError is the admission-control rejection: the queue is at
// its high-water mark and the batch was not admitted (nothing was
// ingested). RetryAfter is the server's backoff hint.
type OverloadedError struct {
	// Depth is the queued paper count at rejection time; Limit the
	// configured high-water mark.
	Depth, Limit int
	RetryAfter   time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("ingestq: overloaded: %d papers queued (limit %d), retry after %s",
		e.Depth, e.Limit, e.RetryAfter)
}

// CanceledError reports that the batch's context was cancelled before
// the batch reached a commit group: none of its papers were ingested
// and no epoch carries any part of it. Unwrap yields the ctx error
// (context.Canceled or context.DeadlineExceeded).
type CanceledError struct{ Err error }

func (e *CanceledError) Error() string {
	return "ingestq: batch withdrawn before commit: " + e.Err.Error()
}
func (e *CanceledError) Unwrap() error { return e.Err }

// ErrClosed is returned by Submit after Close has stopped admission.
var ErrClosed = errors.New("ingestq: queue is closed")

// CommitFunc applies one concatenated batch to the underlying store
// and publishes it as one epoch. It is only ever called from one
// goroutine at a time (the current leader). On error it may have
// committed a prefix; len(result) reports how many papers of the
// batch made it in.
type CommitFunc func(batch []bib.Paper) ([][]core.Assignment, error)

// Config parameterizes a Queue. Zero values take the defaults.
type Config struct {
	// MaxQueued is the admission high-water mark in papers (admitted
	// and not yet committed). Default 1024. A batch is always admitted
	// when the queue is empty, even if larger than MaxQueued, so a
	// lone oversized batch makes progress instead of being rejected
	// forever.
	MaxQueued int

	// MaxGroup caps the papers one group commit concatenates (bounds
	// the latency a parked batch can add to the batches behind it).
	// Default 512.
	MaxGroup int

	// RetryAfter is the backoff hint carried by OverloadedError.
	// Default 1s.
	RetryAfter time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxQueued <= 0 {
		out.MaxQueued = 1024
	}
	if out.MaxGroup <= 0 {
		out.MaxGroup = 512
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	return out
}

// Stats is the queue's point-in-time accounting, JSON-shaped for the
// /metrics endpoint.
type Stats struct {
	// Depth is the current queued paper count; HighWater its maximum
	// ever; Limit the admission bound.
	Depth     int64 `json:"depth"`
	HighWater int64 `json:"high_water"`
	Limit     int64 `json:"limit"`

	// AdmittedBatches/AdmittedPapers count admissions;
	// RejectedBatches admission-control rejections (429s);
	// CanceledBatches batches withdrawn by context cancellation
	// before commit.
	AdmittedBatches int64 `json:"admitted_batches"`
	AdmittedPapers  int64 `json:"admitted_papers"`
	RejectedBatches int64 `json:"rejected_batches"`
	CanceledBatches int64 `json:"canceled_batches"`

	// Commits counts commit calls (== epoch publishes when every
	// commit publishes); FailedCommits the subset that returned an
	// error (e.g. a journal append refused durability — every waiter
	// in the group got the error, nothing was acked); GroupedBatches
	// counts batches that shared a commit with at least one other;
	// MaxGroupBatches is the largest group ever committed together.
	Commits         int64 `json:"commits"`
	FailedCommits   int64 `json:"failed_commits"`
	GroupedBatches  int64 `json:"grouped_batches"`
	MaxGroupBatches int64 `json:"max_group_batches"`

	// QueueWait is admission → commit start; PublishLag is admission →
	// batch durably published (the epoch-publish lag loadgen reports).
	QueueWait  hdrhist.Summary `json:"queue_wait"`
	PublishLag hdrhist.Summary `json:"publish_lag"`
}

// waiter is one parked Submit call.
type waiter struct {
	papers    []bib.Paper
	admitted  time.Time
	taken     bool // scooped into a commit group; past cancellation
	res       [][]core.Assignment
	err       error
	committed chan struct{}
}

// Queue is the bounded group-commit ingest queue. Construct with New.
type Queue struct {
	commit CommitFunc
	cfg    Config

	mu         sync.Mutex
	cond       *sync.Cond // signalled when the leader parks or depth drops
	pending    []*waiter
	depth      int // papers admitted, not yet committed (or withdrawn)
	highWater  int
	committing bool
	closed     bool

	admittedBatches atomic.Int64
	admittedPapers  atomic.Int64
	rejected        atomic.Int64
	canceled        atomic.Int64
	commits         atomic.Int64
	failedCommits   atomic.Int64
	groupedBatches  atomic.Int64
	maxGroup        atomic.Int64

	queueWait  *hdrhist.Histogram
	publishLag *hdrhist.Histogram
}

// New builds a queue committing through fn.
func New(fn CommitFunc, cfg Config) *Queue {
	q := &Queue{
		commit:     fn,
		cfg:        cfg.withDefaults(),
		queueWait:  hdrhist.New(),
		publishLag: hdrhist.New(),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Submit admits the batch and returns its per-paper assignments once
// committed. The batch either commits atomically inside exactly one
// epoch publish (possibly shared with other batches — group commit)
// or fails having ingested nothing:
//
//   - *OverloadedError: rejected at admission (queue past MaxQueued).
//   - *CanceledError: ctx cancelled while the batch was still parked;
//     it was withdrawn and never ingested.
//   - ErrClosed: the queue no longer admits (Close ran).
//
// An empty batch commits trivially (no epoch, nil results).
func (q *Queue) Submit(ctx context.Context, papers []bib.Paper) ([][]core.Assignment, error) {
	if len(papers) == 0 {
		return nil, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			q.canceled.Add(1)
			return nil, &CanceledError{Err: err}
		}
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if q.depth > 0 && q.depth+len(papers) > q.cfg.MaxQueued {
		depth := q.depth
		q.mu.Unlock()
		q.rejected.Add(1)
		return nil, &OverloadedError{Depth: depth, Limit: q.cfg.MaxQueued, RetryAfter: q.cfg.RetryAfter}
	}
	w := &waiter{papers: papers, admitted: time.Now(), committed: make(chan struct{})}
	q.pending = append(q.pending, w)
	q.depth += len(papers)
	if q.depth > q.highWater {
		q.highWater = q.depth
	}
	q.admittedBatches.Add(1)
	q.admittedPapers.Add(int64(len(papers)))
	if !q.committing {
		q.committing = true
		q.mu.Unlock()
		q.runLeader()
		// The leader drains until the queue is empty, which includes
		// its own waiter: w is committed by the time runLeader returns.
	} else {
		q.mu.Unlock()
		var cancelCh <-chan struct{}
		if ctx != nil {
			cancelCh = ctx.Done()
		}
		select {
		case <-w.committed:
		case <-cancelCh:
			if q.withdraw(w) {
				q.canceled.Add(1)
				return nil, &CanceledError{Err: ctx.Err()}
			}
			// Already scooped into a commit group: the commit runs to
			// completion and the batch publishes atomically; report
			// the truth of what happened, not the cancellation.
			<-w.committed
		}
	}
	return w.res, w.err
}

// withdraw removes w from the pending queue if the leader has not
// scooped it yet, reporting whether it did.
func (q *Queue) withdraw(w *waiter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if w.taken {
		return false
	}
	for i, p := range q.pending {
		if p == w {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			q.depth -= len(w.papers)
			q.cond.Broadcast()
			return true
		}
	}
	return false
}

// runLeader drains the queue: repeatedly scoop a group of parked
// batches (arrival order, up to MaxGroup papers), commit them as one
// concatenated batch, and distribute the results. Exactly one leader
// runs at a time; it exits when the queue is empty.
func (q *Queue) runLeader() {
	for {
		q.mu.Lock()
		var group []*waiter
		groupPapers := 0
		for len(q.pending) > 0 {
			w := q.pending[0]
			if len(group) > 0 && groupPapers+len(w.papers) > q.cfg.MaxGroup {
				break
			}
			w.taken = true
			group = append(group, w)
			groupPapers += len(w.papers)
			q.pending = q.pending[1:]
		}
		if len(group) == 0 {
			q.committing = false
			q.cond.Broadcast()
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()

		var batch []bib.Paper
		if len(group) == 1 {
			batch = group[0].papers
		} else {
			batch = make([]bib.Paper, 0, groupPapers)
			for _, w := range group {
				batch = append(batch, w.papers...)
			}
			q.groupedBatches.Add(int64(len(group)))
		}
		for {
			old := q.maxGroup.Load()
			if int64(len(group)) <= old || q.maxGroup.CompareAndSwap(old, int64(len(group))) {
				break
			}
		}
		commitStart := time.Now()
		for _, w := range group {
			q.queueWait.Record(int64(commitStart.Sub(w.admitted)))
		}
		res, err := q.commit(batch)
		q.commits.Add(1)
		if err != nil {
			q.failedCommits.Add(1)
		}

		// Distribute: res covers a prefix of the concatenated batch —
		// all of it when err is nil, and strictly less otherwise (the
		// failing paper is never in res). A waiter fully inside the
		// prefix succeeded even when a later waiter failed; a waiter
		// cut by the error boundary gets its committed prefix plus
		// the error; waiters entirely beyond it get the error alone.
		off := 0
		for _, w := range group {
			end := off + len(w.papers)
			switch {
			case end <= len(res):
				w.res = res[off:end:end]
			case off < len(res):
				w.res, w.err = res[off:len(res):len(res)], err
			default:
				w.err = err
			}
			off = end
		}
		q.mu.Lock()
		q.depth -= groupPapers
		q.cond.Broadcast()
		q.mu.Unlock()
		now := time.Now()
		for _, w := range group {
			q.publishLag.Record(int64(now.Sub(w.admitted)))
			close(w.committed)
		}
	}
}

// Close stops admission and drains: it blocks until every admitted
// batch has committed, then returns. Idempotent and safe to call
// concurrently with Submit — Submits that lose the race fail with
// ErrClosed, Submits already admitted are flushed.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	for q.committing || len(q.pending) > 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// Stats returns the queue's cumulative accounting and current depth.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	depth, high := q.depth, q.highWater
	q.mu.Unlock()
	return Stats{
		Depth:           int64(depth),
		HighWater:       int64(high),
		Limit:           int64(q.cfg.MaxQueued),
		AdmittedBatches: q.admittedBatches.Load(),
		AdmittedPapers:  q.admittedPapers.Load(),
		RejectedBatches: q.rejected.Load(),
		CanceledBatches: q.canceled.Load(),
		Commits:         q.commits.Load(),
		FailedCommits:   q.failedCommits.Load(),
		GroupedBatches:  q.groupedBatches.Load(),
		MaxGroupBatches: q.maxGroup.Load(),
		QueueWait:       q.queueWait.Snapshot(),
		PublishLag:      q.publishLag.Snapshot(),
	}
}
