package wlkernel

import (
	"math"
	"slices"

	"iuad/internal/graph"
)

// LabelCount is one entry of a flat WL feature vector: a label with its
// multiplicity. Vectors are sorted ascending by label, so kernels are
// two-pointer merge-joins instead of map walks.
//
// A flat vector holds exactly the multiset Features builds as a map;
// counts are integer, their pairwise products are exactly representable
// in float64 at every realistic subgraph size, and integer-valued
// float64 sums are associative below 2⁵³ — so DotFlat is bit-identical
// to the map-based Dot regardless of either's traversal order.
type LabelCount struct {
	Label uint64
	Count int32
}

// DotFlat returns the inner product ⟨a,b⟩ of two flat feature vectors
// (Eq. 3), merge-joining the label-sorted entries.
func DotFlat(a, b []LabelCount) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Label < b[j].Label:
			i++
		case a[i].Label > b[j].Label:
			j++
		default:
			s += float64(a[i].Count) * float64(b[j].Count)
			i++
			j++
		}
	}
	return s
}

// NormalizedPreFlat is the flat-vector form of NormalizedPre: the
// cosine-normalized kernel of Eq. 4 with caller-supplied self inner
// products.
func NormalizedPreFlat(a, b []LabelCount, selfA, selfB float64) float64 {
	den := math.Sqrt(selfA * selfB)
	if den == 0 {
		return 0
	}
	return DotFlat(a, b) / den
}

// Extractor computes flat WL feature vectors with fully reusable
// scratch: the ego BFS runs on epoch-stamped marks over the host graph
// (no per-call visited maps), the ego adjacency is a flat CSR rebuilt
// in place, and the label multiset is sorted and run-length grouped in
// one buffer. The only caller-visible allocation is whatever the caller
// does with the returned vector, which aliases scratch and is valid
// until the next call. Not safe for concurrent use; pool one per
// worker.
type Extractor struct {
	stamp   []uint32
	epoch   uint32
	localOf []int32
	order   []int32
	adj     []int32
	off     []int32
	curBuf  []uint64
	nextBuf []uint64
	nl      []uint64
	all     []uint64
	out     []LabelCount
}

// SubgraphFlat extracts the radius-h ego subgraph of center and returns
// its WL feature vector after h refinement iterations — the same label
// multiset as SubgraphFeatures (the ego vertex and edge sets are
// identical, and the WL label of a vertex depends only on its own label
// and the *sorted* labels of its neighbor set, so local-ID and
// visitation order never reach the output), flattened. The returned
// slice is scratch-backed: copy it out before the next call.
func (e *Extractor) SubgraphFlat(g *graph.Graph, center, h int, labelOf func(v int) uint64) []LabelCount {
	n := g.NumVertices()
	if len(e.stamp) < n {
		stamp := make([]uint32, n)
		copy(stamp, e.stamp)
		e.stamp = stamp
		local := make([]int32, n)
		copy(local, e.localOf)
		e.localOf = local
	}
	e.epoch++
	if e.epoch == 0 { // stamp wrap: stale marks could alias, reset
		clear(e.stamp)
		e.epoch = 1
	}
	// Breadth-first ego discovery on the stamped marks.
	e.order = e.order[:0]
	e.stamp[center] = e.epoch
	e.localOf[center] = 0
	e.order = append(e.order, int32(center))
	lo := 0
	for d := 0; d < h; d++ {
		hi := len(e.order)
		if lo == hi {
			break
		}
		for _, ov := range e.order[lo:hi] {
			g.VisitNeighbors(int(ov), func(u int) {
				if e.stamp[u] != e.epoch {
					e.stamp[u] = e.epoch
					e.localOf[u] = int32(len(e.order))
					e.order = append(e.order, int32(u))
				}
			})
		}
		lo = hi
	}
	m := len(e.order)
	// Flat CSR adjacency restricted to the ego set.
	e.off = append(e.off[:0], 0)
	e.adj = e.adj[:0]
	for _, ov := range e.order {
		g.VisitNeighbors(int(ov), func(u int) {
			if e.stamp[u] == e.epoch {
				e.adj = append(e.adj, e.localOf[u])
			}
		})
		e.off = append(e.off, int32(len(e.adj)))
	}
	// Initial labels; the center is always neutralized (see CenterLabel).
	if cap(e.curBuf) < m {
		e.curBuf = make([]uint64, m)
		e.nextBuf = make([]uint64, m)
	}
	cur, next := e.curBuf[:m], e.nextBuf[:m]
	for i, ov := range e.order {
		cur[i] = labelOf(int(ov))
	}
	cur[0] = CenterLabel
	return e.refine(cur, next, h)
}

// GraphFlat computes the flat WL feature vector of a whole labeled
// graph — the flat equivalent of Features, sharing the extractor's
// scratch. labels is consumed as the iteration-0 labels and not
// mutated.
func (e *Extractor) GraphFlat(g *graph.Graph, labels []uint64, h int) []LabelCount {
	n := g.NumVertices()
	if len(labels) != n {
		panic("wlkernel: labels length mismatch")
	}
	e.off = append(e.off[:0], 0)
	e.adj = e.adj[:0]
	for v := 0; v < n; v++ {
		g.VisitNeighbors(v, func(u int) {
			e.adj = append(e.adj, int32(u))
		})
		e.off = append(e.off, int32(len(e.adj)))
	}
	if cap(e.curBuf) < n {
		e.curBuf = make([]uint64, n)
		e.nextBuf = make([]uint64, n)
	}
	cur, next := e.curBuf[:n], e.nextBuf[:n]
	copy(cur, labels)
	return e.refine(cur, next, h)
}

// refine runs h WL rounds over the extractor's CSR, accumulating every
// label of iterations 0..h, then sorts and run-length groups the
// multiset into the flat output vector.
func (e *Extractor) refine(cur, next []uint64, h int) []LabelCount {
	m := len(cur)
	e.all = append(e.all[:0], cur...)
	for iter := 0; iter < h; iter++ {
		for v := 0; v < m; v++ {
			e.nl = e.nl[:0]
			for _, u := range e.adj[e.off[v]:e.off[v+1]] {
				e.nl = append(e.nl, cur[u])
			}
			slices.Sort(e.nl)
			next[v] = compress(cur[v], e.nl)
		}
		cur, next = next, cur
		e.all = append(e.all, cur...)
	}
	slices.Sort(e.all)
	e.out = e.out[:0]
	for i := 0; i < len(e.all); {
		j := i
		for j < len(e.all) && e.all[j] == e.all[i] {
			j++
		}
		e.out = append(e.out, LabelCount{Label: e.all[i], Count: int32(j - i)})
		i = j
	}
	return e.out
}
