package wlkernel

import (
	"math"
	"math/rand"
	"testing"

	"iuad/internal/graph"
)

// randomGraph draws an Erdős–Rényi-ish graph with name-hash labels.
func randomGraph(rng *rand.Rand, n int, p float64) (*graph.Graph, []uint64) {
	g := graph.New(n)
	labels := make([]uint64, n)
	for v := 0; v < n; v++ {
		labels[v] = HashLabel(string(rune('A' + v%7)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g, labels
}

func flatEqualsMap(t *testing.T, label string, flat []LabelCount, m map[uint64]int) {
	t.Helper()
	if len(flat) != len(m) {
		t.Fatalf("%s: flat has %d labels, map has %d", label, len(flat), len(m))
	}
	for i, lc := range flat {
		if i > 0 && flat[i-1].Label >= lc.Label {
			t.Fatalf("%s: flat vector not strictly label-sorted at %d", label, i)
		}
		if m[lc.Label] != int(lc.Count) {
			t.Fatalf("%s: label %x count %d, map has %d", label, lc.Label, lc.Count, m[lc.Label])
		}
	}
}

// TestFlatMatchesMapFeatures: the scratch-reusing flat extractor
// produces exactly the map-based feature multiset — for ego subgraphs
// (SubgraphFlat vs SubgraphFeatures) and whole graphs (GraphFlat vs
// Features) — across random graphs, radii, and repeated reuse of one
// extractor.
func TestFlatMatchesMapFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var e Extractor // one extractor across every case: reuse must not leak state
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g, labels := randomGraph(rng, n, 0.15)
		for _, h := range []int{0, 1, 2, 3} {
			gotGraph := e.GraphFlat(g, labels, h)
			flatEqualsMap(t, "GraphFlat", gotGraph, Features(g, labels, h))
			center := rng.Intn(n)
			labelOf := func(v int) uint64 { return labels[v] }
			gotSub := e.SubgraphFlat(g, center, h, labelOf)
			flatEqualsMap(t, "SubgraphFlat", gotSub, SubgraphFeatures(g, center, h, labelOf))
		}
	}
}

// TestDotFlatMatchesDot: flat merge-join kernels equal the map-based
// kernels bit for bit (integer-valued sums are exact in float64).
func TestDotFlatMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var e Extractor
	for trial := 0; trial < 20; trial++ {
		g, labels := randomGraph(rng, 3+rng.Intn(30), 0.2)
		a := rng.Intn(g.NumVertices())
		b := rng.Intn(g.NumVertices())
		labelOf := func(v int) uint64 { return labels[v] }
		h := rng.Intn(3)
		fa := append([]LabelCount(nil), e.SubgraphFlat(g, a, h, labelOf)...)
		fb := append([]LabelCount(nil), e.SubgraphFlat(g, b, h, labelOf)...)
		ma := SubgraphFeatures(g, a, h, labelOf)
		mb := SubgraphFeatures(g, b, h, labelOf)
		if got, want := DotFlat(fa, fb), Dot(ma, mb); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DotFlat=%v Dot=%v (bits differ)", got, want)
		}
		selfA, selfB := DotFlat(fa, fa), DotFlat(fb, fb)
		got := NormalizedPreFlat(fa, fb, selfA, selfB)
		want := NormalizedPre(ma, mb, Dot(ma, ma), Dot(mb, mb))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("NormalizedPreFlat=%v NormalizedPre=%v (bits differ)", got, want)
		}
	}
}

// TestExtractorEpochWrap: the stamp epoch wrapping to zero must reset
// marks instead of aliasing a stale visited set.
func TestExtractorEpochWrap(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	labels := []uint64{1, 2, 3}
	var e Extractor
	want := append([]LabelCount(nil), e.SubgraphFlat(g, 0, 2, func(v int) uint64 { return labels[v] })...)
	e.epoch = ^uint32(0) // next call wraps to 0
	got := e.SubgraphFlat(g, 0, 2, func(v int) uint64 { return labels[v] })
	if len(got) != len(want) {
		t.Fatalf("post-wrap extraction has %d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-wrap entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
