// Package wlkernel implements the Weisfeiler–Lehman subgraph kernel
// (Shervashidze et al., JMLR 2011) used by IUAD's first similarity
// function γ¹ (§V-B1): the similarity of two vertices is the normalized
// inner product of the label-count feature maps of their surrounding
// subgraphs after h rounds of WL label refinement.
//
// The kernel is defined over *graph.Graph plus initial vertex labels. One
// WL iteration replaces every vertex label with a compressed hash of
// (own label, sorted multiset of neighbor labels); the feature map of a
// subgraph is the multiset of all labels observed across iterations
// 0..h. Hash compression (FNV-1a) substitutes for the paper-perfect
// injective relabeling; collisions are astronomically unlikely at the
// subgraph sizes involved and do not affect symmetry.
package wlkernel

import (
	"hash/fnv"
	"math"
	"slices"

	"iuad/internal/graph"
)

// Features computes the WL feature map of a (sub)graph: counts of every
// label produced in iterations 0..h. labels[i] is the initial label of
// vertex i and must have length g.NumVertices().
func Features(g *graph.Graph, labels []uint64, h int) map[uint64]int {
	n := g.NumVertices()
	if len(labels) != n {
		panic("wlkernel: labels length mismatch")
	}
	counts := make(map[uint64]int, n*(h+1))
	cur := append([]uint64(nil), labels...)
	for _, l := range cur {
		counts[l]++
	}
	next := make([]uint64, n)
	var nl []uint64 // neighbor-label scratch, reused across vertices
	for iter := 0; iter < h; iter++ {
		for v := 0; v < n; v++ {
			nl = nl[:0]
			g.VisitNeighbors(v, func(u int) { nl = append(nl, cur[u]) })
			slices.Sort(nl) // ascending, like the former sort.Slice, minus its per-call swapper allocation
			next[v] = compress(cur[v], nl)
		}
		cur, next = next, cur
		for _, l := range cur {
			counts[l]++
		}
	}
	return counts
}

// FNV-1a constants (hash/fnv), used by the allocation-free inline
// hashing below. The byte stream fed to the hash is identical to the
// former hash.Hash64-based implementation (each uint64 little-endian),
// so every label — and thus every feature map — is bit-identical.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvMix64 folds the eight little-endian bytes of x into the running
// FNV-1a state h.
func fnvMix64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(x >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// compress hashes (own label, sorted neighbor labels) into a new label.
func compress(own uint64, neighbors []uint64) uint64 {
	h := fnvMix64(fnvOffset64, own)
	h = fnvMix64(h, uint64(len(neighbors))^0x9e3779b97f4a7c15)
	for _, l := range neighbors {
		h = fnvMix64(h, l)
	}
	return h
}

// Dot returns the inner product ⟨a,b⟩ of two feature maps (Eq. 3).
func Dot(a, b map[uint64]int) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	s := 0.0
	for l, ca := range a {
		if cb, ok := b[l]; ok {
			s += float64(ca) * float64(cb)
		}
	}
	return s
}

// Normalized returns the cosine-normalized kernel of Eq. 4:
// K(a,b) / sqrt(K(a,a)·K(b,b)). Empty feature maps yield 0.
func Normalized(a, b map[uint64]int) float64 {
	return NormalizedPre(a, b, Dot(a, a), Dot(b, b))
}

// NormalizedPre is Normalized with the self inner products K(a,a) and
// K(b,b) supplied by the caller — profiles cache them, so each pair
// evaluation walks only the smaller map once instead of all three.
// Self-dots are sums of products of integer counts, exactly
// representable in float64, so sqrt(selfA·selfB) here is bit-identical
// to recomputing the dots in place.
func NormalizedPre(a, b map[uint64]int, selfA, selfB float64) float64 {
	den := math.Sqrt(selfA * selfB)
	if den == 0 {
		return 0
	}
	return Dot(a, b) / den
}

// CenterLabel is the reserved initial label of the ego-subgraph center in
// SubgraphFeatures. Using one constant for every center keeps kernels
// comparable across vertices: labeling the center with its own name would
// hand every same-name candidate pair a shared feature that cross-name
// pairs can never have — an artifact, since sharing the ambiguous name is
// the premise of the comparison, not evidence.
const CenterLabel uint64 = 0x5eed5eed5eed5eed

// SubgraphFeatures extracts the radius-h ego subgraph of center and
// returns its WL feature map after h refinement iterations. labelOf maps
// an original vertex ID to its initial label (for IUAD: a hash of the
// author name, so that same-named collaborators align across subgraphs);
// the center itself always receives CenterLabel.
func SubgraphFeatures(g *graph.Graph, center, h int, labelOf func(v int) uint64) map[uint64]int {
	sub, mapping := g.Ego(center, h)
	labels := make([]uint64, len(mapping))
	for local, orig := range mapping {
		labels[local] = labelOf(orig)
	}
	labels[0] = CenterLabel // mapping[0] is the center
	return Features(sub, labels, h)
}

// HashLabel converts an arbitrary string into an initial WL label.
func HashLabel(s string) uint64 {
	hsh := fnv.New64a()
	hsh.Write([]byte(s))
	return hsh.Sum64()
}
