package wlkernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iuad/internal/graph"
)

// path returns a path graph v0-v1-...-v(n-1) with constant labels.
func path(n int) (*graph.Graph, []uint64) {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = 1
	}
	return g, labels
}

func TestFeaturesIterationZeroCountsLabels(t *testing.T) {
	g := graph.New(3)
	labels := []uint64{5, 5, 9}
	f := Features(g, labels, 0)
	if f[5] != 2 || f[9] != 1 || len(f) != 2 {
		t.Fatalf("h=0 features=%v", f)
	}
}

func TestIsomorphicGraphsHaveEqualFeatures(t *testing.T) {
	// Two different vertex orderings of the same labeled triangle+tail.
	build := func(perm []int) (*graph.Graph, []uint64) {
		g := graph.New(4)
		edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
		for _, e := range edges {
			g.AddEdge(perm[e[0]], perm[e[1]])
		}
		labels := make([]uint64, 4)
		base := []uint64{7, 7, 7, 3}
		for i, p := range perm {
			labels[p] = base[i]
		}
		return g, labels
	}
	g1, l1 := build([]int{0, 1, 2, 3})
	g2, l2 := build([]int{3, 1, 0, 2})
	for h := 0; h <= 3; h++ {
		f1 := Features(g1, l1, h)
		f2 := Features(g2, l2, h)
		if Dot(f1, f1) != Dot(f2, f2) || Dot(f1, f2) != Dot(f1, f1) {
			t.Fatalf("h=%d: isomorphic graphs have different features", h)
		}
		if got := Normalized(f1, f2); math.Abs(got-1) > 1e-12 {
			t.Fatalf("h=%d: normalized kernel of isomorphic graphs = %g", h, got)
		}
	}
}

func TestWLDistinguishesNonIsomorphic(t *testing.T) {
	// Path P4 vs star S3: same size, same degree sum, WL separates them
	// after one iteration even with constant labels.
	p, pl := path(4)
	s := graph.New(4)
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	sl := []uint64{1, 1, 1, 1}
	fp := Features(p, pl, 1)
	fs := Features(s, sl, 1)
	if Normalized(fp, fs) >= 1-1e-9 {
		t.Fatal("WL failed to distinguish P4 from S3")
	}
}

func TestNormalizedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() map[uint64]int {
			m := map[uint64]int{}
			for i := 0; i < 1+rng.Intn(6); i++ {
				m[uint64(rng.Intn(8))] = 1 + rng.Intn(5)
			}
			return m
		}
		a, b := mk(), mk()
		v := Normalized(a, b)
		return v >= -1e-12 && v <= 1+1e-12 &&
			math.Abs(Normalized(a, a)-1) < 1e-12 &&
			Normalized(a, b) == Normalized(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEmpty(t *testing.T) {
	if got := Normalized(map[uint64]int{}, map[uint64]int{1: 1}); got != 0 {
		t.Fatalf("empty feature map kernel=%g, want 0", got)
	}
}

func TestSubgraphFeaturesUsesEgoRadius(t *testing.T) {
	// Path of 5; center 2 with h=1 sees {1,2,3} only.
	g, _ := path(5)
	labelOf := func(v int) uint64 { return uint64(100 + v) }
	f := SubgraphFeatures(g, 2, 1, labelOf)
	// Iteration-0 labels present: neighbors 101 and 103, plus the
	// reserved CenterLabel (the center's own label is neutralized; see
	// CenterLabel doc) — but never 100, 102 or 104.
	for _, leak := range []uint64{100, 102, 104} {
		if _, ok := f[leak]; ok {
			t.Fatalf("label %d leaked into radius-1 ego of vertex 2: %v", leak, f)
		}
	}
	for _, want := range []uint64{101, 103, CenterLabel} {
		if f[want] != 1 {
			t.Fatalf("missing initial label %d: %v", want, f)
		}
	}
}

func TestSubgraphCenterNeutralized(t *testing.T) {
	// Two centers with different own-labels but identical neighborhoods
	// must produce identical feature maps: the center's name is the
	// premise of a same-name comparison, not evidence.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	labels := map[int]uint64{0: 7, 3: 99, 1: 50, 4: 50, 2: 60, 5: 60}
	labelOf := func(v int) uint64 { return labels[v] }
	fa := SubgraphFeatures(g, 0, 2, labelOf)
	fb := SubgraphFeatures(g, 3, 2, labelOf)
	if Normalized(fa, fb) != 1 {
		t.Fatalf("center label influenced the kernel: %v vs %v", fa, fb)
	}
}

func TestSameNeighborhoodsHighKernel(t *testing.T) {
	// Two vertices with identically-labeled neighborhoods in disjoint
	// components must reach kernel 1; a third with different co-author
	// labels must score lower. This is the γ¹ use case: same co-author
	// names => likely the same author.
	g := graph.New(9)
	// Component A: 0 linked to 1,2 (labels X, Y).
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	// Component B: 3 linked to 4,5 (labels X, Y).
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	// Component C: 6 linked to 7,8 (labels P, Q).
	g.AddEdge(6, 7)
	g.AddEdge(6, 8)
	name := map[int]string{
		0: "wei wang", 3: "wei wang", 6: "wei wang",
		1: "x", 4: "x", 7: "p",
		2: "y", 5: "y", 8: "q",
	}
	labelOf := func(v int) uint64 { return HashLabel(name[v]) }
	fa := SubgraphFeatures(g, 0, 2, labelOf)
	fb := SubgraphFeatures(g, 3, 2, labelOf)
	fc := SubgraphFeatures(g, 6, 2, labelOf)
	same := Normalized(fa, fb)
	diff := Normalized(fa, fc)
	if math.Abs(same-1) > 1e-12 {
		t.Fatalf("identical neighborhoods kernel=%g, want 1", same)
	}
	if diff >= same {
		t.Fatalf("different neighborhoods kernel=%g not below %g", diff, same)
	}
}

func TestHashLabelStable(t *testing.T) {
	if HashLabel("abc") != HashLabel("abc") {
		t.Fatal("HashLabel not deterministic")
	}
	if HashLabel("abc") == HashLabel("abd") {
		t.Fatal("suspicious HashLabel collision")
	}
}

func TestFeaturesLabelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels did not panic")
		}
	}()
	g := graph.New(2)
	Features(g, []uint64{1}, 1)
}
