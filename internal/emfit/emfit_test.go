package emfit

import (
	"math"
	"math/rand"
	"testing"
)

// synthMixture draws n samples: matched samples (fraction p) have high
// Gaussian feature 0 and high Exponential feature 1; unmatched the
// opposite. Returns samples and truth labels.
func synthMixture(n int, p float64, seed int64) (x [][]float64, truth []bool) {
	rng := rand.New(rand.NewSource(seed))
	for j := 0; j < n; j++ {
		m := rng.Float64() < p
		var g, e float64
		if m {
			g = 0.8 + rng.NormFloat64()*0.1
			e = rng.ExpFloat64() / 2 // mean 0.5
		} else {
			g = 0.1 + rng.NormFloat64()*0.1
			e = rng.ExpFloat64() / 20 // mean 0.05
		}
		x = append(x, []float64{g, e})
		truth = append(truth, m)
	}
	return x, truth
}

func twoSpecs() []FeatureSpec {
	return []FeatureSpec{
		{Name: "gauss", Family: Gaussian},
		{Name: "exp", Family: Exponential},
	}
}

func TestFitRecoversMixture(t *testing.T) {
	x, truth := synthMixture(2000, 0.3, 7)
	model, resp, err := Fit(x, twoSpecs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.P-0.3) > 0.07 {
		t.Fatalf("mixing weight=%.3f, want ≈0.30", model.P)
	}
	// The matched component must be the high-mean one on both features.
	if model.MatchedMean(0) <= model.UnmatchedMean(0) {
		t.Fatalf("matched Gaussian mean %.3f not above unmatched %.3f",
			model.MatchedMean(0), model.UnmatchedMean(0))
	}
	if model.MatchedMean(1) <= model.UnmatchedMean(1) {
		t.Fatalf("matched Exponential mean %.3f not above unmatched %.3f",
			model.MatchedMean(1), model.UnmatchedMean(1))
	}
	// Classification accuracy by responsibilities.
	correct := 0
	for j, r := range resp {
		if (r > 0.5) == truth[j] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(resp))
	if acc < 0.95 {
		t.Fatalf("EM classification accuracy=%.3f, want ≥0.95", acc)
	}
}

func TestLogOddsMonotoneWithEvidence(t *testing.T) {
	x, _ := synthMixture(1500, 0.4, 11)
	model, _, err := Fit(x, twoSpecs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	weak := model.LogOdds([]float64{0.1, 0.02})
	strong := model.LogOdds([]float64{0.8, 0.6})
	if strong <= weak {
		t.Fatalf("LogOdds(strong)=%.3f not above LogOdds(weak)=%.3f", strong, weak)
	}
	// Posterior consistency with odds.
	if p := model.Posterior([]float64{0.8, 0.6}); p < 0.5 {
		t.Fatalf("posterior of strong evidence=%.3f", p)
	}
	if p := model.Posterior([]float64{0.1, 0.02}); p > 0.5 {
		t.Fatalf("posterior of weak evidence=%.3f", p)
	}
}

func TestPosteriorOddsIdentity(t *testing.T) {
	x, _ := synthMixture(500, 0.5, 3)
	model, _, err := Fit(x, twoSpecs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range [][]float64{{0.5, 0.1}, {0.9, 0.9}, {0, 0}} {
		p := model.Posterior(g)
		odds := model.LogOdds(g)
		want := 1 / (1 + math.Exp(-odds))
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("posterior %.6f != sigmoid(odds) %.6f", p, want)
		}
	}
}

func TestMultinomialFamily(t *testing.T) {
	// One multinomial feature over bins (-inf,0.5], (0.5,1.5], overflow.
	spec := []FeatureSpec{{Name: "bin", Family: Multinomial, Bins: []float64{0.5, 1.5}}}
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var init []float64
	for j := 0; j < 600; j++ {
		if j%3 == 0 { // matched: values mostly 2 (overflow bin)
			x = append(x, []float64{2 + rng.Float64()})
			init = append(init, 0.9)
		} else { // unmatched: values mostly 0
			x = append(x, []float64{rng.Float64() * 0.4})
			init = append(init, 0.1)
		}
	}
	opts := DefaultOptions()
	opts.InitResp = init
	model, resp, err := Fit(x, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.P-1.0/3) > 0.05 {
		t.Fatalf("multinomial mixing=%.3f, want ≈0.333", model.P)
	}
	if model.MatchedMean(0) <= model.UnmatchedMean(0) {
		t.Fatal("matched multinomial mass not in higher bins")
	}
	correct := 0
	for j, r := range resp {
		if (r > 0.5) == (j%3 == 0) {
			correct++
		}
	}
	if float64(correct)/float64(len(resp)) < 0.98 {
		t.Fatalf("multinomial accuracy=%.3f", float64(correct)/float64(len(resp)))
	}
}

func TestBinOf(t *testing.T) {
	edges := []float64{0, 1, 2}
	cases := []struct {
		x    float64
		want int
	}{{-1, 0}, {0, 0}, {0.5, 1}, {1, 1}, {1.5, 2}, {2, 2}, {3, 3}}
	for _, c := range cases {
		if got := binOf(edges, c.x); got != c.want {
			t.Errorf("binOf(%g)=%d, want %d", c.x, got, c.want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := Fit(nil, twoSpecs(), DefaultOptions()); err != ErrNoData {
		t.Fatalf("empty fit err=%v", err)
	}
	if _, _, err := Fit([][]float64{{1}}, twoSpecs(), DefaultOptions()); err == nil {
		t.Fatal("feature-count mismatch accepted")
	}
	if _, _, err := Fit([][]float64{{math.NaN(), 0}}, twoSpecs(), DefaultOptions()); err == nil {
		t.Fatal("NaN accepted")
	}
	opts := DefaultOptions()
	opts.InitResp = []float64{0.5, 0.5}
	if _, _, err := Fit([][]float64{{1, 1}}, twoSpecs(), opts); err == nil {
		t.Fatal("InitResp length mismatch accepted")
	}
}

func TestFitDegenerateConstantFeature(t *testing.T) {
	// All samples identical: EM must not blow up (variance floor) and
	// must return finite likelihood.
	x := make([][]float64, 50)
	for j := range x {
		x[j] = []float64{0.5, 0.0}
	}
	model, resp, err := Fit(x, twoSpecs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.LogLikelihood) || math.IsInf(model.LogLikelihood, 0) {
		t.Fatalf("degenerate LL=%v", model.LogLikelihood)
	}
	for _, r := range resp {
		if math.IsNaN(r) {
			t.Fatal("NaN responsibility")
		}
	}
	if s := model.LogOdds([]float64{0.5, 0}); math.IsNaN(s) {
		t.Fatal("NaN score on degenerate model")
	}
}

func TestLikelihoodMonotone(t *testing.T) {
	// EM's training LL must be non-decreasing across iteration caps.
	x, _ := synthMixture(400, 0.4, 21)
	prev := math.Inf(-1)
	for _, iters := range []int{1, 2, 5, 20} {
		opts := Options{MaxIter: iters, Tol: 1e-300}
		model, _, err := Fit(x, twoSpecs(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if model.LogLikelihood+1e-6 < prev {
			t.Fatalf("LL decreased: %.6f after %d iters < %.6f", model.LogLikelihood, iters, prev)
		}
		prev = model.LogLikelihood
	}
}

func TestScorePanicsOnWrongArity(t *testing.T) {
	x, _ := synthMixture(100, 0.5, 1)
	model, _, _ := Fit(x, twoSpecs(), DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-arity LogOdds did not panic")
		}
	}()
	model.LogOdds([]float64{1})
}
