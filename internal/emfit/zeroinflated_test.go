package emfit

import (
	"math"
	"math/rand"
	"testing"
)

func TestZeroInflatedExponentialRecovery(t *testing.T) {
	// Matched: 30% zeros, positives ~ Exp(mean 0.5).
	// Unmatched: 95% zeros, positives ~ Exp(mean 0.05).
	rng := rand.New(rand.NewSource(41))
	var x [][]float64
	var truth []bool
	for j := 0; j < 3000; j++ {
		m := rng.Float64() < 0.4
		var v float64
		if m {
			if rng.Float64() >= 0.3 {
				v = rng.ExpFloat64() / 2
			}
		} else {
			if rng.Float64() >= 0.95 {
				v = rng.ExpFloat64() * 0.05
			}
		}
		x = append(x, []float64{v})
		truth = append(truth, m)
	}
	spec := []FeatureSpec{{Name: "zie", Family: ZeroInflatedExponential}}
	model, resp, err := Fit(x, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.P-0.4) > 0.12 {
		t.Fatalf("mixing=%.3f, want ≈0.4", model.P)
	}
	correct := 0
	for j, r := range resp {
		if (r > 0.5) == truth[j] {
			correct++
		}
	}
	// Bayes-optimal accuracy here is ≈0.86: matched zeros (12% of the
	// data) are indistinguishable from unmatched zeros by construction.
	if acc := float64(correct) / float64(len(resp)); acc < 0.80 {
		t.Fatalf("accuracy=%.3f, want ≥0.80", acc)
	}
	// The zero atom must keep the log-odds of an x=0 observation finite
	// and moderate (the failure mode that motivated this family).
	odds := model.LogOdds([]float64{0})
	if math.IsInf(odds, 0) || math.Abs(odds) > 15 {
		t.Fatalf("zero-observation log-odds=%.2f, want finite and moderate", odds)
	}
	// Positive evidence must raise the odds relative to zero evidence.
	if model.LogOdds([]float64{0.5}) <= odds {
		t.Fatal("positive observation did not raise log-odds")
	}
}

func TestZeroInflatedAllZeros(t *testing.T) {
	x := make([][]float64, 40)
	for i := range x {
		x[i] = []float64{0}
	}
	spec := []FeatureSpec{{Family: ZeroInflatedExponential}}
	model, _, err := Fit(x, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.LogOdds([]float64{0})) || math.IsNaN(model.LogOdds([]float64{1})) {
		t.Fatal("NaN log-odds on degenerate all-zero data")
	}
}

func TestFamilyStrings(t *testing.T) {
	cases := map[Family]string{
		Gaussian:                "gaussian",
		Exponential:             "exponential",
		Multinomial:             "multinomial",
		ZeroInflatedExponential: "zero-inflated-exponential",
		Family(99):              "Family(99)",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("String(%d)=%q, want %q", int(f), f.String(), want)
		}
	}
}
