package emfit

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the columnar sufficient-statistics engine against a
// verbatim copy of the pre-refactor row-major implementation:
// referenceFit below IS the old Fit (per-sample logPDF switches,
// per-iteration binary searches, per-component weight sums), kept here
// as the ground truth the columnar engine must reproduce bit for bit —
// parameters, responsibilities, log-likelihood, and iteration count.

// referenceFitComponent is the pre-refactor fitComponent, unchanged.
func referenceFitComponent(spec FeatureSpec, xs []float64, w []float64) component {
	c := component{family: spec.Family, bins: spec.Bins}
	var sw float64
	for _, wj := range w {
		sw += wj
	}
	switch spec.Family {
	case Gaussian:
		if sw <= 0 {
			c.mu, c.sigma2 = 0, 1
			return c
		}
		var mean float64
		for j, x := range xs {
			mean += w[j] * x
		}
		mean /= sw
		var ss float64
		for j, x := range xs {
			d := x - mean
			ss += w[j] * d * d
		}
		c.mu = mean
		c.sigma2 = ss / sw
		if c.sigma2 < varianceFloor {
			c.sigma2 = varianceFloor
		}
	case Exponential:
		var sx float64
		for j, x := range xs {
			if x < 0 {
				x = 0
			}
			sx += w[j] * x
		}
		if sw <= 0 || sx <= 0 {
			c.lambda = lambdaMax
			return c
		}
		c.lambda = sw / sx
		if c.lambda < lambdaMin {
			c.lambda = lambdaMin
		}
		if c.lambda > lambdaMax {
			c.lambda = lambdaMax
		}
	case Multinomial:
		nb := len(spec.Bins) + 1
		counts := make([]float64, nb)
		for j, x := range xs {
			counts[binOf(spec.Bins, x)] += w[j]
		}
		c.logp = make([]float64, nb)
		denom := sw + float64(nb)
		for b := 0; b < nb; b++ {
			c.logp[b] = math.Log((counts[b] + 1) / denom)
		}
	case ZeroInflatedExponential:
		var swZero, swPos, sxPos float64
		for j, x := range xs {
			if x < zeroEps {
				swZero += w[j]
			} else {
				swPos += w[j]
				sxPos += w[j] * x
			}
		}
		pi0 := (swZero + 1) / (sw + 2)
		c.logPi0 = math.Log(pi0)
		c.logPi1 = math.Log(1 - pi0)
		if swPos <= 0 || sxPos <= 0 {
			c.lambda = lambdaMax
		} else {
			c.lambda = clamp(swPos/sxPos, lambdaMin, lambdaMax)
		}
	default:
		panic("emfit: unknown family " + spec.Family.String())
	}
	return c
}

// referenceSeed is the pre-refactor row-major seedResponsibilities.
func referenceSeed(x [][]float64, resp []float64) {
	n, m := len(x), len(x[0])
	mean := make([]float64, m)
	std := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			mean[i] += x[j][i]
		}
		mean[i] /= float64(n)
		for j := 0; j < n; j++ {
			d := x[j][i] - mean[i]
			std[i] += d * d
		}
		std[i] = math.Sqrt(std[i] / float64(n))
		if std[i] == 0 {
			std[i] = 1
		}
	}
	sums := make([]float64, n)
	order := make([]int, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += (x[j][i] - mean[i]) / std[i]
		}
		sums[j] = s
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	cut := n / 4
	if cut == 0 {
		cut = 1
	}
	for rank, j := range order {
		if rank < cut {
			resp[j] = 0.9
		} else {
			resp[j] = 0.1
		}
	}
}

// referenceFit is the pre-refactor row-major Fit, serial form (the old
// engine was bit-identical for every worker count, so serial is the
// full contract).
func referenceFit(x [][]float64, specs []FeatureSpec, opts Options) (*Model, []float64, error) {
	n := len(x)
	if n == 0 {
		return nil, nil, ErrNoData
	}
	m := len(specs)
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	resp := make([]float64, n)
	if opts.InitResp != nil {
		copy(resp, opts.InitResp)
	} else {
		referenceSeed(x, resp)
	}
	cols := make([][]float64, m)
	for i := 0; i < m; i++ {
		cols[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			cols[i][j] = x[j][i]
		}
	}
	wU := make([]float64, n)
	dens := make([]float64, n)
	post := make([]float64, n)
	model := &Model{Specs: specs}
	prevLL := math.Inf(-1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var sumResp float64
		for j := range resp {
			wU[j] = 1 - resp[j]
			sumResp += resp[j]
		}
		model.P = clamp(sumResp/float64(n), mixFloor, 1-mixFloor)
		model.matched = make([]component, m)
		model.unmatched = make([]component, m)
		for k := 0; k < 2*m; k++ {
			if k < m {
				model.matched[k] = referenceFitComponent(specs[k], cols[k], resp)
			} else {
				model.unmatched[k-m] = referenceFitComponent(specs[k-m], cols[k-m], wU)
			}
		}
		logP := math.Log(model.P)
		logQ := math.Log(1 - model.P)
		for j := 0; j < n; j++ {
			lm, lu := logP, logQ
			for i := 0; i < m; i++ {
				lm += model.matched[i].logPDF(x[j][i])
				lu += model.unmatched[i].logPDF(x[j][i])
			}
			mx := math.Max(lm, lu)
			den := mx + math.Log(math.Exp(lm-mx)+math.Exp(lu-mx))
			dens[j] = den
			post[j] = math.Exp(lm - den)
		}
		ll := 0.0
		for j := 0; j < n; j++ {
			if opts.Clamped != nil && opts.Clamped[j] {
				resp[j] = opts.InitResp[j]
			} else {
				resp[j] = post[j]
			}
			ll += dens[j]
		}
		model.LogLikelihood = ll
		model.Iterations = iter
		if ll-prevLL < opts.Tol*math.Abs(ll) && iter > 1 {
			break
		}
		prevLL = ll
	}
	return model, resp, nil
}

// randomMatrix draws an n×m matrix whose columns exercise every family's
// edge geometry: exact zeros (the ZIE atom), negatives (the Exponential
// clamp), values on and past multinomial bin edges, and smooth Gaussian
// mass.
func randomMatrix(rng *rand.Rand, n int, specs []FeatureSpec) [][]float64 {
	x := make([][]float64, n)
	for j := range x {
		row := make([]float64, len(specs))
		for i, sp := range specs {
			switch sp.Family {
			case Gaussian:
				row[i] = rng.NormFloat64()*0.4 + 0.3
			case Exponential:
				row[i] = rng.ExpFloat64() / 3
				if rng.Float64() < 0.1 {
					row[i] = -row[i] // exercises the x<0 clamp
				}
			case Multinomial:
				switch rng.Intn(4) {
				case 0:
					row[i] = sp.Bins[rng.Intn(len(sp.Bins))] // exactly on an edge
				case 1:
					row[i] = sp.Bins[len(sp.Bins)-1] + rng.Float64() // overflow bin
				default:
					row[i] = rng.Float64() * sp.Bins[len(sp.Bins)-1]
				}
			case ZeroInflatedExponential:
				if rng.Float64() < 0.4 {
					row[i] = 0 // the zero atom
				} else {
					row[i] = rng.ExpFloat64() / 5
				}
			}
		}
		x[j] = row
	}
	return x
}

func fourFamilySpecs() []FeatureSpec {
	return []FeatureSpec{
		{Name: "g", Family: Gaussian},
		{Name: "e", Family: Exponential},
		{Name: "m", Family: Multinomial, Bins: []float64{0.05, 0.2, 0.5, 1}},
		{Name: "z", Family: ZeroInflatedExponential},
	}
}

func modelsBitIdentical(t *testing.T, label string, ref, got *Model) {
	t.Helper()
	bits := math.Float64bits
	if bits(ref.P) != bits(got.P) {
		t.Fatalf("%s: P %v != reference %v", label, got.P, ref.P)
	}
	if bits(ref.LogLikelihood) != bits(got.LogLikelihood) {
		t.Fatalf("%s: LL %v != reference %v", label, got.LogLikelihood, ref.LogLikelihood)
	}
	if ref.Iterations != got.Iterations {
		t.Fatalf("%s: iterations %d != reference %d", label, got.Iterations, ref.Iterations)
	}
	sides := []struct {
		name     string
		ref, got []component
	}{
		{"matched", ref.matched, got.matched},
		{"unmatched", ref.unmatched, got.unmatched},
	}
	for _, s := range sides {
		for i := range s.ref {
			r, g := &s.ref[i], &s.got[i]
			if bits(r.mu) != bits(g.mu) || bits(r.sigma2) != bits(g.sigma2) ||
				bits(r.lambda) != bits(g.lambda) ||
				bits(r.logPi0) != bits(g.logPi0) || bits(r.logPi1) != bits(g.logPi1) {
				t.Fatalf("%s: %s[%d] scalar params differ: ref=%+v got=%+v", label, s.name, i, *r, *g)
			}
			if len(r.logp) != len(g.logp) {
				t.Fatalf("%s: %s[%d] logp length %d != %d", label, s.name, i, len(g.logp), len(r.logp))
			}
			for b := range r.logp {
				if bits(r.logp[b]) != bits(g.logp[b]) {
					t.Fatalf("%s: %s[%d] logp[%d] %v != %v", label, s.name, i, b, g.logp[b], r.logp[b])
				}
			}
		}
	}
}

// TestEMColumnarEquivalence: the columnar engine reproduces the
// row-major reference bit for bit — parameters, responsibilities, and
// iteration counts — on randomized matrices across all four families,
// with and without clamped semi-supervised labels, for several worker
// counts, through both the row-major wrapper and the feature-major
// FitMatrix entry.
func TestEMColumnarEquivalence(t *testing.T) {
	specs := fourFamilySpecs()
	for _, tc := range []struct {
		name    string
		n       int
		seed    int64
		clamped bool
	}{
		{"small-seeded", 37, 1, false},
		{"mid-seeded", 400, 2, false},
		{"mid-clamped", 400, 3, true},
		{"large-seeded", 2500, 4, false},
		{"large-clamped", 2500, 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			x := randomMatrix(rng, tc.n, specs)
			opts := DefaultOptions()
			if tc.clamped {
				init := make([]float64, tc.n)
				cl := make([]bool, tc.n)
				for j := range init {
					init[j] = 0.5
					if rng.Float64() < 0.2 {
						cl[j] = true
						if rng.Float64() < 0.5 {
							init[j] = 0.95
						} else {
							init[j] = 0.05
						}
					}
				}
				opts.InitResp = init
				opts.Clamped = cl
			}
			ref, refResp, err := referenceFit(x, specs, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3} {
				o := opts
				o.Workers = workers
				model, resp, err := Fit(x, specs, o)
				if err != nil {
					t.Fatal(err)
				}
				label := tc.name + "/Fit"
				modelsBitIdentical(t, label, ref, model)
				for j := range refResp {
					if math.Float64bits(refResp[j]) != math.Float64bits(resp[j]) {
						t.Fatalf("%s workers=%d: resp[%d] %v != reference %v", label, workers, j, resp[j], refResp[j])
					}
				}
				// The feature-major entry point must agree too.
				mx := NewMatrix(len(specs), tc.n)
				for _, row := range x {
					mx.AppendRow(row)
				}
				model2, resp2, err := FitMatrix(mx, specs, o)
				if err != nil {
					t.Fatal(err)
				}
				modelsBitIdentical(t, tc.name+"/FitMatrix", ref, model2)
				for j := range refResp {
					if math.Float64bits(refResp[j]) != math.Float64bits(resp2[j]) {
						t.Fatalf("FitMatrix workers=%d: resp[%d] %v != reference %v", workers, j, resp2[j], refResp[j])
					}
				}
			}
		})
	}
}

// TestScorerMatchesLogOdds: the compiled Scorer is bit-identical to the
// interpreted LogOdds on every family and input geometry, via both the
// γ-slice and the matrix-row entry points.
func TestScorerMatchesLogOdds(t *testing.T) {
	specs := fourFamilySpecs()
	rng := rand.New(rand.NewSource(11))
	x := randomMatrix(rng, 600, specs)
	model, _, err := Fit(x, specs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	scorer := model.Scorer()
	probe := randomMatrix(rng, 500, specs)
	probe = append(probe,
		[]float64{0, 0, 0, 0},             // zero atoms, first bin
		[]float64{-1, -1, -1, 0},          // negative clamps
		[]float64{5, 9, 99, 7},            // overflow bin, heavy tails
		[]float64{0.05, 0.2, 0.5, 1e-13},  // on bin edges, sub-epsilon ZIE
	)
	mx := NewMatrix(len(specs), len(probe))
	for _, g := range probe {
		mx.AppendRow(g)
	}
	for j, g := range probe {
		want := model.LogOdds(g)
		if got := scorer.Score(g); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Score(%v)=%v, LogOdds=%v (bits differ)", g, got, want)
		}
		if got := scorer.ScoreRow(mx, j); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ScoreRow(row %d)=%v, LogOdds=%v (bits differ)", j, got, want)
		}
	}
}

func TestScorerPanicsOnWrongArity(t *testing.T) {
	x, _ := synthMixture(100, 0.5, 1)
	model, _, _ := Fit(x, twoSpecs(), DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-arity Scorer.Score did not panic")
		}
	}()
	model.Scorer().Score([]float64{1})
}

// TestAllocsEMIteration pins the steady-state allocation behavior of
// the columnar engine: after newFitState, EM iterations allocate
// NOTHING — no per-iteration component slices, bin searches, counts
// buffers, or closure headers. (The serial engine is the contract;
// worker pools add bounded goroutine-spawn allocations per parallel
// section, not per sample.)
func TestAllocsEMIteration(t *testing.T) {
	specs := fourFamilySpecs()
	rng := rand.New(rand.NewSource(99))
	x := randomMatrix(rng, 3000, specs)
	mx := NewMatrix(len(specs), len(x))
	for _, row := range x {
		mx.AppendRow(row)
	}
	st, err := newFitState(mx, specs, DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		st.iterate()
	})
	if avg != 0 {
		t.Fatalf("EM iteration allocates %.1f objects/iter, want 0", avg)
	}
}

// TestErrBadSample: NaN/Inf observations surface as the typed
// ErrBadSample with the poisoned cell's coordinates, from both entry
// points.
func TestErrBadSample(t *testing.T) {
	specs := twoSpecs()
	x := [][]float64{{1, 0.5}, {0.2, math.Inf(1)}}
	_, _, err := Fit(x, specs, DefaultOptions())
	var bad ErrBadSample
	if !errors.As(err, &bad) {
		t.Fatalf("Fit(Inf) err=%v, want ErrBadSample", err)
	}
	if bad.Row != 1 || bad.Col != 1 || !math.IsInf(bad.Value, 1) {
		t.Fatalf("ErrBadSample=%+v, want Row=1 Col=1 Value=+Inf", bad)
	}
	mx := NewMatrix(2, 2)
	mx.AppendRow([]float64{1, 0.5})
	mx.AppendRow([]float64{math.NaN(), 0.5})
	_, _, err = FitMatrix(mx, specs, DefaultOptions())
	if !errors.As(err, &bad) {
		t.Fatalf("FitMatrix(NaN) err=%v, want ErrBadSample", err)
	}
	if bad.Row != 1 || bad.Col != 0 {
		t.Fatalf("ErrBadSample=%+v, want Row=1 Col=0", bad)
	}
}
