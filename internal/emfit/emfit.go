// Package emfit implements the probabilistic generative model of §V-C: a
// two-component mixture over similarity vectors γ ∈ R^m, where component
// M ("matched" — the two vertices are one author) and component U
// ("unmatched") each model the features independently with
// exponential-family distributions (Gaussian, Exponential, or
// Multinomial over bins), exactly the families whose maximum-likelihood
// estimators appear in the paper's Table I.
//
// Parameters are learned with EM: the E-step computes the posterior
// responsibility l_j = P(r_j ∈ M | γ_j, Θ), the M-step plugs the
// responsibilities into the closed-form weighted MLEs of Table I. The
// fitted model scores candidate pairs with the log posterior-odds
// matching score of Eq. 11.
package emfit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"iuad/internal/sched"
)

// Family selects the exponential-family distribution of one feature.
type Family int

const (
	// Gaussian models unbounded symmetric features (e.g. cosine values).
	Gaussian Family = iota
	// Exponential models non-negative continuous features.
	Exponential
	// Multinomial models features discretized into bins.
	Multinomial
	// ZeroInflatedExponential models sparse non-negative features: a
	// point mass π at zero mixed with an Exponential on the positives.
	// This is the right family for similarity functions that are exactly
	// zero for most unrelated pairs (shared cliques, shared venues) —
	// a plain Exponential degenerates to λ→∞ on such data, drowning all
	// other evidence.
	ZeroInflatedExponential
)

func (f Family) String() string {
	switch f {
	case Gaussian:
		return "gaussian"
	case Exponential:
		return "exponential"
	case Multinomial:
		return "multinomial"
	case ZeroInflatedExponential:
		return "zero-inflated-exponential"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// FeatureSpec describes how one similarity function is modeled.
type FeatureSpec struct {
	Name   string
	Family Family
	// Bins holds the upper edges of the multinomial bins (ascending);
	// values above the last edge land in an implicit overflow bin.
	// Ignored for other families.
	Bins []float64
}

// component is a fitted per-feature distribution of one mixture side.
type component struct {
	family Family
	mu     float64   // Gaussian mean
	sigma2 float64   // Gaussian variance
	lambda float64   // Exponential rate
	logPi0 float64   // zero-inflation: log P(x = 0)
	logPi1 float64   // zero-inflation: log P(x > 0)
	logp   []float64 // Multinomial log bin probabilities
	bins   []float64
}

const (
	// varianceFloor bounds fitted Gaussian variances. Similarity features
	// live on O(1) scales; a tighter floor lets a nearly-constant feature
	// (e.g. saturated cosines) produce explosive log-density swings that
	// drown every other feature.
	varianceFloor = 1e-4
	lambdaMin     = 1e-6
	lambdaMax     = 1e4
	mixFloor      = 1e-4
	// zeroEps is the threshold below which a ZeroInflatedExponential
	// observation counts as the zero atom.
	zeroEps = 1e-12
)

func (c *component) logPDF(x float64) float64 {
	switch c.family {
	case Gaussian:
		d := x - c.mu
		return -0.5*math.Log(2*math.Pi*c.sigma2) - d*d/(2*c.sigma2)
	case Exponential:
		if x < 0 {
			x = 0
		}
		return math.Log(c.lambda) - c.lambda*x
	case Multinomial:
		return c.logp[binOf(c.bins, x)]
	case ZeroInflatedExponential:
		if x < zeroEps {
			return c.logPi0
		}
		return c.logPi1 + math.Log(c.lambda) - c.lambda*x
	}
	panic("emfit: unknown family")
}

func binOf(edges []float64, x float64) int {
	// First bin whose upper edge is ≥ x; overflow bin otherwise.
	i := sort.SearchFloat64s(edges, x)
	return i
}

// fit computes the weighted MLE of Table I for one feature/side.
func fitComponent(spec FeatureSpec, xs []float64, w []float64) component {
	c := component{family: spec.Family, bins: spec.Bins}
	var sw float64
	for _, wj := range w {
		sw += wj
	}
	switch spec.Family {
	case Gaussian:
		if sw <= 0 {
			c.mu, c.sigma2 = 0, 1
			return c
		}
		var mean float64
		for j, x := range xs {
			mean += w[j] * x
		}
		mean /= sw
		var ss float64
		for j, x := range xs {
			d := x - mean
			ss += w[j] * d * d
		}
		c.mu = mean
		c.sigma2 = ss / sw
		if c.sigma2 < varianceFloor {
			c.sigma2 = varianceFloor
		}
	case Exponential:
		// λ = Σw / Σ(w·x), clamped for numerical safety.
		var sx float64
		for j, x := range xs {
			if x < 0 {
				x = 0
			}
			sx += w[j] * x
		}
		if sw <= 0 || sx <= 0 {
			c.lambda = lambdaMax
			return c
		}
		c.lambda = sw / sx
		if c.lambda < lambdaMin {
			c.lambda = lambdaMin
		}
		if c.lambda > lambdaMax {
			c.lambda = lambdaMax
		}
	case Multinomial:
		nb := len(spec.Bins) + 1
		counts := make([]float64, nb)
		for j, x := range xs {
			counts[binOf(spec.Bins, x)] += w[j]
		}
		c.logp = make([]float64, nb)
		// Laplace smoothing keeps unseen bins finite.
		denom := sw + float64(nb)
		for b := 0; b < nb; b++ {
			c.logp[b] = math.Log((counts[b] + 1) / denom)
		}
	case ZeroInflatedExponential:
		var swZero, swPos, sxPos float64
		for j, x := range xs {
			if x < zeroEps {
				swZero += w[j]
			} else {
				swPos += w[j]
				sxPos += w[j] * x
			}
		}
		// Laplace-smoothed zero probability keeps both atoms finite.
		pi0 := (swZero + 1) / (sw + 2)
		c.logPi0 = math.Log(pi0)
		c.logPi1 = math.Log(1 - pi0)
		if swPos <= 0 || sxPos <= 0 {
			c.lambda = lambdaMax
		} else {
			c.lambda = clamp(swPos/sxPos, lambdaMin, lambdaMax)
		}
	default:
		panic("emfit: unknown family " + spec.Family.String())
	}
	return c
}

// Model is a fitted two-component mixture.
type Model struct {
	Specs []FeatureSpec
	// P is the mixing weight P(r ∈ M).
	P float64
	// LogLikelihood is the final training log-likelihood.
	LogLikelihood float64
	// Iterations is how many EM rounds ran.
	Iterations int

	matched   []component
	unmatched []component
}

// Options tunes Fit.
type Options struct {
	MaxIter int
	// Tol is the relative log-likelihood improvement below which EM
	// stops.
	Tol float64
	// Workers sizes the worker pool for the batch E-step (per-sample
	// posterior responsibilities) and the M-step (per-feature component
	// fits). The zero value runs single-threaded. The IUAD pipeline
	// overwrites this field with its own Config.Workers, so when Fit is
	// reached through core there is a single concurrency knob. The fit
	// is bit-identical for every worker count: per-sample terms are
	// computed positionally and the log-likelihood is reduced serially
	// in sample order.
	Workers int
	// InitResp optionally seeds the initial responsibilities (length N,
	// values in [0,1]). When nil, Fit seeds from the feature-sum
	// quantile heuristic (top quartile of standardized feature sums is
	// presumed matched).
	InitResp []float64
	// Clamped marks samples whose responsibility is an observed label
	// rather than a latent variable: their InitResp value is held fixed
	// through every E-step (semi-supervised EM). Length N when non-nil;
	// requires InitResp.
	Clamped []bool
}

// DefaultOptions returns the options used by IUAD.
func DefaultOptions() Options { return Options{MaxIter: 100, Tol: 1e-6} }

// ErrNoData is returned when Fit receives no samples.
var ErrNoData = errors.New("emfit: no samples")

// Fit learns the mixture from the N×m sample matrix X. It returns the
// model and the final responsibilities.
func Fit(x [][]float64, specs []FeatureSpec, opts Options) (*Model, []float64, error) {
	n := len(x)
	if n == 0 {
		return nil, nil, ErrNoData
	}
	m := len(specs)
	for j, row := range x {
		if len(row) != m {
			return nil, nil, fmt.Errorf("emfit: sample %d has %d features, want %d", j, len(row), m)
		}
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("emfit: sample %d feature %d is %v", j, i, v)
			}
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}

	resp := make([]float64, n)
	if opts.InitResp != nil {
		if len(opts.InitResp) != n {
			return nil, nil, fmt.Errorf("emfit: InitResp length %d, want %d", len(opts.InitResp), n)
		}
		copy(resp, opts.InitResp)
	} else {
		seedResponsibilities(x, resp)
	}
	if opts.Clamped != nil {
		if len(opts.Clamped) != n {
			return nil, nil, fmt.Errorf("emfit: Clamped length %d, want %d", len(opts.Clamped), n)
		}
		if opts.InitResp == nil {
			return nil, nil, fmt.Errorf("emfit: Clamped requires InitResp")
		}
	}

	// Column views to avoid re-slicing in every M-step.
	cols := make([][]float64, m)
	for i := 0; i < m; i++ {
		cols[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			cols[i][j] = x[j][i]
		}
	}
	wU := make([]float64, n)
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	// Per-sample E-step scratch: density and posterior are written
	// positionally by the pool, then reduced serially in sample order so
	// the log-likelihood sum (and hence convergence) is independent of
	// the worker count.
	dens := make([]float64, n)
	post := make([]float64, n)

	model := &Model{Specs: specs}
	prevLL := math.Inf(-1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// M-step. The mixing weight needs a serial pass; the 2m
		// component MLEs are independent and fan out per feature/side,
		// each summing over samples in fixed order.
		var sumResp float64
		for j := range resp {
			wU[j] = 1 - resp[j]
			sumResp += resp[j]
		}
		model.P = clamp(sumResp/float64(n), mixFloor, 1-mixFloor)
		if cap(model.matched) < m {
			model.matched = make([]component, m)
			model.unmatched = make([]component, m)
		}
		model.matched = model.matched[:m]
		model.unmatched = model.unmatched[:m]
		sched.ForEach(workers, 2*m, func(k int) {
			if k < m {
				model.matched[k] = fitComponent(specs[k], cols[k], resp)
			} else {
				model.unmatched[k-m] = fitComponent(specs[k-m], cols[k-m], wU)
			}
		})

		// E-step + log-likelihood: the batch of per-sample posteriors is
		// the hot loop — embarrassingly parallel over samples.
		logP := math.Log(model.P)
		logQ := math.Log(1 - model.P)
		sched.ForEach(workers, n, func(j int) {
			lm, lu := logP, logQ
			for i := 0; i < m; i++ {
				lm += model.matched[i].logPDF(x[j][i])
				lu += model.unmatched[i].logPDF(x[j][i])
			}
			mx := math.Max(lm, lu)
			den := mx + math.Log(math.Exp(lm-mx)+math.Exp(lu-mx))
			dens[j] = den
			post[j] = math.Exp(lm - den)
		})
		ll := 0.0
		for j := 0; j < n; j++ {
			if opts.Clamped != nil && opts.Clamped[j] {
				resp[j] = opts.InitResp[j] // observed label, not latent
			} else {
				resp[j] = post[j]
			}
			ll += dens[j]
		}
		model.LogLikelihood = ll
		model.Iterations = iter
		if ll-prevLL < opts.Tol*math.Abs(ll) && iter > 1 {
			break
		}
		prevLL = ll
	}
	return model, resp, nil
}

// seedResponsibilities initializes EM from the standardized feature-sum
// quantile heuristic.
func seedResponsibilities(x [][]float64, resp []float64) {
	n, m := len(x), len(x[0])
	mean := make([]float64, m)
	std := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			mean[i] += x[j][i]
		}
		mean[i] /= float64(n)
		for j := 0; j < n; j++ {
			d := x[j][i] - mean[i]
			std[i] += d * d
		}
		std[i] = math.Sqrt(std[i] / float64(n))
		if std[i] == 0 {
			std[i] = 1
		}
	}
	sums := make([]float64, n)
	order := make([]int, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += (x[j][i] - mean[i]) / std[i]
		}
		sums[j] = s
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	cut := n / 4
	if cut == 0 {
		cut = 1
	}
	for rank, j := range order {
		if rank < cut {
			resp[j] = 0.9
		} else {
			resp[j] = 0.1
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogOdds returns the matching score of Eq. 11:
// log( P(r∈M|γ,Θ) / P(r∈U|γ,Θ) ).
func (m *Model) LogOdds(gamma []float64) float64 {
	if len(gamma) != len(m.Specs) {
		panic(fmt.Sprintf("emfit: score with %d features, model has %d", len(gamma), len(m.Specs)))
	}
	s := math.Log(m.P) - math.Log(1-m.P)
	for i := range gamma {
		s += m.matched[i].logPDF(gamma[i]) - m.unmatched[i].logPDF(gamma[i])
	}
	return s
}

// Posterior returns P(r ∈ M | γ, Θ).
func (m *Model) Posterior(gamma []float64) float64 {
	odds := m.LogOdds(gamma)
	if odds > 500 {
		return 1
	}
	if odds < -500 {
		return 0
	}
	e := math.Exp(odds)
	return e / (1 + e)
}

// MatchedMean returns the fitted location parameter of feature i on the
// matched side: the Gaussian mean, 1/λ for Exponential, or the expected
// bin index for Multinomial. Useful for diagnostics and tests.
func (m *Model) MatchedMean(i int) float64 { return m.matched[i].mean() }

// UnmatchedMean is MatchedMean for the unmatched side.
func (m *Model) UnmatchedMean(i int) float64 { return m.unmatched[i].mean() }

func (c *component) mean() float64 {
	switch c.family {
	case Gaussian:
		return c.mu
	case Exponential:
		return 1 / c.lambda
	case Multinomial:
		e := 0.0
		for b, lp := range c.logp {
			e += float64(b) * math.Exp(lp)
		}
		return e
	case ZeroInflatedExponential:
		return math.Exp(c.logPi1) / c.lambda
	}
	panic("emfit: unknown family")
}
