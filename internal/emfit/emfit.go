// Package emfit implements the probabilistic generative model of §V-C: a
// two-component mixture over similarity vectors γ ∈ R^m, where component
// M ("matched" — the two vertices are one author) and component U
// ("unmatched") each model the features independently with
// exponential-family distributions (Gaussian, Exponential, or
// Multinomial over bins), exactly the families whose maximum-likelihood
// estimators appear in the paper's Table I.
//
// Parameters are learned with EM: the E-step computes the posterior
// responsibility l_j = P(r_j ∈ M | γ_j, Θ), the M-step plugs the
// responsibilities into the closed-form weighted MLEs of Table I. The
// fitted model scores candidate pairs with the log posterior-odds
// matching score of Eq. 11 (LogOdds, or its compiled form, Scorer).
//
// The engine is columnar: training data lives in a feature-major Matrix
// (one flat []float64 per feature), and everything that does not change
// across EM iterations — multinomial bin indexes, zero-atom masks,
// clamped Exponential observations — is precomputed once into
// per-feature invariant columns before the loop, so each iteration is
// branch-light table lookups and single passes with zero steady-state
// allocations. Every per-sample float expression and every reduction
// order is identical to the row-major reference implementation, so the
// fitted parameters, responsibilities, and iteration count are
// bit-identical (pinned by TestEMColumnarEquivalence), for every worker
// count.
package emfit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"iuad/internal/sched"
)

// Family selects the exponential-family distribution of one feature.
type Family int

const (
	// Gaussian models unbounded symmetric features (e.g. cosine values).
	Gaussian Family = iota
	// Exponential models non-negative continuous features.
	Exponential
	// Multinomial models features discretized into bins.
	Multinomial
	// ZeroInflatedExponential models sparse non-negative features: a
	// point mass π at zero mixed with an Exponential on the positives.
	// This is the right family for similarity functions that are exactly
	// zero for most unrelated pairs (shared cliques, shared venues) —
	// a plain Exponential degenerates to λ→∞ on such data, drowning all
	// other evidence.
	ZeroInflatedExponential
)

func (f Family) String() string {
	switch f {
	case Gaussian:
		return "gaussian"
	case Exponential:
		return "exponential"
	case Multinomial:
		return "multinomial"
	case ZeroInflatedExponential:
		return "zero-inflated-exponential"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// FeatureSpec describes how one similarity function is modeled.
type FeatureSpec struct {
	Name   string
	Family Family
	// Bins holds the upper edges of the multinomial bins (ascending);
	// values above the last edge land in an implicit overflow bin.
	// Ignored for other families.
	Bins []float64
}

// component is a fitted per-feature distribution of one mixture side.
type component struct {
	family Family
	mu     float64   // Gaussian mean
	sigma2 float64   // Gaussian variance
	lambda float64   // Exponential rate
	logPi0 float64   // zero-inflation: log P(x = 0)
	logPi1 float64   // zero-inflation: log P(x > 0)
	logp   []float64 // Multinomial log bin probabilities
	bins   []float64
}

const (
	// varianceFloor bounds fitted Gaussian variances. Similarity features
	// live on O(1) scales; a tighter floor lets a nearly-constant feature
	// (e.g. saturated cosines) produce explosive log-density swings that
	// drown every other feature.
	varianceFloor = 1e-4
	lambdaMin     = 1e-6
	lambdaMax     = 1e4
	mixFloor      = 1e-4
	// zeroEps is the threshold below which a ZeroInflatedExponential
	// observation counts as the zero atom.
	zeroEps = 1e-12
)

func (c *component) logPDF(x float64) float64 {
	switch c.family {
	case Gaussian:
		d := x - c.mu
		return -0.5*math.Log(2*math.Pi*c.sigma2) - d*d/(2*c.sigma2)
	case Exponential:
		if x < 0 {
			x = 0
		}
		return math.Log(c.lambda) - c.lambda*x
	case Multinomial:
		return c.logp[binOf(c.bins, x)]
	case ZeroInflatedExponential:
		if x < zeroEps {
			return c.logPi0
		}
		return c.logPi1 + math.Log(c.lambda) - c.lambda*x
	}
	panic("emfit: unknown family")
}

func binOf(edges []float64, x float64) int {
	// First bin whose upper edge is ≥ x; overflow bin otherwise.
	i := sort.SearchFloat64s(edges, x)
	return i
}

// Model is a fitted two-component mixture.
type Model struct {
	Specs []FeatureSpec
	// P is the mixing weight P(r ∈ M).
	P float64
	// LogLikelihood is the final training log-likelihood.
	LogLikelihood float64
	// Iterations is how many EM rounds ran.
	Iterations int

	matched   []component
	unmatched []component
}

// Options tunes Fit.
type Options struct {
	MaxIter int
	// Tol is the relative log-likelihood improvement below which EM
	// stops.
	Tol float64
	// Workers sizes the worker pool for the batch E-step (per-sample
	// posterior responsibilities) and the M-step (per-feature component
	// fits). The zero value runs single-threaded. The IUAD pipeline
	// overwrites this field with its own Config.Workers, so when Fit is
	// reached through core there is a single concurrency knob. The fit
	// is bit-identical for every worker count: per-sample terms are
	// computed positionally and the log-likelihood is reduced serially
	// in sample order.
	Workers int
	// InitResp optionally seeds the initial responsibilities (length N,
	// values in [0,1]). When nil, Fit seeds from the feature-sum
	// quantile heuristic (top quartile of standardized feature sums is
	// presumed matched).
	InitResp []float64
	// Clamped marks samples whose responsibility is an observed label
	// rather than a latent variable: their InitResp value is held fixed
	// through every E-step (semi-supervised EM). Length N when non-nil;
	// requires InitResp.
	Clamped []bool
}

// DefaultOptions returns the options used by IUAD.
func DefaultOptions() Options { return Options{MaxIter: 100, Tol: 1e-6} }

// ErrNoData is returned when Fit receives no samples.
var ErrNoData = errors.New("emfit: no samples")

// maxAbsSample bounds the magnitude of a training observation. Beyond
// it, intermediate sufficient statistics (squared Gaussian deviations
// and their weighted sums) can overflow to ±Inf and poison the fit
// with NaNs while every input stays technically finite — FuzzEMFit
// found exactly that with a 1.4e160 cell. Similarity features live on
// O(1) scales, so anything near this bound is corruption, and it is
// rejected as such.
const maxAbsSample = 1e100

// ErrBadSample reports an unusable training observation — NaN, ±Inf,
// or magnitude beyond the overflow-safe bound — at sample Row, feature
// Col, holding Value. It is returned by Fit and FitMatrix so callers
// can locate the poisoned cell with errors.As instead of parsing an
// error string.
type ErrBadSample struct {
	Row, Col int
	Value    float64
}

func (e ErrBadSample) Error() string {
	return fmt.Sprintf("emfit: sample %d feature %d is %v", e.Row, e.Col, e.Value)
}

// badSample reports whether v may not enter a fit.
func badSample(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < -maxAbsSample || v > maxAbsSample
}

// Fit learns the mixture from the N×m row-major sample matrix X. It
// returns the model and the final responsibilities.
//
// Fit is the row-major convenience wrapper over FitMatrix: it
// transposes X into a feature-major Matrix exactly once, with NaN/Inf
// validation folded into the same pass (no separate validation sweep).
func Fit(x [][]float64, specs []FeatureSpec, opts Options) (*Model, []float64, error) {
	n := len(x)
	if n == 0 {
		return nil, nil, ErrNoData
	}
	m := len(specs)
	mx := &Matrix{rows: n, cols: make([][]float64, m)}
	for i := range mx.cols {
		mx.cols[i] = make([]float64, n)
	}
	for j, row := range x {
		if len(row) != m {
			return nil, nil, fmt.Errorf("emfit: sample %d has %d features, want %d", j, len(row), m)
		}
		for i, v := range row {
			if badSample(v) {
				return nil, nil, ErrBadSample{Row: j, Col: i, Value: v}
			}
			mx.cols[i][j] = v
		}
	}
	return fitMatrix(mx, specs, opts, true)
}

// FitMatrix learns the mixture from a feature-major matrix, avoiding
// the row-major transpose entirely for callers (like the IUAD fit-prep
// path) that assemble training γ vectors column-wise. Semantics are
// identical to Fit; observations are validated during the invariant
// precomputation pass.
func FitMatrix(mx *Matrix, specs []FeatureSpec, opts Options) (*Model, []float64, error) {
	return fitMatrix(mx, specs, opts, false)
}

func fitMatrix(mx *Matrix, specs []FeatureSpec, opts Options, validated bool) (*Model, []float64, error) {
	st, err := newFitState(mx, specs, opts, validated)
	if err != nil {
		return nil, nil, err
	}
	prevLL := math.Inf(-1)
	for iter := 1; iter <= st.opts.MaxIter; iter++ {
		ll := st.iterate()
		st.model.LogLikelihood = ll
		st.model.Iterations = iter
		if ll-prevLL < st.opts.Tol*math.Abs(ll) && iter > 1 {
			break
		}
		prevLL = ll
	}
	return st.model, st.resp, nil
}

// fitState is the columnar sufficient-statistics engine behind one EM
// fit: the feature columns, the per-feature invariants that never
// change across iterations, and every scratch buffer the loop needs.
// All allocation happens in newFitState; iterate() is allocation-free
// in steady state (pinned by TestAllocsEMIteration).
type fitState struct {
	n, m    int
	specs   []FeatureSpec
	opts    Options
	workers int

	// xe[i] is the effective observation column of feature i: the raw
	// matrix column, except for Exponential features where the x<0 → 0
	// clamp (applied per observation per pass by the row-major engine)
	// is materialized once into a private copy. Raw columns are never
	// mutated.
	xe [][]float64
	// binIdx[i] is the precomputed multinomial bin index of every
	// observation (non-nil only for Multinomial features with ≤ 256
	// bins; bin edges never change across iterations, so the per-
	// iteration binary search of the row-major engine was pure waste).
	binIdx [][]uint8
	// zeroMask[i] marks the zero-atom observations of
	// ZeroInflatedExponential feature i.
	zeroMask [][]bool

	resp, wU   []float64
	dens, post []float64
	lm, lu     []float64

	// Multinomial M-step scratch: weighted bin counts per side, cleared
	// and refilled each iteration (the log-probability tables live in
	// the model components and are likewise reused in place).
	countsM, countsU [][]float64

	// chunks shards the sample range for the E-step; mstepFn/estepFn
	// are the worker closures, built once so iterations do not allocate
	// closure headers.
	chunks  [][2]int
	mstepFn func(k int)
	estepFn func(c int)

	model      *Model
	swM, swU   float64 // per-side weight sums of the current iteration
	logP, logQ float64 // log mixing weights of the current iteration
}

func newFitState(mx *Matrix, specs []FeatureSpec, opts Options, validated bool) (*fitState, error) {
	n := mx.Rows()
	if n == 0 {
		return nil, ErrNoData
	}
	m := len(specs)
	if mx.Features() != m {
		return nil, fmt.Errorf("emfit: matrix has %d features, specs have %d", mx.Features(), m)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	st := &fitState{n: n, m: m, specs: specs, opts: opts}

	resp := make([]float64, n)
	if opts.InitResp != nil {
		if len(opts.InitResp) != n {
			return nil, fmt.Errorf("emfit: InitResp length %d, want %d", len(opts.InitResp), n)
		}
		copy(resp, opts.InitResp)
	}
	if opts.Clamped != nil {
		if len(opts.Clamped) != n {
			return nil, fmt.Errorf("emfit: Clamped length %d, want %d", len(opts.Clamped), n)
		}
		if opts.InitResp == nil {
			return nil, fmt.Errorf("emfit: Clamped requires InitResp")
		}
	}
	st.resp = resp

	// Per-feature invariant precomputation, fused with observation
	// validation when the caller has not already validated (FitMatrix):
	// one pass over each column computes everything the EM loop will
	// ever need besides the raw values.
	st.xe = make([][]float64, m)
	st.binIdx = make([][]uint8, m)
	st.zeroMask = make([][]bool, m)
	st.countsM = make([][]float64, m)
	st.countsU = make([][]float64, m)
	model := &Model{
		Specs:     specs,
		matched:   make([]component, m),
		unmatched: make([]component, m),
	}
	st.model = model
	for i := 0; i < m; i++ {
		col := mx.cols[i]
		if !validated {
			for j, v := range col {
				if badSample(v) {
					return nil, ErrBadSample{Row: j, Col: i, Value: v}
				}
			}
		}
		model.matched[i] = component{family: specs[i].Family, bins: specs[i].Bins}
		model.unmatched[i] = component{family: specs[i].Family, bins: specs[i].Bins}
		st.xe[i] = col
		switch specs[i].Family {
		case Exponential:
			clamped := make([]float64, n)
			for j, v := range col {
				if v < 0 {
					v = 0
				}
				clamped[j] = v
			}
			st.xe[i] = clamped
		case Multinomial:
			nb := len(specs[i].Bins) + 1
			if nb <= 256 {
				idx := make([]uint8, n)
				for j, v := range col {
					idx[j] = uint8(binOf(specs[i].Bins, v))
				}
				st.binIdx[i] = idx
			}
			st.countsM[i] = make([]float64, nb)
			st.countsU[i] = make([]float64, nb)
			model.matched[i].logp = make([]float64, nb)
			model.unmatched[i].logp = make([]float64, nb)
		case ZeroInflatedExponential:
			mask := make([]bool, n)
			for j, v := range col {
				mask[j] = v < zeroEps
			}
			st.zeroMask[i] = mask
		}
	}
	if opts.InitResp == nil {
		seedResponsibilities(mx.cols, resp)
	}

	st.wU = make([]float64, n)
	st.dens = make([]float64, n)
	st.post = make([]float64, n)
	st.lm = make([]float64, n)
	st.lu = make([]float64, n)
	st.workers = opts.Workers
	if st.workers <= 0 {
		st.workers = 1
	}
	st.chunks = sched.Chunks(st.workers, n)
	st.mstepFn = st.fitFeature
	st.estepFn = func(c int) { st.estepRange(st.chunks[c][0], st.chunks[c][1]) }
	return st, nil
}

// iterate runs one EM round: M-step from the current responsibilities,
// then E-step + serial log-likelihood reduction. The body mirrors the
// row-major engine operation for operation — the mixing-weight pass,
// each component MLE, each per-sample log-density sum, and the final
// sample-order reduction produce the same floats in the same order, so
// parameters and convergence are bit-identical for every worker count.
func (st *fitState) iterate() float64 {
	model := st.model
	// M-step. The mixing weight needs a serial pass; the per-side
	// weight sums accumulate in the same ascending sample order the
	// row-major fitComponent used, computed once instead of once per
	// component.
	var sumResp, sumWU float64
	for j, r := range st.resp {
		w := 1 - r
		st.wU[j] = w
		sumResp += r
		sumWU += w
	}
	model.P = clamp(sumResp/float64(st.n), mixFloor, 1-mixFloor)
	st.swM, st.swU = sumResp, sumWU
	// The 2m component MLEs are independent and fan out per
	// feature/side, each a single pass over precomputed columns.
	sched.ForEach(st.workers, 2*st.m, st.mstepFn)

	// E-step + log-likelihood: per-sample log densities accumulate in
	// feature order into positional buffers, chunked over the pool.
	st.logP = math.Log(model.P)
	st.logQ = math.Log(1 - model.P)
	sched.ForEach(st.workers, len(st.chunks), st.estepFn)

	ll := 0.0
	clampedMask := st.opts.Clamped
	if clampedMask != nil {
		for j := 0; j < st.n; j++ {
			if clampedMask[j] {
				st.resp[j] = st.opts.InitResp[j] // observed label, not latent
			} else {
				st.resp[j] = st.post[j]
			}
			ll += st.dens[j]
		}
	} else {
		for j := 0; j < st.n; j++ {
			st.resp[j] = st.post[j]
			ll += st.dens[j]
		}
	}
	return ll
}

// fitFeature computes the weighted MLE of Table I for component k:
// feature k of the matched side for k < m, feature k−m of the unmatched
// side otherwise. Single pass over the feature's invariant columns,
// writing the model component in place.
func (st *fitState) fitFeature(k int) {
	i, w, sw := k, st.resp, st.swM
	side, counts := st.model.matched, st.countsM
	if k >= st.m {
		i = k - st.m
		w, sw = st.wU, st.swU
		side, counts = st.model.unmatched, st.countsU
	}
	c := &side[i]
	xs := st.xe[i]
	switch st.specs[i].Family {
	case Gaussian:
		if sw <= 0 {
			c.mu, c.sigma2 = 0, 1
			return
		}
		var mean float64
		for j, x := range xs {
			mean += w[j] * x
		}
		mean /= sw
		var ss float64
		for j, x := range xs {
			d := x - mean
			ss += w[j] * d * d
		}
		c.mu = mean
		c.sigma2 = ss / sw
		if c.sigma2 < varianceFloor {
			c.sigma2 = varianceFloor
		}
	case Exponential:
		// λ = Σw / Σ(w·x), clamped for numerical safety; xs is already
		// clamped at zero.
		var sx float64
		for j, x := range xs {
			sx += w[j] * x
		}
		if sw <= 0 || sx <= 0 {
			c.lambda = lambdaMax
			return
		}
		c.lambda = sw / sx
		if c.lambda < lambdaMin {
			c.lambda = lambdaMin
		}
		if c.lambda > lambdaMax {
			c.lambda = lambdaMax
		}
	case Multinomial:
		cnt := counts[i]
		clear(cnt)
		if bi := st.binIdx[i]; bi != nil {
			for j, b := range bi {
				cnt[b] += w[j]
			}
		} else {
			bins := st.specs[i].Bins
			for j, x := range xs {
				cnt[binOf(bins, x)] += w[j]
			}
		}
		// Laplace smoothing keeps unseen bins finite.
		nb := len(cnt)
		denom := sw + float64(nb)
		for b := 0; b < nb; b++ {
			c.logp[b] = math.Log((cnt[b] + 1) / denom)
		}
	case ZeroInflatedExponential:
		var swZero, swPos, sxPos float64
		zm := st.zeroMask[i]
		for j, x := range xs {
			if zm[j] {
				swZero += w[j]
			} else {
				swPos += w[j]
				sxPos += w[j] * x
			}
		}
		// Laplace-smoothed zero probability keeps both atoms finite.
		pi0 := (swZero + 1) / (sw + 2)
		c.logPi0 = math.Log(pi0)
		c.logPi1 = math.Log(1 - pi0)
		if swPos <= 0 || sxPos <= 0 {
			c.lambda = lambdaMax
		} else {
			c.lambda = clamp(swPos/sxPos, lambdaMin, lambdaMax)
		}
	default:
		panic("emfit: unknown family " + st.specs[i].Family.String())
	}
}

// estepRange computes the posterior responsibility and log density of
// samples [lo, hi): per-sample accumulators start at the log mixing
// weights and add one per-feature term in feature order — exactly the
// order (and exactly the float expressions, with iteration-invariant
// subterms hoisted) of the row-major logPDF sums — then collapse through
// the identical log-sum-exp.
func (st *fitState) estepRange(lo, hi int) {
	lm, lu := st.lm, st.lu
	for j := lo; j < hi; j++ {
		lm[j] = st.logP
		lu[j] = st.logQ
	}
	for i := 0; i < st.m; i++ {
		cm, cu := &st.model.matched[i], &st.model.unmatched[i]
		xs := st.xe[i]
		switch st.specs[i].Family {
		case Gaussian:
			gcM := -0.5 * math.Log(2*math.Pi*cm.sigma2)
			twoM := 2 * cm.sigma2
			gcU := -0.5 * math.Log(2*math.Pi*cu.sigma2)
			twoU := 2 * cu.sigma2
			muM, muU := cm.mu, cu.mu
			for j := lo; j < hi; j++ {
				x := xs[j]
				dM := x - muM
				lm[j] += gcM - dM*dM/twoM
				dU := x - muU
				lu[j] += gcU - dU*dU/twoU
			}
		case Exponential:
			logLamM, lamM := math.Log(cm.lambda), cm.lambda
			logLamU, lamU := math.Log(cu.lambda), cu.lambda
			for j := lo; j < hi; j++ {
				x := xs[j]
				lm[j] += logLamM - lamM*x
				lu[j] += logLamU - lamU*x
			}
		case Multinomial:
			lpM, lpU := cm.logp, cu.logp
			if bi := st.binIdx[i]; bi != nil {
				for j := lo; j < hi; j++ {
					b := bi[j]
					lm[j] += lpM[b]
					lu[j] += lpU[b]
				}
			} else {
				bins := st.specs[i].Bins
				for j := lo; j < hi; j++ {
					b := binOf(bins, xs[j])
					lm[j] += lpM[b]
					lu[j] += lpU[b]
				}
			}
		case ZeroInflatedExponential:
			zm := st.zeroMask[i]
			zcM := cm.logPi1 + math.Log(cm.lambda)
			zcU := cu.logPi1 + math.Log(cu.lambda)
			lamM, lamU := cm.lambda, cu.lambda
			p0M, p0U := cm.logPi0, cu.logPi0
			for j := lo; j < hi; j++ {
				if zm[j] {
					lm[j] += p0M
					lu[j] += p0U
				} else {
					x := xs[j]
					lm[j] += zcM - lamM*x
					lu[j] += zcU - lamU*x
				}
			}
		}
	}
	for j := lo; j < hi; j++ {
		a, b := lm[j], lu[j]
		mx := math.Max(a, b)
		den := mx + math.Log(math.Exp(a-mx)+math.Exp(b-mx))
		st.dens[j] = den
		st.post[j] = math.Exp(a - den)
	}
}

// seedResponsibilities initializes EM from the standardized feature-sum
// quantile heuristic, over feature-major columns. Per-sample sums add
// their per-feature terms in feature order — the same addition order as
// the row-major seeding, so the resulting ranking is bit-identical.
func seedResponsibilities(cols [][]float64, resp []float64) {
	n, m := len(resp), len(cols)
	mean := make([]float64, m)
	std := make([]float64, m)
	for i := 0; i < m; i++ {
		col := cols[i]
		for j := 0; j < n; j++ {
			mean[i] += col[j]
		}
		mean[i] /= float64(n)
		for j := 0; j < n; j++ {
			d := col[j] - mean[i]
			std[i] += d * d
		}
		std[i] = math.Sqrt(std[i] / float64(n))
		if std[i] == 0 {
			std[i] = 1
		}
	}
	sums := make([]float64, n)
	for i := 0; i < m; i++ {
		col := cols[i]
		mi, si := mean[i], std[i]
		for j := 0; j < n; j++ {
			sums[j] += (col[j] - mi) / si
		}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	cut := n / 4
	if cut == 0 {
		cut = 1
	}
	for rank, j := range order {
		if rank < cut {
			resp[j] = 0.9
		} else {
			resp[j] = 0.1
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogOdds returns the matching score of Eq. 11:
// log( P(r∈M|γ,Θ) / P(r∈U|γ,Θ) ).
//
// Hot paths should compile the model once with Scorer and score through
// that instead: same bits, no per-call binary search or transcendental
// re-evaluation.
func (m *Model) LogOdds(gamma []float64) float64 {
	if len(gamma) != len(m.Specs) {
		panic(fmt.Sprintf("emfit: score with %d features, model has %d", len(gamma), len(m.Specs)))
	}
	s := math.Log(m.P) - math.Log(1-m.P)
	for i := range gamma {
		s += m.matched[i].logPDF(gamma[i]) - m.unmatched[i].logPDF(gamma[i])
	}
	return s
}

// Posterior returns P(r ∈ M | γ, Θ).
func (m *Model) Posterior(gamma []float64) float64 {
	odds := m.LogOdds(gamma)
	if odds > 500 {
		return 1
	}
	if odds < -500 {
		return 0
	}
	e := math.Exp(odds)
	return e / (1 + e)
}

// MatchedMean returns the fitted location parameter of feature i on the
// matched side: the Gaussian mean, 1/λ for Exponential, or the expected
// bin index for Multinomial. Useful for diagnostics and tests.
func (m *Model) MatchedMean(i int) float64 { return m.matched[i].mean() }

// UnmatchedMean is MatchedMean for the unmatched side.
func (m *Model) UnmatchedMean(i int) float64 { return m.unmatched[i].mean() }

func (c *component) mean() float64 {
	switch c.family {
	case Gaussian:
		return c.mu
	case Exponential:
		return 1 / c.lambda
	case Multinomial:
		e := 0.0
		for b, lp := range c.logp {
			e += float64(b) * math.Exp(lp)
		}
		return e
	case ZeroInflatedExponential:
		return math.Exp(c.logPi1) / c.lambda
	}
	panic("emfit: unknown family")
}
