package emfit

import (
	"fmt"
	"math"
)

// Scorer is the compiled form of Model.LogOdds: every subterm of the
// Eq. 11 matching score that depends only on the fitted parameters —
// log mixing odds, Gaussian normalization constants, log rates,
// zero-atom differences, and the full multinomial bin→log-odds tables —
// is evaluated once at compile time, so scoring a candidate pair is a
// handful of multiply-adds and table lookups per feature instead of
// per-call switches, binary searches, and transcendental calls.
//
// The compiled score is bit-identical to LogOdds for every input
// (pinned by TestScorerMatchesLogOdds): each hoisted constant is the
// same float expression the interpreted path evaluates, and the
// remaining per-call arithmetic keeps the identical expression shape
// and association order.
//
// A Scorer is immutable after compilation and safe for concurrent use.
type Scorer struct {
	base  float64 // log P − log(1−P)
	feats []scorerFeat
}

// scorerFeat holds the compiled constants of one feature. Field groups
// are family-specific; unused groups stay zero.
type scorerFeat struct {
	family Family
	// Gaussian: per-side mean, normalization constant −½log(2πσ²), and
	// denominator 2σ².
	muM, gcM, twoM float64
	muU, gcU, twoU float64
	// Exponential (and the positive branch of zero-inflation): per-side
	// log rate and rate. zcM/zcU are the zero-inflated positive-branch
	// constants logπ₁ + logλ.
	logLamM, lamM float64
	logLamU, lamU float64
	zcM, zcU      float64
	// zeroDiff is the precomputed matched−unmatched log-density gap of
	// the zero atom.
	zeroDiff float64
	// Multinomial: bin edges plus the bin→log-odds difference table.
	bins []float64
	tbl  []float64
}

// Scorer compiles the fitted model into its decision-scoring form.
func (m *Model) Scorer() *Scorer {
	s := &Scorer{
		base:  math.Log(m.P) - math.Log(1-m.P),
		feats: make([]scorerFeat, len(m.Specs)),
	}
	for i := range m.Specs {
		cm, cu := &m.matched[i], &m.unmatched[i]
		f := &s.feats[i]
		f.family = m.Specs[i].Family
		switch f.family {
		case Gaussian:
			f.muM, f.gcM, f.twoM = cm.mu, -0.5*math.Log(2*math.Pi*cm.sigma2), 2*cm.sigma2
			f.muU, f.gcU, f.twoU = cu.mu, -0.5*math.Log(2*math.Pi*cu.sigma2), 2*cu.sigma2
		case Exponential:
			f.logLamM, f.lamM = math.Log(cm.lambda), cm.lambda
			f.logLamU, f.lamU = math.Log(cu.lambda), cu.lambda
		case Multinomial:
			f.bins = m.Specs[i].Bins
			f.tbl = make([]float64, len(cm.logp))
			for b := range f.tbl {
				f.tbl[b] = cm.logp[b] - cu.logp[b]
			}
		case ZeroInflatedExponential:
			f.zeroDiff = cm.logPi0 - cu.logPi0
			f.zcM = cm.logPi1 + math.Log(cm.lambda)
			f.zcU = cu.logPi1 + math.Log(cu.lambda)
			f.lamM, f.lamU = cm.lambda, cu.lambda
		default:
			panic("emfit: unknown family " + f.family.String())
		}
	}
	return s
}

// term is the per-feature matched−unmatched log-density difference —
// the same two logPDF values LogOdds subtracts, with their
// parameter-only subterms precompiled.
func (f *scorerFeat) term(x float64) float64 {
	switch f.family {
	case Gaussian:
		dM := x - f.muM
		a := f.gcM - dM*dM/f.twoM
		dU := x - f.muU
		b := f.gcU - dU*dU/f.twoU
		return a - b
	case Exponential:
		if x < 0 {
			x = 0
		}
		a := f.logLamM - f.lamM*x
		b := f.logLamU - f.lamU*x
		return a - b
	case Multinomial:
		return f.tbl[binOf(f.bins, x)]
	case ZeroInflatedExponential:
		if x < zeroEps {
			return f.zeroDiff
		}
		a := f.zcM - f.lamM*x
		b := f.zcU - f.lamU*x
		return a - b
	}
	panic("emfit: unknown family")
}

// Score returns the Eq. 11 log posterior-odds matching score of γ —
// bit-identical to Model.LogOdds(gamma).
func (s *Scorer) Score(gamma []float64) float64 {
	if len(gamma) != len(s.feats) {
		panic(fmt.Sprintf("emfit: score with %d features, scorer has %d", len(gamma), len(s.feats)))
	}
	sc := s.base
	for i := range s.feats {
		sc += s.feats[i].term(gamma[i])
	}
	return sc
}

// ScoreRow scores row j of a feature-major matrix without gathering the
// row into a contiguous γ slice — the calibration path scores anchor
// rows straight out of the training matrix.
func (s *Scorer) ScoreRow(mx *Matrix, j int) float64 {
	if mx.Features() != len(s.feats) {
		panic(fmt.Sprintf("emfit: score row with %d features, scorer has %d", mx.Features(), len(s.feats)))
	}
	sc := s.base
	for i := range s.feats {
		sc += s.feats[i].term(mx.cols[i][j])
	}
	return sc
}
