package emfit

import "fmt"

// Matrix is the feature-major training matrix of the columnar EM
// engine: one flat []float64 per feature, rows appended across all
// columns at once. The layout matches how EM actually consumes samples
// — every E-step and M-step kernel streams one feature over all rows —
// so the engine never chases per-row slice headers, and callers that
// assemble training sets incrementally (the IUAD fit-prep path) write
// γ vectors straight into the columns instead of allocating one
// []float64 per sample.
//
// Rows reserved with Grow may be filled concurrently with SetRow as
// long as each row index is written by exactly one goroutine: distinct
// rows touch disjoint column elements, and no append happens between
// Grow and the writes.
type Matrix struct {
	rows int
	cols [][]float64
}

// NewMatrix returns an empty matrix with the given number of feature
// columns, each with capacity for capRows rows.
func NewMatrix(features, capRows int) *Matrix {
	if features < 0 {
		panic("emfit: negative feature count")
	}
	mx := &Matrix{cols: make([][]float64, features)}
	for i := range mx.cols {
		mx.cols[i] = make([]float64, 0, capRows)
	}
	return mx
}

// Features returns the number of feature columns.
func (mx *Matrix) Features() int { return len(mx.cols) }

// Rows returns the number of samples appended so far.
func (mx *Matrix) Rows() int { return mx.rows }

// At returns the value of feature i in sample j.
func (mx *Matrix) At(j, i int) float64 { return mx.cols[i][j] }

// AppendRow appends one sample across every column. The gamma slice is
// copied; the caller keeps ownership.
func (mx *Matrix) AppendRow(gamma []float64) {
	if len(gamma) != len(mx.cols) {
		panic(fmt.Sprintf("emfit: AppendRow with %d features, matrix has %d", len(gamma), len(mx.cols)))
	}
	for i, v := range gamma {
		mx.cols[i] = append(mx.cols[i], v)
	}
	mx.rows++
}

// Grow appends n zero rows and returns the index of the first new row.
// It is the reservation half of parallel row filling: reserve the block
// on one goroutine, then SetRow each reserved index from workers.
func (mx *Matrix) Grow(n int) int {
	first := mx.rows
	for i := range mx.cols {
		for len(mx.cols[i]) < first+n {
			mx.cols[i] = append(mx.cols[i], 0)
		}
	}
	mx.rows += n
	return first
}

// SetRow overwrites row j across every column. Safe to call from
// concurrent goroutines as long as each row is written by exactly one
// of them and j is below the current row count.
func (mx *Matrix) SetRow(j int, gamma []float64) {
	if len(gamma) != len(mx.cols) {
		panic(fmt.Sprintf("emfit: SetRow with %d features, matrix has %d", len(gamma), len(mx.cols)))
	}
	for i, v := range gamma {
		mx.cols[i][j] = v
	}
}
