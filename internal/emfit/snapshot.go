package emfit

import (
	"fmt"

	"iuad/internal/snapshot"
)

// EncodeSnapshot writes a fitted model: feature specs, the mixing
// weight and fit diagnostics, and the per-feature matched/unmatched
// components with their exact parameter bit patterns.
func (m *Model) EncodeSnapshot(w *snapshot.Writer) {
	w.Int(len(m.Specs))
	for _, s := range m.Specs {
		w.String(s.Name)
		w.Int(int(s.Family))
		w.F64s(s.Bins)
	}
	w.F64(m.P)
	w.F64(m.LogLikelihood)
	w.Int(m.Iterations)
	encodeComponents(w, m.matched)
	encodeComponents(w, m.unmatched)
}

func encodeComponents(w *snapshot.Writer, cs []component) {
	w.Int(len(cs))
	for i := range cs {
		c := &cs[i]
		w.Int(int(c.family))
		w.F64(c.mu)
		w.F64(c.sigma2)
		w.F64(c.lambda)
		w.F64(c.logPi0)
		w.F64(c.logPi1)
		w.F64s(c.logp)
	}
}

// DecodeModelSnapshot reads a model written by EncodeSnapshot.
func DecodeModelSnapshot(r *snapshot.Reader) (*Model, error) {
	ns := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// A model never has more than a handful of features; anything larger
	// is stream corruption, not data.
	const maxSpecs = 1 << 10
	if ns < 0 || ns > maxSpecs {
		return nil, fmt.Errorf("emfit: snapshot has %d specs", ns)
	}
	m := &Model{Specs: make([]FeatureSpec, ns)}
	for i := range m.Specs {
		m.Specs[i].Name = r.String()
		m.Specs[i].Family = Family(r.Int())
		m.Specs[i].Bins = r.F64s()
	}
	m.P = r.F64()
	m.LogLikelihood = r.F64()
	m.Iterations = r.Int()
	var err error
	if m.matched, err = decodeComponents(r, m.Specs); err != nil {
		return nil, err
	}
	if m.unmatched, err = decodeComponents(r, m.Specs); err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeComponents(r *snapshot.Reader, specs []FeatureSpec) ([]component, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n != len(specs) {
		return nil, fmt.Errorf("emfit: snapshot has %d components for %d specs", n, len(specs))
	}
	cs := make([]component, n)
	for i := range cs {
		c := &cs[i]
		c.family = Family(r.Int())
		c.mu = r.F64()
		c.sigma2 = r.F64()
		c.lambda = r.F64()
		c.logPi0 = r.F64()
		c.logPi1 = r.F64()
		c.logp = r.F64s()
		// Bin edges are shared with the spec, exactly as fitComponent
		// builds them.
		c.bins = specs[i].Bins
	}
	return cs, nil
}
