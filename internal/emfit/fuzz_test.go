package emfit

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// FuzzEMFit decodes arbitrary bytes into a training matrix — raw
// float64 bit patterns, so NaNs, ±Inf, subnormals, and negative zeros
// all appear — plus a ragged/empty-shape nibble, and asserts the
// engine's failure contract: malformed input always yields a typed
// error (ErrNoData, ErrBadSample, or a shape error), never a panic; and
// any successful fit yields finite parameters and responsibilities in
// [0,1] — no poisoned model escapes.
func FuzzEMFit(f *testing.F) {
	// Seeds: clean data in every family, a NaN cell, an Inf cell, a
	// ragged row, and an empty matrix.
	clean := make([]byte, 1+4*8*3)
	clean[0] = 3 // 3 rows
	for i := 0; i < 12; i++ {
		binary.LittleEndian.PutUint64(clean[1+8*i:], math.Float64bits(float64(i)/7))
	}
	f.Add(clean)
	nan := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint64(nan[1+8*5:], math.Float64bits(math.NaN()))
	f.Add(nan)
	inf := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint64(inf[1+8*2:], math.Float64bits(math.Inf(-1)))
	f.Add(inf)
	f.Add([]byte{2, 1, 2, 3})     // ragged tail
	f.Add([]byte{0})              // zero rows
	f.Add([]byte{})               // nothing at all

	specs := []FeatureSpec{
		{Name: "g", Family: Gaussian},
		{Name: "e", Family: Exponential},
		{Name: "m", Family: Multinomial, Bins: []float64{0.1, 0.5, 2}},
		{Name: "z", Family: ZeroInflatedExponential},
	}
	m := len(specs)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: first byte = row count (mod 64), then float64 cells
		// row-major; missing bytes make the final row ragged on purpose.
		var x [][]float64
		if len(data) > 0 {
			n := int(data[0]) % 64
			data = data[1:]
			for j := 0; j < n; j++ {
				row := make([]float64, 0, m)
				for i := 0; i < m && len(data) >= 8; i++ {
					row = append(row, math.Float64frombits(binary.LittleEndian.Uint64(data)))
					data = data[8:]
				}
				x = append(x, row)
			}
		}
		opts := DefaultOptions()
		opts.MaxIter = 8 // keep the fuzz loop fast; convergence is pinned elsewhere
		model, resp, err := Fit(x, specs, opts)
		if err != nil {
			// Every failure must be a typed/deliberate error, and the
			// bad-cell report must point at a real bad cell.
			var bad ErrBadSample
			if errors.As(err, &bad) {
				if bad.Row < 0 || bad.Row >= len(x) || bad.Col < 0 || bad.Col >= m {
					t.Fatalf("ErrBadSample out of range: %+v", bad)
				}
				if v := x[bad.Row][bad.Col]; !badSample(v) {
					t.Fatalf("ErrBadSample points at usable cell %v: %+v", v, bad)
				}
			}
			return
		}
		if math.IsNaN(model.P) || model.P <= 0 || model.P >= 1 {
			t.Fatalf("poisoned mixing weight %v", model.P)
		}
		if math.IsNaN(model.LogLikelihood) {
			t.Fatalf("NaN log-likelihood")
		}
		for j, r := range resp {
			if math.IsNaN(r) || r < 0 || r > 1 {
				t.Fatalf("poisoned responsibility resp[%d]=%v", j, r)
			}
		}
		for i := range specs {
			if math.IsNaN(model.MatchedMean(i)) || math.IsNaN(model.UnmatchedMean(i)) {
				t.Fatalf("poisoned fitted mean for feature %d", i)
			}
		}
		// A fitted model must also score cleanly through both paths.
		g := make([]float64, m)
		for i := range g {
			g[i] = 0.25
		}
		if s := model.LogOdds(g); math.IsNaN(s) {
			t.Fatal("NaN LogOdds from fitted model")
		}
		if s := model.Scorer().Score(g); math.IsNaN(s) {
			t.Fatal("NaN compiled score from fitted model")
		}
	})
}
