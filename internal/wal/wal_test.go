package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iuad/internal/bib"
	"iuad/internal/faultinject"
)

// testBatch builds a small deterministic batch; i varies content so
// every record differs.
func testBatch(i, papers int) []bib.Paper {
	b := make([]bib.Paper, papers)
	for k := range b {
		b[k] = bib.Paper{
			Title:   fmt.Sprintf("journaled paper %d-%d on streamed graphs", i, k),
			Venue:   "ICDE",
			Year:    2019 + (i+k)%3,
			Authors: []string{fmt.Sprintf("Wal Author %d", (i+k)%5), fmt.Sprintf("Wal Coauthor %d", (i+3*k)%7)},
		}
	}
	return b
}

// appendN opens a journal at dir, recovers it against baseEpoch, and
// appends n batches starting at epoch baseEpoch+1.
func appendN(t *testing.T, dir string, cfg Config, baseEpoch uint64, n int) {
	t.Helper()
	j, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := j.Recover(baseEpoch, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := j.Append(baseEpoch+1+uint64(i), testBatch(i, 1+i%3)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// replayAll recovers dir against baseEpoch collecting every batch.
func replayAll(t *testing.T, dir string, baseEpoch uint64) ([][]bib.Paper, *ReplayReport) {
	t.Helper()
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatalf("Open for replay: %v", err)
	}
	defer j.Close()
	var got [][]bib.Paper
	rep, err := j.Recover(baseEpoch, func(epoch uint64, batch []bib.Paper) error {
		want := baseEpoch + 1 + uint64(len(got))
		if epoch != want {
			return fmt.Errorf("apply saw epoch %d, want %d", epoch, want)
		}
		got = append(got, batch)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return got, rep
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if _, _, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	return segs
}

func TestRecordRoundTrip(t *testing.T) {
	for _, policy := range []Policy{SyncPerCommit, SyncGrouped, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			appendN(t, dir, Config{Fsync: policy}, 5, 7)
			got, rep := replayAll(t, dir, 5)
			if len(got) != 7 || rep.Batches != 7 {
				t.Fatalf("replayed %d batches (report %d), want 7", len(got), rep.Batches)
			}
			if rep.TruncatedTail {
				t.Fatalf("clean journal reported a truncated tail: %+v", rep)
			}
			for i, b := range got {
				want := testBatch(i, 1+i%3)
				if len(b) != len(want) {
					t.Fatalf("batch %d: %d papers, want %d", i, len(b), len(want))
				}
				for k := range b {
					if b[k].Title != want[k].Title || b[k].Venue != want[k].Venue ||
						b[k].Year != want[k].Year || len(b[k].Authors) != len(want[k].Authors) {
						t.Fatalf("batch %d paper %d mismatch: %+v vs %+v", i, k, b[k], want[k])
					}
				}
			}
		})
	}
}

func TestAppendBeforeRecoverRejected(t *testing.T) {
	j, err := Open(t.TempDir(), Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(1, testBatch(0, 1)); err == nil || !strings.Contains(err.Error(), "before Recover") {
		t.Fatalf("Append before Recover: err = %v, want 'before Recover'", err)
	}
}

func TestDoubleOpenFailsFastWithTypedLockError(t *testing.T) {
	dir := t.TempDir()
	j1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Config{})
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: err = %v, want ErrLocked", err)
	}
	var le *LockError
	if !errors.As(err, &le) || le.Dir != dir {
		t.Fatalf("second Open: err = %#v, want *LockError for %s", err, dir)
	}
	// Releasing the first opener frees the directory.
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	j3.Close()
}

func TestTornTailTruncatedAtEveryCut(t *testing.T) {
	master := t.TempDir()
	appendN(t, master, Config{Fsync: SyncOff}, 0, 3)
	segs := segmentFiles(t, master)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find where the third record starts by replaying sizes: records
	// are [12B header][payload]; walk two records forward.
	off := int64(segHeaderLen)
	for i := 0; i < 2; i++ {
		plen := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += recHeaderLen + plen
	}
	if off >= int64(len(data)) {
		t.Fatalf("offset walk overran: %d >= %d", off, len(data))
	}
	// Every cut strictly inside the final record must truncate to two
	// clean batches — never an error, never a replay of torn bytes.
	for cut := off + 1; cut < int64(len(data)); cut += 7 {
		dir := t.TempDir()
		torn := filepath.Join(dir, filepath.Base(segs[0]))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, rep := replayAll(t, dir, 0)
		if len(got) != 2 {
			t.Fatalf("cut %d: replayed %d batches, want 2", cut, len(got))
		}
		if !rep.TruncatedTail || rep.TruncatedOffset != off {
			t.Fatalf("cut %d: report %+v, want truncated tail at %d", cut, rep, off)
		}
		// The truncation is durable: a second recovery is clean.
		got2, rep2 := replayAll(t, dir, 0)
		if len(got2) != 2 || rep2.TruncatedTail {
			t.Fatalf("cut %d: second recovery got %d batches, truncated=%v", cut, len(got2), rep2.TruncatedTail)
		}
	}
}

func TestTornSegmentHeaderDropped(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, Config{Fsync: SyncOff}, 0, 2)
	seg := segmentFiles(t, dir)[0]
	data, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, data[:segHeaderLen-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep := replayAll(t, dir, 0)
	if len(got) != 0 || !rep.TruncatedTail {
		t.Fatalf("torn header: got %d batches, report %+v", len(got), rep)
	}
	if len(segmentFiles(t, dir)) != 0 {
		t.Fatal("torn-header segment not removed")
	}
}

func TestCorruptInteriorRejectedWithTypedError(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, Config{Fsync: SyncOff}, 0, 3)
	seg := segmentFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record: a valid record
	// follows, so the torn-tail rule must not excuse it.
	data[segHeaderLen+recHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, err = j.Recover(0, func(uint64, []bib.Paper) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt interior: err = %v, want *CorruptError", err)
	}
	if ce.Path != seg || ce.Offset != segHeaderLen {
		t.Fatalf("corrupt record located at %s:%d, want %s:%d", ce.Path, ce.Offset, seg, int64(segHeaderLen))
	}
}

func TestCorruptTailInNonFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment bound: every batch rolls to a new segment file.
	appendN(t, dir, Config{Fsync: SyncOff, MaxSegmentBytes: 1}, 0, 3)
	segs := segmentFiles(t, dir)
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}
	// Tear the tail of the FIRST segment. Mid-journal truncation is
	// corruption — replaying past it would renumber acked epochs.
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, err = j.Recover(0, func(uint64, []bib.Paper) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("non-final torn tail: err = %v, want *CorruptError", err)
	}
}

func TestEpochGapRejected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, testBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(3, testBatch(1, 1)); err != nil { // skips epoch 2
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, err = j2.Recover(0, func(uint64, []bib.Paper) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "epoch 3, want 2") {
		t.Fatalf("epoch gap: err = %v, want *CorruptError about epoch 3 vs 2", err)
	}
}

func TestRollbackWithdrawsLastRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, testBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	tok, err := j.Append(2, testBatch(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Rollback(tok); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	// The next batch reuses the rolled-back epoch.
	if _, err := j.Append(2, testBatch(2, 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, _ := replayAll(t, dir, 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(got))
	}
	if got[1][0].Title != testBatch(2, 1)[0].Title {
		t.Fatalf("epoch 2 replayed the rolled-back batch: %q", got[1][0].Title)
	}
}

func TestRotateGCsSegmentsAndRecoveryDropsStale(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncOff, MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(uint64(i+1), testBatch(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Rotate(3); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if segs := segmentFiles(t, dir); len(segs) != 0 {
		t.Fatalf("Rotate left segments behind: %v", segs)
	}
	if _, err := j.Append(4, testBatch(10, 2)); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.BaseEpoch != 3 || st.Rotations != 1 || st.BatchesSinceRotate != 1 {
		t.Fatalf("stats after rotate: %+v", st)
	}
	j.Close()

	// Simulate the crash-between-base-save-and-rotate leftover: drop
	// a stale segment keyed to an older base epoch next to the live one.
	stale := filepath.Join(dir, segmentName(0, 99))
	if err := os.WriteFile(stale, []byte("not even a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep := replayAll(t, dir, 3)
	if len(got) != 1 || got[0][0].Title != testBatch(10, 2)[0].Title {
		t.Fatalf("replay after rotate: %d batches", len(got))
	}
	if rep.StaleRemoved != 1 {
		t.Fatalf("stale segment not GC'd: %+v", rep)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale segment file still present")
	}
}

func TestGroupedPolicyFsyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncGrouped, GroupInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, testBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grouped policy never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	if lat := j.Stats().FsyncLatency; lat.Count == 0 {
		t.Fatalf("fsync latency histogram empty: %+v", lat)
	}
}

func TestAppendFaultFailsBatchAndJournalStaysConsistent(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, testBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected append failure")
	disarm := faultinject.Arm(faultinject.JournalAppend, func() error { return boom })
	_, err = j.Append(2, testBatch(1, 1))
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("Append under fault: err = %v, want injected", err)
	}
	// The failed append left no trace: epoch 2 is writable again.
	if _, err := j.Append(2, testBatch(2, 1)); err != nil {
		t.Fatalf("Append after fault: %v", err)
	}
	j.Close()
	got, _ := replayAll(t, dir, 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(got))
	}
}

func TestFsyncFaultFailsBatchUnderPerCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected fsync failure")
	disarm := faultinject.Arm(faultinject.JournalFsync, func() error { return boom })
	_, err = j.Append(1, testBatch(0, 1))
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("Append under fsync fault: err = %v, want injected", err)
	}
	// An fsync failure latches the journal: durability is unknown, so
	// further appends must refuse rather than silently continue.
	if _, err := j.Append(1, testBatch(1, 1)); err == nil {
		t.Fatal("append after fsync failure unexpectedly succeeded")
	}
}

func TestReplayFaultAbortsRecovery(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, Config{Fsync: SyncOff}, 0, 2)
	boom := errors.New("injected replay failure")
	disarm := faultinject.Arm(faultinject.JournalReplay, func() error { return boom })
	defer disarm()
	j, err := Open(dir, Config{Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Recover(0, func(uint64, []bib.Paper) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("Recover under fault: err = %v, want injected", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{Fsync: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := j.Append(uint64(i+1), testBatch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.AppendedBatches != 4 || st.AppendedPapers != 8 {
		t.Fatalf("append counters: %+v", st)
	}
	if st.Fsyncs < 4 || st.FsyncLatency.Count < 4 {
		t.Fatalf("per-commit fsync accounting: %+v", st)
	}
	if st.Segments != 1 || st.SegmentBytes <= segHeaderLen {
		t.Fatalf("segment accounting: %+v", st)
	}
	if st.Fsync != "percommit" {
		t.Fatalf("policy string: %q", st.Fsync)
	}
	j.Close()
	if _, err := j.Append(9, testBatch(9, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"percommit": SyncPerCommit, "Per-Commit": SyncPerCommit,
		"grouped": SyncGrouped, "off": SyncOff, "none": SyncOff,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}
