//go:build !unix

package wal

import (
	"os"
	"path/filepath"
)

// acquireLock on platforms without flock falls back to an O_EXCL
// lock file: weaker (a crashed process leaves it behind and the
// operator must remove it) but still refuses double-Open fast.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, &LockError{Dir: filepath.Dir(path), Err: ErrLocked}
		}
		return nil, &LockError{Dir: filepath.Dir(path), Err: err}
	}
	return f, nil
}

func releaseLock(f *os.File) {
	name := f.Name()
	f.Close()
	os.Remove(name)
}
