//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireLock takes an exclusive, non-blocking flock on the journal's
// lock file. flock is per open-file-description: a second Open in the
// SAME process conflicts just like one from another process, and the
// kernel drops the lock automatically when the holder dies (SIGKILL
// included) — exactly the semantics a crash-recovery journal needs
// (a pid file would go stale across kill -9).
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, &LockError{Dir: filepath.Dir(path), Err: err}
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, &LockError{Dir: filepath.Dir(path), Err: ErrLocked}
		}
		return nil, &LockError{Dir: filepath.Dir(path), Err: fmt.Errorf("flock: %w", err)}
	}
	return f, nil
}

func releaseLock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
