package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"iuad/internal/bib"
	"iuad/internal/faultinject"
)

// Apply consumes one replayed batch. Recovery calls it with strictly
// increasing epochs (baseEpoch+1, baseEpoch+2, ...); an error aborts
// recovery.
type Apply func(epoch uint64, batch []bib.Paper) error

// ReplayReport summarizes one recovery: what was replayed, what a
// crash tore off, what compaction left behind. Served by /healthz.
type ReplayReport struct {
	BaseEpoch uint64 `json:"base_epoch"`
	Segments  int    `json:"segments"`
	Batches   int    `json:"batches"`
	Papers    int    `json:"papers"`
	// TruncatedTail is set when the final record was torn by a crash
	// mid-write and was cut off (the batch it held was never acked
	// durable-complete, so dropping it is correct).
	TruncatedTail   bool   `json:"truncated_tail,omitempty"`
	TruncatedPath   string `json:"truncated_path,omitempty"`
	TruncatedOffset int64  `json:"truncated_offset,omitempty"`
	// StaleRemoved counts segments keyed to an older base epoch that
	// were garbage-collected (a crash between base save and rotate
	// leaves them behind; their batches are contained in the base).
	StaleRemoved int   `json:"stale_removed,omitempty"`
	WallNs       int64 `json:"wall_ns"`
}

// Recover binds the journal to the base snapshot's epoch and replays
// every surviving record on top of it, in generation order, feeding
// each batch to apply.
//
// Verification rules (DESIGN.md §14):
//
//   - every record's FNV-64a checksum must match;
//   - record epochs must be exactly contiguous from baseEpoch+1;
//   - a record torn by a crash mid-write — short header, length past
//     EOF, or checksum mismatch with nothing valid after it, in the
//     FINAL segment — is truncated off, not an error;
//   - any other failure is a *CorruptError naming the segment and
//     byte offset: an interior batch cannot be dropped silently.
//
// Segments keyed to a different base epoch are garbage-collected:
// they predate the loaded base snapshot and are fully contained in
// it. After Recover the journal appends into a fresh generation, so
// a previously-truncated tail can never be appended into.
func (j *Journal) Recover(baseEpoch uint64, apply Apply) (*ReplayReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	if j.recovered {
		return nil, errors.New("wal: Recover called twice")
	}
	t0 := time.Now()
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	type seg struct {
		gen  uint64
		path string
	}
	var segs []seg
	var stale []string
	maxGen := uint64(0)
	for _, e := range ents {
		base, gen, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		if gen > maxGen {
			maxGen = gen
		}
		if base == baseEpoch {
			segs = append(segs, seg{gen, filepath.Join(j.dir, e.Name())})
		} else {
			stale = append(stale, filepath.Join(j.dir, e.Name()))
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].gen < segs[b].gen })
	rep := &ReplayReport{BaseEpoch: baseEpoch}
	next := baseEpoch + 1
	for i, sg := range segs {
		last := i == len(segs)-1
		if err := j.replaySegment(sg.path, sg.gen, last, &next, apply, rep); err != nil {
			return nil, err
		}
	}
	for _, p := range stale {
		if os.Remove(p) == nil {
			rep.StaleRemoved++
		}
	}
	if rep.StaleRemoved > 0 {
		syncDir(j.dir)
	}
	j.baseEpoch = baseEpoch
	j.gen = maxGen + 1 // always a fresh generation: never append into a truncated tail
	j.sinceRot = int64(rep.Batches)
	j.recovered = true
	rep.WallNs = time.Since(t0).Nanoseconds()
	return rep, nil
}

// replaySegment verifies and applies one segment's records. last
// marks the final (highest-generation) segment, the only place the
// torn-tail rule applies.
func (j *Journal) replaySegment(path string, gen uint64, last bool, next *uint64, apply Apply, rep *ReplayReport) error {
	if err := faultinject.Fire(faultinject.JournalReplay); err != nil {
		return fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < segHeaderLen ||
		string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != segVersion ||
		binary.LittleEndian.Uint64(data[24:32]) != gen {
		// A header can only be torn if the crash hit before the very
		// first record's fsync; with records present after it in a
		// non-final segment this is real corruption.
		if !last {
			return &CorruptError{Path: path, Offset: 0, Reason: "bad segment header"}
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: drop torn segment: %w", err)
		}
		syncDir(j.dir)
		rep.TruncatedTail = true
		rep.TruncatedPath = path
		rep.TruncatedOffset = 0
		return nil
	}
	j.liveSegs++
	rep.Segments++
	off := int64(segHeaderLen)
	n := int64(len(data))
	for off < n {
		if n-off < recHeaderLen {
			return j.tornOrCorrupt(path, off, last, "short record header", rep)
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint64(data[off+4 : off+12])
		end := off + recHeaderLen + plen
		if plen > maxRecordBytes || end > n {
			return j.tornOrCorrupt(path, off, last, "record length past end of segment", rep)
		}
		payload := data[off+recHeaderLen : end]
		if fnv64a(payload) != sum {
			// Checksum-bad in final position is the classic torn
			// write; the same failure followed by a valid record is
			// interior corruption (the tail rule cannot excuse it).
			if !last || hasValidRecordAt(data, end) {
				return &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
			}
			return j.truncateTail(path, off, rep)
		}
		epoch, batch, err := decodeRecordPayload(payload)
		if err != nil {
			return &CorruptError{Path: path, Offset: off, Reason: "payload decode: " + err.Error()}
		}
		if epoch != *next {
			return &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record epoch %d, want %d (missing or reordered batch)", epoch, *next)}
		}
		if apply != nil {
			if err := apply(epoch, batch); err != nil {
				return fmt.Errorf("wal: apply journaled batch (epoch %d): %w", epoch, err)
			}
		}
		*next++
		rep.Batches++
		rep.Papers += len(batch)
		off = end
	}
	j.segBytes += n
	return nil
}

func (j *Journal) tornOrCorrupt(path string, off int64, last bool, reason string, rep *ReplayReport) error {
	if !last {
		return &CorruptError{Path: path, Offset: off, Reason: reason}
	}
	return j.truncateTail(path, off, rep)
}

// truncateTail cuts the torn final record off and makes the cut
// durable, so the next recovery sees a cleanly-ended segment.
func (j *Journal) truncateTail(path string, off int64, rep *ReplayReport) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: open segment for tail truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync truncated segment: %w", err)
	}
	rep.TruncatedTail = true
	rep.TruncatedPath = path
	rep.TruncatedOffset = off
	j.segBytes += off
	return nil
}

// hasValidRecordAt reports whether a complete, checksum-valid record
// starts at off — evidence that a bad record before it is interior
// corruption rather than a torn tail.
func hasValidRecordAt(data []byte, off int64) bool {
	n := int64(len(data))
	if n-off < recHeaderLen {
		return false
	}
	plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint64(data[off+4 : off+12])
	end := off + recHeaderLen + plen
	if plen > maxRecordBytes || end > n {
		return false
	}
	return fnv64a(data[off+recHeaderLen:end]) == sum
}
