// Package wal is the write-ahead batch journal behind crash-safe
// continuous durability (DESIGN.md §14): every committed ingest group
// — the post-group-commit batch that maps 1:1 to an epoch publish —
// is appended as a length-prefixed, FNV-64a-checksummed record to a
// generation-numbered segment file keyed to the base snapshot's
// epoch, BEFORE the batch is applied in memory or acked to the
// client. After a crash, Recover replays the surviving records on top
// of the base snapshot and reproduces the never-crashed state
// bit-identically.
//
// # On-disk layout
//
// A journal directory holds:
//
//	wal.lock            flock'd while a process owns the journal
//	base.snap[...]      the base snapshot (written by the consumer)
//	wal.e<E>.g<G>       segment: records appended on top of base epoch E,
//	                    generation G (G is globally monotonic)
//
// Each segment starts with a fixed 32-byte header (magic, format
// version, base epoch, generation) followed by records:
//
//	[u32 LE payload length][u64 LE FNV-64a of payload][payload]
//
// The payload is a versioned snapshot stream (internal/snapshot)
// carrying the batch's epoch and its papers. Records never span
// segments.
//
// # Durability policies
//
// SyncPerCommit fsyncs inside Append, before the caller can ack —
// full power-loss durability per batch. SyncGrouped acks from the
// page cache and fsyncs on a short timer, bounding loss under power
// failure to the group interval. SyncOff never fsyncs explicitly.
// All three survive SIGKILL equally: process death does not discard
// the page cache, so every acked batch is replayed on restart; the
// policies only differ under power loss / kernel panic.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"iuad/internal/bib"
	"iuad/internal/faultinject"
	"iuad/internal/hdrhist"
	"iuad/internal/snapshot"
)

const (
	segMagic     = "IUADWAL1" // 8 bytes, distinct from the snapshot magic
	segVersion   = 1
	segHeaderLen = 8 + 8 + 8 + 8 // magic + version + base epoch + generation
	recHeaderLen = 4 + 8         // u32 payload length + u64 FNV-64a

	// recordVersion is the snapshot-stream version of a record payload
	// (the 2000+ namespace is the journal's; pipeline/service snapshots
	// use 1/1001/1002/1003).
	recordVersion = 2001

	// maxRecordBytes bounds a single record; a length field past it is
	// treated as corruption, not an allocation request.
	maxRecordBytes = 1 << 30

	lockFileName = "wal.lock"
)

// Defaults for Config zero values.
const (
	DefaultGroupInterval   = 2 * time.Millisecond
	DefaultMaxSegmentBytes = 64 << 20
	DefaultCompactEvery    = 64
)

// Policy selects when Append makes records durable.
type Policy int

const (
	// SyncPerCommit fsyncs the segment inside every Append: the ack
	// implies power-loss durability. The slowest, safest policy.
	SyncPerCommit Policy = iota
	// SyncGrouped writes through the page cache and fsyncs on a
	// Config.GroupInterval timer: one fsync amortizes many batches,
	// bounding the power-loss window to roughly the interval.
	SyncGrouped
	// SyncOff never fsyncs explicitly. Acked batches still survive
	// SIGKILL (the page cache outlives the process) but not power
	// loss. For tests and bulk loads.
	SyncOff
)

func (p Policy) String() string {
	switch p {
	case SyncPerCommit:
		return "percommit"
	case SyncGrouped:
		return "grouped"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag spellings: "percommit",
// "grouped", "off".
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "percommit", "per-commit":
		return SyncPerCommit, nil
	case "grouped", "group":
		return SyncGrouped, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want percommit, grouped, or off)", s)
}

// Config tunes a journal. The zero value is SyncPerCommit with the
// package defaults.
type Config struct {
	// Fsync is the durability policy (default SyncPerCommit).
	Fsync Policy
	// GroupInterval is the SyncGrouped fsync cadence (default 2ms).
	GroupInterval time.Duration
	// MaxSegmentBytes rolls to a fresh segment once the current one
	// grows past this (default 64 MiB).
	MaxSegmentBytes int64
	// CompactEvery is read by the embedding service (iuad.Service),
	// not the journal itself: after this many journaled batches the
	// service writes a fresh base snapshot and rotates the journal
	// (default 64; < 0 disables automatic compaction).
	CompactEvery int
}

func (c Config) withDefaults() Config {
	if c.GroupInterval <= 0 {
		c.GroupInterval = DefaultGroupInterval
	}
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = DefaultCompactEvery
	}
	return c
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("wal: journal is closed")

// ErrLocked reports that another process (or another open Journal in
// this one) holds the journal directory. Wrapped by *LockError.
var ErrLocked = errors.New("wal: journal directory is locked by another opener")

// LockError is the typed double-open failure: a second Open on a live
// journal directory fails fast with it instead of silently
// interleaving appends. errors.Is(err, ErrLocked) matches the
// contention case.
type LockError struct {
	Dir string
	Err error
}

func (e *LockError) Error() string { return fmt.Sprintf("wal: journal dir %s: %v", e.Dir, e.Err) }
func (e *LockError) Unwrap() error { return e.Err }

// CorruptError reports a record that failed verification in a
// position the torn-tail rule cannot excuse: mid-segment, in a
// non-final segment, or followed by a valid record. Recovery refuses
// to continue past it — silently dropping an interior batch would
// shift every later epoch and diverge from acked history.
type CorruptError struct {
	Path   string // segment file
	Offset int64  // byte offset of the bad record (0 = segment header)
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt journal record at %s:%d: %s", e.Path, e.Offset, e.Reason)
}

// Stats is the point-in-time journal accounting surfaced through
// Service.JournalStats and /metrics.
type Stats struct {
	Dir             string          `json:"dir"`
	Fsync           string          `json:"fsync"`
	BaseEpoch       uint64          `json:"base_epoch"`
	Generation      uint64          `json:"generation"`
	Segments        int             `json:"segments"`
	SegmentBytes    int64           `json:"segment_bytes"`
	AppendedBatches int64           `json:"appended_batches"`
	AppendedPapers  int64           `json:"appended_papers"`
	AppendedBytes   int64           `json:"appended_bytes"`
	BatchesSinceRotate int64        `json:"batches_since_rotate"`
	Rotations       int64           `json:"rotations"`
	Fsyncs          int64           `json:"fsyncs"`
	FsyncLatency    hdrhist.Summary `json:"fsync_latency"`
}

// AppendToken identifies the record an Append wrote, for Rollback.
type AppendToken struct {
	gen    uint64
	off    int64
	papers int64
	bytes  int64
}

// Journal is one process's handle on a journal directory. All methods
// are safe for concurrent use; Append is typically called from one
// commit leader at a time.
type Journal struct {
	dir  string
	cfg  Config
	lock *os.File

	mu         sync.Mutex
	f          *os.File // current segment (nil until the first post-recovery Append)
	fpath      string
	size       int64
	baseEpoch  uint64
	gen        uint64 // generation of the current (or next) segment
	liveSegs   int
	segBytes   int64
	recovered  bool
	closed     bool
	failed     error // latched first write/sync failure: the journal refuses further appends
	dirty      bool  // SyncGrouped: bytes written since the last fsync
	batches    int64
	papers     int64
	bytesAcc   int64
	sinceRot   int64
	rotations  int64
	fsyncs     int64

	fsyncLat *hdrhist.Histogram
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// Open locks dir (creating it if needed) and returns a journal
// handle. The journal is not usable for Append until Recover has run
// — recovery fixes the base epoch the new records key to. A second
// Open on a live directory fails fast with *LockError (ErrLocked).
func Open(dir string, cfg Config) (*Journal, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create journal dir: %w", err)
	}
	lock, err := acquireLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		cfg:      cfg,
		lock:     lock,
		fsyncLat: hdrhist.New(),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	if cfg.Fsync == SyncGrouped {
		go j.groupSyncLoop()
	} else {
		close(j.doneCh)
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// BaseSnapshotPath returns the canonical base-snapshot path for a
// journal directory, without opening (and locking) the journal —
// callers use it to decide whether a restart needs a corpus at all.
func BaseSnapshotPath(dir string) string { return filepath.Join(dir, "base.snap") }

// BasePath returns the canonical base-snapshot path inside the
// journal directory. The journal does not read or write it; the
// consumer (iuad.Service) saves and loads the base there.
func (j *Journal) BasePath() string { return BaseSnapshotPath(j.dir) }

// Append journals one committed ingest group as the record for epoch
// (which must be the epoch the batch will publish as). It returns
// only after the record is durable per the configured policy, so a
// successful Append means recovery will replay the batch; an error
// means no record survives — the caller must fail the batch before
// acking it. The token withdraws the record via Rollback if the
// in-memory apply then fails without landing anything.
func (j *Journal) Append(epoch uint64, batch []bib.Paper) (AppendToken, error) {
	if len(batch) == 0 {
		return AppendToken{}, errors.New("wal: empty batch")
	}
	if err := faultinject.Fire(faultinject.JournalAppend); err != nil {
		return AppendToken{}, fmt.Errorf("wal: append: %w", err)
	}
	rec, err := encodeRecord(epoch, batch)
	if err != nil {
		return AppendToken{}, fmt.Errorf("wal: encode record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.closed:
		return AppendToken{}, ErrClosed
	case !j.recovered:
		return AppendToken{}, errors.New("wal: Append before Recover")
	case j.failed != nil:
		return AppendToken{}, fmt.Errorf("wal: journal failed: %w", j.failed)
	}
	if j.f != nil && j.size >= j.cfg.MaxSegmentBytes {
		if err := j.rollSegmentLocked(); err != nil {
			j.failed = err
			return AppendToken{}, err
		}
	}
	if j.f == nil {
		if err := j.createSegmentLocked(); err != nil {
			j.failed = err
			return AppendToken{}, err
		}
	}
	off := j.size
	if _, err := j.f.Write(rec); err != nil {
		// A short write may have landed a prefix; cut it off so the
		// failed batch can never replay.
		j.truncateLocked(off)
		j.failed = err
		return AppendToken{}, fmt.Errorf("wal: append record: %w", err)
	}
	j.size += int64(len(rec))
	j.segBytes += int64(len(rec))
	switch j.cfg.Fsync {
	case SyncPerCommit:
		if err := j.syncLocked(); err != nil {
			// fsync failed: durability is unknown, so withdraw the
			// record — the batch will be failed before the ack and
			// must not resurface on replay.
			j.truncateLocked(off)
			j.failed = err
			return AppendToken{}, fmt.Errorf("wal: fsync record: %w", err)
		}
	case SyncGrouped:
		j.dirty = true
	}
	j.batches++
	j.papers += int64(len(batch))
	j.bytesAcc += int64(len(rec))
	j.sinceRot++
	return AppendToken{gen: j.gen, off: off, papers: int64(len(batch)), bytes: int64(len(rec))}, nil
}

// Rollback withdraws the record written by the matching Append. Only
// the most recent record can be withdrawn — it exists for the caller
// whose in-memory apply failed before anything landed, so recovery
// cannot replay a batch the process never applied.
func (j *Journal) Rollback(tok AppendToken) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.f == nil || j.gen != tok.gen || j.size != tok.off+tok.bytes {
		return errors.New("wal: rollback token does not name the last record")
	}
	j.truncateLocked(tok.off)
	if j.failed != nil {
		return j.failed
	}
	j.batches--
	j.papers -= tok.papers
	j.bytesAcc -= tok.bytes
	j.sinceRot--
	if j.cfg.Fsync == SyncPerCommit {
		if err := j.syncLocked(); err != nil {
			j.failed = err
			return err
		}
	}
	return nil
}

// Rotate garbage-collects every segment and starts a fresh generation
// keyed to newBase. The caller must have made a base snapshot at
// epoch newBase durable FIRST — rotation's contract is "everything in
// the journal is contained in the new base", which holds because the
// consumer compacts under its write lock (no batches land between the
// base save and the rotate).
func (j *Journal) Rotate(newBase uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.f != nil {
		if j.cfg.Fsync != SyncOff {
			if err := j.syncLocked(); err != nil {
				j.failed = err
				return err
			}
		}
		if err := j.f.Close(); err != nil {
			j.failed = err
			return err
		}
		j.f, j.fpath, j.size = nil, "", 0
		j.dirty = false
	}
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if _, _, ok := parseSegmentName(e.Name()); ok {
			if err := os.Remove(filepath.Join(j.dir, e.Name())); err != nil {
				return fmt.Errorf("wal: gc segment %s: %w", e.Name(), err)
			}
		}
	}
	syncDir(j.dir) // best effort: make the removals durable
	j.baseEpoch = newBase
	j.gen++
	j.rotations++
	j.sinceRot = 0
	j.liveSegs = 0
	j.segBytes = 0
	return nil
}

// BatchesSinceRotate returns how many batches the journal holds on
// top of the current base — the consumer's compaction pressure.
func (j *Journal) BatchesSinceRotate() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceRot
}

// Stats returns the point-in-time journal accounting.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Dir:             j.dir,
		Fsync:           j.cfg.Fsync.String(),
		BaseEpoch:       j.baseEpoch,
		Generation:      j.gen,
		Segments:        j.liveSegs,
		SegmentBytes:    j.segBytes,
		AppendedBatches: j.batches,
		AppendedPapers:  j.papers,
		AppendedBytes:   j.bytesAcc,
		BatchesSinceRotate: j.sinceRot,
		Rotations:       j.rotations,
		Fsyncs:          j.fsyncs,
		FsyncLatency:    j.fsyncLat.Snapshot(),
	}
}

// Close fsyncs and closes the current segment, stops the grouped-sync
// loop, and releases the directory lock. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.stopCh)
	<-j.doneCh
	j.mu.Lock()
	defer j.mu.Unlock()
	var first error
	if j.f != nil {
		if j.cfg.Fsync != SyncOff {
			if err := j.syncLocked(); err != nil {
				first = err
			}
		}
		if err := j.f.Close(); err != nil && first == nil {
			first = err
		}
		j.f = nil
	}
	if j.lock != nil {
		releaseLock(j.lock)
		j.lock = nil
	}
	return first
}

// groupSyncLoop is the SyncGrouped flusher: one fsync per interval
// covers every batch appended since the last one.
func (j *Journal) groupSyncLoop() {
	defer close(j.doneCh)
	t := time.NewTicker(j.cfg.GroupInterval)
	defer t.Stop()
	for {
		select {
		case <-j.stopCh:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && j.f != nil && j.failed == nil {
				if err := j.syncLocked(); err != nil {
					j.failed = err
				}
				j.dirty = false
			}
			j.mu.Unlock()
		}
	}
}

func (j *Journal) syncLocked() error {
	if err := faultinject.Fire(faultinject.JournalFsync); err != nil {
		return err
	}
	t0 := time.Now()
	err := j.f.Sync()
	j.fsyncLat.RecordSince(t0)
	j.fsyncs++
	return err
}

// createSegmentLocked opens the generation's segment file and writes
// its header. Segments are opened O_APPEND so a truncate-then-write
// sequence (Rollback, per-commit fsync failure) cannot leave a hole.
func (j *Journal) createSegmentLocked() error {
	path := filepath.Join(j.dir, segmentName(j.baseEpoch, j.gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:24], j.baseEpoch)
	binary.LittleEndian.PutUint64(hdr[24:32], j.gen)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if j.cfg.Fsync != SyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: fsync segment header: %w", err)
		}
		syncDir(j.dir) // the segment's directory entry must survive too
	}
	j.f, j.fpath, j.size = f, path, segHeaderLen
	j.liveSegs++
	j.segBytes += segHeaderLen
	return nil
}

// rollSegmentLocked closes the full segment and bumps the generation;
// the next Append lazily creates the successor.
func (j *Journal) rollSegmentLocked() error {
	if j.cfg.Fsync != SyncOff {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.f, j.fpath, j.size = nil, "", 0
	j.dirty = false
	j.gen++
	return nil
}

func (j *Journal) truncateLocked(off int64) {
	if j.f == nil {
		return
	}
	if err := j.f.Truncate(off); err != nil {
		if j.failed == nil {
			j.failed = err
		}
		return
	}
	j.segBytes -= j.size - off
	j.size = off
}

// encodeRecord frames one batch: [u32 len][u64 fnv64a][payload], the
// payload being a versioned snapshot stream of (epoch, papers).
func encodeRecord(epoch uint64, batch []bib.Paper) ([]byte, error) {
	var payload bytes.Buffer
	sw := snapshot.NewWriter(&payload, recordVersion)
	sw.Uvarint(epoch)
	sw.Int(len(batch))
	for i := range batch {
		bib.EncodePaperSnapshot(sw, &batch[i])
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	if payload.Len() > maxRecordBytes {
		return nil, fmt.Errorf("wal: batch encodes to %d bytes (max %d)", payload.Len(), maxRecordBytes)
	}
	rec := make([]byte, recHeaderLen+payload.Len())
	binary.LittleEndian.PutUint32(rec[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(rec[4:12], fnv64a(payload.Bytes()))
	copy(rec[recHeaderLen:], payload.Bytes())
	return rec, nil
}

func decodeRecordPayload(payload []byte) (uint64, []bib.Paper, error) {
	sr, err := snapshot.NewReader(bytes.NewReader(payload), recordVersion)
	if err != nil {
		return 0, nil, err
	}
	epoch := sr.Uvarint()
	n := sr.Int()
	if err := sr.Err(); err != nil {
		return 0, nil, err
	}
	if n < 0 || n > len(payload) {
		return 0, nil, fmt.Errorf("wal: implausible batch size %d", n)
	}
	papers := make([]bib.Paper, 0, n)
	for i := 0; i < n; i++ {
		p, err := bib.DecodePaperSnapshot(sr)
		if err != nil {
			return 0, nil, err
		}
		papers = append(papers, p)
	}
	return epoch, papers, nil
}

func fnv64a(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func segmentName(base, gen uint64) string {
	return fmt.Sprintf("wal.e%d.g%08d", base, gen)
}

func parseSegmentName(name string) (base, gen uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "wal.e")
	if !found {
		return 0, 0, false
	}
	i := strings.Index(rest, ".g")
	if i < 0 {
		return 0, 0, false
	}
	b, err1 := strconv.ParseUint(rest[:i], 10, 64)
	g, err2 := strconv.ParseUint(rest[i+2:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return b, g, true
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
