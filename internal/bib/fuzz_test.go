package bib

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTitleTokens pins the tokenizer invariants under arbitrary input:
// every token is non-empty lowercased ASCII alphanumeric, tokenization
// is deterministic, re-tokenizing the joined tokens is idempotent, and
// Keywords is always the stop-word/length filter of TitleTokens.
func FuzzTitleTokens(f *testing.F) {
	f.Add("Mining Frequent Patterns Without Candidate Generation")
	f.Add("Théorie des Graphes.")                       // latin1 accents
	f.Add("a&amp;b &lt;tags&gt; &#233;")                // entity-looking text
	f.Add("ALL CAPS 123 mixed09CASE")
	f.Add("")
	f.Add("!!!")
	f.Add("word\x00null\xffbyte")
	f.Add("日本語のタイトル with ascii")
	f.Fuzz(func(t *testing.T, title string) {
		toks := TitleTokens(title)
		for i, tok := range toks {
			if tok == "" {
				t.Fatalf("empty token at %d for %q", i, title)
			}
			for _, r := range tok {
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
					t.Fatalf("token %q of %q has non-lowercase-alnum rune %q", tok, title, r)
				}
			}
		}
		// Determinism.
		again := TitleTokens(title)
		if len(again) != len(toks) {
			t.Fatalf("nondeterministic tokenization of %q", title)
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("nondeterministic token %d of %q", i, title)
			}
		}
		// Idempotence: tokens of the joined tokens are the tokens.
		joined := strings.Join(toks, " ")
		re := TitleTokens(joined)
		if len(re) != len(toks) {
			t.Fatalf("re-tokenizing %q changed count %d→%d", joined, len(toks), len(re))
		}
		for i := range toks {
			if re[i] != toks[i] {
				t.Fatalf("re-tokenizing changed token %d: %q→%q", i, toks[i], re[i])
			}
		}
		// Keywords ⊆ TitleTokens with the documented filter.
		kws := Keywords(title)
		want := 0
		for _, tok := range again {
			if len(tok) > 1 && !IsStopWord(tok) {
				want++
			}
		}
		if len(kws) != want {
			t.Fatalf("Keywords(%q) kept %d tokens, filter says %d", title, len(kws), want)
		}
		for _, k := range kws {
			if len(k) <= 1 || IsStopWord(k) {
				t.Fatalf("Keywords(%q) kept filtered token %q", title, k)
			}
		}
		// Uppercase ASCII must not survive (cheap sanity via unicode).
		for _, tok := range toks {
			for _, r := range tok {
				if unicode.IsUpper(r) {
					t.Fatalf("uppercase rune in token %q", tok)
				}
			}
		}
	})
}

// FuzzParseDBLP feeds arbitrary bytes through the streaming DBLP parser:
// it must never panic, and every corpus it does produce must be frozen,
// structurally valid, and in agreement with its own stats.
func FuzzParseDBLP(f *testing.F) {
	// Seeds: the latin1/entity edge cases of latin1_test.go plus
	// structural oddities of the real dump.
	f.Add([]byte(`<?xml version="1.0" encoding="ISO-8859-1"?>` +
		"<dblp><article key=\"k\"><author>Ren\xe9 Dupont</author>" +
		"<title>Th\xe9orie des Graphes.</title><journal>J</journal>" +
		"<year>1999</year></article></dblp>"))
	f.Add([]byte(`<dblp><article><author>A &amp; B</author><title>T&#233;st</title>` +
		`<year>2000</year></article></dblp>`))
	f.Add([]byte(`<dblp><inproceedings><author>Wei Wang 0001</author>` +
		`<booktitle>KDD</booktitle><year>bad</year></inproceedings></dblp>`))
	f.Add([]byte(`<dblp><article><title>no authors</title></article></dblp>`))
	f.Add([]byte(`<dblp><article><author>Dup</author><author>Dup</author>` +
		`<title>dup authors</title></article></dblp>`))
	f.Add([]byte(`<dblp><article><author>Truncated`))
	f.Add([]byte(`<?xml version="1.0" encoding="shift-jis"?><dblp/>`))
	f.Add([]byte(""))
	f.Add([]byte("<dblp><www><author>Deep<nest><deeper>x</deeper></nest></author></www></dblp>"))
	f.Fuzz(func(t *testing.T, doc []byte) {
		c, stats, err := ParseDBLP(strings.NewReader(string(doc)), 50)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if c == nil {
			t.Fatal("nil corpus without error")
		}
		if !c.Frozen() {
			t.Fatal("parser returned unfrozen corpus")
		}
		if c.Len() != stats.Kept {
			t.Fatalf("corpus has %d papers, stats.Kept=%d", c.Len(), stats.Kept)
		}
		if stats.Kept > stats.Records {
			t.Fatalf("kept %d > records %d", stats.Kept, stats.Records)
		}
		for i := 0; i < c.Len(); i++ {
			p := c.Paper(PaperID(i))
			if err := p.Validate(); err != nil {
				t.Fatalf("paper %d invalid after parse: %v", i, err)
			}
			// The columnar view must resolve every slot.
			ids := c.AuthorIDs(p.ID)
			if len(ids) != len(p.Authors) {
				t.Fatalf("paper %d: %d author IDs for %d authors", i, len(ids), len(p.Authors))
			}
			for k, id := range ids {
				if got := c.NameTable().String(id); got != p.Authors[k] {
					t.Fatalf("paper %d slot %d: %q vs %q", i, k, got, p.Authors[k])
				}
			}
		}
	})
}
