package bib

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus(0)
	c.MustAdd(Paper{
		Title: "Streaming Joins", Venue: "VLDB", Year: 2018,
		Authors: []string{"Ann Lee", "Bo Chen"},
		Truth:   []AuthorID{10, 11},
	})
	c.MustAdd(Paper{
		Title: "Graph Kernels", Venue: "KDD", Year: 2015,
		Authors: []string{"Cara Diaz"},
	})
	c.Freeze()
	return c
}

func TestJSONRoundTrip(t *testing.T) {
	c := sampleCorpus(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("round trip Len=%d, want %d", got.Len(), c.Len())
	}
	p := got.Paper(0)
	if p.Title != "Streaming Joins" || p.Venue != "VLDB" || p.Year != 2018 {
		t.Fatalf("round trip paper 0 = %+v", p)
	}
	if p.TruthAt(1) != 11 {
		t.Fatalf("round trip truth = %d, want 11", p.TruthAt(1))
	}
	if got.Paper(1).TruthAt(0) != UnknownAuthor {
		t.Fatal("unlabeled paper gained truth labels in round trip")
	}
	if !got.Frozen() {
		t.Fatal("ReadJSON result not frozen")
	}
}

func TestReadJSONRejectsBadRecord(t *testing.T) {
	// Paper without authors must fail validation.
	_, err := ReadJSON(strings.NewReader(`{"title":"x","authors":[]}`))
	if err == nil {
		t.Fatal("ReadJSON accepted authorless record")
	}
	_, err = ReadJSON(strings.NewReader(`{not json`))
	if err == nil {
		t.Fatal("ReadJSON accepted malformed JSON")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := sampleCorpus(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := SaveFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("LoadFile Len=%d", got.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("LoadFile of missing path succeeded")
	}
}
