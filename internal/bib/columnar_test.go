package bib

import (
	"fmt"
	"testing"
)

func columnarCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus(8)
	add := func(title, venue string, year int, authors ...string) {
		if _, err := c.Add(Paper{Title: title, Venue: venue, Year: year, Authors: authors}); err != nil {
			t.Fatal(err)
		}
	}
	add("Mining Frequent Patterns Without Candidate Generation", "SIGMOD", 2000, "Jia Xu", "Lin Huang")
	add("Graph Mining with the Mining of Graphs", "KDD", 2001, "Lin Huang")
	add("A Study", "", 2002, "Wei Wang", "Jia Xu")
	add("mining patterns", "SIGMOD", 2003, "Wei Wang")
	c.Freeze()
	return c
}

// TestColumnarMatchesStrings pins the contract of the interned columnar
// view: every ID accessor resolves to exactly the strings of the public
// API, and ID-keyed frequencies match string-keyed ones.
func TestColumnarMatchesStrings(t *testing.T) {
	c := columnarCorpus(t)
	names, venues, words := c.NameTable(), c.VenueTable(), c.WordTable()

	for i := 0; i < c.Len(); i++ {
		p := c.Paper(PaperID(i))
		ids := c.AuthorIDs(p.ID)
		if len(ids) != len(p.Authors) {
			t.Fatalf("paper %d: %d author IDs, %d authors", i, len(ids), len(p.Authors))
		}
		for k, id := range ids {
			if got := names.String(id); got != p.Authors[k] {
				t.Fatalf("paper %d slot %d: interned %q, string %q", i, k, got, p.Authors[k])
			}
		}
		if p.Venue == "" {
			if c.VenueIDOf(p.ID) != -1 {
				t.Fatalf("paper %d: empty venue has ID %d", i, c.VenueIDOf(p.ID))
			}
		} else if got := venues.String(c.VenueIDOf(p.ID)); got != p.Venue {
			t.Fatalf("paper %d: venue %q vs %q", i, got, p.Venue)
		}
		kw := Keywords(p.Title)
		kids := c.KeywordIDs(p.ID)
		if len(kids) != len(kw) {
			t.Fatalf("paper %d: %d keyword IDs, %d keywords (%v)", i, len(kids), len(kw), kw)
		}
		for k, id := range kids {
			if got := words.String(id); got != kw[k] {
				t.Fatalf("paper %d keyword %d: %q vs %q", i, k, got, kw[k])
			}
		}
	}

	// Inverted index and frequencies agree with the string API.
	for _, n := range c.Names() {
		id, ok := names.Lookup(n)
		if !ok {
			t.Fatalf("name %q not interned", n)
		}
		a, b := c.PapersWithName(n), c.PapersWithNameID(id)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("name %q: %v vs %v", n, a, b)
		}
	}
	for _, v := range []string{"SIGMOD", "KDD", "nowhere"} {
		want := c.VenueFrequency(v)
		id, ok := venues.Lookup(v)
		got := 0
		if ok {
			got = c.VenueFrequencyID(id)
		}
		if got != want {
			t.Fatalf("venue %q: freq %d vs %d", v, got, want)
		}
	}
	for _, w := range []string{"mining", "patterns", "a", "zzz"} {
		want := c.WordFrequency(w)
		id, ok := words.Lookup(w)
		got := 0
		if ok {
			got = c.WordFrequencyID(id)
		}
		if got != want {
			t.Fatalf("word %q: freq %d vs %d", w, got, want)
		}
	}
	// "mining" appears twice in paper 1's title but counts once; "a" is a
	// stop word yet still a counted title token.
	if got := c.WordFrequency("mining"); got != 3 {
		t.Fatalf("WordFrequency(mining)=%d want 3", got)
	}
	if got := c.WordFrequency("a"); got != 1 {
		t.Fatalf("WordFrequency(a)=%d want 1", got)
	}
}

// TestColumnarLateIntern pins the out-of-range tolerance of the ID-keyed
// frequency accessors: symbols interned after Freeze (incremental path)
// have zero corpus frequency.
func TestColumnarLateIntern(t *testing.T) {
	c := columnarCorpus(t)
	wid := c.WordTable().Intern("quantum")
	if got := c.WordFrequencyID(wid); got != 0 {
		t.Fatalf("late word freq=%d want 0", got)
	}
	vid := c.VenueTable().Intern("VLDB")
	if got := c.VenueFrequencyID(vid); got != 0 {
		t.Fatalf("late venue freq=%d want 0", got)
	}
	nid := c.NameTable().Intern("New Person")
	if got := c.PapersWithNameID(nid); got != nil {
		t.Fatalf("late name papers=%v want nil", got)
	}
	// Names() still reports only the frozen corpus names.
	for _, n := range c.Names() {
		if n == "New Person" {
			t.Fatal("late-interned name leaked into Names()")
		}
	}
}
