package bib

import (
	"strings"
	"testing"
)

const sampleDBLP = `<?xml version="1.0" encoding="ISO-8859-1"?>
<dblp>
<article mdate="2020-01-01" key="journals/x/LeeC18">
  <author>Ann Lee</author>
  <author>Bo Chen 0002</author>
  <title>Streaming Joins at Scale.</title>
  <journal>VLDB J.</journal>
  <year>2018</year>
  <volume>27</volume>
</article>
<inproceedings key="conf/kdd/Diaz15">
  <author>Cara   Diaz</author>
  <title>Graph Kernels.</title>
  <booktitle>KDD</booktitle>
  <year>2015</year>
  <pages>1-10</pages>
</inproceedings>
<proceedings key="conf/kdd/2015">
  <editor>Someone Else</editor>
  <title>KDD Proceedings</title>
  <year>2015</year>
</proceedings>
<article key="journals/bad/NoYear">
  <author>Dee Fu</author>
  <title>No Year Here</title>
  <journal>Misc</journal>
  <year>MMXV</year>
</article>
</dblp>`

func TestParseDBLP(t *testing.T) {
	c, stats, err := ParseDBLP(strings.NewReader(sampleDBLP), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 4 {
		t.Fatalf("Records=%d, want 4", stats.Records)
	}
	// The editor-only proceedings record has no <author> and is skipped.
	if stats.Kept != 3 || c.Len() != 3 {
		t.Fatalf("Kept=%d Len=%d, want 3", stats.Kept, c.Len())
	}
	if stats.SkippedNoAuth != 1 {
		t.Fatalf("SkippedNoAuth=%d, want 1", stats.SkippedNoAuth)
	}
	if stats.SkippedBadYear != 1 {
		t.Fatalf("SkippedBadYear=%d, want 1", stats.SkippedBadYear)
	}

	p := c.Paper(0)
	if p.Venue != "VLDB J." || p.Year != 2018 {
		t.Fatalf("paper 0 = %+v", p)
	}
	// Homonym suffix removed, whitespace collapsed.
	if p.Authors[1] != "Bo Chen" {
		t.Fatalf("author normalization: %q", p.Authors[1])
	}
	if c.Paper(1).Authors[0] != "Cara Diaz" {
		t.Fatalf("whitespace collapse: %q", c.Paper(1).Authors[0])
	}
	if c.Paper(2).Year != 0 {
		t.Fatalf("bad year should parse as 0, got %d", c.Paper(2).Year)
	}

	// The numeric homonym suffixes are curated ground truth: stripped
	// from the names the disambiguator sees, recorded as per-slot Truth.
	if !c.Labeled() {
		t.Fatal("parsed corpus should carry ground-truth labels")
	}
	if stats.LabeledSlots != 4 {
		t.Fatalf("LabeledSlots=%d, want 4", stats.LabeledSlots)
	}
	if stats.SuffixedSlots != 1 {
		t.Fatalf("SuffixedSlots=%d, want 1 (Bo Chen 0002)", stats.SuffixedSlots)
	}
	if stats.Labels.Len() != 4 {
		t.Fatalf("Labels.Len=%d, want 4 distinct identities", stats.Labels.Len())
	}
	id := p.TruthAt(1)
	if key := stats.Labels.KeyOf(id); key != "Bo Chen 0002" {
		t.Fatalf("identity key of slot 0/1 = %q, want pre-strip suffix kept", key)
	}
	if stats.Labels.IDOf("Bo Chen 0002") != id {
		t.Fatal("IDOf/KeyOf disagree")
	}
	if stats.Labels.IDOf("never seen") != UnknownAuthor {
		t.Fatal("unknown key should map to UnknownAuthor")
	}
}

func TestParseDBLPMaxPapers(t *testing.T) {
	c, stats, err := ParseDBLP(strings.NewReader(sampleDBLP), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 1 || c.Len() != 1 {
		t.Fatalf("maxPapers=1: Kept=%d Len=%d", stats.Kept, c.Len())
	}
}

func TestNormalizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Wei Wang 0001", "Wei Wang"},
		{"Wei   Wang", "Wei Wang"},
		{"  Wei Wang  ", "Wei Wang"},
		{"0001", "0001"}, // lone numeric token is kept (it is the whole name)
		{"Wei Wang Jr", "Wei Wang Jr"},
	}
	for _, tc := range tests {
		if got := NormalizeName(tc.in); got != tc.want {
			t.Errorf("NormalizeName(%q)=%q, want %q", tc.in, got, tc.want)
		}
	}
}
