package bib

import "iuad/internal/intern"

// Columnar accessors over the interned corpus representation. These are
// the hot-path views of the paper database: dense int32 IDs instead of
// strings, CSR slices instead of maps. Every accessor requires a frozen
// corpus.
//
// The *FrequencyID accessors tolerate IDs past the frozen table range
// (symbols interned later by the incremental pipeline): such symbols by
// definition occur in zero frozen-corpus papers, matching the former
// map-miss semantics of the string-keyed indexes.

// NameTable returns the author-name symbol table. The incremental
// pipeline may grow it via Intern; the frozen prefix is immutable.
func (c *Corpus) NameTable() *intern.Table {
	c.mustBeFrozen("NameTable")
	return c.nameTab
}

// VenueTable returns the venue symbol table.
func (c *Corpus) VenueTable() *intern.Table {
	c.mustBeFrozen("VenueTable")
	return c.venueTab
}

// WordTable returns the title-token symbol table (keywords are a subset
// of its symbols).
func (c *Corpus) WordTable() *intern.Table {
	c.mustBeFrozen("WordTable")
	return c.wordTab
}

// AuthorIDs returns the interned name IDs of paper id's author slots, in
// print order. Owned by the corpus; do not mutate.
func (c *Corpus) AuthorIDs(id PaperID) []intern.ID {
	c.mustBeFrozen("AuthorIDs")
	return c.authorIDs[c.authorOff[id]:c.authorOff[id+1]]
}

// VenueIDOf returns the interned venue of paper id, or intern.None.
func (c *Corpus) VenueIDOf(id PaperID) intern.ID {
	c.mustBeFrozen("VenueIDOf")
	return c.venueIDs[id]
}

// KeywordIDs returns the interned keyword tokens of paper id's title, in
// title order with duplicates kept — exactly Keywords(title), interned.
// Owned by the corpus; do not mutate.
func (c *Corpus) KeywordIDs(id PaperID) []intern.ID {
	c.mustBeFrozen("KeywordIDs")
	return c.kwIDs[c.kwOff[id]:c.kwOff[id+1]]
}

// PapersWithNameID returns the papers whose co-author list contains the
// interned name id. Owned by the corpus; do not mutate.
func (c *Corpus) PapersWithNameID(id intern.ID) []PaperID {
	c.mustBeFrozen("PapersWithNameID")
	if id < 0 || int(id) >= len(c.byNameID) {
		return nil
	}
	return c.byNameID[id]
}

// VenueFrequencyID is VenueFrequency keyed by interned ID.
func (c *Corpus) VenueFrequencyID(id intern.ID) int {
	c.mustBeFrozen("VenueFrequencyID")
	if id < 0 || int(id) >= len(c.venueFreqs) {
		return 0
	}
	return int(c.venueFreqs[id])
}

// WordFrequencyID is WordFrequency keyed by interned ID.
func (c *Corpus) WordFrequencyID(id intern.ID) int {
	c.mustBeFrozen("WordFrequencyID")
	if id < 0 || int(id) >= len(c.wordFreqs) {
		return 0
	}
	return int(c.wordFreqs[id])
}
