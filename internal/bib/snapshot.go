package bib

import (
	"fmt"

	"iuad/internal/snapshot"
)

// EncodePaperSnapshot writes one paper record (the shared per-paper
// wire codec — the corpus body and the pipeline's incremental stream
// both use it, so the field sequence lives in exactly one place).
func EncodePaperSnapshot(w *snapshot.Writer, p *Paper) {
	w.String(p.Title)
	w.String(p.Venue)
	w.Int(p.Year)
	w.Strings(p.Authors)
	w.Int(len(p.Truth))
	for _, t := range p.Truth {
		w.Varint(int64(t))
	}
}

// DecodePaperSnapshot reads one paper record and validates it (the ID
// field is the caller's to assign). Structural violations — empty or
// duplicate author names, a truth list not matching the author list —
// are decode errors, never deferred panics.
func DecodePaperSnapshot(r *snapshot.Reader) (Paper, error) {
	var p Paper
	p.Title = r.String()
	p.Venue = r.String()
	p.Year = r.Int()
	p.Authors = r.Strings()
	nt := r.Int()
	if err := r.Err(); err != nil {
		return Paper{}, err
	}
	if nt < 0 || nt > len(p.Authors) {
		return Paper{}, fmt.Errorf("bib: snapshot paper has %d truth labels for %d authors", nt, len(p.Authors))
	}
	if nt > 0 {
		p.Truth = make([]AuthorID, nt)
		for k := range p.Truth {
			p.Truth[k] = AuthorID(r.Varint())
		}
	}
	if err := r.Err(); err != nil {
		return Paper{}, err
	}
	if err := p.Validate(); err != nil {
		return Paper{}, err
	}
	return p, nil
}

// EncodeSnapshot writes the raw paper records. The derived interned and
// columnar state is NOT serialized: Freeze rebuilds it deterministically
// on decode (intern.Build assigns sorted ranks, so the same papers always
// produce the same tables and IDs), which keeps the wire format small
// and immune to index-layout changes.
func (c *Corpus) EncodeSnapshot(w *snapshot.Writer) {
	c.mustBeFrozen("EncodeSnapshot")
	w.Int(len(c.papers))
	for i := range c.papers {
		EncodePaperSnapshot(w, &c.papers[i])
	}
}

// DecodeCorpusSnapshot reads a corpus written by EncodeSnapshot and
// freezes it, rebuilding every derived index.
func DecodeCorpusSnapshot(r *snapshot.Reader) (*Corpus, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("bib: snapshot corpus has %d papers", n)
	}
	// Cap the capacity hint: n is untrusted until the papers actually
	// arrive, and a truncated stream errors out within one iteration.
	hint := n
	if hint > 1<<16 {
		hint = 1 << 16
	}
	c := NewCorpus(hint)
	for i := 0; i < n; i++ {
		p, err := DecodePaperSnapshot(r)
		if err != nil {
			return nil, fmt.Errorf("bib: snapshot paper %d: %w", i, err)
		}
		if _, err := c.Add(p); err != nil {
			return nil, fmt.Errorf("bib: snapshot paper %d: %w", i, err)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	c.Freeze()
	return c, nil
}
