package bib

import (
	"reflect"
	"testing"
	"testing/quick"
)

func mkPaper(title, venue string, year int, authors ...string) Paper {
	return Paper{Title: title, Venue: venue, Year: year, Authors: authors}
}

func TestPaperValidate(t *testing.T) {
	tests := []struct {
		name    string
		paper   Paper
		wantErr bool
	}{
		{"ok", mkPaper("t", "v", 2000, "A B"), false},
		{"no authors", Paper{Title: "t"}, true},
		{"empty author", mkPaper("t", "v", 2000, " "), true},
		{"duplicate author", mkPaper("t", "v", 2000, "A", "A"), true},
		{"truth mismatch", Paper{Authors: []string{"A"}, Truth: []AuthorID{1, 2}}, true},
		{"truth aligned", Paper{Authors: []string{"A"}, Truth: []AuthorID{1}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.paper.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestCorpusAddAssignsSequentialIDs(t *testing.T) {
	c := NewCorpus(0)
	for i := 0; i < 5; i++ {
		id, err := c.Add(mkPaper("t", "v", 2000, "A", "B"))
		if err != nil {
			t.Fatal(err)
		}
		if id != PaperID(i) {
			t.Fatalf("Add #%d returned id %d", i, id)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len=%d, want 5", c.Len())
	}
}

func TestCorpusFreezeIndexes(t *testing.T) {
	c := NewCorpus(0)
	c.MustAdd(mkPaper("Deep Graph Kernels", "KDD", 2015, "Ann Lee", "Bo Chen"))
	c.MustAdd(mkPaper("Graph Neural Nets", "KDD", 2017, "Ann Lee"))
	c.MustAdd(mkPaper("Streaming Joins", "VLDB", 2018, "Cara Diaz"))
	c.Freeze()

	if got := c.PapersWithName("Ann Lee"); len(got) != 2 {
		t.Fatalf("PapersWithName(Ann Lee)=%v, want 2 papers", got)
	}
	if got := c.VenueFrequency("KDD"); got != 2 {
		t.Fatalf("VenueFrequency(KDD)=%d, want 2", got)
	}
	if got := c.VenueFrequency("ICDE"); got != 0 {
		t.Fatalf("VenueFrequency(ICDE)=%d, want 0", got)
	}
	// "graph" appears in two papers (dedup within a title).
	if got := c.WordFrequency("graph"); got != 2 {
		t.Fatalf("WordFrequency(graph)=%d, want 2", got)
	}
	names := c.Names()
	want := []string{"Ann Lee", "Bo Chen", "Cara Diaz"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names()=%v, want %v", names, want)
	}
	if got := c.AuthorPaperPairs(); got != 4 {
		t.Fatalf("AuthorPaperPairs=%d, want 4", got)
	}
}

func TestCorpusAddAfterFreeze(t *testing.T) {
	c := NewCorpus(0)
	c.MustAdd(mkPaper("t", "v", 2000, "A"))
	c.Freeze()
	if _, err := c.Add(mkPaper("t2", "v", 2001, "B")); err != ErrFrozen {
		t.Fatalf("Add after Freeze: err=%v, want ErrFrozen", err)
	}
}

func TestCorpusUnfrozenPanics(t *testing.T) {
	c := NewCorpus(0)
	c.MustAdd(mkPaper("t", "v", 2000, "A"))
	defer func() {
		if recover() == nil {
			t.Fatal("PapersWithName before Freeze did not panic")
		}
	}()
	c.PapersWithName("A")
}

func TestCorpusSubset(t *testing.T) {
	c := NewCorpus(0)
	for i := 0; i < 10; i++ {
		c.MustAdd(Paper{Title: "t", Authors: []string{"A"}, Truth: []AuthorID{AuthorID(i)}})
	}
	c.Freeze()
	sub := c.Subset(4)
	if sub.Len() != 4 {
		t.Fatalf("Subset(4).Len=%d", sub.Len())
	}
	if !sub.Frozen() {
		t.Fatal("Subset result not frozen")
	}
	if got := sub.Paper(3).TruthAt(0); got != 3 {
		t.Fatalf("subset paper 3 truth=%d, want 3", got)
	}
	// Oversized request clamps.
	if got := c.Subset(99).Len(); got != 10 {
		t.Fatalf("Subset(99).Len=%d, want 10", got)
	}
	// Mutating the subset's slices must not touch the original.
	sub.Paper(0).Authors[0] = "Z"
	if c.Paper(0).Authors[0] != "A" {
		t.Fatal("Subset shares author slice with parent corpus")
	}
}

func TestTruthAt(t *testing.T) {
	p := Paper{Authors: []string{"A", "B"}, Truth: []AuthorID{7, 9}}
	if got := p.TruthAt(1); got != 9 {
		t.Fatalf("TruthAt(1)=%d", got)
	}
	if got := p.TruthAt(5); got != UnknownAuthor {
		t.Fatalf("TruthAt(5)=%d, want UnknownAuthor", got)
	}
	unlabeled := Paper{Authors: []string{"A"}}
	if got := unlabeled.TruthAt(0); got != UnknownAuthor {
		t.Fatalf("TruthAt on unlabeled=%d, want UnknownAuthor", got)
	}
}

func TestHasAuthorAndIndex(t *testing.T) {
	p := mkPaper("t", "v", 2000, "A", "B", "C")
	if !p.HasAuthor("B") || p.HasAuthor("Z") {
		t.Fatal("HasAuthor wrong")
	}
	if p.AuthorIndex("C") != 2 || p.AuthorIndex("Z") != -1 {
		t.Fatal("AuthorIndex wrong")
	}
}

func TestLabeled(t *testing.T) {
	c := NewCorpus(0)
	c.MustAdd(Paper{Authors: []string{"A"}, Truth: []AuthorID{1}})
	if !c.Labeled() {
		t.Fatal("fully labeled corpus reported unlabeled")
	}
	c.MustAdd(Paper{Authors: []string{"B"}})
	if c.Labeled() {
		t.Fatal("partially labeled corpus reported labeled")
	}
	if NewCorpus(0).Labeled() {
		t.Fatal("empty corpus reported labeled")
	}
}

// Property: names indexed by Freeze exactly cover the names present in
// papers, with one posting per (paper, name).
func TestFreezeIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := NewCorpus(0)
		namePool := []string{"A", "B", "C", "D", "E"}
		n := int(seed%17) + 1
		state := uint64(seed)
		next := func(m int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(m))
		}
		want := map[string]int{}
		for i := 0; i < n; i++ {
			k := next(len(namePool)) + 1
			perm := append([]string(nil), namePool...)
			for j := range perm {
				o := next(len(perm))
				perm[j], perm[o] = perm[o], perm[j]
			}
			authors := perm[:k]
			for _, a := range authors {
				want[a]++
			}
			c.MustAdd(Paper{Title: "t", Authors: authors})
		}
		c.Freeze()
		got := 0
		for _, name := range c.Names() {
			got += len(c.PapersWithName(name))
			if len(c.PapersWithName(name)) != want[name] {
				return false
			}
		}
		total := 0
		for _, v := range want {
			total += v
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
