package bib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonPaper is the on-disk record format: one JSON object per line
// (JSONL), so multi-hundred-MB corpora stream without loading the decoder
// state of a giant array.
type jsonPaper struct {
	Title   string   `json:"title"`
	Venue   string   `json:"venue,omitempty"`
	Year    int      `json:"year,omitempty"`
	Authors []string `json:"authors"`
	Truth   []int32  `json:"truth,omitempty"`
}

// WriteJSON streams the corpus to w as JSON lines.
func WriteJSON(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range c.Papers() {
		p := &c.Papers()[i]
		rec := jsonPaper{
			Title:   p.Title,
			Venue:   p.Venue,
			Year:    p.Year,
			Authors: p.Authors,
		}
		if len(p.Truth) > 0 {
			rec.Truth = make([]int32, len(p.Truth))
			for j, t := range p.Truth {
				rec.Truth[j] = int32(t)
			}
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("bib: encoding paper %d: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSON streams a JSONL corpus from r and returns it frozen.
func ReadJSON(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	c := NewCorpus(1024)
	for line := 0; ; line++ {
		var rec jsonPaper
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("bib: record %d: %w", line, err)
		}
		p := Paper{
			Title:   rec.Title,
			Venue:   rec.Venue,
			Year:    rec.Year,
			Authors: rec.Authors,
		}
		if len(rec.Truth) > 0 {
			p.Truth = make([]AuthorID, len(rec.Truth))
			for j, t := range rec.Truth {
				p.Truth[j] = AuthorID(t)
			}
		}
		if _, err := c.Add(p); err != nil {
			return nil, fmt.Errorf("bib: record %d: %w", line, err)
		}
	}
	c.Freeze()
	return c, nil
}

// SaveFile writes the corpus to path as JSONL.
func SaveFile(path string, c *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a JSONL corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
