// Package bib defines the bibliographic data model shared by every other
// package in this repository: papers with co-author lists, titles, venues
// and years, plus the Corpus container with the derived indexes the IUAD
// pipeline and its baselines query (papers per name, venue frequencies,
// title-word frequencies).
//
// The model follows the paper's problem definition (§III-A): the input is
// a paper database D where each paper carries exactly four attributes —
// co-author list, title, published venue, and published year. Author
// *names* are strings that may be shared by several distinct authors;
// ground-truth author identities (when known, e.g. from the synthetic
// generator) are carried separately so that unsupervised code cannot
// accidentally peek at them.
package bib

import (
	"errors"
	"fmt"
	"strings"

	"iuad/internal/intern"
)

// PaperID identifies a paper inside one Corpus. IDs are dense indexes
// assigned in insertion order, which lets hot paths use slices instead of
// maps.
type PaperID int32

// AuthorID is a ground-truth author identity. It is only meaningful for
// corpora that carry labels (synthetic data or a labeled evaluation
// subset). AuthorID -1 means "unknown".
type AuthorID int32

// UnknownAuthor marks an author slot without ground-truth identity.
const UnknownAuthor AuthorID = -1

// Paper is a single bibliographic record.
type Paper struct {
	ID    PaperID
	Title string
	Venue string
	Year  int

	// Authors holds the co-author list in print order. Names are the
	// ambiguous strings the disambiguator sees.
	Authors []string

	// Truth holds the ground-truth identity for each author slot, aligned
	// with Authors. Empty for unlabeled corpora.
	Truth []AuthorID
}

// Validate reports structural problems on a single record.
func (p *Paper) Validate() error {
	if len(p.Authors) == 0 {
		return fmt.Errorf("bib: paper %d (%q) has no authors", p.ID, p.Title)
	}
	if len(p.Truth) != 0 && len(p.Truth) != len(p.Authors) {
		return fmt.Errorf("bib: paper %d has %d authors but %d truth labels",
			p.ID, len(p.Authors), len(p.Truth))
	}
	seen := make(map[string]struct{}, len(p.Authors))
	for _, a := range p.Authors {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("bib: paper %d has an empty author name", p.ID)
		}
		if _, dup := seen[a]; dup {
			return fmt.Errorf("bib: paper %d lists author %q twice", p.ID, a)
		}
		seen[a] = struct{}{}
	}
	return nil
}

// TruthAt returns the ground-truth identity of the i-th author slot, or
// UnknownAuthor when the corpus is unlabeled.
func (p *Paper) TruthAt(i int) AuthorID {
	if i < 0 || i >= len(p.Authors) {
		return UnknownAuthor
	}
	if len(p.Truth) == 0 {
		return UnknownAuthor
	}
	return p.Truth[i]
}

// HasAuthor reports whether name appears in the co-author list.
func (p *Paper) HasAuthor(name string) bool {
	for _, a := range p.Authors {
		if a == name {
			return true
		}
	}
	return false
}

// AuthorIndex returns the slot index of name in the co-author list, or -1.
func (p *Paper) AuthorIndex(name string) int {
	for i, a := range p.Authors {
		if a == name {
			return i
		}
	}
	return -1
}

// Corpus is an in-memory paper database plus derived indexes. Build one
// with NewCorpus / Add / Freeze, or load one with ReadJSON.
//
// A Corpus is immutable after Freeze; all read methods are then safe for
// concurrent use. The only exception is the intern tables themselves:
// the incremental pipeline grows them (single-goroutine) when newly
// streamed papers carry names, venues or title tokens the frozen corpus
// has never seen — see the columnar accessors in columnar.go.
type Corpus struct {
	papers []Paper
	frozen bool

	// Interned symbol tables, built by Freeze. IDs of corpus symbols are
	// sorted ranks (intern.Build), so ascending-ID iteration equals the
	// lexicographic iteration of the former string-keyed indexes.
	nameTab  *intern.Table // author names
	venueTab *intern.Table // non-empty venue strings
	wordTab  *intern.Table // lowercased title tokens

	// Columnar per-paper attributes (CSR layout), built by Freeze. The
	// string-based Paper records stay the API boundary; hot paths index
	// these slices instead of re-hashing strings.
	authorOff []int32     // len(papers)+1 offsets into authorIDs
	authorIDs []intern.ID // slot name IDs, print order
	venueIDs  []intern.ID // per paper; intern.None for empty venues
	kwOff     []int32     // len(papers)+1 offsets into kwIDs
	kwIDs     []intern.ID // keyword token IDs, title order, duplicates kept

	// Inverted/frequency indexes over IDs.
	byNameID   [][]PaperID // NameID -> papers containing the name
	venueFreqs []int32     // VenueID -> number of papers
	wordFreqs  []int32     // TokenID -> papers whose title contains it
}

// NewCorpus returns an empty corpus with capacity hints.
func NewCorpus(paperHint int) *Corpus {
	return &Corpus{
		papers: make([]Paper, 0, paperHint),
	}
}

// ErrFrozen is returned by Add after Freeze has been called.
var ErrFrozen = errors.New("bib: corpus is frozen")

// Add validates and appends a paper, assigning its ID. The caller's slice
// headers are retained (no deep copy); do not mutate them afterwards.
func (c *Corpus) Add(p Paper) (PaperID, error) {
	if c.frozen {
		return 0, ErrFrozen
	}
	p.ID = PaperID(len(c.papers))
	if err := p.Validate(); err != nil {
		return 0, err
	}
	c.papers = append(c.papers, p)
	return p.ID, nil
}

// MustAdd is Add for construction code paths where the input is known
// valid (tests, generators). It panics on error.
func (c *Corpus) MustAdd(p Paper) PaperID {
	id, err := c.Add(p)
	if err != nil {
		panic(err)
	}
	return id
}

// Freeze builds the interned tables and columnar indexes, making the
// corpus immutable. Calling Freeze twice is a no-op. Symbols are hashed
// exactly once here; afterwards every hot path works on dense int32 IDs.
func (c *Corpus) Freeze() {
	if c.frozen {
		return
	}
	c.frozen = true

	// Pass 1: collect symbols (titles are tokenized once and reused).
	var nameSyms, venueSyms, wordSyms []string
	tokens := make([][]string, len(c.papers))
	for i := range c.papers {
		p := &c.papers[i]
		nameSyms = append(nameSyms, p.Authors...)
		if p.Venue != "" {
			venueSyms = append(venueSyms, p.Venue)
		}
		tokens[i] = TitleTokens(p.Title)
		wordSyms = append(wordSyms, tokens[i]...)
	}
	c.nameTab = intern.Build(nameSyms)
	c.venueTab = intern.Build(venueSyms)
	c.wordTab = intern.Build(wordSyms)

	// Pass 2: columnar fill + inverted/frequency indexes.
	c.authorOff = make([]int32, len(c.papers)+1)
	c.kwOff = make([]int32, len(c.papers)+1)
	c.venueIDs = make([]intern.ID, len(c.papers))
	c.byNameID = make([][]PaperID, c.nameTab.Len())
	c.venueFreqs = make([]int32, c.venueTab.Len())
	c.wordFreqs = make([]int32, c.wordTab.Len())
	seen := make([]int32, c.wordTab.Len()) // per-paper dedup marks (paper+1)
	for i := range c.papers {
		p := &c.papers[i]
		for _, a := range p.Authors {
			id, _ := c.nameTab.Lookup(a)
			c.authorIDs = append(c.authorIDs, id)
			c.byNameID[id] = append(c.byNameID[id], p.ID)
		}
		c.authorOff[i+1] = int32(len(c.authorIDs))
		c.venueIDs[i] = intern.None
		if p.Venue != "" {
			vid, _ := c.venueTab.Lookup(p.Venue)
			c.venueIDs[i] = vid
			c.venueFreqs[vid]++
		}
		for _, w := range tokens[i] {
			wid, _ := c.wordTab.Lookup(w)
			if seen[wid] != int32(i)+1 {
				seen[wid] = int32(i) + 1
				c.wordFreqs[wid]++
			}
			if isKeywordToken(w) {
				c.kwIDs = append(c.kwIDs, wid)
			}
		}
		c.kwOff[i+1] = int32(len(c.kwIDs))
	}
}

// Frozen reports whether Freeze has been called.
func (c *Corpus) Frozen() bool { return c.frozen }

// Len returns the number of papers.
func (c *Corpus) Len() int { return len(c.papers) }

// Paper returns the paper with the given ID. It panics on out-of-range
// IDs, mirroring slice indexing.
func (c *Corpus) Paper(id PaperID) *Paper { return &c.papers[id] }

// Papers returns the backing slice of papers. Callers must not mutate it
// after Freeze.
func (c *Corpus) Papers() []Paper { return c.papers }

// PapersWithName returns the IDs of papers whose co-author list contains
// name. The returned slice is owned by the corpus; do not mutate.
func (c *Corpus) PapersWithName(name string) []PaperID {
	c.mustBeFrozen("PapersWithName")
	id, ok := c.nameTab.Lookup(name)
	if !ok || int(id) >= len(c.byNameID) {
		return nil
	}
	return c.byNameID[id]
}

// Names returns all distinct author names of the frozen corpus, sorted.
// The slice is freshly allocated (callers historically reorder it); the
// strings are the intern table's own.
func (c *Corpus) Names() []string {
	c.mustBeFrozen("Names")
	frozen := c.nameTab.Strings()[:c.nameTab.FrozenLen()]
	return append([]string(nil), frozen...)
}

// VenueFrequency returns the number of papers published at venue
// (F_H(h) in §V-B3, Eq. 9).
func (c *Corpus) VenueFrequency(venue string) int {
	c.mustBeFrozen("VenueFrequency")
	id, ok := c.venueTab.Lookup(venue)
	if !ok {
		return 0
	}
	return c.VenueFrequencyID(id)
}

// WordFrequency returns the number of papers whose title contains the
// (lowercased) token w — F_B(b) in §V-B2, Eq. 7.
func (c *Corpus) WordFrequency(w string) int {
	c.mustBeFrozen("WordFrequency")
	id, ok := c.wordTab.Lookup(w)
	if !ok {
		return 0
	}
	return c.WordFrequencyID(id)
}

// AuthorPaperPairs counts author-slot occurrences over the whole corpus
// (the paper reports 2,393,969 for its DBLP snapshot).
func (c *Corpus) AuthorPaperPairs() int {
	total := 0
	for i := range c.papers {
		total += len(c.papers[i].Authors)
	}
	return total
}

// Labeled reports whether every paper carries ground-truth labels.
func (c *Corpus) Labeled() bool {
	for i := range c.papers {
		if len(c.papers[i].Truth) != len(c.papers[i].Authors) {
			return false
		}
	}
	return len(c.papers) > 0
}

func (c *Corpus) mustBeFrozen(method string) {
	if !c.frozen {
		panic("bib: Corpus." + method + " called before Freeze")
	}
}

// Subset returns a new frozen corpus containing the first n papers (in
// insertion order). It is used by the data-scale experiments (Table V,
// Fig. 5) to emulate running on 20%..100% of the database.
func (c *Corpus) Subset(n int) *Corpus {
	if n > len(c.papers) {
		n = len(c.papers)
	}
	sub := NewCorpus(n)
	for i := 0; i < n; i++ {
		p := c.papers[i]
		cp := Paper{Title: p.Title, Venue: p.Venue, Year: p.Year}
		cp.Authors = append([]string(nil), p.Authors...)
		if len(p.Truth) > 0 {
			cp.Truth = append([]AuthorID(nil), p.Truth...)
		}
		sub.MustAdd(cp)
	}
	sub.Freeze()
	return sub
}
