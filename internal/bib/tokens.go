package bib

import "strings"

// stopWords are high-frequency English and bibliographic tokens excluded
// from research-interest keywords (§V-B2: "the stop words or the frequent
// words in paper titles are excluded").
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "based", "be", "between", "by",
		"can", "do", "for", "from", "how", "in", "into", "is", "its", "new",
		"non", "not", "of", "on", "or", "over", "some", "study", "that",
		"the", "their", "to", "toward", "towards", "under", "using", "via",
		"we", "what", "when", "where", "which", "with", "within", "without",
	} {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the lowercased token w is excluded from
// keyword extraction.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}

// TitleTokens splits a title into lowercased alphanumeric tokens. It does
// not remove stop words; Keywords does.
func TitleTokens(title string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return out
}

// Keywords returns the title tokens with stop words and single-character
// tokens removed. These are the "keywords" of §V-B2.
func Keywords(title string) []string {
	toks := TitleTokens(title)
	out := toks[:0]
	for _, t := range toks {
		if !isKeywordToken(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// isKeywordToken reports whether a title token survives the keyword
// filter of §V-B2 (no stop words, no single characters).
func isKeywordToken(t string) bool {
	return len(t) > 1 && !IsStopWord(t)
}
