package bib

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DBLP ingestion. The paper's corpus is the public dblp.xml dump
// (https://dblp.uni-trier.de/xml/). This streaming parser extracts the
// four attributes IUAD consumes (authors, title, venue, year) from the
// publication record elements of that dump. It is tolerant: records with
// missing titles or years are kept (venue/year default to zero values),
// records without authors are skipped and counted.
//
// The parser is offline-testable: it takes any io.Reader. It understands a
// practical subset of the DBLP schema — the record elements below with
// nested <author>, <title>, <journal>/<booktitle>, <year> children — which
// is exactly what author-disambiguation work consumes.

// dblpRecordElements are the publication record tags of dblp.xml.
var dblpRecordElements = map[string]struct{}{
	"article":       {},
	"inproceedings": {},
	"proceedings":   {},
	"book":          {},
	"incollection":  {},
	"phdthesis":     {},
	"mastersthesis": {},
	"www":           {},
}

// DBLPStats reports what a parse saw and skipped, and carries the
// ground-truth label table the dump encodes: DBLP's numeric homonym
// suffixes ("Wei Wang 0001") are the human-curated disambiguation
// decision this system is supposed to reproduce. The parser strips the
// suffix from the name the disambiguator sees (keeping it would leak
// the answer) but records the pre-strip name as each slot's
// ground-truth identity in Paper.Truth, keyed by the Labels table.
type DBLPStats struct {
	Records        int // publication records encountered
	Kept           int // records converted into papers
	SkippedNoAuth  int // records without any <author>
	SkippedBadYear int // records whose <year> failed to parse (kept, year 0)

	// LabeledSlots counts author slots carrying a ground-truth identity
	// (every kept slot: an unsuffixed DBLP name is a single author by
	// the dump's own convention, so it is its own identity).
	LabeledSlots int
	// SuffixedSlots counts slots whose identity came from an explicit
	// numeric homonym suffix — the hand-disambiguated subset.
	SuffixedSlots int
	// Labels is the ground-truth identity table: AuthorID ↔ the
	// pre-normalization DBLP author key ("Bo Chen 0002"). Always
	// non-nil after a successful parse.
	Labels *DBLPLabels
}

// DBLPLabels is the ground-truth label table of a DBLP parse: a dense
// AuthorID per distinct pre-normalization author key, in first-
// appearance order (deterministic for a given document).
type DBLPLabels struct {
	ids  map[string]AuthorID
	keys []string
}

// Len returns the number of distinct ground-truth identities.
func (l *DBLPLabels) Len() int {
	if l == nil {
		return 0
	}
	return len(l.keys)
}

// KeyOf returns the DBLP author key of identity id (the suffixed name
// as printed in the dump), or "" when out of range.
func (l *DBLPLabels) KeyOf(id AuthorID) string {
	if l == nil || id < 0 || int(id) >= len(l.keys) {
		return ""
	}
	return l.keys[id]
}

// IDOf returns the identity of a DBLP author key, or UnknownAuthor.
func (l *DBLPLabels) IDOf(key string) AuthorID {
	if l == nil {
		return UnknownAuthor
	}
	if id, ok := l.ids[key]; ok {
		return id
	}
	return UnknownAuthor
}

// intern returns the identity of key, assigning the next dense ID on
// first sight.
func (l *DBLPLabels) intern(key string) AuthorID {
	if id, ok := l.ids[key]; ok {
		return id
	}
	id := AuthorID(len(l.keys))
	l.ids[key] = id
	l.keys = append(l.keys, key)
	return id
}

// ParseDBLP streams a dblp.xml-format document into a frozen Corpus.
// maxPapers > 0 truncates the parse after that many kept records (useful
// for sampling the 3+ GB real dump); 0 means no limit. The returned
// stats carry the dump's ground-truth label table (see DBLPStats); the
// corpus papers carry the matching per-slot Truth identities.
func ParseDBLP(r io.Reader, maxPapers int) (*Corpus, DBLPStats, error) {
	stats := DBLPStats{Labels: &DBLPLabels{ids: make(map[string]AuthorID)}}
	c := NewCorpus(4096)
	dec := xml.NewDecoder(r)
	// dblp.xml declares numeric character entities in its internal DTD
	// subset; resolving them as empty keeps the author names usable.
	dec.Strict = false
	dec.AutoClose = xml.HTMLAutoClose
	dec.Entity = xml.HTMLEntity
	dec.CharsetReader = charsetReader

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, fmt.Errorf("bib: dblp parse: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if _, isRecord := dblpRecordElements[start.Name.Local]; !isRecord {
			continue
		}
		stats.Records++
		paper, perr := parseDBLPRecord(dec, start.Name.Local, &stats)
		if perr != nil {
			return nil, stats, perr
		}
		if paper == nil {
			continue
		}
		// The co-author list parsed with DBLP's homonym suffixes intact
		// (whitespace already collapsed) — the suffixes are the curated
		// ground truth. Strip them from the names the disambiguator
		// sees; the raw keys become the slots' identities below, but
		// only once the record is known to be kept, so dropped records
		// never inflate the label table.
		raw := paper.Authors
		paper.Authors = make([]string, len(raw))
		for i, r := range raw {
			paper.Authors[i] = NormalizeName(r)
		}
		id, err := c.Add(*paper)
		if err != nil {
			// Duplicate author names inside one record occur in the real
			// dump (homonym co-authors); drop the record rather than fail.
			stats.SkippedNoAuth++
			continue
		}
		kept := c.Paper(id)
		kept.Truth = make([]AuthorID, len(raw))
		for i, r := range raw {
			kept.Truth[i] = stats.Labels.intern(r)
			if kept.Authors[i] != r {
				stats.SuffixedSlots++
			}
		}
		stats.Kept++
		stats.LabeledSlots += len(raw)
		if maxPapers > 0 && stats.Kept >= maxPapers {
			break
		}
	}
	c.Freeze()
	return c, stats, nil
}

// parseDBLPRecord consumes tokens until the record's end element.
func parseDBLPRecord(dec *xml.Decoder, recordTag string, stats *DBLPStats) (*Paper, error) {
	var p Paper
	var field string
	var text strings.Builder
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("bib: dblp record truncated: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 2 {
				field = t.Name.Local
				text.Reset()
			}
		case xml.CharData:
			if depth == 2 {
				text.Write(t)
			}
		case xml.EndElement:
			depth--
			if depth == 1 {
				assignDBLPField(&p, field, strings.TrimSpace(text.String()), stats)
				field = ""
			}
		}
	}
	if len(p.Authors) == 0 {
		stats.SkippedNoAuth++
		return nil, nil
	}
	_ = recordTag
	return &p, nil
}

func assignDBLPField(p *Paper, field, value string, stats *DBLPStats) {
	if value == "" {
		return
	}
	switch field {
	case "author", "editor":
		if field == "author" {
			// Collapse whitespace only; the numeric homonym suffix stays
			// on until ParseDBLP has recorded it as the slot's
			// ground-truth identity.
			p.Authors = append(p.Authors, collapseSpace(value))
		}
	case "title":
		p.Title = value
	case "journal", "booktitle":
		if p.Venue == "" {
			p.Venue = value
		}
	case "year":
		y, err := strconv.Atoi(value)
		if err != nil {
			stats.SkippedBadYear++
			return
		}
		p.Year = y
	}
}

// charsetReader handles the ISO-8859-1 declaration of the real dblp.xml
// dump (every Latin-1 byte maps directly to the same Unicode code point).
func charsetReader(charset string, input io.Reader) (io.Reader, error) {
	switch strings.ToLower(charset) {
	case "iso-8859-1", "latin1", "latin-1", "us-ascii", "utf-8":
		if strings.ToLower(charset) == "utf-8" {
			return input, nil
		}
		return &latin1Reader{r: input}, nil
	}
	return nil, fmt.Errorf("bib: unsupported charset %q", charset)
}

type latin1Reader struct {
	r   io.Reader
	buf [2048]byte
	// pending holds a decoded-but-undelivered UTF-8 tail.
	pending []byte
}

func (l *latin1Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if len(l.pending) == 0 {
		max := len(l.buf) / 2 // worst case every byte expands to two
		n, err := l.r.Read(l.buf[:max])
		if n == 0 {
			return 0, err
		}
		out := make([]byte, 0, 2*n)
		for _, b := range l.buf[:n] {
			if b < 0x80 {
				out = append(out, b)
			} else {
				out = append(out, 0xC0|b>>6, 0x80|b&0x3F)
			}
		}
		l.pending = out
	}
	n := copy(p, l.pending)
	l.pending = l.pending[n:]
	return n, nil
}

// collapseSpace trims and collapses internal whitespace runs without
// touching DBLP's numeric homonym suffixes.
func collapseSpace(name string) string {
	return strings.Join(strings.Fields(name), " ")
}

// NormalizeName canonicalizes an author-name string: trims space,
// collapses internal whitespace runs, and removes DBLP's numeric homonym
// suffixes ("Wei Wang 0001" -> "Wei Wang"), since the suffix encodes the
// very disambiguation decision this system is supposed to make.
func NormalizeName(name string) string {
	fields := strings.Fields(name)
	// Drop a trailing all-digit disambiguation token.
	if n := len(fields); n > 1 {
		last := fields[n-1]
		allDigits := len(last) > 0
		for _, r := range last {
			if r < '0' || r > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			fields = fields[:n-1]
		}
	}
	return strings.Join(fields, " ")
}
