package bib

import (
	"reflect"
	"testing"
)

func TestTitleTokens(t *testing.T) {
	tests := []struct {
		title string
		want  []string
	}{
		{"Deep Graph Kernels", []string{"deep", "graph", "kernels"}},
		{"On-Line A/B Testing!", []string{"on", "line", "a", "b", "testing"}},
		{"  ", nil},
		{"", nil},
		{"K2-trees & succinct-ness", []string{"k2", "trees", "succinct", "ness"}},
		{"Ünïcode Títles", []string{"n", "code", "t", "tles"}}, // non-ASCII split points
		{"CNN2015 models", []string{"cnn2015", "models"}},
	}
	for _, tc := range tests {
		if got := TitleTokens(tc.title); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("TitleTokens(%q)=%v, want %v", tc.title, got, tc.want)
		}
	}
}

func TestKeywordsDropsStopAndShortWords(t *testing.T) {
	got := Keywords("On the Design of a Streaming DB")
	want := []string{"design", "streaming", "db"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Keywords=%v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || IsStopWord("kernel") {
		t.Fatal("IsStopWord wrong")
	}
}

func TestKeywordsAllStopWords(t *testing.T) {
	if got := Keywords("on the of a"); len(got) != 0 {
		t.Fatalf("Keywords of all-stopword title = %v, want empty", got)
	}
}
