package bib

import (
	"io"
	"strings"
	"testing"
)

// TestParseDBLPLatin1 feeds a document with genuine ISO-8859-1 bytes
// (0xE9 = é) through the parser, exercising the charset reader the real
// dump needs.
func TestParseDBLPLatin1(t *testing.T) {
	doc := `<?xml version="1.0" encoding="ISO-8859-1"?>` +
		"<dblp><article key=\"k\"><author>Ren\xe9 Dupont</author>" +
		"<title>Th\xe9orie des Graphes.</title><journal>J</journal>" +
		"<year>1999</year></article></dblp>"
	c, stats, err := ParseDBLP(strings.NewReader(doc), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 1 {
		t.Fatalf("kept=%d", stats.Kept)
	}
	if got := c.Paper(0).Authors[0]; got != "René Dupont" {
		t.Fatalf("author=%q, want René Dupont", got)
	}
	if got := c.Paper(0).Title; got != "Théorie des Graphes." {
		t.Fatalf("title=%q", got)
	}
}

func TestLatin1ReaderSmallBuffers(t *testing.T) {
	// Every byte ≥ 0x80 expands to two UTF-8 bytes; reading through a
	// 1-byte destination must still deliver the full expansion.
	src := strings.NewReader("a\xe9b\xfc")
	r, err := charsetReader("latin1", src)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := string(out); got != "aébü" {
		t.Fatalf("decoded %q", got)
	}
}

func TestCharsetReaderUnknown(t *testing.T) {
	if _, err := charsetReader("shift-jis", strings.NewReader("")); err == nil {
		t.Fatal("unknown charset accepted")
	}
	// UTF-8 passes through unchanged.
	r, err := charsetReader("UTF-8", strings.NewReader("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r)
	if string(b) != "xyz" {
		t.Fatalf("utf-8 passthrough=%q", b)
	}
}
