package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Φ(0)")
	approx(t, NormalCDF(1.96), 0.9750021, 1e-6, "Φ(1.96)")
	approx(t, NormalCDF(-1.96), 0.0249979, 1e-6, "Φ(-1.96)")
	approx(t, NormalCDF(3), 0.9986501, 1e-6, "Φ(3)")
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 30 {
			return true
		}
		return math.Abs(NormalCDF(x)+NormalCDF(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		approx(t, NormalCDF(x), p, 1e-9, "Φ(Φ⁻¹(p))")
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Fatal("quantile at 0/1 should be NaN")
	}
}

// TestEquation2TailProbability reproduces the paper's §IV-A worked
// example: na=nb=500, N=5·10⁵ gives E(X)=0.5 and
// Pr(X ≥ 3) = 1 − Φ((2.5 − 0.5)/sqrt(0.5)) ≈ 2.3389·10⁻³.
func TestEquation2TailProbability(t *testing.T) {
	got := CoOccurrenceTail(500, 500, 500000, 3)
	approx(t, got, 2.3389e-3, 2e-5, "Pr(X≥3) (Eq. 2)")
}

func TestBinomialTailCLTAgainstExact(t *testing.T) {
	// For moderate Np the CLT approximation should be within a small
	// absolute error of the exact tail.
	cases := []struct {
		n int
		p float64
		x int
	}{
		{1000, 0.05, 60},
		{1000, 0.05, 40},
		{500, 0.2, 110},
		{2000, 0.01, 25},
	}
	for _, c := range cases {
		exact := BinomialTailExact(c.n, c.p, c.x)
		clt := BinomialTailCLT(c.n, c.p, c.x)
		if math.Abs(exact-clt) > 0.02 {
			t.Errorf("n=%d p=%g x=%d: exact=%g clt=%g", c.n, c.p, c.x, exact, clt)
		}
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if got := BinomialTailCLT(0, 0.5, 0); got != 1 {
		t.Fatalf("Pr(X≥0) with n=0 = %g, want 1", got)
	}
	if got := BinomialTailCLT(10, 0, 1); got != 0 {
		t.Fatalf("p=0 tail = %g, want 0", got)
	}
	if got := BinomialTailExact(10, 0.3, 0); got != 1 {
		t.Fatalf("exact Pr(X≥0)=%g", got)
	}
	if got := BinomialTailExact(10, 0.3, 11); got != 0 {
		t.Fatalf("exact Pr(X≥11)=%g", got)
	}
	if got := CoOccurrenceTail(5, 5, 0, 1); got != 0 {
		t.Fatalf("empty corpus tail=%g", got)
	}
}

func TestBinomialTailMonotoneInX(t *testing.T) {
	prev := 1.1
	for x := 0; x <= 30; x++ {
		tail := BinomialTailCLT(1000, 0.01, x)
		if tail > prev+1e-12 {
			t.Fatalf("tail not monotone at x=%d: %g > %g", x, tail, prev)
		}
		prev = tail
	}
}

func TestHistogramPowerLawFit(t *testing.T) {
	// Construct an exact power law: count(v) = round(1000·v^-2).
	h := &Histogram{Counts: map[int]int{}}
	for v := 1; v <= 30; v++ {
		c := int(math.Round(1000 * math.Pow(float64(v), -2)))
		if c > 0 {
			h.Counts[v] = c
		}
	}
	slope, intercept, err := h.PowerLawFit()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, slope, -2, 0.08, "power-law slope")
	approx(t, intercept, 3, 0.1, "power-law intercept")
}

func TestHistogramIgnoresNonPositive(t *testing.T) {
	h := NewHistogram([]int{0, -3, 1, 1, 2})
	if h.Counts[1] != 2 || h.Counts[2] != 1 || len(h.Counts) != 2 {
		t.Fatalf("histogram=%v", h.Counts)
	}
	xs, ys := h.Points()
	if len(xs) != 2 || xs[0] != 1 || ys[0] != 2 {
		t.Fatalf("points=%v %v", xs, ys)
	}
}

func TestPowerLawFitDegenerate(t *testing.T) {
	h := NewHistogram([]int{5, 5, 5})
	if _, _, err := h.PowerLawFit(); err != ErrDegenerate {
		t.Fatalf("err=%v, want ErrDegenerate", err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, slope, 2, 1e-12, "slope")
	approx(t, intercept, 1, 1e-12, "intercept")

	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single-point fit should fail")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("vertical line fit should fail")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	approx(t, s.Mean, 2.5, 1e-12, "mean")
	approx(t, s.Median, 2.5, 1e-12, "median")
	approx(t, s.Min, 1, 0, "min")
	approx(t, s.Max, 4, 0, "max")
	approx(t, s.Variance, 1.25, 1e-12, "variance")
	approx(t, s.SampleVariance, 5.0/3.0, 1e-12, "sample variance")
	if s.N != 4 {
		t.Fatalf("N=%d", s.N)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary")
	}
	single := Summarize([]float64{7})
	approx(t, single.Median, 7, 0, "single median")
	if single.SampleVariance != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(vals, 0), 1, 0, "q0")
	approx(t, Quantile(vals, 1), 5, 0, "q1")
	approx(t, Quantile(vals, 0.5), 3, 0, "q0.5")
	approx(t, Quantile(vals, 0.25), 2, 1e-12, "q0.25")
}

// Property: the summary mean always lies between min and max.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
