// Package stats provides the small statistical toolkit the paper leans
// on: the standard-normal CDF, the central-limit approximation of the
// binomial tail used in the key observation of §IV-A (Eq. 1), log-log
// histograms with least-squares power-law slope fits (Fig. 3), and basic
// descriptive summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, via the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) using the Acklam rational approximation
// refined by one Newton step. p must be in (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement using the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// BinomialTailCLT approximates Pr(X ≥ x) for X ~ Binom(N, p) with the
// continuity-corrected normal approximation of Eq. 1:
//
//	Pr(X ≥ x) ≈ 1 − Φ(((x − 0.5) − Np) / sqrt(Np(1−p)))
//
// This is the quantity the paper evaluates at na·nb/N² to argue that
// frequent co-occurrence of two independent names is a vanishing-
// probability event.
func BinomialTailCLT(n int, p float64, x int) float64 {
	if n <= 0 || p <= 0 {
		if x <= 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		return 1
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		if float64(x) <= mean {
			return 1
		}
		return 0
	}
	z := ((float64(x) - 0.5) - mean) / sd
	return 1 - NormalCDF(z)
}

// CoOccurrenceTail is the §IV-A instantiation: the probability that two
// independently appearing names with na and nb papers (out of N total)
// co-occur in at least x papers.
func CoOccurrenceTail(na, nb, total, x int) float64 {
	if total <= 0 {
		return 0
	}
	p := (float64(na) / float64(total)) * (float64(nb) / float64(total))
	return BinomialTailCLT(total, p, x)
}

// BinomialTailExact computes Pr(X ≥ x) exactly by summation (stable in
// log space). It is used by tests to bound the CLT approximation error.
func BinomialTailExact(n int, p float64, x int) float64 {
	if x <= 0 {
		return 1
	}
	if x > n {
		return 0
	}
	lp := math.Log(p)
	lq := math.Log1p(-p)
	sum := 0.0
	for k := x; k <= n; k++ {
		lt := logChoose(n, k) + float64(k)*lp + float64(n-k)*lq
		sum += math.Exp(lt)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// Histogram counts occurrences of positive integer values:
// Counts[v] = number of observations equal to v.
type Histogram struct {
	Counts map[int]int
}

// NewHistogram builds a histogram from values; non-positive values are
// ignored (power-law plots are defined on v ≥ 1).
func NewHistogram(values []int) *Histogram {
	h := &Histogram{Counts: make(map[int]int)}
	for _, v := range values {
		if v > 0 {
			h.Counts[v]++
		}
	}
	return h
}

// Add increments the count of value v (v ≥ 1).
func (h *Histogram) Add(v int) {
	if v > 0 {
		h.Counts[v]++
	}
}

// Points returns the (value, count) pairs sorted by value.
func (h *Histogram) Points() (xs, ys []float64) {
	vals := make([]int, 0, len(h.Counts))
	for v := range h.Counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	xs = make([]float64, len(vals))
	ys = make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = float64(v)
		ys[i] = float64(h.Counts[v])
	}
	return xs, ys
}

// ErrDegenerate is returned by fits with fewer than two distinct points.
var ErrDegenerate = errors.New("stats: need at least two distinct points")

// PowerLawFit fits log10(y) = slope·log10(x) + intercept by least squares
// over the histogram points, the estimator behind the slopes annotated in
// Fig. 3 (−1.677 for papers-per-name, −3.172 for pair frequencies).
func (h *Histogram) PowerLawFit() (slope, intercept float64, err error) {
	xs, ys := h.Points()
	if len(xs) < 2 {
		return 0, 0, ErrDegenerate
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log10(xs[i])
		ly[i] = math.Log10(ys[i])
	}
	return LinearFit(lx, ly)
}

// LinearFit returns the least-squares line y = slope·x + intercept.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrDegenerate
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, ErrDegenerate
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// Summary holds descriptive statistics of a float sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P90, P99       float64
	Sum            float64
	Variance       float64 // population variance
	SampleVariance float64 // n-1 denominator; 0 when N < 2
}

// Summarize computes a Summary. An empty input returns the zero Summary.
func Summarize(values []float64) Summary {
	var s Summary
	s.N = len(values)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	for _, v := range sorted {
		s.Sum += v
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.N)
	if s.N > 1 {
		s.SampleVariance = ss / float64(s.N-1)
	}
	s.Std = math.Sqrt(s.Variance)
	s.Median = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// quantileSorted returns the linearly interpolated q-quantile of a sorted
// sample.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile of an unsorted sample.
func Quantile(values []float64, q float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}
