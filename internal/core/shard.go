package core

// This file defines the sharding key of the serving layer: same-name
// blocks are the unit of state (as they are the unit of stage-2 work),
// and a block is owned by exactly one shard, chosen by hashing the
// author-name string. Hashing the *string* — not the interned ID —
// keeps the placement stable across restarts, snapshot restores, and
// intern-order differences, so a snapshot saved with N shards can be
// reloaded and re-partitioned under any runtime shard count.
//
// Because a block never spans shards, everything keyed by a name
// (its vertices, their slots, the byName index entry) lives wholly in
// one shard, and a write batch touches exactly the shards of the
// batch's author names. Kim's scale-free analysis (PAPERS.md) says
// block sizes are heavy-tailed but individually tiny relative to the
// corpus, so hash placement balances load without splitting blocks.

// MaxShards bounds the shard count; the per-vertex shard column is a
// byte, which keeps the routing spine at one byte per author.
const MaxShards = 256

// NormShards clamps a requested shard count into [1, MaxShards].
func NormShards(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return n
}

// ShardOfName returns the shard owning the name block, via FNV-1a over
// the name string. Deterministic across processes and independent of
// interning order.
func ShardOfName(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ShardInfo is the point-in-time summary of one shard, served by the
// /shards debug endpoint: its last-touch epoch, how many publishes
// touched it, the authors and assigned slots it owns, and the depth of
// its pending ingest queue (batches routed to it but not yet
// published).
type ShardInfo struct {
	Shard     int    `json:"shard"`
	Epoch     uint64 `json:"epoch"`
	Publishes uint64 `json:"publishes"`
	Authors   int    `json:"authors"`
	Slots     int    `json:"slots"`
	Pending   int64  `json:"pending"`
}

// ShardSeed restores one shard's serving counters (last-touch epoch and
// publish count) from a composite snapshot manifest. Seeds only apply
// when the runtime shard count equals the saved one; placement itself
// is always re-derived from the name hash.
type ShardSeed struct {
	Epoch     uint64
	Publishes uint64
}

// ContentionStats is the write-path contention and copy accounting the
// sharding work is measured by (the container is single-core, so the
// win is mutex wait and allocation volume, not wall clock). All
// counters are cumulative since the publisher was built.
type ContentionStats struct {
	Shards int `json:"shards"`
	// Publishes counts assembled epochs.
	Publishes int64 `json:"publishes"`
	// IngestWaitNs is time writers spent waiting for the serialized
	// core-ingest lock (unchanged by sharding; reported for honesty).
	IngestWaitNs int64 `json:"ingest_wait_ns"`
	// ApplyWaitNs is time publish workers spent waiting for per-shard
	// apply locks; AssembleWaitNs for the composite assembly lock.
	// With one shard every batch serializes on the same apply lock;
	// with N shards only batches touching the same name blocks do.
	ApplyWaitNs    int64 `json:"apply_wait_ns"`
	AssembleWaitNs int64 `json:"assemble_wait_ns"`
	// DeltaEntriesCopied counts base+delta map entries re-copied at
	// publish time; sharding shrinks it because only the touched
	// shard's delta (≈1/N of the total) is copied per publish.
	DeltaEntriesCopied int64 `json:"delta_entries_copied"`
	// Flattens counts delta→base folds across all shards.
	Flattens int64 `json:"flattens"`
}
