package core

import (
	"math/rand"
	"testing"
)

// These tests pin the allocation behavior of the flat-profile stage-2
// hot paths, so the sorted-slice/merge-join layout cannot silently
// regress back to map-per-profile or map-per-pair behavior. Bounds carry
// modest headroom for slab block boundaries and runtime noise, but sit
// far below what the map-based implementation cost (several allocations
// per profile aggregate, one intersection map walk per pair).

// TestAllocsBuildProfile: aggregating a vertex's papers into the flat
// venue/word/year layout must cost ~1 allocation (the profile struct);
// slices come from the builder's slab.
func TestAllocsBuildProfile(t *testing.T) {
	_, scn, sim, xs := simFixture(t)
	papers := scn.Verts[xs[0]].Papers
	pb := sim.builders.Get().(*profileBuilder)
	defer sim.builders.Put(pb)
	avg := testing.AllocsPerRun(200, func() {
		sim.buildProfile(papers, pb)
	})
	if avg > 2 {
		t.Fatalf("buildProfile allocates %.1f objects/run, want ≤ 2 (profile struct + amortized slab growth)", avg)
	}
}

// TestAllocsSimilaritiesOfProfiles: scoring one pair over cached
// profiles — all six merge-join/map-walk kernels — must not allocate.
func TestAllocsSimilaritiesOfProfiles(t *testing.T) {
	_, _, sim, xs := simFixture(t)
	pi, pj := sim.profileOf(xs[0]), sim.profileOf(xs[1])
	avg := testing.AllocsPerRun(200, func() {
		sim.similaritiesOfProfiles(pi, pj)
	})
	if avg != 0 {
		t.Fatalf("similaritiesOfProfiles allocates %.1f objects/run, want 0", avg)
	}
}

// TestAllocsAppendCoauthors: the append-into-caller-buffer adjacency
// read must not allocate when the buffer has capacity — the contract
// the per-epoch analytics compiler (internal/netstats) relies on when
// it sweeps every vertex's row into one CSR slab. The previous
// per-call materialization (neighborIDs) cost one allocation per
// vertex per sweep.
func TestAllocsAppendCoauthors(t *testing.T) {
	d := testDataset(17)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := NewViewPublisher(pl, 0).Current()
	n := v.NumVertices()
	buf := make([]int32, 0, 2*pl.GCN.G.NumEdges()+1)
	avg := testing.AllocsPerRun(50, func() {
		buf = buf[:0]
		for id := 0; id < n; id++ {
			buf, _ = v.AppendCoauthors(id, buf)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendCoauthors allocates %.1f objects per full-graph sweep, want 0", avg)
	}
}

// TestAllocsRefineRound pins a full refineOnce round on a carried
// refineState at a threshold that merges nothing: every profile and
// every pair score is reused, so the round's allocations are the
// enumeration + contraction floor (block lists, the scored slice, the
// rebuilt network), not per-pair similarity work. The map-based
// implementation rebuilt every profile and re-walked every pair here —
// hundreds of thousands of allocations on this fixture rather than
// thousands.
func TestAllocsRefineRound(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline fixture build in -short")
	}
	d := testDataset(23)
	cfg := fastCoreConfig()
	pl, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	st := &refineState{}
	net := pl.GCN
	// First round pays the fresh similarity computer; measured rounds
	// run on the carried state.
	net = pl.refineOnce(st, net, pl.CalibratedDelta+refinePenalty, rng)
	const noMerge = 1e9 // threshold no score reaches
	avg := testing.AllocsPerRun(5, func() {
		net = pl.refineOnce(st, net, noMerge, rng)
	})
	// Floor measured at ~9.2k objects (enumeration + contract) on this
	// fixture; a regression to per-pair/per-profile maps lands 10-50×
	// higher.
	const maxAllocs = 20000
	if avg > maxAllocs {
		t.Fatalf("carried refineOnce allocates %.0f objects/round, want ≤ %d", avg, maxAllocs)
	}
}
