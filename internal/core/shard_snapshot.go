package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"iuad/internal/bib"
	"iuad/internal/faultinject"
	"iuad/internal/graph"
	"iuad/internal/intern"
	"iuad/internal/snapshot"
)

// The sharded composite snapshot: a manifest file at the snapshot path
// plus one segment file per shard, saved and loaded in parallel.
//
// Layout. The manifest (version 1002) carries the serving epoch, the
// per-shard serving counters and segment descriptors (file name, size,
// FNV-64a checksum), the dead-vertex list, and the pipeline's common
// body — everything of the legacy 1001 format EXCEPT the GCN. Each
// segment (version 1003) carries one shard's slice of the GCN: the
// vertices of the shard's name blocks (with their global IDs), the
// edges owned by the lower endpoint's shard, and the slot assignments
// of the shard's names. Merge order at load is deterministic —
// ascending shard index, ascending vertex ID within a segment — and
// reproduces the exact unsharded iteration orders because global IDs
// are preserved verbatim.
//
// Crash safety. Segments are written first (each one temp-file +
// fsync + rename), the manifest last — the manifest rename is the
// commit point. Segment names embed the saved epoch, so an interrupted
// save never overwrites the committed generation's segments; stale
// generations are garbage-collected after a successful commit.
//
// Partial recovery. When a segment is missing or corrupt, the load can
// (opt-in) proceed without it: the lost shard's vertices become dead
// vertices — the global ID space keeps its shape, so every surviving
// ID, slot and edge stays valid — and edges or retained pair scores
// touching a dead vertex are dropped. Because a name block lives
// wholly in one shard, a lost segment loses whole blocks: queries for
// surviving names are answered exactly as before, lost names simply
// start from scratch on their next ingest.

// ShardedServiceSnapshotVersion is the wire-format version of the
// composite manifest. It lives in the 1000+ service namespace, above
// the legacy single-file ServiceSnapshotVersion (1001).
const ShardedServiceSnapshotVersion = 1002

// shardSegmentVersion is the wire-format version of one shard segment.
const shardSegmentVersion = 1003

// RecoveryReport describes what a partial load lost. A nil report
// means the snapshot loaded completely.
type RecoveryReport struct {
	// MissingSegments lists the shard indexes whose segment file was
	// missing or failed verification, ascending.
	MissingSegments []int `json:"missing_segments"`
	// LostAuthors/LostSlots are the owned counts the manifest recorded
	// for the missing segments.
	LostAuthors int `json:"lost_authors"`
	LostSlots   int `json:"lost_slots"`
	// DroppedEdges counts surviving-segment edges discarded because
	// their other endpoint was lost; DroppedPairs counts retained
	// pair scores and forced merges discarded the same way.
	DroppedEdges int `json:"dropped_edges"`
	DroppedPairs int `json:"dropped_pairs"`
}

// WriteFileAtomic writes a file crash-safely: temp file in the target
// directory, fsync, rename, then fsync the directory so neither a
// torn write nor a lost rename can damage a previously committed file.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	// Chaos point: an armed SnapshotWrite hook aborts the write here,
	// exactly like a failing disk — before the temp file exists, so
	// the committed snapshot generation is never touched.
	if err := faultinject.Fire(faultinject.SnapshotWrite); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".iuad-snap-*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// segmentFileName names the shard segment of one saved generation;
// embedding the epoch keeps an in-progress save from overwriting the
// committed generation's segments.
func segmentFileName(base string, epoch uint64, shard int) string {
	return fmt.Sprintf("%s.e%d.s%03d", base, epoch, shard)
}

// isSegmentFileName reports whether name is a segment file of base
// (any generation), for stale-generation cleanup.
func isSegmentFileName(base, name string) bool {
	rest, ok := strings.CutPrefix(name, base+".e")
	if !ok {
		return false
	}
	gen, shard, ok := strings.Cut(rest, ".s")
	if !ok || gen == "" || len(shard) != 3 {
		return false
	}
	for _, c := range gen + shard {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// shardSegment is one shard's bucketed slice of the GCN, in the
// deterministic save order.
type shardSegment struct {
	verts []int    // global vertex IDs, ascending
	edges [][2]int // (lo,hi) keys, sorted
	slots []Slot   // sorted (paper, index)

	name string
	buf  bytes.Buffer
	sum  uint64
}

// SaveShardedService writes the composite snapshot to path: one
// segment per seed (the runtime shard count), encoded and persisted in
// parallel, then the manifest as the commit point. seeds carries the
// per-shard serving counters (ViewPublisher.ShardSeeds after Sync).
func SaveShardedService(path string, pl *Pipeline, epoch uint64, seeds []ShardSeed) error {
	if pl == nil || pl.GCN == nil || pl.SCN == nil {
		return fmt.Errorf("core: SaveShardedService before BuildGCN")
	}
	if len(seeds) == 0 {
		seeds = []ShardSeed{{Epoch: epoch}}
	}
	n := len(seeds)
	if n > MaxShards {
		return fmt.Errorf("core: %d shards exceeds MaxShards=%d", n, MaxShards)
	}
	gcn := pl.GCN
	dir, base := filepath.Dir(path), filepath.Base(path)

	// Bucket the GCN by owning shard, in the legacy encode orders.
	segs := make([]shardSegment, n)
	var dead []int
	for i := range gcn.Verts {
		if gcn.Verts[i].NameID < 0 {
			dead = append(dead, i)
			continue
		}
		sh := ShardOfName(gcn.Verts[i].Name, n)
		segs[sh].verts = append(segs[sh].verts, i)
	}
	keys := make([][2]int, 0, len(gcn.EdgePapers))
	for key := range gcn.EdgePapers {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		if gcn.Verts[key[0]].NameID < 0 || gcn.Verts[key[1]].NameID < 0 {
			continue // edge to a vertex lost in an earlier partial recovery
		}
		sh := ShardOfName(gcn.Verts[key[0]].Name, n)
		segs[sh].edges = append(segs[sh].edges, key)
	}
	slots := make([]Slot, 0, len(gcn.SlotVertex))
	for s := range gcn.SlotVertex {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Paper != slots[j].Paper {
			return slots[i].Paper < slots[j].Paper
		}
		return slots[i].Index < slots[j].Index
	})
	for _, s := range slots {
		v := gcn.SlotVertex[s]
		if gcn.Verts[v].NameID < 0 {
			continue
		}
		sh := ShardOfName(gcn.Verts[v].Name, n)
		segs[sh].slots = append(segs[sh].slots, s)
	}

	// Encode and persist every segment in parallel (temp+fsync+rename
	// each), before the manifest commit.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sh := range segs {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			seg := &segs[sh]
			sw := snapshot.NewWriter(&seg.buf, shardSegmentVersion)
			sw.Int(sh)
			sw.Int(n)
			sw.Int(len(seg.verts))
			for _, id := range seg.verts {
				v := &gcn.Verts[id]
				sw.Varint(int64(id))
				sw.Varint(int64(v.NameID))
				sw.Bool(v.Isolated)
				encodePaperIDs(sw, v.Papers)
			}
			sw.Int(len(seg.edges))
			for _, key := range seg.edges {
				sw.Int(key[0])
				sw.Int(key[1])
				encodePaperIDs(sw, gcn.EdgePapers[key])
			}
			sw.Int(len(seg.slots))
			for _, s := range seg.slots {
				sw.Varint(int64(s.Paper))
				sw.Int(s.Index)
				sw.Int(gcn.SlotVertex[s])
			}
			if err := sw.Close(); err != nil {
				errs[sh] = err
				return
			}
			h := fnv.New64a()
			h.Write(seg.buf.Bytes())
			seg.sum = h.Sum64()
			seg.name = segmentFileName(base, epoch, sh)
			errs[sh] = WriteFileAtomic(filepath.Join(dir, seg.name), func(w io.Writer) error {
				_, err := w.Write(seg.buf.Bytes())
				return err
			})
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Manifest: serving counters, segment descriptors, dead vertices,
	// and the common pipeline body (everything but the GCN).
	err := WriteFileAtomic(path, func(w io.Writer) error {
		sw := snapshot.NewWriter(w, ShardedServiceSnapshotVersion)
		sw.Uvarint(epoch)
		sw.Int(n)
		sw.Int(len(gcn.Verts))
		for sh := range segs {
			sw.Uvarint(seeds[sh].Epoch)
			sw.Uvarint(seeds[sh].Publishes)
			sw.Int(len(segs[sh].verts))
			sw.Int(len(segs[sh].slots))
			sw.String(segs[sh].name)
			sw.Uvarint(uint64(segs[sh].buf.Len()))
			sw.Uvarint(segs[sh].sum)
		}
		sw.Ints(dead)
		if err := encodePipelineBody(sw, pl, false); err != nil {
			return err
		}
		return sw.Close()
	})
	if err != nil {
		return err
	}

	// Garbage-collect segment files of superseded generations
	// (best-effort; stale files are harmless, just disk).
	keep := make(map[string]bool, n)
	for sh := range segs {
		keep[segs[sh].name] = true
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && !keep[e.Name()] && isSegmentFileName(base, e.Name()) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return nil
}

// segMeta is one manifest segment descriptor.
type segMeta struct {
	seed    ShardSeed
	authors int
	slots   int
	name    string
	size    uint64
	sum     uint64
}

// ErrCorruptSegment reports a composite-snapshot segment file that
// EXISTS but fails verification — truncated against its manifest
// size, checksum-bad, or undecodable. It is deliberately a different
// shape from a missing segment (a plain fs error carrying
// fs.ErrNotExist): "the file vanished" and "the file's interior is
// damaged" need different operator responses, and only the former is
// the expected residue of a partial copy. Match with errors.As; the
// strict (non-partial) open wraps it, the partial-recovery path
// reports the segment in RecoveryReport either way.
type ErrCorruptSegment struct {
	Path string
	// Offset is the byte offset of the earliest failure the loader
	// can localize: the manifest-declared size for a truncated file,
	// 0 when the damage is file-global (checksum mismatch) or inside
	// the compressed decode stream.
	Offset int64
	Reason string
}

func (e *ErrCorruptSegment) Error() string {
	return fmt.Sprintf("core: corrupt snapshot segment %s (offset %d): %s", e.Path, e.Offset, e.Reason)
}

// segPayload is one decoded segment, pre-merge.
type segPayload struct {
	verts   []segVert
	edges   []segEdge
	slots   []segSlot
	missing error // why the segment is unusable (nil = loaded)
}

type segVert struct {
	id     int
	nameID int64
	iso    bool
	papers []bib.PaperID
}

type segEdge struct {
	u, v   int
	papers []bib.PaperID
}

type segSlot struct {
	slot Slot
	vert int
}

// OpenServiceSnapshot opens a service snapshot at path, auto-detecting
// the legacy single-file format (1001) vs the sharded composite
// manifest (1002). For composites it loads segments in parallel; with
// allowPartial, missing or corrupt segments degrade to dead vertices
// and the returned RecoveryReport says what was lost (nil when the
// load was complete). The returned seeds restore per-shard serving
// counters when the runtime shard count matches the saved one.
func OpenServiceSnapshot(path string, allowPartial bool) (*Pipeline, uint64, []ShardSeed, *RecoveryReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	defer f.Close()
	sr, ver, err := snapshot.NewReaderVersions(f, ServiceSnapshotVersion, ShardedServiceSnapshotVersion)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	if ver == ServiceSnapshotVersion {
		epoch := sr.Uvarint()
		if err := sr.Err(); err != nil {
			return nil, 0, nil, nil, err
		}
		pl, err := decodePipelineBody(sr, true)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		return pl, epoch, nil, nil, nil
	}
	return loadShardedService(sr, filepath.Dir(path), allowPartial)
}

func loadShardedService(sr *snapshot.Reader, dir string, allowPartial bool) (*Pipeline, uint64, []ShardSeed, *RecoveryReport, error) {
	fail := func(err error) (*Pipeline, uint64, []ShardSeed, *RecoveryReport, error) {
		return nil, 0, nil, nil, err
	}
	epoch := sr.Uvarint()
	n := sr.Int()
	total := sr.Int()
	if err := sr.Err(); err != nil {
		return fail(err)
	}
	if n < 1 || n > MaxShards {
		return fail(fmt.Errorf("core: composite snapshot has %d shards", n))
	}
	if total < 0 {
		return fail(fmt.Errorf("core: composite snapshot has %d vertices", total))
	}
	metas := make([]segMeta, n)
	for sh := range metas {
		m := &metas[sh]
		m.seed.Epoch = sr.Uvarint()
		m.seed.Publishes = sr.Uvarint()
		m.authors = sr.Int()
		m.slots = sr.Int()
		m.name = sr.String()
		m.size = sr.Uvarint()
		m.sum = sr.Uvarint()
	}
	dead := sr.Ints()
	if err := sr.Err(); err != nil {
		return fail(err)
	}
	pl, err := decodePipelineBody(sr, false)
	if err != nil {
		return fail(err)
	}

	// Segments: read, verify and decode in parallel.
	payloads := make([]segPayload, n)
	var wg sync.WaitGroup
	for sh := range payloads {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			payloads[sh] = loadSegment(filepath.Join(dir, metas[sh].name), &metas[sh], sh, n)
		}(sh)
	}
	wg.Wait()

	rep := &RecoveryReport{}
	for sh := range payloads {
		if payloads[sh].missing != nil {
			rep.MissingSegments = append(rep.MissingSegments, sh)
			rep.LostAuthors += metas[sh].authors
			rep.LostSlots += metas[sh].slots
		}
	}
	if len(rep.MissingSegments) > 0 && !allowPartial {
		first := rep.MissingSegments[0]
		cause := payloads[first].missing
		var ce *ErrCorruptSegment
		if errors.As(cause, &ce) {
			// A corrupt segment is typed and never carries
			// fs.ErrNotExist, so wrapping with %w is safe AND useful:
			// callers branch on errors.As to tell "interior damage,
			// refuse/alert" from "file vanished, maybe refit".
			return fail(fmt.Errorf("core: %d of %d snapshot segments unusable (first: shard %d): %w; open with partial recovery to serve the surviving shards",
				len(rep.MissingSegments), n, first, cause))
		}
		// %v, not %w: a deleted segment's fs.ErrNotExist must not make
		// the whole composite look like an absent snapshot — callers
		// (Service.Open) would silently refit from scratch.
		return fail(fmt.Errorf("core: %d of %d snapshot segments unusable (first: shard %d: %v); open with partial recovery to serve the surviving shards",
			len(rep.MissingSegments), n, first, cause))
	}

	// Merge, ascending shard index then ascending vertex ID — the
	// deterministic order that reproduces unsharded iteration orders.
	names := pl.Corpus.NameTable()
	gcn := newNetwork(pl.Corpus)
	gcn.G = graph.New(total)
	gcn.Verts = make([]Vertex, total)
	for i := range gcn.Verts {
		gcn.Verts[i] = Vertex{ID: i, NameID: -1, Isolated: true}
	}
	covered := make([]bool, total)
	for _, id := range dead {
		if id < 0 || id >= total || covered[id] {
			return fail(fmt.Errorf("core: composite snapshot dead vertex %d invalid", id))
		}
		covered[id] = true // stays a hole, by design
	}
	for sh := range payloads {
		if payloads[sh].missing != nil {
			continue
		}
		prev := -1
		for _, sv := range payloads[sh].verts {
			if sv.id <= prev || sv.id >= total || covered[sv.id] {
				return fail(fmt.Errorf("core: segment %d vertex id %d invalid", sh, sv.id))
			}
			prev = sv.id
			if sv.nameID < 0 || int(sv.nameID) >= names.Len() {
				return fail(fmt.Errorf("core: segment %d vertex %d has name id %d of %d", sh, sv.id, sv.nameID, names.Len()))
			}
			name := names.String(intern.ID(sv.nameID))
			if ShardOfName(name, n) != sh {
				return fail(fmt.Errorf("core: segment %d vertex %d name %q belongs to shard %d", sh, sv.id, name, ShardOfName(name, n)))
			}
			covered[sv.id] = true
			gcn.Verts[sv.id] = Vertex{ID: sv.id, NameID: intern.ID(sv.nameID), Name: name, Papers: sv.papers, Isolated: sv.iso}
			for int(sv.nameID) >= len(gcn.byName) {
				gcn.byName = append(gcn.byName, nil)
			}
			gcn.byName[sv.nameID] = append(gcn.byName[sv.nameID], sv.id)
		}
	}
	lost := 0
	for _, c := range covered {
		if !c {
			lost++
		}
	}
	if lost != rep.LostAuthors {
		return fail(fmt.Errorf("core: composite snapshot covers %d of %d vertices but manifest says %d lost", total-lost, total, rep.LostAuthors))
	}
	deadVert := func(id int) bool { return gcn.Verts[id].NameID < 0 }
	for sh := range payloads {
		if payloads[sh].missing != nil {
			continue
		}
		for _, se := range payloads[sh].edges {
			if se.u < 0 || se.v < 0 || se.u >= total || se.v >= total || se.u == se.v {
				return fail(fmt.Errorf("core: segment %d edge %d-%d invalid", sh, se.u, se.v))
			}
			if deadVert(se.u) || deadVert(se.v) {
				rep.DroppedEdges++
				continue
			}
			gcn.G.AddEdge(se.u, se.v)
			gcn.EdgePapers[edgeKey(se.u, se.v)] = se.papers
		}
		for _, ss := range payloads[sh].slots {
			if ss.vert < 0 || ss.vert >= total || deadVert(ss.vert) {
				return fail(fmt.Errorf("core: segment %d slot %+v assigned to invalid vertex %d", sh, ss.slot, ss.vert))
			}
			gcn.SlotVertex[ss.slot] = ss.vert
		}
	}
	// Retained pair scores and forced merges referencing lost vertices
	// go with them (they only feed offline analysis and re-saves).
	if len(rep.MissingSegments) > 0 {
		kept := pl.scored[:0]
		for _, sp := range pl.scored {
			if inRange(sp.A, total) && inRange(sp.B, total) && !deadVert(sp.A) && !deadVert(sp.B) {
				kept = append(kept, sp)
			} else {
				rep.DroppedPairs++
			}
		}
		pl.scored = kept
		keptFM := pl.forcedMerges[:0]
		for _, fm := range pl.forcedMerges {
			if inRange(fm[0], total) && inRange(fm[1], total) && !deadVert(fm[0]) && !deadVert(fm[1]) {
				keptFM = append(keptFM, fm)
			} else {
				rep.DroppedPairs++
			}
		}
		pl.forcedMerges = keptFM
	}

	pl.GCN = gcn
	if err := pl.finishRestore(); err != nil {
		return fail(err)
	}
	seeds := make([]ShardSeed, n)
	for sh := range metas {
		seeds[sh] = metas[sh].seed
	}
	if len(rep.MissingSegments) == 0 {
		rep = nil
	}
	return pl, epoch, seeds, rep, nil
}

func inRange(id, total int) bool { return id >= 0 && id < total }

// loadSegment reads, checksums and decodes one segment file. Failures
// land in segPayload.missing so the caller can choose strict error vs
// partial recovery.
func loadSegment(path string, m *segMeta, sh, n int) segPayload {
	// Two failure shapes, deliberately distinct: a read error is a
	// MISSING segment (fs.ErrNotExist and friends — the partial-copy
	// residue partial recovery was built for); everything after a
	// successful read is a CORRUPT one, typed *ErrCorruptSegment.
	miss := func(err error) segPayload { return segPayload{missing: err} }
	corrupt := func(off int64, reason string) segPayload {
		return segPayload{missing: &ErrCorruptSegment{Path: path, Offset: off, Reason: reason}}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return miss(err)
	}
	if uint64(len(b)) != m.size {
		off := int64(len(b))
		if uint64(len(b)) > m.size {
			off = int64(m.size)
		}
		return corrupt(off, fmt.Sprintf("segment is %d bytes, manifest says %d", len(b), m.size))
	}
	h := fnv.New64a()
	h.Write(b)
	if h.Sum64() != m.sum {
		return corrupt(0, "segment fails its checksum")
	}
	sr, err := snapshot.NewReader(bytes.NewReader(b), shardSegmentVersion)
	if err != nil {
		return corrupt(0, err.Error())
	}
	if got, gotN := sr.Int(), sr.Int(); got != sh || gotN != n {
		return corrupt(0, fmt.Sprintf("segment is shard %d/%d, want %d/%d", got, gotN, sh, n))
	}
	var p segPayload
	nv := sr.Int()
	if sr.Err() != nil || nv < 0 || nv != m.authors {
		return corrupt(0, fmt.Sprintf("segment has %d vertices, manifest says %d", nv, m.authors))
	}
	for i := 0; i < nv && sr.Err() == nil; i++ {
		p.verts = append(p.verts, segVert{
			id:     int(sr.Varint()),
			nameID: sr.Varint(),
			iso:    sr.Bool(),
			papers: decodePaperIDs(sr),
		})
	}
	ne := sr.Int()
	if sr.Err() != nil || ne < 0 {
		return corrupt(0, "segment has a corrupt edge count")
	}
	for i := 0; i < ne && sr.Err() == nil; i++ {
		p.edges = append(p.edges, segEdge{u: sr.Int(), v: sr.Int(), papers: decodePaperIDs(sr)})
	}
	ns := sr.Int()
	if sr.Err() != nil || ns < 0 {
		return corrupt(0, "segment has a corrupt slot count")
	}
	for i := 0; i < ns && sr.Err() == nil; i++ {
		p.slots = append(p.slots, segSlot{
			slot: Slot{Paper: bib.PaperID(sr.Varint()), Index: sr.Int()},
			vert: sr.Int(),
		})
	}
	if err := sr.Err(); err != nil {
		return corrupt(0, err.Error())
	}
	return p
}
