package core

import (
	"math"
	"slices"
	"sync"

	"iuad/internal/bib"
	"iuad/internal/intern"
	"iuad/internal/sched"
	"iuad/internal/textvec"
	"iuad/internal/wlkernel"
)

// paperSource resolves per-paper columnar attributes and corpus-level
// frequencies, keyed by interned IDs. The batch pipeline reads the
// frozen corpus directly; the incremental pipeline additionally resolves
// newly streamed papers (whose symbols may be interned past the frozen
// table range).
type paperSource interface {
	keywordIDs(bib.PaperID) []intern.ID
	venueIDOf(bib.PaperID) intern.ID
	yearOf(bib.PaperID) int
	wordFreqID(intern.ID) int
	venueFreqID(intern.ID) int
}

// corpusSource adapts *bib.Corpus to paperSource.
type corpusSource struct{ c *bib.Corpus }

func (s corpusSource) keywordIDs(id bib.PaperID) []intern.ID { return s.c.KeywordIDs(id) }
func (s corpusSource) venueIDOf(id bib.PaperID) intern.ID    { return s.c.VenueIDOf(id) }
func (s corpusSource) yearOf(id bib.PaperID) int             { return s.c.Paper(id).Year }
func (s corpusSource) wordFreqID(id intern.ID) int           { return s.c.WordFrequencyID(id) }
func (s corpusSource) venueFreqID(id intern.ID) int          { return s.c.VenueFrequencyID(id) }

// profile caches the per-vertex aggregates the six similarity functions
// consume (§V-B), laid out as flat sorted slices instead of the former
// per-profile hash maps. Every slice is carved from a profileBuilder's
// slab, so building a round's profiles costs a handful of block
// allocations instead of several maps per vertex.
//
// All symbol slices are sorted in lexicographic *symbol* order — for
// frozen-corpus IDs that is plain ascending-ID order (intern.Build
// assigns sorted ranks), and for the rare late-interned symbols of the
// incremental stream the builders fall back to a string sort. This is
// the deterministic iteration order the former map-based implementation
// used for its γ⁴/γ⁶ float reductions, so two-pointer merge-joins over
// these slices reproduce those sums bit for bit.
type profile struct {
	paperCount int
	// venueIDs/venueCounts encode the venue multiset H(v) as parallel
	// sorted slices; topVenue is its most frequent element (ties broken
	// lexicographically), or intern.None when the vertex has no venues.
	venueIDs    []intern.ID
	venueCounts []int32
	topVenue    intern.ID
	// wordIDs lists the distinct title-keyword IDs; the years each word
	// was used (ascending, with multiplicity) live in
	// years[wordOff[i]:wordOff[i+1]] — one shared backing slice instead
	// of a map of small slices.
	wordIDs []intern.ID
	wordOff []int32
	years   []int32
	// centroid is W(v), the mean keyword vector (nil if no keyword is in
	// vocabulary).
	centroid []float64
	// wl is the WL subgraph feature vector φ of the vertex's ego network
	// as a flat label-sorted run-length slice (slab-carved, like every
	// other profile aggregate — the former map cost one allocation per
	// bucket chunk and a map walk per pair); wlSelfDot caches its self
	// inner product ⟨φ,φ⟩ (an exact integer sum) so γ¹ merge-joins one
	// vector pair per evaluation. degree is the vertex's collaboration
	// degree. A neighborless vertex has no structural identity beyond
	// its own (shared) name, so γ¹ treats it as "no evidence" rather
	// than "identical subgraph".
	wl        []wlkernel.LabelCount
	wlSelfDot float64
	degree    int
	// triangles lists the distinct co-author name-ID pairs forming stable
	// triangles with this vertex (the clique list L(v) of Eq. 5,
	// restricted to triangles as in the paper), sorted by (A, B).
	triangles []namePair
}

// slabBlock is the element count of one slab growth step. Profiles are
// small (a few venues, tens of words), so one block serves hundreds of
// profiles; giant vertices spill into a dedicated exact-size block.
const slabBlock = 4096

// slab is a bump allocator for profile slices: carving sorted runs out
// of a few grown blocks replaces the thousands of small map and slice
// allocations the map-based profiles cost per refinement round. Carved
// regions are immutable once returned (full-slice expressions prevent
// append bleed), so profiles may outlive the builder that made them.
type slab struct {
	ids   []intern.ID
	i32   []int32
	pairs []namePair
	lcs   []wlkernel.LabelCount
}

// carve returns an n-element region bumped off the current block,
// growing it when exhausted. The full-slice expression caps the region
// so later carves can never append into it.
func carve[T any](block *[]T, n int) []T {
	if n == 0 {
		return nil
	}
	if cap(*block)-len(*block) < n {
		*block = make([]T, 0, max(n, slabBlock))
	}
	l := len(*block)
	*block = (*block)[: l+n : cap(*block)]
	return (*block)[l : l+n : l+n]
}

func (s *slab) allocIDs(n int) []intern.ID           { return carve(&s.ids, n) }
func (s *slab) allocI32(n int) []int32               { return carve(&s.i32, n) }
func (s *slab) allocPairs(n int) []namePair          { return carve(&s.pairs, n) }
func (s *slab) allocLCs(n int) []wlkernel.LabelCount { return carve(&s.lcs, n) }

// wordYear is one (keyword, year) occurrence gathered during profile
// aggregation, before sorting and run-length grouping.
type wordYear struct {
	id   intern.ID
	year int32
}

// profileBuilder bundles a slab with the reusable scratch buffers of
// profile aggregation. Builders are not safe for concurrent use; the
// computer keeps them in a sync.Pool so each worker of a parallel
// profile warm-up holds one exclusively while building.
type profileBuilder struct {
	sl     slab
	wys    []wordYear
	vens   []intern.ID
	kwRows []int32
	tris   []namePair
	// wlx is the flat WL feature extractor (ego BFS marks, CSR and
	// label scratch), reused across every profile this builder makes.
	wlx wlkernel.Extractor
}

// similarityComputer evaluates γ¹..γ⁶ over a network, caching profiles.
type similarityComputer struct {
	net   *Network
	src   paperSource
	emb   *textvec.Embeddings
	cfg   *Config
	cache map[int]*profile

	// builders pools profileBuilders (slab + scratch): serial paths reuse
	// one, parallel warm-ups hand one to each in-flight build.
	builders *sync.Pool

	// Symbol tables of the underlying corpus, shared by every layer.
	nameTab  *intern.Table
	venueTab *intern.Table
	wordTab  *intern.Table
	// wlLabels caches the WL initial label (FNV hash) per interned name,
	// computed once instead of per ego-subgraph vertex. Read-only after
	// construction, so concurrent profile builds may index it freely;
	// names interned later fall back to hashing on the fly.
	wlLabels []uint64
	// embRows maps each interned title token to its embedding-vocabulary
	// row (-1 = out of vocabulary). Same read-only contract as wlLabels.
	embRows []int32
}

// symbolCaches holds the per-symbol lookup tables (WL label hashes per
// name, embedding rows per token). BuildGCN builds them once and shares
// them through Config across every similarityComputer of the run
// (initial scoring, vertex-split fitting, refine rounds, the final
// incremental computer) — the tables' frozen prefixes never change, so
// one O(vocabulary) pass suffices instead of one per construction.
type symbolCaches struct {
	wlLabels []uint64
	embRows  []int32
}

func buildSymbolCaches(corpus *bib.Corpus, emb *textvec.Embeddings) *symbolCaches {
	names, words := corpus.NameTable(), corpus.WordTable()
	c := &symbolCaches{wlLabels: make([]uint64, names.Len())}
	for i := range c.wlLabels {
		c.wlLabels[i] = wlkernel.HashLabel(names.String(intern.ID(i)))
	}
	if emb != nil {
		c.embRows = make([]int32, words.Len())
		for i := range c.embRows {
			c.embRows[i] = emb.RowOf(words.String(intern.ID(i)))
		}
	}
	return c
}

func newSimilarityComputer(net *Network, src paperSource, emb *textvec.Embeddings, cfg *Config) *similarityComputer {
	sc := &similarityComputer{
		net:      net,
		src:      src,
		emb:      emb,
		cfg:      cfg,
		cache:    make(map[int]*profile),
		builders: &sync.Pool{New: func() any { return new(profileBuilder) }},
		nameTab:  net.Corpus.NameTable(),
		venueTab: net.Corpus.VenueTable(),
		wordTab:  net.Corpus.WordTable(),
	}
	caches := cfg.symCache
	if caches == nil {
		caches = buildSymbolCaches(net.Corpus, emb)
	}
	sc.wlLabels = caches.wlLabels
	if emb != nil {
		sc.embRows = caches.embRows
	}
	return sc
}

// rebind returns a computer over net that shares this computer's symbol
// tables, per-symbol caches and builder pool, seeded with the given
// profile cache — the cross-round carry of iterative refinement: the
// profiles of vertices untouched by a merge round are remapped into the
// contracted network instead of being rebuilt.
func (sc *similarityComputer) rebind(net *Network, cache map[int]*profile) *similarityComputer {
	out := *sc
	out.net = net
	out.cache = cache
	return &out
}

// wlLabel returns the WL initial label of the interned name nid.
func (sc *similarityComputer) wlLabel(nid intern.ID) uint64 {
	if int(nid) < len(sc.wlLabels) {
		return sc.wlLabels[nid]
	}
	return wlkernel.HashLabel(sc.nameTab.String(nid))
}

// embRow resolves a token ID to its embedding row (-1 = OOV).
func (sc *similarityComputer) embRow(w intern.ID) int32 {
	if int(w) < len(sc.embRows) {
		return sc.embRows[w]
	}
	// A token interned after this computer was built cannot be in the
	// embedding vocabulary (embeddings are trained on the frozen corpus),
	// but resolve through the string path for correctness.
	return sc.emb.RowOf(sc.wordTab.String(w))
}

// invalidate drops the cached profile of vertex v (incremental updates).
func (sc *similarityComputer) invalidate(v int) { delete(sc.cache, v) }

func (sc *similarityComputer) profileOf(v int) *profile {
	if p, ok := sc.cache[v]; ok {
		return p
	}
	pb := sc.builders.Get().(*profileBuilder)
	p := sc.buildVertexProfile(v, pb)
	sc.builders.Put(pb)
	sc.cache[v] = p
	return p
}

// buildVertexProfile computes a vertex profile without touching the
// cache; it only reads the (immutable during stage 2) network, corpus
// and embeddings plus the caller-owned builder, so it is safe to call
// from concurrent workers holding distinct builders.
func (sc *similarityComputer) buildVertexProfile(v int, pb *profileBuilder) *profile {
	p := sc.buildProfile(sc.net.Verts[v].Papers, pb)
	flat := pb.wlx.SubgraphFlat(sc.net.G, v, sc.cfg.WLIterations,
		func(u int) uint64 { return sc.wlLabel(sc.net.Verts[u].NameID) })
	p.wl = pb.sl.allocLCs(len(flat))
	copy(p.wl, flat)
	p.wlSelfDot = wlkernel.DotFlat(p.wl, p.wl)
	p.degree = sc.net.G.Degree(v)
	p.triangles = sc.triangleNamePairs(v, pb)
	return p
}

// precomputeProfiles fills the cache for every id with the configured
// worker pool. Profile construction is read-only; workers write into a
// positional result slice, so the cache map is only touched by the
// caller's goroutine. After it returns, parallel sections may read the
// cached profiles for these ids without synchronization (see
// mustProfile).
func (sc *similarityComputer) precomputeProfiles(ids []int) {
	var todo []int
	// Bitset dedup sized to the vertex count: ids are vertex indexes, so
	// this replaces a hash set on the warm-up path of every round.
	seen := make([]uint64, (len(sc.net.Verts)+63)/64)
	for _, id := range ids {
		if seen[id>>6]&(1<<(uint(id)&63)) != 0 {
			continue
		}
		seen[id>>6] |= 1 << (uint(id) & 63)
		if _, ok := sc.cache[id]; !ok {
			todo = append(todo, id)
		}
	}
	results := sched.Map(sc.cfg.workers(), len(todo), func(k int) *profile {
		pb := sc.builders.Get().(*profileBuilder)
		p := sc.buildVertexProfile(todo[k], pb)
		sc.builders.Put(pb)
		return p
	})
	for k, id := range todo {
		sc.cache[id] = results[k]
	}
}

// mustProfile returns the profile of v without ever writing the cache,
// so it is safe to call from concurrent workers. Callers are expected to
// have warmed the cache with precomputeProfiles; a miss falls back to an
// uncached (re)build rather than a racy insert.
func (sc *similarityComputer) mustProfile(v int) *profile {
	if p, ok := sc.cache[v]; ok {
		return p
	}
	pb := sc.builders.Get().(*profileBuilder)
	p := sc.buildVertexProfile(v, pb)
	sc.builders.Put(pb)
	return p
}

// buildProfile aggregates papers into venue/keyword/centroid state on the
// flat layout: occurrences are gathered into the builder's scratch,
// sorted, and run-length grouped into slab-backed slices. It is shared by
// vertex profiles and the temporary profiles of incremental papers.
func (sc *similarityComputer) buildProfile(papers []bib.PaperID, pb *profileBuilder) *profile {
	p := &profile{paperCount: len(papers)}
	pb.vens = pb.vens[:0]
	pb.wys = pb.wys[:0]
	pb.kwRows = pb.kwRows[:0]
	venueFrozen := intern.ID(sc.venueTab.FrozenLen())
	wordFrozen := intern.ID(sc.wordTab.FrozenLen())
	tailed := false
	for _, id := range papers {
		if vid := sc.src.venueIDOf(id); vid != intern.None {
			pb.vens = append(pb.vens, vid)
			tailed = tailed || vid >= venueFrozen
		}
		year := int32(sc.src.yearOf(id))
		for _, w := range sc.src.keywordIDs(id) {
			pb.wys = append(pb.wys, wordYear{id: w, year: year})
			tailed = tailed || w >= wordFrozen
			if sc.emb != nil {
				if r := sc.embRow(w); r >= 0 {
					pb.kwRows = append(pb.kwRows, r)
				}
			}
		}
	}
	// Sort occurrences into symbol order. All-frozen profiles (every
	// batch profile, and most incremental ones) take the pure integer
	// sort; a late-interned symbol falls back to the table comparator,
	// preserving the exact lexicographic semantics of the old sorted key
	// lists.
	if !tailed {
		slices.Sort(pb.vens)
		slices.SortFunc(pb.wys, func(a, b wordYear) int {
			if a.id != b.id {
				if a.id < b.id {
					return -1
				}
				return 1
			}
			if a.year != b.year {
				if a.year < b.year {
					return -1
				}
				return 1
			}
			return 0
		})
	} else {
		slices.SortFunc(pb.vens, sc.venueTab.Compare)
		slices.SortFunc(pb.wys, func(a, b wordYear) int {
			if c := sc.wordTab.Compare(a.id, b.id); c != 0 {
				return c
			}
			if a.year != b.year {
				if a.year < b.year {
					return -1
				}
				return 1
			}
			return 0
		})
	}
	// Venue runs + top venue (max count, ties to the lexicographically
	// smallest, i.e. the first run at the max since runs are in symbol
	// order).
	runs := 0
	for i := 0; i < len(pb.vens); i++ {
		if i == 0 || pb.vens[i] != pb.vens[i-1] {
			runs++
		}
	}
	p.venueIDs = pb.sl.allocIDs(runs)
	p.venueCounts = pb.sl.allocI32(runs)
	p.topVenue = intern.None
	var bestCount int32 = -1
	k := -1
	for i := 0; i < len(pb.vens); i++ {
		if i == 0 || pb.vens[i] != pb.vens[i-1] {
			k++
			p.venueIDs[k] = pb.vens[i]
			p.venueCounts[k] = 0
		}
		p.venueCounts[k]++
		if p.venueCounts[k] > bestCount {
			bestCount = p.venueCounts[k]
			p.topVenue = p.venueIDs[k]
		}
	}
	// Word runs: distinct IDs plus per-word year spans in one shared
	// backing slice.
	runs = 0
	for i := 0; i < len(pb.wys); i++ {
		if i == 0 || pb.wys[i].id != pb.wys[i-1].id {
			runs++
		}
	}
	p.wordIDs = pb.sl.allocIDs(runs)
	p.wordOff = pb.sl.allocI32(runs + 1)
	p.years = pb.sl.allocI32(len(pb.wys))
	k = -1
	for i := 0; i < len(pb.wys); i++ {
		if i == 0 || pb.wys[i].id != pb.wys[i-1].id {
			k++
			p.wordIDs[k] = pb.wys[i].id
			p.wordOff[k] = int32(i)
		}
		p.years[i] = pb.wys[i].year
	}
	if runs > 0 {
		p.wordOff[runs] = int32(len(pb.wys))
	}
	if sc.emb != nil {
		// Mean-centered centroids: raw SGNS centroids share a large
		// common direction and saturate cosine near 1 for all pairs.
		p.centroid = sc.emb.CenteredCentroidRows(pb.kwRows)
	}
	return p
}

// triangleNamePairs lists the distinct name-ID pairs {name(u), name(w)}
// of all stable triangles (v,u,w) in the network, sorted by (A, B).
func (sc *similarityComputer) triangleNamePairs(v int, pb *profileBuilder) []namePair {
	pb.tris = pb.tris[:0]
	sc.net.G.VisitTrianglePairs(v, func(u, w int) {
		pb.tris = append(pb.tris, makeNamePair(sc.net.Verts[u].NameID, sc.net.Verts[w].NameID))
	})
	slices.SortFunc(pb.tris, cmpNamePair)
	dedup := slices.Compact(pb.tris)
	out := pb.sl.allocPairs(len(dedup))
	copy(out, dedup)
	return out
}

// tau is the productivity balance term of Eqs. 5, 7, 8, 9: the smaller
// paper count of the two vertices.
func tau(a, b *profile) float64 {
	t := a.paperCount
	if b.paperCount < t {
		t = b.paperCount
	}
	if t < 1 {
		t = 1
	}
	return float64(t)
}

// Similarities computes the full γ vector between two vertices. Disabled
// features (cfg.FeatureMask) are left at 0 and excluded by gammaFor.
func (sc *similarityComputer) Similarities(vi, vj int) [NumSimilarities]float64 {
	pi, pj := sc.profileOf(vi), sc.profileOf(vj)
	return sc.similaritiesOfProfiles(pi, pj)
}

func (sc *similarityComputer) similaritiesOfProfiles(pi, pj *profile) [NumSimilarities]float64 {
	var g [NumSimilarities]float64
	enabled := func(i int) bool { return sc.cfg.FeatureMask == nil || sc.cfg.FeatureMask[i] }

	if enabled(SimWLKernel) && pi.degree > 0 && pj.degree > 0 {
		g[SimWLKernel] = wlkernel.NormalizedPreFlat(pi.wl, pj.wl, pi.wlSelfDot, pj.wlSelfDot)
	}
	if enabled(SimCliques) {
		g[SimCliques] = cliqueCoincidence(pi, pj)
	}
	if enabled(SimInterests) {
		g[SimInterests] = textvec.Cosine(pi.centroid, pj.centroid)
	}
	if enabled(SimTimeConsist) {
		g[SimTimeConsist] = sc.timeConsistency(pi, pj)
	}
	if enabled(SimRepCommunity) {
		g[SimRepCommunity] = sc.representativeCommunity(pi, pj)
	}
	if enabled(SimCommunity) {
		g[SimCommunity] = sc.communitySimilarity(pi, pj)
	}
	return g
}

// cliqueCoincidence is γ² (Eq. 5): shared co-author cliques over τ,
// counted by a two-pointer merge over the sorted triangle lists.
func cliqueCoincidence(pi, pj *profile) float64 {
	a, b := pi.triangles, pj.triangles
	shared, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x.A < y.A || (x.A == y.A && x.B < y.B):
			i++
		case y.A < x.A || (y.A == x.A && y.B < x.B):
			j++
		default:
			shared++
			i++
			j++
		}
	}
	return float64(shared) / tau(pi, pj)
}

// timeConsistency is γ⁴ (Eq. 7): Σ_b exp(−α·minYearDiff(b)) / log F_B(b),
// over shared keywords, scaled by 1/τ. The paper writes e^{α·min(b)} with
// α described as a *decay* factor (0.62, citing FutureRank); a positive
// exponent would grow with the year gap, so the decay sign is restored
// here.
//
// The merge-join walks both word lists in symbol order, so the shared
// keywords contribute in exactly the sorted order the map-based
// implementation iterated — float additions are not associative, and the
// sum must be bit-stable.
func (sc *similarityComputer) timeConsistency(pi, pj *profile) float64 {
	sum := 0.0
	i, j := 0, 0
	for i < len(pi.wordIDs) && j < len(pj.wordIDs) {
		switch sc.wordTab.Compare(pi.wordIDs[i], pj.wordIDs[j]) {
		case -1:
			i++
		case 1:
			j++
		default:
			w := pi.wordIDs[i]
			freq := sc.src.wordFreqID(w)
			if freq < 2 {
				freq = 2 // guard log(1)=0; co-occurrence implies freq ≥ 2
			}
			diff := minYearDiff32(
				pi.years[pi.wordOff[i]:pi.wordOff[i+1]],
				pj.years[pj.wordOff[j]:pj.wordOff[j+1]])
			sum += math.Exp(-sc.cfg.Alpha*float64(diff)) / math.Log(float64(freq))
			i++
			j++
		}
	}
	return sum / tau(pi, pj)
}

// minYearDiff32 returns min |a−b| over two sorted year lists in O(n+m).
func minYearDiff32(a, b []int32) int {
	i, j := 0, 0
	best := int32(math.MaxInt32)
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
		}
		if best == 0 {
			return 0
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return int(best)
}

// minYearDiff is the []int variant of minYearDiff32, kept for direct
// unit-testing of the two-pointer scan.
func minYearDiff(a, b []int) int {
	i, j := 0, 0
	best := math.MaxInt32
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
		}
		if best == 0 {
			return 0
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return best
}

// venueCountOf returns the multiplicity of venue id in p's venue multiset
// (0 when absent), by binary search over the symbol-sorted venue runs.
func (sc *similarityComputer) venueCountOf(p *profile, id intern.ID) int32 {
	lo, hi := 0, len(p.venueIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if sc.venueTab.Compare(p.venueIDs[mid], id) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.venueIDs) && p.venueIDs[lo] == id {
		return p.venueCounts[lo]
	}
	return 0
}

// representativeCommunity is γ⁵ (Eq. 8): how often each vertex publishes
// in the other's most frequent venue, over τ.
func (sc *similarityComputer) representativeCommunity(pi, pj *profile) float64 {
	s := 0.0
	if pi.topVenue != intern.None {
		s += float64(sc.venueCountOf(pj, pi.topVenue))
	}
	if pj.topVenue != intern.None {
		s += float64(sc.venueCountOf(pi, pj.topVenue))
	}
	return s / tau(pi, pj)
}

// communitySimilarity is γ⁶ (Eq. 9): Adamic/Adar over shared venues,
// merge-joined in symbol order (the deterministic sum order, as in
// timeConsistency).
func (sc *similarityComputer) communitySimilarity(pi, pj *profile) float64 {
	sum := 0.0
	i, j := 0, 0
	for i < len(pi.venueIDs) && j < len(pj.venueIDs) {
		switch sc.venueTab.Compare(pi.venueIDs[i], pj.venueIDs[j]) {
		case -1:
			i++
		case 1:
			j++
		default:
			freq := sc.src.venueFreqID(pi.venueIDs[i])
			if freq < 2 {
				freq = 2
			}
			sum += 1 / math.Log(float64(freq))
			i++
			j++
		}
	}
	return sum / tau(pi, pj)
}

// gammaFor projects the full similarity vector onto the enabled features,
// in feature-index order — the layout the emfit model is trained on.
func (c *Config) gammaFor(full [NumSimilarities]float64) []float64 {
	idx := c.featureIndexes()
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = full[i]
	}
	return out
}

// gammaInto is gammaFor into a caller-owned buffer (hot scoring paths
// reuse one buffer per block instead of allocating per pair). The buffer
// must have capacity for every enabled feature; the filled prefix is
// returned.
func (c *Config) gammaInto(full [NumSimilarities]float64, buf []float64) []float64 {
	idx := c.featureIndexes()
	buf = buf[:len(idx)]
	for k, i := range idx {
		buf[k] = full[i]
	}
	return buf
}
