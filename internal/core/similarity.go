package core

import (
	"math"
	"sort"

	"iuad/internal/bib"
	"iuad/internal/intern"
	"iuad/internal/sched"
	"iuad/internal/textvec"
	"iuad/internal/wlkernel"
)

// paperSource resolves per-paper columnar attributes and corpus-level
// frequencies, keyed by interned IDs. The batch pipeline reads the
// frozen corpus directly; the incremental pipeline additionally resolves
// newly streamed papers (whose symbols may be interned past the frozen
// table range).
type paperSource interface {
	keywordIDs(bib.PaperID) []intern.ID
	venueIDOf(bib.PaperID) intern.ID
	yearOf(bib.PaperID) int
	wordFreqID(intern.ID) int
	venueFreqID(intern.ID) int
}

// corpusSource adapts *bib.Corpus to paperSource.
type corpusSource struct{ c *bib.Corpus }

func (s corpusSource) keywordIDs(id bib.PaperID) []intern.ID { return s.c.KeywordIDs(id) }
func (s corpusSource) venueIDOf(id bib.PaperID) intern.ID    { return s.c.VenueIDOf(id) }
func (s corpusSource) yearOf(id bib.PaperID) int             { return s.c.Paper(id).Year }
func (s corpusSource) wordFreqID(id intern.ID) int           { return s.c.WordFrequencyID(id) }
func (s corpusSource) venueFreqID(id intern.ID) int          { return s.c.VenueFrequencyID(id) }

// profile caches the per-vertex aggregates the six similarity functions
// consume (§V-B). All keys are interned IDs; the former string-keyed
// maps hashed every venue/keyword on every profile build.
type profile struct {
	paperCount int
	// venues is the multiset H(v); venueList its key list sorted in
	// lexicographic *symbol* order (the deterministic iteration order for
	// float reductions — map order would make γ⁶ vary in the last ulp
	// between calls; for frozen symbols this is plain ascending-ID
	// order); topVenue its most frequent element (ties broken
	// lexicographically), or intern.None when the vertex has no venues.
	venues    map[intern.ID]int
	venueList []intern.ID
	topVenue  intern.ID
	// wordYears maps each title-keyword ID to the sorted years it was
	// used; wordList is its key list in lexicographic symbol order
	// (deterministic γ⁴ sum order).
	wordYears map[intern.ID][]int
	wordList  []intern.ID
	// centroid is W(v), the mean keyword vector (nil if no keyword is in
	// vocabulary).
	centroid []float64
	// wl is the WL subgraph feature map φ of the vertex's ego network;
	// degree is the vertex's collaboration degree. A neighborless vertex
	// has no structural identity beyond its own (shared) name, so γ¹
	// treats it as "no evidence" rather than "identical subgraph".
	wl     map[uint64]int
	degree int
	// triangles is the set of co-author name-ID pairs forming stable
	// triangles with this vertex (the clique list L(v) of Eq. 5,
	// restricted to triangles as in the paper).
	triangles map[namePair]struct{}
}

// similarityComputer evaluates γ¹..γ⁶ over a network, caching profiles.
type similarityComputer struct {
	net   *Network
	src   paperSource
	emb   *textvec.Embeddings
	cfg   *Config
	cache map[int]*profile

	// Symbol tables of the underlying corpus, shared by every layer.
	nameTab  *intern.Table
	venueTab *intern.Table
	wordTab  *intern.Table
	// wlLabels caches the WL initial label (FNV hash) per interned name,
	// computed once instead of per ego-subgraph vertex. Read-only after
	// construction, so concurrent profile builds may index it freely;
	// names interned later fall back to hashing on the fly.
	wlLabels []uint64
	// embRows maps each interned title token to its embedding-vocabulary
	// row (-1 = out of vocabulary). Same read-only contract as wlLabels.
	embRows []int32
}

// symbolCaches holds the per-symbol lookup tables (WL label hashes per
// name, embedding rows per token). BuildGCN builds them once and shares
// them through Config across every similarityComputer of the run
// (initial scoring, vertex-split fitting, refine rounds, the final
// incremental computer) — the tables' frozen prefixes never change, so
// one O(vocabulary) pass suffices instead of one per construction.
type symbolCaches struct {
	wlLabels []uint64
	embRows  []int32
}

func buildSymbolCaches(corpus *bib.Corpus, emb *textvec.Embeddings) *symbolCaches {
	names, words := corpus.NameTable(), corpus.WordTable()
	c := &symbolCaches{wlLabels: make([]uint64, names.Len())}
	for i := range c.wlLabels {
		c.wlLabels[i] = wlkernel.HashLabel(names.String(intern.ID(i)))
	}
	if emb != nil {
		c.embRows = make([]int32, words.Len())
		for i := range c.embRows {
			c.embRows[i] = emb.RowOf(words.String(intern.ID(i)))
		}
	}
	return c
}

func newSimilarityComputer(net *Network, src paperSource, emb *textvec.Embeddings, cfg *Config) *similarityComputer {
	sc := &similarityComputer{
		net:      net,
		src:      src,
		emb:      emb,
		cfg:      cfg,
		cache:    make(map[int]*profile),
		nameTab:  net.Corpus.NameTable(),
		venueTab: net.Corpus.VenueTable(),
		wordTab:  net.Corpus.WordTable(),
	}
	caches := cfg.symCache
	if caches == nil {
		caches = buildSymbolCaches(net.Corpus, emb)
	}
	sc.wlLabels = caches.wlLabels
	if emb != nil {
		sc.embRows = caches.embRows
	}
	return sc
}

// wlLabel returns the WL initial label of the interned name nid.
func (sc *similarityComputer) wlLabel(nid intern.ID) uint64 {
	if int(nid) < len(sc.wlLabels) {
		return sc.wlLabels[nid]
	}
	return wlkernel.HashLabel(sc.nameTab.String(nid))
}

// embRow resolves a token ID to its embedding row (-1 = OOV).
func (sc *similarityComputer) embRow(w intern.ID) int32 {
	if int(w) < len(sc.embRows) {
		return sc.embRows[w]
	}
	// A token interned after this computer was built cannot be in the
	// embedding vocabulary (embeddings are trained on the frozen corpus),
	// but resolve through the string path for correctness.
	return sc.emb.RowOf(sc.wordTab.String(w))
}

// invalidate drops the cached profile of vertex v (incremental updates).
func (sc *similarityComputer) invalidate(v int) { delete(sc.cache, v) }

func (sc *similarityComputer) profileOf(v int) *profile {
	if p, ok := sc.cache[v]; ok {
		return p
	}
	p := sc.buildVertexProfile(v)
	sc.cache[v] = p
	return p
}

// buildVertexProfile computes a vertex profile without touching the
// cache; it only reads the (immutable during stage 2) network, corpus
// and embeddings, so it is safe to call from concurrent workers.
func (sc *similarityComputer) buildVertexProfile(v int) *profile {
	p := sc.buildProfile(sc.net.Verts[v].Papers)
	p.wl = wlkernel.SubgraphFeatures(sc.net.G, v, sc.cfg.WLIterations,
		func(u int) uint64 { return sc.wlLabel(sc.net.Verts[u].NameID) })
	p.degree = sc.net.G.Degree(v)
	p.triangles = sc.triangleNamePairs(v)
	return p
}

// precomputeProfiles fills the cache for every id with the configured
// worker pool. Profile construction is read-only; workers write into a
// positional result slice, so the cache map is only touched by the
// caller's goroutine. After it returns, parallel sections may read the
// cached profiles for these ids without synchronization (see
// mustProfile).
func (sc *similarityComputer) precomputeProfiles(ids []int) {
	var todo []int
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if _, ok := sc.cache[id]; !ok {
			todo = append(todo, id)
		}
	}
	results := sched.Map(sc.cfg.workers(), len(todo), func(k int) *profile {
		return sc.buildVertexProfile(todo[k])
	})
	for k, id := range todo {
		sc.cache[id] = results[k]
	}
}

// mustProfile returns the profile of v without ever writing the cache,
// so it is safe to call from concurrent workers. Callers are expected to
// have warmed the cache with precomputeProfiles; a miss falls back to an
// uncached (re)build rather than a racy insert.
func (sc *similarityComputer) mustProfile(v int) *profile {
	if p, ok := sc.cache[v]; ok {
		return p
	}
	return sc.buildVertexProfile(v)
}

// buildProfile aggregates papers into venue/keyword/centroid state. It is
// shared by vertex profiles and the temporary profiles of incremental
// papers.
func (sc *similarityComputer) buildProfile(papers []bib.PaperID) *profile {
	p := &profile{
		paperCount: len(papers),
		venues:     make(map[intern.ID]int),
		wordYears:  make(map[intern.ID][]int),
	}
	var kwRows []int32 // in-vocabulary keyword rows, occurrence order
	for _, id := range papers {
		if vid := sc.src.venueIDOf(id); vid != intern.None {
			p.venues[vid]++
		}
		year := sc.src.yearOf(id)
		for _, w := range sc.src.keywordIDs(id) {
			p.wordYears[w] = append(p.wordYears[w], year)
			if sc.emb != nil {
				if r := sc.embRow(w); r >= 0 {
					kwRows = append(kwRows, r)
				}
			}
		}
	}
	p.wordList = make([]intern.ID, 0, len(p.wordYears))
	for w, years := range p.wordYears {
		sort.Ints(years)
		p.wordList = append(p.wordList, w)
	}
	sc.wordTab.Sort(p.wordList)
	p.venueList = make([]intern.ID, 0, len(p.venues))
	for v := range p.venues {
		p.venueList = append(p.venueList, v)
	}
	sc.venueTab.Sort(p.venueList)
	best, bestCount := intern.None, -1
	for v, c := range p.venues {
		if c > bestCount || (c == bestCount && sc.venueTab.Less(v, best)) {
			best, bestCount = v, c
		}
	}
	p.topVenue = best
	if sc.emb != nil {
		// Mean-centered centroids: raw SGNS centroids share a large
		// common direction and saturate cosine near 1 for all pairs.
		p.centroid = sc.emb.CenteredCentroidRows(kwRows)
	}
	return p
}

// triangleNamePairs lists the name-ID pairs {name(u), name(w)} of all
// stable triangles (v,u,w) in the network.
func (sc *similarityComputer) triangleNamePairs(v int) map[namePair]struct{} {
	out := make(map[namePair]struct{})
	for _, tri := range sc.net.G.TrianglesOf(v) {
		others := make([]intern.ID, 0, 2)
		for _, x := range []int{tri.A, tri.B, tri.C} {
			if x != v {
				others = append(others, sc.net.Verts[x].NameID)
			}
		}
		if len(others) != 2 {
			continue
		}
		out[makeNamePair(others[0], others[1])] = struct{}{}
	}
	return out
}

// tau is the productivity balance term of Eqs. 5, 7, 8, 9: the smaller
// paper count of the two vertices.
func tau(a, b *profile) float64 {
	t := a.paperCount
	if b.paperCount < t {
		t = b.paperCount
	}
	if t < 1 {
		t = 1
	}
	return float64(t)
}

// Similarities computes the full γ vector between two vertices. Disabled
// features (cfg.FeatureMask) are left at 0 and excluded by gammaFor.
func (sc *similarityComputer) Similarities(vi, vj int) [NumSimilarities]float64 {
	pi, pj := sc.profileOf(vi), sc.profileOf(vj)
	return sc.similaritiesOfProfiles(pi, pj)
}

func (sc *similarityComputer) similaritiesOfProfiles(pi, pj *profile) [NumSimilarities]float64 {
	var g [NumSimilarities]float64
	enabled := func(i int) bool { return sc.cfg.FeatureMask == nil || sc.cfg.FeatureMask[i] }

	if enabled(SimWLKernel) && pi.degree > 0 && pj.degree > 0 {
		g[SimWLKernel] = wlkernel.Normalized(pi.wl, pj.wl)
	}
	if enabled(SimCliques) {
		g[SimCliques] = cliqueCoincidence(pi, pj)
	}
	if enabled(SimInterests) {
		g[SimInterests] = textvec.Cosine(pi.centroid, pj.centroid)
	}
	if enabled(SimTimeConsist) {
		g[SimTimeConsist] = sc.timeConsistency(pi, pj)
	}
	if enabled(SimRepCommunity) {
		g[SimRepCommunity] = representativeCommunity(pi, pj)
	}
	if enabled(SimCommunity) {
		g[SimCommunity] = sc.communitySimilarity(pi, pj)
	}
	return g
}

// cliqueCoincidence is γ² (Eq. 5): shared co-author cliques over τ.
func cliqueCoincidence(pi, pj *profile) float64 {
	small, large := pi.triangles, pj.triangles
	if len(small) > len(large) {
		small, large = large, small
	}
	shared := 0
	for t := range small {
		if _, ok := large[t]; ok {
			shared++
		}
	}
	return float64(shared) / tau(pi, pj)
}

// timeConsistency is γ⁴ (Eq. 7): Σ_b exp(−α·minYearDiff(b)) / log F_B(b),
// over shared keywords, scaled by 1/τ. The paper writes e^{α·min(b)} with
// α described as a *decay* factor (0.62, citing FutureRank); a positive
// exponent would grow with the year gap, so the decay sign is restored
// here.
func (sc *similarityComputer) timeConsistency(pi, pj *profile) float64 {
	small, large := pi, pj
	if len(small.wordYears) > len(large.wordYears) {
		small, large = large, small
	}
	// Iterate the smaller side's *sorted* word list: float additions are
	// not associative, so the sum order must not depend on map order.
	sum := 0.0
	for _, w := range small.wordList {
		yearsA := small.wordYears[w]
		yearsB, ok := large.wordYears[w]
		if !ok {
			continue
		}
		freq := sc.src.wordFreqID(w)
		if freq < 2 {
			freq = 2 // guard log(1)=0; co-occurrence implies freq ≥ 2
		}
		diff := minYearDiff(yearsA, yearsB)
		sum += math.Exp(-sc.cfg.Alpha*float64(diff)) / math.Log(float64(freq))
	}
	return sum / tau(pi, pj)
}

// minYearDiff returns min |a−b| over the two sorted year lists in O(n+m).
func minYearDiff(a, b []int) int {
	i, j := 0, 0
	best := math.MaxInt32
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
		}
		if best == 0 {
			return 0
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return best
}

// representativeCommunity is γ⁵ (Eq. 8): how often each vertex publishes
// in the other's most frequent venue, over τ.
func representativeCommunity(pi, pj *profile) float64 {
	s := 0.0
	if pi.topVenue != intern.None {
		s += float64(pj.venues[pi.topVenue])
	}
	if pj.topVenue != intern.None {
		s += float64(pi.venues[pj.topVenue])
	}
	return s / tau(pi, pj)
}

// communitySimilarity is γ⁶ (Eq. 9): Adamic/Adar over shared venues.
func (sc *similarityComputer) communitySimilarity(pi, pj *profile) float64 {
	small, large := pi, pj
	if len(small.venues) > len(large.venues) {
		small, large = large, small
	}
	// Sorted-venue iteration for a deterministic sum order (as in
	// timeConsistency).
	sum := 0.0
	for _, h := range small.venueList {
		if _, ok := large.venues[h]; !ok {
			continue
		}
		freq := sc.src.venueFreqID(h)
		if freq < 2 {
			freq = 2
		}
		sum += 1 / math.Log(float64(freq))
	}
	return sum / tau(pi, pj)
}

// gammaFor projects the full similarity vector onto the enabled features,
// in feature-index order — the layout the emfit model is trained on.
func (c *Config) gammaFor(full [NumSimilarities]float64) []float64 {
	idx := c.enabledFeatures()
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = full[i]
	}
	return out
}
