package core

import (
	"math"
	"testing"

	"iuad/internal/bib"
)

// simFixture builds a corpus and SCN with known structure for direct
// similarity-function tests:
//
//	name "X" has three stable vertices:
//	  v0: KDD community — papers 0,1,2 with partners A,B (triangle X-A-B)
//	  v1: KDD community — papers 3,4 with partners A,B (same triangle names)
//	  v2: VLDB community — papers 5,6 with partners C,D
func simFixture(t *testing.T) (*bib.Corpus, *Network, *similarityComputer, []int) {
	t.Helper()
	c := bib.NewCorpus(0)
	add := func(title, venue string, year int, authors ...string) {
		c.MustAdd(bib.Paper{Title: title, Venue: venue, Year: year, Authors: authors})
	}
	// v0: X with A and B (stable triangle X-A-B).
	add("graph kernels alpha", "KDD", 2010, "X", "A", "B")
	add("graph kernels beta", "KDD", 2011, "X", "A", "B")
	add("graph mining gamma", "KDD", 2012, "X", "A")
	// v1: X' with A' and B' — same names A and B cannot be reused for a
	// second X vertex (they'd merge via slot conflicts); use E,F with
	// their own triangle.
	add("graph kernels delta", "KDD", 2013, "Y", "E", "F")
	add("graph kernels epsilon", "KDD", 2014, "Y", "E", "F")
	// v2: X with C and D at VLDB.
	add("query joins zeta", "VLDB", 2010, "X", "C", "D")
	add("query joins eta", "VLDB", 2011, "X", "C", "D")
	// Filler so venue/word frequencies are nontrivial.
	add("query storage theta", "VLDB", 2012, "M", "N")
	add("graph kernels iota", "KDD", 2013, "P", "Q")
	c.Freeze()
	cfg := DefaultConfig()
	scn, err := BuildSCN(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := newSimilarityComputer(scn, corpusSource{c}, nil, &cfg)
	xs := scn.VerticesOf("X")
	if len(xs) != 2 {
		t.Fatalf("fixture: X has %d vertices, want 2", len(xs))
	}
	return c, scn, sim, xs
}

func TestSimilaritiesKnownValues(t *testing.T) {
	_, scn, sim, xs := simFixture(t)
	// Identify which X vertex is the KDD one (3 papers).
	kdd, vldb := xs[0], xs[1]
	if len(scn.Verts[kdd].Papers) < len(scn.Verts[vldb].Papers) {
		kdd, vldb = vldb, kdd
	}
	g := sim.Similarities(kdd, vldb)

	// Different venues, disjoint keywords and partners: community and
	// interest features must be zero.
	if g[SimRepCommunity] != 0 {
		t.Fatalf("γ5=%v, want 0 (no shared venue)", g[SimRepCommunity])
	}
	if g[SimCommunity] != 0 {
		t.Fatalf("γ6=%v, want 0", g[SimCommunity])
	}
	if g[SimCliques] != 0 {
		t.Fatalf("γ2=%v, want 0 (different partner cliques)", g[SimCliques])
	}
	// Shared keyword "graph"? kdd titles use graph/kernels/mining; vldb
	// titles use query/joins — γ4 must be 0.
	if g[SimTimeConsist] != 0 {
		t.Fatalf("γ4=%v, want 0", g[SimTimeConsist])
	}
	// nil embeddings → γ3 = 0.
	if g[SimInterests] != 0 {
		t.Fatalf("γ3=%v, want 0 without embeddings", g[SimInterests])
	}
}

func TestSimilaritiesSameCommunityPair(t *testing.T) {
	c := bib.NewCorpus(0)
	add := func(title, venue string, year int, authors ...string) {
		c.MustAdd(bib.Paper{Title: title, Venue: venue, Year: year, Authors: authors})
	}
	// Two stable X vertices in the SAME venue with the same partner
	// names forming triangles.
	add("graph kernels one", "KDD", 2010, "X", "A", "B")
	add("graph kernels two", "KDD", 2011, "X", "A", "B")
	add("graph kernels three", "KDD", 2018, "X", "C", "D")
	add("graph kernels four", "KDD", 2019, "X", "C", "D")
	c.Freeze()
	cfg := DefaultConfig()
	scn, err := BuildSCN(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs := scn.VerticesOf("X")
	if len(xs) != 2 {
		t.Fatalf("X vertices=%d, want 2 (no stable triangle across phases)", len(xs))
	}
	sim := newSimilarityComputer(scn, corpusSource{c}, nil, &cfg)
	g := sim.Similarities(xs[0], xs[1])

	// Same top venue on both sides: γ5 = (2+2)/min(2,2) = 2.
	if g[SimRepCommunity] != 2 {
		t.Fatalf("γ5=%v, want 2", g[SimRepCommunity])
	}
	// Adamic/Adar over the shared venue: (1/log 4)/τ with F_KDD=4, τ=2.
	want := 1 / math.Log(4) / 2
	if math.Abs(g[SimCommunity]-want) > 1e-12 {
		t.Fatalf("γ6=%v, want %v", g[SimCommunity], want)
	}
	// Shared keywords "graph","kernels" (stop-worded title pieces
	// removed): both words appear in all 4 papers → F_B = 4; the year
	// gap is 2018-2011 = 7 → decay exp(-0.62·7).
	decay := math.Exp(-0.62 * 7)
	wantT := 2 * decay / math.Log(4) / 2
	if math.Abs(g[SimTimeConsist]-wantT) > 1e-9 {
		t.Fatalf("γ4=%v, want %v", g[SimTimeConsist], wantT)
	}
	// WL: both vertices have neighbors, structure is the mirrored star
	// triangle with different partner names — kernel in (0,1).
	if g[SimWLKernel] <= 0 || g[SimWLKernel] >= 1 {
		t.Fatalf("γ1=%v, want in (0,1)", g[SimWLKernel])
	}
}

func TestTauUsesSmallerPaperCount(t *testing.T) {
	a := &profile{paperCount: 10}
	b := &profile{paperCount: 3}
	if got := tau(a, b); got != 3 {
		t.Fatalf("tau=%v, want 3", got)
	}
	if got := tau(&profile{}, b); got != 1 {
		t.Fatalf("tau floor=%v, want 1", got)
	}
}

func TestMinYearDiff(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{2000, 2005}, []int{2007}, 2},
		{[]int{2000}, []int{2000}, 0},
		{[]int{1990, 2000}, []int{1994, 1996}, 4},
		{[]int{2010}, []int{2000, 2009, 2020}, 1},
	}
	for _, tc := range cases {
		if got := minYearDiff(tc.a, tc.b); got != tc.want {
			t.Fatalf("minYearDiff(%v,%v)=%d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestProfileInvalidate(t *testing.T) {
	_, _, sim, xs := simFixture(t)
	p1 := sim.profileOf(xs[0])
	if p2 := sim.profileOf(xs[0]); p1 != p2 {
		t.Fatal("profile not cached")
	}
	sim.invalidate(xs[0])
	if p3 := sim.profileOf(xs[0]); p1 == p3 {
		t.Fatal("invalidate did not drop the cache")
	}
}

func TestGammaForProjection(t *testing.T) {
	cfg := DefaultConfig()
	full := [NumSimilarities]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	all := cfg.gammaFor(full)
	if len(all) != NumSimilarities || all[5] != 0.6 {
		t.Fatalf("unmasked projection=%v", all)
	}
	cfg.FeatureMask = []bool{false, true, false, false, false, true}
	masked := cfg.gammaFor(full)
	if len(masked) != 2 || masked[0] != 0.2 || masked[1] != 0.6 {
		t.Fatalf("masked projection=%v", masked)
	}
}
