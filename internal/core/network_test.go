package core

import (
	"reflect"
	"testing"

	"iuad/internal/bib"
)

func miniCorpus(t *testing.T) *bib.Corpus {
	t.Helper()
	c := bib.NewCorpus(0)
	c.MustAdd(bib.Paper{Title: "t0", Authors: []string{"A", "B"}})
	c.MustAdd(bib.Paper{Title: "t1", Authors: []string{"A", "C"}})
	c.MustAdd(bib.Paper{Title: "t2", Authors: []string{"B", "C"}})
	c.Freeze()
	return c
}

func TestNetworkAddVertexAndEdge(t *testing.T) {
	n := newNetwork(miniCorpus(t))
	a := n.addVertex("A", false)
	b := n.addVertex("B", true)
	if a != 0 || b != 1 {
		t.Fatalf("vertex ids %d,%d", a, b)
	}
	n.addEdge(a, b, []bib.PaperID{0})
	if n.EdgeCount() != 1 || n.VertexCount() != 2 {
		t.Fatalf("counts: %d vertices %d edges", n.VertexCount(), n.EdgeCount())
	}
	// Paper sets fold into both endpoints, sorted unique.
	if !reflect.DeepEqual(n.Verts[a].Papers, []bib.PaperID{0}) {
		t.Fatalf("a papers=%v", n.Verts[a].Papers)
	}
	// Adding the same edge with another paper unions the sets.
	n.addEdge(a, b, []bib.PaperID{2, 0})
	if !reflect.DeepEqual(n.EdgePapers[edgeKey(b, a)], []bib.PaperID{0, 2}) {
		t.Fatalf("edge papers=%v", n.EdgePapers[edgeKey(a, b)])
	}
	if got := n.VerticesOf("A"); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("VerticesOf=%v", got)
	}
	if n.ClusterOfSlot(Slot{Paper: 0, Index: 0}) != -1 {
		t.Fatal("unassigned slot should be -1")
	}
}

func TestNetworkSelfEdgePanics(t *testing.T) {
	n := newNetwork(miniCorpus(t))
	v := n.addVertex("A", false)
	defer func() {
		if recover() == nil {
			t.Fatal("self-edge did not panic")
		}
	}()
	n.addEdge(v, v, nil)
}

func TestUnionPapers(t *testing.T) {
	cases := []struct {
		a, b, want []bib.PaperID
	}{
		{nil, nil, nil},
		{[]bib.PaperID{1, 3}, nil, []bib.PaperID{1, 3}},
		{nil, []bib.PaperID{2}, []bib.PaperID{2}},
		{[]bib.PaperID{1, 3}, []bib.PaperID{2, 3, 5}, []bib.PaperID{1, 2, 3, 5}},
		{[]bib.PaperID{1}, []bib.PaperID{1}, []bib.PaperID{1}},
	}
	for _, tc := range cases {
		if got := unionPapers(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("unionPapers(%v,%v)=%v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestContractMergesNameGroups(t *testing.T) {
	corpus := miniCorpus(t)
	n := newNetwork(corpus)
	a1 := n.addVertex("A", false)
	a2 := n.addVertex("A", true)
	b := n.addVertex("B", false)
	n.addEdge(a1, b, []bib.PaperID{0})
	n.addEdge(a2, b, []bib.PaperID{1})
	n.SlotVertex[Slot{Paper: 0, Index: 0}] = a1
	n.SlotVertex[Slot{Paper: 1, Index: 0}] = a2
	n.SlotVertex[Slot{Paper: 0, Index: 1}] = b

	uf := newUnionFind(3)
	uf.union(a1, a2)
	out, _ := n.contract(uf.find)
	if out.VertexCount() != 2 {
		t.Fatalf("contracted vertices=%d, want 2", out.VertexCount())
	}
	merged := out.VerticesOf("A")
	if len(merged) != 1 {
		t.Fatalf("A vertices=%v", merged)
	}
	mv := &out.Verts[merged[0]]
	if !reflect.DeepEqual(mv.Papers, []bib.PaperID{0, 1}) {
		t.Fatalf("merged papers=%v", mv.Papers)
	}
	// A vertex group with one non-isolated member is non-isolated.
	if mv.Isolated {
		t.Fatal("merged vertex marked isolated")
	}
	// Both slots of A now point at the merged vertex.
	if out.SlotVertex[Slot{Paper: 0, Index: 0}] != out.SlotVertex[Slot{Paper: 1, Index: 0}] {
		t.Fatal("slots not remapped to one vertex")
	}
	// The two A-B edges collapse into one carrying both papers.
	if out.EdgeCount() != 1 {
		t.Fatalf("contracted edges=%d, want 1", out.EdgeCount())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractDropsInternalEdges(t *testing.T) {
	corpus := miniCorpus(t)
	n := newNetwork(corpus)
	a1 := n.addVertex("A", false)
	a2 := n.addVertex("A", false)
	n.addEdge(a1, a2, []bib.PaperID{0}) // edge inside the future group
	uf := newUnionFind(2)
	uf.union(a1, a2)
	out, _ := n.contract(uf.find)
	if out.EdgeCount() != 0 {
		t.Fatalf("internal edge survived contraction: %d", out.EdgeCount())
	}
	if got := out.Verts[0].Papers; !reflect.DeepEqual(got, []bib.PaperID{0}) {
		t.Fatalf("papers lost in contraction: %v", got)
	}
}

func TestSlotsOfPaper(t *testing.T) {
	p := &bib.Paper{ID: 7, Authors: []string{"A", "B", "C"}}
	slots := SlotsOfPaper(p)
	want := []Slot{{7, 0}, {7, 1}, {7, 2}}
	if !reflect.DeepEqual(slots, want) {
		t.Fatalf("slots=%v", slots)
	}
}

func TestUnionFindGrowAndDeterminism(t *testing.T) {
	uf := newUnionFind(2)
	uf.grow(5)
	uf.union(4, 1)
	// union by smaller root: root of {1,4} is 1.
	if uf.find(4) != 1 {
		t.Fatalf("root=%d, want 1 (smaller id wins)", uf.find(4))
	}
	uf.union(0, 1)
	if uf.find(4) != 0 {
		t.Fatalf("root=%d, want 0", uf.find(4))
	}
}

func TestMergeScoredStrategies(t *testing.T) {
	scored := []ScoredPair{
		{A: 0, B: 1, Score: 5},
		{A: 1, B: 2, Score: 4},
		{A: 2, B: 3, Score: 3},
		{A: 3, B: 4, Score: -1},
	}
	// All-pairs: transitive closure of everything ≥ 0 → {0,1,2,3}, {4}.
	ufAll := newUnionFind(5)
	mergeScored(ufAll, scored, 0, MergeAllPairs)
	if ufAll.find(0) != ufAll.find(3) {
		t.Fatal("all-pairs did not chain 0..3")
	}
	if ufAll.find(4) == ufAll.find(0) {
		t.Fatal("all-pairs merged below-threshold pair")
	}
	// Best-match: 0 proposes (0,1); 1's best is (0,1); 2's best is (1,2);
	// 3's best is (2,3) → the proposals still connect 0..3 via shared
	// members, but nothing below δ merges.
	ufBest := newUnionFind(5)
	mergeScored(ufBest, scored, 0, MergeBestMatch)
	if ufBest.find(4) == ufBest.find(3) {
		t.Fatal("best-match merged below-threshold pair")
	}
	// Raising δ to 4.5 keeps only (0,1).
	ufHigh := newUnionFind(5)
	mergeScored(ufHigh, scored, 4.5, MergeBestMatch)
	if ufHigh.find(0) != ufHigh.find(1) {
		t.Fatal("best-match dropped the top pair")
	}
	if ufHigh.find(1) == ufHigh.find(2) {
		t.Fatal("best-match merged a pair below δ")
	}
}
