package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"iuad/internal/bib"
	"iuad/internal/emfit"
	"iuad/internal/intern"
	"iuad/internal/sched"
	"iuad/internal/textvec"
)

// Pipeline is the result of running IUAD on a corpus, and the handle for
// incremental disambiguation of newly published papers.
type Pipeline struct {
	Corpus *bib.Corpus
	Cfg    Config
	// SCN is the stage-1 stable collaboration network.
	SCN *Network
	// GCN is the stage-2 global collaboration network (merged vertices +
	// recovered collaborative relations).
	GCN *Network
	// Model is the fitted generative model used for merging and for
	// incremental decisions.
	Model *emfit.Model
	// Emb holds the title-keyword vectors behind γ³.
	Emb *textvec.Embeddings
	// TrainingPairs is how many candidate pairs the EM fit consumed
	// (diagnostics for the §V-F sampling strategy).
	TrainingPairs int
	// CalibratedDelta is the self-calibrated decision threshold (the
	// (1−FalseMatchRate) quantile of known-different anchor scores);
	// Config.Delta offsets it.
	CalibratedDelta float64

	extra []bib.Paper // incrementally added papers
	// Columnar views of the incremental stream, aligned with extra and
	// interned into the corpus tables (the stream may introduce symbols
	// the frozen corpus never saw).
	extraKw    [][]intern.ID
	extraVenue []intern.ID
	extraYear  []int

	sim          *similarityComputer
	scored       []ScoredPair
	forcedMerges [][2]int // curator same-author labels (SCN vertex pairs)
	// inval is the reusable multi-source BFS scratch of incremental
	// profile invalidation (never serialized; derived state only).
	inval invalScratch
	// scorer is the compiled decision-scoring form of Model (derived
	// state, never serialized); scorerModel records which model it was
	// compiled from so a snapshot load or model swap recompiles lazily.
	scorer      *emfit.Scorer
	scorerModel *emfit.Model
}

// modelScorer returns the compiled scorer of the current Model,
// compiling on first use and again whenever Model has been replaced
// (e.g. by LoadPipeline). Callers obtain it on the writer goroutine
// before fanning scoring out; the Scorer itself is immutable and safe
// to share across workers.
func (pl *Pipeline) modelScorer() *emfit.Scorer {
	if pl.Model == nil {
		return nil
	}
	if pl.scorer == nil || pl.scorerModel != pl.Model {
		pl.scorer = pl.Model.Scorer()
		pl.scorerModel = pl.Model
	}
	return pl.scorer
}

// ScoredPair is a candidate same-name SCN vertex pair with its fitted
// log-odds matching score (Eq. 11). Retained so threshold sweeps (Fig. 6)
// can re-merge without recomputing similarities or refitting EM.
type ScoredPair struct {
	A, B  int
	Score float64
}

// Run executes the full two-stage IUAD algorithm (Alg. 1).
func Run(corpus *bib.Corpus, cfg Config) (*Pipeline, error) {
	scn, err := BuildSCN(corpus, cfg)
	if err != nil {
		return nil, err
	}
	emb := TrainEmbeddings(corpus, cfg.Embedding)
	return BuildGCN(corpus, scn, emb, cfg)
}

// TrainEmbeddings fits SGNS keyword vectors on the corpus titles.
func TrainEmbeddings(corpus *bib.Corpus, cfg textvec.Config) *textvec.Embeddings {
	sentences := make([][]string, 0, corpus.Len())
	for i := 0; i < corpus.Len(); i++ {
		kw := bib.Keywords(corpus.Paper(bib.PaperID(i)).Title)
		if len(kw) >= 2 {
			sentences = append(sentences, kw)
		}
	}
	return textvec.Train(sentences, cfg)
}

// candidatePair is one same-name vertex pair r_j with its similarity
// vector γ_j.
type candidatePair struct {
	a, b  int
	gamma []float64
}

// BuildGCN runs stage 2 (§V) on a previously built SCN. It is exposed
// separately from Run so the Table IV stage analysis and the Fig. 6
// single-similarity sweeps can reuse a stage-1 network.
func BuildGCN(corpus *bib.Corpus, scn *Network, emb *textvec.Embeddings, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.symCache = buildSymbolCaches(corpus, emb)
	cfg.featIdx = cfg.enabledFeatures()
	pl := &Pipeline{Corpus: corpus, Cfg: cfg, SCN: scn, Emb: emb}
	if len(scn.Verts) == 0 {
		// Empty corpus: there is nothing to merge and nothing to fit a
		// model on. Return a working pipeline with no model; AddPaper
		// then gives every slot a fresh vertex (no merge evidence).
		pl.GCN, _ = scn.contract(newUnionFind(0).find)
		pl.sim = newSimilarityComputer(pl.GCN, pl, pl.Emb, &pl.Cfg)
		return pl, nil
	}
	sim := newSimilarityComputer(scn, corpusSource{corpus}, emb, &cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	lap := cfg.stageTimer()

	pairs := collectCandidatePairs(scn, sim, &cfg, rng)
	lap("score-initial")
	labeled := resolveLabels(scn, &cfg)

	model, calibration, err := fitModel(pairs, labeled, sim, &cfg, rng, lap)
	if err != nil {
		return nil, err
	}
	pl.Model = model
	pl.CalibratedDelta = calibration
	pl.TrainingPairs = len(pairs)

	// Decision making (Alg. 1 lines 11-15): merge pairs with score ≥ δ,
	// where δ = calibrated operating point + configured offset.
	pl.scored = scorePairs(pl.modelScorer(), pairs, cfg.workers())
	// Curator same-author labels are decisions, not just evidence: they
	// merge unconditionally (the semi-supervised extension).
	pl.forcedMerges = pl.forcedMerges[:0]
	for _, lp := range labeled {
		if lp.same {
			pl.forcedMerges = append(pl.forcedMerges, [2]int{lp.a, lp.b})
		}
	}
	pl.GCN = pl.mergeAt(calibration + cfg.Delta)
	lap("decision")
	if cfg.RoundHook != nil {
		cfg.RoundHook(0, pl.GCN)
	}

	// Iterative refinement (MergeRounds > 1): rescore the contracted
	// network with the same model; merged vertices carry richer profiles
	// and attach further fragments at the unchanged threshold.
	// Each refinement round is stricter: merged vertices carry larger
	// profiles whose similarity scores inflate, so holding the first-
	// round threshold would compound early mistakes.
	//
	// The refineState threads profiles and pair scores through the
	// rounds: one merge round only perturbs the merged clusters and
	// their h-hop neighborhoods, so everything else is carried across
	// the contraction instead of being recomputed.
	st := &refineState{}
	for round := 1; round < cfg.MergeRounds; round++ {
		before := pl.GCN.VertexCount()
		pl.GCN = pl.refineOnce(st, pl.GCN, calibration+cfg.Delta+refinePenalty*float64(round), rng)
		lap(fmt.Sprintf("refine-round-%d", round))
		if cfg.RoundHook != nil {
			cfg.RoundHook(round, pl.GCN)
		}
		if pl.GCN.VertexCount() == before {
			break
		}
	}
	pl.sim = newSimilarityComputer(pl.GCN, pl, pl.Emb, &pl.Cfg)
	if st.sim != nil && st.sim.net == pl.GCN {
		// The refinement carry guarantees every cached profile equals a
		// fresh rebuild on the final GCN (profile content only depends on
		// corpus papers, resolved identically by both paper sources), so
		// hand the warm cache to the serving computer instead of
		// rebuilding those profiles on the first AddPaper calls.
		pl.sim.cache = st.sim.cache
	}
	return pl, nil
}

// refinePenalty is the per-round threshold escalation of the iterative
// merge refinement.
const refinePenalty = 2.0

// refineState carries stage-2 scoring state across refinement rounds:
// the similarity computer (with its profile cache) bound to the current
// network, and the retained log-odds scores of pairs whose endpoints a
// merge round left untouched. Invariant: a cached profile and a retained
// score are bit-identical to what a from-scratch rebuild on the current
// network would produce — contraction only perturbs merged clusters and
// their h-hop neighborhoods (h = the WL/triangle radius), and carry()
// drops exactly that set each round.
type refineState struct {
	sim      *similarityComputer
	retained map[[2]int]float64
}

// refineOnce rescores same-name pairs of net and applies one more merge
// round at the given threshold, returning the contracted network. Pairs
// with a retained score are not recomputed; pairs with a rebuilt
// endpoint (and pairs never scored, e.g. fresh cap samples) are.
func (pl *Pipeline) refineOnce(st *refineState, net *Network, threshold float64, rng *rand.Rand) *Network {
	if st.sim == nil {
		// First refinement round: the GCN's recovered relations changed
		// every neighborhood relative to the SCN the initial scoring ran
		// on, so nothing is reusable yet — start a fresh computer here
		// and carry it forward from this round on.
		st.sim = newSimilarityComputer(net, corpusSource{pl.Corpus}, pl.Emb, &pl.Cfg)
	}
	blocks := candidateBlocks(net, &pl.Cfg, rng)
	scored := st.scoreBlocks(&pl.Cfg, pl.modelScorer(), blocks)
	uf := newUnionFind(len(net.Verts))
	mergeScored(uf, scored, threshold, pl.Cfg.Merge)
	out, remap := net.contract(uf.find)
	// No recoverRelations here: net already has every co-author relation
	// recovered (mergeAt ran it on the first GCN, and contraction maps
	// slots and edges consistently), so re-running it on the contracted
	// network is an exact structural no-op — every edge it would add
	// exists, every paper it would union is present. Skipping it saves a
	// full slot sweep of redundant sorted-slice unions per round.
	st.carry(out, remap, scored, pl.Cfg.WLIterations)
	return out
}

// scoreBlocks computes the log-odds score of every candidate pair,
// reusing retained scores where valid. Fresh pairs warm the profile
// cache first (worker pool), then blocks are batch-scored in parallel
// through the compiled scorer and reduced positionally — the scored
// list is identical, in value and order, to scoring every pair from
// scratch.
func (st *refineState) scoreBlocks(cfg *Config, scorer *emfit.Scorer, blocks [][][2]int) []ScoredPair {
	sim := st.sim
	var involved []int
	total := 0
	for _, blk := range blocks {
		total += len(blk)
		for _, pr := range blk {
			if _, ok := st.retained[pr]; !ok {
				involved = append(involved, pr[0], pr[1])
			}
		}
	}
	sim.precomputeProfiles(involved)
	scoredBlocks := sched.Map(cfg.workers(), len(blocks), func(k int) []ScoredPair {
		pairs := blocks[k]
		out := make([]ScoredPair, len(pairs))
		var gbuf [NumSimilarities]float64 // per-block gamma scratch
		for i, pr := range pairs {
			if s, ok := st.retained[pr]; ok {
				out[i] = ScoredPair{A: pr[0], B: pr[1], Score: s}
				continue
			}
			full := sim.similaritiesOfProfiles(sim.mustProfile(pr[0]), sim.mustProfile(pr[1]))
			out[i] = ScoredPair{A: pr[0], B: pr[1], Score: scorer.Score(cfg.gammaInto(full, gbuf[:]))}
		}
		return out
	})
	out := make([]ScoredPair, 0, total)
	for _, blk := range scoredBlocks {
		out = append(out, blk...)
	}
	return out
}

// carry advances the refine state across a contraction: profiles of
// vertices outside the invalidation radius are transplanted onto their
// new IDs, and this round's pair scores are retained for every pair
// whose endpoints both stayed clean. The invalidation radius is the one
// AddPaper already uses for its cache: merged clusters plus their h-hop
// neighborhoods (h = WLIterations, min 1 — triangles reach 1 hop even
// when WL depth is 0).
func (st *refineState) carry(out *Network, remap []int, scored []ScoredPair, wlIters int) {
	radius := wlIters
	if radius < 1 {
		radius = 1
	}
	preimages := make([]int32, len(out.Verts))
	for _, nv := range remap {
		preimages[nv]++
	}
	dirty := make([]bool, len(out.Verts))
	var frontier []int
	for v, c := range preimages {
		if c > 1 {
			dirty[v] = true
			frontier = append(frontier, v)
		}
	}
	for d := 0; d < radius; d++ {
		var next []int
		for _, v := range frontier {
			out.G.VisitNeighbors(v, func(u int) {
				if !dirty[u] {
					dirty[u] = true
					next = append(next, u)
				}
			})
		}
		frontier = next
	}
	cache := make(map[int]*profile, len(st.sim.cache))
	for old, p := range st.sim.cache {
		if nv := remap[old]; !dirty[nv] {
			cache[nv] = p
		}
	}
	st.sim = st.sim.rebind(out, cache)
	retained := make(map[[2]int]float64, len(scored))
	for _, sp := range scored {
		a, b := remap[sp.A], remap[sp.B]
		if a == b || dirty[a] || dirty[b] {
			continue
		}
		if a > b {
			a, b = b, a
		}
		retained[[2]int{a, b}] = sp.Score
	}
	st.retained = retained
}

// ScoredPairs exposes the candidate pairs with their matching scores.
func (pl *Pipeline) ScoredPairs() []ScoredPair { return pl.scored }

// RemergeAt rebuilds a GCN from the retained pair scores with a different
// decision-threshold offset (relative to the calibrated operating point),
// without retraining — used by the Fig. 6 threshold sweeps. The
// pipeline's own GCN is left untouched.
func (pl *Pipeline) RemergeAt(deltaOffset float64) *Network {
	return pl.mergeAt(pl.CalibratedDelta + deltaOffset)
}

func (pl *Pipeline) mergeAt(delta float64) *Network {
	uf := newUnionFind(len(pl.SCN.Verts))
	for _, fm := range pl.forcedMerges {
		uf.union(fm[0], fm[1])
	}
	mergeScored(uf, pl.scored, delta, pl.Cfg.Merge)
	gcn, _ := pl.SCN.contract(uf.find)
	recoverRelations(gcn)
	return gcn
}

// labeledVertexPair is a curator label resolved onto SCN vertices.
type labeledVertexPair struct {
	a, b int
	same bool
}

// resolveLabels maps curator paper-pair labels onto the SCN vertices
// carrying the named slots. Labels whose papers/name don't resolve, or
// whose slots already share a vertex, are dropped.
func resolveLabels(scn *Network, cfg *Config) []labeledVertexPair {
	var out []labeledVertexPair
	for _, lp := range cfg.Labels {
		va := vertexOfNamedSlot(scn, bib.PaperID(lp.A), lp.Name)
		vb := vertexOfNamedSlot(scn, bib.PaperID(lp.B), lp.Name)
		if va < 0 || vb < 0 || va == vb {
			continue
		}
		out = append(out, labeledVertexPair{a: va, b: vb, same: lp.Same})
	}
	return out
}

func vertexOfNamedSlot(scn *Network, pid bib.PaperID, name string) int {
	if int(pid) >= scn.Corpus.Len() {
		return -1
	}
	idx := scn.Corpus.Paper(pid).AuthorIndex(name)
	if idx < 0 {
		return -1
	}
	return scn.ClusterOfSlot(Slot{Paper: pid, Index: idx})
}

// mergeScored folds merge decisions into uf according to the strategy.
func mergeScored(uf *unionFind, scored []ScoredPair, delta float64, strategy MergeStrategy) {
	switch strategy {
	case MergeAllPairs:
		for _, sp := range scored {
			if sp.Score >= delta {
				uf.union(sp.A, sp.B)
			}
		}
	default: // MergeBestMatch
		// Each vertex proposes to its best-scoring partner; proposals at
		// or above δ merge. Chains stay short because every vertex emits
		// at most one proposal. best is indexed by vertex ID (scored
		// pairs only reference vertices of the union-find's network) —
		// no map allocation or hash traffic per round, and the fold is
		// structurally order-independent: a slot is only overwritten by
		// a strictly better proposal under the deterministic tie-break.
		best := make([]ScoredPair, uf.len())
		has := make([]bool, uf.len())
		better := func(cur ScoredPair, have ScoredPair, ok bool) bool {
			if !ok {
				return true
			}
			if cur.Score != have.Score {
				return cur.Score > have.Score
			}
			// Deterministic tie-break on partner IDs.
			return cur.A+cur.B < have.A+have.B
		}
		for _, sp := range scored {
			if sp.Score < delta {
				continue
			}
			if better(sp, best[sp.A], has[sp.A]) {
				best[sp.A], has[sp.A] = sp, true
			}
			if better(sp, best[sp.B], has[sp.B]) {
				best[sp.B], has[sp.B] = sp, true
			}
		}
		// Union order does not affect the final partition (components
		// are order-independent, and union roots at the smallest member),
		// but ascending order keeps the fold obviously deterministic.
		for v := range best {
			if has[v] {
				uf.union(best[v].A, best[v].B)
			}
		}
	}
}

// candidateBlocks enumerates the same-name vertex pair blocks (R of
// §V-A) in lexicographic name order (== ascending ID for frozen names —
// the stable reduction order of the former string-keyed implementation),
// applying the per-name cap. The rng draws of the cap sampling happen on
// the caller's goroutine in this fixed block order; every scoring path
// (initial scoring and each refinement round) shares this enumeration,
// so the rng stream and the pair order are independent of how many
// scores are later reused versus recomputed.
func candidateBlocks(scn *Network, cfg *Config, rng *rand.Rand) [][][2]int {
	nameIDs := make([]intern.ID, 0, len(scn.byName))
	for nid, ids := range scn.byName {
		if len(ids) > 1 {
			nameIDs = append(nameIDs, intern.ID(nid))
		}
	}
	scn.names.Sort(nameIDs)
	blocks := make([][][2]int, 0, len(nameIDs))
	for _, nid := range nameIDs {
		ids := scn.byName[nid]
		namePairs := make([][2]int, 0, len(ids)*(len(ids)-1)/2)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				namePairs = append(namePairs, [2]int{ids[i], ids[j]})
			}
		}
		if cfg.MaxPairsPerName > 0 && len(namePairs) > cfg.MaxPairsPerName {
			rng.Shuffle(len(namePairs), func(i, j int) {
				namePairs[i], namePairs[j] = namePairs[j], namePairs[i]
			})
			namePairs = namePairs[:cfg.MaxPairsPerName]
		}
		blocks = append(blocks, namePairs)
	}
	return blocks
}

// collectCandidatePairs enumerates same-name vertex pairs and computes
// their similarity vectors.
//
// Name blocks are the unit of parallelism: pair enumeration (which
// consumes the rng for the per-name cap) stays on the caller's
// goroutine in sorted-name order, then the similarity vectors of each
// block are computed by the worker pool and merged back in the same
// stable name order — identical output for every worker count.
func collectCandidatePairs(scn *Network, sim *similarityComputer, cfg *Config, rng *rand.Rand) []candidatePair {
	blocks := candidateBlocks(scn, cfg, rng)
	// Profile construction dominates stage-2 cost and is independent per
	// vertex; warm the cache with the worker pool so the parallel pair
	// loop below only reads it.
	var involved []int
	total := 0
	for _, blk := range blocks {
		total += len(blk)
		for _, pr := range blk {
			involved = append(involved, pr[0], pr[1])
		}
	}
	sim.precomputeProfiles(involved)
	scored := sched.Map(cfg.workers(), len(blocks), func(k int) []candidatePair {
		pairs := blocks[k]
		out := make([]candidatePair, len(pairs))
		for i, pr := range pairs {
			full := sim.similaritiesOfProfiles(sim.mustProfile(pr[0]), sim.mustProfile(pr[1]))
			out[i] = candidatePair{a: pr[0], b: pr[1], gamma: cfg.gammaFor(full)}
		}
		return out
	})
	out := make([]candidatePair, 0, total)
	for _, blk := range scored {
		out = append(out, blk...)
	}
	return out
}

// scorePairs computes the log-odds matching score of every candidate
// pair with the worker pool, through the compiled scorer; results are
// positional, so the scored list is independent of the worker count.
func scorePairs(scorer *emfit.Scorer, pairs []candidatePair, workers int) []ScoredPair {
	return sched.Map(workers, len(pairs), func(i int) ScoredPair {
		cp := pairs[i]
		return ScoredPair{A: cp.a, B: cp.b, Score: scorer.Score(cp.gamma)}
	})
}

// fitModel trains the generative model on a SampleRate fraction of the
// candidate pairs, balanced with synthetic matched pairs from the
// vertex-splitting strategy (§V-F2), known-different cross-name anchors,
// and any curator labels (semi-supervised extension). It also calibrates
// the decision threshold: the (1−FalseMatchRate) quantile of the uniform
// anchors' fitted scores.
func fitModel(pairs []candidatePair, labeled []labeledVertexPair, sim *similarityComputer, cfg *Config, rng *rand.Rand, lap func(string)) (*emfit.Model, float64, error) {
	specs := cfg.featureSpecs()
	// The training set is assembled straight into the feature-major
	// matrix the columnar EM engine consumes: sampled candidate rows are
	// copied from their (already materialized) γ vectors, while the
	// synthetic anchor rows below are written in place — no per-row
	// []float64 allocations on the fit-prep path.
	mx := emfit.NewMatrix(len(specs), len(pairs)/8)
	var init []float64
	var clamped []bool
	calibBase, calibCount := 0, 0 // row range of the calibration (random-negative) anchors

	// 10% pair sampling (§VI-A3). On tiny corpora the sample can come up
	// empty; fall back to every candidate pair rather than failing.
	for _, cp := range pairs {
		if rng.Float64() <= cfg.SampleRate {
			mx.AppendRow(cp.gamma)
			init = append(init, 0.5)
			clamped = append(clamped, false)
		}
	}
	if mx.Rows() == 0 {
		for _, cp := range pairs {
			mx.AppendRow(cp.gamma)
			init = append(init, 0.5)
			clamped = append(clamped, false)
		}
	}
	// Vertex splitting (§V-F2): prolific vertices are split in two at
	// random *inside a cloned network*, so the two halves — the same
	// author by construction — exhibit realistic structural similarity
	// (partial neighborhoods, partial venue/keyword profiles). Their
	// similarity vectors anchor the matched component of the mixture.
	//
	// All rng draws (splitting, anchor sampling) happen on this
	// goroutine in a fixed order; only the similarity vectors — which
	// never touch the rng — are computed by the worker pool and reduced
	// positionally, keeping the training matrix bit-identical for every
	// worker count.
	workers := cfg.workers()
	synth := 0
	if cfg.SplitMinPapers > 0 {
		splitNet, matched := splitNetwork(sim.net, cfg, rng)
		splitSim := newSimilarityComputer(splitNet, sim.src, sim.emb, cfg)
		splitInvolved := make([]int, 0, 2*len(matched))
		for _, pr := range matched {
			splitInvolved = append(splitInvolved, pr[0], pr[1])
		}
		splitSim.precomputeProfiles(splitInvolved)
		matchedBase := mx.Grow(len(matched))
		sched.ForEach(workers, len(matched), func(k int) {
			pr := matched[k]
			full := splitSim.similaritiesOfProfiles(
				splitSim.mustProfile(pr[0]), splitSim.mustProfile(pr[1]))
			var gbuf [NumSimilarities]float64
			mx.SetRow(matchedBase+k, cfg.gammaInto(full, gbuf[:]))
		})
		for range matched {
			init = append(init, 0.95)
			clamped = append(clamped, true)
			synth++
		}
		// Dual anchor: cross-name vertex pairs are known-different
		// authors; they pin the unmatched component so EM cannot drift
		// into an "everything matches" optimum. Half are uniform random
		// pairs, half are *hard negatives* — cross-name pairs sharing a
		// venue — which teach the model that venue overlap also occurs
		// between different authors of one research community.
		// (Implementation note in DESIGN.md; the paper only describes
		// the matched-side split.)
		verts := sim.net.Verts
		var uniformPairs [][2]int
		for k := 0; k < 2*synth && len(verts) >= 2; {
			a := rng.Intn(len(verts))
			b := rng.Intn(len(verts))
			if a == b || verts[a].NameID == verts[b].NameID {
				continue
			}
			uniformPairs = append(uniformPairs, [2]int{a, b})
			k++
		}
		venues, byVenue := venueIndex(sim)
		var hardPairs [][2]int
		for k, tries := 0, 0; k < 2*synth && tries < 40*synth && len(venues) > 0; tries++ {
			ids := byVenue[rng.Intn(len(venues))]
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			if a == b || verts[a].NameID == verts[b].NameID {
				continue
			}
			hardPairs = append(hardPairs, [2]int{a, b})
			k++
		}
		anchors := make([][2]int, 0, len(uniformPairs)+len(hardPairs))
		anchors = append(anchors, uniformPairs...)
		anchors = append(anchors, hardPairs...)
		anchorInvolved := make([]int, 0, 2*len(anchors))
		for _, pr := range anchors {
			anchorInvolved = append(anchorInvolved, pr[0], pr[1])
		}
		sim.precomputeProfiles(anchorInvolved)
		anchorBase := mx.Grow(len(anchors))
		sched.ForEach(workers, len(anchors), func(k int) {
			pr := anchors[k]
			full := sim.similaritiesOfProfiles(
				sim.mustProfile(pr[0]), sim.mustProfile(pr[1]))
			var gbuf [NumSimilarities]float64
			mx.SetRow(anchorBase+k, cfg.gammaInto(full, gbuf[:]))
		})
		for range anchors {
			init = append(init, 0.05)
			clamped = append(clamped, true)
		}
		// The uniform anchors are the contiguous prefix of the anchor
		// block (hard negatives follow); they are the calibration set.
		calibBase, calibCount = anchorBase, len(uniformPairs)
	}
	// Curator labels join the fit as clamped observations.
	var gbuf [NumSimilarities]float64
	for _, lp := range labeled {
		full := sim.Similarities(lp.a, lp.b)
		mx.AppendRow(cfg.gammaInto(full, gbuf[:]))
		if lp.same {
			init = append(init, 0.98)
		} else {
			init = append(init, 0.02)
		}
		clamped = append(clamped, true)
		synth++
	}
	if mx.Rows() == 0 {
		return nil, 0, fmt.Errorf("core: no training pairs (corpus too small for GCN stage)")
	}
	lap("fit-prep")
	// EM concurrency always follows the pipeline's Workers knob (one
	// knob, one pool size; see Config.EMOptions).
	opts := cfg.EMOptions
	opts.Workers = workers
	if synth > 0 {
		opts.InitResp = init
		opts.Clamped = clamped
	}
	model, _, err := emfit.FitMatrix(mx, specs, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("core: EM fit: %w", err)
	}
	// Operating-point calibration from the *uniform* known-different
	// anchors: they mirror the typical unmatched same-name pair. (The
	// venue-sharing hard negatives stay in the fit to shape the
	// unmatched component, but their scores overlap legitimate matches
	// by construction and would push the threshold above every match.)
	// Anchor rows are scored straight out of the training matrix with
	// the compiled scorer — bit-identical to LogOdds over gathered rows.
	scorer := model.Scorer()
	var negScores []float64
	for k := 0; k < calibCount; k++ {
		negScores = append(negScores, scorer.ScoreRow(mx, calibBase+k))
	}
	calibration := 0.0
	if len(negScores) > 0 {
		rate := cfg.FalseMatchRate
		if rate <= 0 || rate >= 1 {
			rate = 0.005
		}
		sort.Float64s(negScores)
		idx := int((1 - rate) * float64(len(negScores)))
		if idx >= len(negScores) {
			idx = len(negScores) - 1
		}
		// The nudge makes the threshold strictly exceed the quantile
		// anchor: a candidate with exactly the evidence profile of a
		// known-different pair must not merge (the merge test is ≥).
		calibration = negScores[idx] + 1e-9
		if calibration < 0 {
			// Never loosen below the posterior-odds break-even point.
			calibration = 0
		}
	}
	lap("em-fit")
	return model, calibration, nil
}

// venueVert is one (venue, vertex) publication occurrence of the flat
// venue index.
type venueVert struct {
	venue intern.ID
	vert  int32
}

// venueIndex lists each multi-vertex venue with the vertices publishing
// in it: venues in lexicographic symbol order (the deterministic
// sampling order the anchor rng depends on — identical to the former
// sorted-string order), per-venue vertex lists ascending. It is derived
// from the columnar venue data in one flat pass — (venue, vertex)
// occurrences gathered, sorted, and run-length grouped — instead of the
// former per-vertex hash maps rebuilt from raw papers on every fit.
func venueIndex(sim *similarityComputer) ([]intern.ID, [][]int) {
	verts := sim.net.Verts
	total := 0
	for v := range verts {
		total += len(verts[v].Papers)
	}
	occ := make([]venueVert, 0, total)
	frozen := intern.ID(sim.venueTab.FrozenLen())
	tailed := false
	for v := range verts {
		for _, pid := range verts[v].Papers {
			vid := sim.src.venueIDOf(pid)
			if vid == intern.None {
				continue
			}
			tailed = tailed || vid >= frozen
			occ = append(occ, venueVert{venue: vid, vert: int32(v)})
		}
	}
	// Frozen venue IDs are sorted ranks, so ascending-ID order IS
	// lexicographic order; a late-interned symbol (never present during
	// BuildGCN, but this helper must stay correct anywhere) falls back
	// to the table comparator, like the profile builders.
	if !tailed {
		slices.SortFunc(occ, func(a, b venueVert) int {
			if a.venue != b.venue {
				if a.venue < b.venue {
					return -1
				}
				return 1
			}
			return int(a.vert) - int(b.vert)
		})
	} else {
		slices.SortFunc(occ, func(a, b venueVert) int {
			if c := sim.venueTab.Compare(a.venue, b.venue); c != 0 {
				return c
			}
			return int(a.vert) - int(b.vert)
		})
	}
	var venues []intern.ID
	var lists [][]int
	for i := 0; i < len(occ); {
		j := i
		var ids []int
		for ; j < len(occ) && occ[j].venue == occ[i].venue; j++ {
			v := int(occ[j].vert)
			if len(ids) == 0 || ids[len(ids)-1] != v {
				ids = append(ids, v)
			}
		}
		if len(ids) >= 2 {
			venues = append(venues, occ[i].venue)
			lists = append(lists, ids)
		}
		i = j
	}
	return venues, lists
}

// splitNetwork rebuilds scn with every vertex of ≥ SplitMinPapers papers
// partitioned into two half-vertices; edges route each paper to the half
// that owns it. Returns the rebuilt network and the matched half pairs.
func splitNetwork(scn *Network, cfg *Config, rng *rand.Rand) (*Network, [][2]int) {
	out := newNetwork(scn.Corpus)
	// mapOf[v] returns the new vertex for paper p of old vertex v.
	mapOf := make([]func(p bib.PaperID) int, len(scn.Verts))
	var matched [][2]int
	for v := range scn.Verts {
		vert := &scn.Verts[v]
		if len(vert.Papers) >= cfg.SplitMinPapers {
			perm := rng.Perm(len(vert.Papers))
			// Half the splits peel off a single paper — the geometry of
			// the real matched candidates (an isolated one-paper fragment
			// against the author's main vertex). The rest split in half,
			// covering the career-phase-fragment geometry.
			cut := 1
			if rng.Float64() < 0.5 {
				cut = len(perm) / 2
			}
			movedIdx := perm[:cut]
			moved := make(map[bib.PaperID]bool, len(movedIdx))
			for _, k := range movedIdx {
				moved[vert.Papers[k]] = true
			}
			a := out.addVertexID(vert.NameID, vert.Isolated)
			b := out.addVertexID(vert.NameID, vert.Isolated)
			// vert.Papers is sorted and duplicate-free, so partitioning
			// preserves both invariants — no per-paper set unions.
			aPapers := make([]bib.PaperID, 0, len(vert.Papers)-cut)
			bPapers := make([]bib.PaperID, 0, cut)
			for _, p := range vert.Papers {
				if moved[p] {
					bPapers = append(bPapers, p)
				} else {
					aPapers = append(aPapers, p)
				}
			}
			out.Verts[a].Papers = aPapers
			out.Verts[b].Papers = bPapers
			mapOf[v] = func(p bib.PaperID) int {
				if moved[p] {
					return b
				}
				return a
			}
			matched = append(matched, [2]int{a, b})
			continue
		}
		id := out.addVertexID(vert.NameID, vert.Isolated)
		out.Verts[id].Papers = append([]bib.PaperID(nil), vert.Papers...)
		mapOf[v] = func(bib.PaperID) int { return id }
	}
	for key, papers := range scn.EdgePapers {
		fx, fy := mapOf[key[0]], mapOf[key[1]]
		for _, p := range papers {
			u, w := fx(p), fy(p)
			if u != w {
				out.addEdge(u, w, []bib.PaperID{p})
			}
		}
	}
	return out, matched
}

// recoverRelations implements Alg. 1 line 16: after merging, every
// co-author pair of every paper becomes an edge between the vertices its
// slots resolved to.
func recoverRelations(n *Network) {
	seen := make(map[bib.PaperID]struct{})
	for slot := range n.SlotVertex {
		seen[slot.Paper] = struct{}{}
	}
	ids := make([]bib.PaperID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, pid := range ids {
		paper := n.Corpus.Paper(pid)
		for i := 0; i < len(paper.Authors); i++ {
			vi, ok := n.SlotVertex[Slot{Paper: pid, Index: i}]
			if !ok {
				continue
			}
			for j := i + 1; j < len(paper.Authors); j++ {
				vj, ok := n.SlotVertex[Slot{Paper: pid, Index: j}]
				if !ok || vi == vj {
					continue
				}
				n.addEdge(vi, vj, []bib.PaperID{pid})
			}
		}
	}
}

// PaperByID resolves corpus papers and incrementally added papers.
func (pl *Pipeline) PaperByID(id bib.PaperID) *bib.Paper {
	if int(id) < pl.Corpus.Len() {
		return pl.Corpus.Paper(id)
	}
	return &pl.extra[int(id)-pl.Corpus.Len()]
}

// WordFrequency reports corpus-level word frequency; the incremental
// stream is small relative to the corpus, so corpus-level frequencies
// remain the reference (documented approximation).
func (pl *Pipeline) WordFrequency(w string) int { return pl.Corpus.WordFrequency(w) }

// VenueFrequency reports corpus-level venue frequency.
func (pl *Pipeline) VenueFrequency(v string) int { return pl.Corpus.VenueFrequency(v) }

// paperSource implementation: columnar resolution over the corpus plus
// the incremental stream.

func (pl *Pipeline) keywordIDs(id bib.PaperID) []intern.ID {
	if int(id) < pl.Corpus.Len() {
		return pl.Corpus.KeywordIDs(id)
	}
	return pl.extraKw[int(id)-pl.Corpus.Len()]
}

func (pl *Pipeline) venueIDOf(id bib.PaperID) intern.ID {
	if int(id) < pl.Corpus.Len() {
		return pl.Corpus.VenueIDOf(id)
	}
	return pl.extraVenue[int(id)-pl.Corpus.Len()]
}

func (pl *Pipeline) yearOf(id bib.PaperID) int {
	if int(id) < pl.Corpus.Len() {
		return pl.Corpus.Paper(id).Year
	}
	return pl.extraYear[int(id)-pl.Corpus.Len()]
}

// wordFreqID and venueFreqID answer against the frozen corpus: symbols
// interned by the stream have zero corpus frequency by construction.
func (pl *Pipeline) wordFreqID(id intern.ID) int  { return pl.Corpus.WordFrequencyID(id) }
func (pl *Pipeline) venueFreqID(id intern.ID) int { return pl.Corpus.VenueFrequencyID(id) }
