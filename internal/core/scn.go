package core

import (
	"sort"

	"iuad/internal/bib"
	"iuad/internal/intern"
	"iuad/internal/sched"
)

// namePair is an unordered interned-name pair with A < B. For frozen
// corpus names (the only names stage 1 sees), numeric ID order equals
// lexicographic name order, so sorting namePairs reproduces the former
// string-pair ordering exactly.
type namePair struct{ A, B intern.ID }

func makeNamePair(a, b intern.ID) namePair {
	if b < a {
		a, b = b, a
	}
	return namePair{a, b}
}

// cmpNamePair orders pairs by (A, B) — the sort order of the flat
// triangle lists that γ²'s merge-join intersects.
func cmpNamePair(a, b namePair) int {
	if a.A != b.A {
		if a.A < b.A {
			return -1
		}
		return 1
	}
	if a.B != b.B {
		if a.B < b.B {
			return -1
		}
		return 1
	}
	return 0
}

// BuildSCN runs stage 1 (§IV): mine η-SCRs from the co-author lists and
// construct the stable collaboration network.
//
// Mining counts 2-itemsets directly over the interned author-ID columns
// (the FP-growth specialization of package fpgrowth, minus the string
// hashing: co-author lists are duplicate-free by Paper.Validate, so
// plain pair counting over int32 IDs is exact).
//
// Insertion follows the running example of Fig. 4: a stable pair (a,b)
// reuses an existing vertex named a only when a stable triangle supports
// it — some current neighbor u of that vertex has (name(u), b) ∈ F.
// Otherwise a carries no evidence of being the same person, and a fresh
// vertex is created ("initially all same-name authors are different").
//
// After all stable pairs are inserted, every author slot is assigned: to
// the stable vertex whose paper set covers it, or to a new isolated
// single-paper vertex. Slots covered by several stable vertices of the
// same name prove those vertices are one person (a slot is one physical
// author), so such vertices are merged.
func BuildSCN(corpus *bib.Corpus, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Support counting, sharded over contiguous paper ranges (one counter
	// map per worker), then reduced.
	countShards := sched.MapChunks(cfg.workers(), corpus.Len(),
		func(lo, hi int) map[namePair]int {
			local := make(map[namePair]int)
			for i := lo; i < hi; i++ {
				ids := corpus.AuthorIDs(bib.PaperID(i))
				for x := 0; x < len(ids); x++ {
					for y := x + 1; y < len(ids); y++ {
						local[makeNamePair(ids[x], ids[y])]++
					}
				}
			}
			return local
		})
	scrs := make(map[namePair]int)
	for _, shard := range countShards {
		for key, c := range shard {
			scrs[key] += c
		}
	}
	for key, c := range scrs {
		if c < cfg.Eta {
			delete(scrs, key)
		}
	}

	// Papers per stable pair. Merging the shards in range order keeps
	// every per-pair paper list in ascending paper order — exactly the
	// serial scan's output.
	shards := sched.MapChunks(cfg.workers(), corpus.Len(),
		func(lo, hi int) map[namePair][]bib.PaperID {
			local := make(map[namePair][]bib.PaperID)
			for i := lo; i < hi; i++ {
				ids := corpus.AuthorIDs(bib.PaperID(i))
				for x := 0; x < len(ids); x++ {
					for y := x + 1; y < len(ids); y++ {
						key := makeNamePair(ids[x], ids[y])
						if _, stable := scrs[key]; stable {
							local[key] = append(local[key], bib.PaperID(i))
						}
					}
				}
			}
			return local
		})
	pairPapers := make(map[namePair][]bib.PaperID, len(scrs))
	for _, shard := range shards {
		for key, ids := range shard {
			pairPapers[key] = append(pairPapers[key], ids...)
		}
	}

	// Deterministic insertion order: support descending, then name order.
	// Processing high-support relations first anchors the network on the
	// strongest evidence before weaker relations choose attachments.
	ordered := make([]namePair, 0, len(scrs))
	for pr := range scrs {
		ordered = append(ordered, pr)
	}
	sort.Slice(ordered, func(i, j int) bool {
		si, sj := scrs[ordered[i]], scrs[ordered[j]]
		if si != sj {
			return si > sj
		}
		if ordered[i].A != ordered[j].A {
			return ordered[i].A < ordered[j].A
		}
		return ordered[i].B < ordered[j].B
	})

	n := newNetwork(corpus)
	attach := func(nid, other intern.ID) int {
		for _, id := range n.VerticesOfID(nid) {
			support := false
			n.G.VisitNeighbors(id, func(u int) {
				if support {
					return
				}
				if _, ok := scrs[makeNamePair(n.Verts[u].NameID, other)]; ok {
					support = true
				}
			})
			if support {
				return id
			}
		}
		return n.addVertexID(nid, false)
	}
	for _, pr := range ordered {
		va := attach(pr.A, pr.B)
		vb := attach(pr.B, pr.A)
		n.addEdge(va, vb, pairPapers[pr])
	}

	// Slot assignment + slot-conflict merging. Finding the stable
	// vertices that own each slot only reads the stable network built
	// above (papers have unique author names, so an isolated vertex
	// created for one slot can never own another), which makes the
	// owner scan safe to fan out; vertex creation and merging stay on
	// this goroutine, applied in paper order. Each shard emits a flat
	// record stream — most slots have no stable owner, so this stays
	// compact even at library scale — and shards concatenate in range
	// order, i.e. exactly the serial (paper, slot, ByName) scan order.
	type ownerRec struct {
		paper, idx, owner int32
	}
	ownerShards := sched.MapChunks(cfg.workers(), corpus.Len(), func(lo, hi int) []ownerRec {
		var recs []ownerRec
		for i := lo; i < hi; i++ {
			pid := bib.PaperID(i)
			for idx, nid := range corpus.AuthorIDs(pid) {
				for _, id := range n.VerticesOfID(nid) {
					if containsPaper(n.Verts[id].Papers, pid) {
						recs = append(recs, ownerRec{int32(i), int32(idx), int32(id)})
					}
				}
			}
		}
		return recs
	})
	uf := newUnionFind(len(n.Verts))
	si, pos := 0, 0
	peek := func() *ownerRec {
		for si < len(ownerShards) {
			if pos < len(ownerShards[si]) {
				return &ownerShards[si][pos]
			}
			si, pos = si+1, 0
		}
		return nil
	}
	for i := 0; i < corpus.Len(); i++ {
		pid := bib.PaperID(i)
		for idx, nid := range corpus.AuthorIDs(pid) {
			slot := Slot{Paper: pid, Index: idx}
			r := peek()
			if r == nil || r.paper != int32(i) || r.idx != int32(idx) {
				iso := n.addVertexID(nid, true)
				n.Verts[iso].Papers = []bib.PaperID{pid}
				n.SlotVertex[slot] = iso
				continue
			}
			first := int(r.owner)
			pos++
			n.SlotVertex[slot] = first
			for {
				r = peek()
				if r == nil || r.paper != int32(i) || r.idx != int32(idx) {
					break
				}
				uf.union(first, int(r.owner))
				pos++
			}
		}
	}
	uf.grow(len(n.Verts)) // isolated vertices added after construction
	scn, _ := n.contract(uf.find)
	return scn, nil
}

func containsPaper(papers []bib.PaperID, p bib.PaperID) bool {
	i := sort.Search(len(papers), func(k int) bool { return papers[k] >= p })
	return i < len(papers) && papers[i] == p
}

// contract rebuilds the network with vertex groups collapsed according to
// find. Groups are guaranteed by callers to be name-homogeneous. The
// returned remap gives every old vertex's new ID — the carry that lets
// iterative refinement transplant profiles and pair scores of untouched
// vertices across rounds instead of rebuilding them.
func (n *Network) contract(find func(int) int) (*Network, []int) {
	out := newNetwork(n.Corpus)
	remap := make([]int, len(n.Verts))
	for i := range remap {
		remap[i] = -1
	}
	// Deterministic new IDs: ascending over old IDs.
	for old := range n.Verts {
		root := find(old)
		if remap[root] == -1 {
			remap[root] = out.addVertexID(n.Verts[root].NameID, true)
		}
		remap[old] = remap[root]
	}
	for old := range n.Verts {
		v := &n.Verts[old]
		nv := &out.Verts[remap[old]]
		nv.Papers = unionPapers(nv.Papers, v.Papers)
		if !v.Isolated {
			nv.Isolated = false
		}
	}
	for key, papers := range n.EdgePapers {
		u, v := remap[key[0]], remap[key[1]]
		if u == v {
			continue // edge collapsed inside a merged vertex
		}
		out.addEdge(u, v, papers)
	}
	for slot, old := range n.SlotVertex {
		out.SlotVertex[slot] = remap[old]
	}
	return out, remap
}

// unionFind is a disjoint-set forest over vertex IDs.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// grow extends the forest to cover n elements.
func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
	}
}

// len returns the number of elements in the forest.
func (u *unionFind) len() int { return len(u.parent) }

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges by smaller root so contraction IDs stay deterministic.
func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
