package core

import (
	"testing"

	"iuad/internal/bib"
)

// labelsFromTruth builds curator labels for the top ambiguous names of a
// labeled dataset: for each name, one same-author pair and one
// different-author pair (when available).
func labelsFromTruth(corpus *bib.Corpus, names []string, perName int) []LabeledPair {
	var out []LabeledPair
	for _, name := range names {
		papers := corpus.PapersWithName(name)
		added := 0
		for i := 0; i < len(papers) && added < perName; i++ {
			for j := i + 1; j < len(papers) && added < perName; j++ {
				pi, pj := corpus.Paper(papers[i]), corpus.Paper(papers[j])
				ti := pi.TruthAt(pi.AuthorIndex(name))
				tj := pj.TruthAt(pj.AuthorIndex(name))
				out = append(out, LabeledPair{
					Name: name, A: int(papers[i]), B: int(papers[j]), Same: ti == tj,
				})
				added++
			}
		}
	}
	return out
}

// TestSemiSupervisedLabelsForceMerges verifies the future-work extension:
// same-author labels merge the carrying vertices unconditionally, and a
// labeled run is at least as good as the unsupervised run on recall
// without a precision collapse.
func TestSemiSupervisedLabelsForceMerges(t *testing.T) {
	d := testDataset(23)
	names := d.AmbiguousNames(2)
	cfg := fastCoreConfig()
	base, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseM := metricsOf(d.Corpus, base.GCN, names)

	cfg.Labels = labelsFromTruth(d.Corpus, names, 3)
	if len(cfg.Labels) == 0 {
		t.Fatal("no labels constructed")
	}
	labeledRun, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	labM := metricsOf(d.Corpus, labeledRun.GCN, names)
	t.Logf("unsupervised: %v", baseM)
	t.Logf("semi-supervised (%d labels): %v", len(cfg.Labels), labM)

	// Same-author labels must actually be honored in the GCN.
	for _, lp := range cfg.Labels {
		if !lp.Same {
			continue
		}
		pa := labeledRun.Corpus.Paper(bib.PaperID(lp.A))
		pb := labeledRun.Corpus.Paper(bib.PaperID(lp.B))
		va := labeledRun.GCN.ClusterOfSlot(Slot{Paper: bib.PaperID(lp.A), Index: pa.AuthorIndex(lp.Name)})
		vb := labeledRun.GCN.ClusterOfSlot(Slot{Paper: bib.PaperID(lp.B), Index: pb.AuthorIndex(lp.Name)})
		if va != vb {
			t.Fatalf("same-author label %v not honored: vertices %d vs %d", lp, va, vb)
		}
	}
	// Labels must help, not hurt: recall at least as high, F not lower
	// by more than noise.
	if labM.MicroR < baseM.MicroR-1e-9 {
		t.Fatalf("labels reduced recall: %.4f -> %.4f", baseM.MicroR, labM.MicroR)
	}
	if labM.MicroF < baseM.MicroF-0.02 {
		t.Fatalf("labels hurt F1: %.4f -> %.4f", baseM.MicroF, labM.MicroF)
	}
}

func TestLabelsResolveEdgeCases(t *testing.T) {
	d := testDataset(23)
	cfg := fastCoreConfig()
	cfg.Labels = []LabeledPair{
		{Name: "No Such Name", A: 0, B: 1, Same: true},       // name not on papers
		{Name: "Also Missing", A: 999999, B: 0, Same: false}, // paper out of range
	}
	// Bad labels are dropped silently; the pipeline still runs.
	if _, err := Run(d.Corpus, cfg); err != nil {
		t.Fatal(err)
	}
}
