// Package core implements IUAD, the paper's contribution: a two-stage,
// incremental, unsupervised author disambiguation algorithm that
// reconstructs the collaboration network bottom-up.
//
// Stage 1 (§IV) mines η-stable collaborative relations (η-SCRs) from the
// co-author lists with FP-growth and assembles the Stable Collaboration
// Network (SCN), attaching each new stable pair to existing vertices only
// when a stable triangle supports the attachment. Every paper-author slot
// not covered by a stable relation starts as its own isolated vertex —
// the "initially assume all same-name authors are different" premise.
//
// Stage 2 (§V) computes six similarity functions between same-name SCN
// vertices, fits the exponential-family generative model of §V-C with EM
// (package emfit), and merges vertex pairs whose posterior log-odds
// matching score (Eq. 11) reaches the decision threshold δ, producing the
// Global Collaboration Network (GCN). Collaborative relations from the
// co-author lists are then recovered onto the merged vertices.
//
// New papers are disambiguated incrementally (§V-E) against the GCN by
// scoring each author slot against the existing same-name vertices — no
// retraining.
package core

import (
	"fmt"
	"runtime"
	"time"

	"iuad/internal/emfit"
	"iuad/internal/sched"
	"iuad/internal/textvec"
)

// NumSimilarities is the number of similarity functions γ¹..γ⁶ (§V-B).
const NumSimilarities = 6

// Similarity function indexes, in the paper's order.
const (
	SimWLKernel     = iota // γ¹ normalized Weisfeiler-Lehman subgraph kernel
	SimCliques             // γ² co-author clique coincidence ratio
	SimInterests           // γ³ research-interest cosine
	SimTimeConsist         // γ⁴ time consistency of research interests
	SimRepCommunity        // γ⁵ representative community
	SimCommunity           // γ⁶ research community (Adamic/Adar over venues)
)

// SimilarityNames maps feature indexes to short names for reports.
var SimilarityNames = [NumSimilarities]string{
	"wl-kernel", "cliques", "interests", "time-consistency",
	"rep-community", "community",
}

// LabeledPair is one piece of curator ground truth for the
// semi-supervised extension: whether the occurrences of Name in papers A
// and B belong to the same person.
type LabeledPair struct {
	Name string
	A, B int // PaperIDs (int to avoid the bib import in user configs)
	Same bool
}

// MergeStrategy selects how stage-2 decisions turn scores into merges.
type MergeStrategy int

const (
	// MergeBestMatch merges each vertex with its highest-scoring
	// same-name partner only (when that score reaches δ) — the batch
	// application of the paper's own incremental rule (§V-E). It is the
	// default because all-pairs union amplifies any pairwise false-match
	// rate through transitive closure.
	MergeBestMatch MergeStrategy = iota
	// MergeAllPairs merges every pair with score ≥ δ, exactly Alg. 1
	// lines 14-15. Kept for fidelity comparisons and ablations.
	MergeAllPairs
)

// Config parameterizes the IUAD pipeline. Zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Eta is the η-SCR support threshold (§IV-B). The paper mines
	// frequent 2-itemsets; η=2 is the minimum meaningful value.
	Eta int
	// Workers bounds the worker pool the pipeline fans name blocks (and
	// other independent work items) out to: stage-1 edge counting,
	// stage-2 profile/similarity computation and merge rounds, EM batch
	// E-steps, and incremental candidate scoring. 0 or negative means
	// one worker per logical CPU (runtime.GOMAXPROCS(0)); 1 runs the
	// whole pipeline single-threaded.
	//
	// Determinism guarantee: blocks are processed in any order but
	// results are reduced in stable block-key order, so the output —
	// networks, fitted model, cluster assignments — is bit-identical
	// for every worker count.
	Workers int
	// Delta is the decision threshold δ on the log-odds matching score
	// (Alg. 1 line 14). It is an OFFSET relative to the self-calibrated
	// operating point (see FalseMatchRate); 0 uses the calibrated
	// threshold as is.
	Delta float64
	// FalseMatchRate is the target rate of false merges among known-
	// different (cross-name anchor) pairs; the decision threshold is
	// calibrated as the (1−rate) quantile of their fitted scores — the
	// Fellegi–Sunter operating-point construction for record linkage,
	// which this generative model instantiates. Merging is transitive,
	// so the tolerable pairwise false-match rate is small.
	FalseMatchRate float64
	// Merge selects the decision strategy of stage 2 (see MergeStrategy).
	Merge MergeStrategy
	// MergeRounds applies the stage-2 decision iteratively: after a
	// round of merges, vertex profiles are recomputed on the contracted
	// network and remaining same-name pairs are rescored with the same
	// fitted model. Additional rounds raise recall without loosening the
	// threshold (merged vertices carry richer evidence). 0 or 1 = single
	// round (the paper's Alg. 1).
	MergeRounds int
	// WLIterations is h, the WL refinement depth of γ¹.
	WLIterations int
	// Alpha is the time-decay factor of γ⁴ (0.62 in the paper).
	Alpha float64

	// SampleRate is the fraction of candidate pairs used to train the
	// generative model (§VI-A3 uses 10%). Decision making always scores
	// every pair.
	SampleRate float64
	// SplitMinPapers enables the vertex-splitting balance strategy
	// (§V-F2): vertices with at least this many papers are split in two
	// to synthesize matched training pairs. 0 disables splitting.
	SplitMinPapers int
	// MaxPairsPerName caps candidate pairs per name to bound quadratic
	// blowup on extremely ambiguous names. 0 means no cap.
	MaxPairsPerName int

	// FeatureMask enables/disables individual similarity functions; used
	// by the Fig. 6 single-similarity analysis. Nil means all enabled.
	FeatureMask []bool
	// Families overrides the per-feature exponential-family choice. Nil
	// selects the defaults (Gaussian for γ¹/γ³, Exponential otherwise).
	Families []emfit.Family

	// Labels optionally supplies curator ground truth (the paper's
	// stated future work: "we plan to extend our method to build a
	// semi-supervised approach"). Same-author labels force-merge the
	// vertices carrying the two slots and anchor the matched component;
	// different-author labels anchor the unmatched component. See
	// LabeledPair.
	Labels []LabeledPair

	// Embedding configures the SGNS title-keyword vectors behind γ³.
	Embedding textvec.Config
	// Seed drives pair sampling and vertex splitting.
	Seed int64
	// EMOptions tunes the EM fit. Its Workers field is ignored: the
	// pipeline always runs EM with this Config's Workers pool.
	EMOptions emfit.Options

	// StageHook, when non-nil, receives the wall time of each coarse
	// stage-2 phase as it completes: "score-initial" (candidate pair
	// enumeration + similarity vectors), "fit-prep" (vertex splitting and
	// anchor sampling), "em-fit", "decision" (scoring + first merge), and
	// "refine-round-N" per refinement round. Diagnostics only — it must
	// not mutate pipeline state. Never serialized.
	StageHook func(stage string, d time.Duration) `json:"-"`

	// RoundHook, when non-nil, observes the network after each stage-2
	// merge round: round 0 is the initial decision merge (Alg. 1 lines
	// 14-15), rounds 1..MergeRounds-1 are the refinement contractions.
	// The labeled accuracy scenario uses it to record per-round accuracy
	// curves (how much each refinement round buys or costs). The network
	// is the live pipeline state: the hook must treat it as read-only and
	// not retain it past the call. Never serialized.
	RoundHook func(round int, net *Network) `json:"-"`

	// symCache is set by BuildGCN so every similarityComputer of one run
	// shares the per-symbol lookup tables (see symbolCaches). Unexported:
	// internal plumbing, invisible to JSON config serialization, and
	// rebuilt fresh by each BuildGCN call (the caller's Config value is
	// received by value and never mutated).
	symCache *symbolCaches
	// featIdx caches enabledFeatures() for the hot scoring paths (set
	// alongside symCache; nil falls back to recomputing).
	featIdx []int
}

// DefaultConfig returns the paper-faithful parameterization.
func DefaultConfig() Config {
	emb := textvec.DefaultConfig()
	return Config{
		Eta:             2,
		Workers:         runtime.GOMAXPROCS(0),
		Delta:           0,
		FalseMatchRate:  0.01,
		MergeRounds:     3,
		WLIterations:    2,
		Alpha:           0.62,
		SampleRate:      0.10,
		SplitMinPapers:  6,
		MaxPairsPerName: 200000,
		Embedding:       emb,
		Seed:            1,
		EMOptions:       emfit.DefaultOptions(),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Eta < 2 {
		return fmt.Errorf("core: Eta=%d; stable relations need η ≥ 2", c.Eta)
	}
	if c.WLIterations < 0 {
		return fmt.Errorf("core: negative WLIterations")
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("core: SampleRate=%v outside (0,1]", c.SampleRate)
	}
	if c.FeatureMask != nil && len(c.FeatureMask) != NumSimilarities {
		return fmt.Errorf("core: FeatureMask length %d, want %d", len(c.FeatureMask), NumSimilarities)
	}
	if c.Families != nil && len(c.Families) != NumSimilarities {
		return fmt.Errorf("core: Families length %d, want %d", len(c.Families), NumSimilarities)
	}
	return nil
}

// workers resolves Workers into an effective pool size (≤0 → GOMAXPROCS).
func (c *Config) workers() int { return sched.Workers(c.Workers) }

// enabledFeatures resolves the feature mask into index lists.
func (c *Config) enabledFeatures() []int {
	var out []int
	for i := 0; i < NumSimilarities; i++ {
		if c.FeatureMask == nil || c.FeatureMask[i] {
			out = append(out, i)
		}
	}
	return out
}

// featureIndexes returns the cached enabled-feature index list, falling
// back to a fresh resolution when the cache is unset (configs built
// outside BuildGCN, e.g. decoded snapshots before the pipeline seeds it).
func (c *Config) featureIndexes() []int {
	if c.featIdx != nil {
		return c.featIdx
	}
	return c.enabledFeatures()
}

// stageTimer returns a lap function feeding StageHook, or a no-op when
// the hook is unset (the hot path pays nothing).
func (c *Config) stageTimer() func(stage string) {
	if c.StageHook == nil {
		return func(string) {}
	}
	last := time.Now()
	return func(stage string) {
		now := time.Now()
		c.StageHook(stage, now.Sub(last))
		last = now
	}
}

// featureSpecs builds the emfit feature specifications for the enabled
// features.
func (c *Config) featureSpecs() []emfit.FeatureSpec {
	// Sparse non-negative similarities (exactly 0 for most unrelated
	// pairs) use the zero-inflated exponential; bounded dense ones are
	// Gaussian. See Table I for the corresponding MLEs.
	defaults := [NumSimilarities]emfit.Family{
		SimWLKernel:     emfit.ZeroInflatedExponential,
		SimCliques:      emfit.ZeroInflatedExponential,
		SimInterests:    emfit.Gaussian,
		SimTimeConsist:  emfit.ZeroInflatedExponential,
		SimRepCommunity: emfit.ZeroInflatedExponential,
		SimCommunity:    emfit.ZeroInflatedExponential,
	}
	var specs []emfit.FeatureSpec
	for _, i := range c.enabledFeatures() {
		fam := defaults[i]
		if c.Families != nil {
			fam = c.Families[i]
		}
		spec := emfit.FeatureSpec{Name: SimilarityNames[i], Family: fam}
		if fam == emfit.Multinomial {
			// Generic bins for bounded similarity scores.
			spec.Bins = []float64{0.001, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
		}
		specs = append(specs, spec)
	}
	return specs
}
