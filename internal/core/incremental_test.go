package core

import (
	"math"
	"testing"

	"iuad/internal/bib"
)

// TestIncrementalBrandNewName streams a paper that mixes a known author
// name with a name the corpus has never seen: the unseen name must get a
// fresh vertex (there is nothing to score against), the known name must
// resolve to a vertex carrying its name, and the recovered relation must
// link the two assignments.
func TestIncrementalBrandNewName(t *testing.T) {
	d := testDataset(9)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	known := d.Corpus.Paper(0).Authors[0]
	as, err := pl.AddPaper(bib.Paper{
		Title: "Mixing Old And New", Venue: "KDD", Year: 2021,
		Authors: []string{known, "Qx Neverseen"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("assignments=%d", len(as))
	}
	if !as[1].Created {
		t.Fatalf("brand-new name reused vertex %d", as[1].Vertex)
	}
	if !math.IsInf(as[1].Score, -1) {
		t.Fatalf("brand-new name scored %v, want -Inf (no candidates)", as[1].Score)
	}
	if got := pl.GCN.Verts[as[0].Vertex].Name; got != known {
		t.Fatalf("known slot resolved to vertex named %q, want %q", got, known)
	}
	if !pl.GCN.G.HasEdge(as[0].Vertex, as[1].Vertex) {
		t.Fatal("recovered relation missing between the two slots")
	}
	if err := pl.GCN.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalTieBreak pins the tie-break of §V-E's argmax: when
// several same-name candidate vertices have byte-identical profiles
// (hence exactly equal scores), the first candidate in ByName order —
// the lowest vertex ID — wins, for every worker count. The candidate set
// is sized past the parallel-scoring threshold so both the serial and
// the pooled paths are exercised.
func TestIncrementalTieBreak(t *testing.T) {
	for _, workers := range []int{1, 8} {
		d := testDataset(9)
		cfg := fastCoreConfig()
		cfg.Workers = workers
		pl, err := Run(d.Corpus, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Ten identical candidates: same name, same single paper, no
		// edges — every similarity function sees the same evidence.
		const tieName = "Zz Tiebreak"
		ids := make([]int, 10)
		for i := range ids {
			v := pl.GCN.addVertex(tieName, true)
			pl.GCN.Verts[v].Papers = []bib.PaperID{0}
			ids[i] = v
		}
		// Force attachment regardless of the calibrated threshold: the
		// test is about WHICH vertex wins, not whether one does.
		pl.Cfg.Delta = -1e9
		as, err := pl.AddPaper(bib.Paper{
			Title: "Tie Breaking Probe", Venue: "KDD", Year: 2021,
			Authors: []string{tieName},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if as[0].Created {
			t.Fatalf("workers=%d: tie candidates ignored (Created)", workers)
		}
		if as[0].Vertex != ids[0] {
			t.Fatalf("workers=%d: tie broken to vertex %d, want first candidate %d",
				workers, as[0].Vertex, ids[0])
		}
	}
}

// TestIncrementalEmptyFrozenCorpus runs the pipeline on a frozen corpus
// with zero papers: Run must succeed with a model-less pipeline, and
// AddPaper must keep working — every slot becomes a fresh vertex (no
// merge evidence exists), including repeat papers by the same names.
func TestIncrementalEmptyFrozenCorpus(t *testing.T) {
	c := bib.NewCorpus(0)
	c.Freeze()
	pl, err := Run(c, fastCoreConfig())
	if err != nil {
		t.Fatalf("Run on empty corpus: %v", err)
	}
	if pl.Model != nil {
		t.Fatal("empty corpus fitted a model")
	}
	if pl.GCN.VertexCount() != 0 {
		t.Fatalf("empty corpus GCN has %d vertices", pl.GCN.VertexCount())
	}
	first, err := pl.AddPaper(bib.Paper{
		Title: "First Ever", Venue: "KDD", Year: 2021,
		Authors: []string{"Ada One", "Bea Two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range first {
		if !a.Created {
			t.Fatalf("slot %+v attached with no corpus", a.Slot)
		}
	}
	if !pl.GCN.G.HasEdge(first[0].Vertex, first[1].Vertex) {
		t.Fatal("recovered relation missing")
	}
	// With no fitted model there is no merge evidence: a second paper by
	// the same pair also fragments (documented AddPaper behavior).
	second, err := pl.AddPaper(bib.Paper{
		Title: "Second Ever", Venue: "KDD", Year: 2022,
		Authors: []string{"Ada One", "Bea Two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range second {
		if !a.Created {
			t.Fatalf("model-less pipeline attached slot %d to vertex %d", i, a.Vertex)
		}
	}
	if err := pl.GCN.Validate(); err != nil {
		t.Fatal(err)
	}
}
