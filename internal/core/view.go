package core

import (
	"iuad/internal/bib"
)

// This file implements the published read-model behind the serving API
// (iuad.Service): an immutable View that answers author queries without
// any lock, and the ViewPublisher that derives a fresh View from the
// pipeline after each write epoch.
//
// Concurrency contract. A View is deeply immutable: once published,
// none of its reachable state is ever written again, so any number of
// goroutines may query it while the single writer keeps mutating the
// pipeline and publishing later epochs. Three sharing disciplines make
// publishing cheap without breaking that contract:
//
//   - Append-only slices (slot table, vertex names, streamed papers):
//     the publisher appends to its own backing array and each View
//     holds a length-bounded header. Readers never index past their
//     header's length, and published entries are never overwritten, so
//     sharing one backing array across epochs is race-free even while
//     the publisher appends (append either writes past every published
//     length or relocates to a new array).
//
//   - Copy-on-write entries (per-vertex paper sets): unionPapers never
//     mutates a slice it returns — growth allocates a fresh slice — so
//     a View can hold the pipeline's own per-vertex slice headers.
//
//   - Base + delta layering (vertex-indexed paper/coauthor tables, the
//     name index): the bulk of the table lives in a shared immutable
//     base; entries touched since the base was built live in a small
//     immutable delta map that is re-copied (and occasionally flattened
//     into a new base) at each publish. Lookups consult the delta
//     first. This keeps per-publish cost proportional to the write's
//     touch set, not to the corpus.
//
// Everything here runs under the service's writer lock except the View
// read methods, which are lock-free by construction.

// ServiceStats is the point-in-time summary served by Stats(): the
// epoch it was published at and the sizes of the published network.
type ServiceStats struct {
	// Epoch counts publishes; it increases by exactly one per write
	// batch, so readers can detect progress and tests can assert that
	// no partially-published state is ever observable.
	Epoch uint64 `json:"epoch"`
	// Papers = CorpusPapers + StreamedPapers.
	Papers         int `json:"papers"`
	CorpusPapers   int `json:"corpus_papers"`
	StreamedPapers int `json:"streamed_papers"`
	// Authors is the number of conjectured authors (GCN vertices).
	Authors int `json:"authors"`
	// Names is the number of distinct author-name strings seen.
	Names int `json:"names"`
	// Edges is the number of collaboration edges.
	Edges int `json:"edges"`
	// Slots is the number of assigned author occurrences.
	Slots int `json:"slots"`
}

// View is one published epoch of the serving read-model. All methods
// are safe for concurrent use without synchronization; slices returned
// by methods are shared with the view and MUST NOT be mutated.
type View struct {
	stats  ServiceStats
	corpus *bib.Corpus
	extra  []bib.Paper // streamed papers (append-only shared header)

	// slotOff[p]..slotOff[p+1] indexes slotVert for paper p's slots.
	slotOff  []int32 // len = stats.Papers + 1 (append-only shared)
	slotVert []int32 // assigned vertex per slot (append-only shared)

	names []string // per-vertex author name (append-only shared)

	papersBase  [][]bib.PaperID
	papersDelta map[int32][]bib.PaperID

	coauthBase  [][]int32
	coauthDelta map[int32][]int32

	byNameBase  map[string][]int32
	byNameDelta map[string][]int32
}

// Epoch returns the publish epoch of this view.
func (v *View) Epoch() uint64 { return v.stats.Epoch }

// Stats returns the sizes of the published network.
func (v *View) Stats() ServiceStats { return v.stats }

// NumVertices returns the number of published authors (vertices).
func (v *View) NumVertices() int { return v.stats.Authors }

// AuthorName returns the name of vertex id, and whether id is a
// published vertex.
func (v *View) AuthorName(id int) (string, bool) {
	if id < 0 || id >= len(v.names) {
		return "", false
	}
	return v.names[id], true
}

// AuthorPapers returns the sorted paper IDs attributed to vertex id.
// The slice is shared with the view; do not mutate.
func (v *View) AuthorPapers(id int) ([]bib.PaperID, bool) {
	if id < 0 || id >= v.stats.Authors {
		return nil, false
	}
	if p, ok := v.papersDelta[int32(id)]; ok {
		return p, true
	}
	if id < len(v.papersBase) {
		return v.papersBase[id], true
	}
	return nil, true
}

// Coauthors returns the sorted vertex IDs adjacent to vertex id in the
// published collaboration network. The slice is shared; do not mutate.
func (v *View) Coauthors(id int) ([]int32, bool) {
	if id < 0 || id >= v.stats.Authors {
		return nil, false
	}
	if c, ok := v.coauthDelta[int32(id)]; ok {
		return c, true
	}
	if id < len(v.coauthBase) {
		return v.coauthBase[id], true
	}
	return nil, true
}

// VerticesOfName returns the ascending vertex IDs carrying the exact
// author name. The slice is shared; do not mutate.
func (v *View) VerticesOfName(name string) []int32 {
	if ids, ok := v.byNameDelta[name]; ok {
		return ids
	}
	return v.byNameBase[name]
}

// ResolveSlot returns the vertex the (paper, index) author occurrence
// is assigned to, or false when the slot is outside the published
// epoch.
func (v *View) ResolveSlot(s Slot) (int, bool) {
	p := int(s.Paper)
	if p < 0 || p >= v.stats.Papers {
		return 0, false
	}
	lo, hi := v.slotOff[p], v.slotOff[p+1]
	if s.Index < 0 || int32(s.Index) >= hi-lo {
		return 0, false
	}
	vert := v.slotVert[lo+int32(s.Index)]
	if vert < 0 {
		return 0, false
	}
	return int(vert), true
}

// PaperMeta resolves a published paper record — corpus papers and
// streamed papers alike. The returned record is immutable.
func (v *View) PaperMeta(id bib.PaperID) (*bib.Paper, bool) {
	if id < 0 || int(id) >= v.stats.Papers {
		return nil, false
	}
	if int(id) < v.stats.CorpusPapers {
		return v.corpus.Paper(id), true
	}
	return &v.extra[int(id)-v.stats.CorpusPapers], true
}

// flattenSlack bounds how large a delta may grow relative to its base
// before a publish folds it into a fresh base: len(delta) is kept under
// flattenMin + len(base)/flattenDiv, so lookup stays O(1) with a small
// constant and per-publish cost stays proportional to the touch set,
// amortized.
const (
	flattenMin = 64
	flattenDiv = 4
)

// ViewPublisher derives Views from a pipeline. It is single-writer: all
// methods must run under the owning service's write lock. The published
// Views it hands out are immutable and may be read concurrently with
// later Publish calls.
type ViewPublisher struct {
	pl  *Pipeline
	cur *View

	// Append-only builders (Views hold length-bounded headers).
	slotOff  []int32
	slotVert []int32
	names    []string
}

// NewViewPublisher builds the initial full view of pl at the given
// epoch (0 for a freshly built pipeline; a snapshot restore passes the
// epoch it saved). The initial build is O(V + E + slots); every later
// Publish is proportional to the write's touch set.
func NewViewPublisher(pl *Pipeline, epoch uint64) *ViewPublisher {
	vp := &ViewPublisher{pl: pl}
	gcn := pl.GCN
	nVerts := len(gcn.Verts)

	papers := corpusLen(pl)
	vp.slotOff = make([]int32, 1, papers+1)
	for pid := 0; pid < papers; pid++ {
		n := len(pl.PaperByID(bib.PaperID(pid)).Authors)
		for idx := 0; idx < n; idx++ {
			vert, ok := gcn.SlotVertex[Slot{Paper: bib.PaperID(pid), Index: idx}]
			if !ok {
				vert = -1
			}
			vp.slotVert = append(vp.slotVert, int32(vert))
		}
		vp.slotOff = append(vp.slotOff, int32(len(vp.slotVert)))
	}

	vp.names = make([]string, nVerts)
	papersBase := make([][]bib.PaperID, nVerts)
	coauthBase := make([][]int32, nVerts)
	byNameBase := make(map[string][]int32)
	for i := 0; i < nVerts; i++ {
		vert := &gcn.Verts[i]
		vp.names[i] = vert.Name
		papersBase[i] = vert.Papers
		coauthBase[i] = neighborIDs(gcn, i)
		byNameBase[vert.Name] = append(byNameBase[vert.Name], int32(i))
	}

	vp.cur = &View{
		stats:       vp.statsAt(epoch),
		corpus:      pl.Corpus,
		extra:       pl.extra,
		slotOff:     vp.slotOff,
		slotVert:    vp.slotVert,
		names:       vp.names,
		papersBase:  papersBase,
		papersDelta: map[int32][]bib.PaperID{},
		coauthBase:  coauthBase,
		coauthDelta: map[int32][]int32{},
		byNameBase:  byNameBase,
		byNameDelta: map[string][]int32{},
	}
	return vp
}

// Current returns the most recently published view.
func (vp *ViewPublisher) Current() *View { return vp.cur }

// Publish folds one write batch — the assignments AddPapers returned —
// into a fresh immutable View and returns it. It must be called with
// the assignments of every paper ingested since the previous Publish,
// in ingest order; the write's touch set is exactly the assigned
// vertices (papers and edges only ever change there), so that is all
// Publish copies.
func (vp *ViewPublisher) Publish(batches [][]Assignment) *View {
	prev := vp.cur
	pl := vp.pl
	gcn := pl.GCN

	// Slot table: append the new papers' slots (append-only sharing).
	for _, as := range batches {
		for _, a := range as {
			vp.slotVert = append(vp.slotVert, int32(a.Vertex))
		}
		vp.slotOff = append(vp.slotOff, int32(len(vp.slotVert)))
	}

	// New vertices: extend the name column and index them under their
	// name (created vertices are also in the assigned touch set below).
	// The previous view's delta map is copied at most once per publish;
	// later changes mutate the private copy.
	byNameDelta := prev.byNameDelta
	nameCopied := false
	for i := len(vp.names); i < len(gcn.Verts); i++ {
		name := gcn.Verts[i].Name
		vp.names = append(vp.names, name)
		if !nameCopied {
			byNameDelta = make(map[string][]int32, len(prev.byNameDelta)+1)
			for k, ids := range prev.byNameDelta {
				byNameDelta[k] = ids
			}
			nameCopied = true
		}
		cur, ok := byNameDelta[name]
		if !ok {
			cur = prev.byNameBase[name]
		}
		byNameDelta[name] = append(append(make([]int32, 0, len(cur)+1), cur...), int32(i))
	}

	// Touched vertices: fresh paper-set headers (copy-on-write slices,
	// safe to share) and freshly materialized coauthor lists (graph
	// adjacency mutates in place, so it must be copied out here).
	papersDelta := prev.papersDelta
	coauthDelta := prev.coauthDelta
	copied := false
	for _, as := range batches {
		for _, a := range as {
			if !copied {
				papersDelta = copyPapersDelta(prev.papersDelta, len(batches))
				coauthDelta = copyCoauthDelta(prev.coauthDelta, len(batches))
				copied = true
			}
			papersDelta[int32(a.Vertex)] = gcn.Verts[a.Vertex].Papers
			coauthDelta[int32(a.Vertex)] = neighborIDs(gcn, a.Vertex)
		}
	}

	next := &View{
		stats:       vp.statsAt(prev.stats.Epoch + 1),
		corpus:      pl.Corpus,
		extra:       pl.extra,
		slotOff:     vp.slotOff,
		slotVert:    vp.slotVert,
		names:       vp.names,
		papersBase:  prev.papersBase,
		papersDelta: papersDelta,
		coauthBase:  prev.coauthBase,
		coauthDelta: coauthDelta,
		byNameBase:  prev.byNameBase,
		byNameDelta: byNameDelta,
	}
	vp.flatten(next)
	vp.cur = next
	return next
}

// statsAt reads the pipeline's current sizes (writer-locked).
func (vp *ViewPublisher) statsAt(epoch uint64) ServiceStats {
	pl := vp.pl
	return ServiceStats{
		Epoch:          epoch,
		Papers:         corpusLen(pl),
		CorpusPapers:   pl.Corpus.Len(),
		StreamedPapers: len(pl.extra),
		Authors:        len(pl.GCN.Verts),
		Names:          pl.Corpus.NameTable().Len(),
		Edges:          pl.GCN.EdgeCount(),
		Slots:          len(vp.slotVert),
	}
}

// flatten folds any oversized delta into a fresh base so lookups stay
// cheap; bases are rebuilt at most every O(base/flattenDiv) touches.
func (vp *ViewPublisher) flatten(v *View) {
	n := v.stats.Authors
	if len(v.papersDelta) > flattenMin+len(v.papersBase)/flattenDiv {
		base := make([][]bib.PaperID, n)
		copy(base, v.papersBase)
		for id, p := range v.papersDelta {
			base[id] = p
		}
		v.papersBase, v.papersDelta = base, map[int32][]bib.PaperID{}
	}
	if len(v.coauthDelta) > flattenMin+len(v.coauthBase)/flattenDiv {
		base := make([][]int32, n)
		copy(base, v.coauthBase)
		for id, c := range v.coauthDelta {
			base[id] = c
		}
		v.coauthBase, v.coauthDelta = base, map[int32][]int32{}
	}
	if len(v.byNameDelta) > flattenMin+len(v.byNameBase)/flattenDiv {
		base := make(map[string][]int32, len(v.byNameBase)+len(v.byNameDelta))
		for name, ids := range v.byNameBase {
			base[name] = ids
		}
		for name, ids := range v.byNameDelta {
			base[name] = ids
		}
		v.byNameBase, v.byNameDelta = base, map[string][]int32{}
	}
}

func copyPapersDelta(delta map[int32][]bib.PaperID, extra int) map[int32][]bib.PaperID {
	out := make(map[int32][]bib.PaperID, len(delta)+extra)
	for k, v := range delta {
		out[k] = v
	}
	return out
}

func copyCoauthDelta(delta map[int32][]int32, extra int) map[int32][]int32 {
	out := make(map[int32][]int32, len(delta)+extra)
	for k, v := range delta {
		out[k] = v
	}
	return out
}

// neighborIDs materializes the sorted adjacency of vertex v as a
// private slice (graph adjacency mutates in place and cannot be
// shared with lock-free readers).
func neighborIDs(n *Network, v int) []int32 {
	d := n.G.Degree(v)
	if d == 0 {
		return nil
	}
	out := make([]int32, 0, d)
	n.G.VisitNeighbors(v, func(u int) { out = append(out, int32(u)) })
	return out
}

// corpusLen is the total paper count: frozen corpus + streamed.
func corpusLen(pl *Pipeline) int { return pl.Corpus.Len() + len(pl.extra) }
