package core

import (
	"sync"
	"sync/atomic"
	"time"

	"iuad/internal/bib"
	"iuad/internal/faultinject"
)

// This file implements the published read-model behind the serving API
// (iuad.Service): an immutable View that answers author queries without
// any lock, and the ViewPublisher that derives a fresh View from the
// pipeline after each write epoch.
//
// The view is *sharded by name block* (see shard.go): per-author state
// is partitioned into N shardViews, each owned by the shard of the
// author's name, plus a global spine (slot table, name column, and the
// vertex→shard/rank routing columns) shared by every shard. Queries
// fan out lock-free — a read loads ONE atomic composite pointer and
// routes through the spine to the owning shard's immutable state — and
// results merge deterministically: per-shard data is keyed by global
// vertex IDs, so iteration orders (ascending vertex ID within a name,
// ascending neighbor ID, slot order) are exactly the unsharded ones.
//
// Concurrency contract. A View is deeply immutable: once published,
// none of its reachable state is ever written again, so any number of
// goroutines may query it while writers keep mutating the pipeline and
// publishing later epochs. Publishing is pipelined in three stages:
//
//   1. Capture — under the service's serialized write lock, right
//      after core ingest: appends the spine columns and snapshots the
//      write's touch set (COW paper-set headers, materialized
//      coauthor lists, per-shard sequence numbers, stats). O(touch).
//   2. Apply — outside the write lock: folds the capture into each
//      touched shard's base+delta state under that shard's own lock,
//      ordered by the per-shard sequence number. Batches touching
//      disjoint name blocks apply concurrently without contention;
//      only same-shard batches serialize here.
//   3. Assemble — under the (short) assembly lock, ordered by epoch:
//      swaps the touched shard pointers into a copy of the previous
//      composite and publishes it with one atomic store, so readers
//      never observe a torn epoch.
//
// Three sharing disciplines make publishing cheap without breaking
// immutability:
//
//   - Append-only slices (slot table, name and routing columns,
//     streamed papers): the publisher appends to its own backing array
//     and each View holds a length-bounded header. Readers never index
//     past their header's length, and published entries are never
//     overwritten, so sharing one backing array across epochs is
//     race-free even while the publisher appends.
//
//   - Copy-on-write entries (per-vertex paper sets): unionPapers never
//     mutates a slice it returns — growth allocates a fresh slice — so
//     a capture can hold the pipeline's own per-vertex slice headers.
//
//   - Base + delta layering, now per shard: the bulk of a shard's
//     vertex-indexed tables lives in a shared immutable base (indexed
//     by shard-local rank); entries touched since the base was built
//     live in a small immutable delta map re-copied (and occasionally
//     flattened) at each publish. Per-publish cost is proportional to
//     the touched shard's delta — about 1/N of the unsharded cost.

// ServiceStats is the point-in-time summary served by Stats(): the
// epoch it was published at and the sizes of the published network.
type ServiceStats struct {
	// Epoch counts publishes; it increases by exactly one per write
	// batch, so readers can detect progress and tests can assert that
	// no partially-published state is ever observable.
	Epoch uint64 `json:"epoch"`
	// Papers = CorpusPapers + StreamedPapers.
	Papers         int `json:"papers"`
	CorpusPapers   int `json:"corpus_papers"`
	StreamedPapers int `json:"streamed_papers"`
	// Authors is the number of conjectured authors (GCN vertices).
	Authors int `json:"authors"`
	// Names is the number of distinct author-name strings seen.
	Names int `json:"names"`
	// Edges is the number of collaboration edges.
	Edges int `json:"edges"`
	// Slots is the number of assigned author occurrences.
	Slots int `json:"slots"`
	// Shards is the serving partition count (1 = unsharded).
	Shards int `json:"shards"`
}

// shardView is one shard's immutable slice of a published epoch. Its
// vertex-indexed tables are keyed by shard-local rank (the spine's
// vertRank column), so each shard's base arrays are dense and sized by
// the authors it owns, not the whole corpus.
type shardView struct {
	// epoch is the global epoch that last touched this shard; pubs
	// counts the publishes that touched it.
	epoch uint64
	pubs  uint64
	// authors/slots are the vertices and assigned occurrences owned.
	authors int
	slots   int

	papersBase  [][]bib.PaperID // by rank
	papersDelta map[int32][]bib.PaperID

	coauthBase  [][]int32 // by rank; values are global vertex IDs
	coauthDelta map[int32][]int32

	byNameBase  map[string][]int32 // global vertex IDs, ascending
	byNameDelta map[string][]int32
}

// View is one published epoch of the serving read-model: the global
// spine plus one immutable shardView per shard. All methods are safe
// for concurrent use without synchronization; slices returned by
// methods are shared with the view and MUST NOT be mutated.
type View struct {
	stats  ServiceStats
	corpus *bib.Corpus
	extra  []bib.Paper // streamed papers (append-only shared header)

	// slotOff[p]..slotOff[p+1] indexes slotVert for paper p's slots.
	slotOff  []int32 // len = stats.Papers + 1 (append-only shared)
	slotVert []int32 // assigned vertex per slot (append-only shared)

	names []string // per-vertex author name (append-only shared)
	// vertShard/vertRank route a global vertex ID to its owning shard
	// and its dense index there (append-only shared).
	vertShard []uint8
	vertRank  []int32

	shards []*shardView
}

// Epoch returns the publish epoch of this view.
func (v *View) Epoch() uint64 { return v.stats.Epoch }

// Stats returns the sizes of the published network.
func (v *View) Stats() ServiceStats { return v.stats }

// NumVertices returns the number of published authors (vertices).
func (v *View) NumVertices() int { return v.stats.Authors }

// AuthorName returns the name of vertex id, and whether id is a
// published, live vertex. Vertices lost to a partial snapshot recovery
// carry an empty name and report false.
func (v *View) AuthorName(id int) (string, bool) {
	if id < 0 || id >= v.stats.Authors {
		return "", false
	}
	name := v.names[id]
	if name == "" {
		return "", false // dead vertex (lost snapshot segment)
	}
	return name, true
}

// AuthorPapers returns the sorted paper IDs attributed to vertex id.
// The slice is shared with the view; do not mutate.
func (v *View) AuthorPapers(id int) ([]bib.PaperID, bool) {
	if id < 0 || id >= v.stats.Authors {
		return nil, false
	}
	sv := v.shards[v.vertShard[id]]
	r := v.vertRank[id]
	if p, ok := sv.papersDelta[r]; ok {
		return p, true
	}
	if int(r) < len(sv.papersBase) {
		return sv.papersBase[r], true
	}
	return nil, true
}

// Coauthors returns the sorted vertex IDs adjacent to vertex id in the
// published collaboration network. The slice is shared; do not mutate.
func (v *View) Coauthors(id int) ([]int32, bool) {
	if id < 0 || id >= v.stats.Authors {
		return nil, false
	}
	sv := v.shards[v.vertShard[id]]
	r := v.vertRank[id]
	if c, ok := sv.coauthDelta[r]; ok {
		return c, true
	}
	if int(r) < len(sv.coauthBase) {
		return sv.coauthBase[r], true
	}
	return nil, true
}

// AppendCoauthors appends the sorted coauthor vertex IDs of id to buf
// and returns the extended buffer — the append-into-caller-buffer
// variant of Coauthors for read paths that aggregate adjacency across
// many vertices (compiling per-epoch analytics, exporting CSR rows).
// It allocates nothing when buf has capacity.
func (v *View) AppendCoauthors(id int, buf []int32) ([]int32, bool) {
	c, ok := v.Coauthors(id)
	if !ok {
		return buf, false
	}
	return append(buf, c...), true
}

// VerticesOfName returns the ascending vertex IDs carrying the exact
// author name, served from the owning shard's index. The slice is
// shared; do not mutate.
func (v *View) VerticesOfName(name string) []int32 {
	sv := v.shards[ShardOfName(name, len(v.shards))]
	if ids, ok := sv.byNameDelta[name]; ok {
		return ids
	}
	return sv.byNameBase[name]
}

// ResolveSlot returns the vertex the (paper, index) author occurrence
// is assigned to, or false when the slot is outside the published
// epoch (or was lost to a partial snapshot recovery).
func (v *View) ResolveSlot(s Slot) (int, bool) {
	p := int(s.Paper)
	if p < 0 || p >= v.stats.Papers {
		return 0, false
	}
	lo, hi := v.slotOff[p], v.slotOff[p+1]
	if s.Index < 0 || int32(s.Index) >= hi-lo {
		return 0, false
	}
	vert := v.slotVert[lo+int32(s.Index)]
	if vert < 0 {
		return 0, false
	}
	return int(vert), true
}

// PaperMeta resolves a published paper record — corpus papers and
// streamed papers alike. The returned record is immutable.
func (v *View) PaperMeta(id bib.PaperID) (*bib.Paper, bool) {
	if id < 0 || int(id) >= v.stats.Papers {
		return nil, false
	}
	if int(id) < v.stats.CorpusPapers {
		return v.corpus.Paper(id), true
	}
	return &v.extra[int(id)-v.stats.CorpusPapers], true
}

// flattenSlack bounds how large a delta may grow relative to its base
// before a publish folds it into a fresh base: len(delta) is kept under
// flattenMin + len(base)/flattenDiv, so lookup stays O(1) with a small
// constant and per-publish cost stays proportional to the touch set,
// amortized. With sharding the bound applies per shard, so both the
// deltas copied per publish and the bases rebuilt per flatten are ≈1/N
// of the unsharded sizes.
const (
	flattenMin = 64
	flattenDiv = 4
)

// publisherShard is the write-side state of one shard: its apply lock
// and sequencing, the latest built shardView, the owned-count columns
// grown at capture time, and the pending-ingest gauge.
type publisherShard struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals applied under mu
	applied uint64     // last per-shard sequence applied (under mu)
	cur     *shardView // latest built view of this shard (under mu)

	// seq/authors/slots are owned by the capture path (the service's
	// write lock); they are snapshotted into each shardTouch so apply
	// never reads them.
	seq     uint64
	authors int
	slots   int

	// pending gauges routed-but-unpublished batches (lock-free).
	pending atomic.Int64
}

// nameEntry records one vertex created by a capture, for the owning
// shard's byName delta.
type nameEntry struct {
	name string
	vert int32
}

// vertTouch is one touched vertex's captured state: its shard-local
// rank, the COW paper-set header, and a privately copied coauthor
// list (graph adjacency mutates in place and cannot be shared).
type vertTouch struct {
	rank   int32
	papers []bib.PaperID
	coauth []int32
}

// shardTouch is the slice of one capture destined for one shard.
type shardTouch struct {
	shard    int
	seq      uint64 // per-shard apply order
	epoch    uint64 // global epoch of the capture
	authors  int    // owned vertices after this batch
	slots    int    // owned assigned slots after this batch
	newNames []nameEntry
	verts    []vertTouch
}

// PublishCapture is the immutable snapshot of one write batch taken
// under the write lock by Capture; Apply turns it into a published
// View without holding that lock.
type PublishCapture struct {
	epoch uint64
	stats ServiceStats
	extra []bib.Paper

	slotOff   []int32
	slotVert  []int32
	names     []string
	vertShard []uint8
	vertRank  []int32

	touches []*shardTouch // ascending shard index
}

// Epoch returns the epoch this capture publishes.
func (c *PublishCapture) Epoch() uint64 { return c.epoch }

// ViewPublisher derives Views from a pipeline, sharded by name block.
// Capture must run under the owning service's write lock (it reads
// pipeline state and appends the spine); Apply may run concurrently
// from many goroutines — per-shard locks and sequence numbers keep
// application ordered per shard and the assembly lock keeps the
// composite swap ordered per epoch.
type ViewPublisher struct {
	pl  *Pipeline
	n   int // shard count
	cur atomic.Pointer[View]

	// Append-only spine builders (Views hold length-bounded headers);
	// owned by the capture path.
	slotOff   []int32
	slotVert  []int32
	names     []string
	vertShard []uint8
	vertRank  []int32

	epoch uint64 // last captured epoch (owned by the capture path)

	shards []publisherShard

	amu       sync.Mutex // orders composite assembly by epoch
	acond     *sync.Cond
	assembled uint64 // last epoch assembled (under amu)

	// Contention and copy accounting (see ContentionStats).
	ingestWaitNs   atomic.Int64
	applyWaitNs    atomic.Int64
	assembleWaitNs atomic.Int64
	publishes      atomic.Int64
	deltaCopied    atomic.Int64
	flattens       atomic.Int64
}

// NewViewPublisher builds the initial unsharded (N=1) view of pl at
// the given epoch — the compatibility constructor used by tests and
// single-shard services.
func NewViewPublisher(pl *Pipeline, epoch uint64) *ViewPublisher {
	return NewShardedViewPublisher(pl, epoch, 1, nil)
}

// NewShardedViewPublisher builds the initial full view of pl at the
// given epoch, partitioned into NormShards(shards) shards. seeds, when
// non-nil and of matching length, restores per-shard epoch/publish
// counters from a composite snapshot. The initial build is
// O(V + E + slots); every later publish is proportional to the write's
// touch set.
func NewShardedViewPublisher(pl *Pipeline, epoch uint64, shards int, seeds []ShardSeed) *ViewPublisher {
	n := NormShards(shards)
	vp := &ViewPublisher{pl: pl, n: n, epoch: epoch, assembled: epoch}
	vp.acond = sync.NewCond(&vp.amu)
	vp.shards = make([]publisherShard, n)
	for i := range vp.shards {
		ps := &vp.shards[i]
		ps.cond = sync.NewCond(&ps.mu)
	}

	gcn := pl.GCN
	nVerts := len(gcn.Verts)

	papers := corpusLen(pl)
	vp.slotOff = make([]int32, 1, papers+1)
	for pid := 0; pid < papers; pid++ {
		np := len(pl.PaperByID(bib.PaperID(pid)).Authors)
		for idx := 0; idx < np; idx++ {
			vert, ok := gcn.SlotVertex[Slot{Paper: bib.PaperID(pid), Index: idx}]
			if !ok {
				vert = -1
			}
			vp.slotVert = append(vp.slotVert, int32(vert))
		}
		vp.slotOff = append(vp.slotOff, int32(len(vp.slotVert)))
	}

	// Routing spine: shard by name hash, dense rank within the shard.
	// Dead vertices (lost to a partial snapshot recovery; NameID < 0)
	// keep their global ID and rank but are invisible to the name
	// index and the query surface.
	vp.names = make([]string, nVerts)
	vp.vertShard = make([]uint8, nVerts)
	vp.vertRank = make([]int32, nVerts)
	for i := 0; i < nVerts; i++ {
		vert := &gcn.Verts[i]
		name := ""
		if vert.NameID >= 0 {
			name = vert.Name
		}
		sh := ShardOfName(name, n)
		vp.names[i] = name
		vp.vertShard[i] = uint8(sh)
		vp.vertRank[i] = int32(vp.shards[sh].authors)
		vp.shards[sh].authors++
	}

	views := make([]*shardView, n)
	for sh := range views {
		views[sh] = &shardView{
			epoch:       epoch,
			authors:     vp.shards[sh].authors,
			papersBase:  make([][]bib.PaperID, vp.shards[sh].authors),
			papersDelta: map[int32][]bib.PaperID{},
			coauthBase:  make([][]int32, vp.shards[sh].authors),
			coauthDelta: map[int32][]int32{},
			byNameBase:  map[string][]int32{},
			byNameDelta: map[string][]int32{},
		}
	}
	// All adjacency rows are carved out of one slab: two allocations for
	// the whole build instead of one per vertex. Published rows stay
	// immutable — each is capacity-bounded, and a realloc on growth only
	// abandons (never mutates) the old backing array.
	coauthSlab := make([]int32, 0, 2*gcn.G.NumEdges())
	for i := 0; i < nVerts; i++ {
		sv := views[vp.vertShard[i]]
		r := vp.vertRank[i]
		sv.papersBase[r] = gcn.Verts[i].Papers
		if start := len(coauthSlab); gcn.G.Degree(i) > 0 {
			coauthSlab = appendNeighborIDs(gcn, i, coauthSlab)
			sv.coauthBase[r] = coauthSlab[start:len(coauthSlab):len(coauthSlab)]
		}
		if name := vp.names[i]; name != "" {
			sv.byNameBase[name] = append(sv.byNameBase[name], int32(i))
		}
	}
	for _, vert := range vp.slotVert {
		if vert >= 0 {
			vp.shards[vp.vertShard[vert]].slots++
		}
	}
	for sh := range views {
		views[sh].slots = vp.shards[sh].slots
		if len(seeds) == n {
			views[sh].epoch = seeds[sh].Epoch
			views[sh].pubs = seeds[sh].Publishes
		}
		vp.shards[sh].cur = views[sh]
	}

	vp.cur.Store(&View{
		stats:     vp.statsAt(epoch),
		corpus:    pl.Corpus,
		extra:     pl.extra,
		slotOff:   vp.slotOff,
		slotVert:  vp.slotVert,
		names:     vp.names,
		vertShard: vp.vertShard,
		vertRank:  vp.vertRank,
		shards:    views,
	})
	return vp
}

// Current returns the most recently published view.
func (vp *ViewPublisher) Current() *View { return vp.cur.Load() }

// Shards returns the shard count.
func (vp *ViewPublisher) Shards() int { return vp.n }

// CapturedEpoch returns the epoch of the last capture (≥ the published
// epoch while applies are in flight). Must be called under the
// service's write lock.
func (vp *ViewPublisher) CapturedEpoch() uint64 { return vp.epoch }

// Publish folds one write batch into a fresh immutable View
// synchronously: Capture + Apply back to back. It is the single-writer
// convenience used by tests and non-concurrent callers; services that
// want contention-free publishing call Capture under their write lock
// and Apply after releasing it.
func (vp *ViewPublisher) Publish(batches [][]Assignment) *View {
	return vp.Apply(vp.Capture(batches))
}

// Capture snapshots one write batch — the assignments AddPapers
// returned — under the service's write lock. It must be called with
// the assignments of every paper ingested since the previous Capture,
// in ingest order; the write's touch set is exactly the assigned
// vertices (papers and edges only ever change there), so that is all
// it copies. The returned capture is self-contained: Apply needs no
// further access to writer-owned state.
func (vp *ViewPublisher) Capture(batches [][]Assignment) *PublishCapture {
	pl := vp.pl
	gcn := pl.GCN
	vp.epoch++
	c := &PublishCapture{epoch: vp.epoch}

	touched := make(map[int]*shardTouch, 4)
	touch := func(sh int) *shardTouch {
		t, ok := touched[sh]
		if !ok {
			t = &shardTouch{shard: sh}
			touched[sh] = t
		}
		return t
	}

	// Slot table: append the new papers' slots (append-only sharing).
	for _, as := range batches {
		for _, a := range as {
			vp.slotVert = append(vp.slotVert, int32(a.Vertex))
		}
		vp.slotOff = append(vp.slotOff, int32(len(vp.slotVert)))
	}

	// New vertices: extend the spine columns and route each to its
	// owning shard's byName delta (created vertices are also in the
	// assigned touch set below).
	for i := len(vp.names); i < len(gcn.Verts); i++ {
		name := gcn.Verts[i].Name
		sh := ShardOfName(name, vp.n)
		ps := &vp.shards[sh]
		vp.names = append(vp.names, name)
		vp.vertShard = append(vp.vertShard, uint8(sh))
		vp.vertRank = append(vp.vertRank, int32(ps.authors))
		ps.authors++
		touch(sh).newNames = append(touch(sh).newNames, nameEntry{name: name, vert: int32(i)})
	}

	// Touched vertices: fresh paper-set headers (copy-on-write slices,
	// safe to share) and freshly materialized coauthor lists. A slot's
	// vertex always carries the slot's name, so the vertex's shard is
	// the name block's shard.
	seen := make(map[int32]bool, 8)
	var coauthSlab []int32 // one backing array for the batch's coauthor rows
	for _, as := range batches {
		for _, a := range as {
			sh := int(vp.vertShard[a.Vertex])
			vp.shards[sh].slots++
			if seen[int32(a.Vertex)] {
				continue
			}
			seen[int32(a.Vertex)] = true
			var coauth []int32
			if start := len(coauthSlab); gcn.G.Degree(a.Vertex) > 0 {
				coauthSlab = appendNeighborIDs(gcn, a.Vertex, coauthSlab)
				coauth = coauthSlab[start:len(coauthSlab):len(coauthSlab)]
			}
			touch(sh).verts = append(touch(sh).verts, vertTouch{
				rank:   vp.vertRank[a.Vertex],
				papers: gcn.Verts[a.Vertex].Papers,
				coauth: coauth,
			})
		}
	}

	c.touches = make([]*shardTouch, 0, len(touched))
	for sh := 0; sh < vp.n && len(c.touches) < len(touched); sh++ {
		t, ok := touched[sh]
		if !ok {
			continue
		}
		ps := &vp.shards[sh]
		ps.seq++
		t.seq = ps.seq
		t.epoch = c.epoch
		t.authors = ps.authors
		t.slots = ps.slots
		c.touches = append(c.touches, t)
	}

	c.stats = vp.statsAt(c.epoch)
	c.extra = pl.extra
	c.slotOff = vp.slotOff
	c.slotVert = vp.slotVert
	c.names = vp.names
	c.vertShard = vp.vertShard
	c.vertRank = vp.vertRank
	return c
}

// Apply folds a capture into the touched shards (per-shard locks,
// ordered by per-shard sequence) and assembles + publishes the
// composite view (assembly lock, ordered by epoch). Safe to call from
// any goroutine; it does not touch writer-owned state.
func (vp *ViewPublisher) Apply(c *PublishCapture) *View {
	built := make([]*shardView, len(c.touches))
	for i, t := range c.touches {
		built[i] = vp.applyShard(t)
	}
	return vp.assemble(c, built)
}

// applyShard builds the touched shard's next immutable shardView from
// its previous one plus the capture's slice, under the shard's lock.
func (vp *ViewPublisher) applyShard(t *shardTouch) *shardView {
	ps := &vp.shards[t.shard]
	start := time.Now()
	ps.mu.Lock()
	vp.applyWaitNs.Add(int64(time.Since(start)))
	for ps.applied+1 != t.seq {
		ps.cond.Wait()
	}
	// Chaos point: a stalled hook here is the "slow shard" — it holds
	// this shard's apply lock (queueing same-shard publishes behind
	// it) while readers, who never take shard locks, keep serving the
	// last published composite.
	faultinject.Fire(faultinject.ShardApplyStall)
	prev := ps.cur
	next := &shardView{
		epoch:       t.epoch,
		pubs:        prev.pubs + 1,
		authors:     t.authors,
		slots:       t.slots,
		papersBase:  prev.papersBase,
		papersDelta: prev.papersDelta,
		coauthBase:  prev.coauthBase,
		coauthDelta: prev.coauthDelta,
		byNameBase:  prev.byNameBase,
		byNameDelta: prev.byNameDelta,
	}
	if len(t.newNames) > 0 {
		delta := make(map[string][]int32, len(prev.byNameDelta)+len(t.newNames))
		for k, ids := range prev.byNameDelta {
			delta[k] = ids
		}
		vp.deltaCopied.Add(int64(len(prev.byNameDelta)))
		for _, ne := range t.newNames {
			cur, ok := delta[ne.name]
			if !ok {
				cur = prev.byNameBase[ne.name]
			}
			delta[ne.name] = append(append(make([]int32, 0, len(cur)+1), cur...), ne.vert)
		}
		next.byNameDelta = delta
	}
	if len(t.verts) > 0 {
		pd := make(map[int32][]bib.PaperID, len(prev.papersDelta)+len(t.verts))
		for k, p := range prev.papersDelta {
			pd[k] = p
		}
		cd := make(map[int32][]int32, len(prev.coauthDelta)+len(t.verts))
		for k, co := range prev.coauthDelta {
			cd[k] = co
		}
		vp.deltaCopied.Add(int64(len(prev.papersDelta) + len(prev.coauthDelta)))
		for _, vt := range t.verts {
			pd[vt.rank] = vt.papers
			cd[vt.rank] = vt.coauth
		}
		next.papersDelta, next.coauthDelta = pd, cd
	}
	vp.flattenShard(next)
	ps.cur = next
	ps.applied = t.seq
	ps.cond.Broadcast()
	ps.mu.Unlock()
	return next
}

// assemble swaps the freshly built shard views into a copy of the
// previous composite and publishes it, in epoch order, with the atomic
// store inside the critical section so a later epoch can never be
// overwritten by an earlier one.
func (vp *ViewPublisher) assemble(c *PublishCapture, built []*shardView) *View {
	// Chaos point: delays every epoch publish before any assembly
	// lock is taken — the injected "publish is slow" fault the ingest
	// queue must absorb by shedding load, not by growing unboundedly.
	faultinject.Fire(faultinject.PublishDelay)
	start := time.Now()
	vp.amu.Lock()
	vp.assembleWaitNs.Add(int64(time.Since(start)))
	for vp.assembled+1 != c.epoch {
		vp.acond.Wait()
	}
	prev := vp.cur.Load()
	shards := make([]*shardView, len(prev.shards))
	copy(shards, prev.shards)
	for i, t := range c.touches {
		shards[t.shard] = built[i]
	}
	v := &View{
		stats:     c.stats,
		corpus:    vp.pl.Corpus,
		extra:     c.extra,
		slotOff:   c.slotOff,
		slotVert:  c.slotVert,
		names:     c.names,
		vertShard: c.vertShard,
		vertRank:  c.vertRank,
		shards:    shards,
	}
	vp.cur.Store(v)
	vp.publishes.Add(1)
	vp.assembled = c.epoch
	vp.acond.Broadcast()
	vp.amu.Unlock()
	return v
}

// Sync blocks until every capture up to epoch has been assembled and
// published — the barrier snapshotting uses so per-shard counters in
// the manifest match the saved pipeline state.
func (vp *ViewPublisher) Sync(epoch uint64) {
	vp.amu.Lock()
	for vp.assembled < epoch {
		vp.acond.Wait()
	}
	vp.amu.Unlock()
}

// RouteBegin routes a batch: it computes the set of shards the batch's
// author names hash to and raises their pending gauges (lock-free),
// returning the function that lowers them once the batch is published
// (or abandoned). The per-shard count is the number of the batch's
// papers touching that shard.
func (vp *ViewPublisher) RouteBegin(batch []bib.Paper) func() {
	if len(batch) == 0 {
		return func() {}
	}
	counts := make([]int64, vp.n)
	mark := make([]int, vp.n)
	for pi := range batch {
		for _, name := range batch[pi].Authors {
			sh := ShardOfName(name, vp.n)
			if mark[sh] != pi+1 {
				mark[sh] = pi + 1
				counts[sh]++
			}
		}
	}
	for sh, cnt := range counts {
		if cnt > 0 {
			vp.shards[sh].pending.Add(cnt)
		}
	}
	return func() {
		for sh, cnt := range counts {
			if cnt > 0 {
				vp.shards[sh].pending.Add(-cnt)
			}
		}
	}
}

// ShardInfos reports the per-shard serving summaries of the current
// view, ascending by shard index (the deterministic merge order).
func (vp *ViewPublisher) ShardInfos() []ShardInfo {
	v := vp.cur.Load()
	out := make([]ShardInfo, len(v.shards))
	for i, sv := range v.shards {
		out[i] = ShardInfo{
			Shard:     i,
			Epoch:     sv.epoch,
			Publishes: sv.pubs,
			Authors:   sv.authors,
			Slots:     sv.slots,
			Pending:   vp.shards[i].pending.Load(),
		}
	}
	return out
}

// ShardSeeds returns the per-shard epoch/publish counters of the
// current view, for the composite snapshot manifest. Call Sync first
// so in-flight applies are reflected.
func (vp *ViewPublisher) ShardSeeds() []ShardSeed {
	v := vp.cur.Load()
	out := make([]ShardSeed, len(v.shards))
	for i, sv := range v.shards {
		out[i] = ShardSeed{Epoch: sv.epoch, Publishes: sv.pubs}
	}
	return out
}

// AddIngestWait accrues time a writer spent waiting for the serialized
// core-ingest lock (reported in ContentionStats).
func (vp *ViewPublisher) AddIngestWait(ns int64) { vp.ingestWaitNs.Add(ns) }

// Contention returns the cumulative write-path contention and copy
// accounting.
func (vp *ViewPublisher) Contention() ContentionStats {
	return ContentionStats{
		Shards:             vp.n,
		Publishes:          vp.publishes.Load(),
		IngestWaitNs:       vp.ingestWaitNs.Load(),
		ApplyWaitNs:        vp.applyWaitNs.Load(),
		AssembleWaitNs:     vp.assembleWaitNs.Load(),
		DeltaEntriesCopied: vp.deltaCopied.Load(),
		Flattens:           vp.flattens.Load(),
	}
}

// statsAt reads the pipeline's current sizes (capture path; requires
// the service's write lock).
func (vp *ViewPublisher) statsAt(epoch uint64) ServiceStats {
	pl := vp.pl
	return ServiceStats{
		Epoch:          epoch,
		Papers:         corpusLen(pl),
		CorpusPapers:   pl.Corpus.Len(),
		StreamedPapers: len(pl.extra),
		Authors:        len(pl.GCN.Verts),
		Names:          pl.Corpus.NameTable().Len(),
		Edges:          pl.GCN.EdgeCount(),
		Slots:          len(vp.slotVert),
		Shards:         vp.n,
	}
}

// flattenShard folds any oversized delta of one shard into a fresh
// base so lookups stay cheap; bases are rebuilt at most every
// O(base/flattenDiv) touches, and each base is only the shard's own
// slice of the corpus.
func (vp *ViewPublisher) flattenShard(sv *shardView) {
	n := sv.authors
	if len(sv.papersDelta) > flattenMin+len(sv.papersBase)/flattenDiv {
		base := make([][]bib.PaperID, n)
		copy(base, sv.papersBase)
		for r, p := range sv.papersDelta {
			base[r] = p
		}
		sv.papersBase, sv.papersDelta = base, map[int32][]bib.PaperID{}
		vp.flattens.Add(1)
	}
	if len(sv.coauthDelta) > flattenMin+len(sv.coauthBase)/flattenDiv {
		base := make([][]int32, n)
		copy(base, sv.coauthBase)
		for r, c := range sv.coauthDelta {
			base[r] = c
		}
		sv.coauthBase, sv.coauthDelta = base, map[int32][]int32{}
		vp.flattens.Add(1)
	}
	if len(sv.byNameDelta) > flattenMin+len(sv.byNameBase)/flattenDiv {
		base := make(map[string][]int32, len(sv.byNameBase)+len(sv.byNameDelta))
		for name, ids := range sv.byNameBase {
			base[name] = ids
		}
		for name, ids := range sv.byNameDelta {
			base[name] = ids
		}
		sv.byNameBase, sv.byNameDelta = base, map[string][]int32{}
		vp.flattens.Add(1)
	}
}

// appendNeighborIDs materializes the sorted adjacency of vertex v into
// buf and returns the extended buffer (graph adjacency mutates in place
// and cannot be shared with lock-free readers). Callers carve per-vertex
// rows out of one capture-owned slab instead of allocating a fresh slice
// per call; carved rows must be capacity-bounded (three-index sliced) so
// later appends can never write into a published row.
func appendNeighborIDs(n *Network, v int, buf []int32) []int32 {
	return n.G.AppendNeighbors(v, buf)
}

// corpusLen is the total paper count: frozen corpus + streamed.
func corpusLen(pl *Pipeline) int { return pl.Corpus.Len() + len(pl.extra) }
