package core

import (
	"fmt"
	"sort"

	"iuad/internal/bib"
	"iuad/internal/graph"
	"iuad/internal/intern"
)

// Slot identifies one author occurrence: the Index-th name in the
// co-author list of Paper. A slot is one physical person by definition,
// so slots are the atoms of disambiguation.
type Slot struct {
	Paper bib.PaperID
	Index int
}

// Vertex is a conjectured author in the SCN/GCN: a name plus the set of
// papers attributed to that author so far.
type Vertex struct {
	ID int
	// NameID is the interned author name (the hot-path key); Name is its
	// string form, kept at the API boundary for callers and reports.
	NameID intern.ID
	Name   string
	// Papers is sorted ascending and duplicate-free.
	Papers []bib.PaperID
	// Isolated marks stage-1 vertices not covered by any stable relation.
	Isolated bool
}

// Network is a collaboration network under construction: vertices with
// name-aware indexes, an undirected graph over vertex IDs, per-edge paper
// sets, and the slot → vertex assignment that drives evaluation.
type Network struct {
	Corpus *bib.Corpus
	Verts  []Vertex
	G      *graph.Graph
	// names is the corpus author-name table (shared, grown only by the
	// incremental path).
	names *intern.Table
	// byName maps an interned name to the IDs of its vertices, ascending.
	// For frozen corpus names, ascending index order is lexicographic
	// name order (intern.Build assigns sorted ranks).
	byName [][]int
	// SlotVertex maps every author slot to its vertex.
	SlotVertex map[Slot]int
	// EdgePapers maps a (lo,hi) vertex pair to the papers their authors
	// co-wrote.
	EdgePapers map[[2]int][]bib.PaperID
}

func newNetwork(corpus *bib.Corpus) *Network {
	return &Network{
		Corpus:     corpus,
		G:          graph.New(0),
		names:      corpus.NameTable(),
		byName:     make([][]int, corpus.NameTable().Len()),
		SlotVertex: make(map[Slot]int),
		EdgePapers: make(map[[2]int][]bib.PaperID),
	}
}

// addVertex creates a vertex for name and returns its ID. Prefer
// addVertexID on paths that already hold the interned name.
func (n *Network) addVertex(name string, isolated bool) int {
	return n.addVertexID(n.names.Intern(name), isolated)
}

// addVertexID creates a vertex for the interned name nid.
func (n *Network) addVertexID(nid intern.ID, isolated bool) int {
	id := n.G.AddVertex()
	n.Verts = append(n.Verts, Vertex{ID: id, NameID: nid, Name: n.names.String(nid), Isolated: isolated})
	for int(nid) >= len(n.byName) {
		n.byName = append(n.byName, nil)
	}
	n.byName[nid] = append(n.byName[nid], id)
	return id
}

// addEdge records the collaboration edge (u,v) carrying papers. It also
// folds the papers into both vertices' paper sets.
func (n *Network) addEdge(u, v int, papers []bib.PaperID) {
	if u == v {
		panic(fmt.Sprintf("core: self-edge on vertex %d (%s)", u, n.Verts[u].Name))
	}
	if !sort.SliceIsSorted(papers, func(i, j int) bool { return papers[i] < papers[j] }) {
		papers = sortedPaperIDs(papers)
	}
	n.G.AddEdge(u, v)
	key := edgeKey(u, v)
	n.EdgePapers[key] = unionPapers(n.EdgePapers[key], papers)
	n.Verts[u].Papers = unionPapers(n.Verts[u].Papers, papers)
	n.Verts[v].Papers = unionPapers(n.Verts[v].Papers, papers)
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// unionPapers merges two sorted unique PaperID slices. When b ⊆ a the
// input slice is returned unchanged — contraction and relation recovery
// mostly re-union papers that are already present, and the no-op case
// must not allocate.
func unionPapers(a, b []bib.PaperID) []bib.PaperID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]bib.PaperID(nil), b...)
	}
	if containsAllPapers(a, b) {
		return a
	}
	out := make([]bib.PaperID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// containsAllPapers reports whether every element of sorted-unique b is
// present in sorted-unique a, via one two-pointer scan.
func containsAllPapers(a, b []bib.PaperID) bool {
	if len(b) > len(a) {
		return false
	}
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
		i++
	}
	return true
}

// VertexCount returns the number of vertices.
func (n *Network) VertexCount() int { return len(n.Verts) }

// EdgeCount returns the number of collaboration edges.
func (n *Network) EdgeCount() int { return n.G.NumEdges() }

// VerticesOf returns the vertex IDs carrying name.
func (n *Network) VerticesOf(name string) []int {
	id, ok := n.names.Lookup(name)
	if !ok {
		return nil
	}
	return n.VerticesOfID(id)
}

// VerticesOfID returns the vertex IDs carrying the interned name id.
func (n *Network) VerticesOfID(id intern.ID) []int {
	if id < 0 || int(id) >= len(n.byName) {
		return nil
	}
	return n.byName[id]
}

// ClusterOfSlot returns the vertex assigned to slot, or -1.
func (n *Network) ClusterOfSlot(s Slot) int {
	if v, ok := n.SlotVertex[s]; ok {
		return v
	}
	return -1
}

// Validate checks internal consistency; it is used by tests and the
// property suite, not by the hot path.
func (n *Network) Validate() error {
	for nid, ids := range n.byName {
		for _, id := range ids {
			if id < 0 || id >= len(n.Verts) {
				return fmt.Errorf("core: byName[%d] has bad id %d", nid, id)
			}
			if n.Verts[id].NameID != intern.ID(nid) {
				return fmt.Errorf("core: vertex %d named %q listed under name id %d",
					id, n.Verts[id].Name, nid)
			}
			if n.Verts[id].Name != n.names.String(intern.ID(nid)) {
				return fmt.Errorf("core: vertex %d name %q disagrees with table %q",
					id, n.Verts[id].Name, n.names.String(intern.ID(nid)))
			}
		}
	}
	for s, v := range n.SlotVertex {
		if v < 0 || v >= len(n.Verts) {
			return fmt.Errorf("core: slot %+v assigned to bad vertex %d", s, v)
		}
		if int(s.Paper) >= n.Corpus.Len() {
			continue // incrementally added paper; lives outside the corpus
		}
		p := n.Corpus.Paper(s.Paper)
		if s.Index < 0 || s.Index >= len(p.Authors) {
			return fmt.Errorf("core: slot %+v out of range", s)
		}
		if p.Authors[s.Index] != n.Verts[v].Name {
			return fmt.Errorf("core: slot %+v (name %q) assigned to vertex named %q",
				s, p.Authors[s.Index], n.Verts[v].Name)
		}
	}
	for i := range n.Verts {
		ps := n.Verts[i].Papers
		for j := 1; j < len(ps); j++ {
			if ps[j] <= ps[j-1] {
				return fmt.Errorf("core: vertex %d papers not sorted-unique", i)
			}
		}
	}
	return nil
}

// SlotsOfPaper enumerates the slots of paper p.
func SlotsOfPaper(p *bib.Paper) []Slot {
	out := make([]Slot, len(p.Authors))
	for i := range p.Authors {
		out[i] = Slot{Paper: p.ID, Index: i}
	}
	return out
}

// sortedVertexPapers returns a defensive sorted copy (test helper).
func sortedVertexPapers(v *Vertex) []bib.PaperID {
	return sortedPaperIDs(v.Papers)
}

func sortedPaperIDs(ids []bib.PaperID) []bib.PaperID {
	out := append([]bib.PaperID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
