package core

import (
	"testing"

	"iuad/internal/bib"
)

// TestPipelinePartitionProperty checks the structural invariants the GCN
// must satisfy regardless of merge quality, across several seeds:
//
//  1. Every author slot is assigned to exactly one vertex of its name.
//  2. A vertex's paper set is exactly the set of papers whose slots
//     resolve to it (the slot → vertex map is a partition refinement of
//     the paper sets).
//  3. Recovered edges only connect vertices that actually share a paper.
func TestPipelinePartitionProperty(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		d := testDataset(seed)
		pl, err := Run(d.Corpus, fastCoreConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		net := pl.GCN
		if err := net.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Invariant 2: reconstruct vertex paper sets from slots.
		fromSlots := make(map[int]map[bib.PaperID]struct{})
		for i := 0; i < d.Corpus.Len(); i++ {
			p := d.Corpus.Paper(bib.PaperID(i))
			for idx := range p.Authors {
				v := net.ClusterOfSlot(Slot{Paper: p.ID, Index: idx})
				if v < 0 {
					t.Fatalf("seed %d: unassigned slot (%d,%d)", seed, i, idx)
				}
				if net.Verts[v].Name != p.Authors[idx] {
					t.Fatalf("seed %d: slot name mismatch", seed)
				}
				if fromSlots[v] == nil {
					fromSlots[v] = map[bib.PaperID]struct{}{}
				}
				fromSlots[v][p.ID] = struct{}{}
			}
		}
		for v := range net.Verts {
			papers := net.Verts[v].Papers
			slotSet := fromSlots[v]
			if len(slotSet) != len(papers) {
				t.Fatalf("seed %d: vertex %d papers=%d but %d slot papers",
					seed, v, len(papers), len(slotSet))
			}
			for _, pid := range papers {
				if _, ok := slotSet[pid]; !ok {
					t.Fatalf("seed %d: vertex %d carries paper %d with no slot",
						seed, v, pid)
				}
			}
		}

		// Invariant 3: every recovered edge's papers contain both
		// endpoints' names.
		for key, papers := range net.EdgePapers {
			nu := net.Verts[key[0]].Name
			nv := net.Verts[key[1]].Name
			for _, pid := range papers {
				p := d.Corpus.Paper(pid)
				if !p.HasAuthor(nu) || !p.HasAuthor(nv) {
					t.Fatalf("seed %d: edge %v paper %d lacks endpoint names",
						seed, key, pid)
				}
			}
		}
	}
}

// TestIncrementalNewNames streams papers whose author names do not exist
// in the corpus at all: every slot must create a fresh vertex.
func TestIncrementalNewNames(t *testing.T) {
	d := testDataset(8)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	as, err := pl.AddPaper(bib.Paper{
		Title: "Entirely New Team", Venue: "NEWVENUE", Year: 2021,
		Authors: []string{"Zz Unseen", "Qq Unknown"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		if !a.Created {
			t.Fatalf("unseen name attached to existing vertex: %+v", a)
		}
	}
	// The two fresh vertices are linked by the recovered relation.
	if !pl.GCN.G.HasEdge(as[0].Vertex, as[1].Vertex) {
		t.Fatal("recovered relation missing between new vertices")
	}
	// A second paper by the same new pair should now attach to them:
	// their names exist, and the pair has history.
	as2, err := pl.AddPaper(bib.Paper{
		Title: "Entirely New Team Strikes Again", Venue: "NEWVENUE", Year: 2022,
		Authors: []string{"Zz Unseen", "Qq Unknown"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as2) != 2 {
		t.Fatalf("assignments=%d", len(as2))
	}
}
