package core

import (
	"math"
	"testing"

	"iuad/internal/bib"
	"iuad/internal/eval"
	"iuad/internal/synth"
)

// testDataset generates a small labeled corpus for pipeline tests. The
// higher repeat bias compensates for the small world (cf.
// experiments.QuickOptions).
func testDataset(seed int64) *synth.Dataset {
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.Authors = 500
	cfg.Communities = 12
	cfg.Vocabulary = 500
	cfg.TopicWordsPerCommunity = 40
	cfg.RepeatCollabBias = 0.75
	return synth.Generate(cfg)
}

// fastCoreConfig shrinks the embedding training for test speed.
func fastCoreConfig() Config {
	cfg := DefaultConfig()
	cfg.Embedding.Dim = 24
	cfg.Embedding.Epochs = 2
	cfg.SampleRate = 0.5 // small corpora need more training pairs
	return cfg
}

// metricsOf evaluates a network's slot assignment over the given names.
func metricsOf(corpus *bib.Corpus, net *Network, names []string) eval.Metrics {
	var pc eval.PairCounts
	for _, name := range names {
		var ins []eval.Instance
		for _, pid := range corpus.PapersWithName(name) {
			p := corpus.Paper(pid)
			idx := p.AuthorIndex(name)
			cluster := net.ClusterOfSlot(Slot{Paper: pid, Index: idx})
			ins = append(ins, eval.Instance{Cluster: cluster, Truth: int(p.TruthAt(idx))})
		}
		pc.AddName(ins)
	}
	return pc.Metrics()
}

func TestRunPipelineEndToEnd(t *testing.T) {
	d := testDataset(23)
	names := d.AmbiguousNames(2)
	if len(names) < 5 {
		t.Fatalf("only %d ambiguous names", len(names))
	}
	cfg := fastCoreConfig()
	pl, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.SCN.Validate(); err != nil {
		t.Fatalf("SCN invalid: %v", err)
	}
	if err := pl.GCN.Validate(); err != nil {
		t.Fatalf("GCN invalid: %v", err)
	}

	scnM := metricsOf(d.Corpus, pl.SCN, names)
	gcnM := metricsOf(d.Corpus, pl.GCN, names)
	t.Logf("SCN: %v", scnM)
	t.Logf("GCN: %v", gcnM)

	// Table IV shape: stage 1 is high precision / low recall; stage 2
	// lifts recall substantially while precision stays in the same band.
	if scnM.MicroP < 0.8 {
		t.Fatalf("SCN precision=%.3f, want ≥0.8 (stage-1 guarantee)", scnM.MicroP)
	}
	if gcnM.MicroR < scnM.MicroR+0.1 {
		t.Fatalf("GCN recall=%.3f did not improve over SCN recall=%.3f by ≥0.1",
			gcnM.MicroR, scnM.MicroR)
	}
	if gcnM.MicroP < scnM.MicroP-0.25 {
		t.Fatalf("GCN precision=%.3f collapsed from SCN precision=%.3f",
			gcnM.MicroP, scnM.MicroP)
	}
	if gcnM.MicroF <= scnM.MicroF {
		t.Fatalf("GCN F1=%.3f not above SCN F1=%.3f", gcnM.MicroF, scnM.MicroF)
	}

	// Every slot must be assigned in the GCN.
	for i := 0; i < d.Corpus.Len(); i++ {
		p := d.Corpus.Paper(bib.PaperID(i))
		for idx := range p.Authors {
			if pl.GCN.ClusterOfSlot(Slot{Paper: p.ID, Index: idx}) < 0 {
				t.Fatalf("unassigned GCN slot (%d,%d)", i, idx)
			}
		}
	}
}

func TestRemergeAtExtremes(t *testing.T) {
	d := testDataset(22)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	// +inf threshold: nothing merges; the GCN vertex count equals SCN's.
	high := pl.RemergeAt(math.Inf(1))
	if high.VertexCount() != pl.SCN.VertexCount() {
		t.Fatalf("δ=+inf vertices=%d, want %d", high.VertexCount(), pl.SCN.VertexCount())
	}
	// -inf threshold: every candidate pair merges; per name at most one
	// vertex among candidates remains.
	low := pl.RemergeAt(math.Inf(-1))
	if low.VertexCount() >= high.VertexCount() {
		t.Fatalf("δ=-inf vertices=%d not below δ=+inf vertices=%d",
			low.VertexCount(), high.VertexCount())
	}
	// Monotonicity: lower δ merges at least as much.
	mid := pl.RemergeAt(0)
	if !(low.VertexCount() <= mid.VertexCount() && mid.VertexCount() <= high.VertexCount()) {
		t.Fatalf("vertex counts not monotone in δ: %d, %d, %d",
			low.VertexCount(), mid.VertexCount(), high.VertexCount())
	}
}

func TestPipelineDeterministic(t *testing.T) {
	d := testDataset(23)
	cfg := fastCoreConfig()
	p1, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.GCN.VertexCount() != p2.GCN.VertexCount() {
		t.Fatalf("nondeterministic GCN size: %d vs %d",
			p1.GCN.VertexCount(), p2.GCN.VertexCount())
	}
	for slot, v1 := range p1.GCN.SlotVertex {
		if v2 := p2.GCN.SlotVertex[slot]; v1 != v2 {
			t.Fatalf("slot %+v assigned differently: %d vs %d", slot, v1, v2)
		}
	}
}

func TestSingleFeatureMask(t *testing.T) {
	d := testDataset(24)
	cfg := fastCoreConfig()
	cfg.FeatureMask = make([]bool, NumSimilarities)
	cfg.FeatureMask[SimCommunity] = true
	pl, err := Run(d.Corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.Model.Specs); got != 1 {
		t.Fatalf("single-feature model has %d specs", got)
	}
	names := d.AmbiguousNames(2)
	scnM := metricsOf(d.Corpus, pl.SCN, names)
	// Fig. 6 protocol: a single similarity must do real work — lift
	// recall above the SCN's — at SOME threshold offset in its sweep.
	improved := false
	for _, delta := range []float64{-60, -40, -25, -15, -8, -4, 0, 4} {
		m := metricsOf(d.Corpus, pl.RemergeAt(delta), names)
		if m.MicroR > scnM.MicroR {
			improved = true
			break
		}
	}
	if !improved {
		t.Fatal("single-feature GCN never improved recall across the δ sweep")
	}
}

func TestIncrementalAddPaper(t *testing.T) {
	d := testDataset(25)
	// Hold out the newest 60 papers (corpus is year-ordered).
	n := d.Corpus.Len()
	held := 60
	base := d.Corpus.Subset(n - held)
	pl, err := Run(base, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := pl.GCN.VertexCount()

	correct, scoredSlots := 0, 0
	for i := n - held; i < n; i++ {
		orig := d.Corpus.Paper(bib.PaperID(i))
		p := bib.Paper{
			Title: orig.Title, Venue: orig.Venue, Year: orig.Year,
			Authors: append([]string(nil), orig.Authors...),
		}
		assignments, err := pl.AddPaper(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(assignments) != len(orig.Authors) {
			t.Fatalf("assignments=%d, authors=%d", len(assignments), len(orig.Authors))
		}
		for idx, a := range assignments {
			if a.Created {
				continue
			}
			// The assigned vertex's majority ground-truth author should
			// match the slot's truth.
			maj := majorityTruth(base, pl.GCN, a.Vertex)
			if maj == int(orig.TruthAt(idx)) {
				correct++
			}
			scoredSlots++
		}
	}
	if scoredSlots == 0 {
		t.Fatal("no held-out slot attached to an existing vertex")
	}
	acc := float64(correct) / float64(scoredSlots)
	t.Logf("incremental attach accuracy=%.3f over %d slots", acc, scoredSlots)
	if acc < 0.75 {
		t.Fatalf("incremental attach accuracy=%.3f, want ≥0.75", acc)
	}
	if pl.GCN.VertexCount() < sizeBefore {
		t.Fatal("vertex count shrank during incremental updates")
	}
	if err := pl.GCN.Validate(); err != nil {
		t.Fatalf("GCN invalid after incremental updates: %v", err)
	}
}

// majorityTruth returns the most common ground-truth author among the
// base-corpus papers of vertex v (for the vertex's own name).
func majorityTruth(corpus *bib.Corpus, net *Network, v int) int {
	name := net.Verts[v].Name
	counts := map[int]int{}
	for _, pid := range net.Verts[v].Papers {
		if int(pid) >= corpus.Len() {
			continue
		}
		p := corpus.Paper(pid)
		idx := p.AuthorIndex(name)
		if idx < 0 {
			continue
		}
		counts[int(p.TruthAt(idx))]++
	}
	best, bestN := -1, 0
	for tr, c := range counts {
		if c > bestN {
			best, bestN = tr, c
		}
	}
	return best
}

func TestAddPaperValidation(t *testing.T) {
	d := testDataset(26)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.AddPaper(bib.Paper{Title: "no authors"}); err == nil {
		t.Fatal("authorless paper accepted")
	}
	var empty Pipeline
	if _, err := empty.AddPaper(bib.Paper{Title: "x", Authors: []string{"A"}}); err == nil {
		t.Fatal("AddPaper before BuildGCN accepted")
	}
}
