package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"iuad/internal/bib"
	"iuad/internal/synth"
)

// streamBatch builds deterministic incremental papers mixing known
// authors, brand-new names, known and new venues.
func streamBatch(d *synth.Dataset, n int) []bib.Paper {
	out := make([]bib.Paper, 0, n)
	for k := 0; k < n; k++ {
		p0 := d.Corpus.Paper(bib.PaperID(k % d.Corpus.Len()))
		p := bib.Paper{
			Title: fmt.Sprintf("batch probe %d on adaptive manifold routing", k),
			Venue: p0.Venue,
			Year:  2021 + k%3,
			Authors: []string{
				p0.Authors[0],
				fmt.Sprintf("Batch Author %d", k%7),
			},
		}
		if k%4 == 1 {
			p.Venue = fmt.Sprintf("BATCHVENUE-%d", k)
		}
		if k%4 == 3 && len(p0.Authors) > 1 {
			p.Authors = []string{p0.Authors[1]}
		}
		out = append(out, p)
	}
	return out
}

// TestAddPapersBatchEquivalence is the batched-ingest contract: one
// AddPapers call must register the whole batch with assignments — and
// resulting network state — bit-identical to the serial AddPaper
// stream, for serial and parallel configurations alike.
func TestAddPapersBatchEquivalence(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := testDataset(17)
			cfg := fastCoreConfig()
			cfg.Workers = workers
			serial, err := Run(d.Corpus, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := Run(d.Corpus, cfg)
			if err != nil {
				t.Fatal(err)
			}
			papers := streamBatch(d, 24)
			var serialOut [][]Assignment
			for _, p := range papers {
				as, err := serial.AddPaper(p)
				if err != nil {
					t.Fatal(err)
				}
				serialOut = append(serialOut, as)
			}
			batchOut, err := batched.AddPapers(context.Background(), papers)
			if err != nil {
				t.Fatal(err)
			}
			if len(batchOut) != len(serialOut) {
				t.Fatalf("batch ingested %d papers, serial %d", len(batchOut), len(serialOut))
			}
			for i := range serialOut {
				for j := range serialOut[i] {
					a, b := serialOut[i][j], batchOut[i][j]
					if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
						math.Float64bits(a.Score) != math.Float64bits(b.Score) {
						t.Fatalf("paper %d slot %d: serial %+v, batch %+v", i, j, a, b)
					}
				}
			}
			if sv, bv := serial.GCN.VertexCount(), batched.GCN.VertexCount(); sv != bv {
				t.Fatalf("vertex counts diverge: %d vs %d", sv, bv)
			}
			if se, be := serial.GCN.EdgeCount(), batched.GCN.EdgeCount(); se != be {
				t.Fatalf("edge counts diverge: %d vs %d", se, be)
			}
			for s, v := range serial.GCN.SlotVertex {
				if bvv, ok := batched.GCN.SlotVertex[s]; !ok || bvv != v {
					t.Fatalf("slot %+v: serial vertex %d, batch %d (ok=%v)", s, v, bvv, ok)
				}
			}
			if err := batched.GCN.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAddPapersContextCancel checks the partial-prefix contract: a
// cancelled context stops the batch between papers, keeps the ingested
// prefix registered, and reports the context error.
func TestAddPapersContextCancel(t *testing.T) {
	d := testDataset(17)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := len(pl.GCN.SlotVertex)
	out, err := pl.AddPapers(ctx, streamBatch(d, 4))
	if err == nil {
		t.Fatal("cancelled batch reported no error")
	}
	if len(out) != 0 {
		t.Fatalf("pre-cancelled context ingested %d papers", len(out))
	}
	if got := len(pl.GCN.SlotVertex); got != before {
		t.Fatalf("slot table grew from %d to %d despite cancellation", before, got)
	}
	// A live context ingests the whole batch.
	out, err = pl.AddPapers(context.Background(), streamBatch(d, 4))
	if err != nil || len(out) != 4 {
		t.Fatalf("live batch: %d papers, err=%v", len(out), err)
	}
}

// TestViewPublisher drives the publisher through enough epochs to
// cross the delta-flatten threshold, checking after every publish that
// the view answers exactly like the pipeline it was derived from and
// that earlier views were not corrupted by later publishes.
func TestViewPublisher(t *testing.T) {
	d := testDataset(17)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp := NewViewPublisher(pl, 0)
	checkView := func(v *View) {
		t.Helper()
		st := v.Stats()
		if st.Authors != len(pl.GCN.Verts) || st.Papers != pl.Corpus.Len()+len(pl.extra) {
			t.Fatalf("stats %+v out of sync with pipeline", st)
		}
		for id := 0; id < st.Authors; id++ {
			name, ok := v.AuthorName(id)
			if !ok || name != pl.GCN.Verts[id].Name {
				t.Fatalf("vertex %d name %q (ok=%v), want %q", id, name, ok, pl.GCN.Verts[id].Name)
			}
			papers, ok := v.AuthorPapers(id)
			if !ok || len(papers) != len(pl.GCN.Verts[id].Papers) {
				t.Fatalf("vertex %d: %d papers, want %d", id, len(papers), len(pl.GCN.Verts[id].Papers))
			}
			for k := range papers {
				if papers[k] != pl.GCN.Verts[id].Papers[k] {
					t.Fatalf("vertex %d paper %d diverges", id, k)
				}
			}
			co, _ := v.Coauthors(id)
			if len(co) != pl.GCN.G.Degree(id) {
				t.Fatalf("vertex %d: %d coauthors, want degree %d", id, len(co), pl.GCN.G.Degree(id))
			}
		}
		for s, want := range pl.GCN.SlotVertex {
			got, ok := v.ResolveSlot(s)
			if !ok || got != want {
				t.Fatalf("slot %+v resolved to %d (ok=%v), want %d", s, got, ok, want)
			}
		}
	}
	checkView(vp.Current())
	if _, ok := vp.Current().ResolveSlot(Slot{Paper: bib.PaperID(pl.Corpus.Len() + 99), Index: 0}); ok {
		t.Fatal("unpublished slot resolved")
	}

	first := vp.Current()
	firstAuthors := first.Stats().Authors
	// Enough single-paper publishes to force delta flattening
	// (flattenMin entries touch well past the threshold).
	papers := streamBatch(d, 2*flattenMin)
	for _, p := range papers {
		as, err := pl.AddPapers(context.Background(), []bib.Paper{p})
		if err != nil {
			t.Fatal(err)
		}
		v := vp.Publish(as)
		if v != vp.Current() {
			t.Fatal("Publish result is not Current")
		}
		checkView(v)
	}
	if got := vp.Current().Epoch(); got != uint64(len(papers)) {
		t.Fatalf("epoch %d after %d publishes", got, len(papers))
	}
	// The epoch-0 view still answers from its own snapshot: stats did
	// not move and no new vertices leaked in.
	if st := first.Stats(); st.Authors != firstAuthors || st.StreamedPapers != 0 {
		t.Fatalf("old view mutated: %+v", st)
	}
	if _, ok := first.ResolveSlot(Slot{Paper: bib.PaperID(pl.Corpus.Len()), Index: 0}); ok {
		t.Fatal("old view resolves a slot published after it")
	}
}
