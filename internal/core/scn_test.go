package core

import (
	"reflect"
	"sort"
	"testing"

	"iuad/internal/bib"
)

// fig2Corpus reproduces the running example of the paper's Fig. 2:
// p1..p8 with the co-author lists shown there.
func fig2Corpus(t *testing.T) *bib.Corpus {
	t.Helper()
	lists := [][]string{
		{"a", "b", "c", "d"}, // p1
		{"a", "c", "d"},      // p2
		{"a", "b", "c"},      // p3
		{"a", "b", "c"},      // p4
		{"b", "e"},           // p5
		{"b", "e"},           // p6
		{"b", "f"},           // p7
		{"b", "g"},           // p8
	}
	c := bib.NewCorpus(len(lists))
	for i, l := range lists {
		c.MustAdd(bib.Paper{Title: "t", Venue: "v", Year: 2000 + i, Authors: l})
	}
	c.Freeze()
	return c
}

// papersOf renders a vertex's paper set as ints for comparison.
func papersOf(v *Vertex) []int {
	out := make([]int, len(v.Papers))
	for i, p := range sortedVertexPapers(v) {
		out[i] = int(p)
	}
	return out
}

// TestBuildSCNFig2 checks the stage-1 output against the paper's own
// running example, vertex by vertex.
func TestBuildSCNFig2(t *testing.T) {
	corpus := fig2Corpus(t)
	scn, err := BuildSCN(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 2 final SCN: a{p1..p4}, b{p1,p3,p4}, c{p1..p4}, d{p1,p2}
	// (stable square with triangles), b{p5,p6}-e{p5,p6}, and isolated
	// b{p7}, b{p8}, f{p7}, g{p8}.
	if got := scn.VertexCount(); got != 10 {
		t.Fatalf("VertexCount=%d, want 10", got)
	}
	if got := scn.EdgeCount(); got != 6 {
		t.Fatalf("EdgeCount=%d, want 6 (a-b,a-c,a-d,b-c,c-d,b-e)", got)
	}

	// Name b must have exactly 4 vertices with the paper sets of Fig. 2.
	bVerts := scn.VerticesOf("b")
	if len(bVerts) != 4 {
		t.Fatalf("vertices of b: %d, want 4", len(bVerts))
	}
	var bSets [][]int
	for _, id := range bVerts {
		bSets = append(bSets, papersOf(&scn.Verts[id]))
	}
	sort.Slice(bSets, func(i, j int) bool {
		return len(bSets[i]) > len(bSets[j]) ||
			(len(bSets[i]) == len(bSets[j]) && bSets[i][0] < bSets[j][0])
	})
	want := [][]int{{0, 2, 3}, {4, 5}, {6}, {7}}
	if !reflect.DeepEqual(bSets, want) {
		t.Fatalf("b paper sets=%v, want %v", bSets, want)
	}

	// a is one vertex covering p1..p4.
	aVerts := scn.VerticesOf("a")
	if len(aVerts) != 1 {
		t.Fatalf("vertices of a: %d, want 1", len(aVerts))
	}
	if got := papersOf(&scn.Verts[aVerts[0]]); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("a papers=%v", got)
	}
	// d is one vertex {p1,p2} thanks to the (a,c,d) triangle.
	dVerts := scn.VerticesOf("d")
	if len(dVerts) != 1 {
		t.Fatalf("vertices of d: %d, want 1", len(dVerts))
	}
	if got := papersOf(&scn.Verts[dVerts[0]]); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("d papers=%v", got)
	}

	// Every slot is assigned, and to a vertex of the right name.
	for i := 0; i < corpus.Len(); i++ {
		p := corpus.Paper(bib.PaperID(i))
		for idx := range p.Authors {
			v := scn.ClusterOfSlot(Slot{Paper: p.ID, Index: idx})
			if v < 0 {
				t.Fatalf("slot (p%d,%d) unassigned", i+1, idx)
			}
		}
	}

	// The stable vertex of b (p1,p3,p4) must not be isolated; b{p7} must.
	for _, id := range bVerts {
		v := &scn.Verts[id]
		switch len(v.Papers) {
		case 3, 2:
			if v.Isolated {
				t.Fatalf("stable b vertex %v marked isolated", papersOf(v))
			}
		case 1:
			if !v.Isolated {
				t.Fatalf("singleton b vertex %v not marked isolated", papersOf(v))
			}
		}
	}
}

// TestBuildSCNNoTriangleSplitsVertices verifies the attachment rule: a
// second stable relation of a name opens a new vertex unless a stable
// triangle supports reuse (Fig. 4 step (iv)).
func TestBuildSCNNoTriangleSplitsVertices(t *testing.T) {
	c := bib.NewCorpus(0)
	// (a,b) stable via q1,q2; (a,z) stable via q3,q4; no (b,z) relation.
	for _, l := range [][]string{{"a", "b"}, {"a", "b"}, {"a", "z"}, {"a", "z"}} {
		c.MustAdd(bib.Paper{Title: "t", Authors: l})
	}
	c.Freeze()
	scn, err := BuildSCN(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scn.VerticesOf("a")); got != 2 {
		t.Fatalf("a vertices=%d, want 2 (no triangle support)", got)
	}
}

// TestBuildSCNSlotConflictMerges verifies that a paper covered by two
// stable relations of the same name merges the two vertices: the slot is
// one physical person.
func TestBuildSCNSlotConflictMerges(t *testing.T) {
	c := bib.NewCorpus(0)
	for _, l := range [][]string{
		{"a", "b", "z"}, // shared paper: (a,b) and (a,z) both cover slot a
		{"a", "b"},
		{"a", "z"},
	} {
		c.MustAdd(bib.Paper{Title: "t", Authors: l})
	}
	c.Freeze()
	scn, err := BuildSCN(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(scn.VerticesOf("a")); got != 1 {
		t.Fatalf("a vertices=%d, want 1 (slot conflict must merge)", got)
	}
	a := scn.VerticesOf("a")[0]
	if got := papersOf(&scn.Verts[a]); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("merged a papers=%v", got)
	}
}

// TestBuildSCNTriangleReusesVertex is Fig. 4 steps (ii)-(iii): a stable
// triangle lets a second relation reuse the existing vertex.
func TestBuildSCNTriangleReusesVertex(t *testing.T) {
	c := bib.NewCorpus(0)
	for _, l := range [][]string{
		{"a", "b"}, {"a", "b"},
		{"a", "c"}, {"a", "c"},
		{"b", "c"}, {"b", "c"},
	} {
		c.MustAdd(bib.Paper{Title: "t", Authors: l})
	}
	c.Freeze()
	scn, err := BuildSCN(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if got := len(scn.VerticesOf(name)); got != 1 {
			t.Fatalf("%s vertices=%d, want 1 (triangle reuse)", name, got)
		}
	}
	if scn.EdgeCount() != 3 {
		t.Fatalf("edges=%d, want 3", scn.EdgeCount())
	}
}

func TestBuildSCNEtaThree(t *testing.T) {
	c := bib.NewCorpus(0)
	for _, l := range [][]string{
		{"a", "b"}, {"a", "b"}, {"a", "b"}, // freq 3
		{"a", "z"}, {"a", "z"}, // freq 2
	} {
		c.MustAdd(bib.Paper{Title: "t", Authors: l})
	}
	c.Freeze()
	cfg := DefaultConfig()
	cfg.Eta = 3
	scn, err := BuildSCN(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only (a,b) survives η=3; the (a,z) papers fall apart into isolated
	// vertices: a{3},a{4},z{3},z{4} plus stable a{0,1,2},b{0,1,2}.
	if got := scn.EdgeCount(); got != 1 {
		t.Fatalf("η=3 edges=%d, want 1", got)
	}
	if got := len(scn.VerticesOf("a")); got != 3 {
		t.Fatalf("η=3 a vertices=%d, want 3", got)
	}
}

func TestBuildSCNRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Eta = 1
	if _, err := BuildSCN(fig2Corpus(t), cfg); err == nil {
		t.Fatal("η=1 accepted")
	}
	cfg = DefaultConfig()
	cfg.SampleRate = 0
	if _, err := BuildSCN(fig2Corpus(t), cfg); err == nil {
		t.Fatal("SampleRate=0 accepted")
	}
	cfg = DefaultConfig()
	cfg.FeatureMask = []bool{true}
	if _, err := BuildSCN(fig2Corpus(t), cfg); err == nil {
		t.Fatal("short FeatureMask accepted")
	}
}
