package core

import (
	"context"
	"fmt"
	"math"
	"slices"

	"iuad/internal/bib"
	"iuad/internal/graph"
	"iuad/internal/intern"
	"iuad/internal/sched"
	"iuad/internal/wlkernel"
)

// Assignment records the incremental decision for one author slot of a
// newly published paper (§V-E).
type Assignment struct {
	Slot Slot
	// Vertex is the GCN vertex the slot was assigned to.
	Vertex int
	// Created is true when no existing vertex reached the threshold and
	// a fresh isolated vertex was created.
	Created bool
	// Score is the winning log-odds matching score (−Inf when no
	// candidate existed).
	Score float64
}

// AddPaper disambiguates a newly published paper against the GCN without
// retraining (§V-E): each author slot is scored against every existing
// same-name vertex with the already-fitted model; the best vertex wins if
// its score reaches δ, otherwise the slot becomes a new isolated vertex.
// The paper is then registered in the network (its collaborative
// relations are added), so subsequent papers see the update.
//
// The paper's ID is assigned by the pipeline and returned via the
// assignments' Slot fields.
//
// A pipeline built from an empty corpus has no fitted model; it accepts
// papers, but with no merge evidence every slot becomes a fresh vertex.
func (pl *Pipeline) AddPaper(p bib.Paper) ([]Assignment, error) {
	if pl.GCN == nil {
		return nil, fmt.Errorf("core: AddPaper before BuildGCN")
	}
	return pl.addPaper(p)
}

// AddPapers is the batched form of AddPaper: it ingests the batch in
// order, producing assignments bit-identical to calling AddPaper once
// per paper (later papers in the batch see the registered state of
// earlier ones, exactly like the serial stream). Batching shares the
// per-ingest machinery across the whole batch — one invalidation pass
// per paper's h-hop neighborhood (multi-source BFS over all new edges
// instead of one walk per assigned vertex), one profile warm-up pass
// over the union of every slot's candidates instead of one per slot,
// and one growth of the stream-side columnar buffers — which is what
// makes high-throughput ingest viable on ambiguous names.
//
// ctx is checked between papers: on cancellation the already-ingested
// prefix stays registered (the returned slice holds its assignments)
// and the context error is returned. A nil ctx means no cancellation.
func (pl *Pipeline) AddPapers(ctx context.Context, batch []bib.Paper) ([][]Assignment, error) {
	if pl.GCN == nil {
		return nil, fmt.Errorf("core: AddPapers before BuildGCN")
	}
	// One growth for the whole batch: the per-paper appends below then
	// stay within capacity (ingest-path allocations are per batch, not
	// per paper).
	pl.extra = slices.Grow(pl.extra, len(batch))
	pl.extraKw = slices.Grow(pl.extraKw, len(batch))
	pl.extraVenue = slices.Grow(pl.extraVenue, len(batch))
	pl.extraYear = slices.Grow(pl.extraYear, len(batch))
	out := make([][]Assignment, 0, len(batch))
	for _, p := range batch {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		as, err := pl.addPaper(p)
		if err != nil {
			return out, err
		}
		out = append(out, as)
	}
	return out, nil
}

// addPaper ingests one paper (shared by AddPaper and AddPapers).
func (pl *Pipeline) addPaper(p bib.Paper) ([]Assignment, error) {
	p.ID = bib.PaperID(pl.Corpus.Len() + len(pl.extra))
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pl.extra = append(pl.extra, p)
	paper := &pl.extra[len(pl.extra)-1]

	// Intern the paper's symbols into the shared tables (deterministic:
	// single goroutine, attribute order) and record its columnar view so
	// the paperSource resolves it like a corpus paper.
	nameIDs := make([]intern.ID, len(paper.Authors))
	for i, a := range paper.Authors {
		nameIDs[i] = pl.Corpus.NameTable().Intern(a)
	}
	venueID := intern.None
	if paper.Venue != "" {
		venueID = pl.Corpus.VenueTable().Intern(paper.Venue)
	}
	kw := bib.Keywords(paper.Title)
	kwIDs := make([]intern.ID, len(kw))
	for i, w := range kw {
		kwIDs[i] = pl.Corpus.WordTable().Intern(w)
	}
	pl.extraKw = append(pl.extraKw, kwIDs)
	pl.extraVenue = append(pl.extraVenue, venueID)
	pl.extraYear = append(pl.extraYear, paper.Year)

	// Warm the profile cache once for the union of every slot's candidate
	// vertices. Slots are independent — co-author names are distinct
	// within one paper (Validate enforces it), so no slot's assignment
	// changes another slot's candidate set — and precomputeProfiles only
	// builds what the cache misses, so assignSlot then scores against
	// already-cached profiles: one parallel warm-up pass per paper
	// instead of one per slot. Profile content is deterministic, so this
	// changes which entries are cached, never a score.
	if w := pl.Cfg.workers(); w > 1 && pl.Model != nil && len(paper.Authors) > 1 {
		pl.inval.centers = pl.inval.centers[:0]
		for idx := range paper.Authors {
			pl.inval.centers = append(pl.inval.centers, pl.GCN.VerticesOfID(nameIDs[idx])...)
		}
		if len(pl.inval.centers) >= minParallelCandidates {
			pl.sim.precomputeProfiles(pl.inval.centers)
		}
	}

	out := make([]Assignment, 0, len(paper.Authors))
	for idx := range paper.Authors {
		slot := Slot{Paper: paper.ID, Index: idx}
		vertex, score, created := pl.assignSlot(paper, idx, nameIDs)
		pl.GCN.SlotVertex[slot] = vertex
		out = append(out, Assignment{Slot: slot, Vertex: vertex, Created: created, Score: score})
	}
	// Register the paper: fold it into each assigned vertex and recover
	// the collaborative relations among the slots.
	for _, a := range out {
		v := &pl.GCN.Verts[a.Vertex]
		v.Papers = unionPapers(v.Papers, []bib.PaperID{paper.ID})
		pl.sim.invalidate(a.Vertex)
	}
	newEdges := false
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[i].Vertex != out[j].Vertex {
				pl.GCN.addEdge(out[i].Vertex, out[j].Vertex, []bib.PaperID{paper.ID})
				newEdges = true
			}
		}
	}
	// New collaboration edges change the WL ego nets (radius h) and
	// triangle lists (radius 1) of every nearby vertex, not just the
	// assigned ones; invalidate the whole affected neighborhood so cached
	// profiles always equal fresh rebuilds. This transparency is what
	// lets snapshots skip the profile cache: a loaded pipeline (cold
	// cache) scores future papers identically to the live one.
	if newEdges {
		radius := pl.Cfg.WLIterations
		if radius < 1 {
			radius = 1 // triangles reach 1 hop even when WL depth is 0
		}
		pl.inval.centers = pl.inval.centers[:0]
		for _, a := range out {
			pl.inval.centers = append(pl.inval.centers, a.Vertex)
		}
		pl.invalidateNeighborhoods(pl.inval.centers, radius)
	}
	return out, nil
}

// minParallelCandidates is the candidate-set size below which fanning
// incremental scoring out over the worker pool costs more than scoring.
const minParallelCandidates = 8

// invalScratch is the reusable state of multi-source profile
// invalidation: an epoch-stamped visited slice (no per-ingest map
// allocation or clearing) plus frontier buffers, shared across every
// ingest of one pipeline. Single-writer, like the rest of the ingest
// path.
type invalScratch struct {
	stamp    []uint32
	epoch    uint32
	frontier []int
	next     []int
	centers  []int // also reused as the candidate-union scratch
}

// invalidateNeighborhoods drops the cached profiles of every vertex
// within the given hop radius (inclusive) of ANY center, via one
// multi-source BFS. The union of per-center balls equals running the
// old single-source walk once per center — same invalidated set — but
// overlapping neighborhoods (the common case: a new paper's assigned
// vertices are all mutually adjacent after registration) are walked
// once instead of once per assigned vertex.
func (pl *Pipeline) invalidateNeighborhoods(centers []int, radius int) {
	s := &pl.inval
	if n := len(pl.GCN.Verts); len(s.stamp) < n {
		grown := make([]uint32, n)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap: stale marks could alias, reset
		clear(s.stamp)
		s.epoch = 1
	}
	s.frontier = s.frontier[:0]
	for _, c := range centers {
		if s.stamp[c] == s.epoch {
			continue
		}
		s.stamp[c] = s.epoch
		pl.sim.invalidate(c)
		s.frontier = append(s.frontier, c)
	}
	for d := 0; d < radius; d++ {
		s.next = s.next[:0]
		for _, v := range s.frontier {
			pl.GCN.G.VisitNeighbors(v, func(u int) {
				if s.stamp[u] == s.epoch {
					return
				}
				s.stamp[u] = s.epoch
				pl.sim.invalidate(u)
				s.next = append(s.next, u)
			})
		}
		s.frontier, s.next = s.next, s.frontier
	}
}

// assignSlot scores one author slot against the existing same-name
// vertices. For ambiguous names carrying many candidate vertices the
// scoring fans out over the worker pool; the argmax reduction stays on
// this goroutine in candidate order (strict >, first maximum wins), so
// ties break identically for every worker count.
func (pl *Pipeline) assignSlot(paper *bib.Paper, idx int, nameIDs []intern.ID) (vertex int, score float64, created bool) {
	candidates := pl.GCN.VerticesOfID(nameIDs[idx])
	bestScore := math.Inf(-1)
	best := -1
	if len(candidates) > 0 && pl.Model != nil {
		// Candidate scoring runs through the compiled scorer with a
		// per-goroutine γ buffer: no model-switch dispatch and no per-
		// candidate slice allocation on the serving hot path.
		scorer := pl.modelScorer()
		temp := pl.tempProfile(paper, idx, nameIDs)
		var scores []float64
		if w := pl.Cfg.workers(); w > 1 && len(candidates) >= minParallelCandidates {
			pl.sim.precomputeProfiles(candidates)
			scores = sched.Map(w, len(candidates), func(k int) float64 {
				full := pl.sim.similaritiesOfProfiles(temp, pl.sim.mustProfile(candidates[k]))
				var gbuf [NumSimilarities]float64
				return scorer.Score(pl.Cfg.gammaInto(full, gbuf[:]))
			})
		} else {
			scores = make([]float64, len(candidates))
			var gbuf [NumSimilarities]float64
			for k, v := range candidates {
				full := pl.sim.similaritiesOfProfiles(temp, pl.sim.profileOf(v))
				scores[k] = scorer.Score(pl.Cfg.gammaInto(full, gbuf[:]))
			}
		}
		for k, v := range candidates {
			if scores[k] > bestScore {
				bestScore, best = scores[k], v
			}
		}
	}
	// va is identical to va_k iff sc_k is both the maximum and ≥ δ
	// (§V-E conditions (1) and (2)).
	if best >= 0 && bestScore >= pl.CalibratedDelta+pl.Cfg.Delta {
		return best, bestScore, false
	}
	iso := pl.GCN.addVertexID(nameIDs[idx], true)
	return iso, bestScore, true
}

// tempProfile builds the single-paper profile of the incoming slot on
// the flat layout. Its structural view is the star of the paper's
// co-author names (the radius-1 collaboration neighborhood the new paper
// establishes); the triangle list is every co-author name pair, sorted
// and deduplicated like a vertex profile's.
func (pl *Pipeline) tempProfile(paper *bib.Paper, idx int, nameIDs []intern.ID) *profile {
	pb := pl.sim.builders.Get().(*profileBuilder)
	p := pl.sim.buildProfile([]bib.PaperID{paper.ID}, pb)
	flat := starFeatures(paper, idx, pl.Cfg.WLIterations, &pb.wlx)
	p.wl = pb.sl.allocLCs(len(flat))
	copy(p.wl, flat)
	p.wlSelfDot = wlkernel.DotFlat(p.wl, p.wl)
	p.degree = len(paper.Authors) - 1
	others := make([]intern.ID, 0, len(nameIDs)-1)
	for i, nid := range nameIDs {
		if i != idx {
			others = append(others, nid)
		}
	}
	pb.tris = pb.tris[:0]
	for i := 0; i < len(others); i++ {
		for j := i + 1; j < len(others); j++ {
			pb.tris = append(pb.tris, makeNamePair(others[i], others[j]))
		}
	}
	slices.SortFunc(pb.tris, cmpNamePair)
	dedup := slices.Compact(pb.tris)
	p.triangles = pb.sl.allocPairs(len(dedup))
	copy(p.triangles, dedup)
	pl.sim.builders.Put(pb)
	return p
}

// starFeatures computes the flat WL feature vector of the star graph
// centered on slot idx with the co-author names as leaves — the
// radius-1 collaboration neighborhood a single new paper establishes.
// The result is backed by the extractor's scratch.
func starFeatures(paper *bib.Paper, idx, h int, wlx *wlkernel.Extractor) []wlkernel.LabelCount {
	n := len(paper.Authors)
	g := graph.New(n)
	labels := make([]uint64, n)
	labels[0] = wlkernel.CenterLabel
	k := 1
	for i, name := range paper.Authors {
		if i == idx {
			continue
		}
		labels[k] = wlkernel.HashLabel(name)
		g.AddEdge(0, k)
		k++
	}
	return wlx.GraphFlat(g, labels, h)
}
