package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"
)

// TestShardOfName pins the placement function: deterministic, in
// range, degenerate at n=1, and actually spreading real-shaped names
// over every shard at modest counts.
func TestShardOfName(t *testing.T) {
	names := make([]string, 0, 512)
	for i := 0; i < 512; i++ {
		names = append(names, fmt.Sprintf("Author Name %d", i))
	}
	for _, n := range []int{1, 2, 4, 8, MaxShards} {
		hit := make([]bool, n)
		for _, name := range names {
			sh := ShardOfName(name, n)
			if sh < 0 || sh >= n {
				t.Fatalf("ShardOfName(%q, %d) = %d out of range", name, n, sh)
			}
			if sh != ShardOfName(name, n) {
				t.Fatalf("ShardOfName(%q, %d) not deterministic", name, n)
			}
			hit[sh] = true
		}
		if n == 1 && ShardOfName("anything", 1) != 0 {
			t.Fatal("n=1 must place everything on shard 0")
		}
		if n <= 8 {
			for sh, ok := range hit {
				if !ok {
					t.Fatalf("no name of %d landed on shard %d of %d", len(names), sh, n)
				}
			}
		}
	}
	if NormShards(0) != 1 || NormShards(-3) != 1 || NormShards(5) != 5 || NormShards(100000) != MaxShards {
		t.Fatal("NormShards clamp broken")
	}
}

// TestShardedViewMatchesPipeline builds the composite view at several
// shard counts and checks every vertex, name listing, and slot answers
// exactly as the pipeline — the fan-out/merge layer must be invisible.
func TestShardedViewMatchesPipeline(t *testing.T) {
	d := testDataset(21)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		vp := NewShardedViewPublisher(pl, 0, shards, nil)
		v := vp.Current()
		if got := v.Stats().Shards; got != shards {
			t.Fatalf("stats report %d shards, want %d", got, shards)
		}
		for id := range pl.GCN.Verts {
			vert := &pl.GCN.Verts[id]
			name, ok := v.AuthorName(id)
			if !ok || name != vert.Name {
				t.Fatalf("shards=%d: AuthorName(%d) = %q/%v, want %q", shards, id, name, ok, vert.Name)
			}
			papers, _ := v.AuthorPapers(id)
			if len(papers) != len(vert.Papers) {
				t.Fatalf("shards=%d: vertex %d papers %d, want %d", shards, id, len(papers), len(vert.Papers))
			}
			for i := range papers {
				if papers[i] != vert.Papers[i] {
					t.Fatalf("shards=%d: vertex %d paper %d differs", shards, id, i)
				}
			}
			nbrs, _ := v.Coauthors(id)
			want := appendNeighborIDs(pl.GCN, id, nil)
			if len(nbrs) != len(want) {
				t.Fatalf("shards=%d: vertex %d degree %d, want %d", shards, id, len(nbrs), len(want))
			}
			for i := range nbrs {
				if nbrs[i] != want[i] {
					t.Fatalf("shards=%d: vertex %d neighbor %d differs", shards, id, i)
				}
			}
			ids := v.VerticesOfName(vert.Name)
			found := false
			for _, x := range ids {
				if int(x) == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("shards=%d: VerticesOfName(%q) misses vertex %d", shards, vert.Name, id)
			}
		}
		for slot, want := range pl.GCN.SlotVertex {
			got, ok := v.ResolveSlot(slot)
			if !ok || got != want {
				t.Fatalf("shards=%d: ResolveSlot(%+v) = %d/%v, want %d", shards, slot, got, ok, want)
			}
		}
	}
}

// TestShardedPublishEquivalence streams the same batches through
// publishers at every shard count and requires the views to answer
// identically after every publish.
func TestShardedPublishEquivalence(t *testing.T) {
	d := testDataset(22)
	build := func() *Pipeline {
		pl, err := Run(d.Corpus, fastCoreConfig())
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	refPl := build()
	ref := NewViewPublisher(refPl, 0)
	const rounds, per = 6, 5
	type round struct{ batches [][]Assignment }
	var rounds6 []round
	for r := 0; r < rounds; r++ {
		batch := streamBatch(d, per*(r+1))[per*r:]
		res, err := refPl.AddPapers(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		ref.Publish(res)
		rounds6 = append(rounds6, round{batches: res})
	}
	want := ref.Current()

	for _, shards := range []int{2, 4, 8} {
		pl := build()
		vp := NewShardedViewPublisher(pl, 0, shards, nil)
		for r := 0; r < rounds; r++ {
			batch := streamBatch(d, per*(r+1))[per*r:]
			res, err := pl.AddPapers(context.Background(), batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range res {
				if len(res[i]) != len(rounds6[r].batches[i]) {
					t.Fatalf("shards=%d round %d: assignment shape differs", shards, r)
				}
				for j := range res[i] {
					a, b := res[i][j], rounds6[r].batches[i][j]
					if a.Slot != b.Slot || a.Vertex != b.Vertex || a.Created != b.Created ||
						math.Float64bits(a.Score) != math.Float64bits(b.Score) {
						t.Fatalf("shards=%d round %d: assignment %d/%d differs: %+v vs %+v",
							shards, r, i, j, a, b)
					}
				}
			}
			vp.Publish(res)
		}
		got := vp.Current()
		if got.Epoch() != want.Epoch() {
			t.Fatalf("shards=%d: epoch %d, want %d", shards, got.Epoch(), want.Epoch())
		}
		if gs, ws := got.Stats(), want.Stats(); gs.Authors != ws.Authors || gs.Edges != ws.Edges || gs.Slots != ws.Slots {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, gs, ws)
		}
		for id := 0; id < got.Stats().Authors; id++ {
			gn, gok := got.AuthorName(id)
			wn, wok := want.AuthorName(id)
			if gn != wn || gok != wok {
				t.Fatalf("shards=%d: AuthorName(%d) = %q, want %q", shards, id, gn, wn)
			}
			gp, _ := got.AuthorPapers(id)
			wp, _ := want.AuthorPapers(id)
			if len(gp) != len(wp) {
				t.Fatalf("shards=%d: vertex %d papers %d, want %d", shards, id, len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("shards=%d: vertex %d paper %d differs", shards, id, i)
				}
			}
			gc, _ := got.Coauthors(id)
			wc, _ := want.Coauthors(id)
			if len(gc) != len(wc) {
				t.Fatalf("shards=%d: vertex %d degree differs", shards, id)
			}
			for i := range gc {
				if gc[i] != wc[i] {
					t.Fatalf("shards=%d: vertex %d neighbor %d differs", shards, id, i)
				}
			}
		}
	}
}

// TestCaptureApplySequencing pins the deterministic publish order: an
// Apply arriving before its predecessor must wait for it, and the
// assembled epochs come out in capture order.
func TestCaptureApplySequencing(t *testing.T) {
	d := testDataset(23)
	pl, err := Run(d.Corpus, fastCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	vp := NewViewPublisher(pl, 0)
	b1 := streamBatch(d, 2)
	res1, err := pl.AddPapers(context.Background(), b1)
	if err != nil {
		t.Fatal(err)
	}
	c1 := vp.Capture(res1)
	b2 := streamBatch(d, 4)[2:]
	res2, err := pl.AddPapers(context.Background(), b2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := vp.Capture(res2)
	if c1.Epoch() != 1 || c2.Epoch() != 2 {
		t.Fatalf("capture epochs %d, %d", c1.Epoch(), c2.Epoch())
	}

	done2 := make(chan *View)
	go func() { done2 <- vp.Apply(c2) }()
	time.Sleep(20 * time.Millisecond) // give Apply(c2) time to reach its wait
	select {
	case <-done2:
		t.Fatal("Apply(c2) completed before Apply(c1)")
	default:
	}
	v1 := vp.Apply(c1)
	v2 := <-done2
	if v1.Epoch() != 1 || v2.Epoch() != 2 {
		t.Fatalf("applied epochs %d, %d", v1.Epoch(), v2.Epoch())
	}
	if cur := vp.Current(); cur.Epoch() != 2 {
		t.Fatalf("current epoch %d after both applies", cur.Epoch())
	}
	vp.Sync(2)
	if got := vp.Contention().Publishes; got != 2 {
		t.Fatalf("publishes %d, want 2", got)
	}
}
