package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"iuad/internal/bib"
	"iuad/internal/emfit"
	"iuad/internal/intern"
	"iuad/internal/snapshot"
	"iuad/internal/textvec"
)

// SnapshotVersion is the pipeline wire-format version. Bump on ANY
// layout change in this file or the EncodeSnapshot methods it calls.
const SnapshotVersion = 1

// ServiceSnapshotVersion is the wire-format version of service-level
// snapshots (SaveService/LoadService): a small serving header followed
// by the same pipeline body as SnapshotVersion streams. Service
// versions live in their own 1000+ namespace so a pipeline snapshot
// can never be mistaken for a service snapshot (or vice versa) as the
// two formats evolve independently.
const ServiceSnapshotVersion = 1001

// SavePipeline serializes a fitted pipeline — corpus, interned-table
// tails, embeddings, SCN, GCN, fitted model, calibration, retained pair
// scores and the incremental stream — so a server can restart and answer
// AddPaper immediately, with assignments bit-identical to the pipeline
// that never stopped (§V-E serving without retraining).
//
// The similarity profile cache is deliberately not part of the state:
// AddPaper invalidates every profile an update can affect, so cached
// profiles always equal fresh rebuilds and a cold cache is equivalent.
// (This held for the map-backed profiles and holds unchanged for the
// flat slab-backed layout — profiles are derived state either way; the
// wire format carries no profile bytes and needs no version bump.)
func SavePipeline(w io.Writer, pl *Pipeline) error {
	if pl == nil || pl.GCN == nil || pl.SCN == nil {
		return fmt.Errorf("core: SavePipeline before BuildGCN")
	}
	if hasDeadVertices(pl.GCN) {
		return fmt.Errorf("core: pipeline carries dead vertices from a partial recovery; only the sharded snapshot format can save it")
	}
	sw := snapshot.NewWriter(w, SnapshotVersion)
	if err := encodePipelineBody(sw, pl, true); err != nil {
		return err
	}
	return sw.Close()
}

// hasDeadVertices reports whether any vertex was voided by a partial
// snapshot recovery (NameID < 0). The legacy single-file formats have
// no way to express such holes; the composite format records them in
// its manifest.
func hasDeadVertices(n *Network) bool {
	for i := range n.Verts {
		if n.Verts[i].NameID < 0 {
			return true
		}
	}
	return false
}

// SaveService serializes a serving snapshot: the publish epoch of the
// served view followed by the full pipeline state. The view itself is
// derived state (it is rebuilt from the pipeline on load, at the saved
// epoch), so the wire format carries no view bytes — exactly like the
// profile cache, a rebuilt view is bit-equivalent to the one that was
// being served.
func SaveService(w io.Writer, pl *Pipeline, epoch uint64) error {
	if pl == nil || pl.GCN == nil || pl.SCN == nil {
		return fmt.Errorf("core: SaveService before BuildGCN")
	}
	if hasDeadVertices(pl.GCN) {
		return fmt.Errorf("core: pipeline carries dead vertices from a partial recovery; only the sharded snapshot format can save it")
	}
	sw := snapshot.NewWriter(w, ServiceSnapshotVersion)
	sw.Uvarint(epoch)
	if err := encodePipelineBody(sw, pl, true); err != nil {
		return err
	}
	return sw.Close()
}

// LoadService reconstructs a pipeline and its publish epoch from a
// stream written by SaveService.
func LoadService(r io.Reader) (*Pipeline, uint64, error) {
	sr, err := snapshot.NewReader(r, ServiceSnapshotVersion)
	if err != nil {
		return nil, 0, err
	}
	epoch := sr.Uvarint()
	if err := sr.Err(); err != nil {
		return nil, 0, err
	}
	pl, err := decodePipelineBody(sr, true)
	if err != nil {
		return nil, 0, err
	}
	return pl, epoch, nil
}

// encodePipelineBody writes the pipeline payload shared by pipeline-
// and service-level snapshots onto an already-opened writer. withGCN
// selects the legacy layout (GCN inline, byte-stable for the v1/v1001
// formats); the sharded composite format passes false and stores the
// GCN in per-shard segment files instead.
func encodePipelineBody(sw *snapshot.Writer, pl *Pipeline, withGCN bool) error {
	cfgJSON, err := json.Marshal(&pl.Cfg)
	if err != nil {
		return fmt.Errorf("core: marshal config: %w", err)
	}
	sw.Bytes(cfgJSON)

	pl.Corpus.EncodeSnapshot(sw)
	// Symbols interned after Freeze (incremental stream); replaying them
	// in order on load reproduces identical IDs.
	sw.Strings(pl.Corpus.NameTable().Tail())
	sw.Strings(pl.Corpus.VenueTable().Tail())
	sw.Strings(pl.Corpus.WordTable().Tail())

	sw.Bool(pl.Emb != nil)
	if pl.Emb != nil {
		pl.Emb.EncodeSnapshot(sw)
	}
	encodeNetwork(sw, pl.SCN)
	if withGCN {
		encodeNetwork(sw, pl.GCN)
	}
	sw.Bool(pl.Model != nil)
	if pl.Model != nil {
		pl.Model.EncodeSnapshot(sw)
	}
	sw.F64(pl.CalibratedDelta)
	sw.Int(pl.TrainingPairs)

	sw.Int(len(pl.scored))
	for _, sp := range pl.scored {
		sw.Int(sp.A)
		sw.Int(sp.B)
		sw.F64(sp.Score)
	}
	sw.Int(len(pl.forcedMerges))
	for _, fm := range pl.forcedMerges {
		sw.Int(fm[0])
		sw.Int(fm[1])
	}

	sw.Int(len(pl.extra))
	for i := range pl.extra {
		bib.EncodePaperSnapshot(sw, &pl.extra[i])
	}
	return sw.Err()
}

// LoadPipeline reconstructs a pipeline saved by SavePipeline. The
// returned pipeline serves AddPaper exactly like the original: same
// tables, same networks, same model parameters (bit patterns), same
// decision threshold.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	sr, err := snapshot.NewReader(r, SnapshotVersion)
	if err != nil {
		return nil, err
	}
	return decodePipelineBody(sr, true)
}

// decodePipelineBody reads the pipeline payload shared by pipeline-
// and service-level snapshots from an already-opened reader. With
// withGCN false (the sharded composite's common section) the GCN is
// absent from the stream: the caller merges it from segment files and
// then calls finishRestore itself.
func decodePipelineBody(sr *snapshot.Reader, withGCN bool) (*Pipeline, error) {
	cfgJSON := sr.Bytes()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("core: unmarshal config: %w", err)
	}
	// Re-seed the unexported scoring caches BuildGCN would have set (the
	// feature-index cache keeps the incremental scoring path
	// allocation-lean after a restart).
	cfg.featIdx = cfg.enabledFeatures()
	corpus, err := bib.DecodeCorpusSnapshot(sr)
	if err != nil {
		return nil, err
	}
	for _, replay := range []struct {
		tab  *intern.Table
		what string
	}{
		{corpus.NameTable(), "name"},
		{corpus.VenueTable(), "venue"},
		{corpus.WordTable(), "word"},
	} {
		tail := sr.Strings()
		if err := sr.Err(); err != nil {
			return nil, err
		}
		if err := replay.tab.ReplayTail(tail); err != nil {
			return nil, fmt.Errorf("core: %s table: %w", replay.what, err)
		}
	}

	var emb *textvec.Embeddings
	if sr.Bool() {
		if emb, err = textvec.DecodeEmbeddingsSnapshot(sr); err != nil {
			return nil, err
		}
	}
	scn, err := decodeNetwork(sr, corpus)
	if err != nil {
		return nil, err
	}
	var gcn *Network
	if withGCN {
		if gcn, err = decodeNetwork(sr, corpus); err != nil {
			return nil, err
		}
	}
	var model *emfit.Model
	if sr.Bool() {
		if model, err = emfit.DecodeModelSnapshot(sr); err != nil {
			return nil, err
		}
	}
	pl := &Pipeline{
		Corpus:          corpus,
		Cfg:             cfg,
		SCN:             scn,
		GCN:             gcn,
		Model:           model,
		Emb:             emb,
		CalibratedDelta: sr.F64(),
		TrainingPairs:   sr.Int(),
	}
	ns := sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if ns < 0 {
		return nil, fmt.Errorf("core: snapshot has %d scored pairs", ns)
	}
	// Grow by append with a per-iteration error check: a corrupt count
	// must neither pre-allocate by the untrusted length nor spin through
	// billions of no-op reads after the stream has latched an error.
	for i := 0; i < ns && sr.Err() == nil; i++ {
		pl.scored = append(pl.scored, ScoredPair{A: sr.Int(), B: sr.Int(), Score: sr.F64()})
	}
	nf := sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if nf < 0 {
		return nil, fmt.Errorf("core: snapshot has %d forced merges", nf)
	}
	for i := 0; i < nf && sr.Err() == nil; i++ {
		pl.forcedMerges = append(pl.forcedMerges, [2]int{sr.Int(), sr.Int()})
	}

	// Incremental stream: re-derive the columnar views by looking the
	// symbols up in the replayed tables (AddPaper interned every one of
	// them, so misses mean a corrupt snapshot).
	ne := sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if ne < 0 {
		return nil, fmt.Errorf("core: snapshot has %d extra papers", ne)
	}
	for i := 0; i < ne; i++ {
		p, err := bib.DecodePaperSnapshot(sr)
		if err != nil {
			return nil, fmt.Errorf("core: extra paper %d: %w", i, err)
		}
		p.ID = bib.PaperID(corpus.Len() + i)
		venueID := intern.None
		if p.Venue != "" {
			id, ok := corpus.VenueTable().Lookup(p.Venue)
			if !ok {
				return nil, fmt.Errorf("core: extra paper %d venue %q not interned", i, p.Venue)
			}
			venueID = id
		}
		kw := bib.Keywords(p.Title)
		kwIDs := make([]intern.ID, len(kw))
		for k, w := range kw {
			id, ok := corpus.WordTable().Lookup(w)
			if !ok {
				return nil, fmt.Errorf("core: extra paper %d keyword %q not interned", i, w)
			}
			kwIDs[k] = id
		}
		pl.extra = append(pl.extra, p)
		pl.extraKw = append(pl.extraKw, kwIDs)
		pl.extraVenue = append(pl.extraVenue, venueID)
		pl.extraYear = append(pl.extraYear, p.Year)
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if !withGCN {
		return pl, nil // caller merges the GCN and calls finishRestore
	}
	if err := pl.finishRestore(); err != nil {
		return nil, err
	}
	return pl, nil
}

// finishRestore validates the decoded networks and re-seeds derived
// state, once the GCN is in place — inline for the legacy formats,
// merged from segment files for the sharded composite. Paper IDs
// inside the networks can only be range-checked once the incremental
// stream length is known; a corrupt ID must be a decode error here,
// not an index panic at serving time.
func (pl *Pipeline) finishRestore() error {
	totalPapers := pl.Corpus.Len() + len(pl.extra)
	for _, net := range []struct {
		name string
		n    *Network
	}{{"SCN", pl.SCN}, {"GCN", pl.GCN}} {
		if err := validatePaperIDs(net.n, totalPapers); err != nil {
			return fmt.Errorf("core: snapshot %s: %w", net.name, err)
		}
	}
	pl.sim = newSimilarityComputer(pl.GCN, pl, pl.Emb, &pl.Cfg)
	return nil
}

// validatePaperIDs bounds-checks every decoded paper reference of a
// network against the total paper count (corpus + incremental stream).
func validatePaperIDs(n *Network, total int) error {
	inRange := func(ids []bib.PaperID) error {
		for _, id := range ids {
			if id < 0 || int(id) >= total {
				return fmt.Errorf("paper id %d out of range [0,%d)", id, total)
			}
		}
		return nil
	}
	for i := range n.Verts {
		if err := inRange(n.Verts[i].Papers); err != nil {
			return fmt.Errorf("vertex %d: %w", i, err)
		}
	}
	for key, papers := range n.EdgePapers {
		if err := inRange(papers); err != nil {
			return fmt.Errorf("edge %v: %w", key, err)
		}
	}
	for s := range n.SlotVertex {
		if s.Paper < 0 || int(s.Paper) >= total || s.Index < 0 {
			return fmt.Errorf("slot %+v out of range [0,%d)", s, total)
		}
	}
	return nil
}

// encodeNetwork writes a network: vertices (interned name, isolation,
// paper set), collaboration edges with their paper sets (every G edge
// has an EdgePapers entry by construction of addEdge), and the slot
// assignment. Map-backed state is emitted in sorted order so identical
// networks always produce identical bytes.
func encodeNetwork(w *snapshot.Writer, n *Network) {
	w.Int(len(n.Verts))
	for i := range n.Verts {
		v := &n.Verts[i]
		w.Varint(int64(v.NameID))
		w.Bool(v.Isolated)
		encodePaperIDs(w, v.Papers)
	}

	keys := make([][2]int, 0, len(n.EdgePapers))
	for key := range n.EdgePapers {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	w.Int(len(keys))
	for _, key := range keys {
		w.Int(key[0])
		w.Int(key[1])
		encodePaperIDs(w, n.EdgePapers[key])
	}

	slots := make([]Slot, 0, len(n.SlotVertex))
	for s := range n.SlotVertex {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Paper != slots[j].Paper {
			return slots[i].Paper < slots[j].Paper
		}
		return slots[i].Index < slots[j].Index
	})
	w.Int(len(slots))
	for _, s := range slots {
		w.Varint(int64(s.Paper))
		w.Int(s.Index)
		w.Int(n.SlotVertex[s])
	}
}

func decodeNetwork(r *snapshot.Reader, corpus *bib.Corpus) (*Network, error) {
	n := newNetwork(corpus)
	names := corpus.NameTable()
	nv := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nv < 0 {
		return nil, fmt.Errorf("core: snapshot network has %d vertices", nv)
	}
	for i := 0; i < nv; i++ {
		nid := intern.ID(r.Varint())
		iso := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nid < 0 || int(nid) >= names.Len() {
			return nil, fmt.Errorf("core: snapshot vertex %d has name id %d of %d", i, nid, names.Len())
		}
		id := n.addVertexID(nid, iso)
		n.Verts[id].Papers = decodePaperIDs(r)
	}
	ne := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if ne < 0 {
		return nil, fmt.Errorf("core: snapshot network has %d edges", ne)
	}
	for i := 0; i < ne; i++ {
		u, v := r.Int(), r.Int()
		papers := decodePaperIDs(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if u < 0 || v < 0 || u >= nv || v >= nv || u == v {
			return nil, fmt.Errorf("core: snapshot edge %d joins %d-%d of %d vertices", i, u, v, nv)
		}
		// Adjacency and edge papers are restored directly; addEdge would
		// redundantly re-union the already-exact vertex paper sets.
		n.G.AddEdge(u, v)
		n.EdgePapers[edgeKey(u, v)] = papers
	}
	nslot := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nslot < 0 {
		return nil, fmt.Errorf("core: snapshot network has %d slots", nslot)
	}
	for i := 0; i < nslot; i++ {
		s := Slot{Paper: bib.PaperID(r.Varint()), Index: r.Int()}
		v := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if v < 0 || v >= nv {
			return nil, fmt.Errorf("core: snapshot slot %+v assigned to vertex %d of %d", s, v, nv)
		}
		n.SlotVertex[s] = v
	}
	return n, nil
}

func encodePaperIDs(w *snapshot.Writer, ids []bib.PaperID) {
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Varint(int64(id))
	}
}

func decodePaperIDs(r *snapshot.Reader) []bib.PaperID {
	ids := r.Int32s()
	if len(ids) == 0 {
		return nil
	}
	out := make([]bib.PaperID, len(ids))
	for i, id := range ids {
		out[i] = bib.PaperID(id)
	}
	return out
}
