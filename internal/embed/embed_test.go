package embed

import (
	"testing"

	"iuad/internal/graph"
)

// twoCliques builds two K5s joined by nothing.
func twoCliques() *graph.Graph {
	g := graph.New(10)
	for base := 0; base < 10; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	return g
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.WalksPerVertex = 12
	cfg.WalkLength = 10
	cfg.Epochs = 4
	return cfg
}

func TestDeepWalkSeparatesComponents(t *testing.T) {
	e := DeepWalk(twoCliques(), fastConfig())
	if e.Len() != 10 {
		t.Fatalf("Len=%d", e.Len())
	}
	// Average within-clique cosine must exceed cross-clique cosine.
	var within, cross float64
	var nw, nc int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			c := e.Cosine(i, j)
			if (i < 5) == (j < 5) {
				within += c
				nw++
			} else {
				cross += c
				nc++
			}
		}
	}
	within /= float64(nw)
	cross /= float64(nc)
	if within <= cross {
		t.Fatalf("within=%.3f not above cross=%.3f", within, cross)
	}
}

func TestDeepWalkDeterministic(t *testing.T) {
	g := twoCliques()
	e1 := DeepWalk(g, fastConfig())
	e2 := DeepWalk(g, fastConfig())
	v1, v2 := e1.Vector(3), e2.Vector(3)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("DeepWalk nondeterministic for fixed seed")
		}
	}
}

func TestDeepWalkIsolatedVertex(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	e := DeepWalk(g, fastConfig())
	if e.Vector(2) == nil {
		t.Fatal("isolated vertex has no embedding")
	}
	// Distance to anything is defined (not NaN).
	d := e.Distance(2, 0)
	if d < 0 || d > 2 {
		t.Fatalf("distance=%v", d)
	}
}

func TestVectorOutOfRange(t *testing.T) {
	e := DeepWalk(twoCliques(), fastConfig())
	if e.Vector(-1) != nil || e.Vector(100) != nil {
		t.Fatal("out-of-range vector not nil")
	}
	if e.Cosine(-1, 0) != 0 {
		t.Fatal("cosine with missing vector not 0")
	}
}

func TestDeepWalkPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	DeepWalk(graph.New(1), Config{WalksPerVertex: 0, WalkLength: 5})
}
