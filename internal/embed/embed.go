// Package embed trains DeepWalk-style vertex embeddings (Perozzi et al.,
// KDD 2014): truncated random walks over a graph are treated as sentences
// and fed to the SGNS trainer of internal/textvec. The embedding-based
// baselines (ANON [22], NetE [23], Aminer [33]) use these vectors as
// their paper representations.
package embed

import (
	"math/rand"
	"strconv"

	"iuad/internal/graph"
	"iuad/internal/textvec"
)

// Config tunes DeepWalk.
type Config struct {
	WalksPerVertex int
	WalkLength     int
	Dim            int
	Window         int
	Epochs         int
	Seed           int64
}

// DefaultConfig returns a laptop-scale parameterization.
func DefaultConfig() Config {
	return Config{WalksPerVertex: 8, WalkLength: 20, Dim: 48, Window: 4, Epochs: 3, Seed: 1}
}

// Embedding holds per-vertex vectors.
type Embedding struct {
	vecs [][]float64
}

// DeepWalk embeds every vertex of g. Vertices never visited by a walk
// (isolated vertices appear only in their own walks) still receive a
// vector as long as they start at least one walk.
func DeepWalk(g *graph.Graph, cfg Config) *Embedding {
	if cfg.WalksPerVertex <= 0 || cfg.WalkLength <= 0 {
		panic("embed: nonpositive walk parameters")
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sentences [][]string
	for w := 0; w < cfg.WalksPerVertex; w++ {
		for v := 0; v < n; v++ {
			walk := g.RandomWalk(v, cfg.WalkLength, rng)
			s := make([]string, len(walk))
			for i, u := range walk {
				s[i] = strconv.Itoa(u)
			}
			// Isolated vertices yield length-1 walks; duplicate the
			// token so SGNS keeps them in vocabulary (they get a
			// near-random vector, which is the correct "no information"
			// outcome).
			if len(s) == 1 {
				s = append(s, s[0])
			}
			sentences = append(sentences, s)
		}
	}
	tcfg := textvec.Config{
		Dim:       cfg.Dim,
		Window:    cfg.Window,
		Negatives: 5,
		Epochs:    cfg.Epochs,
		LR:        0.025,
		MinCount:  1,
		Seed:      cfg.Seed,
	}
	emb := textvec.Train(sentences, tcfg)
	e := &Embedding{vecs: make([][]float64, n)}
	for v := 0; v < n; v++ {
		if vec, ok := emb.Vector(strconv.Itoa(v)); ok {
			out := make([]float64, len(vec))
			for i, x := range vec {
				out[i] = float64(x)
			}
			e.vecs[v] = out
		}
	}
	return e
}

// Vector returns the embedding of vertex v (nil if the vertex was never
// embedded).
func (e *Embedding) Vector(v int) []float64 {
	if v < 0 || v >= len(e.vecs) {
		return nil
	}
	return e.vecs[v]
}

// Cosine returns the cosine similarity between the embeddings of u and v
// (0 when either is missing).
func (e *Embedding) Cosine(u, v int) float64 {
	return textvec.Cosine(e.Vector(u), e.Vector(v))
}

// Distance returns the cosine distance 1 − cos(u,v) clipped to [0,2].
func (e *Embedding) Distance(u, v int) float64 {
	d := 1 - e.Cosine(u, v)
	if d < 0 {
		return 0
	}
	if d > 2 {
		return 2
	}
	return d
}

// Len returns the number of vertices covered.
func (e *Embedding) Len() int { return len(e.vecs) }
