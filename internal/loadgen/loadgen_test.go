package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"iuad"
	"iuad/internal/faultinject"
	"iuad/internal/httpapi"
	"iuad/internal/loadgen"
)

func loadService(t *testing.T, opts ...iuad.Option) *iuad.Service {
	t.Helper()
	scfg := iuad.DefaultSyntheticConfig()
	scfg.Seed = 19
	scfg.Authors = 120
	scfg.Communities = 4
	cfg := iuad.DefaultConfig()
	cfg.Workers = 2
	cfg.SampleRate = 0.5
	cfg.Embedding.Dim = 16
	cfg.Embedding.Epochs = 2
	svc, err := iuad.Open(iuad.GenerateSynthetic(scfg).Corpus, append(opts, iuad.WithConfig(cfg))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestSteadyPhase drives a short mixed workload end to end: every
// request answered, zero 5xx, epochs advance with the ingests, and
// the report carries both client latencies and server metrics.
func TestSteadyPhase(t *testing.T) {
	srv := httptest.NewServer(httpapi.New(loadService(t)))
	defer srv.Close()

	r, err := loadgen.New(loadgen.Config{BaseURL: srv.URL, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), []loadgen.Phase{{
		Name: "steady", Duration: 700 * time.Millisecond, Rate: 150, ReadRatio: 0.8, BatchSize: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("%d phases", len(rep.Phases))
	}
	ph := rep.Phases[0]
	if ph.Reads.Ops == 0 || ph.Ingest.Ops == 0 {
		t.Fatalf("degenerate mix: %+v", ph)
	}
	if ph.Reads.Status5xx != 0 || ph.Ingest.Status5xx != 0 || ph.Reads.NetErrors != 0 || ph.Ingest.NetErrors != 0 {
		t.Fatalf("server errors under steady load: %+v", ph)
	}
	if ph.EpochEnd <= ph.EpochStart {
		t.Fatalf("no epoch progress: %d → %d", ph.EpochStart, ph.EpochEnd)
	}
	if ph.Reads.Latency.Count == 0 || ph.Reads.Latency.P99Ns <= 0 {
		t.Fatalf("no read latency recorded: %+v", ph.Reads.Latency)
	}
	if rep.Final.Ingest.AdmittedPapers == 0 || rep.Final.HTTP.Requests == 0 {
		t.Fatalf("final server metrics empty: %+v", rep.Final)
	}
	if errs := loadgen.AssertSLOs(rep); len(errs) != 0 {
		t.Fatalf("SLO violations on a healthy run: %v", errs)
	}
}

// TestAnalyticsReadMix drives the analytics endpoints through the
// harness: a phase whose mix is only ego/collaborators/network/
// communities must complete with zero 5xx and zero transport errors —
// the SLO coverage the new read surface gets in CI.
func TestAnalyticsReadMix(t *testing.T) {
	srv := httptest.NewServer(httpapi.New(loadService(t)))
	defer srv.Close()

	r, err := loadgen.New(loadgen.Config{BaseURL: srv.URL, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), []loadgen.Phase{{
		Name: "analytics", Duration: 500 * time.Millisecond, Rate: 120, ReadRatio: 1, BatchSize: 2,
		ReadMix: map[string]float64{"ego": 0.4, "collaborators": 0.3, "network": 0.2, "communities": 0.1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ph := rep.Phases[0]
	if ph.Reads.Ops == 0 {
		t.Fatal("analytics phase offered no reads")
	}
	if ph.Reads.Status5xx != 0 || ph.Reads.NetErrors != 0 {
		t.Fatalf("analytics reads failed: %+v", ph.Reads)
	}
	if errs := loadgen.AssertSLOs(rep); len(errs) != 0 {
		t.Fatalf("SLO violations: %v", errs)
	}
	// The server answered from the analytics cache and said so.
	if rep.Final.Analytics.Hits == 0 || !rep.Final.Analytics.Cached {
		t.Fatalf("analytics cache counters empty: %+v", rep.Final.Analytics)
	}
	for _, name := range []string{"ego", "collaborators", "network", "communities"} {
		if _, ok := rep.Final.HTTP.Endpoints[name]; !ok {
			t.Fatalf("no server-side %s latency: %+v", name, rep.Final.HTTP.Endpoints)
		}
	}
}

// TestReadMixValidation pins the config contract: a phase naming an
// unknown endpoint (or a non-positive weight) is an error before any
// load is offered — never a silently dropped arrival.
func TestReadMixValidation(t *testing.T) {
	srv := httptest.NewServer(httpapi.New(loadService(t)))
	defer srv.Close()

	r, err := loadgen.New(loadgen.Config{BaseURL: srv.URL, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mix  map[string]float64
	}{
		{"unknown endpoint", map[string]float64{"ego": 0.5, "nonsense": 0.5}},
		{"non-positive weight", map[string]float64{"ego": 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := r.Run(context.Background(), []loadgen.Phase{{
				Name: "bad", Duration: time.Second, Rate: 50, ReadRatio: 1, ReadMix: tc.mix,
			}})
			if err == nil {
				t.Fatal("misconfigured mix was accepted")
			}
		})
	}
}

// TestOverloadPhaseTrips429 pins the overload smoke the CI load job
// relies on: with publishes artificially slowed and a tiny admission
// bound, a pure-ingest burst must be answered with 429s (not 5xx, not
// hangs), and AssertSLOs must pass only because backpressure engaged.
func TestOverloadPhaseTrips429(t *testing.T) {
	svc := loadService(t, iuad.WithIngestConfig(iuad.IngestConfig{MaxQueued: 4, RetryAfter: time.Second}))
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()

	// Every epoch publish takes ≥40ms: at 4-paper batches and a
	// 4-paper bound, a 100/s ingest burst must overflow the queue.
	disarm := faultinject.Arm(faultinject.PublishDelay, func() error {
		time.Sleep(40 * time.Millisecond)
		return nil
	})
	defer disarm()

	r, err := loadgen.New(loadgen.Config{BaseURL: srv.URL, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), []loadgen.Phase{{
		Name: "overload", Duration: 600 * time.Millisecond, Rate: 100, ReadRatio: 0, BatchSize: 4, Expect429: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ph := rep.Phases[0]
	if ph.Ingest.Status429 == 0 {
		t.Fatalf("burst never tripped backpressure: %+v", ph.Ingest)
	}
	if ph.Ingest.Status5xx != 0 {
		t.Fatalf("overload produced 5xx: %+v", ph.Ingest)
	}
	if rep.Final.Ingest.RejectedBatches == 0 {
		t.Fatalf("server counted no rejections: %+v", rep.Final.Ingest)
	}
	if errs := loadgen.AssertSLOs(rep); len(errs) != 0 {
		t.Fatalf("SLOs should hold (429s expected): %v", errs)
	}

	// The same report with Expect429 on a phase that saw none fails.
	rep.Phases[0].Ingest.Status429 = 0
	if errs := loadgen.AssertSLOs(rep); len(errs) == 0 {
		t.Fatal("AssertSLOs passed a run whose overload phase saw zero 429s")
	}
}
