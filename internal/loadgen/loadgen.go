// Package loadgen is the open-loop workload harness for the iuad HTTP
// serving surface (internal/httpapi): it offers a mixed read/ingest
// load at a fixed arrival rate — arrivals fire on a clock, never
// waiting for responses, so a slow server faces a growing backlog
// instead of a politely throttled client — and reports client-side
// latency percentiles per operation class, HTTP status breakdowns, and
// the server's own /metrics document (queue depth, epoch-publish lag,
// 429 counts) alongside.
//
// Reads follow a Zipf distribution over an author-name universe
// bootstrapped from the live service, mimicking the scale-free query
// skew of a bibliography service: a few hub names absorb most lookups.
// Ingest posts small batches whose author names come from the same
// skewed universe, plus a trickle of brand-new names.
//
// The harness never closes the loop on overload: 429 responses are
// counted, not retried, which is exactly what makes the committed SLO
// pins meaningful — offered rate is an input, not an emergent number.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iuad/internal/hdrhist"
	"iuad/internal/httpapi"
)

// Phase is one stretch of offered load.
type Phase struct {
	Name string `json:"name"`
	// Duration of the phase; Rate the offered arrivals per second.
	Duration time.Duration `json:"-"`
	Rate     float64       `json:"rate"`
	// ReadRatio is the fraction of arrivals that are reads (the rest
	// are ingest batches of BatchSize papers).
	ReadRatio float64 `json:"read_ratio"`
	BatchSize int     `json:"batch_size"`
	// ReadMix weights the read endpoints this phase exercises (see
	// ReadEndpoints for the valid names). Empty means DefaultReadMix.
	// Naming an unknown endpoint is a config error reported before any
	// load is offered — never a silently dropped arrival.
	ReadMix map[string]float64 `json:"read_mix,omitempty"`
	// Expect429 marks a deliberate-overload phase: CI asserts the
	// server answered at least one 429 here (backpressure engaged)
	// and, as everywhere, zero 5xx.
	Expect429 bool `json:"expect_429"`
}

// Config parameterizes a run.
type Config struct {
	// BaseURL of the serving process, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed drives every random choice; same seed + same server state =
	// same offered workload.
	Seed int64
	// ZipfS is the read-skew exponent (> 1; default 1.3 — a steep,
	// hub-heavy skew).
	ZipfS float64
	// NameSample bounds the bootstrapped name universe (default 96).
	NameSample int
	// MaxInFlight caps concurrently outstanding requests; arrivals
	// past the cap are dropped and counted (the harness itself must
	// stay bounded under the backlog it creates). Default 256.
	MaxInFlight int
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
}

// OpStats is the client-side accounting of one operation class.
type OpStats struct {
	Ops       int64 `json:"ops"`
	Status2xx int64 `json:"status_2xx"`
	Status429 int64 `json:"status_429"`
	Status4xx int64 `json:"status_4xx"` // non-429 client errors
	Status5xx int64 `json:"status_5xx"`
	NetErrors int64 `json:"net_errors"`
	// Dropped counts arrivals shed by the harness's own in-flight cap
	// — offered load the server never saw.
	Dropped int64           `json:"dropped"`
	Latency hdrhist.Summary `json:"latency"`
}

// PhaseReport is one phase's outcome: client-side stats plus the
// server-side epoch progress observed across the phase.
type PhaseReport struct {
	Phase
	Seconds    float64 `json:"seconds"`
	Reads      OpStats `json:"reads"`
	Ingest     OpStats `json:"ingest"`
	EpochStart uint64  `json:"epoch_start"`
	EpochEnd   uint64  `json:"epoch_end"`
	// QueueDepthEnd and Rejected429End snapshot the server's ingest
	// queue as the phase closed (cumulative counter for the latter).
	QueueDepthEnd  int64 `json:"queue_depth_end"`
	Rejected429End int64 `json:"rejected_429_end"`
}

// Report is the full run document.
type Report struct {
	BaseURL string        `json:"base_url"`
	Seed    int64         `json:"seed"`
	ZipfS   float64       `json:"zipf_s"`
	Names   int           `json:"names"`
	Phases  []PhaseReport `json:"phases"`
	// Final is the server's closing /metrics document: ingest queue
	// accounting (incl. publish-lag percentiles), contention, and the
	// server-side per-endpoint latency view of this same run.
	Final httpapi.Metrics `json:"final_server_metrics"`
}

// opKind discriminates the generated operations.
type opKind int

const (
	opRead opKind = iota
	opIngest
)

// op is one generated arrival: everything random is decided on the
// generator goroutine, so workers only do HTTP.
type op struct {
	kind opKind
	path string // for reads
	body []byte // for ingest
}

// readGens maps a read-mix endpoint name onto its arrival generator.
// The names are the loadgen-facing vocabulary, not URL paths, so a
// phase can say "ego" without caring which route serves it.
var readGens = map[string]func(*Runner) op{
	"name": func(r *Runner) op {
		return op{kind: opRead, path: "/v1/authors?name=" + url.QueryEscape(r.zipfName())}
	},
	"author": func(r *Runner) op {
		return op{kind: opRead, path: fmt.Sprintf("/v1/authors/%d", r.rng.Intn(maxInt(1, r.authors)))}
	},
	"resolve": func(r *Runner) op {
		return op{kind: opRead, path: fmt.Sprintf("/v1/resolve?paper=%d&index=0", r.rng.Intn(maxInt(1, r.papers)))}
	},
	"stats": func(r *Runner) op {
		return op{kind: opRead, path: "/v1/stats"}
	},
	"ego": func(r *Runner) op {
		return op{kind: opRead, path: fmt.Sprintf("/v1/authors/%d/ego?hops=%d",
			r.rng.Intn(maxInt(1, r.authors)), 1+r.rng.Intn(2))}
	},
	"collaborators": func(r *Runner) op {
		return op{kind: opRead, path: fmt.Sprintf("/v1/authors/%d/collaborators?k=8",
			r.rng.Intn(maxInt(1, r.authors)))}
	},
	"network": func(r *Runner) op {
		return op{kind: opRead, path: "/v1/network"}
	},
	"communities": func(r *Runner) op {
		return op{kind: opRead, path: "/v1/communities"}
	},
}

// ReadEndpoints returns the valid ReadMix endpoint names, sorted.
func ReadEndpoints() []string {
	names := make([]string, 0, len(readGens))
	for name := range readGens {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultReadMix is the bibliography-traffic mix phases get when they
// set no ReadMix: name lookup and author fetch dominate.
func DefaultReadMix() map[string]float64 {
	return map[string]float64{"name": 0.45, "author": 0.35, "resolve": 0.15, "stats": 0.05}
}

// AnalyticsReadMix folds the collaboration-network analytics endpoints
// into the read traffic so SLO assertions cover them.
func AnalyticsReadMix() map[string]float64 {
	return map[string]float64{
		"name": 0.25, "author": 0.25,
		"ego": 0.20, "collaborators": 0.15, "network": 0.10, "communities": 0.05,
	}
}

// readMix is a compiled, validated ReadMix: endpoint names in sorted
// order with cumulative weights, so sampling is deterministic for one
// seed regardless of map iteration order.
type readMix struct {
	names []string
	cum   []float64
	total float64
}

func compileReadMix(m map[string]float64) (*readMix, error) {
	if len(m) == 0 {
		m = DefaultReadMix()
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	mix := &readMix{names: names, cum: make([]float64, len(names))}
	for i, name := range names {
		if _, ok := readGens[name]; !ok {
			return nil, fmt.Errorf("unknown read endpoint %q (valid: %s)",
				name, strings.Join(ReadEndpoints(), ", "))
		}
		w := m[name]
		if w <= 0 {
			return nil, fmt.Errorf("read endpoint %q needs a positive weight, got %v", name, w)
		}
		mix.total += w
		mix.cum[i] = mix.total
	}
	return mix, nil
}

// sample picks one endpoint name by weight.
func (m *readMix) sample(x float64) string {
	x *= m.total
	for i, c := range m.cum {
		if x < c {
			return m.names[i]
		}
	}
	return m.names[len(m.names)-1]
}

// Runner drives phases against one server. Construct with New (which
// bootstraps the name universe from the live service).
type Runner struct {
	cfg     Config
	client  *http.Client
	rng     *rand.Rand
	zipf    *rand.Zipf
	names   []string
	papers  int // published paper count at bootstrap (resolve targets)
	authors int // published author count at bootstrap (author/ego/collaborator targets)
	nextID  atomic.Int64
}

func New(cfg Config) (*Runner, error) {
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.NameSample <= 0 {
		cfg.NameSample = 96
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	r := &Runner{cfg: cfg, client: cfg.Client, rng: rand.New(rand.NewSource(cfg.Seed))}
	if err := r.bootstrap(); err != nil {
		return nil, err
	}
	r.zipf = rand.NewZipf(r.rng, cfg.ZipfS, 1, uint64(len(r.names)-1))
	return r, nil
}

// bootstrap samples the live service's author universe: stats for the
// sizes, then author records for their (skew-target) names.
func (r *Runner) bootstrap() error {
	var st struct {
		Papers  int `json:"papers"`
		Authors int `json:"authors"`
	}
	if err := r.getJSON("/v1/stats", &st); err != nil {
		return fmt.Errorf("loadgen bootstrap: %w", err)
	}
	if st.Authors == 0 {
		return errors.New("loadgen bootstrap: service publishes zero authors")
	}
	r.papers = st.Papers
	r.authors = st.Authors
	seen := make(map[string]bool, r.cfg.NameSample)
	for len(r.names) < r.cfg.NameSample && len(seen) < st.Authors {
		var a struct {
			Name string `json:"name"`
		}
		id := r.rng.Intn(st.Authors)
		if err := r.getJSON(fmt.Sprintf("/v1/authors/%d", id), &a); err != nil {
			return fmt.Errorf("loadgen bootstrap author %d: %w", id, err)
		}
		if !seen[a.Name] {
			seen[a.Name] = true
			r.names = append(r.names, a.Name)
		}
	}
	if len(r.names) < 2 {
		return errors.New("loadgen bootstrap: name universe too small")
	}
	return nil
}

func (r *Runner) getJSON(path string, v any) error {
	resp, err := r.client.Get(r.cfg.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// zipfName samples the skewed read target.
func (r *Runner) zipfName() string { return r.names[r.zipf.Uint64()] }

// genRead picks one read op from the phase's compiled mix.
func (r *Runner) genRead(mix *readMix) op {
	return readGens[mix.sample(r.rng.Float64())](r)
}

// genIngest builds one POST body of n papers: Zipf-skewed existing
// names (homonym pressure on the hubs) plus a trickle of new names.
func (r *Runner) genIngest(n int) op {
	type paperOut struct {
		Title   string   `json:"title"`
		Venue   string   `json:"venue"`
		Year    int      `json:"year"`
		Authors []string `json:"authors"`
	}
	batch := make([]paperOut, n)
	for i := range batch {
		id := r.nextID.Add(1)
		authors := []string{r.zipfName()}
		if r.rng.Float64() < 0.5 {
			if second := r.zipfName(); second != authors[0] {
				authors = append(authors, second)
			}
		}
		if r.rng.Float64() < 0.1 {
			authors = append(authors, fmt.Sprintf("Loadgen New Author %d", id))
		}
		batch[i] = paperOut{
			Title:   fmt.Sprintf("loadgen paper %d on streaming disambiguation workloads", id),
			Venue:   "KDD",
			Year:    2021 + int(id)%4,
			Authors: authors,
		}
	}
	body, _ := json.Marshal(batch)
	return op{kind: opIngest, body: body}
}

// phaseCounters aggregates one phase concurrently.
type phaseCounters struct {
	ops, s2xx, s429, s4xx, s5xx, netErr, dropped atomic.Int64
	lat                                          *hdrhist.Histogram
}

func newPhaseCounters() *phaseCounters { return &phaseCounters{lat: hdrhist.New()} }

func (c *phaseCounters) snapshot() OpStats {
	return OpStats{
		Ops:       c.ops.Load(),
		Status2xx: c.s2xx.Load(),
		Status429: c.s429.Load(),
		Status4xx: c.s4xx.Load(),
		Status5xx: c.s5xx.Load(),
		NetErrors: c.netErr.Load(),
		Dropped:   c.dropped.Load(),
		Latency:   c.lat.Snapshot(),
	}
}

// Run drives every phase in order and assembles the report. Every
// phase's read mix is validated before any load is offered, so a
// misconfigured phase is an error up front, not a silently skewed run.
func (r *Runner) Run(ctx context.Context, phases []Phase) (*Report, error) {
	rep := &Report{
		BaseURL: r.cfg.BaseURL,
		Seed:    r.cfg.Seed,
		ZipfS:   r.cfg.ZipfS,
		Names:   len(r.names),
	}
	mixes := make([]*readMix, len(phases))
	for i, ph := range phases {
		mix, err := compileReadMix(ph.ReadMix)
		if err != nil {
			return rep, fmt.Errorf("phase %q: %w", ph.Name, err)
		}
		mixes[i] = mix
	}
	for i, ph := range phases {
		pr, err := r.runPhase(ctx, ph, mixes[i])
		if err != nil {
			return rep, err
		}
		rep.Phases = append(rep.Phases, *pr)
	}
	if err := r.getJSON("/metrics", &rep.Final); err != nil {
		return rep, fmt.Errorf("final metrics: %w", err)
	}
	return rep, nil
}

func (r *Runner) runPhase(ctx context.Context, ph Phase, mix *readMix) (*PhaseReport, error) {
	if ph.Rate <= 0 || ph.Duration <= 0 {
		return nil, fmt.Errorf("phase %q needs positive rate and duration", ph.Name)
	}
	if ph.BatchSize <= 0 {
		ph.BatchSize = 4
	}
	var m0 httpapi.Metrics
	if err := r.getJSON("/metrics", &m0); err != nil {
		return nil, fmt.Errorf("phase %q start metrics: %w", ph.Name, err)
	}

	reads, ingests := newPhaseCounters(), newPhaseCounters()
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	var wg sync.WaitGroup
	execute := func(o op, c *phaseCounters) {
		defer wg.Done()
		defer func() { <-sem }()
		t0 := time.Now()
		var resp *http.Response
		var err error
		if o.kind == opIngest {
			resp, err = r.client.Post(r.cfg.BaseURL+"/v1/papers", "application/json", bytes.NewReader(o.body))
		} else {
			resp, err = r.client.Get(r.cfg.BaseURL + o.path)
		}
		c.lat.RecordSince(t0)
		c.ops.Add(1)
		if err != nil {
			c.netErr.Add(1)
			return
		}
		// Drain so the connection is reused; the decoded bodies are
		// not part of the measurement.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			c.s429.Add(1)
		case resp.StatusCode >= 500:
			c.s5xx.Add(1)
		case resp.StatusCode >= 400:
			c.s4xx.Add(1)
		default:
			c.s2xx.Add(1)
		}
	}

	interval := time.Duration(float64(time.Second) / ph.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(ph.Duration)
	defer deadline.Stop()
	t0 := time.Now()
loop:
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			break loop
		case <-ticker.C:
			var o op
			var c *phaseCounters
			if r.rng.Float64() < ph.ReadRatio {
				o, c = r.genRead(mix), reads
			} else {
				o, c = r.genIngest(ph.BatchSize), ingests
			}
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go execute(o, c)
			default:
				// Open loop with a bounded harness: past the in-flight
				// cap the arrival is shed client-side and counted.
				c.dropped.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var m1 httpapi.Metrics
	if err := r.getJSON("/metrics", &m1); err != nil {
		return nil, fmt.Errorf("phase %q end metrics: %w", ph.Name, err)
	}
	return &PhaseReport{
		Phase:          ph,
		Seconds:        elapsed.Seconds(),
		Reads:          reads.snapshot(),
		Ingest:         ingests.snapshot(),
		EpochStart:     m0.Epoch,
		EpochEnd:       m1.Epoch,
		QueueDepthEnd:  m1.Ingest.Depth,
		Rejected429End: m1.Ingest.RejectedBatches,
	}, nil
}

// AssertSLOs is the -ci gate: zero 5xx and zero transport errors
// everywhere, and every Expect429 phase must actually have tripped
// backpressure (at least one 429) — a smoke that proves the overload
// path answers fast instead of stacking requests until something
// breaks. Returns every violation, not just the first.
func AssertSLOs(rep *Report) []error {
	var errs []error
	for _, ph := range rep.Phases {
		for _, s := range []struct {
			class string
			st    OpStats
		}{{"reads", ph.Reads}, {"ingest", ph.Ingest}} {
			if s.st.Status5xx > 0 {
				errs = append(errs, fmt.Errorf("phase %q: %d 5xx on %s", ph.Name, s.st.Status5xx, s.class))
			}
			if s.st.NetErrors > 0 {
				errs = append(errs, fmt.Errorf("phase %q: %d transport errors on %s", ph.Name, s.st.NetErrors, s.class))
			}
		}
		if ph.Expect429 && ph.Ingest.Status429 == 0 {
			errs = append(errs, fmt.Errorf("phase %q: expected backpressure but saw zero 429s", ph.Name))
		}
	}
	return errs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
