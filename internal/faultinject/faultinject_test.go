package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	if Enabled() {
		t.Fatal("fresh process reports armed faults")
	}
	if err := Fire(SnapshotWrite); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if allocs := testing.AllocsPerRun(1000, func() { Fire(PublishDelay) }); allocs != 0 {
		t.Fatalf("disarmed Fire allocates %.1f times per call", allocs)
	}
}

func TestArmFireDisarm(t *testing.T) {
	boom := errors.New("injected disk error")
	hits := 0
	disarm := Arm(SnapshotWrite, func() error { hits++; return boom })
	if !Enabled() {
		t.Fatal("armed point not reported enabled")
	}
	if err := Fire(SnapshotWrite); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want injected error", err)
	}
	// Other points stay disarmed.
	if err := Fire(PublishDelay); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	disarm()
	disarm() // idempotent
	if Enabled() {
		t.Fatal("still enabled after disarm")
	}
	if err := Fire(SnapshotWrite); err != nil {
		t.Fatalf("fired after disarm: %v", err)
	}
	if hits != 1 {
		t.Fatalf("hook ran %d times, want 1", hits)
	}
}

// TestConcurrentFire is the -race exercise: Fire from many goroutines
// while arming and disarming.
func TestConcurrentFire(t *testing.T) {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Fire(ShardApplyStall)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		disarm := Arm(ShardApplyStall, func() error { return nil })
		disarm()
	}
	close(stop)
	wg.Wait()
}
