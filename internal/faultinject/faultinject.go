// Package faultinject is the chaos layer of the serving stack: named
// fault points compiled into the production code paths, disarmed by
// default, that tests arm with hooks to inject publish delays,
// snapshot-write errors, and slow-shard apply stalls.
//
// The design goal is a hot path that costs one atomic load when
// nothing is armed (the common case — production and every
// non-chaos test):
//
//	if err := faultinject.Fire(faultinject.SnapshotWrite); err != nil {
//		return err
//	}
//
// Chaos tests arm a point and get a disarm func back:
//
//	defer faultinject.Arm(faultinject.ShardApplyStall, func() error {
//		<-gate // hold the publish pipeline open
//		return nil
//	})()
//
// Hooks run on the goroutine that hits the fault point, so a blocking
// hook stalls exactly the code path under test. Points that inject
// errors (SnapshotWrite) return the hook's error; delay points'
// errors are ignored by their call sites — a sleep hook returns nil.
package faultinject

import "sync/atomic"

// Point names one compiled-in fault site.
type Point int32

const (
	// PublishDelay fires in ViewPublisher.assemble before the epoch's
	// composite view is built and swapped in — a hook here delays
	// every epoch publish (and, transitively, backs the ingest queue
	// up) without holding any lock readers could touch.
	PublishDelay Point = iota

	// ShardApplyStall fires inside ViewPublisher.applyShard while the
	// shard's apply lock is held — the "slow shard" fault: same-shard
	// publishes queue behind it, reads stay lock-free.
	ShardApplyStall

	// SnapshotWrite fires at the head of every crash-safe snapshot
	// file write (WriteFileAtomic); a non-nil hook error aborts the
	// write exactly like a disk error would.
	SnapshotWrite

	// JournalAppend fires at the head of every write-ahead journal
	// record append, before any bytes reach the segment file; a hook
	// error fails the batch before it is acked — the "disk write
	// failed" fault of the durability contract (DESIGN.md §14).
	JournalAppend

	// JournalFsync fires immediately before every journal fsync; a
	// hook error surfaces exactly like fsync returning EIO, which
	// under the per-commit policy must fail the batch before the ack.
	JournalFsync

	// JournalReplay fires once per journal segment at the head of
	// recovery replay; a hook error aborts Open the way an unreadable
	// segment would.
	JournalReplay

	numPoints
)

var (
	// armedCount gates the fast path: one atomic load answers "is any
	// fault armed at all" for every Fire call.
	armedCount atomic.Int32
	hooks      [numPoints]atomic.Pointer[func() error]
)

// Enabled reports whether any fault point is armed.
func Enabled() bool { return armedCount.Load() != 0 }

// Fire runs the hook armed at p, returning its error. Disarmed points
// return nil after one atomic load.
func Fire(p Point) error {
	if armedCount.Load() == 0 {
		return nil
	}
	if f := hooks[p].Load(); f != nil {
		return (*f)()
	}
	return nil
}

// Arm installs hook at p and returns the disarm func. Arming an
// already-armed point replaces the hook (the previous arm's disarm
// then removes the replacement — chaos tests should disarm in LIFO
// order or not overlap). Disarm is idempotent.
func Arm(p Point, hook func() error) (disarm func()) {
	hooks[p].Store(&hook)
	armedCount.Add(1)
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			hooks[p].Store(nil)
			armedCount.Add(-1)
		}
	}
}
