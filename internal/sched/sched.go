// Package sched is the bounded worker pool behind Config.Workers: every
// parallel section of the IUAD pipeline fans its work items out through
// this package and reduces the results in a caller-fixed order.
//
// The determinism contract is central. Name blocks (and other work
// items) may be *processed* in any order by any worker, but results are
// always written into positional slots keyed by the item's index, and
// every floating-point reduction happens on the caller's goroutine in
// index order. Consequently the pipeline's output is bit-identical for
// any worker count — Workers=1 and Workers=N produce the same networks,
// the same fitted model, and the same cluster assignments.
//
// Scheduling is dynamic: workers draw the next item index from a shared
// atomic cursor, so a heavy-tailed distribution of item costs (name
// blocks in a real digital library follow a power law) self-balances
// without any up-front partitioning.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values ≤ 0 mean "one
// worker per logical CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers`
// goroutines. With workers ≤ 1 (or n ≤ 1) it runs inline on the caller's
// goroutine, so a Workers=1 pipeline is genuinely single-threaded.
//
// fn must not mutate shared state unless that state is sharded by i.
// A panic in any fn is re-raised on the caller's goroutine after all
// workers have stopped.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Workers draw batches of `grain` consecutive items from the shared
	// cursor: large enough to amortize the atomic fetch-add over cheap
	// items (per-sample E-steps), small enough that a heavy-tailed block
	// landing in one batch still leaves plenty of batches to balance.
	grain := n / (workers * 16)
	if grain < 1 {
		grain = 1
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		panicO sync.Once
		panicV any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicO.Do(func() { panicV = r })
					// Drain the cursor so sibling workers stop promptly.
					cursor.Store(int64(n))
				}
			}()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the results in index order. The positional result slice is the
// deterministic-reduction primitive: processing order never leaks into
// the output.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Chunks splits [0, n) into at most `workers` contiguous half-open
// ranges [lo, hi) of near-equal size, in ascending order. It is the
// sharding primitive for counter-style reductions: each worker owns one
// contiguous shard, and merging shard results in slice order preserves
// the serial iteration order of the underlying items.
func Chunks(workers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	size := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// MapChunks shards [0, n) with Chunks, runs fn(lo, hi) per shard in
// parallel, and returns the shard results in ascending-range order —
// ready for an in-order merge on the caller's goroutine.
func MapChunks[T any](workers, n int, fn func(lo, hi int) T) []T {
	chunks := Chunks(workers, n)
	return Map(workers, len(chunks), func(i int) T {
		return fn(chunks[i][0], chunks[i][1])
	})
}
